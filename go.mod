module paracrash

go 1.22
