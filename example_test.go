package paracrash_test

import (
	"fmt"

	"paracrash"
)

// Example runs the paper's ARVR program against BeeGFS and prints the
// discovered crash-consistency bugs — the Figure 2 scenario.
func Example() {
	rec := paracrash.NewRecorder()
	fs, err := paracrash.NewFileSystem("beegfs", paracrash.DefaultConfig(), rec)
	if err != nil {
		panic(err)
	}
	report, err := paracrash.Run(fs, nil, paracrash.ARVR(), paracrash.DefaultOptions())
	if err != nil {
		panic(err)
	}
	for _, b := range report.Bugs {
		fmt.Printf("%s: %s -> %s\n", b.Kind, b.OpA, b.OpB)
	}
	// Output:
	// reordering: append(chunk)@storage#1 -> rename(dentry)@meta#0
	// reordering: rename(dentry)@meta#0 -> unlink(chunk)@storage#0
}

// Example_crossLayer attaches the HDF5 library adapter so inconsistencies
// are attributed to the responsible layer.
func Example_crossLayer() {
	rec := paracrash.NewRecorder()
	fs, err := paracrash.NewFileSystem("lustre", paracrash.ConfigFor("lustre"), rec)
	if err != nil {
		panic(err)
	}
	w := paracrash.H5Delete(paracrash.DefaultH5Params())
	report, err := paracrash.Run(fs, w.Library(), w, paracrash.DefaultOptions())
	if err != nil {
		panic(err)
	}
	for _, b := range report.Bugs {
		fmt.Printf("[%s] %s: %s -> %s\n", b.Layer, b.Kind, b.OpA, b.OpB)
	}
	// Output:
	// [hdf5] atomicity: scsi_write(h5:snod:/g1)@server#0 -> scsi_write(h5:heap:/g1)@server#1
}

// Example_parallelExploration shards crash-state checking across four
// workers (Options.Workers). Verdicts are merged in the serial visiting
// order, so the parallel report lists exactly the serial run's bugs.
func Example_parallelExploration() {
	bugs := func(workers int) string {
		rec := paracrash.NewRecorder()
		fs, err := paracrash.NewFileSystem("beegfs", paracrash.DefaultConfig(), rec)
		if err != nil {
			panic(err)
		}
		opts := paracrash.DefaultOptions()
		opts.Workers = workers
		report, err := paracrash.Run(fs, nil, paracrash.ARVR(), opts)
		if err != nil {
			panic(err)
		}
		s := fmt.Sprintf("%d inconsistent:", report.Inconsistent)
		for _, b := range report.Bugs {
			s += fmt.Sprintf(" [%s %s -> %s]", b.Kind, b.OpA, b.OpB)
		}
		return s
	}
	serial, parallel := bugs(1), bugs(4)
	fmt.Println(serial)
	fmt.Println("parallel run identical:", parallel == serial)
	// Output:
	// 2 inconsistent: [reordering append(chunk)@storage#1 -> rename(dentry)@meta#0] [reordering rename(dentry)@meta#0 -> unlink(chunk)@storage#0]
	// parallel run identical: true
}

// Example_modelSelection tests the same program and file system against
// each consistency model of the paper's §4.4.2 lattice. Stricter models
// flag more crash states as inconsistent; the paper tests every PFS
// against causal.
func Example_modelSelection() {
	for _, model := range []paracrash.Model{
		paracrash.ModelStrict, paracrash.ModelCommit,
		paracrash.ModelCausal, paracrash.ModelBaseline,
	} {
		rec := paracrash.NewRecorder()
		fs, err := paracrash.NewFileSystem("beegfs", paracrash.DefaultConfig(), rec)
		if err != nil {
			panic(err)
		}
		opts := paracrash.DefaultOptions()
		opts.PFSModel = model
		report, err := paracrash.Run(fs, nil, paracrash.ARVR(), opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d inconsistent states, %d bugs\n",
			model, report.Inconsistent, len(report.Bugs))
	}
	// Output:
	// strict: 4 inconsistent states, 3 bugs
	// commit: 1 inconsistent states, 1 bugs
	// causal: 2 inconsistent states, 2 bugs
	// baseline: 4 inconsistent states, 3 bugs
}

// Example_lustreIsCleanOnPOSIX reproduces the paper's negative result:
// Lustre's accurate barriers leave no POSIX-level crash-consistency bug.
func Example_lustreIsCleanOnPOSIX() {
	rec := paracrash.NewRecorder()
	fs, err := paracrash.NewFileSystem("lustre", paracrash.ConfigFor("lustre"), rec)
	if err != nil {
		panic(err)
	}
	report, err := paracrash.Run(fs, nil, paracrash.ARVR(), paracrash.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("inconsistent states: %d, bugs: %d\n", report.Inconsistent, len(report.Bugs))
	// Output:
	// inconsistent states: 0, bugs: 0
}
