// Package persist provides immutable, structurally-shared hash maps
// (hash-array-mapped tries with path copying). A Map value is a snapshot:
// Set and Delete return a new Map sharing all unchanged subtrees with the
// receiver, so taking a snapshot of a store built on Map is a pointer copy
// and mutating either side copies only the O(log n) path to the changed
// leaf. This is the substrate that makes vfs.FS.Snapshot/Restore and
// blockdev.Dev.Snapshot/Restore O(1): the explorer reconstructs thousands
// of crash states per run and the old deep-copy loops dominated wall time.
//
// Maps are safe for concurrent readers. Writers produce new values and
// never mutate shared nodes, so publishing a Map (e.g. inside a snapshot)
// freezes it for every holder.
package persist

import "math/bits"

const (
	chunkBits = 5                  // hash bits consumed per trie level
	fanout    = 1 << chunkBits     // children per branch node
	chunkMask = uint64(fanout - 1) // mask for one level's chunk
)

// entry is one key/value pair stored in a leaf.
type entry[K comparable, V any] struct {
	key K
	val V
}

// node is either a branch (children indexed by a bitmap over the next hash
// chunk) or a leaf (all entries share the full 64-bit hash; more than one
// entry means a genuine hash collision, resolved by linear scan).
type node[K comparable, V any] struct {
	bitmap   uint32
	children []*node[K, V]
	hash     uint64
	entries  []entry[K, V]
}

func (n *node[K, V]) leaf() bool { return len(n.entries) > 0 }

// slot returns the compact child index for hash chunk c: the number of
// one-bits below position c in the bitmap.
func slot(bitmap uint32, c uint64) int {
	return bits.OnesCount32(bitmap & (uint32(1)<<c - 1))
}

// Map is an immutable hash map. The zero value is NOT ready to use —
// construct with NewMap to bind the hash function. Set/Delete return the
// updated map; the receiver is never modified.
type Map[K comparable, V any] struct {
	root *node[K, V]
	size int
	hash func(K) uint64
}

// NewMap returns an empty map using h to hash keys. h must be pure: equal
// keys must hash equally for the life of the map.
func NewMap[K comparable, V any](h func(K) uint64) Map[K, V] {
	return Map[K, V]{hash: h}
}

// Len returns the number of entries.
func (m Map[K, V]) Len() int { return m.size }

// Get returns the value stored under key, if any.
func (m Map[K, V]) Get(key K) (V, bool) {
	var zero V
	n := m.root
	if n == nil {
		return zero, false
	}
	h := m.hash(key)
	shift := uint(0)
	for !n.leaf() {
		c := (h >> shift) & chunkMask
		if n.bitmap&(uint32(1)<<c) == 0 {
			return zero, false
		}
		n = n.children[slot(n.bitmap, c)]
		shift += chunkBits
	}
	if n.hash != h {
		return zero, false
	}
	for _, e := range n.entries {
		if e.key == key {
			return e.val, true
		}
	}
	return zero, false
}

// Set returns a map with key bound to val. The receiver is unchanged.
func (m Map[K, V]) Set(key K, val V) Map[K, V] {
	root, added := setNode(m.root, m.hash(key), 0, key, val)
	size := m.size
	if added {
		size++
	}
	return Map[K, V]{root: root, size: size, hash: m.hash}
}

func setNode[K comparable, V any](n *node[K, V], h uint64, shift uint, key K, val V) (*node[K, V], bool) {
	if n == nil {
		return &node[K, V]{hash: h, entries: []entry[K, V]{{key, val}}}, true
	}
	if n.leaf() {
		if n.hash == h {
			entries := make([]entry[K, V], len(n.entries), len(n.entries)+1)
			copy(entries, n.entries)
			for i := range entries {
				if entries[i].key == key {
					entries[i].val = val
					return &node[K, V]{hash: h, entries: entries}, false
				}
			}
			entries = append(entries, entry[K, V]{key, val})
			return &node[K, V]{hash: h, entries: entries}, true
		}
		// Hashes diverge: push the existing leaf one level down and retry.
		branch := &node[K, V]{}
		c := (n.hash >> shift) & chunkMask
		branch.bitmap = uint32(1) << c
		branch.children = []*node[K, V]{n}
		return setNode(branch, h, shift, key, val)
	}
	c := (h >> shift) & chunkMask
	bit := uint32(1) << c
	i := slot(n.bitmap, c)
	if n.bitmap&bit != 0 {
		child, added := setNode(n.children[i], h, shift+chunkBits, key, val)
		children := make([]*node[K, V], len(n.children))
		copy(children, n.children)
		children[i] = child
		return &node[K, V]{bitmap: n.bitmap, children: children}, added
	}
	children := make([]*node[K, V], len(n.children)+1)
	copy(children, n.children[:i])
	children[i] = &node[K, V]{hash: h, entries: []entry[K, V]{{key, val}}}
	copy(children[i+1:], n.children[i:])
	return &node[K, V]{bitmap: n.bitmap | bit, children: children}, true
}

// Delete returns a map without key. The receiver is unchanged.
func (m Map[K, V]) Delete(key K) Map[K, V] {
	root, removed := deleteNode(m.root, m.hash(key), 0, key)
	if !removed {
		return m
	}
	return Map[K, V]{root: root, size: m.size - 1, hash: m.hash}
}

func deleteNode[K comparable, V any](n *node[K, V], h uint64, shift uint, key K) (*node[K, V], bool) {
	if n == nil {
		return nil, false
	}
	if n.leaf() {
		if n.hash != h {
			return n, false
		}
		for i := range n.entries {
			if n.entries[i].key == key {
				if len(n.entries) == 1 {
					return nil, true
				}
				entries := make([]entry[K, V], 0, len(n.entries)-1)
				entries = append(entries, n.entries[:i]...)
				entries = append(entries, n.entries[i+1:]...)
				return &node[K, V]{hash: h, entries: entries}, true
			}
		}
		return n, false
	}
	c := (h >> shift) & chunkMask
	bit := uint32(1) << c
	if n.bitmap&bit == 0 {
		return n, false
	}
	i := slot(n.bitmap, c)
	child, removed := deleteNode(n.children[i], h, shift+chunkBits, key)
	if !removed {
		return n, false
	}
	if child == nil {
		if len(n.children) == 1 {
			return nil, true
		}
		children := make([]*node[K, V], 0, len(n.children)-1)
		children = append(children, n.children[:i]...)
		children = append(children, n.children[i+1:]...)
		return &node[K, V]{bitmap: n.bitmap &^ bit, children: children}, true
	}
	// Collapse single-leaf branches so trie depth tracks population, not
	// insertion history.
	if child.leaf() && len(n.children) == 1 {
		return child, true
	}
	children := make([]*node[K, V], len(n.children))
	copy(children, n.children)
	children[i] = child
	return &node[K, V]{bitmap: n.bitmap, children: children}, true
}

// Range calls f for every entry until f returns false. Order is the trie
// order of the hash function — deterministic for a given map content, but
// not sorted; callers wanting sorted output must collect and sort.
func (m Map[K, V]) Range(f func(K, V) bool) {
	rangeNode(m.root, f)
}

func rangeNode[K comparable, V any](n *node[K, V], f func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if n.leaf() {
		for _, e := range n.entries {
			if !f(e.key, e.val) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !rangeNode(c, f) {
			return false
		}
	}
	return true
}

// StringHash is FNV-1a over the bytes of s, suitable for NewMap[string].
func StringHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// IntHash mixes an int with the splitmix64 finalizer, suitable for
// NewMap[int]. Sequential inode numbers and LBAs otherwise cluster in the
// low trie levels.
func IntHash(i int) uint64 { return mix64(uint64(i)) }

// Int64Hash mixes an int64 with the splitmix64 finalizer.
func Int64Hash(i int64) uint64 { return mix64(uint64(i)) }

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
