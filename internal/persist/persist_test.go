package persist

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestMapMatchesBuiltin drives random Set/Delete/Get sequences against a
// builtin map oracle.
func TestMapMatchesBuiltin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMap[string, int](StringHash)
	oracle := map[string]int{}
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}
	for step := 0; step < 20000; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(3) {
		case 0:
			v := rng.Intn(1000)
			m = m.Set(k, v)
			oracle[k] = v
		case 1:
			m = m.Delete(k)
			delete(oracle, k)
		case 2:
			got, ok := m.Get(k)
			want, wok := oracle[k]
			if ok != wok || got != want {
				t.Fatalf("step %d Get(%q) = %d,%v want %d,%v", step, k, got, ok, want, wok)
			}
		}
		if m.Len() != len(oracle) {
			t.Fatalf("step %d Len = %d want %d", step, m.Len(), len(oracle))
		}
	}
	// Final full sweep, both directions.
	for k, want := range oracle {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("final Get(%q) = %d,%v want %d", k, got, ok, want)
		}
	}
	n := 0
	m.Range(func(k string, v int) bool {
		n++
		if want, ok := oracle[k]; !ok || v != want {
			t.Fatalf("Range saw %q=%d not in oracle", k, v)
		}
		return true
	})
	if n != len(oracle) {
		t.Fatalf("Range visited %d entries, want %d", n, len(oracle))
	}
}

// TestStructuralSharing verifies that a captured Map value is immune to
// later mutations of its successor — the property Snapshot/Restore rely on.
func TestStructuralSharing(t *testing.T) {
	m := NewMap[int, string](IntHash)
	for i := 0; i < 100; i++ {
		m = m.Set(i, fmt.Sprintf("v%d", i))
	}
	snap := m
	m = m.Set(42, "mutated")
	m = m.Delete(7)
	for i := 0; i < 100; i++ {
		want := fmt.Sprintf("v%d", i)
		if got, ok := snap.Get(i); !ok || got != want {
			t.Fatalf("snapshot Get(%d) = %q,%v want %q", i, got, ok, want)
		}
	}
	if got, _ := m.Get(42); got != "mutated" {
		t.Fatalf("successor Get(42) = %q want mutated", got)
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("successor still has deleted key 7")
	}
}

// collideHash forces all keys into 4 hash buckets so collision leaves and
// deep-branch splits are exercised.
func collideHash(s string) uint64 { return StringHash(s) & 3 }

func TestHashCollisions(t *testing.T) {
	m := NewMap[string, int](collideHash)
	oracle := map[string]int{}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("c%d", i)
		m = m.Set(k, i)
		oracle[k] = i
	}
	for k, want := range oracle {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("Get(%q) = %d,%v want %d", k, got, ok, want)
		}
	}
	for i := 0; i < 64; i += 2 {
		k := fmt.Sprintf("c%d", i)
		m = m.Delete(k)
		delete(oracle, k)
	}
	if m.Len() != len(oracle) {
		t.Fatalf("Len = %d want %d", m.Len(), len(oracle))
	}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("c%d", i)
		got, ok := m.Get(k)
		want, wok := oracle[k]
		if ok != wok || got != want {
			t.Fatalf("Get(%q) = %d,%v want %d,%v", k, got, ok, want, wok)
		}
	}
}

func TestDeleteMissingReturnsSame(t *testing.T) {
	m := NewMap[string, int](StringHash)
	m = m.Set("a", 1)
	n := m.Delete("nope")
	if n.Len() != 1 {
		t.Fatalf("Len changed on missing delete: %d", n.Len())
	}
	if v, ok := n.Get("a"); !ok || v != 1 {
		t.Fatal("existing entry lost on missing delete")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	m := NewMap[int, int](IntHash)
	for i := 0; i < 50; i++ {
		m = m.Set(i, i)
	}
	n := 0
	m.Range(func(int, int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Range visited %d after early stop, want 10", n)
	}
}
