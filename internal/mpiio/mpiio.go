// Package mpiio simulates the MPI-IO layer of the stack (paper Figure 1):
// file handles whose operations are recorded as MPI calls and forwarded to
// the PFS client, plus MPI_Barrier with the cross-process causality edges
// the trace analysis needs.
//
// A File also implements hdf5.Backend, so the I/O library writes through
// MPI-IO exactly as in the paper's Figure 4 (H5Dwrite → MPI_File_write_at
// → pwrite), with the library's object tags propagated down to the
// lowermost traced operations via the PFS tag hint.
package mpiio

import (
	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

// File is an open MPI-IO file handle bound to one client process.
type File struct {
	fs     pfs.FileSystem
	client pfs.Client
	rec    *trace.Recorder
	path   string
}

// Open opens (or with create, creates) path through the PFS client for
// rank id, recording MPI_File_open.
func Open(fs pfs.FileSystem, id int, path string, create bool) (*File, error) {
	f := &File{fs: fs, client: fs.Client(id), rec: fs.Recorder(), path: path}
	name := "MPI_File_open"
	if create {
		name = "MPI_File_open(MODE_CREATE)"
	}
	f.rec.Push(trace.Op{Layer: trace.LayerMPI, Proc: f.client.Proc(), Name: name, Path: path, FileID: path})
	defer f.rec.Pop(f.client.Proc())
	if create {
		if err := f.client.Create(path); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Proc returns the owning client process name.
func (f *File) Proc() string { return f.client.Proc() }

// Path returns the file path.
func (f *File) Path() string { return f.path }

// WriteAt implements hdf5.Backend: it records MPI_File_write_at and routes
// the bytes through the PFS client, tagging the lowermost data writes with
// the library's object label.
func (f *File) WriteAt(off int64, data []byte, tag string) error {
	f.rec.Push(trace.Op{
		Layer: trace.LayerMPI, Proc: f.client.Proc(),
		Name: "MPI_File_write_at", Path: f.path, FileID: f.path,
		Offset: off, Size: int64(len(data)), Tag: tag,
	})
	defer f.rec.Pop(f.client.Proc())
	if th, ok := f.fs.(pfs.TagHinter); ok && tag != "" {
		th.SetTagHint(tag)
		defer th.SetTagHint("")
	}
	return f.client.WriteAt(f.path, off, data)
}

// ReadAll implements hdf5.Backend: reads the whole file (untraced; reads
// do not affect crash consistency).
func (f *File) ReadAll() ([]byte, error) {
	return f.client.Read(f.path)
}

// Sync records MPI_File_sync and forwards the fsync to the PFS.
func (f *File) Sync() error {
	op := f.rec.Push(trace.Op{
		Layer: trace.LayerMPI, Proc: f.client.Proc(),
		Name: "MPI_File_sync", Path: f.path, FileID: f.path,
	})
	op.Sync = true
	defer f.rec.Pop(f.client.Proc())
	return f.client.Fsync(f.path)
}

// Close records MPI_File_close and the PFS-level close.
func (f *File) Close() error {
	f.rec.Push(trace.Op{
		Layer: trace.LayerMPI, Proc: f.client.Proc(),
		Name: "MPI_File_close", Path: f.path, FileID: f.path,
	})
	defer f.rec.Pop(f.client.Proc())
	return f.client.Close(f.path)
}

// Barrier records an MPI_Barrier across the given client procs with full
// cross-process causality: every proc's barrier entry happens-before every
// proc's barrier exit. The edges run through a coordinator process
// ("mpi/coordinator"), whose program order transitively links all pairs —
// the paper's happens-before order from MPI synchronisations.
func Barrier(rec *trace.Recorder, procs []string) {
	const coord = "mpi/coordinator"
	// Enter: each proc sends to the coordinator.
	for _, p := range procs {
		m := rec.NewMsgID()
		rec.Record(trace.Op{Layer: trace.LayerMPI, Proc: p, Name: "MPI_Barrier(enter)", MsgID: m, IsSend: true})
		rec.Record(trace.Op{Layer: trace.LayerMPI, Proc: coord, Name: "barrier_gather", Path: p, MsgID: m})
	}
	// Exit: the coordinator releases each proc.
	for _, p := range procs {
		m := rec.NewMsgID()
		rec.Record(trace.Op{Layer: trace.LayerMPI, Proc: coord, Name: "barrier_release", Path: p, MsgID: m, IsSend: true})
		rec.Record(trace.Op{Layer: trace.LayerMPI, Proc: p, Name: "MPI_Barrier(exit)", MsgID: m})
	}
}

// BarrierClients is a convenience for workloads holding open files.
func BarrierClients(rec *trace.Recorder, files ...*File) {
	procs := make([]string, len(files))
	for i, f := range files {
		procs[i] = f.Proc()
	}
	Barrier(rec, procs)
}
