package mpiio

import (
	"testing"

	"paracrash/internal/causality"
	"paracrash/internal/pfs"
	"paracrash/internal/pfs/extfs"
	"paracrash/internal/trace"
)

func newFS(t *testing.T) pfs.FileSystem {
	t.Helper()
	conf := pfs.DefaultConfig()
	conf.MetaServers = 0
	conf.StorageServers = 1
	return extfs.New(conf, trace.NewRecorder())
}

func TestOpenWriteReadClose(t *testing.T) {
	fs := newFS(t)
	f, err := Open(fs, 0, "/file", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(0, []byte("hello"), "tag"); err != nil {
		t.Fatal(err)
	}
	b, err := f.ReadAll()
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadAll = %q, %v", b, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, o := range fs.Recorder().Ops() {
		if o.Layer == trace.LayerMPI {
			names = append(names, o.Name)
		}
	}
	want := []string{"MPI_File_open(MODE_CREATE)", "MPI_File_write_at", "MPI_File_sync", "MPI_File_close"}
	if len(names) != len(want) {
		t.Fatalf("MPI ops = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("MPI op %d = %q, want %q", i, names[i], want[i])
		}
	}
}

// TestBarrierInducesAllPairCausality: an op before the barrier on rank 0
// happens-before an op after the barrier on rank 1, and vice versa.
func TestBarrierInducesAllPairCausality(t *testing.T) {
	rec := trace.NewRecorder()
	a := rec.Record(trace.Op{Layer: trace.LayerApp, Proc: "client/0", Name: "before0"})
	b := rec.Record(trace.Op{Layer: trace.LayerApp, Proc: "client/1", Name: "before1"})
	Barrier(rec, []string{"client/0", "client/1"})
	c := rec.Record(trace.Op{Layer: trace.LayerApp, Proc: "client/0", Name: "after0"})
	d := rec.Record(trace.Op{Layer: trace.LayerApp, Proc: "client/1", Name: "after1"})

	g := causality.Build(rec.Ops())
	idx := func(op *trace.Op) int {
		i, ok := g.IndexOf(op.ID)
		if !ok {
			t.Fatalf("op %v not in graph", op)
		}
		return i
	}
	for _, pair := range [][2]*trace.Op{{a, c}, {a, d}, {b, c}, {b, d}} {
		if !g.HB(idx(pair[0]), idx(pair[1])) {
			t.Errorf("%s should happen-before %s through the barrier", pair[0].Name, pair[1].Name)
		}
	}
	// Before-ops on different ranks stay concurrent.
	if g.HB(idx(a), idx(b)) || g.HB(idx(b), idx(a)) {
		t.Error("pre-barrier ops must stay concurrent")
	}
}

func TestOpenMissingFileFails(t *testing.T) {
	fs := newFS(t)
	f, err := Open(fs, 0, "/missing", false)
	if err != nil {
		t.Fatal(err) // open itself is lazy; the read must fail
	}
	if _, err := f.ReadAll(); err == nil {
		t.Fatal("reading a missing file should fail")
	}
}
