package obs

import (
	"errors"
	"testing"
	"time"

	"paracrash/internal/faultinject"
)

// blockingSink wedges on every write until released — the worst-behaved
// sink the chaos gate models.
type blockingSink struct{ release chan struct{} }

func (s *blockingSink) WriteMetrics([]Metric) error {
	<-s.release
	return nil
}

// erroringSink fails every write.
type erroringSink struct{}

func (erroringSink) WriteMetrics([]Metric) error { return errors.New("sink down") }

// panickingSink panics on every write.
type panickingSink struct{}

func (panickingSink) WriteMetrics([]Metric) error { panic("sink exploded") }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestChaosBlockingSinkNeverStallsPublish pins the pipeline's central
// liveness claim: a sink wedged forever costs dropped batches, never a
// stalled Publish and never an unbounded Close.
func TestChaosBlockingSinkNeverStallsPublish(t *testing.T) {
	rt := NewRouter()
	rt.DrainTimeout = 50 * time.Millisecond
	rt.Attach("j", staticCollector{{Name: "states/checked", Kind: KindCounter, Value: 1}})
	blocked := &blockingSink{release: make(chan struct{})}
	defer close(blocked.release) // let the abandoned worker exit at test end
	rt.AddSink(blocked)

	start := time.Now()
	for i := 0; i < 64; i++ {
		rt.Publish()
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("64 publishes against a wedged sink took %v", elapsed)
	}
	if rt.Dropped() == 0 {
		t.Fatal("no batches dropped despite a wedged sink and a bounded queue")
	}

	start = time.Now()
	rt.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close hostage to a wedged sink: took %v", elapsed)
	}
}

// TestChaosErroringSinkIsolated pins error isolation: a failing sink is
// counted and surfaced as a self-metric while a healthy sink beside it
// receives every batch.
func TestChaosErroringSinkIsolated(t *testing.T) {
	rt := NewRouter()
	rt.Attach("j", staticCollector{{Name: "states/checked", Kind: KindCounter, Value: 1}})
	ring := NewRingSink(64)
	rt.AddSink(erroringSink{})
	rt.AddSink(ring)

	const n = 5
	for i := 0; i < n; i++ {
		rt.Publish()
	}
	waitFor(t, "sink errors to be counted", func() bool { return rt.Errors() >= n })
	waitFor(t, "healthy sink to drain", func() bool { return ring.Len() >= n })

	// The failure is observable in the pipeline's own series.
	found := false
	for _, m := range rt.Sample() {
		if m.Name == "obs/router/sink-errors" && m.Value >= n {
			found = true
		}
	}
	if !found {
		t.Fatalf("obs/router/sink-errors self-metric missing: %+v", rt.Sample())
	}
	rt.Close()
}

// TestChaosPanickingSinkQuarantined pins that a sink panicking mid-write
// is converted into a counted error instead of killing the process.
func TestChaosPanickingSinkQuarantined(t *testing.T) {
	rt := NewRouter()
	rt.Attach("j", staticCollector{{Name: "x", Kind: KindCounter, Value: 1}})
	rt.AddSink(panickingSink{})
	rt.Publish()
	waitFor(t, "panic to be quarantined", func() bool { return rt.Errors() >= 1 })
	rt.Close()
}

// TestChaosInjectedSinkFaults drives the deterministic fault plane through
// the "obs/sink-write" site: each sink's first MaxPerPoint writes fault and
// are counted, the point heals, and subsequent batches flow — no retries,
// no stalls, no cross-sink interference.
func TestChaosInjectedSinkFaults(t *testing.T) {
	const faultsPerSink = 3
	rt := NewRouter()
	rt.Attach("j", staticCollector{{Name: "x", Kind: KindCounter, Value: 1}})
	rt.SetFaults(faultinject.New(faultinject.Config{
		Seed:        1,
		Rate:        1,
		Kinds:       []faultinject.Kind{faultinject.KindErr},
		Sites:       []string{"obs/sink-write"},
		MaxPerPoint: faultsPerSink,
	}))
	ringA, ringB := NewRingSink(64), NewRingSink(64)
	rt.AddSink(ringA)
	rt.AddSink(ringB)

	const publishes = 5
	for i := 0; i < publishes; i++ {
		rt.Publish()
	}
	rt.Close() // adds one final publish, then flushes both workers

	total := publishes + 1
	wantDelivered := total - faultsPerSink
	if got := ringA.Len(); got != wantDelivered {
		t.Fatalf("sink A delivered %d batches, want %d (faults heal after %d)", got, wantDelivered, faultsPerSink)
	}
	if got := ringB.Len(); got != wantDelivered {
		t.Fatalf("sink B delivered %d batches, want %d", got, wantDelivered)
	}
	if got := rt.Errors(); got != 2*faultsPerSink {
		t.Fatalf("Errors = %d, want %d", got, 2*faultsPerSink)
	}
}
