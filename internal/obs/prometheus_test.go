package obs

import (
	"bytes"
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"states/checked", "states_checked"},
		{"phase/graph-build", "phase_graph_build"},
		{"a.b.c", "a_b_c"},
		{"already_fine", "already_fine"},
		{"7layers", "_7layers"},
		{"mixed/CASE-99", "mixed_CASE_99"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := SanitizeMetricName(tc.in); got != tc.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestPrometheusConformance is the table-driven exposition check: every
// rendered line must carry the namespace, the sanitized family name, the
// counter suffix convention, correct TYPE declarations and escaped labels.
func TestPrometheusConformance(t *testing.T) {
	cases := []struct {
		name  string
		batch []Metric
		want  []string // exact output lines, in order
	}{
		{
			name:  "fleet counter gains _total",
			batch: []Metric{{Name: "states/checked", Kind: KindCounter, Value: 42}},
			want: []string{
				"# TYPE paracrash_states_checked_total counter",
				"paracrash_states_checked_total 42",
			},
		},
		{
			name:  "gauge keeps its name",
			batch: []Metric{{Name: "queue/depth", Kind: KindGauge, Value: 3}},
			want: []string{
				"# TYPE paracrash_queue_depth gauge",
				"paracrash_queue_depth 3",
			},
		},
		{
			name: "fleet then per-job under one TYPE line",
			batch: []Metric{
				{Name: "states/checked", Kind: KindCounter, Value: 15},
				{Name: "states/checked", Kind: KindCounter, Job: "job-a", Value: 10},
				{Name: "states/checked", Kind: KindCounter, Job: "job-b", Value: 5},
			},
			want: []string{
				"# TYPE paracrash_states_checked_total counter",
				"paracrash_states_checked_total 15",
				`paracrash_states_checked_total{job="job-a"} 10`,
				`paracrash_states_checked_total{job="job-b"} 5`,
			},
		},
		{
			name:  "label escaping",
			batch: []Metric{{Name: "x", Kind: KindGauge, Job: `a"b\c` + "\n", Value: 1}},
			want: []string{
				"# TYPE paracrash_x gauge",
				`paracrash_x{job="a\"b\\c\n"} 1`,
			},
		},
		{
			name:  "fractional seconds survive",
			batch: []Metric{{Name: "pfs/restore/seconds", Kind: KindCounter, Value: 0.125}},
			want: []string{
				"# TYPE paracrash_pfs_restore_seconds_total counter",
				"paracrash_pfs_restore_seconds_total 0.125",
			},
		},
		{
			name:  "existing _total not doubled",
			batch: []Metric{{Name: "ops_total", Kind: KindCounter, Value: 2}},
			want: []string{
				"# TYPE paracrash_ops_total counter",
				"paracrash_ops_total 2",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WritePrometheus(&buf, tc.batch); err != nil {
				t.Fatal(err)
			}
			got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
			if len(got) != len(tc.want) {
				t.Fatalf("lines = %d, want %d:\n%s", len(got), len(tc.want), buf.String())
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("line %d = %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestPrometheusGolden pins the full exposition of a realistic router
// sample against testdata/exposition.golden, so any format drift is a
// reviewed diff rather than a silent scraper break.
func TestPrometheusGolden(t *testing.T) {
	rt := NewRouter()
	proc := NewRun()
	proc.Counter("jobs/submitted").Add(3)
	proc.Counter("jobs/done").Add(2)
	rt.Attach("", proc)
	rt.Attach("job-0001", staticCollector{
		{Name: "states/checked", Kind: KindCounter, Value: 128},
		{Name: "states/deduped", Kind: KindCounter, Value: 512},
		{Name: "restores/servers", Kind: KindCounter, Value: 36},
		{Name: "legal/pfs", Kind: KindGauge, Value: 640},
	})
	rt.Attach("job-0002", staticCollector{
		{Name: "states/checked", Kind: KindCounter, Value: 64},
		{Name: "legal/pfs", Kind: KindGauge, Value: 320},
	})

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, rt.Sample()); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run TestPrometheusGolden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestPromHandlerScrape(t *testing.T) {
	rt := NewRouter()
	run := NewRun()
	run.Counter("states/checked").Add(7)
	rt.Attach("job-x", run)

	srv := httptest.NewServer(rt.PromHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, promContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE paracrash_states_checked_total counter",
		"paracrash_states_checked_total 7",
		`paracrash_states_checked_total{job="job-x"} 7`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}

	// Scrapes are live: a later counter bump shows up on the next scrape.
	run.Counter("states/checked").Add(3)
	resp2, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body2), "paracrash_states_checked_total 10") {
		t.Fatalf("second scrape not live:\n%s", body2)
	}
}
