package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersGaugesTimers(t *testing.T) {
	r := NewRun()
	c := r.Counter("states/checked")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("states/checked") != c {
		t.Fatal("Counter must return the same handle for the same name")
	}

	g := r.Gauge("legal/pfs")
	g.Set(5)
	g.Max(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge after Max(3) = %d, want 5", got)
	}
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge after Max(9) = %d, want 9", got)
	}
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after Add(-2) = %d, want 7", got)
	}

	stop := r.StartTimer("pfs/restore")
	time.Sleep(time.Millisecond)
	stop()
	stopPhase := r.Phase(PhaseExplore)
	if got := r.CurrentPhase(); got != PhaseExplore {
		t.Fatalf("CurrentPhase = %q, want %q", got, PhaseExplore)
	}
	stopPhase()

	s := r.Summary()
	if s.Counters["states/checked"] != 4 || s.Gauges["legal/pfs"] != 7 {
		t.Fatalf("summary totals wrong: %+v", s)
	}
	var restore, phase *TimerStat
	for i := range s.Timers {
		switch s.Timers[i].Name {
		case "pfs/restore":
			restore = &s.Timers[i]
		case "phase/" + PhaseExplore:
			phase = &s.Timers[i]
		}
	}
	if restore == nil || restore.Count != 1 || restore.Seconds <= 0 {
		t.Fatalf("pfs/restore timer missing or empty: %+v", s.Timers)
	}
	if phase == nil || phase.Count != 1 {
		t.Fatalf("explore phase timer missing: %+v", s.Timers)
	}
}

// TestNilRunIsNoop pins the disabled-path contract: every operation on a
// nil run and its nil handles is safe.
func TestNilRunIsNoop(t *testing.T) {
	var r *Run
	c := r.Counter("x")
	c.Add(1)
	c.Inc()
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter must stay zero")
	}
	g := r.Gauge("y")
	g.Set(9)
	g.Max(9)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay zero")
	}
	r.StartTimer("t")()
	r.Phase(PhaseTrace)()
	if r.CurrentPhase() != "" || r.Elapsed() != 0 {
		t.Fatal("nil run must report empty state")
	}
	r.AddSink(&HumanSink{W: io.Discard})
	r.StartProgress(time.Millisecond)
	r.Close()
	s := r.Summary()
	if len(s.Counters) != 0 || len(s.Timers) != 0 {
		t.Fatalf("nil summary not empty: %+v", s)
	}
}

// TestNoopHotPathAllocs asserts the disabled collector adds no allocations
// on the per-crash-state hot path (counter bumps, gauge updates, timer
// start/stop through pre-resolved nil handles).
func TestNoopHotPathAllocs(t *testing.T) {
	var r *Run
	c := r.Counter("states/checked")
	g := r.Gauge("legal/pfs")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Max(7)
		r.StartTimer("pfs/restore")()
	})
	if allocs != 0 {
		t.Fatalf("no-op hot path allocates %.1f per op, want 0", allocs)
	}
}

// TestLiveCounterAllocs asserts that bumping a live, pre-resolved counter
// is also allocation-free (the enabled hot path only pays atomics).
func TestLiveCounterAllocs(t *testing.T) {
	r := NewRun()
	c := r.Counter("states/checked")
	g := r.Gauge("legal/pfs")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Max(3)
	})
	if allocs != 0 {
		t.Fatalf("live counter hot path allocates %.1f per op, want 0", allocs)
	}
}

func TestConcurrentTimersAccumulate(t *testing.T) {
	r := NewRun()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stop := r.StartTimer("pfs/recover")
			time.Sleep(2 * time.Millisecond)
			stop()
		}()
	}
	wg.Wait()
	s := r.Summary()
	for _, ts := range s.Timers {
		if ts.Name == "pfs/recover" {
			if ts.Count != 8 {
				t.Fatalf("count = %d, want 8", ts.Count)
			}
			if ts.Seconds < 0.008 {
				t.Fatalf("accumulated %.4fs, want >= sum of spans", ts.Seconds)
			}
			return
		}
	}
	t.Fatal("pfs/recover timer missing")
}

func TestProgressEventsAndSinks(t *testing.T) {
	r := NewRun()
	ring := NewRingSink(256)
	var human, jsonl bytes.Buffer
	r.AddSink(ring)
	r.AddSink(&HumanSink{W: &human})
	r.AddSink(NewJSONLSink(&jsonl))

	c := r.Counter("states/checked")
	r.Gauge("worker/00/pending").Set(12)
	r.Phase(PhaseExplore)
	r.StartProgress(5 * time.Millisecond)
	for i := 0; i < 50; i++ {
		c.Add(10)
		time.Sleep(time.Millisecond)
	}
	r.Close()

	evs := ring.Events()
	if len(evs) < 2 {
		t.Fatalf("got %d events, want >= 2", len(evs))
	}
	last, ok := ring.LastEvent()
	if !ok || !last.Final {
		t.Fatal("last event must be final")
	}
	if last.Counters["states/checked"] != 500 {
		t.Fatalf("final counter = %d, want 500", last.Counters["states/checked"])
	}
	if last.Phase != PhaseExplore {
		t.Fatalf("phase = %q, want explore", last.Phase)
	}
	if last.Gauges["worker/00/pending"] != 12 {
		t.Fatalf("gauge missing from event: %+v", last.Gauges)
	}
	// Second and later events carry rates.
	if evs[1].Rates == nil {
		t.Fatal("second event must carry rates")
	}
	if !strings.Contains(human.String(), "states/checked=") {
		t.Fatalf("human ticker line missing counter: %q", human.String())
	}
	// Every JSONL line must parse back to an Event.
	dec := json.NewDecoder(&jsonl)
	n := 0
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("JSONL line %d: %v", n, err)
		}
		n++
	}
	if n != len(evs) {
		t.Fatalf("JSONL lines = %d, ring sink events = %d", n, len(evs))
	}
}

func TestServeEndpoint(t *testing.T) {
	r := NewRun()
	r.Counter("states/checked").Add(42)
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	var sum Summary
	if err := json.Unmarshal([]byte(get("/debug/obs")), &sum); err != nil {
		t.Fatalf("/debug/obs not JSON: %v", err)
	}
	if sum.Counters["states/checked"] != 42 {
		t.Fatalf("endpoint summary = %+v, want counter 42", sum)
	}
	if !strings.Contains(get("/debug/pprof/"), "pprof") {
		t.Fatal("/debug/pprof/ index missing")
	}
	if !strings.Contains(get("/debug/vars"), "paracrash") {
		t.Fatal("/debug/vars missing paracrash expvar")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	r := NewRun()
	r.Counter("ops/replayed").Add(7)
	stop := r.Phase(PhaseGraph)
	stop()
	out, err := r.SummaryJSON()
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(out, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["ops/replayed"] != 7 {
		t.Fatalf("round-trip lost counter: %+v", s)
	}
}
