// Package obs is the telemetry pipeline of ParaCrash, structured as
// collectors → router → sinks: collectors (phase timers, atomic counters
// and gauges on a Run; anything implementing Collector) feed a metric
// Router that relabels, aggregates per-job series into fleet rollups, and
// fans sampled batches out to pluggable MetricSinks (stdout text, JSONL
// file, HTTP push, a Prometheus-text /metrics handler, and an in-memory
// RingSink tests assert against). The original progress-event stream
// (Event, Sink, StreamSink) and the one-shot JSON Summary ride unchanged
// beside the pipeline, so the -metrics and -progress-jsonl outputs stay
// byte-stable; an opt-in pprof/expvar HTTP endpoint completes the layer.
//
// The package is built around one invariant: observability is passive. A
// Run only ever records what the exploration engine did; it never feeds
// back into visiting order, pruning, caching, or any other decision, so
// the byte-identical-report determinism contract of the parallel engine
// holds with metrics on or off.
//
// The second invariant is that the disabled path is free. A nil *Run is a
// valid no-op collector: every method on a nil *Run — and on the nil
// *Counter / *Gauge handles it hands out — is safe, does nothing, and
// allocates nothing, so instrumented hot paths (per-crash-state counter
// bumps, per-restore timers) need no conditionals and cost ~1ns when
// metrics are off. obs_test.go pins this with testing.AllocsPerRun.
package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names used by the exploration engine (paper §6's effort breakdown:
// where a run's wall time goes).
const (
	// PhaseTrace covers preamble execution, library seeding and the traced
	// test-program run.
	PhaseTrace = "trace"
	// PhaseGraph covers causality analysis, layer-op extraction and the
	// golden-state replays.
	PhaseGraph = "graph-build"
	// PhaseGenerate covers crash-state enumeration (Algorithm 1) when it
	// runs as a separate collection pass (optimized/parallel engines). The
	// streaming brute/pruning engine interleaves generation with checking
	// and charges both to PhaseExplore.
	PhaseGenerate = "generate"
	// PhaseExplore covers crash-state reconstruction and checking.
	PhaseExplore = "explore"
	// PhaseMerge covers the deterministic serial-order merge of worker
	// verdicts (parallel runs only; nested inside PhaseExplore).
	PhaseMerge = "merge"
	// PhaseCampaign covers a fuzz campaign's oracle evaluation: every
	// explorer run the campaign performs is nested inside it.
	PhaseCampaign = "campaign"
	// PhaseMinimize covers delta-debugging minimization of an oracle
	// violation (nested inside PhaseCampaign).
	PhaseMinimize = "minimize"
	// PhaseResume covers checkpoint-journal loading: parsing previously
	// completed crash-state verdicts so exploration continues from the
	// frontier instead of restarting.
	PhaseResume = "resume"
)

// nopStop is the stop function handed out by nil runs; returning a shared
// value keeps the disabled timer path allocation-free.
var nopStop = func() {}

// Counter is a monotonically increasing atomic counter. Handles are
// obtained from Run.Counter and are safe for concurrent use; a nil
// *Counter is a no-op.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an instantaneous atomic value (queue depths, high-water marks).
// A nil *Gauge is a no-op.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Max raises the gauge to v if v is larger (high-water-mark semantics).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// timer accumulates the total duration and invocation count of a named
// span across concurrent stop/start pairs.
type timer struct {
	ns atomic.Int64
	n  atomic.Int64
}

// Run collects the metrics of one ParaCrash invocation (or one experiment
// batch — concurrent cells may share a Run; spans accumulate).
type Run struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*timer
	// registration order, for stable summaries and progress lines
	counterOrder []string
	gaugeOrder   []string
	timerOrder   []string

	curPhase atomic.Value // string

	progress *progressLoop
	sinkMu   sync.Mutex
	sinks    []Sink
}

// NewRun returns an active metrics collector anchored at the current time.
func NewRun() *Run {
	r := &Run{
		start:    time.Now(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*timer{},
	}
	r.curPhase.Store("")
	return r
}

// Counter returns (registering on first use) the named counter. Returns a
// nil no-op handle when r is nil.
func (r *Run) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
		r.counterOrder = append(r.counterOrder, name)
	}
	return c
}

// Gauge returns (registering on first use) the named gauge. Returns a nil
// no-op handle when r is nil.
func (r *Run) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
		r.gaugeOrder = append(r.gaugeOrder, name)
	}
	return g
}

// StartTimer opens a monotonic span under name and returns its stop
// function. Spans may overlap freely (concurrent workers, recursive
// phases); the timer accumulates total duration and count. An unstopped
// span (error return mid-phase) contributes nothing.
func (r *Run) StartTimer(name string) func() {
	if r == nil {
		return nopStop
	}
	t := r.timer(name)
	begin := time.Now()
	return func() {
		t.ns.Add(int64(time.Since(begin)))
		t.n.Add(1)
	}
}

func (r *Run) timer(name string) *timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &timer{}
		r.timers[name] = t
		r.timerOrder = append(r.timerOrder, name)
	}
	return t
}

// Phase opens a span for a top-level pipeline phase and marks it as the
// run's current phase (shown by progress events). Returns the stop
// function, like StartTimer.
func (r *Run) Phase(name string) func() {
	if r == nil {
		return nopStop
	}
	r.curPhase.Store(name)
	return r.StartTimer("phase/" + name)
}

// CurrentPhase returns the most recently started phase ("" before the
// first or on a nil run).
func (r *Run) CurrentPhase() string {
	if r == nil {
		return ""
	}
	s, _ := r.curPhase.Load().(string)
	return s
}

// Elapsed returns the wall time since the run started.
func (r *Run) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// TimerStat is one named span's accumulated totals.
type TimerStat struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// Summary is the end-of-run metrics snapshot: the schema behind the
// -metrics JSON file and the BENCH_*.json trajectory.
type Summary struct {
	StartedAt   time.Time        `json:"started_at"`
	WallSeconds float64          `json:"wall_seconds"`
	Timers      []TimerStat      `json:"timers"`
	Counters    map[string]int64 `json:"counters"`
	Gauges      map[string]int64 `json:"gauges"`
}

// Summary snapshots the run. Safe to call concurrently with updates and
// more than once; a nil run yields an empty summary.
func (r *Run) Summary() *Summary {
	s := &Summary{Counters: map[string]int64{}, Gauges: map[string]int64{}}
	if r == nil {
		return s
	}
	s.StartedAt = r.start
	s.WallSeconds = time.Since(r.start).Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.timerOrder {
		t := r.timers[name]
		s.Timers = append(s.Timers, TimerStat{
			Name:    name,
			Seconds: time.Duration(t.ns.Load()).Seconds(),
			Count:   t.n.Load(),
		})
	}
	for _, name := range r.counterOrder {
		s.Counters[name] = r.counters[name].v.Load()
	}
	for _, name := range r.gaugeOrder {
		s.Gauges[name] = r.gauges[name].v.Load()
	}
	return s
}

// SummaryJSON renders the summary as indented JSON, ready for -metrics
// files.
func (r *Run) SummaryJSON() ([]byte, error) {
	return json.MarshalIndent(r.Summary(), "", "  ")
}

// snapshotCounters returns name->value for all registered counters in
// registration order (names slice aliases internal state; copy under lock).
func (r *Run) snapshotCounters() ([]string, map[string]int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.counterOrder...)
	vals := make(map[string]int64, len(names))
	for _, n := range names {
		vals[n] = r.counters[n].v.Load()
	}
	return names, vals
}

func (r *Run) snapshotGauges() ([]string, map[string]int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.gaugeOrder...)
	vals := make(map[string]int64, len(names))
	for _, n := range names {
		vals[n] = r.gauges[n].v.Load()
	}
	return names, vals
}
