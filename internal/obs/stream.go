package obs

import "sync"

// StreamSink buffers progress events for late subscribers and fans live
// events out to active ones — the sink behind a job server's streamed
// events endpoint. It keeps the most recent Capacity events as history;
// Subscribe returns that history plus a live channel. A slow subscriber
// never blocks Emit: events that do not fit in the subscriber's buffer are
// dropped for that subscriber only (the history keeps the authoritative
// record up to Capacity).
//
// The sink is closed by the Final event a Run.Close emits (or by an
// explicit CloseStream); subscription channels are then closed, so a
// consumer draining the channel terminates exactly when the run does.
type StreamSink struct {
	mu      sync.Mutex
	cap     int
	history []Event
	subs    map[int]chan Event
	nextID  int
	closed  bool
}

// subscriberBuffer is the per-subscriber channel depth; a consumer that
// falls further behind than this starts losing intermediate events.
const subscriberBuffer = 64

// NewStreamSink returns a sink retaining up to capacity events of history
// (a non-positive capacity keeps a single event — the latest snapshot is
// always replayable).
func NewStreamSink(capacity int) *StreamSink {
	if capacity < 1 {
		capacity = 1
	}
	return &StreamSink{cap: capacity, subs: map[int]chan Event{}}
}

// Emit implements Sink: record the event and fan it out. The event that
// carries Final closes the stream.
func (s *StreamSink) Emit(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.history = append(s.history, ev)
	if len(s.history) > s.cap {
		s.history = s.history[len(s.history)-s.cap:]
	}
	for _, ch := range s.subs {
		select {
		case ch <- ev:
		default: // subscriber is behind; drop rather than block the run
		}
	}
	if ev.Final {
		s.closeLocked()
	}
	s.mu.Unlock()
}

// closeLocked closes every subscription channel. Callers hold s.mu.
func (s *StreamSink) closeLocked() {
	s.closed = true
	for id, ch := range s.subs {
		close(ch)
		delete(s.subs, id)
	}
}

// CloseStream ends the stream without a Final event (daemon shutdown,
// abandoned job). Idempotent.
func (s *StreamSink) CloseStream() {
	s.mu.Lock()
	if !s.closed {
		s.closeLocked()
	}
	s.mu.Unlock()
}

// Closed reports whether the stream has ended.
func (s *StreamSink) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Subscribe returns the buffered history, a channel of subsequent live
// events, and a cancel function releasing the subscription. On a closed
// stream the channel is already closed, so consumers handle completed and
// live runs uniformly: replay history, then drain the channel.
func (s *StreamSink) Subscribe() ([]Event, <-chan Event, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	history := append([]Event(nil), s.history...)
	ch := make(chan Event, subscriberBuffer)
	if s.closed {
		close(ch)
		return history, ch, func() {}
	}
	id := s.nextID
	s.nextID++
	s.subs[id] = ch
	cancel := func() {
		s.mu.Lock()
		if c, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(c)
		}
		s.mu.Unlock()
	}
	return history, ch, cancel
}
