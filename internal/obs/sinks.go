package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// MetricSink consumes sampled metric batches from a router. WriteMetrics
// is called from the sink's dedicated worker goroutine (one per AddSink),
// so implementations only need to serialise against themselves; the batch
// slice is shared between sinks and must not be mutated. A returned error
// is counted by the router and otherwise ignored — sinks are best-effort
// by design.
type MetricSink interface {
	WriteMetrics(batch []Metric) error
}

// TextSink renders each batch as human-oriented lines on W, one sample per
// line ("name value" for fleet series, `name{job="id"} value` for per-job
// series) with a blank line between batches — the stdout sink.
type TextSink struct {
	// W receives the rendered lines.
	W io.Writer
	// mu serialises writes from Flush-time callers against the worker.
	mu sync.Mutex
}

// WriteMetrics implements MetricSink.
func (s *TextSink) WriteMetrics(batch []Metric) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for _, m := range batch {
		if m.Job == "" {
			fmt.Fprintf(&b, "%s %s\n", m.Name, formatValue(m.Value))
		} else {
			fmt.Fprintf(&b, "%s{job=%q} %s\n", m.Name, m.Job, formatValue(m.Value))
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(s.W, b.String())
	return err
}

// metricJSON is the stable wire shape of one sample in JSON sinks and the
// HTTP push payload.
type metricJSON struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Job   string  `json:"job,omitempty"`
	Value float64 `json:"value"`
}

func toJSON(batch []Metric) []metricJSON {
	out := make([]metricJSON, len(batch))
	for i, m := range batch {
		out[i] = metricJSON{Name: m.Name, Kind: m.Kind.String(), Job: m.Job, Value: m.Value}
	}
	return out
}

// MetricJSONLSink writes each batch as one JSON array per line — the
// machine-readable file sink (distinct from JSONLSink, which encodes
// progress Events).
type MetricJSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewMetricJSONLSink returns a sink encoding batches onto w, one JSON
// array per line.
func NewMetricJSONLSink(w io.Writer) *MetricJSONLSink {
	return &MetricJSONLSink{enc: json.NewEncoder(w)}
}

// WriteMetrics implements MetricSink.
func (s *MetricJSONLSink) WriteMetrics(batch []Metric) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(toJSON(batch))
}

// HTTPPushSink POSTs each batch as a JSON array to URL — the push
// counterpart of the pull-style /metrics endpoint, for fleets funnelling
// into a central receiver. Requests are bounded by Timeout (default 5s) so
// a dead receiver costs at most one in-flight request per batch; the
// router's queue absorbs or drops the rest.
type HTTPPushSink struct {
	// URL is the receiver endpoint.
	URL string
	// Client overrides the HTTP client (nil uses a default with Timeout).
	Client *http.Client
	// Timeout bounds each push when Client is nil (default 5s).
	Timeout time.Duration

	once   sync.Once
	client *http.Client
}

// WriteMetrics implements MetricSink.
func (s *HTTPPushSink) WriteMetrics(batch []Metric) error {
	s.once.Do(func() {
		s.client = s.Client
		if s.client == nil {
			to := s.Timeout
			if to <= 0 {
				to = 5 * time.Second
			}
			s.client = &http.Client{Timeout: to}
		}
	})
	body, err := json.Marshal(toJSON(batch))
	if err != nil {
		return err
	}
	resp, err := s.client.Post(s.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("obs: push to %s: status %s", s.URL, resp.Status)
	}
	return nil
}

// ParseSinkSpec builds a metric sink from a CLI -sink specification:
//
//	stdout          human-readable lines on standard output
//	stderr          the same on standard error
//	jsonl:PATH      one JSON array per batch appended to PATH
//	push:URL        POST each batch as JSON to URL (http:// or https://)
//
// It returns the sink and a close function releasing any resource the
// sink holds (the file sink's descriptor; nil-safe no-op otherwise).
func ParseSinkSpec(spec string) (MetricSink, func() error, error) {
	nop := func() error { return nil }
	switch {
	case spec == "stdout":
		return &TextSink{W: os.Stdout}, nop, nil
	case spec == "stderr":
		return &TextSink{W: os.Stderr}, nop, nil
	case strings.HasPrefix(spec, "jsonl:"):
		path := spec[len("jsonl:"):]
		if path == "" {
			return nil, nil, fmt.Errorf("obs: sink spec %q: empty path", spec)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: sink %q: %w", spec, err)
		}
		return NewMetricJSONLSink(f), f.Close, nil
	case strings.HasPrefix(spec, "push:"):
		url := spec[len("push:"):]
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			return nil, nil, fmt.Errorf("obs: sink spec %q: push URL must be http(s)", spec)
		}
		return &HTTPPushSink{URL: url}, nop, nil
	default:
		return nil, nil, fmt.Errorf("obs: unknown sink spec %q (want stdout, stderr, jsonl:PATH or push:URL)", spec)
	}
}

// SinkSpecList is a repeatable -sink flag value accumulating sink
// specifications (see ParseSinkSpec for the grammar).
type SinkSpecList []string

// String implements flag.Value.
func (l *SinkSpecList) String() string { return strings.Join(*l, ",") }

// Set implements flag.Value, validating the spec's shape eagerly so flag
// parsing reports bad specs (files are opened later by ParseSinkSpec).
func (l *SinkSpecList) Set(v string) error {
	switch {
	case v == "stdout", v == "stderr":
	case strings.HasPrefix(v, "jsonl:") && len(v) > len("jsonl:"):
	case strings.HasPrefix(v, "push:http://"), strings.HasPrefix(v, "push:https://"):
	default:
		return fmt.Errorf("unknown sink spec %q (want stdout, stderr, jsonl:PATH or push:URL)", v)
	}
	*l = append(*l, v)
	return nil
}

// formatValue renders a metric value without float noise: integral values
// (the common case — counters and gauges) print as integers.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
