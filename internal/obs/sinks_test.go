package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTextSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	s := &TextSink{W: &buf}
	err := s.WriteMetrics([]Metric{
		{Name: "states/checked", Kind: KindCounter, Value: 15},
		{Name: "states/checked", Kind: KindCounter, Job: "job-a", Value: 10},
		{Name: "phase/explore/seconds", Kind: KindCounter, Value: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "states/checked 15\n" +
		"states/checked{job=\"job-a\"} 10\n" +
		"phase/explore/seconds 1.5\n" +
		"\n"
	if buf.String() != want {
		t.Fatalf("text sink output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestMetricJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewMetricJSONLSink(&buf)
	batches := [][]Metric{
		{{Name: "a", Kind: KindCounter, Value: 1}, {Name: "b", Kind: KindGauge, Job: "j", Value: 2.5}},
		{{Name: "a", Kind: KindCounter, Value: 3}},
	}
	for _, b := range batches {
		if err := s.WriteMetrics(b); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want one per batch", len(lines))
	}
	var first []map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not a JSON array: %v", err)
	}
	if len(first) != 2 || first[0]["name"] != "a" || first[0]["kind"] != "counter" {
		t.Fatalf("line 0 = %v", first)
	}
	if first[1]["job"] != "j" || first[1]["kind"] != "gauge" || first[1]["value"] != 2.5 {
		t.Fatalf("line 0 sample 1 = %v", first[1])
	}
	if _, hasJob := first[0]["job"]; hasJob {
		t.Fatal("fleet sample must omit the job key")
	}
}

func TestHTTPPushSink(t *testing.T) {
	type push struct {
		body []byte
		ct   string
	}
	got := make(chan push, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		got <- push{body, r.Header.Get("Content-Type")}
	}))
	defer srv.Close()

	s := &HTTPPushSink{URL: srv.URL}
	if err := s.WriteMetrics([]Metric{{Name: "x", Kind: KindCounter, Value: 4}}); err != nil {
		t.Fatal(err)
	}
	p := <-got
	if p.ct != "application/json" {
		t.Fatalf("Content-Type = %q", p.ct)
	}
	var arr []map[string]any
	if err := json.Unmarshal(p.body, &arr); err != nil {
		t.Fatalf("push body not JSON: %v\n%s", err, p.body)
	}
	if len(arr) != 1 || arr[0]["name"] != "x" || arr[0]["value"] != 4.0 {
		t.Fatalf("push body = %v", arr)
	}
}

func TestHTTPPushSinkErrorStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	s := &HTTPPushSink{URL: srv.URL}
	if err := s.WriteMetrics([]Metric{{Name: "x"}}); err == nil {
		t.Fatal("5xx response must surface as an error")
	}
}

func TestParseSinkSpec(t *testing.T) {
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "out.jsonl")
	cases := []struct {
		spec    string
		wantErr bool
	}{
		{"stdout", false},
		{"stderr", false},
		{"jsonl:" + jsonlPath, false},
		{"push:http://localhost:1/x", false},
		{"push:https://example.com/x", false},
		{"jsonl:", true},
		{"push:ftp://nope", true},
		{"push:", true},
		{"bogus", true},
		{"", true},
	}
	for _, tc := range cases {
		sink, closer, err := ParseSinkSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSinkSpec(%q) succeeded, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSinkSpec(%q): %v", tc.spec, err)
			continue
		}
		if sink == nil || closer == nil {
			t.Errorf("ParseSinkSpec(%q) returned nil sink or closer", tc.spec)
			continue
		}
		if err := closer(); err != nil {
			t.Errorf("ParseSinkSpec(%q) closer: %v", tc.spec, err)
		}
	}
}

func TestParseSinkSpecJSONLWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	sink, closer, err := ParseSinkSpec("jsonl:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteMetrics([]Metric{{Name: "x", Kind: KindCounter, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}
	// Appending: a second open adds a line rather than truncating.
	sink2, closer2, err := ParseSinkSpec("jsonl:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink2.WriteMetrics([]Metric{{Name: "y", Kind: KindGauge, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := closer2(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl file has %d lines, want 2 (append semantics):\n%s", len(lines), raw)
	}
}

func TestSinkSpecListFlag(t *testing.T) {
	var specs SinkSpecList
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Var(&specs, "sink", "")
	if err := fs.Parse([]string{"-sink", "stdout", "-sink", "jsonl:/tmp/x.jsonl", "-sink", "push:http://h/p"}); err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0] != "stdout" || specs[2] != "push:http://h/p" {
		t.Fatalf("specs = %v", specs)
	}
	if specs.String() == "" {
		t.Fatal("String() empty for a populated list")
	}

	var bad SinkSpecList
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	fs2.Var(&bad, "sink", "")
	if err := fs2.Parse([]string{"-sink", "bogus"}); err == nil {
		t.Fatal("bad spec accepted at flag-parse time")
	}
}
