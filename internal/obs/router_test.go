package obs

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// staticCollector yields a fixed sample set — deterministic router input.
type staticCollector []Metric

func (c staticCollector) CollectMetrics(dst []Metric) []Metric {
	return append(dst, c...)
}

func TestApplyRulesFirstMatchWins(t *testing.T) {
	rules := []Rule{
		{Match: "noise/", Drop: true},
		{Match: "states/", Replace: "exploration/"},
		{Match: "states/checked", Replace: "never-reached/"}, // shadowed by the prefix rule above
	}
	cases := []struct {
		in   string
		want string
		keep bool
	}{
		{"noise/gc-pause", "", false},
		{"states/checked", "exploration/checked", true},
		{"restores/servers", "restores/servers", true},
	}
	for _, tc := range cases {
		got, keep := applyRules(rules, tc.in)
		if keep != tc.keep || got != tc.want {
			t.Errorf("applyRules(%q) = (%q, %v), want (%q, %v)", tc.in, got, keep, tc.want, tc.keep)
		}
	}
}

func TestRouterFleetAndPerJobSeries(t *testing.T) {
	rt := NewRouter()
	proc := NewRun()
	proc.Counter("jobs/submitted").Add(2)
	rt.Attach("", proc)
	rt.Attach("job-a", staticCollector{
		{Name: "states/checked", Kind: KindCounter, Value: 10},
		{Name: "queue/depth", Kind: KindGauge, Value: 3},
	})
	rt.Attach("job-b", staticCollector{
		{Name: "states/checked", Kind: KindCounter, Value: 5},
	})

	batch := rt.Sample()
	find := func(name, job string) (Metric, bool) {
		for _, m := range batch {
			if m.Name == name && m.Job == job {
				return m, true
			}
		}
		return Metric{}, false
	}
	if m, ok := find("states/checked", ""); !ok || m.Value != 15 {
		t.Fatalf("fleet states/checked = %+v (ok=%v), want 15", m, ok)
	}
	if m, ok := find("states/checked", "job-a"); !ok || m.Value != 10 {
		t.Fatalf("per-job states/checked = %+v (ok=%v), want 10", m, ok)
	}
	if m, ok := find("states/checked", "job-b"); !ok || m.Value != 5 {
		t.Fatalf("per-job states/checked = %+v (ok=%v), want 5", m, ok)
	}
	// The process-level collector contributes to the fleet only: no series
	// labeled with the empty job beyond the fleet rollup, and no per-job
	// jobs/submitted.
	if m, ok := find("jobs/submitted", ""); !ok || m.Value != 2 {
		t.Fatalf("fleet jobs/submitted = %+v (ok=%v), want 2", m, ok)
	}
	if _, ok := find("jobs/submitted", "job-a"); ok {
		t.Fatal("process-level series leaked into a job label")
	}
	// Sorted by (name, job), fleet ("") first within a name.
	if !sort.SliceIsSorted(batch, func(i, j int) bool {
		if batch[i].Name != batch[j].Name {
			return batch[i].Name < batch[j].Name
		}
		return batch[i].Job < batch[j].Job
	}) {
		t.Fatalf("batch not sorted: %+v", batch)
	}
}

func TestRouterRelabelingShapesOutput(t *testing.T) {
	rt := NewRouter()
	rt.Attach("j", staticCollector{
		{Name: "states/checked", Kind: KindCounter, Value: 7},
		{Name: "debug/scratch", Kind: KindGauge, Value: 1},
	})
	rt.SetRules([]Rule{
		{Match: "debug/", Drop: true},
		{Match: "states/", Replace: "exploration/"},
	})
	batch := rt.Sample()
	for _, m := range batch {
		if m.Name == "debug/scratch" {
			t.Fatalf("dropped series survived: %+v", batch)
		}
		if m.Name == "states/checked" {
			t.Fatalf("relabel did not apply: %+v", batch)
		}
	}
	found := 0
	for _, m := range batch {
		if m.Name == "exploration/checked" {
			found++
		}
	}
	if found != 2 { // fleet + per-job
		t.Fatalf("exploration/checked series = %d, want 2 (fleet + job)\n%+v", found, batch)
	}
}

func TestRouterDetachFoldsCounters(t *testing.T) {
	rt := NewRouter()
	run := NewRun()
	run.Counter("states/checked").Add(9)
	run.Gauge("queue/depth").Set(4)
	rt.Attach("job-a", run)

	rt.Detach("job-a")
	batch := rt.Sample()
	var fleet, perJob, gauges int
	for _, m := range batch {
		switch {
		case m.Name == "states/checked" && m.Job == "":
			fleet++
			if m.Value != 9 {
				t.Fatalf("folded fleet counter = %g, want 9", m.Value)
			}
		case m.Name == "states/checked":
			perJob++
		case m.Name == "queue/depth":
			gauges++
		}
	}
	if fleet != 1 {
		t.Fatalf("fleet counter series = %d, want 1\n%+v", fleet, batch)
	}
	if perJob != 0 {
		t.Fatalf("detached job still has per-job series: %+v", batch)
	}
	if gauges != 0 {
		t.Fatalf("detached job's gauge survived the fold: %+v", batch)
	}

	// Detaching an unknown label folds nothing and does not panic.
	rt.Detach("nope")
}

// TestRouterMergeOrderIndependence is the aggregation property test: for a
// randomized fleet of jobs with random counter values, the final fleet
// totals are identical whatever order the jobs complete in, and however
// sampling interleaves with completions — fold-on-detach plus commutative
// addition makes the rollup associative.
func TestRouterMergeOrderIndependence(t *testing.T) {
	const jobs = 12
	rng := rand.New(rand.NewSource(42))

	type jobSpec struct {
		label string
		vals  map[string]float64
	}
	names := []string{"states/checked", "states/deduped", "restores/servers", "ops/replayed"}
	specs := make([]jobSpec, jobs)
	want := map[string]float64{}
	for i := range specs {
		specs[i] = jobSpec{label: fmt.Sprintf("job-%02d", i), vals: map[string]float64{}}
		for _, n := range names {
			if rng.Intn(4) == 0 {
				continue // not every job touches every counter
			}
			v := float64(rng.Intn(1000))
			specs[i].vals[n] = v
			want[n] += v
		}
	}

	fleetTotals := func(batch []Metric) map[string]float64 {
		out := map[string]float64{}
		for _, m := range batch {
			if m.Job == "" {
				out[m.Name] += m.Value
			}
		}
		return out
	}

	var baseline map[string]float64
	for trial := 0; trial < 20; trial++ {
		rt := NewRouter()
		for _, s := range specs {
			var batch []Metric
			for _, n := range names {
				if v, ok := s.vals[n]; ok {
					batch = append(batch, Metric{Name: n, Kind: KindCounter, Value: v})
				}
			}
			rt.Attach(s.label, staticCollector(batch))
		}
		// Complete the jobs in a fresh random order, sampling mid-stream at
		// random points — intermediate samples must not perturb the end state.
		perm := rng.Perm(jobs)
		for _, idx := range perm {
			if rng.Intn(2) == 0 {
				rt.Sample()
			}
			rt.Detach(specs[idx].label)
		}
		got := fleetTotals(rt.Sample())
		if trial == 0 {
			baseline = got
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("fleet totals = %v, want %v", got, want)
			}
			continue
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Fatalf("trial %d (order %v): fleet totals = %v, differ from baseline %v", trial, perm, got, baseline)
		}
	}
}

func TestRouterPublishReachesSinks(t *testing.T) {
	rt := NewRouter()
	rt.Attach("j", staticCollector{{Name: "states/checked", Kind: KindCounter, Value: 3}})
	ring := NewRingSink(8)
	rt.AddSink(ring)
	rt.Publish()
	rt.Close() // flushes the worker

	if m, ok := ring.Find("states/checked", "j"); !ok || m.Value != 3 {
		t.Fatalf("sink batch missing per-job sample: %+v", ring.LastBatch())
	}
	if m, ok := ring.Find("states/checked", ""); !ok || m.Value != 3 {
		t.Fatalf("sink batch missing fleet sample: %+v", ring.LastBatch())
	}
}

func TestRouterNilIsNoop(t *testing.T) {
	var rt *Router
	rt.Attach("j", NewRun())
	rt.Detach("j")
	rt.SetRules([]Rule{{Match: "x", Drop: true}})
	rt.SetFaults(nil)
	rt.AddSink(NewRingSink(1))
	rt.Publish()
	rt.Start(0)
	rt.Close()
	if rt.Sample() != nil || rt.Dropped() != 0 || rt.Errors() != 0 {
		t.Fatal("nil router must be inert")
	}
}
