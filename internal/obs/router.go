package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"paracrash/internal/faultinject"
)

// Rule is one relabeling step of a router. Rules are applied to every
// collected sample in order; the first rule whose Match prefix matches the
// sample's name decides its fate (drop, or prefix replacement), and later
// rules are skipped. A sample no rule matches passes through unchanged.
type Rule struct {
	// Match is the name prefix the rule applies to ("" matches every
	// sample).
	Match string
	// Drop discards matched samples.
	Drop bool
	// Replace substitutes the matched prefix when Drop is false; renaming
	// two series onto one name merges them (fleet values sum).
	Replace string
}

// apply returns the relabeled name and whether the sample survives.
func applyRules(rules []Rule, name string) (string, bool) {
	for _, r := range rules {
		if len(name) < len(r.Match) || name[:len(r.Match)] != r.Match {
			continue
		}
		if r.Drop {
			return "", false
		}
		return r.Replace + name[len(r.Match):], true
	}
	return name, true
}

// routerSinkQueue is the per-sink batch buffer depth. A sink that falls
// further behind than this loses whole batches (counted by Dropped), never
// stalling the sampling loop or any instrumented hot path.
const routerSinkQueue = 8

// sinkWorker decouples one sink from the router: batches are handed over a
// bounded channel and written on a dedicated goroutine, so a blocking or
// erroring sink can only ever cost its own batches.
type sinkWorker struct {
	sink MetricSink
	ch   chan []Metric
	done chan struct{}
}

// Router is the middle of the telemetry pipeline: it pulls samples from
// attached collectors (one per job, plus an unlabeled process collector),
// applies relabeling rules, aggregates per-job series into fleet-level
// rollups, and fans the combined batch out to sinks — each behind a
// bounded, drop-on-overflow queue so telemetry can never stall the
// exploration hot path.
//
// Fleet aggregation is merge-order independent: counters sum across live
// collectors plus the folded totals of detached ones (Detach folds a
// collector's final counter values into the fleet before removing it), and
// addition commutes, so any interleaving of job completions yields the
// same fleet totals. Gauges are instantaneous and sum across live
// collectors only — a finished job's queue depths are meaningless.
type Router struct {
	mu         sync.Mutex
	collectors map[string]Collector
	order      []string
	retired    map[string]float64 // relabel-raw counter name -> folded total
	retOrder   []string
	rules      []Rule
	workers    []*sinkWorker
	faults     *faultinject.Plan

	loopStop chan struct{}
	loopDone chan struct{}

	dropped atomic.Int64
	errs    atomic.Int64

	// DrainTimeout bounds how long Close waits for sink workers to flush
	// their queued batches; a sink still blocked past it is abandoned
	// (zero means the 2s default). Set before Close.
	DrainTimeout time.Duration
}

// NewRouter returns an empty router. Attach collectors, add sinks, then
// either Start a sampling loop or call Publish manually.
func NewRouter() *Router {
	return &Router{
		collectors: map[string]Collector{},
		retired:    map[string]float64{},
	}
}

// SetRules installs the relabeling rules (replacing any previous set).
// Rules apply to live and retired series alike at sampling time, so a rule
// change re-shapes the whole output, history included.
func (rt *Router) SetRules(rules []Rule) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.rules = append([]Rule(nil), rules...)
	rt.mu.Unlock()
}

// SetFaults arms the deterministic fault plane on the sink path (site
// "obs/sink-write", keyed by sink index) — the chaos tests' handle for
// proving that failing sinks drop metrics without touching verdicts.
func (rt *Router) SetFaults(p *faultinject.Plan) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.faults = p
	rt.mu.Unlock()
}

// Attach registers a collector under the given job label; samples it
// yields are emitted as per-job series and aggregated into the fleet
// rollup. The empty label is the process-level collector (a daemon's own
// run): its samples contribute to the fleet without a per-job series.
// Re-attaching a label replaces the collector.
func (rt *Router) Attach(job string, c Collector) {
	if rt == nil || c == nil {
		return
	}
	rt.mu.Lock()
	if _, ok := rt.collectors[job]; !ok {
		rt.order = append(rt.order, job)
	}
	rt.collectors[job] = c
	rt.mu.Unlock()
}

// Detach removes the collector attached under job, folding its final
// counter values (post-collection, pre-relabel) into the fleet's retired
// totals so fleet counters stay monotonic across job completions. Gauges
// and unknown labels fold nothing.
func (rt *Router) Detach(job string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	c, ok := rt.collectors[job]
	if ok {
		delete(rt.collectors, job)
		for i, l := range rt.order {
			if l == job {
				rt.order = append(rt.order[:i], rt.order[i+1:]...)
				break
			}
		}
	}
	rt.mu.Unlock()
	if !ok {
		return
	}
	final := c.CollectMetrics(nil)
	rt.mu.Lock()
	for _, m := range final {
		if m.Kind != KindCounter {
			continue
		}
		if _, seen := rt.retired[m.Name]; !seen {
			rt.retOrder = append(rt.retOrder, m.Name)
		}
		rt.retired[m.Name] += m.Value
	}
	rt.mu.Unlock()
}

// AddSink attaches a sink behind a bounded queue and its own writer
// goroutine. Batches that do not fit the queue are dropped (see Dropped);
// write errors and injected faults are counted (see Errors) and never
// propagate.
func (rt *Router) AddSink(s MetricSink) {
	if rt == nil || s == nil {
		return
	}
	w := &sinkWorker{sink: s, ch: make(chan []Metric, routerSinkQueue), done: make(chan struct{})}
	rt.mu.Lock()
	rt.workers = append(rt.workers, w)
	idx := len(rt.workers) - 1
	rt.mu.Unlock()
	go rt.runSink(w, idx)
}

// runSink drains one sink's queue until the channel closes.
func (rt *Router) runSink(w *sinkWorker, idx int) {
	defer close(w.done)
	key := "sink-" + itoa(idx)
	for batch := range w.ch {
		rt.writeOne(w, key, batch)
	}
}

// writeOne performs one guarded sink write: injected faults and sink
// errors are counted, and a panicking sink (or an injected KindPanic) is
// quarantined as one more error instead of killing the process.
func (rt *Router) writeOne(w *sinkWorker, key string, batch []Metric) {
	defer func() {
		if v := recover(); v != nil {
			rt.errs.Add(1)
		}
	}()
	rt.mu.Lock()
	faults := rt.faults
	rt.mu.Unlock()
	if err := faults.Point("obs/sink-write", key); err != nil {
		rt.errs.Add(1)
		return
	}
	if err := w.sink.WriteMetrics(batch); err != nil {
		rt.errs.Add(1)
	}
}

// itoa is a tiny allocation-light integer formatter for sink keys.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Sample performs one synchronous collection pass: pull every attached
// collector, relabel, aggregate, and return the combined batch — fleet
// series (empty Job) and per-job series, sorted by name then job for
// deterministic output. Sample never touches the sinks; Publish does.
func (rt *Router) Sample() []Metric {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	labels := append([]string(nil), rt.order...)
	colls := make([]Collector, len(labels))
	for i, l := range labels {
		colls[i] = rt.collectors[l]
	}
	rules := append([]Rule(nil), rt.rules...)
	retNames := append([]string(nil), rt.retOrder...)
	retired := make(map[string]float64, len(retNames))
	for _, n := range retNames {
		retired[n] = rt.retired[n]
	}
	rt.mu.Unlock()

	type series struct {
		kind  MetricKind
		value float64
	}
	fleet := map[string]*series{}
	var fleetOrder []string
	addFleet := func(name string, kind MetricKind, v float64) {
		s, ok := fleet[name]
		if !ok {
			s = &series{kind: kind}
			fleet[name] = s
			fleetOrder = append(fleetOrder, name)
		}
		s.value += v
	}

	var perJob []Metric
	var scratch []Metric
	for i, c := range colls {
		scratch = c.CollectMetrics(scratch[:0])
		for _, m := range scratch {
			name, keep := applyRules(rules, m.Name)
			if !keep {
				continue
			}
			addFleet(name, m.Kind, m.Value)
			if labels[i] != "" {
				perJob = append(perJob, Metric{Name: name, Kind: m.Kind, Job: labels[i], Value: m.Value})
			}
		}
	}
	for _, n := range retNames {
		name, keep := applyRules(rules, n)
		if !keep {
			continue
		}
		addFleet(name, KindCounter, retired[n])
	}
	if d := rt.dropped.Load(); d > 0 {
		addFleet("obs/router/dropped-batches", KindCounter, float64(d))
	}
	if e := rt.errs.Load(); e > 0 {
		addFleet("obs/router/sink-errors", KindCounter, float64(e))
	}

	batch := make([]Metric, 0, len(fleetOrder)+len(perJob))
	for _, n := range fleetOrder {
		batch = append(batch, Metric{Name: n, Kind: fleet[n].kind, Value: fleet[n].value})
	}
	batch = append(batch, perJob...)
	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].Name != batch[j].Name {
			return batch[i].Name < batch[j].Name
		}
		return batch[i].Job < batch[j].Job // "" (fleet) sorts first
	})
	return batch
}

// Publish samples once and hands the batch to every sink worker without
// blocking: a worker whose queue is full loses this batch (counted in
// Dropped). Safe from any goroutine.
func (rt *Router) Publish() {
	if rt == nil {
		return
	}
	batch := rt.Sample()
	if len(batch) == 0 {
		return
	}
	rt.mu.Lock()
	workers := append([]*sinkWorker(nil), rt.workers...)
	rt.mu.Unlock()
	for _, w := range workers {
		select {
		case w.ch <- batch:
		default:
			rt.dropped.Add(1)
		}
	}
}

// Start launches the sampling loop, publishing every interval until Close.
// Idempotent; non-positive intervals and nil routers are no-ops (Publish
// remains available for manual control).
func (rt *Router) Start(interval time.Duration) {
	if rt == nil || interval <= 0 {
		return
	}
	rt.mu.Lock()
	if rt.loopStop != nil {
		rt.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	rt.loopStop, rt.loopDone = stop, done
	rt.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				rt.Publish()
			case <-stop:
				return
			}
		}
	}()
}

// Close stops the sampling loop, publishes one final batch, and waits up
// to DrainTimeout for the sink workers to flush. A sink still blocked past
// the deadline is abandoned with its queued batches — shutdown is never
// hostage to a wedged sink. Safe on nil routers; idempotent.
func (rt *Router) Close() {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	stop, done := rt.loopStop, rt.loopDone
	rt.loopStop, rt.loopDone = nil, nil
	rt.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}

	rt.Publish()

	rt.mu.Lock()
	workers := rt.workers
	rt.workers = nil
	drain := rt.DrainTimeout
	rt.mu.Unlock()
	if drain <= 0 {
		drain = 2 * time.Second
	}
	deadline := time.NewTimer(drain)
	defer deadline.Stop()
	for _, w := range workers {
		close(w.ch)
	}
	for _, w := range workers {
		select {
		case <-w.done:
		case <-deadline.C:
			return
		}
	}
}

// Dropped returns how many batches were discarded because a sink's queue
// was full.
func (rt *Router) Dropped() int64 {
	if rt == nil {
		return 0
	}
	return rt.dropped.Load()
}

// Errors returns how many sink writes failed (sink errors plus injected
// faults).
func (rt *Router) Errors() int64 {
	if rt == nil {
		return 0
	}
	return rt.errs.Load()
}
