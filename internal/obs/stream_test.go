package obs

import (
	"testing"
	"time"
)

func TestStreamSinkHistoryAndLive(t *testing.T) {
	s := NewStreamSink(4)
	s.Emit(Event{ElapsedSeconds: 1})
	s.Emit(Event{ElapsedSeconds: 2})

	history, live, cancel := s.Subscribe()
	defer cancel()
	if len(history) != 2 || history[0].ElapsedSeconds != 1 || history[1].ElapsedSeconds != 2 {
		t.Fatalf("history = %+v, want the two emitted events", history)
	}

	s.Emit(Event{ElapsedSeconds: 3})
	select {
	case ev := <-live:
		if ev.ElapsedSeconds != 3 {
			t.Fatalf("live event = %+v, want elapsed 3", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no live event delivered")
	}
}

func TestStreamSinkRingBound(t *testing.T) {
	s := NewStreamSink(3)
	for i := 1; i <= 10; i++ {
		s.Emit(Event{ElapsedSeconds: float64(i)})
	}
	history, _, cancel := s.Subscribe()
	defer cancel()
	if len(history) != 3 {
		t.Fatalf("history length = %d, want 3", len(history))
	}
	if history[0].ElapsedSeconds != 8 || history[2].ElapsedSeconds != 10 {
		t.Fatalf("history = %+v, want the last three events", history)
	}
}

func TestStreamSinkFinalClosesSubscribers(t *testing.T) {
	s := NewStreamSink(8)
	_, live, cancel := s.Subscribe()
	defer cancel()
	s.Emit(Event{ElapsedSeconds: 1, Final: true})

	// The final event arrives, then the channel closes.
	ev, ok := <-live
	if !ok || !ev.Final {
		t.Fatalf("first receive = (%+v, %v), want the final event", ev, ok)
	}
	if _, ok := <-live; ok {
		t.Fatal("channel still open after final event")
	}
	if !s.Closed() {
		t.Fatal("sink not closed after final event")
	}

	// Late subscription to a closed stream: history replays, channel is
	// already closed.
	history, late, lateCancel := s.Subscribe()
	defer lateCancel()
	if len(history) != 1 {
		t.Fatalf("late history length = %d, want 1", len(history))
	}
	if _, ok := <-late; ok {
		t.Fatal("late channel open on closed stream")
	}
}

func TestStreamSinkSlowSubscriberDoesNotBlock(t *testing.T) {
	s := NewStreamSink(4)
	_, _, cancel := s.Subscribe() // never drained
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < subscriberBuffer*3; i++ {
			s.Emit(Event{ElapsedSeconds: float64(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on an undrained subscriber")
	}
}

func TestStreamSinkOnRun(t *testing.T) {
	r := NewRun()
	s := NewStreamSink(16)
	ring := NewRingSink(16)
	r.AddSink(s)
	r.AddSink(ring)
	r.StartProgress(time.Millisecond)
	r.Counter("x").Inc()
	time.Sleep(10 * time.Millisecond)
	r.Close()

	history, live, cancel := s.Subscribe()
	defer cancel()
	if len(history) == 0 {
		t.Fatal("no events recorded from a progress loop")
	}
	if !history[len(history)-1].Final {
		t.Fatalf("last event %+v not final after Close", history[len(history)-1])
	}
	if _, ok := <-live; ok {
		t.Fatal("live channel open after Close")
	}

	// The ring sink saw the identical event stream: same count, same final
	// event, no scraping needed.
	if got := len(ring.Events()); got != len(history) {
		t.Fatalf("ring events = %d, stream history = %d", got, len(history))
	}
	last, ok := ring.LastEvent()
	if !ok || !last.Final || last.Counters["x"] != 1 {
		t.Fatalf("ring final event = %+v, want final with x=1", last)
	}
}
