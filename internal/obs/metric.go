package obs

import "time"

// MetricKind classifies a metric sample for sinks that care about
// semantics (the Prometheus exposition's # TYPE lines, rate computation in
// downstream collectors).
type MetricKind uint8

// Metric kinds. Counters are monotonically increasing across a collector's
// lifetime (and across the fleet: a detached collector's final counter
// values fold into the fleet totals); gauges are instantaneous.
const (
	// KindCounter marks a monotonically increasing sample (counter values
	// and timer totals).
	KindCounter MetricKind = iota
	// KindGauge marks an instantaneous sample (queue depths, high-water
	// marks).
	KindGauge
)

// String returns the Prometheus type name of the kind.
func (k MetricKind) String() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

// Metric is one sample flowing through the telemetry pipeline: a named
// value with a kind and an optional job label. The fleet-level series of a
// router carries an empty Job; per-job series carry the job identifier the
// collector was attached under.
type Metric struct {
	// Name is the registry name, slash-separated ("states/checked",
	// "phase/explore/seconds"). Sinks that need a restricted alphabet
	// sanitize it themselves (see SanitizeMetricName).
	Name string
	// Kind is the sample semantics: counter or gauge.
	Kind MetricKind
	// Job is the per-job label ("" for fleet/process-level series).
	Job string
	// Value is the sample. Counters and gauges are integral in the
	// registry; timer seconds are fractional.
	Value float64
}

// Collector is a source of metric samples. The obs Run is the canonical
// collector (counters, gauges and timers in registration order); routers
// pull from every attached collector on each sampling pass.
type Collector interface {
	// CollectMetrics appends the collector's current samples to dst and
	// returns the extended slice. Implementations leave Job empty — the
	// router labels samples with the attachment label.
	CollectMetrics(dst []Metric) []Metric
}

// CollectorFunc adapts a function to the Collector interface (synthetic
// series such as bench throughput, wrappers composing collectors).
type CollectorFunc func(dst []Metric) []Metric

// CollectMetrics implements Collector.
func (f CollectorFunc) CollectMetrics(dst []Metric) []Metric { return f(dst) }

// CollectMetrics implements Collector on a Run: counters, then gauges,
// then timers (each timer as two counter samples, <name>/seconds and
// <name>/count), all in registration order. A nil run collects nothing.
func (r *Run) CollectMetrics(dst []Metric) []Metric {
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.counterOrder {
		dst = append(dst, Metric{Name: n, Kind: KindCounter, Value: float64(r.counters[n].v.Load())})
	}
	for _, n := range r.gaugeOrder {
		dst = append(dst, Metric{Name: n, Kind: KindGauge, Value: float64(r.gauges[n].v.Load())})
	}
	for _, n := range r.timerOrder {
		t := r.timers[n]
		dst = append(dst,
			Metric{Name: n + "/seconds", Kind: KindCounter, Value: time.Duration(t.ns.Load()).Seconds()},
			Metric{Name: n + "/count", Kind: KindCounter, Value: float64(t.n.Load())},
		)
	}
	return dst
}
