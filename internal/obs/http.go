package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar registration (expvar.Publish
// panics on duplicate names, and tests may start several endpoints).
var expvarOnce sync.Once

// Serve starts the opt-in diagnostics endpoint on addr:
//
//	/debug/pprof/*  net/http/pprof profiles (CPU, heap, goroutine, ...)
//	/debug/vars     expvar, including the run's live summary under "paracrash"
//	/debug/obs      the run's Summary as JSON
//	/metrics        the run's live samples in Prometheus text exposition
//
// It returns the bound address (useful with ":0") and a shutdown function.
// The run may be nil; the profiling endpoints still work.
func Serve(addr string, r *Run) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	expvarOnce.Do(func() {
		expvar.Publish("paracrash", expvar.Func(func() any { return r.Summary() }))
	})
	// A single-collector router gives the CLI's endpoint the same
	// exposition shape as the daemon's fleet endpoint (fleet series only —
	// one process, no job labels).
	rt := NewRouter()
	rt.Attach("", r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", rt.PromHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out, err := r.SummaryJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(out)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
