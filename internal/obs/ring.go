package obs

import "sync"

// RingSink is the bounded in-memory sink tests attach and assert against:
// it records progress Events (implementing Sink) and metric batches
// (implementing MetricSink), keeping the most recent Capacity of each, and
// exposes snapshot accessors — deterministic assertions with no temp
// files, no scraping, no goroutines.
type RingSink struct {
	mu      sync.Mutex
	cap     int
	events  []Event
	batches [][]Metric
}

// NewRingSink returns a ring retaining up to capacity events and capacity
// metric batches (a non-positive capacity keeps one of each).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{cap: capacity}
}

// Emit implements the progress-event Sink.
func (s *RingSink) Emit(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	if len(s.events) > s.cap {
		s.events = s.events[len(s.events)-s.cap:]
	}
	s.mu.Unlock()
}

// WriteMetrics implements MetricSink. The batch is copied, so the ring
// stays valid however the router reuses its buffers.
func (s *RingSink) WriteMetrics(batch []Metric) error {
	cp := append([]Metric(nil), batch...)
	s.mu.Lock()
	s.batches = append(s.batches, cp)
	if len(s.batches) > s.cap {
		s.batches = s.batches[len(s.batches)-s.cap:]
	}
	s.mu.Unlock()
	return nil
}

// Events returns a copy of the retained progress events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// LastEvent returns the most recent event (false when none arrived).
func (s *RingSink) LastEvent() (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) == 0 {
		return Event{}, false
	}
	return s.events[len(s.events)-1], true
}

// Batches returns a copy of the retained metric batches, oldest first.
func (s *RingSink) Batches() [][]Metric {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]Metric, len(s.batches))
	copy(out, s.batches)
	return out
}

// LastBatch returns the most recent metric batch (nil when none arrived).
func (s *RingSink) LastBatch() []Metric {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.batches) == 0 {
		return nil
	}
	return s.batches[len(s.batches)-1]
}

// Find returns the sample with the given name and job label from the most
// recent batch (false when absent).
func (s *RingSink) Find(name, job string) (Metric, bool) {
	for _, m := range s.LastBatch() {
		if m.Name == name && m.Job == job {
			return m, true
		}
	}
	return Metric{}, false
}

// Len returns how many metric batches the ring currently holds.
func (s *RingSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.batches)
}

// Reset discards all retained events and batches.
func (s *RingSink) Reset() {
	s.mu.Lock()
	s.events, s.batches = nil, nil
	s.mu.Unlock()
}
