package obs

import "testing"

func TestRingSinkBoundsEvents(t *testing.T) {
	s := NewRingSink(3)
	for i := 1; i <= 10; i++ {
		s.Emit(Event{ElapsedSeconds: float64(i)})
	}
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	if evs[0].ElapsedSeconds != 8 || evs[2].ElapsedSeconds != 10 {
		t.Fatalf("ring kept %+v, want the last three", evs)
	}
	last, ok := s.LastEvent()
	if !ok || last.ElapsedSeconds != 10 {
		t.Fatalf("LastEvent = (%+v, %v), want elapsed 10", last, ok)
	}
}

func TestRingSinkBoundsBatches(t *testing.T) {
	s := NewRingSink(2)
	for i := 1; i <= 5; i++ {
		if err := s.WriteMetrics([]Metric{{Name: "x", Kind: KindCounter, Value: float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("batches = %d, want 2", s.Len())
	}
	batches := s.Batches()
	if batches[0][0].Value != 4 || batches[1][0].Value != 5 {
		t.Fatalf("ring kept %+v, want batches 4 and 5", batches)
	}
	if m, ok := s.Find("x", ""); !ok || m.Value != 5 {
		t.Fatalf("Find = (%+v, %v), want value 5 from the last batch", m, ok)
	}
	if _, ok := s.Find("y", ""); ok {
		t.Fatal("Find matched a name that never arrived")
	}
}

// TestRingSinkCopiesBatches pins the aliasing contract: the ring must stay
// valid however the caller reuses the batch slice after WriteMetrics.
func TestRingSinkCopiesBatches(t *testing.T) {
	s := NewRingSink(4)
	batch := []Metric{{Name: "x", Kind: KindCounter, Value: 1}}
	if err := s.WriteMetrics(batch); err != nil {
		t.Fatal(err)
	}
	batch[0].Value = 999
	if m, _ := s.Find("x", ""); m.Value != 1 {
		t.Fatalf("ring aliased the caller's batch: %+v", m)
	}
}

func TestRingSinkReset(t *testing.T) {
	s := NewRingSink(4)
	s.Emit(Event{ElapsedSeconds: 1})
	_ = s.WriteMetrics([]Metric{{Name: "x"}})
	s.Reset()
	if len(s.Events()) != 0 || s.Len() != 0 || s.LastBatch() != nil {
		t.Fatal("Reset left data behind")
	}
	if _, ok := s.LastEvent(); ok {
		t.Fatal("Reset left an event behind")
	}
}

func TestRingSinkMinimumCapacity(t *testing.T) {
	s := NewRingSink(0)
	s.Emit(Event{ElapsedSeconds: 1})
	s.Emit(Event{ElapsedSeconds: 2})
	if evs := s.Events(); len(evs) != 1 || evs[0].ElapsedSeconds != 2 {
		t.Fatalf("zero-capacity ring = %+v, want just the newest event", evs)
	}
}
