package obs_test

import (
	"testing"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/obs"
	"paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// wedgedSink blocks every write until released.
type wedgedSink struct{ release chan struct{} }

func (s *wedgedSink) WriteMetrics([]obs.Metric) error {
	<-s.release
	return nil
}

// TestChaosExplorerUnaffectedByWedgedSink is the end-to-end chaos claim:
// an exploration whose obs run feeds a router with a wedged sink and a
// fast sampling loop produces the identical verdict, in comparable time,
// to a run with no telemetry at all — the hot path never waits on a sink.
func TestChaosExplorerUnaffectedByWedgedSink(t *testing.T) {
	prog, err := exps.ProgramByName("ARVR")
	if err != nil {
		t.Fatal(err)
	}
	h5p := workloads.DefaultH5Params()

	baseOpts := paracrash.DefaultOptions()
	baseOpts.Mode = paracrash.ModePruning
	clean, err := exps.RunOne("beegfs", prog, baseOpts, h5p, exps.ConfigFor("beegfs"))
	if err != nil {
		t.Fatal(err)
	}

	run := obs.NewRun()
	router := obs.NewRouter()
	router.DrainTimeout = 50 * time.Millisecond
	router.Attach("chaos-job", run)
	wedged := &wedgedSink{release: make(chan struct{})}
	defer close(wedged.release)
	router.AddSink(wedged)
	router.Start(time.Millisecond) // aggressive sampling against the wedged sink

	opts := baseOpts
	opts.Obs = run
	start := time.Now()
	chaotic, err := exps.RunOne("beegfs", prog, opts, h5p, exps.ConfigFor("beegfs"))
	elapsed := time.Since(start)
	run.Close()
	// Overflow the wedged sink's bounded queue deterministically: the run
	// itself may finish in a handful of sampling ticks.
	for i := 0; i < 16; i++ {
		router.Publish()
	}
	router.Close()
	if err != nil {
		t.Fatal(err)
	}

	if elapsed > 30*time.Second {
		t.Fatalf("exploration under a wedged sink took %v — telemetry stalled the hot path", elapsed)
	}
	if got, want := exps.ReportFingerprint(chaotic), exps.ReportFingerprint(clean); got != want {
		t.Fatalf("wedged-sink run changed the verdict:\n got %q\nwant %q", got, want)
	}
	if router.Dropped() == 0 {
		t.Fatal("sampling loop never dropped a batch despite a wedged sink — the non-blocking path was not exercised")
	}
}
