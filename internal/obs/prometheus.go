package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// promNamespace prefixes every exposed metric family, keeping the
// exposition collision-free against other exporters on the same scrape
// target.
const promNamespace = "paracrash_"

// SanitizeMetricName maps a registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_]: every other rune (the registry's slashes, dashes,
// dots) becomes an underscore, and a leading digit gains one. Distinct
// registry names can collide after sanitization ("a/b" and "a-b" both map
// to "a_b"); the registry's naming convention keeps them apart in
// practice, and colliding series merge in the exposition.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFamily returns the full exposition family name of a sample:
// namespace + sanitized registry name, with the conventional _total suffix
// on counters.
func promFamily(m Metric) string {
	name := promNamespace + SanitizeMetricName(m.Name)
	if m.Kind == KindCounter && !strings.HasSuffix(name, "_total") {
		name += "_total"
	}
	return name
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format (backslash, double quote, newline).
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders a sampled batch in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per family, the
// fleet series (no labels) first, then per-job series labeled
// job="<id>". The batch is expected sorted by (name, job) — Router.Sample
// output — which makes family grouping and series ordering stable across
// scrapes.
func WritePrometheus(w io.Writer, batch []Metric) error {
	lastFamily := ""
	for _, m := range batch {
		fam := promFamily(m)
		if fam != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, m.Kind); err != nil {
				return err
			}
			lastFamily = fam
		}
		var err error
		if m.Job == "" {
			_, err = fmt.Fprintf(w, "%s %s\n", fam, formatValue(m.Value))
		} else {
			_, err = fmt.Fprintf(w, "%s{job=\"%s\"} %s\n", fam, escapeLabelValue(m.Job), formatValue(m.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// promContentType is the text exposition content type scrapers expect.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromHandler returns an http.Handler serving the router's current sample
// in the Prometheus text exposition format — the pull half of the
// pipeline. Each scrape is one synchronous Sample (atomic reads only; the
// sink path is not involved), so scraping can never stall or skew a run.
func (rt *Router) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		_ = WritePrometheus(w, rt.Sample())
	})
}
