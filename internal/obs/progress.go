package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one progress snapshot, emitted to every attached sink on each
// ticker interval and once more (Final) when the loop stops.
type Event struct {
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	Phase          string           `json:"phase,omitempty"`
	Counters       map[string]int64 `json:"counters,omitempty"`
	Gauges         map[string]int64 `json:"gauges,omitempty"`
	// Rates holds the per-second delta of each counter since the previous
	// event (absent on the first event).
	Rates map[string]float64 `json:"rates,omitempty"`
	Final bool               `json:"final,omitempty"`
}

// Sink consumes progress events. Emit is called from the progress
// goroutine; implementations serialise their own output.
type Sink interface {
	Emit(Event)
}

// AddSink attaches a sink to the run's progress stream. No-op on nil runs.
func (r *Run) AddSink(s Sink) {
	if r == nil || s == nil {
		return
	}
	r.sinkMu.Lock()
	r.sinks = append(r.sinks, s)
	r.sinkMu.Unlock()
}

type progressLoop struct {
	stop chan struct{}
	done chan struct{}
}

// StartProgress begins emitting events to the attached sinks every
// interval. Idempotent; no-op on nil runs or non-positive intervals.
func (r *Run) StartProgress(interval time.Duration) {
	if r == nil || interval <= 0 {
		return
	}
	r.mu.Lock()
	if r.progress != nil {
		r.mu.Unlock()
		return
	}
	p := &progressLoop{stop: make(chan struct{}), done: make(chan struct{})}
	r.progress = p
	r.mu.Unlock()

	go func() {
		defer close(p.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var prev map[string]int64
		var prevAt time.Time
		for {
			select {
			case <-tick.C:
				prev, prevAt = r.emitEvent(prev, prevAt, false)
			case <-p.stop:
				r.emitEvent(prev, prevAt, true)
				return
			}
		}
	}()
}

// Close stops the progress loop (emitting one final event) and waits for
// it to drain. Safe on nil runs and runs without progress.
func (r *Run) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	p := r.progress
	r.progress = nil
	r.mu.Unlock()
	if p == nil {
		return
	}
	close(p.stop)
	<-p.done
}

// emitEvent builds one Event from the current snapshot and fans it out.
func (r *Run) emitEvent(prev map[string]int64, prevAt time.Time, final bool) (map[string]int64, time.Time) {
	now := time.Now()
	_, counters := r.snapshotCounters()
	_, gauges := r.snapshotGauges()
	ev := Event{
		ElapsedSeconds: time.Since(r.start).Seconds(),
		Phase:          r.CurrentPhase(),
		Counters:       counters,
		Gauges:         gauges,
		Final:          final,
	}
	if prev != nil {
		dt := now.Sub(prevAt).Seconds()
		if dt > 0 {
			ev.Rates = make(map[string]float64, len(counters))
			for name, v := range counters {
				ev.Rates[name] = float64(v-prev[name]) / dt
			}
		}
	}
	r.sinkMu.Lock()
	sinks := append([]Sink(nil), r.sinks...)
	r.sinkMu.Unlock()
	for _, s := range sinks {
		s.Emit(ev)
	}
	return counters, now
}

// HumanSink renders each event as one compact ticker line, the CLI's
// -progress output.
type HumanSink struct {
	W  io.Writer
	mu sync.Mutex
}

// Emit implements Sink.
func (h *HumanSink) Emit(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "[%7.1fs]", ev.ElapsedSeconds)
	if ev.Phase != "" {
		fmt.Fprintf(&b, " %-11s", ev.Phase)
	}
	names := make([]string, 0, len(ev.Counters))
	for n := range ev.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, " %s=%d", n, ev.Counters[n])
		if r, ok := ev.Rates[n]; ok && r != 0 {
			fmt.Fprintf(&b, "(+%.0f/s)", r)
		}
	}
	gnames := make([]string, 0, len(ev.Gauges))
	for n := range ev.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		fmt.Fprintf(&b, " %s=%d", n, ev.Gauges[n])
	}
	if ev.Final {
		b.WriteString(" (final)")
	}
	fmt.Fprintln(h.W, b.String())
}

// JSONLSink writes each event as one JSON line, the machine-readable
// progress stream.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a sink encoding events onto w, one object per line.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(ev)
}
