package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestNilPlanIsNoOp: the nil Plan contract — every method is safe and inert.
func TestNilPlanIsNoOp(t *testing.T) {
	var p *Plan
	if err := p.Point("pfs/apply", "s0"); err != nil {
		t.Fatalf("nil plan injected: %v", err)
	}
	p.Sleep("emulate/front", "f0")
	if n := p.Injected(); n != 0 {
		t.Fatalf("nil plan counted %d injections", n)
	}
}

// TestZeroRateNeverInjects: Rate 0 must behave exactly like a nil plan.
func TestZeroRateNeverInjects(t *testing.T) {
	p := New(Config{Seed: 1, Rate: 0})
	for i := 0; i < 1000; i++ {
		if err := p.Point("site", fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("rate-0 plan injected: %v", err)
		}
	}
	if p.Injected() != 0 {
		t.Fatalf("rate-0 plan counted %d injections", p.Injected())
	}
}

// TestDecideIsDeterministic: two plans with the same config draw identical
// fault decisions for identical (site, key) pairs — the property that makes
// faults schedule-independent.
func TestDecideIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.5}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		site := fmt.Sprintf("site%d", i%3)
		key := fmt.Sprintf("key%d", i)
		ka, oka := a.decide(site, key)
		kb, okb := b.decide(site, key)
		if oka != okb || ka != kb {
			t.Fatalf("plans diverge at (%s,%s): (%v,%v) vs (%v,%v)", site, key, ka, oka, kb, okb)
		}
	}
}

// TestSeedChangesPattern: different seeds must draw different fault sets
// (overwhelmingly likely over 500 points at rate 0.5).
func TestSeedChangesPattern(t *testing.T) {
	a := New(Config{Seed: 1, Rate: 0.5})
	b := New(Config{Seed: 2, Rate: 0.5})
	diff := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key%d", i)
		_, oka := a.decide("s", key)
		_, okb := b.decide("s", key)
		if oka != okb {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 drew identical fault patterns over 500 points")
	}
}

// TestRateIsRoughlyHonoured: at rate 0.3 over 2000 points the injection
// fraction should land well inside [0.2, 0.4].
func TestRateIsRoughlyHonoured(t *testing.T) {
	p := New(Config{Seed: 7, Rate: 0.3})
	hit := 0
	for i := 0; i < 2000; i++ {
		if _, ok := p.decide("s", fmt.Sprintf("k%d", i)); ok {
			hit++
		}
	}
	frac := float64(hit) / 2000
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("rate 0.3 produced injection fraction %.3f", frac)
	}
}

// TestMaxPerPointHeals: a point injects exactly its quota, then heals —
// the property a bounded retry loop relies on.
func TestMaxPerPointHeals(t *testing.T) {
	p := New(Config{Seed: 3, Rate: 1, Kinds: []Kind{KindErr}, MaxPerPoint: 2})
	for i := 0; i < 2; i++ {
		if err := p.Point("s", "k"); !Is(err) {
			t.Fatalf("attempt %d: want injected error, got %v", i, err)
		}
	}
	if err := p.Point("s", "k"); err != nil {
		t.Fatalf("point did not heal after quota: %v", err)
	}
	if p.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", p.Injected())
	}
}

// TestSitesFilter: a plan restricted to one site never faults others.
func TestSitesFilter(t *testing.T) {
	p := New(Config{Seed: 5, Rate: 1, Kinds: []Kind{KindErr}, Sites: []string{"pfs/apply"}})
	if err := p.Point("pfs/recover", "x"); err != nil {
		t.Fatalf("filtered site faulted: %v", err)
	}
	if err := p.Point("pfs/apply", "x"); !Is(err) {
		t.Fatalf("allowed site did not fault: %v", err)
	}
}

// TestIsAndWrapping: Is sees through fmt.Errorf %w wrapping and rejects
// ordinary errors.
func TestIsAndWrapping(t *testing.T) {
	inner := &Error{Kind: KindENOSPC, Site: "s", Key: "k"}
	if !Is(fmt.Errorf("outer: %w", inner)) {
		t.Fatal("Is missed a wrapped injected error")
	}
	if Is(errors.New("genuine")) {
		t.Fatal("Is claimed a genuine error")
	}
	if Is(nil) {
		t.Fatal("Is claimed nil")
	}
}

// TestPanicKind: KindPanic points panic with a value FromPanic recognises.
func TestPanicKind(t *testing.T) {
	p := New(Config{Seed: 11, Rate: 1, Kinds: []Kind{KindPanic}})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("KindPanic point did not panic")
		}
		fe, ok := FromPanic(v)
		if !ok || fe.Kind != KindPanic {
			t.Fatalf("FromPanic(%v) = %v, %v", v, fe, ok)
		}
		if _, ok := FromPanic("ordinary panic"); ok {
			t.Fatal("FromPanic claimed an ordinary panic value")
		}
	}()
	_ = p.Point("s", "k")
}

// TestSleepDegradesToLatency: Sleep never errors or panics, even for plans
// whose mix is all panics, and still consumes the point's quota.
func TestSleepDegradesToLatency(t *testing.T) {
	p := New(Config{Seed: 13, Rate: 1, Kinds: []Kind{KindPanic}, Latency: time.Microsecond})
	p.Sleep("s", "k")
	if p.Injected() != 1 {
		t.Fatalf("Sleep did not consume the quota: Injected() = %d", p.Injected())
	}
	// Quota spent: the error-surfacing Point on the same key is healed too.
	if err := p.Point("s", "k"); err != nil {
		t.Fatalf("point not healed after Sleep consumed quota: %v", err)
	}
}

// TestConcurrentPoints: the quota bookkeeping is race-free and exact under
// concurrent access (run with -race in CI).
func TestConcurrentPoints(t *testing.T) {
	p := New(Config{Seed: 17, Rate: 1, Kinds: []Kind{KindErr}, MaxPerPoint: 5})
	var wg sync.WaitGroup
	var mu sync.Mutex
	injected := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := p.Point("s", "shared"); err != nil {
					mu.Lock()
					injected++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if injected != 5 {
		t.Fatalf("shared point injected %d times, want exactly MaxPerPoint=5", injected)
	}
}

// TestErrorText: the ENOSPC flavour mimics the errno text so operators
// grepping logs see the familiar phrase.
func TestErrorText(t *testing.T) {
	e := &Error{Kind: KindENOSPC, Site: "pfs/apply", Key: "s1"}
	if want := "no space left on device"; !containsStr(e.Error(), want) {
		t.Fatalf("ENOSPC error %q lacks %q", e.Error(), want)
	}
	for _, k := range AllKinds {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", int(k))
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
