// Package faultinject is the deterministic, seedable fault plane of the
// testing stack: a Plan decides — purely from (seed, site, key) — whether a
// given fault point misbehaves, and how (injected I/O error, ENOSPC, panic,
// latency spike, torn metadata write). The decision function is a hash, not
// a sequential RNG, so it is independent of goroutine scheduling: a
// parallel exploration and a serial one see exactly the same faults at the
// same points, which is what lets the engine's retry machinery make faults
// fully transparent (byte-identical reports, see the chaos tests in
// internal/paracrash).
//
// Every injection at a (site, key) pair is bounded by MaxPerPoint; once a
// point has injected its quota it heals permanently, so a bounded retry
// loop around any faultable operation deterministically succeeds. Plans
// with an unbounded quota model hard faults: the engine then quarantines
// the poisoned work as Skipped instead of aborting.
//
// A nil *Plan is a valid, allocation-free no-op (the same convention as
// internal/obs), so fault points cost nothing when injection is off.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Kind enumerates the fault flavours a Plan can inject.
type Kind int

const (
	// KindErr is a generic injected I/O error.
	KindErr Kind = iota
	// KindENOSPC is an out-of-space error.
	KindENOSPC
	// KindLatency is a pure latency spike: the point sleeps, no error.
	KindLatency
	// KindTorn is a torn write: the caller applies a partial payload
	// before surfacing the error (see pfs.Cluster.ApplyLowermost).
	KindTorn
	// KindPanic makes the fault point panic; FromPanic recognises the
	// panic value so recovery wrappers can quarantine it.
	KindPanic
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case KindErr:
		return "io-error"
	case KindENOSPC:
		return "enospc"
	case KindLatency:
		return "latency"
	case KindTorn:
		return "torn-write"
	case KindPanic:
		return "panic"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AllKinds is the default fault mix of a Plan with no explicit Kinds.
var AllKinds = []Kind{KindErr, KindENOSPC, KindLatency, KindTorn, KindPanic}

// Config parameterises a Plan.
type Config struct {
	// Seed selects the deterministic fault pattern.
	Seed int64
	// Rate is the per-point injection probability in [0, 1]; values
	// outside the range are clamped. 0 disables injection.
	Rate float64
	// Kinds is the fault mix to draw from (nil/empty = AllKinds).
	Kinds []Kind
	// Sites, when non-empty, restricts injection to the named fault
	// sites (e.g. "pfs/apply"); other sites never fault.
	Sites []string
	// MaxPerPoint bounds injections per (site, key) pair; after the quota
	// the point heals permanently (0 = default 1). A very large value
	// models a hard fault that never heals.
	MaxPerPoint int
	// Latency is the sleep for KindLatency injections (0 = default 200µs).
	Latency time.Duration
}

// Error is the error value surfaced by injected faults. Use Is to
// distinguish injected errors from genuine engine errors.
type Error struct {
	Kind Kind
	Site string
	Key  string
}

// Error renders the injected fault; ENOSPC mimics the errno text.
func (e *Error) Error() string {
	if e.Kind == KindENOSPC {
		return fmt.Sprintf("faultinject: no space left on device (site %s, key %s)", e.Site, e.Key)
	}
	return fmt.Sprintf("faultinject: injected %s (site %s, key %s)", e.Kind, e.Site, e.Key)
}

// Is reports whether err is (or wraps) an injected fault.
func Is(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// panicValue wraps the injected error carried by a KindPanic fault so
// FromPanic can tell injected panics from genuine ones.
type panicValue struct{ err *Error }

// FromPanic recognises a recovered panic value produced by an injected
// KindPanic fault and returns its error.
func FromPanic(v any) (*Error, bool) {
	if pv, ok := v.(panicValue); ok {
		return pv.err, true
	}
	return nil, false
}

// Plan is an armed fault configuration. Methods are safe for concurrent
// use; a nil Plan never injects.
type Plan struct {
	cfg   Config
	sites map[string]bool

	mu   sync.Mutex
	hits map[string]int // per-(site, key) injections so far

	injected int64 // total injections (all kinds)
}

// New arms a Plan over cfg. A rate of 0 yields a Plan that never injects
// (equivalent to a nil Plan).
func New(cfg Config) *Plan {
	if cfg.Rate < 0 {
		cfg.Rate = 0
	}
	if cfg.Rate > 1 {
		cfg.Rate = 1
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = AllKinds
	}
	if cfg.MaxPerPoint <= 0 {
		cfg.MaxPerPoint = 1
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 200 * time.Microsecond
	}
	p := &Plan{cfg: cfg, hits: map[string]int{}}
	if len(cfg.Sites) > 0 {
		p.sites = map[string]bool{}
		for _, s := range cfg.Sites {
			p.sites[s] = true
		}
	}
	return p
}

// fnv64a hashes the byte string with FNV-1a (inlined to keep the decision
// function self-contained and stable).
func fnv64a(parts ...string) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for _, s := range parts {
		for i := 0; i < len(s); i++ {
			mix(s[i])
		}
		mix(0) // separator so ("ab","c") != ("a","bc")
	}
	return h
}

// decide returns the fault kind drawn for (site, key), or false when the
// point does not fault under this plan. Pure function of the config.
func (p *Plan) decide(site, key string) (Kind, bool) {
	if p.sites != nil && !p.sites[site] {
		return 0, false
	}
	seed := fmt.Sprintf("%d", p.cfg.Seed)
	h := fnv64a(seed, site, key)
	// 53 uniform bits -> [0, 1).
	if float64(h>>11)/(1<<53) >= p.cfg.Rate {
		return 0, false
	}
	h2 := fnv64a(seed, site, key, "kind")
	return p.cfg.Kinds[h2%uint64(len(p.cfg.Kinds))], true
}

// take consumes one injection slot for (site, key); false means the point
// has already injected its quota and is healed.
func (p *Plan) take(site, key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := site + "\x00" + key
	if p.hits[k] >= p.cfg.MaxPerPoint {
		return false
	}
	p.hits[k]++
	p.injected++
	return true
}

// Point is a fault point: it may sleep (KindLatency), return an injected
// error (KindErr, KindENOSPC, KindTorn) or panic (KindPanic). Callers that
// cannot tolerate a torn payload treat KindTorn as a plain error. Nil-safe.
func (p *Plan) Point(site, key string) error {
	if p == nil || p.cfg.Rate == 0 {
		return nil
	}
	kind, ok := p.decide(site, key)
	if !ok || !p.take(site, key) {
		return nil
	}
	switch kind {
	case KindLatency:
		time.Sleep(p.cfg.Latency)
		return nil
	case KindPanic:
		panic(panicValue{&Error{Kind: KindPanic, Site: site, Key: key}})
	default:
		return &Error{Kind: kind, Site: site, Key: key}
	}
}

// Sleep is the timing-only fault point for code that cannot surface errors
// (the crash-state emulator): any fault drawn for (site, key) degrades to
// a latency spike. Nil-safe.
func (p *Plan) Sleep(site, key string) {
	if p == nil || p.cfg.Rate == 0 {
		return
	}
	if _, ok := p.decide(site, key); ok && p.take(site, key) {
		time.Sleep(p.cfg.Latency)
	}
}

// Injected returns the total number of injections performed so far.
func (p *Plan) Injected() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}
