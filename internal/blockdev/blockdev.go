// Package blockdev implements the block-device substrate used by the
// kernel-level parallel file systems in the simulated stack (the paper's
// GPFS and Lustre, traced at the SCSI command level through iSCSI).
//
// A Dev is an LBA-addressed image. Writes replace whole blocks; scsi_sync
// is a write barrier: every write issued before the barrier persists before
// any write issued after it on the same device. As with package vfs, the
// persist-before relation itself is computed by package causality — this
// package only provides replayable ops, snapshots and canonical hashing.
//
// The block table is a persistent, structurally-shared map, so Snapshot and
// Restore are O(1) pointer copies. Block contents are never mutated in
// place (Write installs a fresh copy), so no per-block ownership tracking
// is needed: sharing the trie is always safe. An *Dev returned by Snapshot
// must not be written to.
package blockdev

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"paracrash/internal/persist"
)

// OpKind enumerates replayable block-device commands.
type OpKind int

const (
	// OpWrite writes Data at block address LBA.
	OpWrite OpKind = iota
	// OpSync is a write barrier (scsi_synchronize_cache).
	OpSync
)

// Op is a single replayable block command.
type Op struct {
	Kind OpKind
	LBA  int64
	Data []byte
}

// String renders the op in the iSCSI-trace form used by the paper.
func (o Op) String() string {
	if o.Kind == OpSync {
		return "scsi_sync()"
	}
	return fmt.Sprintf("scsi_write(LBA: %d, len=%d)", o.LBA, len(o.Data))
}

// Dev is an in-memory block device. Blocks are variable-length: each LBA
// holds exactly the bytes most recently written to it, which is sufficient
// for whole-block-granularity crash emulation.
type Dev struct {
	blocks persist.Map[int64, []byte]
}

// New returns an empty device.
func New() *Dev {
	return &Dev{blocks: persist.NewMap[int64, []byte](persist.Int64Hash)}
}

// Write stores data at lba, replacing any previous contents.
func (d *Dev) Write(lba int64, data []byte) {
	d.blocks = d.blocks.Set(lba, append([]byte(nil), data...))
}

// Read returns the contents of lba and whether the block has been written.
func (d *Dev) Read(lba int64) ([]byte, bool) {
	b, ok := d.blocks.Get(lba)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// Erase removes the block at lba (models discard; used by fsck policies).
func (d *Dev) Erase(lba int64) {
	d.blocks = d.blocks.Delete(lba)
}

// LBAs returns the sorted set of written block addresses.
func (d *Dev) LBAs() []int64 {
	out := make([]int64, 0, d.blocks.Len())
	d.blocks.Range(func(lba int64, _ []byte) bool {
		out = append(out, lba)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Apply replays op onto the device.
func (d *Dev) Apply(op Op) error {
	switch op.Kind {
	case OpWrite:
		d.Write(op.LBA, op.Data)
		return nil
	case OpSync:
		return nil // barrier: persistence point only
	default:
		return fmt.Errorf("blockdev: apply: unknown op kind %d", op.Kind)
	}
}

// Snapshot returns an immutable O(1) snapshot sharing the block trie. The
// returned Dev must not be written to.
func (d *Dev) Snapshot() *Dev {
	return &Dev{blocks: d.blocks}
}

// Restore adopts snap's block trie in O(1). snap is only read and may be
// restored into any number of devices, including concurrently.
func (d *Dev) Restore(snap *Dev) {
	d.blocks = snap.blocks
}

// Serialize renders the device state canonically: one line per written LBA
// with a content hash.
func (d *Dev) Serialize() string {
	var b strings.Builder
	for _, lba := range d.LBAs() {
		blk, _ := d.blocks.Get(lba)
		sum := sha256.Sum256(blk)
		fmt.Fprintf(&b, "%d %d %s\n", lba, len(blk), hex.EncodeToString(sum[:8]))
	}
	return b.String()
}

// Hash returns a short hex digest of the canonical state.
func (d *Dev) Hash() string {
	sum := sha256.Sum256([]byte(d.Serialize()))
	return hex.EncodeToString(sum[:12])
}
