// Package blockdev implements the block-device substrate used by the
// kernel-level parallel file systems in the simulated stack (the paper's
// GPFS and Lustre, traced at the SCSI command level through iSCSI).
//
// A Dev is an LBA-addressed image. Writes replace whole blocks; scsi_sync
// is a write barrier: every write issued before the barrier persists before
// any write issued after it on the same device. As with package vfs, the
// persist-before relation itself is computed by package causality — this
// package only provides replayable ops, snapshots and canonical hashing.
package blockdev

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// OpKind enumerates replayable block-device commands.
type OpKind int

const (
	// OpWrite writes Data at block address LBA.
	OpWrite OpKind = iota
	// OpSync is a write barrier (scsi_synchronize_cache).
	OpSync
)

// Op is a single replayable block command.
type Op struct {
	Kind OpKind
	LBA  int64
	Data []byte
}

// String renders the op in the iSCSI-trace form used by the paper.
func (o Op) String() string {
	if o.Kind == OpSync {
		return "scsi_sync()"
	}
	return fmt.Sprintf("scsi_write(LBA: %d, len=%d)", o.LBA, len(o.Data))
}

// Dev is an in-memory block device. Blocks are variable-length: each LBA
// holds exactly the bytes most recently written to it, which is sufficient
// for whole-block-granularity crash emulation.
type Dev struct {
	blocks map[int64][]byte
}

// New returns an empty device.
func New() *Dev {
	return &Dev{blocks: make(map[int64][]byte)}
}

// Write stores data at lba, replacing any previous contents.
func (d *Dev) Write(lba int64, data []byte) {
	d.blocks[lba] = append([]byte(nil), data...)
}

// Read returns the contents of lba and whether the block has been written.
func (d *Dev) Read(lba int64) ([]byte, bool) {
	b, ok := d.blocks[lba]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// Erase removes the block at lba (models discard; used by fsck policies).
func (d *Dev) Erase(lba int64) {
	delete(d.blocks, lba)
}

// LBAs returns the sorted set of written block addresses.
func (d *Dev) LBAs() []int64 {
	out := make([]int64, 0, len(d.blocks))
	for lba := range d.blocks {
		out = append(out, lba)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Apply replays op onto the device.
func (d *Dev) Apply(op Op) error {
	switch op.Kind {
	case OpWrite:
		d.Write(op.LBA, op.Data)
		return nil
	case OpSync:
		return nil // barrier: persistence point only
	default:
		return fmt.Errorf("blockdev: apply: unknown op kind %d", op.Kind)
	}
}

// Snapshot returns a deep copy of the device.
func (d *Dev) Snapshot() *Dev {
	c := New()
	for lba, b := range d.blocks {
		c.blocks[lba] = append([]byte(nil), b...)
	}
	return c
}

// Restore replaces the contents of d with a deep copy of snap.
func (d *Dev) Restore(snap *Dev) {
	c := snap.Snapshot()
	d.blocks = c.blocks
}

// Serialize renders the device state canonically: one line per written LBA
// with a content hash.
func (d *Dev) Serialize() string {
	var b strings.Builder
	for _, lba := range d.LBAs() {
		sum := sha256.Sum256(d.blocks[lba])
		fmt.Fprintf(&b, "%d %d %s\n", lba, len(d.blocks[lba]), hex.EncodeToString(sum[:8]))
	}
	return b.String()
}

// Hash returns a short hex digest of the canonical state.
func (d *Dev) Hash() string {
	sum := sha256.Sum256([]byte(d.Serialize()))
	return hex.EncodeToString(sum[:12])
}
