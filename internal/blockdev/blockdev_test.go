package blockdev

import (
	"testing"
	"testing/quick"
)

func TestWriteReadErase(t *testing.T) {
	d := New()
	d.Write(5, []byte("abc"))
	b, ok := d.Read(5)
	if !ok || string(b) != "abc" {
		t.Fatalf("Read = %q, %v", b, ok)
	}
	if _, ok := d.Read(6); ok {
		t.Fatal("unwritten block must not exist")
	}
	d.Write(5, []byte("xy"))
	b, _ = d.Read(5)
	if string(b) != "xy" {
		t.Fatal("rewrite must replace the whole block")
	}
	d.Erase(5)
	if _, ok := d.Read(5); ok {
		t.Fatal("erase must remove the block")
	}
}

func TestReadIsACopy(t *testing.T) {
	d := New()
	d.Write(1, []byte("abc"))
	b, _ := d.Read(1)
	b[0] = 'X'
	b2, _ := d.Read(1)
	if string(b2) != "abc" {
		t.Fatal("Read must return a copy")
	}
}

func TestApply(t *testing.T) {
	d := New()
	if err := d.Apply(Op{Kind: OpWrite, LBA: 3, Data: []byte("z")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(Op{Kind: OpSync}); err != nil {
		t.Fatal(err)
	}
	if b, ok := d.Read(3); !ok || string(b) != "z" {
		t.Fatalf("apply write lost: %q %v", b, ok)
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := New()
	d.Write(1, []byte("a"))
	snap := d.Snapshot()
	d.Write(1, []byte("b"))
	d.Write(2, []byte("c"))
	d.Restore(snap)
	if b, _ := d.Read(1); string(b) != "a" {
		t.Fatal("restore content wrong")
	}
	if _, ok := d.Read(2); ok {
		t.Fatal("restore kept extra block")
	}
	// Snapshot stays isolated after restore.
	d.Write(1, []byte("z"))
	if b, _ := snap.Read(1); string(b) != "a" {
		t.Fatal("restore aliased the snapshot")
	}
}

func TestSerializeAndLBAs(t *testing.T) {
	a, b := New(), New()
	a.Write(2, []byte("x"))
	a.Write(1, []byte("y"))
	b.Write(1, []byte("y"))
	b.Write(2, []byte("x"))
	if a.Hash() != b.Hash() {
		t.Fatal("write order must not affect the canonical state")
	}
	lbas := a.LBAs()
	if len(lbas) != 2 || lbas[0] != 1 || lbas[1] != 2 {
		t.Fatalf("LBAs = %v", lbas)
	}
	b.Write(3, []byte("z"))
	if a.Hash() == b.Hash() {
		t.Fatal("different devices hash equal")
	}
}

func TestQuickLastWriteWins(t *testing.T) {
	f := func(writes []struct {
		LBA  uint8
		Data []byte
	}) bool {
		d := New()
		last := map[int64][]byte{}
		for _, w := range writes {
			d.Write(int64(w.LBA), w.Data)
			last[int64(w.LBA)] = w.Data
		}
		for lba, want := range last {
			got, ok := d.Read(lba)
			if !ok || string(got) != string(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if s := (Op{Kind: OpSync}).String(); s != "scsi_sync()" {
		t.Errorf("sync op string = %q", s)
	}
	if s := (Op{Kind: OpWrite, LBA: 7, Data: []byte("ab")}).String(); s != "scsi_write(LBA: 7, len=2)" {
		t.Errorf("write op string = %q", s)
	}
}
