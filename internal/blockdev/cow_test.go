package blockdev

import "testing"

// TestRestoreAliasing proves Restore is a safe O(1) adoption: writes and
// erases after a restore must never leak into the source snapshot or into
// sibling devices restored from the same snapshot.
func TestRestoreAliasing(t *testing.T) {
	d := New()
	d.Write(1, []byte("one"))
	d.Write(2, []byte("two"))
	snap := d.Snapshot()
	want := snap.Serialize()

	a, b := New(), New()
	a.Restore(snap)
	b.Restore(snap)

	a.Write(1, []byte("CLOBBERED"))
	a.Write(9, []byte("new"))
	a.Erase(2)

	if got := snap.Serialize(); got != want {
		t.Fatalf("snapshot mutated through restored device:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if got := b.Serialize(); got != want {
		t.Fatalf("sibling mutated through restored device:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if blk, ok := b.Read(1); !ok || string(blk) != "one" {
		t.Fatalf("sibling block changed: %q, %v", blk, ok)
	}
	if blk, ok := a.Read(1); !ok || string(blk) != "CLOBBERED" {
		t.Fatalf("mutated side lost its write: %q, %v", blk, ok)
	}
}

// TestSnapshotAllocsO1 is the CI guard that Snapshot stays O(1) regardless
// of how many blocks the device holds.
func TestSnapshotAllocsO1(t *testing.T) {
	d := New()
	for i := int64(0); i < 1000; i++ {
		d.Write(i, make([]byte, 64))
	}
	var sink *Dev
	allocs := testing.AllocsPerRun(100, func() {
		sink = d.Snapshot()
	})
	_ = sink
	if allocs > 1 {
		t.Fatalf("Snapshot allocates %.1f objects on a 1000-block device; want O(1)", allocs)
	}
	snap := d.Snapshot()
	allocs = testing.AllocsPerRun(100, func() {
		d.Restore(snap)
	})
	if allocs > 0 {
		t.Fatalf("Restore allocates %.1f objects; want 0", allocs)
	}
}
