// Package stack wires the full HPC I/O stack together: the HDF5/NetCDF
// library (package hdf5) running over MPI-IO (package mpiio) over a
// parallel file system (package pfs), with every layer traced — the
// paper's Figure 1 assembled for testing. It also provides the
// paracrash.Library adapter used by the cross-layer consistency checker.
package stack

import (
	"fmt"
	"strings"

	"paracrash/internal/hdf5"
	"paracrash/internal/mpiio"
	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

// Dialect selects the I/O library flavour: HDF5 or NetCDF (which, per the
// paper's configuration, uses the HDF5 format underneath but opens files
// eagerly, so any corrupt object makes the file unopenable).
type Dialect int

const (
	// DialectHDF5 is plain HDF5-1.8-style access.
	DialectHDF5 Dialect = iota
	// DialectNetCDF is NetCDF-4 over HDF5.
	DialectNetCDF
)

// Name returns the library name used in bug attribution.
func (d Dialect) Name() string {
	if d == DialectNetCDF {
		return "netcdf"
	}
	return "hdf5"
}

// opName maps a logical library operation to the dialect's API name.
func (d Dialect) opName(kind string) string {
	if d == DialectNetCDF {
		switch kind {
		case "open":
			return "nc_open"
		case "create":
			return "nc_def_var"
		case "write":
			return "nc_put_var"
		case "delete":
			return "nc_del_var"
		case "move":
			return "nc_rename_var"
		case "resize":
			return "nc_set_extent"
		case "flush":
			return "nc_sync"
		case "close":
			return "nc_close"
		}
	}
	switch kind {
	case "open":
		return "H5Fopen"
	case "create":
		return "H5Dcreate"
	case "write":
		return "H5Dwrite"
	case "delete":
		return "H5Ldelete"
	case "move":
		return "H5Lmove"
	case "resize":
		return "H5Dset_extent"
	case "flush":
		return "H5Fflush"
	case "close":
		return "H5Fclose"
	}
	return kind
}

// opKind reverses opName for replay.
func opKind(name string) string {
	n := strings.ToLower(name)
	switch {
	case strings.Contains(n, "open"):
		return "open"
	case strings.Contains(n, "create"), strings.Contains(n, "def_var"):
		return "create"
	case strings.Contains(n, "write"), strings.Contains(n, "put_var"):
		return "write"
	case strings.Contains(n, "delete"), strings.Contains(n, "del_var"):
		return "delete"
	case strings.Contains(n, "move"), strings.Contains(n, "rename"):
		return "move"
	case strings.Contains(n, "extent"), strings.Contains(n, "resize"):
		return "resize"
	case strings.Contains(n, "flush"), strings.Contains(n, "sync"):
		return "flush"
	case strings.Contains(n, "close"):
		return "close"
	}
	return ""
}

// Session is one rank's open library file over the stack.
type Session struct {
	fs      pfs.FileSystem
	rec     *trace.Recorder
	mf      *mpiio.File
	f       *hdf5.File
	proc    string
	path    string
	dialect Dialect
	// rank0 owns the metadata flush in collective mode.
	rank0 bool
}

// FormatFile creates a fresh library file on the PFS (preamble use: runs
// untraced when the recorder is disabled). It returns a session that must
// be closed.
func FormatFile(fs pfs.FileSystem, rank int, path string, d Dialect) (*Session, error) {
	mf, err := mpiio.Open(fs, rank, path, true)
	if err != nil {
		return nil, err
	}
	f, err := hdf5.Format(mf)
	if err != nil {
		return nil, err
	}
	s := &Session{fs: fs, rec: fs.Recorder(), mf: mf, f: f, proc: mf.Proc(), path: path, dialect: d, rank0: rank == 0}
	if d == DialectNetCDF {
		if err := f.SetAttrs("/", "_NCProperties=netcdf"); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// OpenFile opens an existing library file over the stack for the given
// rank, recording the library-level open.
func OpenFile(fs pfs.FileSystem, rank int, path string, d Dialect) (*Session, error) {
	s := &Session{fs: fs, rec: fs.Recorder(), path: path, proc: procName(rank), dialect: d, rank0: rank == 0}
	s.libOp("open", path, "", nil, 0)
	defer s.rec.Pop(s.proc)
	mf, err := mpiio.Open(fs, rank, path, false)
	if err != nil {
		return nil, err
	}
	f, err := hdf5.Open(mf)
	if err != nil {
		return nil, err
	}
	// The open-for-write status flag hits the disk immediately (what
	// h5clear exists to clean up after a crash).
	if err := f.Flush(); err != nil {
		return nil, err
	}
	s.mf, s.f = mf, f
	return s, nil
}

func procName(rank int) string { return fmt.Sprintf("client/%d", rank) }

// libOp records a library-layer trace op and leaves it pushed as the
// current caller; callers must Pop.
func (s *Session) libOp(kind, path, path2 string, data []byte, off int64) *trace.Op {
	op := trace.Op{
		Layer: trace.LayerIOLib, Proc: s.proc,
		Name: s.dialect.opName(kind), Path: path, Path2: path2,
		FileID: s.path, Offset: off,
	}
	if data != nil {
		op.Data = append([]byte(nil), data...)
		op.Size = int64(len(data))
	}
	if kind == "flush" {
		op.Sync = true
	}
	return s.rec.Push(op)
}

// Proc returns the session's client process name.
func (s *Session) Proc() string { return s.proc }

// File exposes the underlying library file (examples and tests).
func (s *Session) File() *hdf5.File { return s.f }

// CreateGroup creates a group (untraced as a distinct op in the paper's
// programs; part of preambles).
func (s *Session) CreateGroup(path string) error {
	s.libOp("create", path, "", []byte("group"), 0)
	defer s.rec.Pop(s.proc)
	return s.f.CreateGroup(path)
}

// CreateDataset records the collective dataset creation and applies it to
// this rank's cache.
func (s *Session) CreateDataset(path string, rows, cols int) error {
	s.libOp("create", path, "", hdf5.DimsArg(rows, cols), 0)
	defer s.rec.Pop(s.proc)
	return s.f.CreateDataset(path, rows, cols)
}

// WriteDataset writes the whole dataset.
func (s *Session) WriteDataset(path string, data []byte) error {
	s.libOp("write", path, "", data, 0)
	defer s.rec.Pop(s.proc)
	return s.f.WriteDataset(path, data)
}

// WriteDatasetAt writes a slab at byte offset off.
func (s *Session) WriteDatasetAt(path string, off int, data []byte) error {
	s.libOp("write", path, "", data, int64(off))
	defer s.rec.Pop(s.proc)
	return s.f.WriteDatasetAt(path, off, data)
}

// Delete removes a dataset link.
func (s *Session) Delete(path string) error {
	s.libOp("delete", path, "", nil, 0)
	defer s.rec.Pop(s.proc)
	return s.f.Delete(path)
}

// Move renames a dataset.
func (s *Session) Move(src, dst string) error {
	s.libOp("move", src, dst, nil, 0)
	defer s.rec.Pop(s.proc)
	return s.f.Move(src, dst)
}

// Resize grows a dataset.
func (s *Session) Resize(path string, rows, cols int) error {
	s.libOp("resize", path, "", hdf5.DimsArg(rows, cols), 0)
	defer s.rec.Pop(s.proc)
	return s.f.Resize(path, rows, cols)
}

// Flush forces the cache out (H5Fflush) and syncs the file.
func (s *Session) Flush() error {
	s.libOp("flush", s.path, "", nil, 0)
	defer s.rec.Pop(s.proc)
	if err := s.f.Flush(); err != nil {
		return err
	}
	return s.mf.Sync()
}

// Close flushes and closes the file. Rank 0 flushes everything (metadata
// included); other ranks flush only their data chunks — the collective
// close of parallel HDF5 where rank 0 owns the metadata.
func (s *Session) Close() error {
	s.libOp("close", s.path, "", nil, 0)
	defer s.rec.Pop(s.proc)
	var err error
	if s.rank0 {
		err = s.f.Close()
	} else {
		err = s.f.FlushData()
	}
	if err != nil {
		return err
	}
	return s.mf.Close()
}

// Barrier synchronises the given sessions (MPI_Barrier).
func Barrier(sessions ...*Session) {
	if len(sessions) == 0 {
		return
	}
	procs := make([]string, len(sessions))
	for i, s := range sessions {
		procs[i] = s.proc
	}
	mpiio.Barrier(sessions[0].rec, procs)
}

// Library adapts the simulated I/O library to the checker's Library
// interface for cross-layer attribution.
type Library struct {
	Dialect  Dialect
	FilePath string
	// ClearIncreaseEOF enables h5clear's --increase-eof repair during
	// RecoverTree (the paper's bug #13 sensitivity).
	ClearIncreaseEOF bool

	seed []byte
}

// NewLibrary returns a Library adapter for the file at path.
func NewLibrary(d Dialect, path string) *Library {
	return &Library{Dialect: d, FilePath: path}
}

// Name implements paracrash.Library.
func (l *Library) Name() string { return l.Dialect.Name() }

// IsLibOp implements paracrash.Library; the layer filter upstream already
// scopes to LayerIOLib.
func (l *Library) IsLibOp(o *trace.Op) bool { return o.FileID == l.FilePath }

// SeedImage sets the initial file image directly (the h5replay tool's
// entry point; Seed is the in-stack form).
func (l *Library) SeedImage(img []byte) {
	l.seed = append([]byte(nil), img...)
}

// Seed implements paracrash.Library: it captures the initial file image.
func (l *Library) Seed(t *pfs.Tree) error {
	e, ok := t.Entries[l.FilePath]
	if !ok || e.Dir {
		return fmt.Errorf("stack: seed: %q not found in initial state", l.FilePath)
	}
	l.seed = append([]byte(nil), e.Data...)
	return nil
}

// StateFromTree implements paracrash.Library: it parses the library file
// out of the mounted PFS namespace.
func (l *Library) StateFromTree(t *pfs.Tree) (string, error) {
	e, ok := t.Entries[l.FilePath]
	if !ok || e.Dir {
		return "", fmt.Errorf("stack: %q missing from recovered namespace", l.FilePath)
	}
	st := hdf5.Parse(e.Data, l.Dialect == DialectNetCDF)
	return st.Serialize(), nil
}

// RecoverTree implements paracrash.Library: h5clear on the file image.
func (l *Library) RecoverTree(t *pfs.Tree) (*pfs.Tree, bool) {
	e, ok := t.Entries[l.FilePath]
	if !ok || e.Dir {
		return t, false
	}
	img, changed := hdf5.Clear(e.Data, l.ClearIncreaseEOF)
	if !changed {
		return t, false
	}
	out := pfs.NewTree()
	for p, ent := range t.Entries {
		if p == l.FilePath {
			out.AddFile(p, img)
		} else if ent.Dir {
			out.AddDir(p)
		} else {
			out.AddFile(p, ent.Data)
		}
	}
	return out, true
}

// Replay implements paracrash.Library: the preserved library ops run
// against a fresh in-memory copy of the seeded image, then everything is
// persisted and parsed.
func (l *Library) Replay(ops []*trace.Op) (string, error) {
	be := &hdf5.MemBackend{Buf: append([]byte(nil), l.seed...)}
	var f *hdf5.File
	for _, op := range ops {
		kind := opKind(op.Name)
		if kind == "open" {
			nf, err := hdf5.Open(be)
			if err == nil {
				f = nf
			}
			continue
		}
		if f == nil {
			continue // ops before a preserved open have no effect
		}
		// Individual op failures mean the preserved set lacks this op's
		// prerequisites; the op is simply lost, like in a crash.
		switch kind {
		case "create":
			if string(op.Data) == "group" {
				_ = f.CreateGroup(op.Path)
			} else if r, c, err := hdf5.ParseDims(op.Data); err == nil {
				_ = f.CreateDataset(op.Path, r, c)
			}
		case "write":
			_ = f.WriteDatasetAt(op.Path, int(op.Offset), op.Data)
		case "delete":
			_ = f.Delete(op.Path)
		case "move":
			_ = f.Move(op.Path, op.Path2)
		case "resize":
			if r, c, err := hdf5.ParseDims(op.Data); err == nil {
				_ = f.Resize(op.Path, r, c)
			}
		case "flush":
			_ = f.Flush()
		case "close":
			_ = f.Close()
		}
	}
	if f != nil {
		_ = f.Flush()
	}
	st := hdf5.Parse(be.Buf, l.Dialect == DialectNetCDF)
	return st.Serialize(), nil
}
