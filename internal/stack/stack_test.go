package stack

import (
	"strings"
	"testing"

	"paracrash/internal/hdf5"
	"paracrash/internal/pfs"
	"paracrash/internal/pfs/extfs"
	"paracrash/internal/trace"
)

// buildStack formats the paper's initial file on an ext4 baseline and
// returns the fs and a seeded library adapter.
func buildStack(t *testing.T, d Dialect) (pfs.FileSystem, *Library) {
	t.Helper()
	conf := pfs.DefaultConfig()
	conf.MetaServers = 0
	conf.StorageServers = 1
	fs := extfs.New(conf, trace.NewRecorder())
	fs.Recorder().SetEnabled(false)

	s, err := FormatFile(fs, 0, "/test.h5", d)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateGroup("/g1"))
	must(t, s.CreateDataset("/g1/d1", 4, 4))
	must(t, s.WriteDataset("/g1/d1", []byte("0123456789abcdef")))
	must(t, s.Close())

	lib := NewLibrary(d, "/test.h5")
	tree, err := fs.Mount()
	must(t, err)
	must(t, lib.Seed(tree))
	fs.Recorder().SetEnabled(true)
	return fs, lib
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestReplayMatchesLiveExecution: replaying the recorded library ops on the
// seeded image produces the same logical state as the live run — the
// golden-master invariant everything rests on.
func TestReplayMatchesLiveExecution(t *testing.T) {
	fs, lib := buildStack(t, DialectHDF5)
	s, err := OpenFile(fs, 0, "/test.h5", DialectHDF5)
	must(t, err)
	must(t, s.CreateDataset("/g1/dnew", 4, 4))
	must(t, s.WriteDataset("/g1/dnew", []byte("fresh-data-16byt")))
	must(t, s.Move("/g1/d1", "/g1/dmoved"))
	must(t, s.Close())

	// Live state, parsed from the PFS.
	tree, err := fs.Mount()
	must(t, err)
	live, err := lib.StateFromTree(tree)
	must(t, err)

	// Replayed state from the trace.
	var libOps []*trace.Op
	for _, o := range fs.Recorder().Ops() {
		if o.Layer == trace.LayerIOLib {
			libOps = append(libOps, o)
		}
	}
	if len(libOps) < 5 {
		t.Fatalf("expected library ops in the trace, got %d", len(libOps))
	}
	replayed, err := lib.Replay(libOps)
	must(t, err)
	if live != replayed {
		t.Fatalf("replay diverges from live:\nlive:\n%s\nreplay:\n%s", live, replayed)
	}
	if !strings.Contains(live, "/g1/dnew") || !strings.Contains(live, "/g1/dmoved") {
		t.Fatalf("state incomplete:\n%s", live)
	}
}

// TestReplaySubsetSkipsDependents: a preserved set missing the create
// silently loses the dependent write.
func TestReplaySubsetSkipsDependents(t *testing.T) {
	fs, lib := buildStack(t, DialectHDF5)
	s, err := OpenFile(fs, 0, "/test.h5", DialectHDF5)
	must(t, err)
	must(t, s.CreateDataset("/g1/dnew", 4, 4))
	must(t, s.WriteDataset("/g1/dnew", []byte("fresh-data-16byt")))
	must(t, s.Close())

	var open, write, closeOp *trace.Op
	for _, o := range fs.Recorder().Ops() {
		if o.Layer != trace.LayerIOLib {
			continue
		}
		switch {
		case strings.Contains(o.Name, "Fopen"):
			open = o
		case strings.Contains(o.Name, "Dwrite"):
			write = o
		case strings.Contains(o.Name, "Fclose"):
			closeOp = o
		}
	}
	state, err := lib.Replay([]*trace.Op{open, write, closeOp})
	must(t, err)
	if strings.Contains(state, "/g1/dnew") {
		t.Fatalf("write without create should be lost:\n%s", state)
	}
	if !strings.Contains(state, "/g1/d1") {
		t.Fatalf("seeded content lost:\n%s", state)
	}
}

// TestTagsReachLowermostOps: the library's object map labels flow through
// MPI-IO and the PFS down to the replayable writes (used by semantic
// pruning).
func TestTagsReachLowermostOps(t *testing.T) {
	fs, _ := buildStack(t, DialectHDF5)
	s, err := OpenFile(fs, 0, "/test.h5", DialectHDF5)
	must(t, err)
	must(t, s.WriteDataset("/g1/d1", []byte("xxxxxxxxxxxxxxxx")))
	must(t, s.Close())
	sawData, sawMeta := false, false
	for _, o := range fs.Recorder().Ops() {
		if o.Payload == nil {
			continue
		}
		if strings.HasPrefix(o.Tag, "h5:data:/g1/d1") {
			sawData = true
		}
		if strings.HasPrefix(o.Tag, "h5:superblock") {
			sawMeta = true
		}
	}
	if !sawData || !sawMeta {
		t.Fatalf("tags missing at the lowermost layer (data=%v meta=%v)", sawData, sawMeta)
	}
}

// TestLayerNesting: lowermost ops chain through MPI and library ancestors.
func TestLayerNesting(t *testing.T) {
	fs, _ := buildStack(t, DialectHDF5)
	s, err := OpenFile(fs, 0, "/test.h5", DialectHDF5)
	must(t, err)
	must(t, s.CreateDataset("/g1/dn", 4, 4))
	must(t, s.Close())
	ops := fs.Recorder().Ops()
	byID := map[int]*trace.Op{}
	for _, o := range ops {
		byID[o.ID] = o
	}
	checked := 0
	for _, o := range ops {
		if o.Payload == nil || o.Layer != trace.LayerLocalFS {
			continue
		}
		layers := map[trace.Layer]bool{}
		for cur := o; cur != nil; {
			layers[cur.Layer] = true
			if cur.Parent <= 0 {
				break
			}
			cur = byID[cur.Parent]
		}
		if layers[trace.LayerMPI] && layers[trace.LayerIOLib] {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no lowermost op chains through MPI and library layers")
	}
}

// TestNetCDFStrictness: the same torn image is partially readable as HDF5
// but unopenable as NetCDF (bug #15's -101).
func TestNetCDFStrictness(t *testing.T) {
	be := &hdf5.MemBackend{}
	f, err := hdf5.Format(be)
	must(t, err)
	must(t, f.CreateDataset("/v1", 4, 4))
	must(t, f.Close())
	// Corrupt the dataset's object header region.
	img := append([]byte(nil), be.Buf...)
	m, err := hdf5.Inspect(img)
	must(t, err)
	for _, e := range m {
		if e.Kind == "ohdr" && e.Path == "/v1" {
			for i := 0; i < e.Size; i++ {
				img[e.Addr+int64(i)] = 0
			}
		}
	}
	lazy := hdf5.Parse(img, false)
	if lazy.FileError != "" {
		t.Fatalf("HDF5 lazy open should tolerate one corrupt object: %s", lazy.FileError)
	}
	strict := hdf5.Parse(img, true)
	if !strings.Contains(strict.FileError, "-101") {
		t.Fatalf("NetCDF strict open should fail with -101, got %q", strict.FileError)
	}
}

// TestRecoverTreeClearsStatus: h5clear fixes the open-for-write flag left
// by a crash before close.
func TestRecoverTreeClearsStatus(t *testing.T) {
	fs, lib := buildStack(t, DialectHDF5)
	// Open for write and flush only the status flag, then "crash" (skip
	// close): the on-PFS superblock carries status=1.
	_, err := OpenFile(fs, 0, "/test.h5", DialectHDF5)
	must(t, err)
	tree, err := fs.Mount()
	must(t, err)
	img := tree.Entries["/test.h5"].Data
	st, err := hdf5.Status(img)
	must(t, err)
	if st == 0 {
		t.Fatal("status flag should be set after open")
	}
	fixed, changed := lib.RecoverTree(tree)
	if !changed {
		t.Fatal("RecoverTree should have cleared the flag")
	}
	img2 := fixed.Entries["/test.h5"].Data
	if st, _ := hdf5.Status(img2); st != 0 {
		t.Fatal("flag not cleared")
	}
}
