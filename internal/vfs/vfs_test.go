package vfs

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCreateWriteRead(t *testing.T) {
	fs := New()
	if err := fs.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("/a", 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	b, err := fs.Read("/a")
	if err != nil || string(b) != "hello" {
		t.Fatalf("Read = %q, %v", b, err)
	}
	if err := fs.WriteAt("/a", 10, []byte("x")); err != nil {
		t.Fatal(err)
	}
	b, _ = fs.Read("/a")
	if len(b) != 11 || b[10] != 'x' || b[5] != 0 {
		t.Fatalf("sparse write wrong: %q", b)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	fs := New()
	must(t, fs.Create("/a"))
	must(t, fs.WriteAt("/a", 0, []byte("data")))
	must(t, fs.Create("/a"))
	if sz, _ := fs.Size("/a"); sz != 0 {
		t.Fatalf("creat should truncate, size=%d", sz)
	}
}

func TestMissingParent(t *testing.T) {
	fs := New()
	if err := fs.Create("/no/such/a"); err == nil {
		t.Fatal("creat without parent should fail")
	}
	if err := fs.Mkdir("/x/y"); err == nil {
		t.Fatal("mkdir without parent should fail")
	}
	must(t, fs.MkdirAll("/x/y/z"))
	if !fs.IsDir("/x/y/z") {
		t.Fatal("MkdirAll did not create the chain")
	}
}

func TestAppendAndTruncate(t *testing.T) {
	fs := New()
	must(t, fs.Create("/a"))
	must(t, fs.Append("/a", []byte("ab")))
	must(t, fs.Append("/a", []byte("cd")))
	b, _ := fs.Read("/a")
	if string(b) != "abcd" {
		t.Fatalf("append: %q", b)
	}
	must(t, fs.Truncate("/a", 2))
	b, _ = fs.Read("/a")
	if string(b) != "ab" {
		t.Fatalf("truncate shrink: %q", b)
	}
	must(t, fs.Truncate("/a", 4))
	b, _ = fs.Read("/a")
	if !bytes.Equal(b, []byte{'a', 'b', 0, 0}) {
		t.Fatalf("truncate grow: %q", b)
	}
}

func TestHardLinks(t *testing.T) {
	fs := New()
	must(t, fs.Create("/a"))
	must(t, fs.WriteAt("/a", 0, []byte("v1")))
	must(t, fs.Link("/a", "/b"))
	// Writing through one name is visible through the other.
	must(t, fs.WriteAt("/b", 0, []byte("v2")))
	b, _ := fs.Read("/a")
	if string(b) != "v2" {
		t.Fatalf("link aliasing broken: %q", b)
	}
	// Unlinking one name keeps the inode alive.
	must(t, fs.Unlink("/a"))
	if _, err := fs.Read("/b"); err != nil {
		t.Fatalf("inode freed too early: %v", err)
	}
	must(t, fs.Unlink("/b"))
	if fs.Exists("/b") {
		t.Fatal("unlink left the name")
	}
	// Linking to a missing source fails.
	if err := fs.Link("/nope", "/c"); err == nil {
		t.Fatal("link to missing source should fail")
	}
}

func TestRenameFileReplacesTarget(t *testing.T) {
	fs := New()
	must(t, fs.Create("/a"))
	must(t, fs.WriteAt("/a", 0, []byte("new")))
	must(t, fs.Create("/b"))
	must(t, fs.WriteAt("/b", 0, []byte("old")))
	must(t, fs.Rename("/a", "/b"))
	if fs.Exists("/a") {
		t.Fatal("source still present")
	}
	b, _ := fs.Read("/b")
	if string(b) != "new" {
		t.Fatalf("rename did not replace: %q", b)
	}
}

func TestRenameDirectoryMovesChildren(t *testing.T) {
	fs := New()
	must(t, fs.MkdirAll("/d/sub"))
	must(t, fs.Create("/d/sub/f"))
	must(t, fs.Rename("/d", "/e"))
	if !fs.Exists("/e/sub/f") || fs.Exists("/d") {
		t.Fatalf("dir rename incomplete: %v", fs.Walk())
	}
	// Renaming over a non-empty directory fails.
	must(t, fs.Mkdir("/d"))
	must(t, fs.Create("/e/x"))
	if err := fs.Rename("/d", "/e"); err == nil {
		t.Fatal("rename over non-empty dir should fail")
	}
}

func TestRmdir(t *testing.T) {
	fs := New()
	must(t, fs.Mkdir("/d"))
	must(t, fs.Create("/d/f"))
	if err := fs.Rmdir("/d"); err == nil {
		t.Fatal("rmdir of non-empty dir should fail")
	}
	must(t, fs.Unlink("/d/f"))
	must(t, fs.Rmdir("/d"))
	if fs.Exists("/d") {
		t.Fatal("rmdir left the directory")
	}
}

func TestXattrs(t *testing.T) {
	fs := New()
	must(t, fs.Create("/a"))
	must(t, fs.SetXattr("/a", "k1", []byte("v1")))
	must(t, fs.SetXattr("/a", "k2", []byte("v2")))
	v, ok := fs.GetXattr("/a", "k1")
	if !ok || string(v) != "v1" {
		t.Fatalf("GetXattr: %q %v", v, ok)
	}
	if names := fs.Xattrs("/a"); !reflect.DeepEqual(names, []string{"k1", "k2"}) {
		t.Fatalf("Xattrs = %v", names)
	}
	must(t, fs.RemoveXattr("/a", "k1"))
	if _, ok := fs.GetXattr("/a", "k1"); ok {
		t.Fatal("xattr not removed")
	}
}

func TestListAndWalk(t *testing.T) {
	fs := New()
	must(t, fs.Mkdir("/d"))
	must(t, fs.Create("/d/b"))
	must(t, fs.Create("/d/a"))
	must(t, fs.Mkdir("/d/c"))
	ls, err := fs.List("/d")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ls, []string{"/d/a", "/d/b", "/d/c"}) {
		t.Fatalf("List = %v", ls)
	}
	// List of a nested child does not leak grandchildren.
	must(t, fs.Create("/d/c/deep"))
	ls, _ = fs.List("/d")
	if len(ls) != 3 {
		t.Fatalf("List leaked grandchildren: %v", ls)
	}
}

func TestSnapshotRestoreIsolation(t *testing.T) {
	fs := New()
	must(t, fs.Create("/a"))
	must(t, fs.WriteAt("/a", 0, []byte("orig")))
	snap := fs.Snapshot()
	must(t, fs.WriteAt("/a", 0, []byte("mod!")))
	must(t, fs.Create("/b"))
	// The snapshot is isolated from later changes.
	b, _ := snap.Read("/a")
	if string(b) != "orig" {
		t.Fatalf("snapshot mutated: %q", b)
	}
	fs.Restore(snap)
	if fs.Exists("/b") {
		t.Fatal("restore kept /b")
	}
	b, _ = fs.Read("/a")
	if string(b) != "orig" {
		t.Fatalf("restore content: %q", b)
	}
	// Restoring does not tie fs to snap: further changes stay isolated.
	must(t, fs.WriteAt("/a", 0, []byte("agn!")))
	b, _ = snap.Read("/a")
	if string(b) != "orig" {
		t.Fatal("restore aliased the snapshot")
	}
}

func TestSerializeReflectsState(t *testing.T) {
	a, b := New(), New()
	must(t, a.Create("/f"))
	must(t, b.Create("/f"))
	if a.Hash() != b.Hash() {
		t.Fatal("identical states hash differently")
	}
	must(t, a.WriteAt("/f", 0, []byte("x")))
	if a.Hash() == b.Hash() {
		t.Fatal("different contents hash equal")
	}
	must(t, b.WriteAt("/f", 0, []byte("x")))
	must(t, a.SetXattr("/f", "k", []byte("v")))
	if a.Hash() == b.Hash() {
		t.Fatal("xattr difference not reflected in hash")
	}
}

// randomOps generates a plausible op sequence for property tests.
func randomOps(r *rand.Rand, n int) []Op {
	paths := []string{"/a", "/b", "/d/x", "/d/y"}
	var ops []Op
	ops = append(ops, Op{Kind: OpMkdir, Path: "/d"})
	for i := 0; i < n; i++ {
		p := paths[r.Intn(len(paths))]
		switch r.Intn(7) {
		case 0:
			ops = append(ops, Op{Kind: OpCreate, Path: p})
		case 1:
			ops = append(ops, Op{Kind: OpWrite, Path: p, Offset: int64(r.Intn(16)), Data: []byte{byte(r.Intn(256))}})
		case 2:
			ops = append(ops, Op{Kind: OpAppend, Path: p, Data: []byte("z")})
		case 3:
			ops = append(ops, Op{Kind: OpRename, Path: p, Path2: paths[r.Intn(len(paths))]})
		case 4:
			ops = append(ops, Op{Kind: OpUnlink, Path: p})
		case 5:
			ops = append(ops, Op{Kind: OpSetXattr, Path: p, Name: "k", Value: []byte{byte(r.Intn(256))}})
		case 6:
			ops = append(ops, Op{Kind: OpLink, Path: p, Path2: paths[r.Intn(len(paths))]})
		}
	}
	return ops
}

// TestQuickReplayDeterminism: applying the same op sequence to two fresh
// file systems yields identical canonical states — the property legal-state
// replay depends on.
func TestQuickReplayDeterminism(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ops := randomOps(r, int(n%48))
		a, b := New(), New()
		for _, op := range ops {
			_ = a.Apply(op)
		}
		for _, op := range ops {
			_ = b.Apply(op)
		}
		return a.Serialize() == b.Serialize()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSnapshotRoundTrip: snapshot + mutations + restore always returns
// to the canonical pre-mutation state.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		fs := New()
		for _, op := range randomOps(r, 16) {
			_ = fs.Apply(op)
		}
		before := fs.Serialize()
		snap := fs.Snapshot()
		for _, op := range randomOps(r, int(n%48)) {
			_ = fs.Apply(op)
		}
		fs.Restore(snap)
		return fs.Serialize() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickApplyNeverPanics: arbitrary op sequences only return errors.
func TestQuickApplyNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		fs := New()
		for _, op := range randomOps(r, 64) {
			_ = fs.Apply(op)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestJournalModeStrings(t *testing.T) {
	for m, want := range map[JournalMode]string{
		JournalData:      "data=journal",
		JournalOrdered:   "data=ordered",
		JournalWriteback: "data=writeback",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestOpKindMeta(t *testing.T) {
	if OpWrite.Meta() || OpAppend.Meta() {
		t.Error("data ops must not be metadata")
	}
	for _, k := range []OpKind{OpCreate, OpMkdir, OpRename, OpLink, OpUnlink, OpSetXattr, OpSync} {
		if !k.Meta() {
			t.Errorf("%v should be metadata", k)
		}
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestRenameIntoOwnSubtreeFails(t *testing.T) {
	fs := New()
	must(t, fs.MkdirAll("/d/sub"))
	if err := fs.Rename("/d", "/d/sub/x"); err == nil {
		t.Fatal("renaming a directory into its own subtree must fail")
	}
	// Self-rename is a no-op.
	must(t, fs.Rename("/d", "/d"))
	if !fs.IsDir("/d/sub") {
		t.Fatal("self-rename damaged the tree")
	}
}
