package vfs

import (
	"strings"
	"testing"
)

// TestSerializeDanglingNameMarker is the regression test for the silent-skip
// bug: a name whose inode is missing must not serialize identically to a
// state without the name, or representative classes merge distinct states.
func TestSerializeDanglingNameMarker(t *testing.T) {
	fs := New()
	if err := fs.Create("/a"); err != nil {
		t.Fatal(err)
	}
	healthy := fs.Serialize()
	healthyHash := fs.Hash()

	// Corrupt the state below the public API: keep the name, drop the inode.
	ino, _ := fs.names.Get("/a")
	fs.inodes = fs.inodes.Delete(ino)

	corrupt := fs.Serialize()
	if corrupt == healthy {
		t.Fatal("corrupt state serializes identically to healthy state")
	}
	if !strings.Contains(corrupt, "! /a DANGLING-NAME") {
		t.Fatalf("missing corruption marker in:\n%s", corrupt)
	}
	if fs.Hash() == healthyHash {
		t.Fatal("corrupt state hashes identically to healthy state")
	}

	// And it must differ from the state where the name never existed.
	empty := New()
	if corrupt == empty.Serialize() {
		t.Fatal("corrupt state serializes identically to name-free state")
	}
}

// TestRestoreAliasing proves Restore is a safe O(1) adoption: writes after
// a restore must never leak into the source snapshot or into sibling file
// systems restored from the same snapshot.
func TestRestoreAliasing(t *testing.T) {
	fs := New()
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("/f", 0, []byte("original")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetXattr("/f", "user.tag", []byte("one")); err != nil {
		t.Fatal(err)
	}
	snap := fs.Snapshot()
	want := snap.Serialize()

	// Two siblings adopt the same snapshot.
	a, b := New(), New()
	a.Restore(snap)
	b.Restore(snap)

	// Mutate a through every in-place path: data write, append, truncate,
	// xattr set/remove, create-truncate, link, unlink.
	if err := a.WriteAt("/f", 0, []byte("CLOBBER!")); err != nil {
		t.Fatal(err)
	}
	if err := a.Append("/f", []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := a.SetXattr("/f", "user.tag", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := a.Create("/g"); err != nil {
		t.Fatal(err)
	}
	if err := a.Link("/f", "/hard"); err != nil {
		t.Fatal(err)
	}
	if err := a.Truncate("/f", 2); err != nil {
		t.Fatal(err)
	}
	if err := a.RemoveXattr("/f", "user.tag"); err != nil {
		t.Fatal(err)
	}
	if got := snap.Serialize(); got != want {
		t.Fatalf("snapshot mutated through restored FS:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if got := b.Serialize(); got != want {
		t.Fatalf("sibling mutated through restored FS:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if data, err := b.Read("/f"); err != nil || string(data) != "original" {
		t.Fatalf("sibling content changed: %q, %v", data, err)
	}

	// The mutated side must see its own writes.
	if data, _ := a.Read("/f"); string(data) != "CL" {
		t.Fatalf("mutated side lost its writes: %q", data)
	}
}

// TestSnapshotChainAliasing walks a chain of snapshot → mutate → snapshot
// and verifies every captured generation stays frozen.
func TestSnapshotChainAliasing(t *testing.T) {
	fs := New()
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	var snaps []*FS
	var wants []string
	for gen := 0; gen < 8; gen++ {
		if err := fs.Append("/f", []byte{byte('a' + gen)}); err != nil {
			t.Fatal(err)
		}
		s := fs.Snapshot()
		snaps = append(snaps, s)
		wants = append(wants, s.Serialize())
	}
	// Mutate live heavily, then restore an old generation and mutate again.
	for i := 0; i < 20; i++ {
		if err := fs.WriteAt("/f", int64(i), []byte("zz")); err != nil {
			t.Fatal(err)
		}
	}
	fs.Restore(snaps[2])
	if err := fs.Append("/f", []byte("XX")); err != nil {
		t.Fatal(err)
	}
	for i, s := range snaps {
		if got := s.Serialize(); got != wants[i] {
			t.Fatalf("generation %d mutated:\nwant:\n%s\ngot:\n%s", i, wants[i], got)
		}
	}
}

// TestSnapshotAllocsO1 is the CI guard that Snapshot stays O(1): it must
// not scale with file count or file size. One allocation for the FS header
// is expected; a small constant headroom keeps the guard robust.
func TestSnapshotAllocsO1(t *testing.T) {
	fs := New()
	for i := 0; i < 500; i++ {
		p := "/f" + string(rune('a'+i%26)) + "/" + itoa(i)
		if err := fs.MkdirAll(parent(p)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteAt(p, 0, make([]byte, 256)); err != nil {
			t.Fatal(err)
		}
	}
	var sink *FS
	allocs := testing.AllocsPerRun(100, func() {
		sink = fs.Snapshot()
	})
	_ = sink
	if allocs > 2 {
		t.Fatalf("Snapshot allocates %.1f objects on a 500-file FS; want O(1)", allocs)
	}
	snap := fs.Snapshot()
	allocs = testing.AllocsPerRun(100, func() {
		fs.Restore(snap)
	})
	if allocs > 1 {
		t.Fatalf("Restore allocates %.1f objects; want O(1)", allocs)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
