// Package vfs implements an in-memory POSIX-like local file system used as
// the storage substrate of every user-level PFS server in the simulated
// stack (the paper's ext4 on each storage/metadata node).
//
// The file system supports the operation vocabulary that the traced PFS
// servers need — create, mkdir, pwrite, append, truncate, rename, link,
// unlink, rmdir, xattrs, fsync — plus the three capabilities crash
// emulation requires:
//
//   - replayable operations (Op / Apply) so crash states can be
//     reconstructed by applying op subsets to a snapshot;
//   - O(1) snapshots (Snapshot / Restore): the name and inode tables are
//     persistent, structurally-shared maps (package persist), so a snapshot
//     is a pointer copy and mutation copies only the changed path —
//     copy-on-write at inode granularity via an epoch ownership token;
//   - canonical state serialisation and hashing (Serialize / Hash) so
//     recovered states can be compared against golden states.
//
// Snapshot contract: an *FS returned by Snapshot must never be mutated.
// Restoring from it, reading it, and sharing it across goroutines are all
// safe; calling a mutating method on it would silently alias live state.
//
// Persistence semantics (which op must persist before which, under data /
// ordered / writeback journaling) are NOT implemented here; they are a
// relation over traced ops computed by package causality, exactly as in the
// paper's Algorithm 2.
package vfs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"paracrash/internal/persist"
)

// JournalMode selects the journaling mode of a local file system, which
// determines its persist-before relation (Algorithm 2 in the paper).
type JournalMode int

const (
	// JournalData is ext4 data journaling: all operations persist in their
	// execution (happens-before) order.
	JournalData JournalMode = iota
	// JournalOrdered is ext4 ordered mode: metadata operations persist in
	// order, and data persists before the metadata that follows it.
	JournalOrdered
	// JournalWriteback is ext4 writeback mode: only metadata operations are
	// mutually ordered; data may persist arbitrarily late.
	JournalWriteback
)

// String returns the mount-option name of the mode.
func (m JournalMode) String() string {
	switch m {
	case JournalData:
		return "data=journal"
	case JournalOrdered:
		return "data=ordered"
	case JournalWriteback:
		return "data=writeback"
	default:
		return fmt.Sprintf("journal(%d)", int(m))
	}
}

// OpKind enumerates replayable local file system operations.
type OpKind int

const (
	// OpCreate creates a regular file (like creat(2): truncates if exists).
	OpCreate OpKind = iota
	// OpMkdir creates a directory.
	OpMkdir
	// OpWrite writes Data at Offset (pwrite semantics, extends the file).
	OpWrite
	// OpAppend appends Data to the end of the file.
	OpAppend
	// OpTruncate sets the file size to Size.
	OpTruncate
	// OpRename renames Path to Path2 (replacing Path2 if it exists).
	OpRename
	// OpLink creates a hard link Path2 referring to Path's inode.
	OpLink
	// OpUnlink removes the name Path (file data freed at nlink==0).
	OpUnlink
	// OpRmdir removes the empty directory Path.
	OpRmdir
	// OpSetXattr sets extended attribute Name=Value on Path.
	OpSetXattr
	// OpRemoveXattr removes extended attribute Name from Path.
	OpRemoveXattr
	// OpSync is fsync/fdatasync: no state change, only a persistence point.
	OpSync
)

// String returns the syscall-like name of the op kind.
func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "creat"
	case OpMkdir:
		return "mkdir"
	case OpWrite:
		return "pwrite"
	case OpAppend:
		return "append"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpLink:
		return "link"
	case OpUnlink:
		return "unlink"
	case OpRmdir:
		return "rmdir"
	case OpSetXattr:
		return "setxattr"
	case OpRemoveXattr:
		return "removexattr"
	case OpSync:
		return "fsync"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Meta reports whether the op kind is a metadata operation for the purposes
// of journaling-mode persistence ordering.
func (k OpKind) Meta() bool {
	switch k {
	case OpWrite, OpAppend:
		return false
	default:
		return true
	}
}

// Op is a single replayable local file system operation.
type Op struct {
	Kind   OpKind
	Path   string
	Path2  string // rename destination / link new name
	Offset int64
	Size   int64
	Data   []byte
	Name   string // xattr name
	Value  []byte // xattr value
}

// String renders the op in strace-like form.
func (o Op) String() string {
	switch o.Kind {
	case OpWrite:
		return fmt.Sprintf("pwrite(%s, off=%d, len=%d)", o.Path, o.Offset, len(o.Data))
	case OpAppend:
		return fmt.Sprintf("append(%s, len=%d)", o.Path, len(o.Data))
	case OpTruncate:
		return fmt.Sprintf("truncate(%s, %d)", o.Path, o.Size)
	case OpRename:
		return fmt.Sprintf("rename(%s, %s)", o.Path, o.Path2)
	case OpLink:
		return fmt.Sprintf("link(%s, %s)", o.Path, o.Path2)
	case OpSetXattr:
		return fmt.Sprintf("setxattr(%s, %s)", o.Path, o.Name)
	case OpRemoveXattr:
		return fmt.Sprintf("removexattr(%s, %s)", o.Path, o.Name)
	default:
		return fmt.Sprintf("%s(%s)", o.Kind, o.Path)
	}
}

// epochCounter mints globally unique ownership tokens. Every FS value —
// live or snapshot — carries the epoch current when it last diverged from
// any other holder of the same trie roots; an inode is exclusively owned
// (safe to mutate in place) iff its epoch equals the owner's.
var epochCounter atomic.Uint64

func nextEpoch() uint64 { return epochCounter.Add(1) }

type inode struct {
	ino   int
	dir   bool
	data  []byte
	xattr map[string][]byte
	nlink int
	// epoch is the copy-on-write ownership token: the FS epoch under which
	// this inode was created or last cloned. After any Snapshot/Restore both
	// sharers hold fresh epochs, so a shared inode's epoch never matches
	// either side and the first write clones it.
	epoch uint64
}

func (in *inode) clone() *inode {
	c := &inode{ino: in.ino, dir: in.dir, nlink: in.nlink}
	c.data = append([]byte(nil), in.data...)
	if in.xattr != nil {
		c.xattr = make(map[string][]byte, len(in.xattr))
		for k, v := range in.xattr {
			c.xattr[k] = append([]byte(nil), v...)
		}
	}
	return c
}

// FS is an in-memory file system. The zero value is not usable; call New.
type FS struct {
	inodes  persist.Map[int, *inode]
	names   persist.Map[string, int] // canonical path -> ino
	nextIno int
	epoch   uint64
}

// New returns an empty file system containing only the root directory "/".
func New() *FS {
	fs := &FS{
		inodes: persist.NewMap[int, *inode](persist.IntHash),
		names:  persist.NewMap[string, int](persist.StringHash),
		epoch:  nextEpoch(),
	}
	root := &inode{ino: 0, dir: true, nlink: 1, epoch: fs.epoch}
	fs.inodes = fs.inodes.Set(0, root)
	fs.names = fs.names.Set("/", 0)
	fs.nextIno = 1
	return fs
}

// Clean canonicalises a path: ensures a single leading slash, no trailing
// slash (except root), collapses duplicate slashes.
func Clean(p string) string {
	if p == "" || p == "/" {
		return "/"
	}
	if isClean(p) {
		return p
	}
	parts := strings.Split(p, "/")
	out := make([]string, 0, len(parts))
	for _, s := range parts {
		if s != "" && s != "." {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return "/"
	}
	return "/" + strings.Join(out, "/")
}

// isClean reports whether p is already in canonical form — absolute, no
// empty or "." segments, no trailing slash — so Clean can return it without
// allocating. Nearly every path the servers resolve is already canonical,
// and lookup cleans on every call, so this fast path is hot.
func isClean(p string) bool {
	if p[0] != '/' || p[len(p)-1] == '/' {
		return false
	}
	for i := 0; i < len(p); i++ {
		if p[i] != '/' {
			continue
		}
		if p[i+1] == '/' {
			return false
		}
		if p[i+1] == '.' && (i+2 == len(p) || p[i+2] == '/') {
			return false
		}
	}
	return true
}

func parent(p string) string {
	p = Clean(p)
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

func (fs *FS) lookup(p string) (*inode, bool) {
	ino, ok := fs.names.Get(Clean(p))
	if !ok {
		return nil, false
	}
	in, ok := fs.inodes.Get(ino)
	return in, ok
}

// mutable returns the inode at p ready for in-place mutation: if the inode
// is shared with a snapshot (its epoch predates ours) it is cloned into the
// current epoch first and the clone installed in the inode table. This is
// the single copy-on-write gate every mutating method goes through.
func (fs *FS) mutable(p string) (*inode, bool) {
	in, ok := fs.lookup(p)
	if !ok {
		return nil, false
	}
	return fs.own(in), true
}

// own claims in for the current epoch, cloning if shared.
func (fs *FS) own(in *inode) *inode {
	if in.epoch == fs.epoch {
		return in
	}
	c := in.clone()
	c.epoch = fs.epoch
	fs.inodes = fs.inodes.Set(c.ino, c)
	return c
}

// Exists reports whether path exists (file or directory).
func (fs *FS) Exists(p string) bool {
	_, ok := fs.names.Get(Clean(p))
	return ok
}

// IsDir reports whether path exists and is a directory.
func (fs *FS) IsDir(p string) bool {
	in, ok := fs.lookup(p)
	return ok && in.dir
}

// checkParent verifies the parent directory of p exists.
func (fs *FS) checkParent(p string) error {
	par := parent(p)
	in, ok := fs.lookup(par)
	if !ok {
		return fmt.Errorf("vfs: parent %q of %q does not exist", par, p)
	}
	if !in.dir {
		return fmt.Errorf("vfs: parent %q of %q is not a directory", par, p)
	}
	return nil
}

// Create creates (or truncates) a regular file at p.
func (fs *FS) Create(p string) error {
	p = Clean(p)
	if err := fs.checkParent(p); err != nil {
		return err
	}
	if in, ok := fs.lookup(p); ok {
		if in.dir {
			return fmt.Errorf("vfs: creat %q: is a directory", p)
		}
		fs.own(in).data = nil
		return nil
	}
	in := &inode{ino: fs.nextIno, nlink: 1, xattr: nil, epoch: fs.epoch}
	fs.nextIno++
	fs.inodes = fs.inodes.Set(in.ino, in)
	fs.names = fs.names.Set(p, in.ino)
	return nil
}

// Mkdir creates a directory at p.
func (fs *FS) Mkdir(p string) error {
	p = Clean(p)
	if fs.Exists(p) {
		return fmt.Errorf("vfs: mkdir %q: exists", p)
	}
	if err := fs.checkParent(p); err != nil {
		return err
	}
	in := &inode{ino: fs.nextIno, dir: true, nlink: 1, epoch: fs.epoch}
	fs.nextIno++
	fs.inodes = fs.inodes.Set(in.ino, in)
	fs.names = fs.names.Set(p, in.ino)
	return nil
}

// MkdirAll creates p and any missing ancestors.
func (fs *FS) MkdirAll(p string) error {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	if err := fs.MkdirAll(parent(p)); err != nil {
		return err
	}
	if fs.IsDir(p) {
		return nil
	}
	return fs.Mkdir(p)
}

// WriteAt writes data at offset off in file p, extending it as needed
// (zero-filling any gap, like pwrite past EOF).
func (fs *FS) WriteAt(p string, off int64, data []byte) error {
	in, ok := fs.mutable(p)
	if !ok {
		return fmt.Errorf("vfs: pwrite %q: no such file", p)
	}
	if in.dir {
		return fmt.Errorf("vfs: pwrite %q: is a directory", p)
	}
	end := off + int64(len(data))
	if int64(len(in.data)) < end {
		grown := make([]byte, end)
		copy(grown, in.data)
		in.data = grown
	}
	copy(in.data[off:end], data)
	return nil
}

// Append appends data to file p.
func (fs *FS) Append(p string, data []byte) error {
	in, ok := fs.mutable(p)
	if !ok {
		return fmt.Errorf("vfs: append %q: no such file", p)
	}
	if in.dir {
		return fmt.Errorf("vfs: append %q: is a directory", p)
	}
	in.data = append(in.data, data...)
	return nil
}

// Truncate sets the size of file p to size (zero-filling when growing).
func (fs *FS) Truncate(p string, size int64) error {
	in, ok := fs.mutable(p)
	if !ok {
		return fmt.Errorf("vfs: truncate %q: no such file", p)
	}
	if in.dir {
		return fmt.Errorf("vfs: truncate %q: is a directory", p)
	}
	if int64(len(in.data)) >= size {
		in.data = in.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, in.data)
		in.data = grown
	}
	return nil
}

// Read returns a copy of the contents of file p.
func (fs *FS) Read(p string) ([]byte, error) {
	in, ok := fs.lookup(p)
	if !ok {
		return nil, fmt.Errorf("vfs: read %q: no such file", p)
	}
	if in.dir {
		return nil, fmt.Errorf("vfs: read %q: is a directory", p)
	}
	return append([]byte(nil), in.data...), nil
}

// Size returns the size of file p.
func (fs *FS) Size(p string) (int64, error) {
	in, ok := fs.lookup(p)
	if !ok {
		return 0, fmt.Errorf("vfs: stat %q: no such file", p)
	}
	return int64(len(in.data)), nil
}

// Rename moves Path to Path2. If the source is a directory, all descendant
// names move with it. An existing destination file is replaced (POSIX
// rename semantics); replacing a non-empty directory fails.
func (fs *FS) Rename(from, to string) error {
	from, to = Clean(from), Clean(to)
	src, ok := fs.lookup(from)
	if !ok {
		return fmt.Errorf("vfs: rename %q: no such file", from)
	}
	if from == to {
		return nil
	}
	if src.dir && strings.HasPrefix(to+"/", from+"/") {
		return fmt.Errorf("vfs: rename %q into its own subtree %q", from, to)
	}
	if err := fs.checkParent(to); err != nil {
		return err
	}
	if dst, ok := fs.lookup(to); ok {
		if dst.dir {
			if len(fs.children(to)) > 0 {
				return fmt.Errorf("vfs: rename to %q: directory not empty", to)
			}
			fs.dropName(to)
		} else {
			fs.dropName(to)
		}
	}
	if src.dir {
		// Move every descendant path.
		prefix := from + "/"
		moves := map[string]string{}
		fs.names.Range(func(name string, _ int) bool {
			if strings.HasPrefix(name, prefix) {
				moves[name] = to + "/" + name[len(prefix):]
			}
			return true
		})
		for oldName, newName := range moves {
			ino, _ := fs.names.Get(oldName)
			fs.names = fs.names.Set(newName, ino)
			fs.names = fs.names.Delete(oldName)
		}
	}
	ino, _ := fs.names.Get(from)
	fs.names = fs.names.Set(to, ino)
	fs.names = fs.names.Delete(from)
	return nil
}

// Link creates hard link newname referring to oldname's inode.
func (fs *FS) Link(oldname, newname string) error {
	oldname, newname = Clean(oldname), Clean(newname)
	in, ok := fs.lookup(oldname)
	if !ok {
		return fmt.Errorf("vfs: link %q: no such file", oldname)
	}
	if in.dir {
		return fmt.Errorf("vfs: link %q: is a directory", oldname)
	}
	if fs.Exists(newname) {
		return fmt.Errorf("vfs: link %q: exists", newname)
	}
	if err := fs.checkParent(newname); err != nil {
		return err
	}
	fs.names = fs.names.Set(newname, in.ino)
	fs.own(in).nlink++
	return nil
}

// dropName removes a name and decrements the inode link count, freeing the
// inode when unreferenced.
func (fs *FS) dropName(p string) {
	p = Clean(p)
	ino, ok := fs.names.Get(p)
	if !ok {
		return
	}
	fs.names = fs.names.Delete(p)
	in, ok := fs.inodes.Get(ino)
	if !ok {
		return
	}
	if in.nlink <= 1 {
		fs.inodes = fs.inodes.Delete(ino)
		return
	}
	fs.own(in).nlink--
}

// Unlink removes the name p (a regular file).
func (fs *FS) Unlink(p string) error {
	in, ok := fs.lookup(p)
	if !ok {
		return fmt.Errorf("vfs: unlink %q: no such file", p)
	}
	if in.dir {
		return fmt.Errorf("vfs: unlink %q: is a directory", p)
	}
	fs.dropName(p)
	return nil
}

// Rmdir removes the empty directory p.
func (fs *FS) Rmdir(p string) error {
	in, ok := fs.lookup(p)
	if !ok {
		return fmt.Errorf("vfs: rmdir %q: no such directory", p)
	}
	if !in.dir {
		return fmt.Errorf("vfs: rmdir %q: not a directory", p)
	}
	if len(fs.children(p)) > 0 {
		return fmt.Errorf("vfs: rmdir %q: not empty", p)
	}
	fs.dropName(p)
	return nil
}

// SetXattr sets extended attribute name=value on p.
func (fs *FS) SetXattr(p, name string, value []byte) error {
	in, ok := fs.mutable(p)
	if !ok {
		return fmt.Errorf("vfs: setxattr %q: no such file", p)
	}
	if in.xattr == nil {
		in.xattr = make(map[string][]byte)
	}
	in.xattr[name] = append([]byte(nil), value...)
	return nil
}

// RemoveXattr removes extended attribute name from p.
func (fs *FS) RemoveXattr(p, name string) error {
	in, ok := fs.lookup(p)
	if !ok {
		return fmt.Errorf("vfs: removexattr %q: no such file", p)
	}
	if _, present := in.xattr[name]; !present {
		return nil
	}
	delete(fs.own(in).xattr, name)
	return nil
}

// GetXattr returns the value of extended attribute name on p.
func (fs *FS) GetXattr(p, name string) ([]byte, bool) {
	in, ok := fs.lookup(p)
	if !ok || in.xattr == nil {
		return nil, false
	}
	v, ok := in.xattr[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Xattrs returns the sorted xattr names of p.
func (fs *FS) Xattrs(p string) []string {
	in, ok := fs.lookup(p)
	if !ok {
		return nil
	}
	names := make([]string, 0, len(in.xattr))
	for k := range in.xattr {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// children returns the direct child paths of directory p, sorted.
func (fs *FS) children(p string) []string {
	p = Clean(p)
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	var out []string
	fs.names.Range(func(name string, _ int) bool {
		if name == "/" || !strings.HasPrefix(name, prefix) {
			return true
		}
		rest := name[len(prefix):]
		if rest == "" || strings.ContainsRune(rest, '/') {
			return true
		}
		out = append(out, name)
		return true
	})
	sort.Strings(out)
	return out
}

// List returns the direct children of directory p, sorted by name.
func (fs *FS) List(p string) ([]string, error) {
	in, ok := fs.lookup(p)
	if !ok {
		return nil, fmt.Errorf("vfs: list %q: no such directory", p)
	}
	if !in.dir {
		return nil, fmt.Errorf("vfs: list %q: not a directory", p)
	}
	return fs.children(p), nil
}

// Walk returns every path in the file system, sorted.
func (fs *FS) Walk() []string {
	out := make([]string, 0, fs.names.Len())
	fs.names.Range(func(name string, _ int) bool {
		out = append(out, name)
		return true
	})
	sort.Strings(out)
	return out
}

// Apply replays op onto the file system. Errors indicate the op could not
// be applied (e.g. its target was never persisted); the crash emulator
// treats such ops as silently lost, exactly as data written to a
// never-persisted inode is unreachable after a real crash.
func (fs *FS) Apply(op Op) error {
	switch op.Kind {
	case OpCreate:
		return fs.Create(op.Path)
	case OpMkdir:
		return fs.Mkdir(op.Path)
	case OpWrite:
		return fs.WriteAt(op.Path, op.Offset, op.Data)
	case OpAppend:
		return fs.Append(op.Path, op.Data)
	case OpTruncate:
		return fs.Truncate(op.Path, op.Size)
	case OpRename:
		return fs.Rename(op.Path, op.Path2)
	case OpLink:
		return fs.Link(op.Path, op.Path2)
	case OpUnlink:
		return fs.Unlink(op.Path)
	case OpRmdir:
		return fs.Rmdir(op.Path)
	case OpSetXattr:
		return fs.SetXattr(op.Path, op.Name, op.Value)
	case OpRemoveXattr:
		return fs.RemoveXattr(op.Path, op.Name)
	case OpSync:
		return nil // persistence point only
	default:
		return fmt.Errorf("vfs: apply: unknown op kind %d", op.Kind)
	}
}

// Snapshot returns an immutable O(1) snapshot: the persistent name and
// inode tables are shared by pointer, and both the live FS and the snapshot
// receive fresh epochs so any inode reachable from both is cloned before
// its first post-snapshot mutation. The returned FS must not be mutated
// (see the package comment's snapshot contract).
func (fs *FS) Snapshot() *FS {
	snap := &FS{inodes: fs.inodes, names: fs.names, nextIno: fs.nextIno, epoch: nextEpoch()}
	fs.epoch = nextEpoch()
	return snap
}

// Restore adopts snap's state in O(1): the trie roots are shared and fs
// gets a fresh epoch, so subsequent writes copy rather than alias. snap is
// only read and may be restored into any number of file systems, including
// concurrently.
func (fs *FS) Restore(snap *FS) {
	fs.inodes = snap.inodes
	fs.names = snap.names
	fs.nextIno = snap.nextIno
	fs.epoch = nextEpoch()
}

// Serialize renders the complete logical state in a canonical, hashable
// text form: one line per path with type, content hash (files), and sorted
// xattrs. Hard links serialise as their target content, so two states are
// equal iff every name resolves to identical bytes and attributes.
//
// A name whose inode is missing from the inode table (a corrupted state,
// impossible through the public API) serialises as an explicit corruption
// marker line rather than being skipped: silently omitting it would let two
// genuinely different states — one healthy, one corrupt — share a Serialize
// string and therefore a Hash/StateDigest, poisoning representative
// equivalence classes with a false merge.
func (fs *FS) Serialize() string {
	var b strings.Builder
	for _, name := range fs.Walk() {
		in, _ := fs.lookup(name)
		if in == nil {
			fmt.Fprintf(&b, "! %s DANGLING-NAME\n", name)
			continue
		}
		if in.dir {
			fmt.Fprintf(&b, "d %s", name)
		} else {
			sum := sha256.Sum256(in.data)
			fmt.Fprintf(&b, "f %s %d %s", name, len(in.data), hex.EncodeToString(sum[:8]))
		}
		for _, xk := range fs.Xattrs(name) {
			v, _ := fs.GetXattr(name, xk)
			sum := sha256.Sum256(v)
			fmt.Fprintf(&b, " x:%s=%s", xk, hex.EncodeToString(sum[:6]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Hash returns a short hex digest of the canonical state.
func (fs *FS) Hash() string {
	sum := sha256.Sum256([]byte(fs.Serialize()))
	return hex.EncodeToString(sum[:12])
}
