package hdf5

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildImage creates the paper's initial file: /g1/d1 and /g2/d2 with data.
func buildImage(t *testing.T) []byte {
	t.Helper()
	be := &MemBackend{}
	f, err := Format(be)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.CreateGroup("/g1"))
	must(f.CreateGroup("/g2"))
	must(f.CreateDataset("/g1/d1", 4, 4))
	must(f.CreateDataset("/g2/d2", 4, 4))
	must(f.WriteDataset("/g1/d1", []byte("0123456789abcdef")))
	must(f.Close())
	return be.Buf
}

// zeroExtent wipes the first matching object extent.
func zeroExtent(t *testing.T, img []byte, kind, path string) []byte {
	t.Helper()
	m, err := Inspect(img)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), img...)
	for _, e := range m {
		if e.Kind == kind && e.Path == path {
			for i := 0; i < e.Size; i++ {
				out[e.Addr+int64(i)] = 0
			}
			return out
		}
	}
	t.Fatalf("no %s extent for %s", kind, path)
	return nil
}

func TestZeroedSnodCorruptsGroup(t *testing.T) {
	img := zeroExtent(t, buildImage(t), "snod", "/g1")
	st := Parse(img, false)
	var g1 *LogicalObject
	for i := range st.Objects {
		if st.Objects[i].Path == "/g1" {
			g1 = &st.Objects[i]
		}
	}
	if g1 == nil || g1.Corrupt == "" {
		t.Fatalf("zeroed SNOD should corrupt /g1: %s", st.Serialize())
	}
	if !strings.Contains(g1.Corrupt, "signature") {
		t.Fatalf("expected a signature error, got %q", g1.Corrupt)
	}
	// The sibling group survives (lazy open).
	if !strings.Contains(st.Serialize(), "dataset /g2/d2") {
		t.Fatalf("/g2 should stay readable: %s", st.Serialize())
	}
}

func TestZeroedHeapBreaksNames(t *testing.T) {
	img := zeroExtent(t, buildImage(t), "heap", "/g1")
	st := Parse(img, false)
	if !strings.Contains(st.Serialize(), "corrupt /g1") {
		t.Fatalf("zeroed heap should corrupt the group: %s", st.Serialize())
	}
}

func TestZeroedOhdrBreaksOneDataset(t *testing.T) {
	img := zeroExtent(t, buildImage(t), "ohdr", "/g1/d1")
	st := Parse(img, false)
	s := st.Serialize()
	if !strings.Contains(s, "corrupt /g1/d1") || !strings.Contains(s, "dataset /g2/d2") {
		t.Fatalf("only /g1/d1 should break: %s", s)
	}
}

func TestZeroedSuperblockUnopenable(t *testing.T) {
	img := buildImage(t)
	for i := 0; i < SuperSize; i++ {
		img[i] = 0
	}
	st := Parse(img, false)
	if st.FileError == "" {
		t.Fatal("zeroed superblock must make the file unopenable")
	}
}

func TestTruncatedFileAddrOverflow(t *testing.T) {
	// Chopping the file below the EOF makes high objects read as zeros:
	// their parse errors must mention the failure, not panic.
	img := buildImage(t)
	st := Parse(img[:len(img)/2], false)
	bad := 0
	for _, o := range st.Objects {
		if o.Corrupt != "" {
			bad++
		}
	}
	if st.FileError == "" && bad == 0 {
		t.Fatalf("truncated file parsed clean:\n%s", st.Serialize())
	}
}

func TestClearIncreaseEOF(t *testing.T) {
	// A stale superblock EOF (as when the resize's superblock write was
	// lost) hides the tail; h5clear --increase-eof repairs the window.
	be := &MemBackend{}
	f, err := Format(be)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CreateDataset("/d", 4, 4); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	img := append([]byte(nil), be.Buf...)
	// Regress the superblock to a tiny EOF.
	var sup superBlock
	if err := decodeObject(img, 0, SigSuper, SuperSize, &sup); err != nil {
		t.Fatal(err)
	}
	short := sup
	short.EOF = SuperSize + OhdrSize // hides everything past the root ohdr
	copy(img, encodeObject(SigSuper, short, SuperSize))
	st := Parse(img, false)
	if st.Readable() {
		t.Fatal("stale EOF should break parsing")
	}
	fixed, changed := Clear(img, true)
	if !changed {
		t.Fatal("Clear(increaseEOF) should change the image")
	}
	if st := Parse(fixed, false); !st.Readable() {
		t.Fatalf("increase-eof did not repair: %s", st.Serialize())
	}
}

// TestQuickLibraryRoundTrip: random op sequences through the library parse
// back to a state containing exactly the surviving datasets.
func TestQuickLibraryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		be := &MemBackend{}
		file, err := Format(be)
		if err != nil {
			return false
		}
		if file.CreateGroup("/g") != nil {
			return false
		}
		live := map[string]bool{}
		names := []string{"/g/a", "/g/b", "/g/c"}
		for i := 0; i < 12; i++ {
			p := names[r.Intn(len(names))]
			switch r.Intn(4) {
			case 0:
				if file.CreateDataset(p, 4, 4) == nil {
					live[p] = true
				}
			case 1:
				if file.Delete(p) == nil {
					delete(live, p)
				}
			case 2:
				data := make([]byte, 16)
				r.Read(data)
				_ = file.WriteDataset(p, data)
			case 3:
				q := names[r.Intn(len(names))]
				if file.Move(p, q) == nil {
					delete(live, p)
					live[q] = true
				}
			}
		}
		if file.Close() != nil {
			return false
		}
		st := Parse(be.Buf, false)
		if !st.Readable() {
			return false
		}
		parsed := map[string]bool{}
		for _, o := range st.Objects {
			if !o.Group {
				parsed[o.Path] = true
			}
		}
		if len(parsed) != len(live) {
			return false
		}
		for p := range live {
			if !parsed[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParseNeverPanics: parsing arbitrary mutations of a valid image
// returns errors, never panics.
func TestQuickParseNeverPanics(t *testing.T) {
	base := buildImage(t)
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		img := append([]byte(nil), base...)
		for i := 0; i < 24; i++ {
			img[r.Intn(len(img))] = byte(r.Intn(256))
		}
		_ = Parse(img, false)
		_ = Parse(img, true)
		_, _ = Inspect(img)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
