package hdf5

import (
	"testing"
)

// FuzzParse hammers the h5check parser with mutated file images: parsing
// must never panic and must classify every image as either cleanly
// readable or corrupt with a reason — the property the golden-master
// comparison relies on when crash states tear metadata.
func FuzzParse(f *testing.F) {
	be := &MemBackend{}
	file, err := Format(be)
	if err != nil {
		f.Fatal(err)
	}
	if err := file.CreateGroup("/g1"); err != nil {
		f.Fatal(err)
	}
	if err := file.CreateDataset("/g1/d1", 4, 4); err != nil {
		f.Fatal(err)
	}
	if err := file.WriteDataset("/g1/d1", []byte("0123456789abcdef")); err != nil {
		f.Fatal(err)
	}
	if err := file.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(be.Buf)
	f.Add(be.Buf[:len(be.Buf)/2])
	f.Add([]byte{})
	f.Add([]byte("\x89HDFgarbage"))

	f.Fuzz(func(t *testing.T, img []byte) {
		st := Parse(img, false)
		// Serialisation must be total and stable.
		s1, s2 := st.Serialize(), st.Serialize()
		if s1 != s2 {
			t.Fatal("Serialize is not deterministic")
		}
		// Strict mode must be at least as corrupt as lazy mode.
		strict := Parse(img, true)
		if strict.Readable() && !st.Readable() {
			t.Fatal("strict parse readable where lazy parse is corrupt")
		}
		// The tools must be total too.
		_, _ = Clear(img, true)
		_, _ = Inspect(img)
		_, _ = Status(img)
	})
}
