package hdf5

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Status returns the superblock status flag of a file image (non-zero
// means the file was open for write — what h5clear clears).
func Status(img []byte) (int, error) {
	var sup superBlock
	if err := decodeObject(img, 0, SigSuper, SuperSize, &sup); err != nil {
		return 0, err
	}
	return sup.Status, nil
}

// Clear implements h5clear: it clears the superblock status flags, and
// with increaseEOF (h5clear --increase-eof-of-superblock) raises the
// superblock EOF to the actual file size, which can make addresses written
// beyond a stale EOF readable again (the paper's bug #13 sensitivity on
// "h5clear options"). It returns the repaired image and whether anything
// changed; an unreadable superblock cannot be repaired.
func Clear(img []byte, increaseEOF bool) ([]byte, bool) {
	var sup superBlock
	if err := decodeObject(img, 0, SigSuper, SuperSize, &sup); err != nil {
		return img, false
	}
	changed := false
	if sup.Status != 0 {
		sup.Status = 0
		changed = true
	}
	if increaseEOF && sup.EOF < int64(len(img)) {
		sup.EOF = int64(len(img))
		changed = true
	}
	if !changed {
		return img, false
	}
	out := append([]byte(nil), img...)
	copy(out, encodeObject(SigSuper, sup, SuperSize))
	return out, true
}

// ObjectExtent maps a byte range of the file to the library data structure
// stored there — the h5inspect output used for trace correlation
// (Figure 4) and semantic state pruning (§5.3).
type ObjectExtent struct {
	Addr int64  `json:"addr"`
	Size int    `json:"size"`
	Kind string `json:"kind"` // superblock, ohdr, btree, heap, snod, chunk
	Path string `json:"path"` // owning object path
}

// Inspect walks a file image and returns its object map, sorted by
// address. Unreadable subtrees are skipped (their extents are unknown).
func Inspect(img []byte) ([]ObjectExtent, error) {
	var sup superBlock
	if err := decodeObject(img, 0, SigSuper, SuperSize, &sup); err != nil {
		return nil, fmt.Errorf("h5inspect: %w", err)
	}
	out := []ObjectExtent{{Addr: 0, Size: SuperSize, Kind: "superblock", Path: "/"}}
	var walkGroup func(addr int64, path string)
	walkGroup = func(addr int64, path string) {
		var oh objectHeader
		if decodeObject(img, addr, SigOhdr, OhdrSize, &oh) != nil {
			return
		}
		out = append(out, ObjectExtent{Addr: addr, Size: OhdrSize, Kind: "ohdr", Path: path})
		if !oh.Group {
			if chunks, err := collectLeaves(img, oh.ChunkTree, 0); err == nil {
				out = append(out, ObjectExtent{Addr: oh.ChunkTree, Size: TreeSize, Kind: "btree", Path: path})
				for i, c := range chunks {
					out = append(out, ObjectExtent{Addr: c, Size: ChunkSize, Kind: "chunk", Path: fmt.Sprintf("%s[%d]", path, i)})
				}
			}
			return
		}
		out = append(out, ObjectExtent{Addr: oh.Btree, Size: TreeSize, Kind: "btree", Path: path})
		out = append(out, ObjectExtent{Addr: oh.Heap, Size: HeapSize, Kind: "heap", Path: path})
		var heap localHeap
		if decodeObject(img, oh.Heap, SigHeap, HeapSize, &heap) != nil {
			return
		}
		snods, err := collectLeaves(img, oh.Btree, 0)
		if err != nil {
			return
		}
		for _, sa := range snods {
			out = append(out, ObjectExtent{Addr: sa, Size: SnodSize, Kind: "snod", Path: path})
			var sn symbolNode
			if decodeObject(img, sa, SigSnod, SnodSize, &sn) != nil {
				continue
			}
			for _, e := range sn.Entries {
				name, err := heapName(&heap, e.NameOff)
				if err != nil {
					continue
				}
				cpath := path + name
				if path != "/" {
					cpath = path + "/" + name
				}
				walkGroup(e.Ohdr, cpath)
			}
		}
	}
	walkGroup(sup.Root, "/")
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out, nil
}

// InspectJSON renders the object map as the JSON document h5inspect emits.
func InspectJSON(img []byte) ([]byte, error) {
	m, err := Inspect(img)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(m, "", "  ")
}
