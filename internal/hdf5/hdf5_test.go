package hdf5

import (
	"strings"
	"testing"
)

func newTestFile(t *testing.T) (*File, *MemBackend) {
	t.Helper()
	be := &MemBackend{}
	f, err := Format(be)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return f, be
}

func TestFormatAndParse(t *testing.T) {
	f, be := newTestFile(t)
	if err := f.CreateGroup("/g1"); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateDataset("/g1/d1", 4, 4); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteDataset("/g1/d1", []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st := Parse(be.Buf, false)
	if !st.Readable() {
		t.Fatalf("not readable: %s", st.Serialize())
	}
	s := st.Serialize()
	if !strings.Contains(s, "group /g1") || !strings.Contains(s, "dataset /g1/d1 4x4") {
		t.Fatalf("unexpected state:\n%s", s)
	}
	data, err := f.ReadDataset("/g1/d1")
	if err != nil || string(data) != "0123456789abcdef" {
		t.Fatalf("read back: %q %v", data, err)
	}
}

func TestResizeSplitsChunkTree(t *testing.T) {
	f, be := newTestFile(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.CreateGroup("/g1"))
	must(f.CreateDataset("/g1/d1", 4, 4))
	must(f.Resize("/g1/d1", 10, 10)) // 100 bytes -> 7 chunks -> split
	must(f.Close())
	st := Parse(be.Buf, false)
	if !st.Readable() {
		t.Fatalf("not readable after resize: %s", st.Serialize())
	}
	if !strings.Contains(st.Serialize(), "dataset /g1/d1 10x10") {
		t.Fatalf("resize not visible: %s", st.Serialize())
	}
}

func TestDeleteAndMove(t *testing.T) {
	f, be := newTestFile(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.CreateGroup("/g1"))
	must(f.CreateGroup("/g2"))
	must(f.CreateDataset("/g1/d1", 4, 4))
	must(f.CreateDataset("/g2/d2", 4, 4))
	must(f.Move("/g1/d1", "/g2/dmoved"))
	must(f.Delete("/g2/d2"))
	must(f.Close())
	st := Parse(be.Buf, false)
	s := st.Serialize()
	if !st.Readable() {
		t.Fatalf("not readable: %s", s)
	}
	if strings.Contains(s, "/g1/d1") || strings.Contains(s, "/g2/d2") || !strings.Contains(s, "/g2/dmoved") {
		t.Fatalf("unexpected state:\n%s", s)
	}
}

func TestClearStatus(t *testing.T) {
	f, be := newTestFile(t)
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// Reopen marks status, flush persists it.
	f2, err := Open(be)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Flush(); err != nil {
		t.Fatal(err)
	}
	if st, _ := Status(be.Buf); st == 0 {
		t.Fatal("status flag should be set while open")
	}
	img, changed := Clear(be.Buf, false)
	if !changed {
		t.Fatal("Clear should report a change")
	}
	if st, _ := Status(img); st != 0 {
		t.Fatal("status flag should be cleared")
	}
}

func TestSnodSplit(t *testing.T) {
	f, be := newTestFile(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.CreateGroup("/g1"))
	for i := 0; i < SnodCap+2; i++ {
		must(f.CreateDataset("/g1/d"+string(rune('a'+i)), 4, 4))
	}
	must(f.Close())
	st := Parse(be.Buf, false)
	if !st.Readable() {
		t.Fatalf("not readable after snod split: %s", st.Serialize())
	}
	if got := len(st.Objects); got != 2+SnodCap+2 { // root, g1, datasets
		t.Fatalf("object count = %d, state:\n%s", got, st.Serialize())
	}
}

func TestInspect(t *testing.T) {
	f, be := newTestFile(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.CreateGroup("/g1"))
	must(f.CreateDataset("/g1/d1", 4, 4))
	must(f.Close())
	m, err := Inspect(be.Buf)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range m {
		kinds[e.Kind]++
	}
	for _, k := range []string{"superblock", "ohdr", "btree", "heap", "snod", "chunk"} {
		if kinds[k] == 0 {
			t.Errorf("object map missing kind %q: %+v", k, kinds)
		}
	}
}
