package hdf5

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Backend is where a File's bytes live: an MPI-IO file handle on a PFS for
// traced executions, or an in-memory buffer for legal-state replay.
type Backend interface {
	// ReadAll returns the current file contents.
	ReadAll() ([]byte, error)
	// WriteAt writes data at off; tag carries the object-map label
	// ("h5:superblock", "h5:snod:/g1", "h5:data:/g1/d1", ...) used for
	// trace correlation and semantic pruning.
	WriteAt(off int64, data []byte, tag string) error
}

// MemBackend is an in-memory Backend for replay and tests.
type MemBackend struct {
	Buf []byte
}

// ReadAll implements Backend.
func (m *MemBackend) ReadAll() ([]byte, error) {
	return append([]byte(nil), m.Buf...), nil
}

// WriteAt implements Backend.
func (m *MemBackend) WriteAt(off int64, data []byte, _ string) error {
	if end := off + int64(len(data)); end > int64(len(m.Buf)) {
		grown := make([]byte, end)
		copy(grown, m.Buf)
		m.Buf = grown
	}
	copy(m.Buf[off:], data)
	return nil
}

// dirtyExt is one modified extent awaiting flush.
type dirtyExt struct {
	size int
	tag  string
}

// File is an open HDF5 file with a write-back metadata/data cache: all
// modifications hit the in-memory image and reach the backend only at
// Flush/Close, in increasing address order (like the real metadata cache's
// flush-by-address), with no intervening syncs — the library relies
// entirely on the file system for persistence ordering, which is exactly
// the exposure the paper tests.
type File struct {
	be    Backend
	img   []byte
	dirty map[int64]dirtyExt
	sup   superBlock
}

// Format initialises a fresh HDF5 file on the backend: superblock and an
// empty root group, flushed immediately.
func Format(be Backend) (*File, error) {
	f := &File{be: be, dirty: map[int64]dirtyExt{}}
	f.img = make([]byte, SuperSize)
	f.sup = superBlock{EOF: SuperSize}
	rootOhdr := f.newGroupObjects("/")
	f.sup.Root = rootOhdr
	f.writeSuper()
	if err := f.Flush(); err != nil {
		return nil, err
	}
	return f, nil
}

// Open reads the file image from the backend and marks it open for write
// (the superblock status flag that h5clear clears).
func Open(be Backend) (*File, error) {
	img, err := be.ReadAll()
	if err != nil {
		return nil, err
	}
	f := &File{be: be, img: img, dirty: map[int64]dirtyExt{}}
	if err := decodeObject(f.img, 0, SigSuper, SuperSize, &f.sup); err != nil {
		return nil, fmt.Errorf("hdf5: open: %w", err)
	}
	f.sup.Status = 1
	f.writeSuper()
	return f, nil
}

// Image returns the current in-memory image (for inspection).
func (f *File) Image() []byte { return append([]byte(nil), f.img...) }

// alloc reserves size bytes at EOF.
func (f *File) alloc(size int) int64 {
	addr := f.sup.EOF
	f.sup.EOF += int64(size)
	if int64(len(f.img)) < f.sup.EOF {
		grown := make([]byte, f.sup.EOF)
		copy(grown, f.img)
		f.img = grown
	}
	f.writeSuper()
	return addr
}

func (f *File) writeSuper() {
	copy(f.img, encodeObject(SigSuper, f.sup, SuperSize))
	f.dirty[0] = dirtyExt{size: SuperSize, tag: "h5:superblock"}
}

// writeObj serialises an object into the image and marks it dirty.
func (f *File) writeObj(addr int64, sig string, v any, size int, tag string) {
	copy(f.img[addr:], encodeObject(sig, v, size))
	f.dirty[addr] = dirtyExt{size: size, tag: tag}
}

// writeRaw writes raw bytes (chunk data) into the image and marks dirty.
func (f *File) writeRaw(addr int64, data []byte, tag string) {
	copy(f.img[addr:], data)
	f.dirty[addr] = dirtyExt{size: len(data), tag: tag}
}

// Flush writes every dirty extent to the backend in address order and
// clears the dirty set.
func (f *File) Flush() error {
	addrs := make([]int64, 0, len(f.dirty))
	for a := range f.dirty {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		d := f.dirty[a]
		if err := f.be.WriteAt(a, f.img[a:a+int64(d.size)], d.tag); err != nil {
			return err
		}
	}
	f.dirty = map[int64]dirtyExt{}
	return nil
}

// Close clears the status flag and flushes everything.
func (f *File) Close() error {
	f.sup.Status = 0
	f.writeSuper()
	return f.Flush()
}

// newGroupObjects allocates and writes the object header, B-tree, heap and
// first SNOD of a new group, returning the object header address.
func (f *File) newGroupObjects(path string) int64 {
	ohdrAddr := f.alloc(OhdrSize)
	treeAddr := f.alloc(TreeSize)
	heapAddr := f.alloc(HeapSize)
	snodAddr := f.alloc(SnodSize)
	f.writeObj(snodAddr, SigSnod, symbolNode{Entries: []symbolEntry{}}, SnodSize, "h5:snod:"+path)
	f.writeObj(heapAddr, SigHeap, localHeap{}, HeapSize, "h5:heap:"+path)
	f.writeObj(treeAddr, SigTree, treeNode{Leaf: true, Children: []int64{snodAddr}}, TreeSize, "h5:btree:"+path)
	f.writeObj(ohdrAddr, SigOhdr, objectHeader{Group: true, Btree: treeAddr, Heap: heapAddr}, OhdrSize, "h5:ohdr:"+path)
	return ohdrAddr
}

// lookup resolves a path to its object header address by walking the
// in-memory image (which reflects all cached modifications).
func (f *File) lookup(path string) (int64, objectHeader, error) {
	cur := f.sup.Root
	var oh objectHeader
	if err := decodeObject(f.img, cur, SigOhdr, OhdrSize, &oh); err != nil {
		return 0, oh, err
	}
	path = cleanPath(path)
	if path == "/" {
		return cur, oh, nil
	}
	for _, comp := range strings.Split(strings.TrimPrefix(path, "/"), "/") {
		if !oh.Group {
			return 0, oh, fmt.Errorf("hdf5: %q: not a group", path)
		}
		next, err := f.findEntry(oh, comp)
		if err != nil {
			return 0, oh, fmt.Errorf("hdf5: %q: %w", path, err)
		}
		cur = next
		if err := decodeObject(f.img, cur, SigOhdr, OhdrSize, &oh); err != nil {
			return 0, oh, err
		}
	}
	return cur, oh, nil
}

func cleanPath(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	for strings.Contains(p, "//") {
		p = strings.ReplaceAll(p, "//", "/")
	}
	if len(p) > 1 {
		p = strings.TrimSuffix(p, "/")
	}
	return p
}

// findEntry locates name in the group oh, returning the child ohdr address.
func (f *File) findEntry(oh objectHeader, name string) (int64, error) {
	var heap localHeap
	if err := decodeObject(f.img, oh.Heap, SigHeap, HeapSize, &heap); err != nil {
		return 0, err
	}
	snods, err := collectLeaves(f.img, oh.Btree, 0)
	if err != nil {
		return 0, err
	}
	for _, sa := range snods {
		var sn symbolNode
		if err := decodeObject(f.img, sa, SigSnod, SnodSize, &sn); err != nil {
			return 0, err
		}
		for _, e := range sn.Entries {
			n, err := heapName(&heap, e.NameOff)
			if err != nil {
				return 0, err
			}
			if n == name {
				return e.Ohdr, nil
			}
		}
	}
	return 0, fmt.Errorf("no such entry %q", name)
}

// insertEntry adds name -> childOhdr into the group at groupPath: the name
// goes into the local heap, the entry into the last SNOD (splitting into a
// new SNOD and updating the group B-tree when full — paper bug #9's path).
func (f *File) insertEntry(groupPath string, name string, childOhdr int64) error {
	gaddr, oh, err := f.lookup(groupPath)
	if err != nil {
		return err
	}
	if !oh.Group {
		return fmt.Errorf("hdf5: %q: not a group", groupPath)
	}
	_ = gaddr
	// Duplicate links are rejected, as in H5Dcreate/H5Lmove.
	if _, err := f.findEntry(oh, name); err == nil {
		return fmt.Errorf("hdf5: %q already has a link %q", groupPath, name)
	}
	var heap localHeap
	if err := decodeObject(f.img, oh.Heap, SigHeap, HeapSize, &heap); err != nil {
		return err
	}
	// Heap append.
	nameOff := heap.Used
	heap.Names = append(heap.Names[:min(len(heap.Names), heap.Used)], append([]byte(name), 0)...)
	heap.Used += len(name) + 1
	if heap.Used+16 > HeapSize-8 {
		return fmt.Errorf("hdf5: local heap of %q full", groupPath)
	}
	f.writeObj(oh.Heap, SigHeap, heap, HeapSize, "h5:heap:"+groupPath)

	// SNOD insert (last leaf, split when full).
	var tree treeNode
	if err := decodeObject(f.img, oh.Btree, SigTree, TreeSize, &tree); err != nil {
		return err
	}
	if !tree.Leaf {
		return fmt.Errorf("hdf5: %q: multi-level group B-trees not supported", groupPath)
	}
	lastSnod := tree.Children[len(tree.Children)-1]
	var sn symbolNode
	if err := decodeObject(f.img, lastSnod, SigSnod, SnodSize, &sn); err != nil {
		return err
	}
	if len(sn.Entries) < SnodCap {
		sn.Entries = append(sn.Entries, symbolEntry{NameOff: nameOff, Ohdr: childOhdr})
		f.writeObj(lastSnod, SigSnod, sn, SnodSize, "h5:snod:"+groupPath)
		return nil
	}
	// Split: a fresh SNOD holds the new entry; the B-tree gains a child.
	newSnod := f.alloc(SnodSize)
	f.writeObj(newSnod, SigSnod, symbolNode{Entries: []symbolEntry{{NameOff: nameOff, Ohdr: childOhdr}}}, SnodSize, "h5:snod:"+groupPath)
	tree.Children = append(tree.Children, newSnod)
	if len(tree.Children) > TreeCap {
		return fmt.Errorf("hdf5: group B-tree of %q full", groupPath)
	}
	f.writeObj(oh.Btree, SigTree, tree, TreeSize, "h5:btree:"+groupPath)
	return nil
}

// removeEntry deletes name from the group: the SNOD entry is removed and
// the heap name zeroed (freed), the deletion order of the paper's bug #11.
func (f *File) removeEntry(groupPath, name string) (int64, error) {
	_, oh, err := f.lookup(groupPath)
	if err != nil {
		return 0, err
	}
	var heap localHeap
	if err := decodeObject(f.img, oh.Heap, SigHeap, HeapSize, &heap); err != nil {
		return 0, err
	}
	snods, err := collectLeaves(f.img, oh.Btree, 0)
	if err != nil {
		return 0, err
	}
	for _, sa := range snods {
		var sn symbolNode
		if err := decodeObject(f.img, sa, SigSnod, SnodSize, &sn); err != nil {
			return 0, err
		}
		for i, e := range sn.Entries {
			n, err := heapName(&heap, e.NameOff)
			if err != nil {
				return 0, err
			}
			if n != name {
				continue
			}
			child := e.Ohdr
			sn.Entries = append(sn.Entries[:i], sn.Entries[i+1:]...)
			f.writeObj(sa, SigSnod, sn, SnodSize, "h5:snod:"+groupPath)
			// Zero the freed name in the heap.
			for k := e.NameOff; k < len(heap.Names) && heap.Names[k] != 0; k++ {
				heap.Names[k] = 0
			}
			f.writeObj(oh.Heap, SigHeap, heap, HeapSize, "h5:heap:"+groupPath)
			return child, nil
		}
	}
	return 0, fmt.Errorf("hdf5: %q has no entry %q", groupPath, name)
}

func splitGroupPath(p string) (group, name string) {
	p = cleanPath(p)
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/", p[1:]
	}
	return p[:i], p[i+1:]
}

// CreateGroup creates a new group at path.
func (f *File) CreateGroup(path string) error {
	parent, name := splitGroupPath(path)
	ohdr := f.newGroupObjects(cleanPath(path))
	return f.insertEntry(parent, name, ohdr)
}

// CreateDataset creates a chunked rows×cols byte dataset (fill value 0).
func (f *File) CreateDataset(path string, rows, cols int) error {
	parent, name := splitGroupPath(path)
	size := rows * cols
	need := (size + ChunkSize - 1) / ChunkSize
	if need > TreeCap*TreeCap {
		return fmt.Errorf("hdf5: dataset %q too large (%d chunks)", path, need)
	}
	var chunks []int64
	for i := 0; i < need; i++ {
		ca := f.alloc(ChunkSize)
		f.writeRaw(ca, make([]byte, ChunkSize), "h5:data:"+cleanPath(path))
		chunks = append(chunks, ca)
	}
	treeAddr := f.writeChunkTree(cleanPath(path), 0, chunks)
	ohdrAddr := f.alloc(OhdrSize)
	f.writeObj(ohdrAddr, SigOhdr, objectHeader{Rows: rows, Cols: cols, ChunkTree: treeAddr}, OhdrSize, "h5:ohdr:"+cleanPath(path))
	return f.insertEntry(parent, name, ohdrAddr)
}

// writeChunkTree builds the chunk B-tree for the given chunk addresses,
// splitting into a two-level tree beyond TreeCap leaves (bug #14's shape).
// reuse, when non-zero, rewrites the existing root node address.
func (f *File) writeChunkTree(path string, reuse int64, chunks []int64) int64 {
	if len(chunks) <= TreeCap {
		addr := reuse
		if addr == 0 {
			addr = f.alloc(TreeSize)
		}
		f.writeObj(addr, SigTree, treeNode{Leaf: true, Children: chunks}, TreeSize, "h5:btree:"+path)
		return addr
	}
	var leaves []int64
	for i := 0; i < len(chunks); i += TreeCap {
		end := i + TreeCap
		if end > len(chunks) {
			end = len(chunks)
		}
		la := f.alloc(TreeSize)
		f.writeObj(la, SigTree, treeNode{Leaf: true, Children: chunks[i:end]}, TreeSize, "h5:btree:"+path)
		leaves = append(leaves, la)
	}
	root := reuse
	if root == 0 {
		root = f.alloc(TreeSize)
	}
	f.writeObj(root, SigTree, treeNode{Leaf: false, Children: leaves}, TreeSize, "h5:btree:"+path)
	return root
}

// WriteDataset stores data (row-major) into the dataset's chunks.
func (f *File) WriteDataset(path string, data []byte) error {
	_, oh, err := f.lookup(path)
	if err != nil {
		return err
	}
	if oh.Group {
		return fmt.Errorf("hdf5: %q: is a group", path)
	}
	size := oh.Rows * oh.Cols
	if len(data) > size {
		return fmt.Errorf("hdf5: %q: write of %d bytes exceeds dataset size %d", path, len(data), size)
	}
	chunks, err := collectLeaves(f.img, oh.ChunkTree, 0)
	if err != nil {
		return err
	}
	for i := 0; i*ChunkSize < len(data); i++ {
		end := (i + 1) * ChunkSize
		if end > len(data) {
			end = len(data)
		}
		block := make([]byte, ChunkSize)
		copy(block, data[i*ChunkSize:end])
		f.writeRaw(chunks[i], block, "h5:data:"+cleanPath(path))
	}
	return nil
}

// WriteDatasetAt stores data into the dataset starting at byte offset off
// (row-major), the slab form used by parallel ranks writing disjoint
// regions.
func (f *File) WriteDatasetAt(path string, off int, data []byte) error {
	_, oh, err := f.lookup(path)
	if err != nil {
		return err
	}
	if oh.Group {
		return fmt.Errorf("hdf5: %q: is a group", path)
	}
	size := oh.Rows * oh.Cols
	if off < 0 || off+len(data) > size {
		return fmt.Errorf("hdf5: %q: slab [%d,%d) exceeds dataset size %d", path, off, off+len(data), size)
	}
	chunks, err := collectLeaves(f.img, oh.ChunkTree, 0)
	if err != nil {
		return err
	}
	for pos := 0; pos < len(data); {
		g := off + pos
		ci := g / ChunkSize
		inChunk := g % ChunkSize
		n := ChunkSize - inChunk
		if rem := len(data) - pos; n > rem {
			n = rem
		}
		if ci >= len(chunks) {
			return fmt.Errorf("hdf5: %q: slab touches missing chunk %d", path, ci)
		}
		// Read-modify-write the chunk through the image.
		block := make([]byte, ChunkSize)
		copy(block, f.img[chunks[ci]:chunks[ci]+ChunkSize])
		copy(block[inChunk:], data[pos:pos+n])
		f.writeRaw(chunks[ci], block, "h5:data:"+cleanPath(path))
		pos += n
	}
	return nil
}

// FlushData flushes only the data-chunk extents, leaving metadata dirty —
// what a non-zero rank does at collective close, where rank 0 owns the
// metadata flush.
func (f *File) FlushData() error {
	addrs := make([]int64, 0, len(f.dirty))
	for a, d := range f.dirty {
		if strings.HasPrefix(d.tag, "h5:data:") {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		d := f.dirty[a]
		if err := f.be.WriteAt(a, f.img[a:a+int64(d.size)], d.tag); err != nil {
			return err
		}
		delete(f.dirty, a)
	}
	return nil
}

// ReadDataset returns the dataset contents.
func (f *File) ReadDataset(path string) ([]byte, error) {
	_, oh, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	chunks, err := collectLeaves(f.img, oh.ChunkTree, 0)
	if err != nil {
		return nil, err
	}
	size := oh.Rows * oh.Cols
	out := make([]byte, size)
	for i := 0; i*ChunkSize < size; i++ {
		if i >= len(chunks) {
			break
		}
		end := (i + 1) * ChunkSize
		if end > size {
			end = size
		}
		copy(out[i*ChunkSize:end], f.img[chunks[i]:])
	}
	return out, nil
}

// Resize grows a dataset to rows×cols: new chunks are allocated at EOF and
// the chunk B-tree is rewritten (splitting when the leaf overflows), then
// the object header is updated — the paper's bug #13/#14 write set.
func (f *File) Resize(path string, rows, cols int) error {
	addr, oh, err := f.lookup(path)
	if err != nil {
		return err
	}
	if oh.Group {
		return fmt.Errorf("hdf5: %q: is a group", path)
	}
	oldNeed := (oh.Rows*oh.Cols + ChunkSize - 1) / ChunkSize
	newNeed := (rows*cols + ChunkSize - 1) / ChunkSize
	if newNeed > TreeCap*TreeCap {
		return fmt.Errorf("hdf5: resize of %q too large (%d chunks)", path, newNeed)
	}
	chunks, err := collectLeaves(f.img, oh.ChunkTree, 0)
	if err != nil {
		return err
	}
	if len(chunks) > oldNeed {
		chunks = chunks[:oldNeed]
	}
	for i := oldNeed; i < newNeed; i++ {
		ca := f.alloc(ChunkSize)
		f.writeRaw(ca, make([]byte, ChunkSize), "h5:data:"+cleanPath(path))
		chunks = append(chunks, ca)
	}
	var tree treeNode
	reuse := oh.ChunkTree
	if err := decodeObject(f.img, oh.ChunkTree, SigTree, TreeSize, &tree); err != nil {
		return err
	}
	newRoot := f.writeChunkTree(cleanPath(path), reuse, chunks)
	oh.Rows, oh.Cols = rows, cols
	oh.ChunkTree = newRoot
	f.writeObj(addr, SigOhdr, oh, OhdrSize, "h5:ohdr:"+cleanPath(path))
	return nil
}

// Delete removes the dataset or group link at path (the storage is not
// reclaimed, as in HDF5 without h5repack).
func (f *File) Delete(path string) error {
	parent, name := splitGroupPath(path)
	_, err := f.removeEntry(parent, name)
	return err
}

// Move renames src to dst (H5Lmove): the entry is removed from the source
// group and inserted into the destination group; the object header moves
// untouched.
func (f *File) Move(src, dst string) error {
	srcParent, srcName := splitGroupPath(src)
	dstParent, dstName := splitGroupPath(dst)
	// Validate the destination before touching the source so a failed
	// move never detaches the object.
	if _, _, err := f.lookup(dstParent); err != nil {
		return err
	}
	if _, _, err := f.lookup(dst); err == nil {
		return fmt.Errorf("hdf5: move destination %q exists", dst)
	}
	child, err := f.removeEntry(srcParent, srcName)
	if err != nil {
		return err
	}
	return f.insertEntry(dstParent, dstName, child)
}

// SetAttrs stores an attribute string on the object at path (used by the
// NetCDF layer for its _NCProperties marker).
func (f *File) SetAttrs(path, attrs string) error {
	addr, oh, err := f.lookup(path)
	if err != nil {
		return err
	}
	oh.Attrs = attrs
	f.writeObj(addr, SigOhdr, oh, OhdrSize, "h5:ohdr:"+cleanPath(path))
	return nil
}

// State parses the in-memory image into its logical state.
func (f *File) State() *LogicalState {
	return Parse(f.img, false)
}

// DimsArg encodes dataset dimensions for trace-op arguments.
func DimsArg(rows, cols int) []byte {
	b, _ := json.Marshal([2]int{rows, cols})
	return b
}

// ParseDims decodes a DimsArg.
func ParseDims(b []byte) (rows, cols int, err error) {
	var d [2]int
	if err := json.Unmarshal(b, &d); err != nil {
		return 0, 0, err
	}
	return d[0], d[1], nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
