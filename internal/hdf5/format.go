// Package hdf5 implements a simplified-but-structural HDF5 library and file
// format: superblock, object headers, group symbol tables (B-tree + local
// heap + symbol-table nodes), and chunked datasets with chunk B-trees —
// the data structures whose persistence orderings produce the paper's
// HDF5-level bugs (Table 3, rows 9–15).
//
// Every on-disk object is a fixed-size extent starting with a 4-byte
// signature followed by a JSON payload. Unpersisted extents read as zeros,
// so the parser fails on them exactly the way h5check does on a real
// corrupted file: bad signatures, name offsets beyond the heap, and
// addresses beyond the superblock's EOF ("addr overflow").
package hdf5

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Object signatures. The superblock signature matches HDF5's magic; the
// others are the real format's node signatures.
const (
	SigSuper = "\x89HDF"
	SigOhdr  = "OHDR"
	SigTree  = "TREE"
	SigHeap  = "HEAP"
	SigSnod  = "SNOD"
)

// Extent sizes. Scaled down from the real format but structurally faithful.
const (
	SuperSize = 64
	OhdrSize  = 96
	TreeSize  = 160
	SnodSize  = 256
	HeapSize  = 128
	// ChunkSize is the dataset chunk size in bytes (elements are 1 byte).
	ChunkSize = 16
	// SnodCap is the max entries per symbol table node; inserting beyond it
	// splits the node and updates the group B-tree (paper bug #9).
	SnodCap = 4
	// TreeCap is the max children per B-tree node; a chunk B-tree growing
	// beyond it gains a second level (paper bug #14).
	TreeCap = 4
)

// superBlock is the file superblock.
type superBlock struct {
	Root   int64 `json:"root"` // root group object header address
	EOF    int64 `json:"eof"`
	Status int   `json:"status"` // open-for-write status flags (h5clear)
}

// objectHeader describes a group or dataset.
type objectHeader struct {
	Group bool  `json:"group"`
	Btree int64 `json:"btree,omitempty"` // groups: symbol table B-tree
	Heap  int64 `json:"heap,omitempty"`  // groups: local name heap
	// Datasets:
	Rows      int    `json:"rows,omitempty"`
	Cols      int    `json:"cols,omitempty"`
	ChunkTree int64  `json:"chunktree,omitempty"`
	Attrs     string `json:"attrs,omitempty"` // e.g. NetCDF _NCProperties
}

// treeNode is a B-tree node: for group trees the leaves hold SNOD
// addresses; for chunk trees the leaves hold chunk addresses; internal
// nodes hold child tree-node addresses.
type treeNode struct {
	Leaf     bool    `json:"leaf"`
	Children []int64 `json:"children"`
}

// symbolNode (SNOD) holds directory entries of a group.
type symbolNode struct {
	Entries []symbolEntry `json:"entries"`
}

// symbolEntry maps a name (offset into the local heap) to an object header.
type symbolEntry struct {
	NameOff int   `json:"name"`
	Ohdr    int64 `json:"ohdr"`
}

// localHeap stores names as NUL-terminated strings.
type localHeap struct {
	Used  int    `json:"used"`
	Names []byte `json:"names"`
}

// encodeObject serialises an object into a fixed-size extent.
func encodeObject(sig string, v any, size int) []byte {
	payload, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("hdf5: marshal: %v", err))
	}
	if len(payload)+8 > size {
		panic(fmt.Sprintf("hdf5: object payload (%d bytes) exceeds extent size %d", len(payload), size))
	}
	out := make([]byte, size)
	copy(out, sig)
	binary.LittleEndian.PutUint32(out[4:], uint32(len(payload)))
	copy(out[8:], payload)
	return out
}

// decodeObject parses an extent, validating the signature.
func decodeObject(img []byte, addr int64, sig string, size int, v any) error {
	if addr < 0 || addr+int64(size) > int64(len(img)) {
		return fmt.Errorf("address %d beyond file end %d (addr overflow)", addr, len(img))
	}
	ext := img[addr : addr+int64(size)]
	if string(ext[:4]) != sig {
		return fmt.Errorf("wrong %s signature at address %d (found %q)", strings.TrimSpace(sigName(sig)), addr, printable(ext[:4]))
	}
	n := binary.LittleEndian.Uint32(ext[4:])
	if int(n)+8 > size {
		return fmt.Errorf("corrupt %s length at address %d", sigName(sig), addr)
	}
	if err := json.Unmarshal(ext[8:8+n], v); err != nil {
		return fmt.Errorf("corrupt %s payload at address %d: %v", sigName(sig), addr, err)
	}
	return nil
}

func sigName(sig string) string {
	switch sig {
	case SigSuper:
		return "superblock"
	case SigOhdr:
		return "object header"
	case SigTree:
		return "B-tree"
	case SigHeap:
		return "local heap"
	case SigSnod:
		return "symbol table node"
	default:
		return "object"
	}
}

func printable(b []byte) string {
	out := make([]byte, 0, len(b))
	for _, c := range b {
		if c >= 32 && c < 127 {
			out = append(out, c)
		} else {
			out = append(out, '.')
		}
	}
	return string(out)
}

// heapName reads the NUL-terminated name at off.
func heapName(h *localHeap, off int) (string, error) {
	if off < 0 || off >= h.Used || off >= len(h.Names) {
		return "", fmt.Errorf("name offset %d beyond heap used length %d", off, h.Used)
	}
	end := off
	for end < len(h.Names) && h.Names[end] != 0 {
		end++
	}
	name := string(h.Names[off:end])
	if name == "" {
		return "", fmt.Errorf("empty name at heap offset %d", off)
	}
	return name, nil
}

// LogicalObject is one parsed object in the logical view of a file.
type LogicalObject struct {
	Path    string
	Group   bool
	Rows    int
	Cols    int
	Data    []byte
	Attrs   string
	Corrupt string // non-empty: why the object is unreadable
}

// LogicalState is the parsed, address-free logical content of a file: the
// golden-master comparison unit at the library layer.
type LogicalState struct {
	Objects []LogicalObject
	// FileError is non-empty when the file cannot be opened at all.
	FileError string
}

// Serialize renders the state canonically.
func (s *LogicalState) Serialize() string {
	if s.FileError != "" {
		return "UNOPENABLE: " + s.FileError + "\n"
	}
	objs := append([]LogicalObject(nil), s.Objects...)
	sort.Slice(objs, func(i, j int) bool { return objs[i].Path < objs[j].Path })
	var b strings.Builder
	for _, o := range objs {
		switch {
		case o.Corrupt != "":
			fmt.Fprintf(&b, "corrupt %s: %s\n", o.Path, o.Corrupt)
		case o.Group:
			fmt.Fprintf(&b, "group %s\n", o.Path)
		default:
			sum := sha256.Sum256(o.Data)
			fmt.Fprintf(&b, "dataset %s %dx%d %s", o.Path, o.Rows, o.Cols, hex.EncodeToString(sum[:8]))
			if o.Attrs != "" {
				fmt.Fprintf(&b, " attrs=%s", o.Attrs)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Readable reports whether every object parsed cleanly.
func (s *LogicalState) Readable() bool {
	if s.FileError != "" {
		return false
	}
	for _, o := range s.Objects {
		if o.Corrupt != "" {
			return false
		}
	}
	return true
}

// Parse walks a file image from the superblock and returns its logical
// state — the h5check pass. Structural damage inside one group or dataset
// is reported on that object; superblock damage makes the file unopenable.
// strict controls NetCDF-style eager opening: when true, any corrupt
// object makes the whole file unopenable (HDF5 error -101), matching
// NetCDF's behaviour in the paper's bug #15.
func Parse(img []byte, strict bool) *LogicalState {
	st := &LogicalState{}
	var sup superBlock
	if err := decodeObject(img, 0, SigSuper, SuperSize, &sup); err != nil {
		st.FileError = err.Error()
		return st
	}
	// Parse against an EOF-sized view: addresses beyond the superblock's
	// EOF are invalid even if the PFS file is longer, and a superblock EOF
	// beyond the actual file (later allocations never persisted) reads as
	// zeros, so the objects there fail their signature checks individually
	// — HDF5's lazy open. NetCDF's eager open (strict) then promotes any
	// such corruption to a whole-file error.
	v := img
	if sup.EOF <= int64(len(img)) {
		v = img[:sup.EOF]
	} else {
		v = make([]byte, sup.EOF)
		copy(v, img)
	}
	parseGroup(v, sup.Root, "/", st)

	if strict {
		for _, o := range st.Objects {
			if o.Corrupt != "" {
				st.Objects = nil
				st.FileError = fmt.Sprintf("HDF5 error [Errno -101]: %s: %s", o.Path, o.Corrupt)
				break
			}
		}
	}
	return st
}

// parseGroup parses the group whose object header is at addr.
func parseGroup(img []byte, addr int64, path string, st *LogicalState) {
	var oh objectHeader
	if err := decodeObject(img, addr, SigOhdr, OhdrSize, &oh); err != nil {
		st.Objects = append(st.Objects, LogicalObject{Path: path, Group: true, Corrupt: err.Error()})
		return
	}
	if !oh.Group {
		st.Objects = append(st.Objects, LogicalObject{Path: path, Group: true, Corrupt: "object header is not a group"})
		return
	}
	obj := LogicalObject{Path: path, Group: true, Attrs: oh.Attrs}

	var heap localHeap
	if err := decodeObject(img, oh.Heap, SigHeap, HeapSize, &heap); err != nil {
		obj.Corrupt = "local heap: " + err.Error()
		st.Objects = append(st.Objects, obj)
		return
	}
	snods, err := collectLeaves(img, oh.Btree, 0)
	if err != nil {
		obj.Corrupt = "symbol table B-tree: " + err.Error()
		st.Objects = append(st.Objects, obj)
		return
	}
	type childRef struct {
		name string
		ohdr int64
	}
	var children []childRef
	for _, sa := range snods {
		var sn symbolNode
		if err := decodeObject(img, sa, SigSnod, SnodSize, &sn); err != nil {
			obj.Corrupt = err.Error()
			st.Objects = append(st.Objects, obj)
			return
		}
		for _, e := range sn.Entries {
			name, err := heapName(&heap, e.NameOff)
			if err != nil {
				// A symbol entry whose name cannot be resolved corrupts the
				// whole group listing (h5check reports the group).
				obj.Corrupt = "symbol table entry: " + err.Error()
				st.Objects = append(st.Objects, obj)
				return
			}
			children = append(children, childRef{name: name, ohdr: e.Ohdr})
		}
	}
	st.Objects = append(st.Objects, obj)
	sort.Slice(children, func(i, j int) bool { return children[i].name < children[j].name })
	for _, c := range children {
		cpath := path + c.name
		if path != "/" {
			cpath = path + "/" + c.name
		}
		var coh objectHeader
		if err := decodeObject(img, c.ohdr, SigOhdr, OhdrSize, &coh); err != nil {
			st.Objects = append(st.Objects, LogicalObject{Path: cpath, Corrupt: err.Error()})
			continue
		}
		if coh.Group {
			parseGroup(img, c.ohdr, cpath, st)
		} else {
			parseDataset(img, c.ohdr, coh, cpath, st)
		}
	}
}

// parseDataset reads a chunked dataset.
func parseDataset(img []byte, addr int64, oh objectHeader, path string, st *LogicalState) {
	obj := LogicalObject{Path: path, Rows: oh.Rows, Cols: oh.Cols, Attrs: oh.Attrs}
	size := oh.Rows * oh.Cols
	chunks, err := collectLeaves(img, oh.ChunkTree, 0)
	if err != nil {
		obj.Corrupt = "chunk B-tree: " + err.Error()
		st.Objects = append(st.Objects, obj)
		return
	}
	need := (size + ChunkSize - 1) / ChunkSize
	if len(chunks) < need {
		obj.Corrupt = fmt.Sprintf("chunk B-tree lists %d chunks, dataset needs %d", len(chunks), need)
		st.Objects = append(st.Objects, obj)
		return
	}
	data := make([]byte, size)
	for i := 0; i < need; i++ {
		ca := chunks[i]
		if ca < 0 || ca+ChunkSize > int64(len(img)) {
			obj.Corrupt = fmt.Sprintf("chunk %d at address %d beyond EOF %d (addr overflow)", i, ca, len(img))
			st.Objects = append(st.Objects, obj)
			return
		}
		n := size - i*ChunkSize
		if n > ChunkSize {
			n = ChunkSize
		}
		copy(data[i*ChunkSize:], img[ca:ca+int64(n)])
	}
	obj.Data = data
	st.Objects = append(st.Objects, obj)
}

// collectLeaves walks a B-tree from addr collecting leaf children in order.
func collectLeaves(img []byte, addr int64, depth int) ([]int64, error) {
	if depth > 8 {
		return nil, fmt.Errorf("B-tree deeper than 8 levels at address %d", addr)
	}
	var node treeNode
	if err := decodeObject(img, addr, SigTree, TreeSize, &node); err != nil {
		return nil, err
	}
	if node.Leaf {
		return node.Children, nil
	}
	var out []int64
	for _, child := range node.Children {
		sub, err := collectLeaves(img, child, depth+1)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}
