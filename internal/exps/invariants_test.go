package exps

import (
	"testing"

	core "paracrash/internal/paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// TestGoldenReplayMatchesLiveExecution is the invariant everything rests
// on: re-executing the recorded PFS-layer client operations on the initial
// snapshot reproduces exactly the live execution's logical namespace, on
// every file system, for a spread of generated programs.
func TestGoldenReplayMatchesLiveExecution(t *testing.T) {
	for _, fsName := range FSNames() {
		for seed := int64(0); seed < 6; seed++ {
			w := workloads.Generate(workloads.DefaultGenConfig(seed))
			rec := trace.NewRecorder()
			fs, err := NewFS(fsName, ConfigFor(fsName), rec)
			if err != nil {
				t.Fatal(err)
			}
			rec.SetEnabled(false)
			if err := w.Preamble(fs); err != nil {
				t.Fatalf("%s seed %d preamble: %v", fsName, seed, err)
			}
			initial := fs.Snapshot()
			rec.Reset()
			rec.SetEnabled(true)
			if err := w.Run(fs); err != nil {
				t.Fatalf("%s seed %d run: %v", fsName, seed, err)
			}
			rec.SetEnabled(false)

			liveTree, err := fs.Mount()
			if err != nil {
				t.Fatalf("%s seed %d live mount: %v", fsName, seed, err)
			}
			live := liveTree.Serialize()

			// Golden replay: restore and re-execute the client ops.
			fs.Restore(initial)
			client := fs.Client(0)
			for _, o := range rec.Ops() {
				if o.Layer != trace.LayerPFS || o.IsComm() {
					continue
				}
				if err := pfs.ReplayClientOp(client, o); err != nil {
					t.Fatalf("%s seed %d replay %s: %v", fsName, seed, o.Name, err)
				}
			}
			replayTree, err := fs.Mount()
			if err != nil {
				t.Fatalf("%s seed %d replay mount: %v", fsName, seed, err)
			}
			if replay := replayTree.Serialize(); replay != live {
				t.Fatalf("%s seed %d: golden replay diverges\nlive:\n%s\nreplay:\n%s",
					fsName, seed, live, replay)
			}
		}
	}
}

// TestNormalStatesAreAlwaysConsistent: the full-persistence state of every
// complete front must be legal for every file system — if it is not, the
// persistence model and the consistency model disagree about crash-free
// executions.
func TestNormalStatesAreAlwaysConsistent(t *testing.T) {
	for _, fsName := range FSNames() {
		prog, _ := ProgramByName("ARVR")
		opts := core.DefaultOptions()
		opts.Emulator.K = 0 // only normal states (full persistence per front)
		opts.Emulator.FrontMode = core.FrontEnd
		rep, err := RunOne(fsName, prog, opts, workloads.DefaultH5Params(), ConfigFor(fsName))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Inconsistent != 0 {
			t.Errorf("%s: the crash-free end state is illegal (%d states): %+v",
				fsName, rep.Inconsistent, rep.States)
		}
	}
}
