package exps

import (
	"fmt"
	"strings"

	"paracrash/internal/paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// TraceDump runs a program's preamble and traced body on a file system and
// returns the per-process operation listing — the raw material of the
// paper's Figures 2 and 9.
func TraceDump(fsName string, prog Program, h5p workloads.H5Params) (string, error) {
	conf := ConfigFor(fsName)
	placement := prog.Placement
	if fsName == "glusterfs" {
		placement = prog.GlusterPlacement
	}
	if placement != nil {
		conf.FilePlacement = placement
	}
	rec := trace.NewRecorder()
	fs, err := NewFS(fsName, conf, rec)
	if err != nil {
		return "", err
	}
	w, _ := prog.Make(h5p)
	rec.SetEnabled(false)
	if err := w.Preamble(fs); err != nil {
		return "", fmt.Errorf("preamble: %w", err)
	}
	rec.Reset()
	rec.SetEnabled(true)
	if err := w.Run(fs); err != nil {
		return "", fmt.Errorf("run: %w", err)
	}
	rec.SetEnabled(false)
	return trace.Format(rec.Ops()), nil
}

// Fig9 renders the ARVR traces on BeeGFS, OrangeFS, GlusterFS and GPFS —
// the cross-file-system comparison of the paper's Figure 9 (and Figure 2
// for BeeGFS).
func Fig9(h5p workloads.H5Params) string {
	var b strings.Builder
	prog, _ := ProgramByName("ARVR")
	b.WriteString("Figure 2/9: ARVR traces across parallel file systems\n")
	for _, fsName := range []string{"beegfs", "orangefs", "glusterfs", "gpfs"} {
		dump, err := TraceDump(fsName, prog, h5p)
		fmt.Fprintf(&b, "\n===== %s =====\n", fsName)
		if err != nil {
			fmt.Fprintf(&b, "error: %v\n", err)
			continue
		}
		b.WriteString(dump)
	}
	return b.String()
}

// Fig5 demonstrates the four consistency models on the paper's Figure 5
// two-process example: P0 writes A then sends to P1; P1 receives, writes C
// and fsyncs; P0 writes B. It reports, for each model, how many distinct
// legal states the checker accepts on the ext4 baseline.
func Fig5() string {
	var b strings.Builder
	b.WriteString("Figure 5: legal preserved-state counts per consistency model\n")
	b.WriteString("(P0: write A; send; write B   P1: recv; write C; fsync)\n\n")
	for _, m := range []paracrash.Model{paracrash.ModelStrict, paracrash.ModelCommit, paracrash.ModelCausal, paracrash.ModelBaseline} {
		opts := paracrash.DefaultOptions()
		opts.PFSModel = m
		rec := trace.NewRecorder()
		fs, _ := NewFS("ext4", ConfigFor("ext4"), rec)
		rep, err := paracrash.Run(fs, nil, workloads.Fig5Program(), opts)
		if err != nil {
			fmt.Fprintf(&b, "%-10s error: %v\n", m, err)
			continue
		}
		fmt.Fprintf(&b, "%-10s legal states: %2d   inconsistent crash states: %d\n",
			m, rep.Stats.LegalPFSStates, rep.Inconsistent)
	}
	return b.String()
}

// TraceJSON runs a program and returns its full trace serialised as JSON
// (the per-process trace files of the paper's tracing stage, §5.1).
func TraceJSON(fsName string, prog Program, h5p workloads.H5Params, conf pfs.Config) ([]byte, error) {
	placement := prog.Placement
	if fsName == "glusterfs" {
		placement = prog.GlusterPlacement
	}
	if placement != nil {
		if conf.FilePlacement == nil {
			conf.FilePlacement = map[string]int{}
		}
		for k, v := range placement {
			conf.FilePlacement[k] = v
		}
	}
	rec := trace.NewRecorder()
	fs, err := NewFS(fsName, conf, rec)
	if err != nil {
		return nil, err
	}
	w, _ := prog.Make(h5p)
	rec.SetEnabled(false)
	if err := w.Preamble(fs); err != nil {
		return nil, fmt.Errorf("preamble: %w", err)
	}
	rec.Reset()
	rec.SetEnabled(true)
	if err := w.Run(fs); err != nil {
		return nil, fmt.Errorf("run: %w", err)
	}
	rec.SetEnabled(false)
	return trace.Encode(rec.Ops())
}
