package exps

import (
	"strings"
	"testing"

	"paracrash/internal/paracrash"
	"paracrash/internal/vfs"
	"paracrash/internal/workloads"
)

// TestKSensitivity: raising Algorithm 1's k beyond 1 explores more states
// but, as the paper observes (§6.2), exposes no new bug families.
func TestKSensitivity(t *testing.T) {
	prog, _ := ProgramByName("ARVR")
	sigs := map[int]map[string]bool{}
	states := map[int]int{}
	for _, k := range []int{1, 2} {
		opts := paracrash.DefaultOptions()
		opts.Emulator.K = k
		rep, err := RunOne("beegfs", prog, opts, workloads.DefaultH5Params(), ConfigFor("beegfs"))
		if err != nil {
			t.Fatal(err)
		}
		set := map[string]bool{}
		for _, b := range rep.Bugs {
			set[b.Kind.String()+"|"+stripServerIndex(b.OpA)+"|"+stripServerIndex(b.OpB)] = true
		}
		sigs[k] = set
		states[k] = rep.Stats.StatesGenerated
	}
	if states[2] <= states[1] {
		t.Errorf("k=2 generated %d states, k=1 %d — should explore more", states[2], states[1])
	}
	for sig := range sigs[2] {
		if !sigs[1][sig] {
			t.Errorf("k=2 found a new bug family %q — paper found none", sig)
		}
	}
	for sig := range sigs[1] {
		if !sigs[2][sig] {
			t.Errorf("k=2 lost bug family %q", sig)
		}
	}
}

// TestClientsSensitivity: the parallel-create bug family needs enough
// collective creates to split the group's symbol table node (#clients
// sensitivity of Table 3's bug 9).
func TestClientsSensitivity(t *testing.T) {
	prog, _ := ProgramByName("H5-parallel-create")
	counts := map[int]int{}
	for _, clients := range []int{1, 2} {
		p := workloads.DefaultH5Params()
		p.Clients = clients
		p.PerGroup = 3 // 3 + clients entries: the SNOD splits at >4
		rep, err := RunOne("lustre", prog, paracrash.DefaultOptions(), p, ConfigFor("lustre"))
		if err != nil {
			t.Fatalf("clients=%d: %v", clients, err)
		}
		counts[clients] = rep.Inconsistent
		if clients == 2 {
			groupStruct := false
			for _, b := range rep.Bugs {
				if strings.Contains(b.OpA+b.OpB, ":/g1") {
					groupStruct = true
				}
			}
			if !groupStruct {
				t.Errorf("no group-structure bug with 2 clients: %v", bugStrings(rep))
			}
		}
	}
	if counts[2] <= counts[1] {
		t.Errorf("inconsistencies did not grow with clients: %v", counts)
	}
}

// TestGlusterWALNeedsDistribution: with every file anchored on brick 0
// (the pure striped volume default) the WAL bug cannot manifest — the
// paper's file-distribution sensitivity for bug 6.
func TestGlusterWALNeedsDistribution(t *testing.T) {
	prog, _ := ProgramByName("WAL")
	prog.GlusterPlacement = nil // no distribution
	rep, err := RunOne("glusterfs", prog, paracrash.DefaultOptions(), workloads.DefaultH5Params(), ConfigFor("glusterfs"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inconsistent != 0 {
		t.Errorf("colocated WAL should be safe on the striped volume, got %d states", rep.Inconsistent)
	}
	// With the paper's distribution the bug appears.
	prog.GlusterPlacement = map[string]int{"/foo": 0, "/log": 1}
	rep, err = RunOne("glusterfs", prog, paracrash.DefaultOptions(), workloads.DefaultH5Params(), ConfigFor("glusterfs"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inconsistent == 0 {
		t.Error("distributed WAL should expose bug 6")
	}
}

// TestJournalModeAblation: the paper runs every local file system in data
// journaling, its safest mode. Relaxing to writeback makes even the
// single-node ext4 baseline fail POSIX programs — data writes reorder
// against the metadata that exposes them.
func TestJournalModeAblation(t *testing.T) {
	prog, _ := ProgramByName("ARVR")
	for _, tc := range []struct {
		mode vfs.JournalMode
		bugs bool
	}{
		{vfs.JournalData, false},
		{vfs.JournalWriteback, true},
	} {
		conf := ConfigFor("ext4")
		conf.Journal = tc.mode
		rep, err := RunOne("ext4", prog, paracrash.DefaultOptions(), workloads.DefaultH5Params(), conf)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Inconsistent > 0; got != tc.bugs {
			t.Errorf("%v: inconsistent=%d, want bugs=%v", tc.mode, rep.Inconsistent, tc.bugs)
		}
	}
}

// TestOrderedModeIsBetweenDataAndWriteback: ordered journaling keeps ARVR
// safe on ext4 (data persists before the rename that exposes it) — the
// reason real ext4 defaults suffice for this pattern locally.
func TestOrderedModeARVR(t *testing.T) {
	prog, _ := ProgramByName("ARVR")
	conf := ConfigFor("ext4")
	conf.Journal = vfs.JournalOrdered
	rep, err := RunOne("ext4", prog, paracrash.DefaultOptions(), workloads.DefaultH5Params(), conf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inconsistent != 0 {
		t.Errorf("ordered-mode ARVR on ext4: %d inconsistent states, want 0", rep.Inconsistent)
	}
}
