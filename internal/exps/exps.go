// Package exps is the experiment harness behind cmd/experiments and the
// repository benchmarks: it assembles the paper's evaluation matrix (11
// test programs × 6 file systems, §6.2) and regenerates each table and
// figure of §6.
package exps

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"paracrash/internal/paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/pfs/beegfs"
	"paracrash/internal/pfs/extfs"
	"paracrash/internal/pfs/glusterfs"
	"paracrash/internal/pfs/gpfs"
	"paracrash/internal/pfs/lustre"
	"paracrash/internal/pfs/orangefs"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// FSNames lists the file systems under test, in the paper's order.
func FSNames() []string {
	return []string{"beegfs", "orangefs", "glusterfs", "gpfs", "lustre", "ext4"}
}

// NewFS builds a file system by name with the given configuration.
func NewFS(name string, conf pfs.Config, rec *trace.Recorder) (pfs.FileSystem, error) {
	switch name {
	case "beegfs":
		return beegfs.New(conf, rec), nil
	case "orangefs":
		return orangefs.New(conf, rec), nil
	case "glusterfs":
		return glusterfs.New(conf, rec), nil
	case "gpfs":
		return gpfs.New(conf, rec), nil
	case "lustre":
		return lustre.New(conf, rec), nil
	case "ext4":
		return extfs.New(conf, rec), nil
	default:
		return nil, fmt.Errorf("exps: unknown file system %q", name)
	}
}

// ConfigFor returns the paper's Table 2 deployment for a file system:
// BeeGFS, OrangeFS and Lustre run two metadata and two storage servers;
// GlusterFS and GPFS run two servers total; ext4 is a single node.
func ConfigFor(fsName string) pfs.Config {
	conf := pfs.DefaultConfig()
	switch fsName {
	case "glusterfs", "gpfs", "lustre-2srv":
		conf.MetaServers = 0
		conf.StorageServers = 2
	case "ext4":
		conf.MetaServers = 0
		conf.StorageServers = 1
	}
	return conf
}

// Program is one evaluation test program.
type Program struct {
	Name string
	// POSIX reports whether the program uses the POSIX client API directly
	// (no I/O library layer).
	POSIX bool
	// Placement pins files to storage servers (the paper's file
	// distribution that triggers the distribution-sensitive bugs).
	Placement map[string]int
	// GlusterPlacement overrides Placement on GlusterFS, whose striped
	// volume normally anchors every file on the first brick; only the WAL
	// program's distribution sensitivity applies there (paper bug #6).
	GlusterPlacement map[string]int
	// makePosix or makeH5 constructs the workload.
	makePosix func() paracrash.Workload
	makeH5    func(p workloads.H5Params) *workloads.H5Workload
}

// Make instantiates the workload and its library adapter (nil for POSIX).
func (pr Program) Make(p workloads.H5Params) (paracrash.Workload, paracrash.Library) {
	if pr.POSIX {
		return pr.makePosix(), nil
	}
	w := pr.makeH5(p)
	return w, w.Library()
}

// Programs returns the 11 test programs in the paper's order (Figure 8).
func Programs() []Program {
	return []Program{
		{Name: "ARVR", POSIX: true, makePosix: workloads.ARVR,
			Placement: map[string]int{"/foo": 0, "/tmp": 1}},
		{Name: "CR", POSIX: true, makePosix: workloads.CR},
		{Name: "RC", POSIX: true, makePosix: workloads.RC},
		{Name: "WAL", POSIX: true, makePosix: workloads.WAL,
			Placement:        map[string]int{"/foo": 0, "/log": 1},
			GlusterPlacement: map[string]int{"/foo": 0, "/log": 1}},
		{Name: "H5-create", makeH5: workloads.H5Create},
		{Name: "H5-delete", makeH5: workloads.H5Delete},
		{Name: "H5-rename", makeH5: workloads.H5Rename},
		{Name: "H5-resize", makeH5: workloads.H5Resize},
		{Name: "CDF-create", makeH5: workloads.CDFCreate},
		{Name: "H5-parallel-create", makeH5: workloads.H5ParallelCreate},
		{Name: "H5-parallel-resize", makeH5: workloads.H5ParallelResize},
	}
}

// ProgramByName finds a program.
func ProgramByName(name string) (Program, error) {
	for _, p := range Programs() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("exps: unknown program %q", name)
}

// RunOne executes a single (program, file system) cell of the matrix.
// Placement hints do not apply to GlusterFS: its striped volume always
// places the first stripe on the first brick.
func RunOne(fsName string, prog Program, opts paracrash.Options, h5p workloads.H5Params, conf pfs.Config) (*paracrash.Report, error) {
	return RunOneContext(context.Background(), fsName, prog, opts, h5p, conf)
}

// RunOneContext is RunOne with cancellation, for callers that bound a
// cell's wall time (the job daemon's per-job timeouts).
func RunOneContext(ctx context.Context, fsName string, prog Program, opts paracrash.Options, h5p workloads.H5Params, conf pfs.Config) (*paracrash.Report, error) {
	fs, err := cellFS(fsName, prog, conf)
	if err != nil {
		return nil, err
	}
	w, lib := prog.Make(h5p)
	return paracrash.RunContext(ctx, fs, lib, w, opts)
}

// RunOneShardContext judges one shard of a cell's crash-state space — the
// fleet worker's entry point. The cell stack (placement hints, backend
// config, workload construction) is built exactly as RunOneContext builds
// it, which is what keeps the generation order, and with it the shard
// partition, identical across worker processes.
func RunOneShardContext(ctx context.Context, fsName string, prog Program, opts paracrash.Options, h5p workloads.H5Params, conf pfs.Config, shard paracrash.ShardSpec) (*paracrash.ShardReport, error) {
	fs, err := cellFS(fsName, prog, conf)
	if err != nil {
		return nil, err
	}
	w, lib := prog.Make(h5p)
	return paracrash.RunShard(ctx, fs, lib, w, opts, shard)
}

// MergeOneShardsContext merges a cell's shard reports into the full report —
// the fleet coordinator's entry point, byte-identical (ReportFingerprint)
// to RunOneContext with the same arguments.
func MergeOneShardsContext(ctx context.Context, fsName string, prog Program, opts paracrash.Options, h5p workloads.H5Params, conf pfs.Config, shards []*paracrash.ShardReport) (*paracrash.Report, error) {
	fs, err := cellFS(fsName, prog, conf)
	if err != nil {
		return nil, err
	}
	w, lib := prog.Make(h5p)
	return paracrash.MergeShards(ctx, fs, lib, w, opts, shards)
}

// cellFS builds one cell's file-system stack: the program's placement hints
// overlaid on the backend config. Placement hints do not apply to GlusterFS
// (its striped volume always places the first stripe on the first brick).
func cellFS(fsName string, prog Program, conf pfs.Config) (pfs.FileSystem, error) {
	placement := prog.Placement
	if fsName == "glusterfs" {
		placement = prog.GlusterPlacement
	}
	if placement != nil {
		if conf.FilePlacement == nil {
			conf.FilePlacement = map[string]int{}
		}
		for k, v := range placement {
			conf.FilePlacement[k] = v
		}
	}
	return NewFS(fsName, conf, trace.NewRecorder())
}

// Cell is one Figure 8 matrix entry.
type Cell struct {
	Inconsistent int
	LibOnly      int
	Bugs         int
	Err          string
}

// Fig8Result is the Figure 8 matrix: inconsistent crash states per test
// program and file system, with the library-only counts (the line plots).
type Fig8Result struct {
	Programs []string
	FS       []string
	Cells    map[string]map[string]Cell // program -> fs -> cell
	Reports  []*paracrash.Report
}

// Fig8 runs the full evaluation matrix. Every cell is an independent stack
// (its own recorder, servers and snapshots), so the cells run concurrently
// across the available cores.
func Fig8(opts paracrash.Options, h5p workloads.H5Params) *Fig8Result {
	res := &Fig8Result{Cells: map[string]map[string]Cell{}}
	for _, fsName := range FSNames() {
		res.FS = append(res.FS, fsName)
	}
	type cellKey struct{ prog, fs string }
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	cells := map[cellKey]Cell{}
	var reports []*paracrash.Report

	for _, prog := range Programs() {
		res.Programs = append(res.Programs, prog.Name)
		res.Cells[prog.Name] = map[string]Cell{}
		for _, fsName := range FSNames() {
			prog, fsName := prog, fsName
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer func() { <-sem; wg.Done() }()
				rep, err := RunOne(fsName, prog, opts, h5p, ConfigFor(fsName))
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					cells[cellKey{prog.Name, fsName}] = Cell{Err: err.Error()}
					return
				}
				cells[cellKey{prog.Name, fsName}] = Cell{
					Inconsistent: rep.Inconsistent,
					LibOnly:      rep.LibOnly,
					Bugs:         len(rep.Bugs),
				}
				reports = append(reports, rep)
			}()
		}
	}
	wg.Wait()
	for k, c := range cells {
		res.Cells[k.prog][k.fs] = c
	}
	res.Reports = reports
	return res
}

// Format renders the Figure 8 matrix as a text table.
func (r *Fig8Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 8: number of inconsistent crash states (library-only in parentheses)\n\n")
	fmt.Fprintf(&b, "%-20s", "program")
	for _, fs := range r.FS {
		fmt.Fprintf(&b, "%12s", fs)
	}
	b.WriteString("\n")
	for _, prog := range r.Programs {
		fmt.Fprintf(&b, "%-20s", prog)
		for _, fs := range r.FS {
			c := r.Cells[prog][fs]
			if c.Err != "" {
				fmt.Fprintf(&b, "%12s", "err")
				continue
			}
			fmt.Fprintf(&b, "%9d(%d)", c.Inconsistent, c.LibOnly)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table3 aggregates the unique bugs of the whole matrix, grouped the way
// the paper's Table 3 presents them: kind, responsible layer, the affected
// file systems, the operation pair, and the consequence.
type Table3Row struct {
	Program     string
	Layer       string
	Kind        string
	FSes        []string
	OpA, OpB    string
	Consequence string
}

// Table3 runs the matrix (cells concurrently) and aggregates bugs across
// file systems in deterministic order.
func Table3(opts paracrash.Options, h5p workloads.H5Params) []Table3Row {
	type cellKey struct{ prog, fs string }
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	reports := map[cellKey]*paracrash.Report{}
	for _, prog := range Programs() {
		for _, fsName := range FSNames() {
			prog, fsName := prog, fsName
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer func() { <-sem; wg.Done() }()
				rep, err := RunOne(fsName, prog, opts, h5p, ConfigFor(fsName))
				if err != nil {
					return
				}
				mu.Lock()
				reports[cellKey{prog.Name, fsName}] = rep
				mu.Unlock()
			}()
		}
	}
	wg.Wait()

	byKey := map[string]*Table3Row{}
	var order []string
	for _, prog := range Programs() {
		for _, fsName := range FSNames() {
			rep, ok := reports[cellKey{prog.Name, fsName}]
			if !ok {
				continue
			}
			for _, bug := range rep.Bugs {
				key := fmt.Sprintf("%s|%s|%s|%s|%s", prog.Name, bug.Layer, bug.Kind, stripServerIndex(bug.OpA), stripServerIndex(bug.OpB))
				row, ok := byKey[key]
				if !ok {
					row = &Table3Row{
						Program: prog.Name, Layer: bug.Layer, Kind: bug.Kind.String(),
						OpA: stripServerIndex(bug.OpA), OpB: stripServerIndex(bug.OpB),
						Consequence: bug.Consequence,
					}
					byKey[key] = row
					order = append(order, key)
				}
				row.FSes = append(row.FSes, fsName)
			}
		}
	}
	out := make([]Table3Row, 0, len(order))
	for _, k := range order {
		sort.Strings(byKey[k].FSes)
		out = append(out, *byKey[k])
	}
	return out
}

func stripServerIndex(sig string) string {
	if i := strings.LastIndexByte(sig, '#'); i >= 0 {
		return sig[:i]
	}
	return sig
}

// FormatTable3 renders the aggregated bug list.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: crash-consistency bugs discovered (aggregated across file systems)\n\n")
	for i, r := range rows {
		arrow := "->"
		if r.Kind == "atomicity" {
			arrow = "+"
		}
		fmt.Fprintf(&b, "%2d. [%s] %-18s %-10s %s %s %s\n", i+1, r.Layer, r.Program, r.Kind,
			r.OpA, arrow, r.OpB)
		fmt.Fprintf(&b, "    file systems: %s\n", strings.Join(r.FSes, ", "))
		fmt.Fprintf(&b, "    consequence:  %s\n", r.Consequence)
	}
	return b.String()
}

// Fig10Row is one (program, fs, mode) timing measurement.
type Fig10Row struct {
	Program string
	FS      string
	Mode    paracrash.Mode
	Seconds float64
	Stats   paracrash.Stats
	Bugs    int
}

// Fig10 measures the exploration strategies on the user-level file systems
// (paper Figure 10: brute-force vs pruning vs optimized on BeeGFS,
// OrangeFS, GlusterFS).
func Fig10(h5p workloads.H5Params) []Fig10Row {
	var out []Fig10Row
	for _, fsName := range []string{"beegfs", "orangefs", "glusterfs"} {
		for _, prog := range Programs() {
			for _, mode := range []paracrash.Mode{paracrash.ModeBrute, paracrash.ModePruning, paracrash.ModeOptimized} {
				opts := paracrash.DefaultOptions()
				opts.Mode = mode
				rep, err := RunOne(fsName, prog, opts, h5p, ConfigFor(fsName))
				if err != nil {
					continue
				}
				out = append(out, Fig10Row{
					Program: prog.Name, FS: fsName, Mode: mode,
					Seconds: rep.Stats.Duration.Seconds(), Stats: rep.Stats, Bugs: len(rep.Bugs),
				})
			}
		}
	}
	return out
}

// FormatFig10 renders the Figure 10 comparison.
func FormatFig10(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Figure 10: exploration time by strategy (seconds; states checked / pruned / server restores)\n\n")
	cur := ""
	for _, r := range rows {
		if r.FS != cur {
			cur = r.FS
			fmt.Fprintf(&b, "--- %s ---\n", r.FS)
		}
		fmt.Fprintf(&b, "%-20s %-12s %8.4fs  checked=%-5d pruned=%-5d restores=%-6d bugs=%d\n",
			r.Program, r.Mode, r.Seconds, r.Stats.StatesChecked, r.Stats.StatesPruned, r.Stats.ServerRestores, r.Bugs)
	}
	return b.String()
}

// Fig11Row is one scalability measurement.
type Fig11Row struct {
	Program string
	FS      string
	Servers int
	Mode    paracrash.Mode
	Seconds float64
	States  int
	Bugs    int
}

// Fig11 measures scalability in the number of servers (paper Figure 11:
// HDF5 programs on BeeGFS, OrangeFS, GlusterFS with 4–32 servers; the
// stripe size shrinks as servers grow so files split into more chunks).
// Crash emulation uses end-of-execution fronts, keeping the optimized
// exploration linear while brute-force cut enumeration grows exponentially.
func Fig11(serverCounts []int, h5p workloads.H5Params) []Fig11Row {
	var out []Fig11Row
	progs := []string{"H5-create", "H5-delete", "H5-rename", "H5-resize"}
	for _, fsName := range []string{"beegfs", "orangefs", "glusterfs"} {
		for _, progName := range progs {
			prog, _ := ProgramByName(progName)
			for _, n := range serverCounts {
				conf := ConfigFor(fsName)
				if fsName == "glusterfs" {
					conf.StorageServers = n
				} else {
					conf.MetaServers = n / 2
					conf.StorageServers = n - n/2
				}
				// Shrink the stripe as servers grow (paper: 128KB at 4
				// servers down to 16KB at 32).
				conf.StripeSize = 128 * 4 / int64(n)
				if conf.StripeSize < 16 {
					conf.StripeSize = 16
				}
				opts := paracrash.DefaultOptions()
				opts.Mode = paracrash.ModeOptimized
				opts.Emulator.FrontMode = paracrash.FrontEnd
				rep, err := RunOne(fsName, prog, opts, h5p, conf)
				if err != nil {
					continue
				}
				out = append(out, Fig11Row{
					Program: progName, FS: fsName, Servers: n,
					Mode: opts.Mode, Seconds: rep.Stats.Duration.Seconds(),
					States: rep.Stats.StatesChecked, Bugs: len(rep.Bugs),
				})
			}
		}
	}
	return out
}

// FormatFig11 renders the scalability table.
func FormatFig11(rows []Fig11Row) string {
	var b strings.Builder
	b.WriteString("Figure 11: scalability with the number of servers (optimized exploration)\n\n")
	fmt.Fprintf(&b, "%-12s %-20s %8s %10s %8s %6s\n", "fs", "program", "servers", "seconds", "states", "bugs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-20s %8d %10.4f %8d %6d\n", r.FS, r.Program, r.Servers, r.Seconds, r.States, r.Bugs)
	}
	return b.String()
}

// Speedups reproduces the §6.4 headline numbers on ARVR/BeeGFS: crash
// state counts and per-state reconstruction effort across the strategies.
type SpeedupResult struct {
	BruteStates, PrunedStates     int
	BruteSeconds, PrunedSeconds   float64
	OptimizedSeconds              float64
	BruteRestores, OptRestores    int
	BruteBugs, PrunedBugs, OptBug int
}

// ReportFingerprint canonicalises a report for equality comparison across
// runs: every field except the wall-clock Duration (the one quantity a
// parallel run is allowed to change).
func ReportFingerprint(rep *paracrash.Report) string {
	stats := rep.Stats
	stats.Duration = 0
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|%+v|%d|%d\n", rep.Program, rep.FS, rep.Mode, stats, rep.Inconsistent, rep.LibOnly)
	for _, st := range rep.States {
		fmt.Fprintf(&b, "S %+v\n", st)
	}
	for _, sk := range rep.Skipped {
		fmt.Fprintf(&b, "K %+v\n", sk)
	}
	for _, bug := range rep.Bugs {
		fmt.Fprintf(&b, "B %+v\n", *bug)
	}
	return b.String()
}

// ReportKernel canonicalises a report's verdict content only — program,
// file system, mode, counts, inconsistent states, quarantined states and
// bugs — leaving out Stats entirely. It is the comparison core of the
// representative-equivalence oracle: representative and brute-force-per-
// state runs legitimately differ in effort (StatesChecked, StatesDeduped,
// ServerRestores, …) but must agree on everything the kernel covers.
func ReportKernel(rep *paracrash.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|%d|%d\n", rep.Program, rep.FS, rep.Mode, rep.Inconsistent, rep.LibOnly)
	for _, st := range rep.States {
		fmt.Fprintf(&b, "S %+v\n", st)
	}
	for _, sk := range rep.Skipped {
		fmt.Fprintf(&b, "K %+v\n", sk)
	}
	for _, bug := range rep.Bugs {
		fmt.Fprintf(&b, "B %+v\n", *bug)
	}
	return b.String()
}

// ParallelResult compares serial against parallel exploration of one
// (program, fs) cell.
type ParallelResult struct {
	Workers         int
	SerialSeconds   float64
	ParallelSeconds float64
	Speedup         float64
	// Identical reports whether the two runs produced byte-identical
	// reports (modulo Duration) — the engine's determinism guarantee.
	Identical bool
	States    int
	Bugs      int
}

// ParallelSpeedup measures the worker-pool engine against the serial
// engine on a brute-force exploration (every crash state is checked, so
// the work parallelises fully) and verifies the determinism guarantee.
func ParallelSpeedup(fsName, progName string, h5p workloads.H5Params) (*ParallelResult, error) {
	prog, err := ProgramByName(progName)
	if err != nil {
		return nil, err
	}
	run := func(workers int) (*paracrash.Report, error) {
		opts := paracrash.DefaultOptions()
		opts.Mode = paracrash.ModeBrute
		opts.Workers = workers
		return RunOne(fsName, prog, opts, h5p, ConfigFor(fsName))
	}
	serial, err := run(1)
	if err != nil {
		return nil, err
	}
	workers := runtime.NumCPU()
	par, err := run(workers)
	if err != nil {
		return nil, err
	}
	res := &ParallelResult{
		Workers:         workers,
		SerialSeconds:   serial.Stats.Duration.Seconds(),
		ParallelSeconds: par.Stats.Duration.Seconds(),
		Identical:       ReportFingerprint(serial) == ReportFingerprint(par),
		States:          par.Stats.StatesChecked,
		Bugs:            len(par.Bugs),
	}
	if res.ParallelSeconds > 0 {
		res.Speedup = res.SerialSeconds / res.ParallelSeconds
	}
	return res, nil
}

// Speedups measures the three strategies on one (program, fs) pair.
func Speedups(fsName, progName string, h5p workloads.H5Params) (*SpeedupResult, error) {
	prog, err := ProgramByName(progName)
	if err != nil {
		return nil, err
	}
	res := &SpeedupResult{}
	for _, mode := range []paracrash.Mode{paracrash.ModeBrute, paracrash.ModePruning, paracrash.ModeOptimized} {
		opts := paracrash.DefaultOptions()
		opts.Mode = mode
		// The §6.4 contrast measures the paper's strategies in isolation;
		// representative bucketing would mask the pruning/optimized deltas.
		opts.DisableRepresentative = true
		rep, err := RunOne(fsName, prog, opts, h5p, ConfigFor(fsName))
		if err != nil {
			return nil, err
		}
		switch mode {
		case paracrash.ModeBrute:
			res.BruteStates = rep.Stats.StatesChecked
			res.BruteSeconds = rep.Stats.Duration.Seconds()
			res.BruteRestores = rep.Stats.ServerRestores
			res.BruteBugs = len(rep.Bugs)
		case paracrash.ModePruning:
			res.PrunedStates = rep.Stats.StatesChecked
			res.PrunedSeconds = rep.Stats.Duration.Seconds()
			res.PrunedBugs = len(rep.Bugs)
		case paracrash.ModeOptimized:
			res.OptimizedSeconds = rep.Stats.Duration.Seconds()
			res.OptRestores = rep.Stats.ServerRestores
			res.OptBug = len(rep.Bugs)
		}
	}
	return res, nil
}
