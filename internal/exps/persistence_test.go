package exps

import (
	"strings"
	"testing"

	"paracrash/internal/causality"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// tracedRun returns the causality graph and persist order of a program's
// traced execution on a file system.
func tracedRun(t *testing.T, fsName, progName string) (*causality.Graph, *causality.PersistOrder) {
	t.Helper()
	prog, err := ProgramByName(progName)
	if err != nil {
		t.Fatal(err)
	}
	conf := ConfigFor(fsName)
	if prog.Placement != nil && fsName != "glusterfs" {
		conf.FilePlacement = prog.Placement
	}
	rec := trace.NewRecorder()
	fs, err := NewFS(fsName, conf, rec)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := prog.Make(workloads.DefaultH5Params())
	rec.SetEnabled(false)
	if err := w.Preamble(fs); err != nil {
		t.Fatal(err)
	}
	rec.Reset()
	rec.SetEnabled(true)
	if err := w.Run(fs); err != nil {
		t.Fatal(err)
	}
	rec.SetEnabled(false)
	g := causality.Build(rec.Ops())
	var universe []int
	for i, o := range g.Ops {
		if o.IsLowermost() && o.Payload != nil {
			universe = append(universe, i)
		}
	}
	return g, causality.NewPersistOrder(g, universe, fs.PersistConfig())
}

// findOp locates the first lowermost node whose name+tag match.
func findOp(g *causality.Graph, name, tag string) int {
	for i, o := range g.Ops {
		if o.IsLowermost() && o.Payload != nil && o.Name == name && strings.Contains(o.Tag, tag) {
			return i
		}
	}
	return -1
}

// TestBeeGFSPersistSemantics verifies Algorithm 2 over the real ARVR trace:
// the storage append is causally before but NOT persist-before the
// metadata rename (bug #1's root), while the metadata server's own ops are
// persist-ordered under data journaling.
func TestBeeGFSPersistSemantics(t *testing.T) {
	g, po := tracedRun(t, "beegfs", "ARVR")
	app := findOp(g, "append", "chunk")
	ren := findOp(g, "rename", "dentry")
	unl := findOp(g, "unlink", "chunk")
	crt := findOp(g, "creat", "idfile")
	if app < 0 || ren < 0 || unl < 0 || crt < 0 {
		t.Fatalf("trace shape unexpected: %d %d %d %d", app, ren, unl, crt)
	}
	if !g.HB(app, ren) {
		t.Error("append must happen-before rename (client order)")
	}
	if po.PersistsBefore(app, ren) {
		t.Error("append must NOT persist-before rename — that is bug #1's exposure")
	}
	if po.PersistsBefore(ren, unl) {
		t.Error("rename must NOT persist-before the storage unlink — bug #2's exposure")
	}
	if !po.PersistsBefore(crt, ren) {
		t.Error("same-metadata-server ops must stay ordered under data journaling")
	}
}

// TestOrangeFSPersistSemantics: the per-update fdatasync commits metadata
// across servers — the rename's DB write persists before everything that
// causally follows it, which is why bugs #2 and #5 vanish on OrangeFS.
func TestOrangeFSPersistSemantics(t *testing.T) {
	g, po := tracedRun(t, "orangefs", "ARVR")
	// The rename-phase keyval write (the dentry update pointing foo at the
	// new bstream) and the post-commit stranded unlink.
	var dbWrite, strandedUnlink int = -1, -1
	for i, o := range g.Ops {
		if !o.IsLowermost() || o.Payload == nil {
			continue
		}
		if o.Name == "pwrite" && strings.Contains(o.Path, "keyval.db") {
			dbWrite = i // the last keyval write is the rename commit
		}
		if o.Name == "unlink" && strings.Contains(o.Path, "stranded") {
			strandedUnlink = i
		}
	}
	if dbWrite < 0 || strandedUnlink < 0 {
		t.Fatalf("trace shape unexpected: db=%d stranded=%d", dbWrite, strandedUnlink)
	}
	if !po.PersistsBefore(dbWrite, strandedUnlink) {
		t.Error("the fdatasync'd DB commit must persist before the stranded unlink — OrangeFS's bug #2 defence")
	}
}

// clientAncestor walks the caller chain to the owning PFS client op.
func clientAncestor(g *causality.Graph, i int) int {
	cur := g.Ops[i]
	for cur != nil {
		if cur.Layer == trace.LayerPFS && !cur.IsComm() {
			idx, _ := g.IndexOf(cur.ID)
			return idx
		}
		if cur.Parent <= 0 {
			return -1
		}
		pi, ok := g.IndexOf(cur.Parent)
		if !ok {
			return -1
		}
		cur = g.Ops[pi]
	}
	return -1
}

// TestLustreCrossTransactionOrdering: with a barrier ending every write
// group, writes of different client operations are always persist-ordered
// when causally ordered — the property that makes Lustre clean on POSIX
// programs. (Writes inside one barrier group may still reorder; recovery's
// journal replay makes that harmless.)
func TestLustreCrossTransactionOrdering(t *testing.T) {
	g, po := tracedRun(t, "lustre", "ARVR")
	checked := 0
	for i, oi := range g.Ops {
		if !oi.IsLowermost() || oi.Payload == nil || oi.Sync {
			continue
		}
		for j, oj := range g.Ops {
			if i == j || !oj.IsLowermost() || oj.Payload == nil || oj.Sync {
				continue
			}
			if !g.HB(i, j) || clientAncestor(g, i) == clientAncestor(g, j) {
				continue
			}
			checked++
			if !po.PersistsBefore(i, j) {
				t.Fatalf("Lustre: cross-transaction %s hb %s but not persist-ordered", oi.Key(), oj.Key())
			}
		}
	}
	if checked == 0 {
		t.Fatal("no cross-transaction pairs checked")
	}
}

// TestGPFSPersistIsUnordered: without barriers, block writes of different
// transactions are never persist-ordered, even when causally ordered — the
// freedom behind bugs #3-#5.
func TestGPFSPersistIsUnordered(t *testing.T) {
	g, po := tracedRun(t, "gpfs", "ARVR")
	ordered := 0
	pairs := 0
	for i, oi := range g.Ops {
		if !oi.IsLowermost() || oi.Payload == nil {
			continue
		}
		for j, oj := range g.Ops {
			if i == j || !oj.IsLowermost() || oj.Payload == nil {
				continue
			}
			if g.HB(i, j) {
				pairs++
				if po.PersistsBefore(i, j) {
					ordered++
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no pairs")
	}
	if ordered != 0 {
		t.Fatalf("GPFS has %d persist-ordered pairs of %d; barrier-free writes must be free", ordered, pairs)
	}
}
