package exps

import (
	"fmt"
	"strings"

	"paracrash/internal/paracrash"
	"paracrash/internal/vfs"
	"paracrash/internal/workloads"
)

// Sensitivity reproduces the sensitivity studies behind Table 3's rightmost
// column (§6.2): dataset dimensions, client counts, file distribution,
// victim count k, and the journaling-mode configuration note.
func Sensitivity() string {
	var b strings.Builder
	b.WriteString("Sensitivity studies (Table 3 rightmost column, §6.2)\n\n")

	// Dataset dimensions: the chunk B-tree split behind bug #14.
	b.WriteString("dimensions (H5-resize on Lustre; bug #14 needs the chunk B-tree to split):\n")
	for _, dims := range [][2]int{{8, 8}, {10, 10}} {
		p := workloads.DefaultH5Params()
		p.ResizeRows, p.ResizeCols = dims[0], dims[1]
		prog, _ := ProgramByName("H5-resize")
		rep, err := RunOne("lustre", prog, paracrash.DefaultOptions(), p, ConfigFor("lustre"))
		if err != nil {
			fmt.Fprintf(&b, "  %dx%d: error: %v\n", dims[0], dims[1], err)
			continue
		}
		split := false
		for _, bug := range rep.Bugs {
			if strings.Contains(bug.Consequence, "wrong B-tree signature") {
				split = true
			}
		}
		fmt.Fprintf(&b, "  %dx%d: %d inconsistent, B-tree-split bug present: %v\n",
			dims[0], dims[1], rep.Inconsistent, split)
	}

	// Client count: the SNOD split behind bug #9.
	b.WriteString("\nclients (H5-parallel-create on Lustre, 3 preamble datasets; bug #9 needs the SNOD to split):\n")
	for _, clients := range []int{1, 2} {
		p := workloads.DefaultH5Params()
		p.Clients = clients
		p.PerGroup = 3
		prog, _ := ProgramByName("H5-parallel-create")
		rep, err := RunOne("lustre", prog, paracrash.DefaultOptions(), p, ConfigFor("lustre"))
		if err != nil {
			fmt.Fprintf(&b, "  %d client(s): error: %v\n", clients, err)
			continue
		}
		fmt.Fprintf(&b, "  %d client(s): %d inconsistent, %d bugs\n", clients, rep.Inconsistent, len(rep.Bugs))
	}

	// File distribution: bug #6 on GlusterFS.
	b.WriteString("\nfile distribution (WAL on GlusterFS; bug #6 needs the log on another brick):\n")
	for _, distributed := range []bool{false, true} {
		prog, _ := ProgramByName("WAL")
		if distributed {
			prog.GlusterPlacement = map[string]int{"/foo": 0, "/log": 1}
		} else {
			prog.GlusterPlacement = nil
		}
		rep, err := RunOne("glusterfs", prog, paracrash.DefaultOptions(), workloads.DefaultH5Params(), ConfigFor("glusterfs"))
		if err != nil {
			fmt.Fprintf(&b, "  distributed=%v: error: %v\n", distributed, err)
			continue
		}
		fmt.Fprintf(&b, "  distributed=%v: %d inconsistent, %d bugs\n", distributed, rep.Inconsistent, len(rep.Bugs))
	}

	// Victim count k.
	b.WriteString("\nvictims k (ARVR on BeeGFS; the paper found no new bugs past k=1):\n")
	for _, k := range []int{1, 2} {
		prog, _ := ProgramByName("ARVR")
		opts := paracrash.DefaultOptions()
		opts.Emulator.K = k
		rep, err := RunOne("beegfs", prog, opts, workloads.DefaultH5Params(), ConfigFor("beegfs"))
		if err != nil {
			fmt.Fprintf(&b, "  k=%d: error: %v\n", k, err)
			continue
		}
		fmt.Fprintf(&b, "  k=%d: %d states generated, %d bugs\n", k, rep.Stats.StatesGenerated, len(rep.Bugs))
	}

	// Journaling mode (the Table 2 "data journaling, its safest mode" note).
	b.WriteString("\nlocal journaling mode (ARVR on ext4):\n")
	for _, mode := range []vfs.JournalMode{vfs.JournalData, vfs.JournalOrdered, vfs.JournalWriteback} {
		prog, _ := ProgramByName("ARVR")
		conf := ConfigFor("ext4")
		conf.Journal = mode
		rep, err := RunOne("ext4", prog, paracrash.DefaultOptions(), workloads.DefaultH5Params(), conf)
		if err != nil {
			fmt.Fprintf(&b, "  %-16s error: %v\n", mode, err)
			continue
		}
		fmt.Fprintf(&b, "  %-16s %d inconsistent, %d bugs\n", mode, rep.Inconsistent, len(rep.Bugs))
	}
	return b.String()
}
