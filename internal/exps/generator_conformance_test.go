package exps

import (
	"testing"

	"paracrash/internal/paracrash"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// TestGeneratorBackendConformance is the generator × backend conformance
// matrix: every generated workload must run cleanly on every backend (the
// generator's namespace model matches each file system's semantics) and
// repeated explorations must produce byte-identical reports (the whole
// pipeline — trace, graph, emulation, reconstruction, recovery, check,
// classification — is deterministic per backend). The fuzz campaign builds
// on both properties; this pins them directly.
func TestGeneratorBackendConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("backend matrix in -short mode")
	}
	const seeds = 8
	for _, fsName := range FSNames() {
		fsName := fsName
		t.Run(fsName, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seeds; seed++ {
				prog := workloads.Generate(workloads.DefaultGenConfig(seed))
				explore := func() *paracrash.Report {
					t.Helper()
					fs, err := NewFS(fsName, ConfigFor(fsName), trace.NewRecorder())
					if err != nil {
						t.Fatal(err)
					}
					opts := paracrash.DefaultOptions()
					opts.Workers = 1
					rep, err := paracrash.Run(fs, nil, prog, opts)
					if err != nil {
						t.Fatalf("seed %d does not run cleanly on %s: %v", seed, fsName, err)
					}
					return rep
				}
				first, second := explore(), explore()
				if ReportFingerprint(first) != ReportFingerprint(second) {
					t.Fatalf("seed %d explores nondeterministically on %s:\nfirst:\n%s\nsecond:\n%s",
						seed, fsName, ReportFingerprint(first), ReportFingerprint(second))
				}
				if first.Stats.StatesChecked == 0 {
					t.Fatalf("seed %d on %s checked no crash states", seed, fsName)
				}
			}
		})
	}
}
