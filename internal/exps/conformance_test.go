package exps

import (
	"bytes"
	"fmt"
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

// TestClientConformance drives the same operation sequence through every
// file system's client and checks the mounted logical namespace, exercising
// striping, rename/replace, unlink, directories and fsync on each
// implementation.
func TestClientConformance(t *testing.T) {
	for _, fsName := range FSNames() {
		t.Run(fsName, func(t *testing.T) {
			fs, err := NewFS(fsName, ConfigFor(fsName), trace.NewRecorder())
			if err != nil {
				t.Fatal(err)
			}
			c := fs.Client(0)
			must := func(err error) {
				t.Helper()
				if err != nil {
					t.Fatal(err)
				}
			}
			must(c.Mkdir("/dir"))
			must(c.Create("/dir/a"))
			// Multi-stripe content (larger than the 128-byte stripe).
			content := bytes.Repeat([]byte("0123456789abcdef"), 20) // 320 bytes
			must(c.WriteAt("/dir/a", 0, content))
			must(c.Fsync("/dir/a"))
			must(c.Close("/dir/a"))
			must(c.Create("/dir/b"))
			must(c.WriteAt("/dir/b", 0, []byte("bee")))
			must(c.Close("/dir/b"))
			// Replace b with a.
			must(c.Rename("/dir/a", "/dir/b"))
			must(c.Create("/gone"))
			must(c.Close("/gone"))
			must(c.Unlink("/gone"))

			// Read-back through the client.
			got, err := c.Read("/dir/b")
			must(err)
			if !bytes.Equal(got, content) {
				t.Fatalf("read after rename: %d bytes, want %d", len(got), len(content))
			}

			// Mounted namespace.
			if err := fs.Recover(); err != nil {
				t.Fatalf("Recover on a clean state: %v", err)
			}
			tree, err := fs.Mount()
			must(err)
			want := pfs.NewTree()
			want.AddDir("/dir")
			want.AddFile("/dir/b", content)
			if d := tree.Diff(want); d != "" {
				t.Fatalf("mounted tree differs:\n%s\ngot:\n%s", d, tree.Serialize())
			}

			// Overwrite part of a stripe and append via Append.
			must(c.WriteAt("/dir/b", 130, []byte("ZZ")))
			must(c.Append("/dir/b", []byte("tail")))
			got, err = c.Read("/dir/b")
			must(err)
			if len(got) != len(content)+4 || got[130] != 'Z' || string(got[len(got)-4:]) != "tail" {
				t.Fatalf("overwrite/append wrong: len=%d byte130=%q tail=%q",
					len(got), got[130], got[len(got)-4:])
			}

			// Errors: operating on missing files.
			if err := c.WriteAt("/nope", 0, []byte("x")); err == nil {
				t.Error("write to missing file should fail")
			}
			if err := c.Unlink("/nope"); err == nil {
				t.Error("unlink of missing file should fail")
			}
			if _, err := c.Read("/nope"); err == nil {
				t.Error("read of missing file should fail")
			}
		})
	}
}

// TestSnapshotRestoreRoundTrip verifies every file system's state
// restoration: after arbitrary operations, Restore returns the mounted
// tree to the snapshot exactly.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, fsName := range FSNames() {
		t.Run(fsName, func(t *testing.T) {
			fs, err := NewFS(fsName, ConfigFor(fsName), trace.NewRecorder())
			if err != nil {
				t.Fatal(err)
			}
			c := fs.Client(0)
			if err := c.Create("/base"); err != nil {
				t.Fatal(err)
			}
			if err := c.WriteAt("/base", 0, []byte("before")); err != nil {
				t.Fatal(err)
			}
			snap := fs.Snapshot()
			treeBefore, err := fs.Mount()
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Create("/extra"); err != nil {
				t.Fatal(err)
			}
			if err := c.WriteAt("/base", 0, []byte("after!")); err != nil {
				t.Fatal(err)
			}
			fs.Restore(snap)
			treeAfter, err := fs.Mount()
			if err != nil {
				t.Fatal(err)
			}
			if treeBefore.Serialize() != treeAfter.Serialize() {
				t.Fatalf("restore mismatch:\n%s\nvs\n%s", treeBefore.Serialize(), treeAfter.Serialize())
			}
		})
	}
}

// TestDirectoriesAcrossServers exercises nested directories, which the
// metadata-server implementations distribute round-robin.
func TestDirectoriesAcrossServers(t *testing.T) {
	for _, fsName := range FSNames() {
		t.Run(fsName, func(t *testing.T) {
			fs, err := NewFS(fsName, ConfigFor(fsName), trace.NewRecorder())
			if err != nil {
				t.Fatal(err)
			}
			c := fs.Client(0)
			for i := 0; i < 4; i++ {
				d := fmt.Sprintf("/d%d", i)
				if err := c.Mkdir(d); err != nil {
					t.Fatal(err)
				}
				if err := c.Create(d + "/f"); err != nil {
					t.Fatal(err)
				}
				if err := c.WriteAt(d+"/f", 0, []byte{byte('0' + i)}); err != nil {
					t.Fatal(err)
				}
			}
			tree, err := fs.Mount()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				e, ok := tree.Entries[fmt.Sprintf("/d%d/f", i)]
				if !ok || string(e.Data) != string(byte('0'+i)) {
					t.Fatalf("missing or wrong /d%d/f in:\n%s", i, tree.Serialize())
				}
			}
		})
	}
}
