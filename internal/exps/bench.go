package exps

import (
	"encoding/json"
	"time"

	"paracrash/internal/obs"
	"paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// BenchRecord is one row of the BENCH_*.json trajectory: a (program, fs,
// mode) run with its end-of-run Stats and the observability summary (phase
// timings, counters, gauges). Successive PRs append files with the same
// shape, so effort regressions show up as counter/timer diffs.
type BenchRecord struct {
	Program string `json:"program"`
	FS      string `json:"fs"`
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	// Representative records whether the cell ran with representative-state
	// exploration (recovered-content equivalence classes); the trajectory
	// keeps one brute-force contrast cell with it off so the
	// StatesChecked/StatesDeduped drop is visible inside a single file.
	Representative bool `json:"representative"`
	// Incremental records whether the cell ran with O(delta) incremental
	// reconstruction (prefix-root restore + delta replay); the trajectory
	// keeps one contrast cell with it off so the ServerRestores/OpsReplayed
	// collapse is visible inside a single file.
	Incremental bool    `json:"incremental"`
	Seconds     float64 `json:"seconds"`
	// StatesPerSec is the verdict throughput: states covered per second,
	// counting both reconstructed representatives and class-attributed
	// members (Stats.StatesChecked + Stats.StatesDeduped over Seconds).
	StatesPerSec float64 `json:"states_per_sec"`
	// RestoresPerState is the reconstruction amortisation: server restores
	// charged per covered state. The legacy engine pays one restore per
	// server per reconstructed state; the incremental engine pays one per
	// *changed* server, so this is the bench field that proves the O(delta)
	// win (strictly below the per-state restore count of the legacy cell).
	RestoresPerState float64         `json:"restores_per_state"`
	Bugs             int             `json:"bugs"`
	Stats            paracrash.Stats `json:"stats"`
	Obs              *obs.Summary    `json:"obs"`
	Err              string          `json:"error,omitempty"`
}

// BenchSummary is the whole BENCH_*.json document.
type BenchSummary struct {
	GeneratedAt time.Time     `json:"generated_at"`
	Records     []BenchRecord `json:"records"`
}

// benchCells is the fixed benchmark trajectory: the §6.4 strategy contrast
// on ARVR/BeeGFS plus one representative cell per remaining file system.
// The first cells differ only in the representative-exploration and
// incremental-reconstruction knobs, so every BENCH_*.json carries its own
// brute-force and full-restore baselines for the class-attribution and
// O(delta) savings.
var benchCells = []struct {
	fs, prog string
	mode     paracrash.Mode
	workers  int
	norep    bool
	noinc    bool
}{
	{"beegfs", "ARVR", paracrash.ModeBrute, 1, true, true}, // exhaustive full-restore baseline
	{"beegfs", "ARVR", paracrash.ModeBrute, 1, true, false},
	{"beegfs", "ARVR", paracrash.ModeBrute, 1, false, false},
	{"beegfs", "ARVR", paracrash.ModeBrute, 0, false, false}, // parallel, one worker per CPU
	{"beegfs", "ARVR", paracrash.ModePruning, 1, false, false},
	{"beegfs", "ARVR", paracrash.ModeOptimized, 1, false, false},
	{"orangefs", "CR", paracrash.ModePruning, 1, false, false},
	{"glusterfs", "WAL", paracrash.ModePruning, 1, false, false},
	{"gpfs", "H5-create", paracrash.ModePruning, 1, false, false},
	{"lustre", "H5-resize", paracrash.ModePruning, 1, false, false},
	{"ext4", "CR", paracrash.ModePruning, 1, false, false},
}

// benchReps is how many times each cell runs; the fastest run's duration
// is reported. A cell takes single-digit milliseconds, so a one-shot
// measurement is dominated by process warm-up (allocator growth, first-GC)
// noise — every run of a cell is deterministic and does identical work, so
// the minimum duration is the cell's actual steady-state throughput.
const benchReps = 5

// Bench runs the benchmark trajectory with observability enabled and
// returns the summary document. Each cell gets its own obs run, so the
// per-cell phase timings and counters are independent; the obs summary
// kept is the fastest repetition's.
func Bench(h5p workloads.H5Params) *BenchSummary {
	sum := &BenchSummary{GeneratedAt: time.Now().UTC()}
	for _, cell := range benchCells {
		prog, err := ProgramByName(cell.prog)
		if err != nil {
			sum.Records = append(sum.Records, BenchRecord{Program: cell.prog, FS: cell.fs, Err: err.Error()})
			continue
		}
		rec := BenchRecord{
			Program: cell.prog, FS: cell.fs,
			Mode: cell.mode.String(), Workers: cell.workers,
			Representative: !cell.norep,
			Incremental:    !cell.noinc,
		}
		var best *paracrash.Report
		var bestObs *obs.Run
		for i := 0; i < benchReps; i++ {
			run := obs.NewRun()
			opts := paracrash.DefaultOptions()
			opts.Mode = cell.mode
			opts.Workers = cell.workers
			opts.DisableRepresentative = cell.norep
			opts.DisableIncremental = cell.noinc
			opts.Obs = run
			rep, err := RunOne(cell.fs, prog, opts, h5p, ConfigFor(cell.fs))
			if err != nil {
				rec.Err = err.Error()
				break
			}
			if best == nil || rep.Stats.Duration < best.Stats.Duration {
				best, bestObs = rep, run
			}
		}
		if best != nil && rec.Err == "" {
			rec.Seconds = best.Stats.Duration.Seconds()
			rec.Bugs = len(best.Bugs)
			rec.Stats = best.Stats
			if rec.Seconds > 0 {
				rec.StatesPerSec = float64(best.Stats.StatesChecked+best.Stats.StatesDeduped) / rec.Seconds
			}
			if covered := best.Stats.StatesChecked + best.Stats.StatesDeduped; covered > 0 {
				rec.RestoresPerState = float64(best.Stats.ServerRestores) / float64(covered)
			}
			rec.Obs = bestObs.Summary()
		}
		sum.Records = append(sum.Records, rec)
	}
	return sum
}

// JSON renders the summary indented for the BENCH_*.json file.
func (s *BenchSummary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
