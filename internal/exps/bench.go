package exps

import (
	"encoding/json"
	"time"

	"paracrash/internal/obs"
	"paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// BenchRecord is one row of the BENCH_*.json trajectory: a (program, fs,
// mode) run with its end-of-run Stats and the observability summary (phase
// timings, counters, gauges). Successive PRs append files with the same
// shape, so effort regressions show up as counter/timer diffs.
type BenchRecord struct {
	Program string `json:"program"`
	FS      string `json:"fs"`
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	// Representative records whether the cell ran with representative-state
	// exploration (recovered-content equivalence classes); the trajectory
	// keeps one brute-force contrast cell with it off so the
	// StatesChecked/StatesDeduped drop is visible inside a single file.
	Representative bool    `json:"representative"`
	Seconds        float64 `json:"seconds"`
	// StatesPerSec is the verdict throughput: states covered per second,
	// counting both reconstructed representatives and class-attributed
	// members (Stats.StatesChecked + Stats.StatesDeduped over Seconds).
	StatesPerSec float64         `json:"states_per_sec"`
	Bugs         int             `json:"bugs"`
	Stats        paracrash.Stats `json:"stats"`
	Obs          *obs.Summary    `json:"obs"`
	Err          string          `json:"error,omitempty"`
}

// BenchSummary is the whole BENCH_*.json document.
type BenchSummary struct {
	GeneratedAt time.Time     `json:"generated_at"`
	Records     []BenchRecord `json:"records"`
}

// benchCells is the fixed benchmark trajectory: the §6.4 strategy contrast
// on ARVR/BeeGFS plus one representative cell per remaining file system.
// The first two cells differ only in the representative-exploration knob,
// so every BENCH_*.json carries its own brute-force baseline for the
// class-attribution savings.
var benchCells = []struct {
	fs, prog string
	mode     paracrash.Mode
	workers  int
	norep    bool
}{
	{"beegfs", "ARVR", paracrash.ModeBrute, 1, true}, // exhaustive baseline
	{"beegfs", "ARVR", paracrash.ModeBrute, 1, false},
	{"beegfs", "ARVR", paracrash.ModeBrute, 0, false}, // parallel, one worker per CPU
	{"beegfs", "ARVR", paracrash.ModePruning, 1, false},
	{"beegfs", "ARVR", paracrash.ModeOptimized, 1, false},
	{"orangefs", "CR", paracrash.ModePruning, 1, false},
	{"glusterfs", "WAL", paracrash.ModePruning, 1, false},
	{"gpfs", "H5-create", paracrash.ModePruning, 1, false},
	{"lustre", "H5-resize", paracrash.ModePruning, 1, false},
	{"ext4", "CR", paracrash.ModePruning, 1, false},
}

// Bench runs the benchmark trajectory with observability enabled and
// returns the summary document. Each cell gets its own obs run, so the
// per-cell phase timings and counters are independent.
func Bench(h5p workloads.H5Params) *BenchSummary {
	sum := &BenchSummary{GeneratedAt: time.Now().UTC()}
	for _, cell := range benchCells {
		prog, err := ProgramByName(cell.prog)
		if err != nil {
			sum.Records = append(sum.Records, BenchRecord{Program: cell.prog, FS: cell.fs, Err: err.Error()})
			continue
		}
		run := obs.NewRun()
		opts := paracrash.DefaultOptions()
		opts.Mode = cell.mode
		opts.Workers = cell.workers
		opts.DisableRepresentative = cell.norep
		opts.Obs = run
		rec := BenchRecord{
			Program: cell.prog, FS: cell.fs,
			Mode: cell.mode.String(), Workers: cell.workers,
			Representative: !cell.norep,
		}
		rep, err := RunOne(cell.fs, prog, opts, h5p, ConfigFor(cell.fs))
		if err != nil {
			rec.Err = err.Error()
		} else {
			rec.Seconds = rep.Stats.Duration.Seconds()
			rec.Bugs = len(rep.Bugs)
			rec.Stats = rep.Stats
			if rec.Seconds > 0 {
				rec.StatesPerSec = float64(rep.Stats.StatesChecked+rep.Stats.StatesDeduped) / rec.Seconds
			}
		}
		rec.Obs = run.Summary()
		sum.Records = append(sum.Records, rec)
	}
	return sum
}

// JSON renders the summary indented for the BENCH_*.json file.
func (s *BenchSummary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
