package exps

import (
	"encoding/json"
	"fmt"
	"time"

	"paracrash/internal/obs"
	"paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// BenchRecord is one row of the BENCH_*.json trajectory: a (program, fs,
// mode) run with its end-of-run Stats and the observability summary (phase
// timings, counters, gauges). Successive PRs append files with the same
// shape, so effort regressions show up as counter/timer diffs.
type BenchRecord struct {
	Program string `json:"program"`
	FS      string `json:"fs"`
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	// Representative records whether the cell ran with representative-state
	// exploration (recovered-content equivalence classes); the trajectory
	// keeps one brute-force contrast cell with it off so the
	// StatesChecked/StatesDeduped drop is visible inside a single file.
	Representative bool `json:"representative"`
	// Incremental records whether the cell ran with O(delta) incremental
	// reconstruction (prefix-root restore + delta replay); the trajectory
	// keeps one contrast cell with it off so the ServerRestores/OpsReplayed
	// collapse is visible inside a single file.
	Incremental bool    `json:"incremental"`
	Seconds     float64 `json:"seconds"`
	// StatesPerSec is the verdict throughput: states covered per second,
	// counting both reconstructed representatives and class-attributed
	// members (Stats.StatesChecked + Stats.StatesDeduped over Seconds).
	StatesPerSec float64 `json:"states_per_sec"`
	// RestoresPerState is the reconstruction amortisation: server restores
	// charged per covered state. The legacy engine pays one restore per
	// server per reconstructed state; the incremental engine pays one per
	// *changed* server, so this is the bench field that proves the O(delta)
	// win (strictly below the per-state restore count of the legacy cell).
	RestoresPerState float64         `json:"restores_per_state"`
	Bugs             int             `json:"bugs"`
	Stats            paracrash.Stats `json:"stats"`
	Obs              *obs.Summary    `json:"obs"`
	Err              string          `json:"error,omitempty"`
}

// FleetBenchRecord is the fleet cell of the BENCH_*.json trajectory: a
// coordinator + N workers + M tenants storm driven end to end through the
// HTTP API by the load generator (internal/serve.RunLoad). It measures the
// service path — admission control, fair scheduling, shard dispatch, lease
// claims and the merge — where BenchRecord measures the bare engine.
type FleetBenchRecord struct {
	// Workers is the fleet's worker-process count; Tenants the number of
	// distinct API keys the load rotates through; Shards the partition
	// width each job requests.
	Workers int `json:"workers"`
	Tenants int `json:"tenants"`
	Shards  int `json:"shards"`
	// Jobs/Concurrency describe the storm; Done/Failed/Rejected its
	// outcome (Rejected counts retried 429 pushback, not failures).
	Jobs        int `json:"jobs"`
	Concurrency int `json:"concurrency"`
	Done        int `json:"done"`
	Failed      int `json:"failed"`
	Rejected    int `json:"rejected"`
	// Seconds is the storm's wall clock; JobsPerSec the headline
	// throughput the benchgate budgets.
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// P50/P95/P99 are submit-to-terminal latency percentiles in seconds.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Err string  `json:"error,omitempty"`
}

// BenchSummary is the whole BENCH_*.json document.
type BenchSummary struct {
	GeneratedAt time.Time     `json:"generated_at"`
	Records     []BenchRecord `json:"records"`
	// Fleet is the coordinator/worker/tenant throughput cell, filled by
	// callers with access to the service layer (cmd/experiments wires
	// serve.BenchFleet in); older trajectory files simply omit it.
	Fleet *FleetBenchRecord `json:"fleet,omitempty"`
}

// benchCell is one row of the fixed benchmark trajectory.
type benchCell struct {
	fs, prog string
	mode     paracrash.Mode
	workers  int
	norep    bool
	noinc    bool
	// fast marks the cells of the quick `make benchgate` subset: the
	// headline ARVR/BeeGFS cell plus one cheap contrast per axis, enough
	// to catch a hot-path regression in seconds.
	fast bool
}

// benchCells is the fixed benchmark trajectory: the §6.4 strategy contrast
// on ARVR/BeeGFS plus one representative cell per remaining file system.
// The first cells differ only in the representative-exploration and
// incremental-reconstruction knobs, so every BENCH_*.json carries its own
// brute-force and full-restore baselines for the class-attribution and
// O(delta) savings.
var benchCells = []benchCell{
	{"beegfs", "ARVR", paracrash.ModeBrute, 1, true, true, false}, // exhaustive full-restore baseline
	{"beegfs", "ARVR", paracrash.ModeBrute, 1, true, false, false},
	{"beegfs", "ARVR", paracrash.ModeBrute, 1, false, false, true},
	{"beegfs", "ARVR", paracrash.ModeBrute, 0, false, false, true}, // parallel, one worker per CPU
	{"beegfs", "ARVR", paracrash.ModePruning, 1, false, false, false},
	{"beegfs", "ARVR", paracrash.ModeOptimized, 1, false, false, false},
	{"orangefs", "CR", paracrash.ModePruning, 1, false, false, false},
	{"glusterfs", "WAL", paracrash.ModePruning, 1, false, false, false},
	{"gpfs", "H5-create", paracrash.ModePruning, 1, false, false, false},
	{"lustre", "H5-resize", paracrash.ModePruning, 1, false, false, false},
	{"ext4", "CR", paracrash.ModePruning, 1, false, false, true},
}

// benchReps is how many times each cell runs; the fastest run's duration
// is reported. A cell takes single-digit milliseconds, so a one-shot
// measurement is dominated by process warm-up (allocator growth, first-GC)
// noise — every run of a cell is deterministic and does identical work, so
// the minimum duration is the cell's actual steady-state throughput.
const benchReps = 5

// Bench runs the full benchmark trajectory with observability enabled and
// returns the summary document. Each cell gets its own obs run, so the
// per-cell phase timings and counters are independent; the obs summary
// kept is the fastest repetition's. Optional sinks receive every cell's
// metrics through the telemetry pipeline (see BenchCells).
func Bench(h5p workloads.H5Params, sinks ...obs.MetricSink) *BenchSummary {
	sum, _ := BenchCells(h5p, "all", sinks...)
	return sum
}

// BenchCells runs the named subset of the benchmark trajectory: "all"
// (every cell) or "fast" (the quick benchgate subset). Each finished
// cell's best-run metrics are routed through the telemetry pipeline to the
// given sinks — the cell's counters, gauges and timers under a
// program/fs/mode job label, plus the derived bench/states-per-sec and
// bench/restores-per-state gauges the regression gate budgets.
func BenchCells(h5p workloads.H5Params, subset string, sinks ...obs.MetricSink) (*BenchSummary, error) {
	var cells []benchCell
	switch subset {
	case "all":
		cells = benchCells
	case "fast":
		for _, c := range benchCells {
			if c.fast {
				cells = append(cells, c)
			}
		}
	default:
		return nil, fmt.Errorf("exps: unknown bench cell subset %q (want all or fast)", subset)
	}

	sum := &BenchSummary{GeneratedAt: time.Now().UTC()}
	for _, cell := range cells {
		prog, err := ProgramByName(cell.prog)
		if err != nil {
			sum.Records = append(sum.Records, BenchRecord{Program: cell.prog, FS: cell.fs, Err: err.Error()})
			continue
		}
		rec := BenchRecord{
			Program: cell.prog, FS: cell.fs,
			Mode: cell.mode.String(), Workers: cell.workers,
			Representative: !cell.norep,
			Incremental:    !cell.noinc,
		}
		var best *paracrash.Report
		var bestObs *obs.Run
		for i := 0; i < benchReps; i++ {
			run := obs.NewRun()
			opts := paracrash.DefaultOptions()
			opts.Mode = cell.mode
			opts.Workers = cell.workers
			opts.DisableRepresentative = cell.norep
			opts.DisableIncremental = cell.noinc
			opts.Obs = run
			rep, err := RunOne(cell.fs, prog, opts, h5p, ConfigFor(cell.fs))
			if err != nil {
				rec.Err = err.Error()
				break
			}
			if best == nil || rep.Stats.Duration < best.Stats.Duration {
				best, bestObs = rep, run
			}
		}
		if best != nil && rec.Err == "" {
			rec.Seconds = best.Stats.Duration.Seconds()
			rec.Bugs = len(best.Bugs)
			rec.Stats = best.Stats
			if rec.Seconds > 0 {
				rec.StatesPerSec = float64(best.Stats.StatesChecked+best.Stats.StatesDeduped) / rec.Seconds
			}
			if covered := best.Stats.StatesChecked + best.Stats.StatesDeduped; covered > 0 {
				rec.RestoresPerState = float64(best.Stats.ServerRestores) / float64(covered)
			}
			rec.Obs = bestObs.Summary()
			emitBenchCell(rec, bestObs, sinks)
		}
		sum.Records = append(sum.Records, rec)
	}
	return sum, nil
}

// emitBenchCell publishes one finished cell's metrics through a telemetry
// router to the attached sinks: the best repetition's collector under the
// cell's job label, plus the derived throughput gauges the benchgate
// budgets. A cell with no sinks costs nothing.
func emitBenchCell(rec BenchRecord, run *obs.Run, sinks []obs.MetricSink) {
	if len(sinks) == 0 {
		return
	}
	label := fmt.Sprintf("%s/%s/%s/workers=%d", rec.Program, rec.FS, rec.Mode, rec.Workers)
	router := obs.NewRouter()
	router.Attach(label, obs.CollectorFunc(func(dst []obs.Metric) []obs.Metric {
		dst = run.CollectMetrics(dst)
		return append(dst,
			obs.Metric{Name: "bench/states-per-sec", Kind: obs.KindGauge, Value: rec.StatesPerSec},
			obs.Metric{Name: "bench/restores-per-state", Kind: obs.KindGauge, Value: rec.RestoresPerState},
			obs.Metric{Name: "bench/seconds", Kind: obs.KindGauge, Value: rec.Seconds},
		)
	}))
	for _, s := range sinks {
		router.AddSink(s)
	}
	router.Publish()
	router.Close()
}

// JSON renders the summary indented for the BENCH_*.json file.
func (s *BenchSummary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
