package exps

import (
	"strings"
	"testing"

	"paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// TestTable3Aggregation runs the full matrix and checks the aggregated bug
// list covers the paper's structure: bugs from every program family,
// PFS-rooted and library-rooted rows, and per-row file-system lists.
func TestTable3Aggregation(t *testing.T) {
	rows := Table3(paracrash.DefaultOptions(), workloads.DefaultH5Params())
	if len(rows) < 15 {
		t.Fatalf("only %d aggregated bug rows; the paper's 15 families need at least that many", len(rows))
	}
	programs := map[string]bool{}
	layers := map[string]bool{}
	for _, r := range rows {
		programs[r.Program] = true
		layers[r.Layer] = true
		if len(r.FSes) == 0 {
			t.Errorf("row %q/%q has no file systems", r.Program, r.OpA)
		}
		if r.OpA == "" || r.OpB == "" || r.Consequence == "" {
			t.Errorf("incomplete row: %+v", r)
		}
	}
	for _, prog := range []string{"ARVR", "CR", "RC", "WAL", "H5-create", "H5-delete",
		"H5-rename", "H5-resize", "CDF-create", "H5-parallel-create", "H5-parallel-resize"} {
		if !programs[prog] {
			t.Errorf("no bug rows from program %s", prog)
		}
	}
	for _, layer := range []string{"pfs", "hdf5", "netcdf"} {
		if !layers[layer] {
			t.Errorf("no bug rows attributed to the %s layer", layer)
		}
	}

	out := FormatTable3(rows)
	for _, want := range []string{"reordering", "atomicity", "file systems:", "consequence:"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable3 missing %q", want)
		}
	}
}

// TestTable3LustreOnlyLibraryRows: every Lustre bug row must be
// library-rooted or marked as a library state failure — the POSIX side of
// Lustre is clean.
func TestTable3LustreOnlyLibraryRows(t *testing.T) {
	rows := Table3(paracrash.DefaultOptions(), workloads.DefaultH5Params())
	for _, r := range rows {
		onLustre := false
		for _, fs := range r.FSes {
			if fs == "lustre" {
				onLustre = true
			}
		}
		if !onLustre {
			continue
		}
		posix := r.Program == "ARVR" || r.Program == "CR" || r.Program == "RC" || r.Program == "WAL"
		if posix {
			t.Errorf("Lustre appears in a POSIX bug row: %+v", r)
		}
	}
}
