package exps

import (
	"errors"
	"strings"
	"testing"

	"paracrash/internal/paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// TestFig8Shape asserts the headline shape of the Figure 8 matrix.
func TestFig8Shape(t *testing.T) {
	res := Fig8(paracrash.DefaultOptions(), workloads.DefaultH5Params())
	posix := []string{"ARVR", "CR", "RC", "WAL"}
	libProgs := []string{"H5-create", "H5-delete", "H5-rename", "CDF-create"}

	for _, prog := range posix {
		// ext4 and Lustre are clean on every POSIX program.
		for _, fsName := range []string{"ext4", "lustre"} {
			if c := res.Cells[prog][fsName]; c.Err != "" || c.Inconsistent != 0 {
				t.Errorf("%s on %s: %+v, want clean", prog, fsName, c)
			}
		}
	}
	// BeeGFS breaks on every POSIX program.
	for _, prog := range posix {
		if c := res.Cells[prog]["beegfs"]; c.Inconsistent == 0 {
			t.Errorf("%s on beegfs found nothing", prog)
		}
	}
	// Every file system shows library-level inconsistencies (the Figure 8
	// line plots) on the library programs.
	for _, prog := range libProgs {
		for _, fsName := range res.FS {
			if c := res.Cells[prog][fsName]; c.Err != "" || c.LibOnly == 0 {
				t.Errorf("%s on %s: no library-only inconsistencies (%+v)", prog, fsName, c)
			}
		}
	}
	// The rendered table mentions every program.
	out := res.Format()
	for _, prog := range res.Programs {
		if !strings.Contains(out, prog) {
			t.Errorf("Format missing %q", prog)
		}
	}
}

// TestFig10Shape asserts the strategy ordering the paper reports: pruning
// never checks more states than brute force, and the optimized strategy
// never restores more servers.
func TestFig10Shape(t *testing.T) {
	rows := Fig10(workloads.DefaultH5Params())
	if len(rows) == 0 {
		t.Fatal("no measurements")
	}
	type key struct{ prog, fs string }
	byMode := map[key]map[paracrash.Mode]Fig10Row{}
	for _, r := range rows {
		k := key{r.Program, r.FS}
		if byMode[k] == nil {
			byMode[k] = map[paracrash.Mode]Fig10Row{}
		}
		byMode[k][r.Mode] = r
	}
	for k, m := range byMode {
		brute, okB := m[paracrash.ModeBrute]
		prune, okP := m[paracrash.ModePruning]
		opt, okO := m[paracrash.ModeOptimized]
		if !okB || !okP || !okO {
			continue
		}
		if prune.Stats.StatesChecked > brute.Stats.StatesChecked {
			t.Errorf("%v: pruning checked more states than brute (%d > %d)",
				k, prune.Stats.StatesChecked, brute.Stats.StatesChecked)
		}
		if opt.Stats.ServerRestores > brute.Stats.ServerRestores {
			t.Errorf("%v: optimized restored more servers than brute (%d > %d)",
				k, opt.Stats.ServerRestores, brute.Stats.ServerRestores)
		}
		if brute.Bugs > 0 && opt.Bugs == 0 {
			t.Errorf("%v: optimized lost all bugs", k)
		}
	}
	if out := FormatFig10(rows); !strings.Contains(out, "brute-force") {
		t.Error("FormatFig10 output malformed")
	}
}

// TestFig11Shape asserts the scalability trend: checked states grow with
// the server count but stay far from combinatorial, and the bug families
// do not change with scale (paper §6.4).
func TestFig11Shape(t *testing.T) {
	rows := Fig11([]int{4, 8, 16}, workloads.DefaultH5Params())
	if len(rows) == 0 {
		t.Fatal("no measurements")
	}
	type key struct{ prog, fs string }
	series := map[key][]Fig11Row{}
	for _, r := range rows {
		k := key{r.Program, r.FS}
		series[k] = append(series[k], r)
	}
	for k, s := range series {
		if len(s) != 3 {
			t.Errorf("%v: %d points", k, len(s))
			continue
		}
		if s[2].States < s[0].States {
			t.Errorf("%v: states shrank with servers: %d -> %d", k, s[0].States, s[2].States)
		}
		// Linear-ish, not combinatorial: 4x servers may grow the states by
		// at most ~8x here.
		if s[0].States > 0 && s[2].States > 8*s[0].States {
			t.Errorf("%v: superlinear state growth %d -> %d", k, s[0].States, s[2].States)
		}
		if s[0].Bugs != s[2].Bugs {
			t.Errorf("%v: bug count changed with scale: %d -> %d (paper found no new bugs)",
				k, s[0].Bugs, s[2].Bugs)
		}
	}
}

// brokenRecoveryFS wraps a file system with a Recover that fails once —
// the unrecoverable-file-system path of the checking workflow (Figure 6's
// "recoverable?" branch).
type brokenRecoveryFS struct {
	pfs.FileSystem
	failures int
}

func (b *brokenRecoveryFS) Recover() error {
	if b.failures > 0 {
		b.failures--
		return errors.New("injected: fsck cannot repair the volume")
	}
	return b.FileSystem.Recover()
}

func TestUnrecoverableFileSystemIsReported(t *testing.T) {
	inner, err := NewFS("beegfs", ConfigFor("beegfs"), trace.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	fs := &brokenRecoveryFS{FileSystem: inner, failures: 1 << 30}
	rep, err := paracrash.Run(fs, nil, workloads.ARVR(), paracrash.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inconsistent == 0 {
		t.Fatal("unrecoverable states not reported")
	}
	found := false
	for _, st := range rep.States {
		if strings.Contains(st.Consequence, "unrecoverable") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no unrecoverable consequence in %+v", rep.States)
	}
}

// TestTraceDumpAndJSON exercises the Figure 2/9 trace tooling.
func TestTraceDumpAndJSON(t *testing.T) {
	prog, _ := ProgramByName("ARVR")
	dump, err := TraceDump("beegfs", prog, workloads.DefaultH5Params())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"meta/0:", "storage/", "rename", "creat"} {
		if !strings.Contains(dump, want) {
			t.Errorf("trace dump missing %q", want)
		}
	}
	raw, err := TraceJSON("beegfs", prog, workloads.DefaultH5Params(), ConfigFor("beegfs"))
	if err != nil {
		t.Fatal(err)
	}
	ops, err := trace.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) < 10 {
		t.Fatalf("decoded %d ops", len(ops))
	}
	// The serialised trace drives the same causality analysis.
	replayable := 0
	for _, o := range ops {
		if o.Payload != nil {
			replayable++
		}
	}
	if replayable == 0 {
		t.Fatal("serialised trace lost the replayable payloads")
	}
}

// TestFig9Output checks the cross-file-system trace comparison renders the
// per-PFS sections.
func TestFig9Output(t *testing.T) {
	out := Fig9(workloads.DefaultH5Params())
	for _, want := range []string{"beegfs", "orangefs", "glusterfs", "gpfs",
		"keyval.db", "scsi_write", "link", "stranded"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig9 output missing %q", want)
		}
	}
}
