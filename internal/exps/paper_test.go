package exps

import (
	"strings"
	"testing"

	"paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// runCell runs one matrix cell with default options.
func runCell(t *testing.T, fsName, progName string) *paracrash.Report {
	t.Helper()
	prog, err := ProgramByName(progName)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunOne(fsName, prog, paracrash.DefaultOptions(), workloads.DefaultH5Params(), ConfigFor(fsName))
	if err != nil {
		t.Fatalf("%s on %s: %v", progName, fsName, err)
	}
	return rep
}

// hasBug reports whether the report contains a bug whose fields contain the
// given fragments (kind, layer, opA, opB; empty fragments match anything).
func hasBug(rep *paracrash.Report, kind paracrash.BugKind, layer, opA, opB string) bool {
	for _, b := range rep.Bugs {
		if b.Kind != kind {
			continue
		}
		if layer != "" && b.Layer != layer {
			continue
		}
		if opA != "" && !strings.Contains(b.OpA, opA) {
			continue
		}
		if opB != "" && !strings.Contains(b.OpB, opB) {
			continue
		}
		return true
	}
	return false
}

// --- Table 3, bugs 1-2: ARVR on BeeGFS -------------------------------------

func TestPaperBug1And2ARVRBeeGFS(t *testing.T) {
	rep := runCell(t, "beegfs", "ARVR")
	if !hasBug(rep, paracrash.BugReordering, "pfs", "append(chunk)@storage", "rename(dentry)@meta") {
		t.Errorf("bug #1 (append -> rename) missing; bugs: %v", bugStrings(rep))
	}
	if !hasBug(rep, paracrash.BugReordering, "pfs", "rename(dentry)@meta", "unlink(chunk)@storage") {
		t.Errorf("bug #2 (rename -> unlink) missing; bugs: %v", bugStrings(rep))
	}
}

// --- Table 3, bug 1 on OrangeFS; bug 2 absent (Figure 9b) ------------------

func TestPaperBug1OrangeFSAndBug2Absent(t *testing.T) {
	rep := runCell(t, "orangefs", "ARVR")
	if !hasBug(rep, paracrash.BugReordering, "pfs", "append(bstream)@storage", "pwrite(keyval.db)@meta") {
		t.Errorf("bug #1 analog missing on OrangeFS; bugs: %v", bugStrings(rep))
	}
	// The stranded-bstream protocol plus per-update fdatasync closes bug #2.
	if hasBug(rep, paracrash.BugReordering, "pfs", "pwrite(keyval.db)@meta", "unlink") {
		t.Errorf("bug #2 should not occur on OrangeFS; bugs: %v", bugStrings(rep))
	}
}

// --- Table 3, bug 3: GPFS ARVR atomic group --------------------------------

func TestPaperBug3GPFSARVR(t *testing.T) {
	rep := runCell(t, "gpfs", "ARVR")
	if rep.Inconsistent == 0 {
		t.Fatal("GPFS ARVR should reach inconsistent states")
	}
	// Data loss from the unjournaled data write reordering against the
	// rename transaction's metadata writes.
	found := false
	for _, b := range rep.Bugs {
		if strings.Contains(b.OpA, "scsi_write(data)") || strings.Contains(b.OpB, "scsi_write(data)") ||
			strings.Contains(b.OpA, "scsi_write(dir_entries)") {
			found = true
		}
	}
	if !found {
		t.Errorf("bug #3 family missing on GPFS; bugs: %v", bugStrings(rep))
	}
}

// --- Table 3, bug 4: CR file in both directories ---------------------------

func TestPaperBug4CR(t *testing.T) {
	for _, fsName := range []string{"beegfs", "orangefs", "gpfs"} {
		rep := runCell(t, fsName, "CR")
		if rep.Inconsistent == 0 {
			t.Errorf("CR on %s should reach inconsistent states", fsName)
			continue
		}
		hasAtomicity := false
		for _, b := range rep.Bugs {
			if b.Kind == paracrash.BugAtomicity {
				hasAtomicity = true
			}
		}
		if !hasAtomicity {
			t.Errorf("bug #4 (cross-server rename atomicity) missing on %s; bugs: %v", fsName, bugStrings(rep))
		}
	}
}

// --- Table 3, bug 5: RC file created in the wrong directory ----------------

func TestPaperBug5RC(t *testing.T) {
	for _, fsName := range []string{"beegfs", "gpfs"} {
		rep := runCell(t, fsName, "RC")
		if !hasBug(rep, paracrash.BugReordering, "pfs", "rename", "") &&
			!hasBug(rep, paracrash.BugReordering, "pfs", "scsi_write(dir_entries)", "") {
			t.Errorf("bug #5 (dir rename -> create reordering) missing on %s; bugs: %v", fsName, bugStrings(rep))
		}
	}
}

// --- Table 3, bugs 6-8: WAL ------------------------------------------------

func TestPaperBugs6To8WAL(t *testing.T) {
	// Bug 6: cross-storage append(log) -> overwrite(foo) on BeeGFS,
	// GlusterFS, OrangeFS.
	for _, fsName := range []string{"beegfs", "glusterfs", "orangefs"} {
		rep := runCell(t, fsName, "WAL")
		if rep.Inconsistent == 0 {
			t.Errorf("WAL on %s found nothing", fsName)
			continue
		}
		crossStorage := false
		for _, b := range rep.Bugs {
			aStorage := strings.Contains(b.OpA, "@storage") || strings.Contains(b.OpA, "@brick")
			bMeta := strings.Contains(b.OpB, "@meta") || strings.Contains(b.OpB, "@brick") || strings.Contains(b.OpB, "@storage")
			if aStorage && bMeta {
				crossStorage = true
			}
		}
		if !crossStorage {
			t.Errorf("WAL reordering family missing on %s; bugs: %v", fsName, bugStrings(rep))
		}
	}
	// Bug 7 (log dentry -> overwrite) and bug 8 (overwrite -> unlink log)
	// on BeeGFS specifically.
	rep := runCell(t, "beegfs", "WAL")
	if !hasBug(rep, paracrash.BugReordering, "pfs", "link(dentry)@meta", "(chunk)@storage") {
		t.Errorf("bug #7 missing on BeeGFS; bugs: %v", bugStrings(rep))
	}
	if !hasBug(rep, paracrash.BugReordering, "pfs", "(chunk)@storage", "unlink(dentry)@meta") {
		t.Errorf("bug #8 missing on BeeGFS; bugs: %v", bugStrings(rep))
	}
}

// --- Lustre: clean on POSIX (paper §6.3.1) ---------------------------------

func TestPaperLustreCleanOnPOSIX(t *testing.T) {
	for _, progName := range []string{"ARVR", "CR", "RC", "WAL"} {
		rep := runCell(t, "lustre", progName)
		if rep.Inconsistent != 0 || len(rep.Bugs) != 0 {
			t.Errorf("Lustre %s: %d inconsistent, %d bugs; want clean",
				progName, rep.Inconsistent, len(rep.Bugs))
		}
	}
}

// --- ext4 with data journaling: clean on POSIX (Figure 8 control) ----------

func TestPaperExt4CleanOnPOSIX(t *testing.T) {
	for _, progName := range []string{"ARVR", "CR", "RC", "WAL"} {
		rep := runCell(t, "ext4", progName)
		if rep.Inconsistent != 0 {
			t.Errorf("ext4 %s: %d inconsistent states; want 0", progName, rep.Inconsistent)
		}
	}
}

// --- Table 3, bugs 10-15: the library-level bugs ---------------------------

func TestPaperBug10H5CreateEveryPFS(t *testing.T) {
	// H5-create leaves unmodified datasets unreachable on every PFS: the
	// new dataset's symbol-table entry can persist without its heap name
	// or object header.
	for _, fsName := range FSNames() {
		rep := runCell(t, fsName, "H5-create")
		if rep.Inconsistent == 0 {
			t.Errorf("H5-create on %s found nothing", fsName)
		}
	}
}

func TestPaperBug11H5Delete(t *testing.T) {
	// Symbol table node must persist before the heap clear; the bug is
	// HDF5's own (visible even on ordered file systems).
	for _, fsName := range []string{"beegfs", "lustre", "ext4"} {
		rep := runCell(t, fsName, "H5-delete")
		if !hasBug(rep, paracrash.BugAtomicity, "hdf5", "h5:snod:/g1", "h5:heap:/g1") &&
			!hasBug(rep, paracrash.BugReordering, "hdf5", "h5:snod:/g1", "h5:heap:/g1") {
			t.Errorf("bug #11 (snod -> heap) missing on %s; bugs: %v", fsName, bugStrings(rep))
		}
	}
}

func TestPaperBug12H5Rename(t *testing.T) {
	// The rename's source and destination group updates must be atomic.
	for _, fsName := range []string{"beegfs", "lustre"} {
		rep := runCell(t, fsName, "H5-rename")
		found := false
		for _, b := range rep.Bugs {
			if b.Layer == "hdf5" &&
				(strings.Contains(b.OpA, "/g1") || strings.Contains(b.OpB, "/g1")) &&
				(strings.Contains(b.OpA, "/g2") || strings.Contains(b.OpB, "/g2")) {
				found = true
			}
		}
		if !found {
			t.Errorf("bug #12 (cross-group rename) missing on %s; bugs: %v", fsName, bugStrings(rep))
		}
	}
}

func TestPaperBug13H5Resize(t *testing.T) {
	// The resize bug is rooted in the PFS (Table 3's parenthetical): the
	// chunk B-tree / object header persists without the rest.
	for _, fsName := range []string{"beegfs", "lustre", "gpfs"} {
		rep := runCell(t, fsName, "H5-resize")
		if rep.Inconsistent == 0 {
			t.Errorf("H5-resize on %s found nothing", fsName)
		}
	}
}

func TestPaperBug14H5ResizeDimsSensitivity(t *testing.T) {
	// Growing to 10x10 splits the chunk B-tree; the child node must
	// persist before the parent — visible as an HDF5-layer bug with the
	// "wrong B-tree signature" consequence (Table 3's sensitivity on
	// dataset dimensions).
	prog, _ := ProgramByName("H5-resize")
	p := workloads.DefaultH5Params()
	p.ResizeRows, p.ResizeCols = 10, 10
	rep, err := RunOne("lustre", prog, paracrash.DefaultOptions(), p, ConfigFor("lustre"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range rep.Bugs {
		if b.Layer == "hdf5" && strings.Contains(b.Consequence, "wrong B-tree signature") {
			found = true
		}
	}
	if !found {
		t.Errorf("bug #14 (B-tree split signature) missing; bugs: %v", bugStrings(rep))
	}
}

func TestPaperBug15CDFCreate(t *testing.T) {
	// NetCDF's eager open turns any corrupt object into "cannot open the
	// file (HDF5 error -101)".
	for _, fsName := range []string{"beegfs", "lustre"} {
		rep := runCell(t, fsName, "CDF-create")
		found := false
		for _, st := range rep.States {
			if strings.Contains(st.Consequence, "Errno -101") {
				found = true
			}
		}
		if !found {
			t.Errorf("bug #15 (-101 unopenable) missing on %s", fsName)
		}
	}
}

func TestPaperBug9H5ParallelCreate(t *testing.T) {
	// Multiple clients creating datasets split the symbol table node; the
	// group B-tree update and heap must persist in the right order.
	rep := runCell(t, "beegfs", "H5-parallel-create")
	if rep.Inconsistent == 0 || rep.LibOnly == 0 {
		t.Fatalf("H5-parallel-create: %d inconsistent (%d lib)", rep.Inconsistent, rep.LibOnly)
	}
	found := false
	for _, b := range rep.Bugs {
		if strings.Contains(b.OpA+b.OpB, "h5:btree:/g1") || strings.Contains(b.OpA+b.OpB, "h5:snod:/g1") {
			found = true
		}
	}
	if !found {
		t.Errorf("bug #9 family missing; bugs: %v", bugStrings(rep))
	}
}

// --- Cross-layer attribution (paper §6.3.3) --------------------------------

func TestPaperAttributionSplit(t *testing.T) {
	// H5-delete's bug belongs to HDF5; its PFS states remain causal-legal
	// on Lustre (every inconsistent state is library-only there).
	rep := runCell(t, "lustre", "H5-delete")
	if rep.Inconsistent == 0 || rep.Inconsistent != rep.LibOnly {
		t.Errorf("H5-delete on lustre: %d inconsistent, %d lib-only; want all lib-only",
			rep.Inconsistent, rep.LibOnly)
	}
	// On ext4 every library inconsistency is library-rooted too.
	rep = runCell(t, "ext4", "H5-create")
	if rep.Inconsistent != rep.LibOnly {
		t.Errorf("H5-create on ext4: %d inconsistent, %d lib-only", rep.Inconsistent, rep.LibOnly)
	}
}

// --- Exploration strategies find the same bugs (paper §6.4) ----------------

func TestModesFindSameBugs(t *testing.T) {
	// POSIX programs: all three strategies report identical bug sets. The
	// library programs may drop redundant manifestations under pruning
	// (the paper's rule skips scenarios already explained by a known
	// pair), so there the pruned set must be a non-empty subset.
	for _, tc := range []struct {
		prog  string
		exact bool
	}{{"ARVR", true}, {"WAL", true}, {"H5-delete", false}} {
		prog, _ := ProgramByName(tc.prog)
		sets := map[paracrash.Mode]map[string]bool{}
		for _, mode := range []paracrash.Mode{paracrash.ModeBrute, paracrash.ModePruning, paracrash.ModeOptimized} {
			opts := paracrash.DefaultOptions()
			opts.Mode = mode
			rep, err := RunOne("beegfs", prog, opts, workloads.DefaultH5Params(), ConfigFor("beegfs"))
			if err != nil {
				t.Fatal(err)
			}
			set := map[string]bool{}
			for _, b := range rep.Bugs {
				// Server indices are placement artifacts; the cause is the
				// class pair.
				set[b.Kind.String()+"|"+stripServerIndex(b.OpA)+"|"+stripServerIndex(b.OpB)] = true
			}
			sets[mode] = set
		}
		brute := sets[paracrash.ModeBrute]
		for _, mode := range []paracrash.Mode{paracrash.ModePruning, paracrash.ModeOptimized} {
			got := sets[mode]
			if len(got) == 0 {
				t.Errorf("%s: %v found no bugs", tc.prog, mode)
				continue
			}
			for sig := range got {
				if !brute[sig] {
					t.Errorf("%s: %v found %q that brute-force missed", tc.prog, mode, sig)
				}
			}
			if tc.exact && len(got) != len(brute) {
				t.Errorf("%s: %v found %d bugs, brute %d", tc.prog, mode, len(got), len(brute))
			}
		}
	}
}

// TestPruningReducesWork: the pruning strategy checks strictly fewer states
// and the optimized strategy restores strictly fewer servers (paper §6.4).
func TestPruningReducesWork(t *testing.T) {
	res, err := Speedups("beegfs", "ARVR", workloads.DefaultH5Params())
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedStates >= res.BruteStates {
		t.Errorf("pruning checked %d states, brute %d", res.PrunedStates, res.BruteStates)
	}
	if res.OptRestores >= res.BruteRestores {
		t.Errorf("optimized restored %d servers, brute %d", res.OptRestores, res.BruteRestores)
	}
	if res.BruteBugs != res.PrunedBugs || res.BruteBugs != res.OptBug {
		t.Errorf("strategies found different bug counts: %d/%d/%d",
			res.BruteBugs, res.PrunedBugs, res.OptBug)
	}
}

func bugStrings(rep *paracrash.Report) []string {
	var out []string
	for _, b := range rep.Bugs {
		out = append(out, b.Kind.String()+": "+b.OpA+" -> "+b.OpB+" ["+b.Layer+"]")
	}
	return out
}
