package workloads

import (
	"paracrash/internal/paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

// fig5Program is the paper's Figure 5 two-process example, used to
// illustrate the consistency models:
//
//	Process 0: write(fd1, "A"); send(buf); write(fd2, "B"); crash
//	Process 1: recv(buf); write(fd3, "C"); fsync(fd3); crash
//
// With strict consistency all three writes are preserved; with commit
// consistency only C is guaranteed; causal consistency preserves A and C;
// baseline consistency may lose all three.
type fig5Program struct{}

// Fig5Program returns the Figure 5 example as a runnable workload.
func Fig5Program() paracrash.Workload { return fig5Program{} }

// Name implements paracrash.Workload.
func (fig5Program) Name() string { return "Fig5" }

// Preamble implements paracrash.Workload.
func (fig5Program) Preamble(fs pfs.FileSystem) error {
	c := fs.Client(0)
	for _, f := range []string{"/f1", "/f2", "/f3"} {
		if err := c.Create(f); err != nil {
			return err
		}
		if err := c.Close(f); err != nil {
			return err
		}
	}
	return nil
}

// Run implements paracrash.Workload.
func (fig5Program) Run(fs pfs.FileSystem) error {
	c0, c1 := fs.Client(0), fs.Client(1)
	rec := fs.Recorder()
	if err := c0.WriteAt("/f1", 0, []byte("A")); err != nil {
		return err
	}
	// P0 sends to P1 (the inter-process synchronisation that makes
	// write(A) happen-before write(C)).
	m := rec.NewMsgID()
	rec.Record(trace.Op{Layer: trace.LayerApp, Proc: c0.Proc(), Name: "send", MsgID: m, IsSend: true})
	rec.Record(trace.Op{Layer: trace.LayerApp, Proc: c1.Proc(), Name: "recv", MsgID: m})
	if err := c1.WriteAt("/f3", 0, []byte("C")); err != nil {
		return err
	}
	if err := c1.Fsync("/f3"); err != nil {
		return err
	}
	return c0.WriteAt("/f2", 0, []byte("B"))
}
