package workloads

import (
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/pfs/extfs"
	"paracrash/internal/trace"
)

func TestEnumerateIsDeterministic(t *testing.T) {
	collect := func() []string {
		var out []string
		Enumerate(DefaultEnumConfig(), func(p *Program) bool {
			out = append(out, p.Name()+"\n"+p.Script())
			return true
		})
		return out
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("enumeration produced nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("enumeration count changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("program %d differs between enumerations", i)
		}
	}
	// Every script is distinct: the namespace-state tracking must not
	// produce duplicate sequences.
	seen := map[string]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate enumerated program:\n%s", s)
		}
		seen[s] = true
	}
}

func TestEnumerateCountsAndBounds(t *testing.T) {
	n1 := Enumerate(EnumConfig{MaxOps: 1, Files: 2, WithFsync: true}, func(*Program) bool { return true })
	n2 := Enumerate(EnumConfig{MaxOps: 2, Files: 2, WithFsync: true}, func(*Program) bool { return true })
	if n1 <= 0 || n2 <= n1 {
		t.Fatalf("unexpected enumeration sizes: len<=1: %d, len<=2: %d", n1, n2)
	}
	maxLen := 0
	Enumerate(EnumConfig{MaxOps: 2, Files: 2}, func(p *Program) bool {
		if len(p.Body()) > maxLen {
			maxLen = len(p.Body())
		}
		return true
	})
	if maxLen != 2 {
		t.Fatalf("MaxOps=2 produced a body of %d ops", maxLen)
	}
	// Early stop is honoured.
	calls := 0
	got := Enumerate(DefaultEnumConfig(), func(*Program) bool {
		calls++
		return calls < 3
	})
	if calls != 3 || got != 3 {
		t.Fatalf("early stop: calls=%d count=%d, want 3", calls, got)
	}
}

func TestEnumeratedProgramsRunCleanly(t *testing.T) {
	// Namespace-state tracking guarantees every enumerated sequence is
	// valid: a crash-free run never fails.
	Enumerate(DefaultEnumConfig(), func(p *Program) bool {
		conf := pfs.DefaultConfig()
		conf.MetaServers = 0
		conf.StorageServers = 1
		fs := extfs.New(conf, trace.NewRecorder())
		if err := p.Preamble(fs); err != nil {
			t.Fatalf("%s preamble: %v", p.Name(), err)
		}
		if err := p.Run(fs); err != nil {
			t.Fatalf("%s run: %v\n%s", p.Name(), err, p.Script())
		}
		return true
	})
}
