// Package workloads implements the paper's 11 test programs (§6.2): the
// POSIX-IO programs (ARVR, CR, RC, WAL), the HDF5/NetCDF programs
// (H5-create/-delete/-rename/-resize, CDF-create) and the parallel HDF5
// programs (H5-parallel-create, H5-parallel-resize), together with their
// preambles (initial states).
package workloads

import (
	"bytes"

	"paracrash/internal/paracrash"
	"paracrash/internal/pfs"
)

// posixProgram is a simple single-client POSIX workload.
type posixProgram struct {
	name     string
	preamble func(c pfs.Client) error
	run      func(c pfs.Client) error
}

// Name implements paracrash.Workload.
func (p *posixProgram) Name() string { return p.name }

// Preamble implements paracrash.Workload.
func (p *posixProgram) Preamble(fs pfs.FileSystem) error {
	if p.preamble == nil {
		return nil
	}
	return p.preamble(fs.Client(0))
}

// Run implements paracrash.Workload.
func (p *posixProgram) Run(fs pfs.FileSystem) error {
	return p.run(fs.Client(0))
}

// ARVR is Atomic-Replace-via-Rename: atomically replace the contents of a
// preexisting file foo by writing a temporary file and renaming it over the
// original — the checkpointing-library pattern.
func ARVR() paracrash.Workload {
	return &posixProgram{
		name: "ARVR",
		preamble: func(c pfs.Client) error {
			if err := c.Create("/foo"); err != nil {
				return err
			}
			if err := c.WriteAt("/foo", 0, bytes.Repeat([]byte("old"), 20)); err != nil {
				return err
			}
			return c.Close("/foo")
		},
		run: func(c pfs.Client) error {
			if err := c.Create("/tmp"); err != nil {
				return err
			}
			if err := c.WriteAt("/tmp", 0, bytes.Repeat([]byte("new"), 20)); err != nil {
				return err
			}
			if err := c.Close("/tmp"); err != nil {
				return err
			}
			return c.Rename("/tmp", "/foo")
		},
	}
}

// CR is Create-and-Rename: create A/foo, then move it to directory B.
func CR() paracrash.Workload {
	return &posixProgram{
		name: "CR",
		preamble: func(c pfs.Client) error {
			if err := c.Mkdir("/A"); err != nil {
				return err
			}
			return c.Mkdir("/B")
		},
		run: func(c pfs.Client) error {
			if err := c.Create("/A/foo"); err != nil {
				return err
			}
			if err := c.Close("/A/foo"); err != nil {
				return err
			}
			return c.Rename("/A/foo", "/B/foo")
		},
	}
}

// RC is Rename-and-Create: rename directory A to B, then create B/foo.
func RC() paracrash.Workload {
	return &posixProgram{
		name: "RC",
		preamble: func(c pfs.Client) error {
			return c.Mkdir("/A")
		},
		run: func(c pfs.Client) error {
			if err := c.Rename("/A", "/B"); err != nil {
				return err
			}
			if err := c.Create("/B/foo"); err != nil {
				return err
			}
			return c.Close("/B/foo")
		},
	}
}

// WAL is Write-Ahead-Logging: append the intended modification to a log
// file, overwrite the target file with multiple pages, then drop the log.
func WAL() paracrash.Workload {
	page := func(b byte) []byte { return bytes.Repeat([]byte{b}, 64) }
	return &posixProgram{
		name: "WAL",
		preamble: func(c pfs.Client) error {
			if err := c.Create("/foo"); err != nil {
				return err
			}
			if err := c.WriteAt("/foo", 0, page('o')); err != nil {
				return err
			}
			if err := c.WriteAt("/foo", 64, page('O')); err != nil {
				return err
			}
			if err := c.Close("/foo"); err != nil {
				return err
			}
			return nil
		},
		run: func(c pfs.Client) error {
			if err := c.Create("/log"); err != nil {
				return err
			}
			if err := c.Append("/log", page('L')); err != nil {
				return err
			}
			if err := c.Close("/log"); err != nil {
				return err
			}
			if err := c.WriteAt("/foo", 0, page('n')); err != nil {
				return err
			}
			if err := c.WriteAt("/foo", 64, page('N')); err != nil {
				return err
			}
			if err := c.Close("/foo"); err != nil {
				return err
			}
			return c.Unlink("/log")
		},
	}
}

// POSIXPrograms returns the four POSIX test programs in paper order.
func POSIXPrograms() []paracrash.Workload {
	return []paracrash.Workload{ARVR(), CR(), RC(), WAL()}
}
