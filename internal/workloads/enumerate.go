package workloads

import (
	"fmt"
)

// EnumConfig bounds the systematic workload enumeration (B3-style bounded
// black-box testing: every valid op sequence up to a small length over a
// tiny namespace, instead of random sampling).
type EnumConfig struct {
	// MaxOps is the maximum body length; every valid sequence of length
	// 1..MaxOps is produced. Clamped to [1, 3] — the sequence count is
	// exponential in MaxOps, and crash-state exploration of each program is
	// itself exponential in its trace.
	MaxOps int
	// Files is the namespace size (clamped to [1, 3]). File f0 pre-exists
	// with content; the rest start absent, so sequences cover creation,
	// mutation and deletion from both initial conditions.
	Files int
	// WithFsync includes fsync ops in the vocabulary.
	WithFsync bool
}

// DefaultEnumConfig is the campaign's default: every 1- and 2-op program
// over two files.
func DefaultEnumConfig() EnumConfig {
	return EnumConfig{MaxOps: 2, Files: 2, WithFsync: true}
}

func (cfg EnumConfig) clamp() EnumConfig {
	if cfg.MaxOps < 1 {
		cfg.MaxOps = 1
	}
	if cfg.MaxOps > 3 {
		cfg.MaxOps = 3
	}
	if cfg.Files < 1 {
		cfg.Files = 1
	}
	if cfg.Files > 3 {
		cfg.Files = 3
	}
	return cfg
}

// enumPayload is the fixed write payload: enumeration varies structure, not
// data, so one body is enough (the checker compares content, any content).
func enumPayload() []byte { return []byte("enumerated-payload-0123") }

// Enumerate produces every valid op sequence allowed by cfg, in a fixed
// deterministic order, invoking yield for each until it returns false.
// Validity is tracked against the namespace model (no write to a missing
// file, no create over an existing one), so every enumerated program runs
// cleanly. Returns the number of programs yielded.
func Enumerate(cfg EnumConfig, yield func(*Program) bool) int {
	cfg = cfg.clamp()
	names := make([]string, cfg.Files)
	for i := range names {
		names[i] = fmt.Sprintf("/f%d", i)
	}
	// f0 pre-exists with content; the others start absent.
	pre := []Op{
		{Kind: OpCreat, Path: names[0]},
		{Kind: OpPwrite, Path: names[0], Data: enumPayload()},
		{Kind: OpClose, Path: names[0]},
	}
	initial := map[string]bool{names[0]: true}

	count := 0
	stopped := false
	idx := 0

	// candidates returns every op valid in the given namespace state, in a
	// fixed vocabulary order.
	candidates := func(exists map[string]bool) []Op {
		var out []Op
		for _, p := range names {
			if !exists[p] {
				out = append(out, Op{Kind: OpCreat, Path: p})
			}
		}
		for _, p := range names {
			if exists[p] {
				out = append(out, Op{Kind: OpPwrite, Path: p, Data: enumPayload()})
				out = append(out, Op{Kind: OpAppend, Path: p, Data: enumPayload()})
			}
		}
		for _, src := range names {
			if !exists[src] {
				continue
			}
			for _, dst := range names {
				if dst != src {
					out = append(out, Op{Kind: OpRename, Path: src, Path2: dst})
				}
			}
		}
		for _, p := range names {
			if exists[p] {
				out = append(out, Op{Kind: OpUnlink, Path: p})
			}
		}
		if cfg.WithFsync {
			for _, p := range names {
				if exists[p] {
					out = append(out, Op{Kind: OpFsync, Path: p})
				}
			}
		}
		return out
	}

	var rec func(body []Op, exists map[string]bool)
	rec = func(body []Op, exists map[string]bool) {
		if stopped {
			return
		}
		if len(body) > 0 {
			prog := NewProgram(fmt.Sprintf("enum-%d", idx), pre, append([]Op(nil), body...))
			idx++
			count++
			if !yield(prog) {
				stopped = true
				return
			}
		}
		if len(body) == cfg.MaxOps {
			return
		}
		for _, op := range candidates(exists) {
			next := map[string]bool{}
			for k, v := range exists {
				next[k] = v
			}
			switch op.Kind {
			case OpCreat:
				next[op.Path] = true
			case OpRename:
				delete(next, op.Path)
				next[op.Path2] = true
			case OpUnlink:
				delete(next, op.Path)
			}
			rec(append(body, op), next)
			if stopped {
				return
			}
		}
	}
	rec(nil, initial)
	return count
}
