package workloads

import (
	"strings"
	"testing"

	"paracrash/internal/paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/pfs/beegfs"
	"paracrash/internal/pfs/extfs"
	"paracrash/internal/trace"
)

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(DefaultGenConfig(42))
	b := Generate(DefaultGenConfig(42))
	if a.Script() != b.Script() {
		t.Fatalf("same seed, different programs:\n%s\nvs\n%s", a.Script(), b.Script())
	}
	c := Generate(DefaultGenConfig(43))
	if a.Script() == c.Script() {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestGenConfigClamp(t *testing.T) {
	// Out-of-range shapes are clamped, not silently accepted: the effective
	// config is visible through Clamp and the generated body obeys it.
	cases := []struct {
		name    string
		in      GenConfig
		ops     int
		files   int
		dirs    int
		maxBody int
	}{
		{"zero value", GenConfig{Seed: 1}, 8, 3, 0, 8},
		{"oversized ops", GenConfig{Seed: 1, Ops: 999, Files: 2}, MaxGenOps, 2, 0, MaxGenOps},
		{"negative dirs", GenConfig{Seed: 1, Ops: 4, Files: 2, Dirs: -7}, 4, 2, 0, 4},
		{"oversized everything", GenConfig{Seed: 1, Ops: 99, Files: 99, Dirs: 99}, MaxGenOps, MaxGenFiles, MaxGenDirs, MaxGenOps},
	}
	for _, tc := range cases {
		got := tc.in.Clamp()
		if got.Ops != tc.ops || got.Files != tc.files || got.Dirs != tc.dirs {
			t.Errorf("%s: Clamp() = ops=%d files=%d dirs=%d, want ops=%d files=%d dirs=%d",
				tc.name, got.Ops, got.Files, got.Dirs, tc.ops, tc.files, tc.dirs)
		}
		w := Generate(tc.in)
		if n := len(w.Body()); n != tc.maxBody {
			t.Errorf("%s: generated body has %d ops, want %d", tc.name, n, tc.maxBody)
		}
		// Clamped programs must still run cleanly.
		conf := pfs.DefaultConfig()
		conf.MetaServers = 0
		conf.StorageServers = 1
		fs := extfs.New(conf, trace.NewRecorder())
		if err := w.Preamble(fs); err != nil {
			t.Errorf("%s: preamble: %v", tc.name, err)
		} else if err := w.Run(fs); err != nil {
			t.Errorf("%s: run: %v\n%s", tc.name, err, w.Script())
		}
	}
}

func TestGenerateExistingPicksOnlyLiveFiles(t *testing.T) {
	// Regression for the existing() helper: every body op that requires its
	// target to exist must be generated against a live file — replaying the
	// body in namespace-model order never references a dead path.
	for seed := int64(0); seed < 40; seed++ {
		w := Generate(DefaultGenConfig(seed))
		exists := map[string]bool{}
		for _, op := range w.PreambleOps() {
			if op.Kind == OpCreat {
				exists[op.Path] = true
			}
		}
		for i, op := range w.Body() {
			switch op.Kind {
			case OpCreat:
				if exists[op.Path] {
					t.Fatalf("seed %d op %d: creat over existing %s", seed, i, op.Path)
				}
				exists[op.Path] = true
			case OpPwrite, OpAppend, OpFsync, OpClose:
				if !exists[op.Path] {
					t.Fatalf("seed %d op %d: %s on missing %s\n%s", seed, i, op.Kind, op.Path, w.Script())
				}
			case OpRename:
				if !exists[op.Path] {
					t.Fatalf("seed %d op %d: rename of missing %s", seed, i, op.Path)
				}
				delete(exists, op.Path)
				exists[op.Path2] = true
			case OpUnlink:
				if !exists[op.Path] {
					t.Fatalf("seed %d op %d: unlink of missing %s", seed, i, op.Path)
				}
				delete(exists, op.Path)
			}
		}
	}
}

func TestGeneratedProgramsRunCleanly(t *testing.T) {
	// A clean (crash-free) run of any generated program must succeed on
	// every file-system flavour it is pointed at.
	for seed := int64(0); seed < 20; seed++ {
		w := Generate(DefaultGenConfig(seed))
		conf := pfs.DefaultConfig()
		conf.MetaServers = 0
		conf.StorageServers = 1
		fs := extfs.New(conf, trace.NewRecorder())
		if err := w.Preamble(fs); err != nil {
			t.Fatalf("seed %d preamble: %v", seed, err)
		}
		if err := w.Run(fs); err != nil {
			t.Fatalf("seed %d run: %v\n%s", seed, err, w.Script())
		}
	}
}

func TestGeneratedProgramsOnExt4AreConsistent(t *testing.T) {
	// Data journaling on a single node keeps every generated POSIX program
	// crash-consistent — the generator-level version of Figure 8's control.
	for seed := int64(0); seed < 8; seed++ {
		w := Generate(DefaultGenConfig(seed))
		conf := pfs.DefaultConfig()
		conf.MetaServers = 0
		conf.StorageServers = 1
		fs := extfs.New(conf, trace.NewRecorder())
		rep, err := paracrash.Run(fs, nil, w, paracrash.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Inconsistent != 0 {
			t.Errorf("seed %d: %d inconsistent states on ext4:\n%s",
				seed, rep.Inconsistent, w.Script())
		}
	}
}

func TestGeneratedProgramsFindBeeGFSBugs(t *testing.T) {
	// Across a handful of seeds, at least one generated program must
	// rediscover a BeeGFS cross-server reordering — the generator explores
	// the same vulnerability surface as the hand-written suite.
	found := false
	for seed := int64(0); seed < 12 && !found; seed++ {
		w := Generate(DefaultGenConfig(seed))
		fs := beegfs.New(pfs.DefaultConfig(), trace.NewRecorder())
		rep, err := paracrash.Run(fs, nil, w, paracrash.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Bugs) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no generated program exposed a BeeGFS bug across 12 seeds")
	}
}

func TestProgramScriptRoundTrip(t *testing.T) {
	// NewProgram over the accessor slices reproduces the workload exactly —
	// the property corpus replay rests on.
	orig := Generate(DefaultGenConfig(7))
	clone := NewProgram(orig.Name(), orig.PreambleOps(), orig.Body())
	if clone.Script() != orig.Script() {
		t.Fatal("NewProgram round trip changed the script")
	}
	if !strings.Contains(orig.Script(), "(") {
		t.Fatal("script rendering looks empty")
	}
}
