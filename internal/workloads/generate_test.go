package workloads

import (
	"testing"

	"paracrash/internal/paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/pfs/beegfs"
	"paracrash/internal/pfs/extfs"
	"paracrash/internal/trace"
)

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(DefaultGenConfig(42)).(*genProgram)
	b := Generate(DefaultGenConfig(42)).(*genProgram)
	if a.Script() != b.Script() {
		t.Fatalf("same seed, different programs:\n%s\nvs\n%s", a.Script(), b.Script())
	}
	c := Generate(DefaultGenConfig(43)).(*genProgram)
	if a.Script() == c.Script() {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsRunCleanly(t *testing.T) {
	// A clean (crash-free) run of any generated program must succeed on
	// every file-system flavour it is pointed at.
	for seed := int64(0); seed < 20; seed++ {
		w := Generate(DefaultGenConfig(seed))
		conf := pfs.DefaultConfig()
		conf.MetaServers = 0
		conf.StorageServers = 1
		fs := extfs.New(conf, trace.NewRecorder())
		if err := w.Preamble(fs); err != nil {
			t.Fatalf("seed %d preamble: %v", seed, err)
		}
		if err := w.Run(fs); err != nil {
			t.Fatalf("seed %d run: %v\n%s", seed, err, w.(*genProgram).Script())
		}
	}
}

func TestGeneratedProgramsOnExt4AreConsistent(t *testing.T) {
	// Data journaling on a single node keeps every generated POSIX program
	// crash-consistent — the generator-level version of Figure 8's control.
	for seed := int64(0); seed < 8; seed++ {
		w := Generate(DefaultGenConfig(seed))
		conf := pfs.DefaultConfig()
		conf.MetaServers = 0
		conf.StorageServers = 1
		fs := extfs.New(conf, trace.NewRecorder())
		rep, err := paracrash.Run(fs, nil, w, paracrash.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Inconsistent != 0 {
			t.Errorf("seed %d: %d inconsistent states on ext4:\n%s",
				seed, rep.Inconsistent, w.(*genProgram).Script())
		}
	}
}

func TestGeneratedProgramsFindBeeGFSBugs(t *testing.T) {
	// Across a handful of seeds, at least one generated program must
	// rediscover a BeeGFS cross-server reordering — the generator explores
	// the same vulnerability surface as the hand-written suite.
	found := false
	for seed := int64(0); seed < 12 && !found; seed++ {
		w := Generate(DefaultGenConfig(seed))
		fs := beegfs.New(pfs.DefaultConfig(), trace.NewRecorder())
		rep, err := paracrash.Run(fs, nil, w, paracrash.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Bugs) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no generated program exposed a BeeGFS bug across 12 seeds")
	}
}
