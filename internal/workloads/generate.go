package workloads

import (
	"fmt"
	"math/rand"

	"paracrash/internal/paracrash"
	"paracrash/internal/pfs"
)

// GenConfig bounds the random POSIX program generator (the paper notes
// that "ParaCrash allows users to generate their own test programs" —
// this is the CrashMonkey-style bounded generator for that use).
type GenConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Ops is the number of operations in the traced body (bounded by the
	// checker's layer-op budget; keep it under ~12).
	Ops int
	// Files and Dirs bound the namespace the program touches.
	Files int
	Dirs  int
	// WithFsync allows fsync operations in the body.
	WithFsync bool
}

// DefaultGenConfig returns a small but interesting program shape.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{Seed: seed, Ops: 8, Files: 3, Dirs: 2, WithFsync: true}
}

// genOp is one generated operation.
type genOp struct {
	kind  string // creat, pwrite, append, rename, unlink, fsync, close, mkdir
	path  string
	path2 string
	data  []byte
	off   int64
}

// genProgram is a deterministic generated workload.
type genProgram struct {
	name     string
	preamble []genOp
	body     []genOp
}

// Generate builds a random-but-valid POSIX test program: the generator
// tracks the namespace model while choosing operations, so a clean run
// never fails. The same seed always yields the same program.
func Generate(cfg GenConfig) paracrash.Workload {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Ops <= 0 {
		cfg.Ops = 8
	}
	if cfg.Files <= 0 {
		cfg.Files = 3
	}

	// Namespace model during generation.
	dirs := []string{""}
	for i := 0; i < cfg.Dirs; i++ {
		dirs = append(dirs, fmt.Sprintf("/dir%d", i))
	}
	var pre []genOp
	for _, d := range dirs[1:] {
		pre = append(pre, genOp{kind: "mkdir", path: d})
	}
	exists := map[string]bool{}
	names := make([]string, 0, cfg.Files)
	for i := 0; i < cfg.Files; i++ {
		d := dirs[r.Intn(len(dirs))]
		p := fmt.Sprintf("%s/f%d", d, i)
		names = append(names, p)
		// Half the files pre-exist with content.
		if r.Intn(2) == 0 {
			pre = append(pre, genOp{kind: "creat", path: p},
				genOp{kind: "pwrite", path: p, data: payload(r)},
				genOp{kind: "close", path: p})
			exists[p] = true
		}
	}

	pick := func() string { return names[r.Intn(len(names))] }
	existing := func() (string, bool) {
		var alive []string
		for p := range exists {
			alive = append(alive, p)
		}
		if len(alive) == 0 {
			return "", false
		}
		// Deterministic order: map iteration is random, so sort by pick.
		best := ""
		for _, p := range names {
			if exists[p] {
				best = p
				if r.Intn(2) == 0 {
					break
				}
			}
		}
		return best, best != ""
	}

	var body []genOp
	for len(body) < cfg.Ops {
		switch r.Intn(6) {
		case 0: // create a missing file
			p := pick()
			if exists[p] {
				continue
			}
			body = append(body, genOp{kind: "creat", path: p})
			exists[p] = true
		case 1: // write to an existing file
			p, ok := existing()
			if !ok {
				continue
			}
			body = append(body, genOp{kind: "pwrite", path: p, off: int64(r.Intn(2)) * 64, data: payload(r)})
		case 2: // append
			p, ok := existing()
			if !ok {
				continue
			}
			body = append(body, genOp{kind: "append", path: p, data: payload(r)})
		case 3: // rename over (possibly) existing target
			src, ok := existing()
			if !ok {
				continue
			}
			dst := pick()
			if dst == src {
				continue
			}
			body = append(body, genOp{kind: "rename", path: src, path2: dst})
			delete(exists, src)
			exists[dst] = true
		case 4: // unlink
			p, ok := existing()
			if !ok {
				continue
			}
			body = append(body, genOp{kind: "unlink", path: p})
			delete(exists, p)
		case 5: // fsync or close
			p, ok := existing()
			if !ok {
				continue
			}
			if cfg.WithFsync && r.Intn(2) == 0 {
				body = append(body, genOp{kind: "fsync", path: p})
			} else {
				body = append(body, genOp{kind: "close", path: p})
			}
		}
	}
	return &genProgram{
		name:     fmt.Sprintf("gen-%d", cfg.Seed),
		preamble: pre,
		body:     body,
	}
}

func payload(r *rand.Rand) []byte {
	b := make([]byte, 16+r.Intn(48))
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return b
}

// Name implements paracrash.Workload.
func (g *genProgram) Name() string { return g.name }

// Preamble implements paracrash.Workload.
func (g *genProgram) Preamble(fs pfs.FileSystem) error {
	return applyGenOps(fs.Client(0), g.preamble)
}

// Run implements paracrash.Workload.
func (g *genProgram) Run(fs pfs.FileSystem) error {
	return applyGenOps(fs.Client(0), g.body)
}

// Script renders the program for inspection and reports.
func (g *genProgram) Script() string {
	out := ""
	for _, op := range g.body {
		switch op.kind {
		case "pwrite":
			out += fmt.Sprintf("pwrite(%s, off=%d, %dB)\n", op.path, op.off, len(op.data))
		case "append":
			out += fmt.Sprintf("append(%s, %dB)\n", op.path, len(op.data))
		case "rename":
			out += fmt.Sprintf("rename(%s, %s)\n", op.path, op.path2)
		default:
			out += fmt.Sprintf("%s(%s)\n", op.kind, op.path)
		}
	}
	return out
}

func applyGenOps(c pfs.Client, ops []genOp) error {
	for _, op := range ops {
		var err error
		switch op.kind {
		case "mkdir":
			err = c.Mkdir(op.path)
		case "creat":
			err = c.Create(op.path)
		case "pwrite":
			err = c.WriteAt(op.path, op.off, op.data)
		case "append":
			err = c.Append(op.path, op.data)
		case "rename":
			err = c.Rename(op.path, op.path2)
		case "unlink":
			err = c.Unlink(op.path)
		case "fsync":
			err = c.Fsync(op.path)
		case "close":
			err = c.Close(op.path)
		default:
			err = fmt.Errorf("generated op kind %q", op.kind)
		}
		if err != nil {
			return fmt.Errorf("generated %s(%s): %w", op.kind, op.path, err)
		}
	}
	return nil
}
