package workloads

import (
	"fmt"
	"math/rand"

	"paracrash/internal/pfs"
)

// Generator bounds. MaxGenOps tracks the checker's layer-op budget
// (paracrash.Options.MaxLayerOps defaults to 20; a body op can fan out into
// a handful of lowermost ops, so 12 keeps preserved-set enumeration sane).
const (
	MaxGenOps   = 12
	MaxGenFiles = 8
	MaxGenDirs  = 4
)

// GenConfig bounds the random POSIX program generator (the paper notes
// that "ParaCrash allows users to generate their own test programs" —
// this is the CrashMonkey-style bounded generator for that use).
//
// Out-of-range fields are clamped, never silently accepted: Ops and Files
// fall back to their defaults when non-positive and are capped at MaxGenOps
// / MaxGenFiles; Dirs is clamped into [0, MaxGenDirs]. Clamp exposes the
// effective configuration.
type GenConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Ops is the number of operations in the traced body (bounded by the
	// checker's layer-op budget; clamped to [1, MaxGenOps]).
	Ops int
	// Files and Dirs bound the namespace the program touches.
	Files int
	Dirs  int
	// WithFsync allows fsync operations in the body.
	WithFsync bool
}

// DefaultGenConfig returns a small but interesting program shape.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{Seed: seed, Ops: 8, Files: 3, Dirs: 2, WithFsync: true}
}

// Clamp returns the configuration the generator actually uses: defaults for
// non-positive Ops/Files, hard caps at the Max* bounds, Dirs in
// [0, MaxGenDirs].
func (cfg GenConfig) Clamp() GenConfig {
	if cfg.Ops <= 0 {
		cfg.Ops = 8
	}
	if cfg.Ops > MaxGenOps {
		cfg.Ops = MaxGenOps
	}
	if cfg.Files <= 0 {
		cfg.Files = 3
	}
	if cfg.Files > MaxGenFiles {
		cfg.Files = MaxGenFiles
	}
	if cfg.Dirs < 0 {
		cfg.Dirs = 0
	}
	if cfg.Dirs > MaxGenDirs {
		cfg.Dirs = MaxGenDirs
	}
	return cfg
}

// Op kinds understood by Program bodies.
const (
	OpMkdir  = "mkdir"
	OpCreat  = "creat"
	OpPwrite = "pwrite"
	OpAppend = "append"
	OpRename = "rename"
	OpUnlink = "unlink"
	OpFsync  = "fsync"
	OpClose  = "close"
)

// Op is one POSIX operation of a generated or enumerated test program. It
// is the unit the fuzz campaign's delta-debugging minimizer removes and the
// corpus files serialise, so it carries JSON tags.
type Op struct {
	Kind  string `json:"kind"`
	Path  string `json:"path"`
	Path2 string `json:"path2,omitempty"`
	Data  []byte `json:"data,omitempty"`
	Off   int64  `json:"off,omitempty"`
}

// String renders the op in the script notation.
func (op Op) String() string {
	switch op.Kind {
	case OpPwrite:
		return fmt.Sprintf("pwrite(%s, off=%d, %dB)", op.Path, op.Off, len(op.Data))
	case OpAppend:
		return fmt.Sprintf("append(%s, %dB)", op.Path, len(op.Data))
	case OpRename:
		return fmt.Sprintf("rename(%s, %s)", op.Path, op.Path2)
	default:
		return fmt.Sprintf("%s(%s)", op.Kind, op.Path)
	}
}

// Program is a deterministic op-list workload: an untraced preamble that
// builds the initial state and a traced body. Generate and Enumerate
// produce Programs; the fuzz campaign rebuilds them from corpus files.
type Program struct {
	name     string
	preamble []Op
	body     []Op
}

// NewProgram builds a workload from explicit op lists. The ops are not
// validated: an op whose prerequisite is missing fails at Run time, which
// is exactly what the campaign minimizer relies on to reject invalid
// shrink candidates.
func NewProgram(name string, preamble, body []Op) *Program {
	return &Program{name: name, preamble: preamble, body: body}
}

// Name implements paracrash.Workload.
func (g *Program) Name() string { return g.name }

// PreambleOps returns the preamble op list (shared slice; treat as
// read-only).
func (g *Program) PreambleOps() []Op { return g.preamble }

// Body returns the traced body op list (shared slice; treat as read-only).
func (g *Program) Body() []Op { return g.body }

// Preamble implements paracrash.Workload.
func (g *Program) Preamble(fs pfs.FileSystem) error {
	return ApplyOps(fs.Client(0), g.preamble)
}

// Run implements paracrash.Workload.
func (g *Program) Run(fs pfs.FileSystem) error {
	return ApplyOps(fs.Client(0), g.body)
}

// Script renders the body for inspection and reports.
func (g *Program) Script() string {
	out := ""
	for _, op := range g.body {
		out += op.String() + "\n"
	}
	return out
}

// Generate builds a random-but-valid POSIX test program: the generator
// tracks the namespace model while choosing operations, so a clean run
// never fails. The same seed always yields the same program.
func Generate(cfg GenConfig) *Program {
	cfg = cfg.Clamp()
	r := rand.New(rand.NewSource(cfg.Seed))

	// Namespace model during generation.
	dirs := []string{""}
	for i := 0; i < cfg.Dirs; i++ {
		dirs = append(dirs, fmt.Sprintf("/dir%d", i))
	}
	var pre []Op
	for _, d := range dirs[1:] {
		pre = append(pre, Op{Kind: OpMkdir, Path: d})
	}
	exists := map[string]bool{}
	names := make([]string, 0, cfg.Files)
	for i := 0; i < cfg.Files; i++ {
		d := dirs[r.Intn(len(dirs))]
		p := fmt.Sprintf("%s/f%d", d, i)
		names = append(names, p)
		// Half the files pre-exist with content.
		if r.Intn(2) == 0 {
			pre = append(pre, Op{Kind: OpCreat, Path: p},
				Op{Kind: OpPwrite, Path: p, Data: payload(r)},
				Op{Kind: OpClose, Path: p})
			exists[p] = true
		}
	}

	pick := func() string { return names[r.Intn(len(names))] }
	existing := func() (string, bool) {
		// Walk names in declaration order (map iteration would be
		// nondeterministic) and stop at a coin flip, so any existing file
		// can be chosen and the choice depends only on the seed.
		best := ""
		for _, p := range names {
			if exists[p] {
				best = p
				if r.Intn(2) == 0 {
					break
				}
			}
		}
		return best, best != ""
	}

	var body []Op
	for len(body) < cfg.Ops {
		switch r.Intn(6) {
		case 0: // create a missing file
			p := pick()
			if exists[p] {
				continue
			}
			body = append(body, Op{Kind: OpCreat, Path: p})
			exists[p] = true
		case 1: // write to an existing file
			p, ok := existing()
			if !ok {
				continue
			}
			body = append(body, Op{Kind: OpPwrite, Path: p, Off: int64(r.Intn(2)) * 64, Data: payload(r)})
		case 2: // append
			p, ok := existing()
			if !ok {
				continue
			}
			body = append(body, Op{Kind: OpAppend, Path: p, Data: payload(r)})
		case 3: // rename over (possibly) existing target
			src, ok := existing()
			if !ok {
				continue
			}
			dst := pick()
			if dst == src {
				continue
			}
			body = append(body, Op{Kind: OpRename, Path: src, Path2: dst})
			delete(exists, src)
			exists[dst] = true
		case 4: // unlink
			p, ok := existing()
			if !ok {
				continue
			}
			body = append(body, Op{Kind: OpUnlink, Path: p})
			delete(exists, p)
		case 5: // fsync or close
			p, ok := existing()
			if !ok {
				continue
			}
			if cfg.WithFsync && r.Intn(2) == 0 {
				body = append(body, Op{Kind: OpFsync, Path: p})
			} else {
				body = append(body, Op{Kind: OpClose, Path: p})
			}
		}
	}
	return &Program{
		name:     fmt.Sprintf("gen-%d", cfg.Seed),
		preamble: pre,
		body:     body,
	}
}

func payload(r *rand.Rand) []byte {
	b := make([]byte, 16+r.Intn(48))
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return b
}

// ApplyOps executes an op list against a PFS client, stopping at the first
// failure.
func ApplyOps(c pfs.Client, ops []Op) error {
	for _, op := range ops {
		var err error
		switch op.Kind {
		case OpMkdir:
			err = c.Mkdir(op.Path)
		case OpCreat:
			err = c.Create(op.Path)
		case OpPwrite:
			err = c.WriteAt(op.Path, op.Off, op.Data)
		case OpAppend:
			err = c.Append(op.Path, op.Data)
		case OpRename:
			err = c.Rename(op.Path, op.Path2)
		case OpUnlink:
			err = c.Unlink(op.Path)
		case OpFsync:
			err = c.Fsync(op.Path)
		case OpClose:
			err = c.Close(op.Path)
		default:
			err = fmt.Errorf("generated op kind %q", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("generated %s(%s): %w", op.Kind, op.Path, err)
		}
	}
	return nil
}
