package workloads

import (
	"bytes"
	"fmt"

	"paracrash/internal/paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/stack"
)

// H5Params are the sensitivity-study knobs of the HDF5/NetCDF programs
// (paper §6.2): dataset dimensions, datasets per group, number of clients.
// The dimensions are scaled down from the paper's 200×200..1000×1000 so a
// dataset is a handful of chunks; the structural transitions (chunk B-tree
// split, SNOD split) happen at the same relative points.
type H5Params struct {
	// Rows, Cols are the preamble datasets' dimensions (paper default
	// 200×200, here 4×4 — exactly one chunk).
	Rows, Cols int
	// ResizeRows, ResizeCols are the H5-resize target (8×8 = 4 chunks keeps
	// a single-level chunk B-tree; 10×10 = 7 chunks splits it, the paper's
	// dimension sensitivity for bug #14).
	ResizeRows, ResizeCols int
	// PerGroup is the number of datasets per preamble group (paper 1–8,
	// default 2... the paper's default initial state stores two groups and
	// two datasets, i.e. one per group).
	PerGroup int
	// Clients is the number of MPI ranks in the parallel programs (paper
	// 1–10, default 2).
	Clients int
}

// DefaultH5Params mirrors the paper's defaults, scaled.
func DefaultH5Params() H5Params {
	return H5Params{Rows: 4, Cols: 4, ResizeRows: 8, ResizeCols: 8, PerGroup: 1, Clients: 2}
}

// FilePath is where the library file lives on every PFS under test.
const FilePath = "/test.h5"

// H5Workload is an HDF5/NetCDF test program together with its library
// adapter for cross-layer checking.
type H5Workload struct {
	name    string
	dialect stack.Dialect
	params  H5Params
	body    func(fs pfs.FileSystem, p H5Params) error
}

// Name implements paracrash.Workload.
func (w *H5Workload) Name() string { return w.name }

// Library returns the checker adapter for this workload's library layer.
func (w *H5Workload) Library() *stack.Library {
	return stack.NewLibrary(w.dialect, FilePath)
}

// Preamble implements paracrash.Workload: it formats the library file with
// two groups holding PerGroup datasets each, with deterministic contents —
// the paper's common initial state.
func (w *H5Workload) Preamble(fs pfs.FileSystem) error {
	s, err := stack.FormatFile(fs, 0, FilePath, w.dialect)
	if err != nil {
		return err
	}
	p := w.params
	for gi := 1; gi <= 2; gi++ {
		g := fmt.Sprintf("/g%d", gi)
		if err := s.CreateGroup(g); err != nil {
			return err
		}
		for di := 1; di <= p.PerGroup; di++ {
			path := fmt.Sprintf("%s/d%d", g, di)
			if err := s.CreateDataset(path, p.Rows, p.Cols); err != nil {
				return err
			}
			fill := bytes.Repeat([]byte{byte('0' + gi), byte('a' + di)}, (p.Rows*p.Cols+1)/2)
			if err := s.WriteDataset(path, fill[:p.Rows*p.Cols]); err != nil {
				return err
			}
		}
	}
	return s.Close()
}

// Run implements paracrash.Workload.
func (w *H5Workload) Run(fs pfs.FileSystem) error { return w.body(fs, w.params) }

// H5Create is the H5-create program: open, create one dataset, close.
func H5Create(p H5Params) *H5Workload {
	return &H5Workload{
		name: "H5-create", dialect: stack.DialectHDF5, params: p,
		body: func(fs pfs.FileSystem, p H5Params) error {
			s, err := stack.OpenFile(fs, 0, FilePath, stack.DialectHDF5)
			if err != nil {
				return err
			}
			if err := s.CreateDataset("/g1/dnew", p.Rows, p.Cols); err != nil {
				return err
			}
			return s.Close()
		},
	}
}

// H5Delete is the H5-delete program: open, delete a dataset, close.
func H5Delete(p H5Params) *H5Workload {
	return &H5Workload{
		name: "H5-delete", dialect: stack.DialectHDF5, params: p,
		body: func(fs pfs.FileSystem, p H5Params) error {
			s, err := stack.OpenFile(fs, 0, FilePath, stack.DialectHDF5)
			if err != nil {
				return err
			}
			if err := s.Delete("/g1/d1"); err != nil {
				return err
			}
			return s.Close()
		},
	}
}

// H5Rename is the H5-rename program: open, move a dataset across groups,
// close.
func H5Rename(p H5Params) *H5Workload {
	return &H5Workload{
		name: "H5-rename", dialect: stack.DialectHDF5, params: p,
		body: func(fs pfs.FileSystem, p H5Params) error {
			s, err := stack.OpenFile(fs, 0, FilePath, stack.DialectHDF5)
			if err != nil {
				return err
			}
			if err := s.Move("/g1/d1", "/g2/dren"); err != nil {
				return err
			}
			return s.Close()
		},
	}
}

// H5Resize is the H5-resize program: open, grow a dataset, close.
func H5Resize(p H5Params) *H5Workload {
	return &H5Workload{
		name: "H5-resize", dialect: stack.DialectHDF5, params: p,
		body: func(fs pfs.FileSystem, p H5Params) error {
			s, err := stack.OpenFile(fs, 0, FilePath, stack.DialectHDF5)
			if err != nil {
				return err
			}
			if err := s.Resize("/g1/d1", p.ResizeRows, p.ResizeCols); err != nil {
				return err
			}
			return s.Close()
		},
	}
}

// CDFCreate is the CDF-create program: NetCDF variable creation.
func CDFCreate(p H5Params) *H5Workload {
	return &H5Workload{
		name: "CDF-create", dialect: stack.DialectNetCDF, params: p,
		body: func(fs pfs.FileSystem, p H5Params) error {
			s, err := stack.OpenFile(fs, 0, FilePath, stack.DialectNetCDF)
			if err != nil {
				return err
			}
			if err := s.CreateDataset("/v1", p.Rows, p.Cols); err != nil {
				return err
			}
			return s.Close()
		},
	}
}

// CDFRename is the CDF-rename program (paper §6.2: tested, no bugs found).
func CDFRename(p H5Params) *H5Workload {
	return &H5Workload{
		name: "CDF-rename", dialect: stack.DialectNetCDF, params: p,
		body: func(fs pfs.FileSystem, p H5Params) error {
			s, err := stack.OpenFile(fs, 0, FilePath, stack.DialectNetCDF)
			if err != nil {
				return err
			}
			if err := s.Move("/g1/d1", "/g1/vren"); err != nil {
				return err
			}
			return s.Close()
		},
	}
}

// H5ParallelCreate is the H5-parallel-create program: Clients ranks
// collectively create one dataset per rank, synchronise, and close
// (rank 0 flushing the metadata).
func H5ParallelCreate(p H5Params) *H5Workload {
	return &H5Workload{
		name: "H5-parallel-create", dialect: stack.DialectHDF5, params: p,
		body: func(fs pfs.FileSystem, p H5Params) error {
			sessions := make([]*stack.Session, p.Clients)
			for r := 0; r < p.Clients; r++ {
				s, err := stack.OpenFile(fs, r, FilePath, stack.DialectHDF5)
				if err != nil {
					return err
				}
				sessions[r] = s
			}
			// Collective creates: every rank applies every create to its
			// cached view (HDF5 collective metadata semantics).
			for i := 0; i < p.Clients; i++ {
				path := fmt.Sprintf("/g1/p%d", i)
				for _, s := range sessions {
					if err := s.CreateDataset(path, p.Rows, p.Cols); err != nil {
						return err
					}
				}
			}
			stack.Barrier(sessions...)
			// Each rank fills its own dataset.
			for i, s := range sessions {
				data := bytes.Repeat([]byte{byte('A' + i)}, p.Rows*p.Cols)
				if err := s.WriteDataset(fmt.Sprintf("/g1/p%d", i), data); err != nil {
					return err
				}
			}
			stack.Barrier(sessions...)
			// Non-zero ranks close first (data-only flush), rank 0 last.
			for r := p.Clients - 1; r >= 0; r-- {
				if err := sessions[r].Close(); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// H5ParallelResize is the H5-parallel-resize program: the ranks
// collectively grow a dataset and write disjoint slabs of the new region.
func H5ParallelResize(p H5Params) *H5Workload {
	return &H5Workload{
		name: "H5-parallel-resize", dialect: stack.DialectHDF5, params: p,
		body: func(fs pfs.FileSystem, p H5Params) error {
			sessions := make([]*stack.Session, p.Clients)
			for r := 0; r < p.Clients; r++ {
				s, err := stack.OpenFile(fs, r, FilePath, stack.DialectHDF5)
				if err != nil {
					return err
				}
				sessions[r] = s
			}
			for _, s := range sessions {
				if err := s.Resize("/g1/d1", p.ResizeRows, p.ResizeCols); err != nil {
					return err
				}
			}
			stack.Barrier(sessions...)
			size := p.ResizeRows * p.ResizeCols
			slab := (size + p.Clients - 1) / p.Clients
			for i, s := range sessions {
				off := i * slab
				n := slab
				if off+n > size {
					n = size - off
				}
				if n <= 0 {
					continue
				}
				data := bytes.Repeat([]byte{byte('a' + i)}, n)
				if err := s.WriteDatasetAt("/g1/d1", off, data); err != nil {
					return err
				}
			}
			stack.Barrier(sessions...)
			for r := p.Clients - 1; r >= 0; r-- {
				if err := sessions[r].Close(); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// H5Programs returns the sequential library programs in paper order.
func H5Programs(p H5Params) []*H5Workload {
	return []*H5Workload{H5Create(p), H5Delete(p), H5Rename(p), H5Resize(p), CDFCreate(p)}
}

// ParallelPrograms returns the parallel library programs.
func ParallelPrograms(p H5Params) []*H5Workload {
	return []*H5Workload{H5ParallelCreate(p), H5ParallelResize(p)}
}

var _ paracrash.Workload = (*H5Workload)(nil)
