package workloads

import (
	"strings"
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/pfs/extfs"
	"paracrash/internal/stack"
	"paracrash/internal/trace"
)

func newExt4(t *testing.T) pfs.FileSystem {
	t.Helper()
	conf := pfs.DefaultConfig()
	conf.MetaServers = 0
	conf.StorageServers = 1
	return extfs.New(conf, trace.NewRecorder())
}

// runWorkload drives preamble + body and returns the mounted tree.
func runWorkload(t *testing.T, w interface {
	Preamble(pfs.FileSystem) error
	Run(pfs.FileSystem) error
}) (*pfs.Tree, pfs.FileSystem) {
	t.Helper()
	fs := newExt4(t)
	if err := w.Preamble(fs); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(fs); err != nil {
		t.Fatal(err)
	}
	tree, err := fs.Mount()
	if err != nil {
		t.Fatal(err)
	}
	return tree, fs
}

func TestARVREndState(t *testing.T) {
	tree, _ := runWorkload(t, ARVR())
	e, ok := tree.Entries["/foo"]
	if !ok || !strings.HasPrefix(string(e.Data), "new") {
		t.Fatalf("ARVR end state wrong:\n%s", tree.Serialize())
	}
	if _, ok := tree.Entries["/tmp"]; ok {
		t.Fatal("tmp should be renamed away")
	}
}

func TestCREndState(t *testing.T) {
	tree, _ := runWorkload(t, CR())
	if _, ok := tree.Entries["/B/foo"]; !ok {
		t.Fatalf("CR end state wrong:\n%s", tree.Serialize())
	}
	if _, ok := tree.Entries["/A/foo"]; ok {
		t.Fatal("foo should have moved out of /A")
	}
}

func TestRCEndState(t *testing.T) {
	tree, _ := runWorkload(t, RC())
	if _, ok := tree.Entries["/B/foo"]; !ok {
		t.Fatalf("RC end state wrong:\n%s", tree.Serialize())
	}
	if _, ok := tree.Entries["/A"]; ok {
		t.Fatal("/A should have been renamed to /B")
	}
}

func TestWALEndState(t *testing.T) {
	tree, _ := runWorkload(t, WAL())
	if _, ok := tree.Entries["/log"]; ok {
		t.Fatal("the log should be unlinked at the end")
	}
	e, ok := tree.Entries["/foo"]
	if !ok || len(e.Data) != 128 || e.Data[0] != 'n' || e.Data[64] != 'N' {
		t.Fatalf("WAL end state wrong:\n%s", tree.Serialize())
	}
}

func TestH5WorkloadsEndStates(t *testing.T) {
	p := DefaultH5Params()
	cases := []struct {
		w        *H5Workload
		contains []string
		absent   []string
	}{
		{H5Create(p), []string{"dataset /g1/dnew 4x4"}, nil},
		{H5Delete(p), []string{"group /g1"}, []string{"/g1/d1"}},
		{H5Rename(p), []string{"dataset /g2/dren"}, []string{"/g1/d1"}},
		{H5Resize(p), []string{"dataset /g1/d1 8x8"}, nil},
		{CDFCreate(p), []string{"dataset /v1"}, nil},
		{CDFRename(p), []string{"/g1/vren"}, []string{"/g1/d1 "}},
	}
	for _, tc := range cases {
		t.Run(tc.w.Name(), func(t *testing.T) {
			fs := newExt4(t)
			if err := tc.w.Preamble(fs); err != nil {
				t.Fatal(err)
			}
			lib := tc.w.Library()
			tree, err := fs.Mount()
			if err != nil {
				t.Fatal(err)
			}
			if err := lib.Seed(tree); err != nil {
				t.Fatal(err)
			}
			if err := tc.w.Run(fs); err != nil {
				t.Fatal(err)
			}
			tree, err = fs.Mount()
			if err != nil {
				t.Fatal(err)
			}
			state, err := lib.StateFromTree(tree)
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range tc.contains {
				if !strings.Contains(state, want) {
					t.Errorf("state missing %q:\n%s", want, state)
				}
			}
			for _, bad := range tc.absent {
				if strings.Contains(state, bad) {
					t.Errorf("state still contains %q:\n%s", bad, state)
				}
			}
			if strings.Contains(state, "corrupt") || strings.Contains(state, "UNOPENABLE") {
				t.Errorf("clean run left corruption:\n%s", state)
			}
		})
	}
}

func TestParallelWorkloadsEndStates(t *testing.T) {
	p := DefaultH5Params()
	for _, w := range ParallelPrograms(p) {
		t.Run(w.Name(), func(t *testing.T) {
			fs := newExt4(t)
			if err := w.Preamble(fs); err != nil {
				t.Fatal(err)
			}
			if err := w.Run(fs); err != nil {
				t.Fatal(err)
			}
			tree, err := fs.Mount()
			if err != nil {
				t.Fatal(err)
			}
			lib := stack.NewLibrary(stack.DialectHDF5, FilePath)
			state, err := lib.StateFromTree(tree)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(state, "corrupt") {
				t.Fatalf("clean parallel run left corruption:\n%s", state)
			}
			if w.Name() == "H5-parallel-create" && !strings.Contains(state, "/g1/p1") {
				t.Fatalf("rank 1's dataset missing:\n%s", state)
			}
			if w.Name() == "H5-parallel-resize" && !strings.Contains(state, "8x8") {
				t.Fatalf("resize not visible:\n%s", state)
			}
		})
	}
}

func TestFig5ProgramRuns(t *testing.T) {
	w := Fig5Program()
	if w.Name() != "Fig5" {
		t.Fatal("name")
	}
	tree, _ := runWorkload(t, w.(interface {
		Preamble(pfs.FileSystem) error
		Run(pfs.FileSystem) error
	}))
	for _, f := range []string{"/f1", "/f2", "/f3"} {
		e, ok := tree.Entries[f]
		if !ok || len(e.Data) != 1 {
			t.Fatalf("file %s wrong:\n%s", f, tree.Serialize())
		}
	}
}
