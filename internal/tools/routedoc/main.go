// Command routedoc keeps docs/API.md honest: every route registered on
// the internal/serve mux must appear in the API reference, and every route
// the reference documents must exist in the code. It is part of the
// documentation gate behind `make doclint` (part of `make ci`).
//
// Routes are extracted from the source by parsing mux.Handle/HandleFunc
// calls whose pattern is a "METHOD /path" string literal, and from the
// document by scanning for backtick-quoted `METHOD /path` spans — so
// documenting a route means naming it verbatim in backticks, which is also
// how the reference renders it.
//
// Usage:
//
//	go run ./internal/tools/routedoc [-src internal/serve/server.go] [-doc docs/API.md] [root]
//
// Exit status is 1 when the two sets differ, with one line per missing or
// stale route.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	src := flag.String("src", "internal/serve/server.go", "Go source registering the mux routes")
	doc := flag.String("doc", "docs/API.md", "API reference document")
	flag.Parse()
	root := "."
	if flag.NArg() == 1 {
		root = flag.Arg(0)
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: routedoc [-src FILE] [-doc FILE] [root]")
		os.Exit(2)
	}

	code, err := routesFromSource(filepath.Join(root, *src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "routedoc:", err)
		os.Exit(2)
	}
	documented, err := routesFromDoc(filepath.Join(root, *doc))
	if err != nil {
		fmt.Fprintln(os.Stderr, "routedoc:", err)
		os.Exit(2)
	}
	if len(code) == 0 {
		fmt.Fprintf(os.Stderr, "routedoc: no routes found in %s — wrong -src?\n", *src)
		os.Exit(2)
	}

	problems := 0
	for _, r := range sortedDiff(code, documented) {
		fmt.Printf("%s: route %q registered in %s but not documented\n", *doc, r, *src)
		problems++
	}
	for _, r := range sortedDiff(documented, code) {
		fmt.Printf("%s: route %q documented but not registered in %s\n", *doc, r, *src)
		problems++
	}
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "routedoc: %d route(s) out of sync between %s and %s\n", problems, *src, *doc)
		os.Exit(1)
	}
}

// routesFromSource parses the file and collects the "METHOD /path" pattern
// of every mux.Handle / mux.HandleFunc registration.
func routesFromSource(path string) (map[string]bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	routes := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc") {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		pattern, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		// Only "METHOD /path" patterns are routes; a bare path would be a
		// method-agnostic registration this repo doesn't use.
		if method, rest, ok := strings.Cut(pattern, " "); ok && strings.HasPrefix(rest, "/") && method == strings.ToUpper(method) {
			routes[pattern] = true
		}
		return true
	})
	return routes, nil
}

// docRoute matches a backtick-quoted route span: `GET /v1/jobs/{id}`.
var docRoute = regexp.MustCompile("`(GET|HEAD|POST|PUT|PATCH|DELETE|OPTIONS) (/[^`\\s]*)`")

// routesFromDoc scans the markdown for backtick-quoted METHOD /path spans.
func routesFromDoc(path string) (map[string]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	routes := map[string]bool{}
	for _, m := range docRoute.FindAllStringSubmatch(string(raw), -1) {
		routes[m[1]+" "+m[2]] = true
	}
	return routes, nil
}

// sortedDiff returns the members of a missing from b, sorted.
func sortedDiff(a, b map[string]bool) []string {
	var out []string
	for r := range a {
		if !b[r] {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}
