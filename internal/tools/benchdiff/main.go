// Command benchdiff compares a freshly written BENCH_*.json against a
// baseline (by default the latest previously committed one) and reports
// cells whose throughput regressed beyond a tolerance. It has two modes:
//
//   - Default (warn-only): regressions print as "WARN:" lines and the exit
//     status is always 0 — the historical `make bench` tripwire.
//   - Gate (-gate): regressions are violations and the exit status is 1.
//     This is the enforced perf budget behind `make benchgate`: a cell
//     whose states_per_sec drops, or whose restores_per_state rises, by
//     more than -max-regress fails the build.
//
// Usage:
//
//	go run ./internal/tools/benchdiff [-gate] [-max-regress 0.20] \
//	    [-baseline OLD.json] [-subset] [-dir .] NEW_BENCH.json
//
// Cells are matched by (program, fs, mode, workers, representative,
// incremental). In gate mode a baseline cell missing from the new run is a
// violation — unless -subset declares the new run as an intentional subset
// (the fast benchgate cell set), in which case only cells present on both
// sides are compared. New cells are never violations: the trajectory
// legitimately grows. Exit codes: 0 pass, 1 gate violation, 2 usage or I/O
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// benchRecord mirrors the exps.BenchRecord fields benchdiff matches and
// compares on; decoding only these keeps the tool independent of the full
// record shape.
type benchRecord struct {
	Program          string  `json:"program"`
	FS               string  `json:"fs"`
	Mode             string  `json:"mode"`
	Workers          int     `json:"workers"`
	Representative   bool    `json:"representative"`
	Incremental      bool    `json:"incremental"`
	StatesPerSec     float64 `json:"states_per_sec"`
	RestoresPerState float64 `json:"restores_per_state"`
	Err              string  `json:"error"`
}

// fleetRecord mirrors the exps.FleetBenchRecord fields benchdiff compares
// on: the cell identity (fleet shape) and the headline throughput.
type fleetRecord struct {
	Workers    int     `json:"workers"`
	Tenants    int     `json:"tenants"`
	Shards     int     `json:"shards"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	Err        string  `json:"error"`
}

// benchSummary mirrors the BENCH_*.json document envelope.
type benchSummary struct {
	Records []benchRecord `json:"records"`
	Fleet   *fleetRecord  `json:"fleet"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment abstracted: argv after the program
// name, the two output streams, and the exit code as the return value.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var maxRegress float64
	fs.Float64Var(&maxRegress, "max-regress", 0.20, "relative regression that triggers a warning or gate violation")
	fs.Float64Var(&maxRegress, "threshold", 0.20, "alias for -max-regress")
	dir := fs.String("dir", ".", "directory holding the committed BENCH_*.json trajectory")
	gate := fs.Bool("gate", false, "enforce: exit 1 on any regression beyond -max-regress")
	baseline := fs.String("baseline", "", "compare against this file instead of the latest BENCH_*.json in -dir")
	subset := fs.String("subset", "", "declare the new run as an intentional cell subset (e.g. \"fast\"): baseline cells it omits are not violations")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: benchdiff [-gate] [-max-regress 0.20] [-baseline OLD.json] [-subset NAME] [-dir .] NEW_BENCH.json")
		return 2
	}
	if maxRegress < 0 {
		fmt.Fprintf(stderr, "benchdiff: -max-regress must be >= 0, got %g\n", maxRegress)
		return 2
	}
	newPath := fs.Arg(0)

	prevPath := *baseline
	if prevPath == "" {
		var err error
		prevPath, err = latestOther(*dir, newPath)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		if prevPath == "" {
			fmt.Fprintf(stdout, "benchdiff: no previous BENCH_*.json in %s; nothing to compare\n", *dir)
			return 0
		}
	}

	prev, prevFleet, err := load(prevPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	cur, curFleet, err := load(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	mode := "warn"
	if *gate {
		mode = "gate"
	}
	fmt.Fprintf(stdout, "benchdiff: %s vs %s (%s, tolerance %.0f%%)\n", filepath.Base(newPath), filepath.Base(prevPath), mode, maxRegress*100)

	// Deterministic report order regardless of map iteration.
	keys := make([]string, 0, len(prev))
	for key := range prev {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	violations := 0
	report := func(format string, args ...any) {
		prefix := "WARN"
		if *gate {
			prefix = "FAIL"
		}
		fmt.Fprintf(stdout, prefix+": "+format+"\n", args...)
		violations++
	}
	for _, key := range keys {
		p := prev[key]
		c, ok := cur[key]
		if !ok {
			if *subset != "" {
				fmt.Fprintf(stdout, "note: cell %s not in the %q subset\n", key, *subset)
			} else if *gate {
				report("cell %s missing from the new run", key)
			} else {
				fmt.Fprintf(stdout, "note: cell %s dropped from the trajectory\n", key)
			}
			continue
		}
		if p.Err != "" {
			continue
		}
		if c.Err != "" {
			if *gate {
				report("cell %s now errors: %s", key, c.Err)
			}
			continue
		}
		if p.StatesPerSec > 0 {
			rel := (c.StatesPerSec - p.StatesPerSec) / p.StatesPerSec
			if rel < -maxRegress {
				report("%s states_per_sec %.0f -> %.0f (%.0f%%)", key, p.StatesPerSec, c.StatesPerSec, rel*100)
			}
		}
		// restores_per_state is an efficiency budget: more restores charged
		// per covered state means the O(delta) reconstruction got lazier, so
		// an *increase* beyond tolerance is the violation.
		if p.RestoresPerState > 0 {
			rel := (c.RestoresPerState - p.RestoresPerState) / p.RestoresPerState
			if rel > maxRegress {
				report("%s restores_per_state %.3f -> %.3f (+%.0f%%)", key, p.RestoresPerState, c.RestoresPerState, rel*100)
			}
		}
	}
	curKeys := make([]string, 0, len(cur))
	for key := range cur {
		if _, ok := prev[key]; !ok {
			curKeys = append(curKeys, key)
		}
	}
	sort.Strings(curKeys)
	for _, key := range curKeys {
		fmt.Fprintf(stdout, "note: new cell %s\n", key)
	}

	// The fleet throughput cell. Tolerant of history: a baseline predating
	// the cell, or a reshaped fleet (different workers/tenants/shards), is
	// a note, never a violation — only a same-shape jobs/sec drop beyond
	// the tolerance counts.
	switch {
	case prevFleet == nil && curFleet == nil:
	case prevFleet == nil:
		fmt.Fprintf(stdout, "note: new fleet cell (%dw/%dt/%ds, %.1f jobs/sec)\n",
			curFleet.Workers, curFleet.Tenants, curFleet.Shards, curFleet.JobsPerSec)
	case curFleet == nil:
		if *gate {
			report("fleet cell missing from the new run")
		} else {
			fmt.Fprintln(stdout, "note: fleet cell dropped from the trajectory")
		}
	case prevFleet.Err != "":
	case curFleet.Err != "":
		if *gate {
			report("fleet cell now errors: %s", curFleet.Err)
		}
	case prevFleet.Workers != curFleet.Workers || prevFleet.Tenants != curFleet.Tenants || prevFleet.Shards != curFleet.Shards:
		fmt.Fprintf(stdout, "note: fleet cell reshaped (%dw/%dt/%ds -> %dw/%dt/%ds), not compared\n",
			prevFleet.Workers, prevFleet.Tenants, prevFleet.Shards,
			curFleet.Workers, curFleet.Tenants, curFleet.Shards)
	case prevFleet.JobsPerSec > 0:
		rel := (curFleet.JobsPerSec - prevFleet.JobsPerSec) / prevFleet.JobsPerSec
		if rel < -maxRegress {
			report("fleet jobs_per_sec %.1f -> %.1f (%.0f%%)", prevFleet.JobsPerSec, curFleet.JobsPerSec, rel*100)
		}
	}

	if violations == 0 {
		fmt.Fprintln(stdout, "benchdiff: no cell regressed beyond the tolerance")
		return 0
	}
	if *gate {
		fmt.Fprintf(stdout, "benchdiff: %d gate violation(s)\n", violations)
		return 1
	}
	return 0
}

// load reads a BENCH_*.json and indexes its records by cell identity; the
// fleet cell (absent from older trajectory files) rides alongside.
func load(path string) (map[string]benchRecord, *fleetRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var sum benchSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		return nil, nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	out := make(map[string]benchRecord, len(sum.Records))
	for _, r := range sum.Records {
		key := fmt.Sprintf("%s/%s/%s/workers=%d/rep=%t/inc=%t", r.Program, r.FS, r.Mode, r.Workers, r.Representative, r.Incremental)
		out[key] = r
	}
	return out, sum.Fleet, nil
}

// latestOther returns the lexically greatest BENCH_*.json in dir other than
// newPath — the timestamped naming scheme makes lexical order chronological.
func latestOther(dir, newPath string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	abs := func(p string) string {
		a, err := filepath.Abs(p)
		if err != nil {
			return p
		}
		return a
	}
	sort.Strings(matches)
	latest := ""
	for _, m := range matches {
		if abs(m) != abs(newPath) {
			latest = m
		}
	}
	return latest, nil
}
