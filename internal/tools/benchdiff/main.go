// Command benchdiff compares a freshly written BENCH_*.json against the
// latest previously committed one and warns when any cell's states_per_sec
// throughput regressed by more than the threshold. It is the regression
// tripwire behind `make bench`: the trajectory files already make effort
// regressions visible as counter diffs, and this makes throughput
// regressions impossible to commit silently.
//
// Usage:
//
//	go run ./internal/tools/benchdiff [-threshold 0.20] [-dir .] NEW_BENCH.json
//
// Cells are matched by (program, fs, mode, workers, representative,
// incremental); cells present on only one side are reported but never
// fatal (the trajectory legitimately grows cells). Warnings go to stdout
// prefixed "WARN:"; the exit status is always 0 — wall-clock throughput is
// machine-dependent, so the gate informs, it does not block.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// benchRecord mirrors the exps.BenchRecord fields benchdiff matches and
// compares on; decoding only these keeps the tool independent of the full
// record shape.
type benchRecord struct {
	Program        string  `json:"program"`
	FS             string  `json:"fs"`
	Mode           string  `json:"mode"`
	Workers        int     `json:"workers"`
	Representative bool    `json:"representative"`
	Incremental    bool    `json:"incremental"`
	StatesPerSec   float64 `json:"states_per_sec"`
	Err            string  `json:"error"`
}

// benchSummary mirrors the BENCH_*.json document envelope.
type benchSummary struct {
	Records []benchRecord `json:"records"`
}

func main() {
	threshold := flag.Float64("threshold", 0.20, "relative states_per_sec drop that triggers a warning")
	dir := flag.String("dir", ".", "directory holding the committed BENCH_*.json trajectory")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.20] [-dir .] NEW_BENCH.json")
		os.Exit(2)
	}
	newPath := flag.Arg(0)

	prevPath, err := latestOther(*dir, newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	if prevPath == "" {
		fmt.Printf("benchdiff: no previous BENCH_*.json in %s; nothing to compare\n", *dir)
		return
	}

	prev, err := load(prevPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchdiff: %s vs %s (threshold %.0f%%)\n", filepath.Base(newPath), filepath.Base(prevPath), *threshold*100)
	warned := 0
	for key, p := range prev {
		c, ok := cur[key]
		if !ok {
			fmt.Printf("note: cell %s dropped from the trajectory\n", key)
			continue
		}
		if p.Err != "" || c.Err != "" || p.StatesPerSec <= 0 {
			continue
		}
		rel := (c.StatesPerSec - p.StatesPerSec) / p.StatesPerSec
		if rel < -*threshold {
			fmt.Printf("WARN: %s states_per_sec %.0f -> %.0f (%.0f%%)\n", key, p.StatesPerSec, c.StatesPerSec, rel*100)
			warned++
		}
	}
	for key := range cur {
		if _, ok := prev[key]; !ok {
			fmt.Printf("note: new cell %s\n", key)
		}
	}
	if warned == 0 {
		fmt.Println("benchdiff: no cell regressed beyond the threshold")
	}
}

// load reads a BENCH_*.json and indexes its records by cell identity.
func load(path string) (map[string]benchRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sum benchSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	out := make(map[string]benchRecord, len(sum.Records))
	for _, r := range sum.Records {
		key := fmt.Sprintf("%s/%s/%s/workers=%d/rep=%t/inc=%t", r.Program, r.FS, r.Mode, r.Workers, r.Representative, r.Incremental)
		out[key] = r
	}
	return out, nil
}

// latestOther returns the lexically greatest BENCH_*.json in dir other than
// newPath — the timestamped naming scheme makes lexical order chronological.
func latestOther(dir, newPath string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	abs := func(p string) string {
		a, err := filepath.Abs(p)
		if err != nil {
			return p
		}
		return a
	}
	sort.Strings(matches)
	latest := ""
	for _, m := range matches {
		if abs(m) != abs(newPath) {
			latest = m
		}
	}
	return latest, nil
}
