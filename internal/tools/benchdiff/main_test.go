package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the benchdiff executable:
// when the marker variable is set, the process runs benchdiff's real entry
// point instead of the test suite, so tests can verify actual exit codes
// by re-executing themselves.
func TestMain(m *testing.M) {
	if os.Getenv("PARACRASH_BENCHDIFF_UNDER_TEST") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// execBenchdiff re-executes the test binary as benchdiff with the given
// args and returns the combined output and exit code.
func execBenchdiff(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PARACRASH_BENCHDIFF_UNDER_TEST=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("re-exec benchdiff: %v\n%s", err, out)
	}
	return string(out), exitErr.ExitCode()
}

// cell builds one synthetic record JSON fragment.
func cell(prog, fs, mode string, workers int, sps, rps float64) string {
	return fmt.Sprintf(`{"program":%q,"fs":%q,"mode":%q,"workers":%d,"representative":true,"incremental":true,"states_per_sec":%g,"restores_per_state":%g}`,
		prog, fs, mode, workers, sps, rps)
}

// writeSummary writes a synthetic BENCH_*.json with the given record
// fragments and returns its path.
func writeSummary(t *testing.T, dir, name string, records ...string) string {
	t.Helper()
	doc := `{"generated_at":"2026-01-01T00:00:00Z","records":[` + strings.Join(records, ",") + `]}`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateFixtures(t *testing.T) {
	baselineCells := []string{
		cell("ARVR", "beegfs", "brute-force", 1, 1000, 0.5),
		cell("CR", "ext4", "pruning", 1, 2000, 1.0),
	}
	cases := []struct {
		name     string
		newCells []string
		args     []string
		wantExit int
		wantOut  string // substring of combined output
	}{
		{
			name: "within tolerance passes",
			newCells: []string{
				cell("ARVR", "beegfs", "brute-force", 1, 950, 0.5),
				cell("CR", "ext4", "pruning", 1, 1900, 1.05),
			},
			wantExit: 0,
			wantOut:  "no cell regressed",
		},
		{
			name: "states_per_sec regression fails",
			newCells: []string{
				cell("ARVR", "beegfs", "brute-force", 1, 700, 0.5), // -30% > 20% tolerance
				cell("CR", "ext4", "pruning", 1, 2000, 1.0),
			},
			wantExit: 1,
			wantOut:  "FAIL: ARVR/beegfs/brute-force/workers=1/rep=true/inc=true states_per_sec",
		},
		{
			name: "restores_per_state increase fails",
			newCells: []string{
				cell("ARVR", "beegfs", "brute-force", 1, 1000, 0.8), // +60% restores
				cell("CR", "ext4", "pruning", 1, 2000, 1.0),
			},
			wantExit: 1,
			wantOut:  "restores_per_state",
		},
		{
			name: "improvement passes",
			newCells: []string{
				cell("ARVR", "beegfs", "brute-force", 1, 5000, 0.1),
				cell("CR", "ext4", "pruning", 1, 9000, 0.2),
			},
			wantExit: 0,
			wantOut:  "no cell regressed",
		},
		{
			name: "new cell is a note, not a violation",
			newCells: []string{
				cell("ARVR", "beegfs", "brute-force", 1, 1000, 0.5),
				cell("CR", "ext4", "pruning", 1, 2000, 1.0),
				cell("WAL", "glusterfs", "pruning", 1, 3000, 0.3),
			},
			wantExit: 0,
			wantOut:  "note: new cell WAL/glusterfs/pruning/workers=1/rep=true/inc=true",
		},
		{
			name: "missing cell fails the gate",
			newCells: []string{
				cell("ARVR", "beegfs", "brute-force", 1, 1000, 0.5),
			},
			wantExit: 1,
			wantOut:  "FAIL: cell CR/ext4/pruning/workers=1/rep=true/inc=true missing",
		},
		{
			name: "declared subset tolerates missing cells",
			newCells: []string{
				cell("ARVR", "beegfs", "brute-force", 1, 1000, 0.5),
			},
			args:     []string{"-subset", "fast"},
			wantExit: 0,
			wantOut:  `not in the "fast" subset`,
		},
		{
			name: "subset still gates the cells it has",
			newCells: []string{
				cell("ARVR", "beegfs", "brute-force", 1, 100, 0.5),
			},
			args:     []string{"-subset", "fast"},
			wantExit: 1,
			wantOut:  "states_per_sec",
		},
		{
			name: "wider tolerance forgives the regression",
			newCells: []string{
				cell("ARVR", "beegfs", "brute-force", 1, 700, 0.5),
				cell("CR", "ext4", "pruning", 1, 2000, 1.0),
			},
			args:     []string{"-max-regress", "0.5"},
			wantExit: 0,
			wantOut:  "no cell regressed",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			base := writeSummary(t, dir, "BENCH_0001.json", baselineCells...)
			fresh := writeSummary(t, dir, "fresh.json", tc.newCells...)
			args := append([]string{"-gate", "-baseline", base}, tc.args...)
			args = append(args, fresh)
			out, code := execBenchdiff(t, args...)
			if code != tc.wantExit {
				t.Fatalf("exit = %d, want %d\noutput:\n%s", code, tc.wantExit, out)
			}
			if !strings.Contains(out, tc.wantOut) {
				t.Fatalf("output missing %q:\n%s", tc.wantOut, out)
			}
		})
	}
}

func TestWarnModeNeverFails(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "BENCH_0001.json",
		cell("ARVR", "beegfs", "brute-force", 1, 1000, 0.5))
	fresh := writeSummary(t, dir, "fresh.json",
		cell("ARVR", "beegfs", "brute-force", 1, 100, 5.0)) // massive regression
	out, code := execBenchdiff(t, "-baseline", base, fresh)
	if code != 0 {
		t.Fatalf("warn mode exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "WARN:") {
		t.Fatalf("warn mode output missing WARN:\n%s", out)
	}
}

func TestUsageAndIOErrorsExit2(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
	}{
		{"no positional arg", []string{"-gate"}},
		{"two positional args", []string{"a.json", "b.json"}},
		{"negative tolerance", []string{"-max-regress", "-1", "x.json"}},
		{"missing new file", []string{"-baseline", filepath.Join(dir, "nope.json"), filepath.Join(dir, "also-nope.json")}},
		{"unknown flag", []string{"-bogus", "x.json"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := execBenchdiff(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2\n%s", code, out)
			}
		})
	}
}

func TestLatestBaselineDiscovery(t *testing.T) {
	dir := t.TempDir()
	writeSummary(t, dir, "BENCH_0001.json", cell("ARVR", "beegfs", "brute-force", 1, 500, 0.5))
	writeSummary(t, dir, "BENCH_0002.json", cell("ARVR", "beegfs", "brute-force", 1, 1000, 0.5))
	fresh := writeSummary(t, dir, "BENCH_0003.json", cell("ARVR", "beegfs", "brute-force", 1, 990, 0.5))
	out, code := execBenchdiff(t, "-gate", "-dir", dir, fresh)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	// Must have compared against 0002 (the latest other), not 0001: vs 0001
	// the fresh run would be +98%, vs 0002 it is -1%.
	if !strings.Contains(out, "BENCH_0002.json") {
		t.Fatalf("baseline was not the latest committed file:\n%s", out)
	}
}

func TestNoBaselinePasses(t *testing.T) {
	dir := t.TempDir()
	fresh := writeSummary(t, dir, "BENCH_0001.json", cell("ARVR", "beegfs", "brute-force", 1, 1000, 0.5))
	out, code := execBenchdiff(t, "-gate", "-dir", dir, fresh)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "nothing to compare") {
		t.Fatalf("output missing no-baseline note:\n%s", out)
	}
}

// writeSummaryFleet writes a synthetic BENCH_*.json carrying a fleet cell
// alongside one engine record.
func writeSummaryFleet(t *testing.T, dir, name, fleet string, records ...string) string {
	t.Helper()
	doc := `{"generated_at":"2026-01-01T00:00:00Z","records":[` + strings.Join(records, ",") + `],"fleet":` + fleet + `}`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// fleetCell builds a synthetic fleet record fragment.
func fleetCell(workers, tenants, shards int, jps float64) string {
	return fmt.Sprintf(`{"workers":%d,"tenants":%d,"shards":%d,"jobs_per_sec":%g}`, workers, tenants, shards, jps)
}

func TestFleetCellGate(t *testing.T) {
	rec := cell("ARVR", "beegfs", "brute-force", 1, 1000, 0.5)

	t.Run("baseline without fleet cell passes", func(t *testing.T) {
		dir := t.TempDir()
		writeSummary(t, dir, "BENCH_0001.json", rec)
		fresh := writeSummaryFleet(t, dir, "BENCH_0002.json", fleetCell(3, 2, 2, 50), rec)
		out, code := execBenchdiff(t, "-gate", "-dir", dir, fresh)
		if code != 0 {
			t.Fatalf("exit = %d, want 0\n%s", code, out)
		}
		if !strings.Contains(out, "new fleet cell") {
			t.Fatalf("output missing new-fleet note:\n%s", out)
		}
	})

	t.Run("fleet throughput regression fails the gate", func(t *testing.T) {
		dir := t.TempDir()
		writeSummaryFleet(t, dir, "BENCH_0001.json", fleetCell(3, 2, 2, 100), rec)
		fresh := writeSummaryFleet(t, dir, "BENCH_0002.json", fleetCell(3, 2, 2, 40), rec)
		out, code := execBenchdiff(t, "-gate", "-max-regress", "0.5", "-dir", dir, fresh)
		if code != 1 {
			t.Fatalf("exit = %d, want 1\n%s", code, out)
		}
		if !strings.Contains(out, "fleet jobs_per_sec") {
			t.Fatalf("output missing fleet violation:\n%s", out)
		}
	})

	t.Run("reshaped fleet is not compared", func(t *testing.T) {
		dir := t.TempDir()
		writeSummaryFleet(t, dir, "BENCH_0001.json", fleetCell(3, 2, 2, 100), rec)
		fresh := writeSummaryFleet(t, dir, "BENCH_0002.json", fleetCell(8, 4, 4, 10), rec)
		out, code := execBenchdiff(t, "-gate", "-dir", dir, fresh)
		if code != 0 {
			t.Fatalf("exit = %d, want 0\n%s", code, out)
		}
		if !strings.Contains(out, "reshaped") {
			t.Fatalf("output missing reshape note:\n%s", out)
		}
	})

	t.Run("dropped fleet cell fails the gate", func(t *testing.T) {
		dir := t.TempDir()
		writeSummaryFleet(t, dir, "BENCH_0001.json", fleetCell(3, 2, 2, 100), rec)
		fresh := writeSummary(t, dir, "BENCH_0002.json", rec)
		out, code := execBenchdiff(t, "-gate", "-dir", dir, fresh)
		if code != 1 {
			t.Fatalf("exit = %d, want 1\n%s", code, out)
		}
	})
}
