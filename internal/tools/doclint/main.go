// Command doclint enforces godoc coverage: every scanned package must
// carry a package comment, and every exported identifier — types,
// functions, methods, and const/var groups — must be documented. It is
// the documentation gate behind `make doclint` (part of `make ci`).
//
// Usage:
//
//	go run ./internal/tools/doclint [-skip dir,dir] [root ...]
//
// Each root is walked recursively; _test.go files, testdata and any
// -skip directories are ignored. Exit status is 1 when any exported
// identifier is undocumented, with one "file:line: identifier" per
// finding.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	skip := flag.String("skip", "", "comma-separated directory names to skip (testdata and dot-dirs are always skipped)")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	skipSet := map[string]bool{}
	for _, s := range strings.Split(*skip, ",") {
		if s != "" {
			skipSet[s] = true
		}
	}

	var dirs []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || skipSet[name]) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
	}
	sort.Strings(dirs)

	var problems []string
	for _, dir := range dirs {
		problems = append(problems, lintDir(dir)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifiers\n", len(problems))
		os.Exit(1)
	}
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// lintDir parses one directory's non-test files and reports undocumented
// exported identifiers and missing package comments.
func lintDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse error: %v", dir, err)}
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			out = append(out, lintFile(fset, name, f)...)
		}
	}
	sort.Strings(out)
	return out
}

// lintFile reports undocumented exported declarations in one file.
func lintFile(fset *token.FileSet, name string, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what, ident string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s is undocumented", p.Filename, p.Line, what, ident))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods count when the receiver's base type is exported.
			what := "function"
			ident := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				base := receiverBase(d.Recv.List[0].Type)
				if base == "" || !ast.IsExported(base) {
					continue
				}
				what, ident = "method", base+"."+d.Name.Name
			}
			report(d.Pos(), what, ident)
		case *ast.GenDecl:
			out = append(out, lintGenDecl(fset, d)...)
		}
	}
	_ = name
	return out
}

// lintGenDecl checks const/var/type declarations. A group comment on the
// decl documents every spec inside it; otherwise each exported spec needs
// its own comment.
func lintGenDecl(fset *token.FileSet, d *ast.GenDecl) []string {
	if d.Tok == token.IMPORT {
		return nil
	}
	var out []string
	report := func(pos token.Pos, what, ident string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s is undocumented", p.Filename, p.Line, what, ident))
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					what := "const"
					if d.Tok == token.VAR {
						what = "var"
					}
					report(n.Pos(), what, n.Name)
				}
			}
		}
	}
	return out
}

// receiverBase extracts the receiver's base type name (unwrapping
// pointers and generic instantiations).
func receiverBase(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
