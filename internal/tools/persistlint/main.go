// Command persistlint enforces the single-persistence-layer rule: daemon
// state packages must route every durable write through internal/statefs
// (the audited temp+fsync+rename / O_EXCL / fsynced-append layer that
// `make selfcheck` crash-tests), never through raw os write calls whose
// crash-consistency nobody proved.
//
// It walks the non-test Go files of the package directories given as
// arguments and fails (exit 1, one line per offence) on calls to
// os.Create, os.CreateTemp, os.OpenFile, os.Rename or os.WriteFile.
// Read-side and namespace calls (os.Open, os.ReadFile, os.ReadDir,
// os.Stat, os.Remove, os.MkdirAll) stay allowed: reads need no write
// discipline, and removals are idempotent under crashes.
//
// Usage:
//
//	go run ./internal/tools/persistlint ./internal/serve
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// banned maps the forbidden os functions to the statefs replacement the
// diagnostic suggests.
var banned = map[string]string{
	"Create":     "statefs.WriteBytes / statefs.WriteJSON (atomic replace)",
	"CreateTemp": "statefs.WriteBytes (it owns the temp file)",
	"OpenFile":   "statefs.CreateExclusive (O_EXCL) or statefs.Append (journal)",
	"Rename":     "statefs.Rename (directory-fsynced)",
	"WriteFile":  "statefs.WriteBytes / statefs.WriteJSON (atomic replace)",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"./internal/serve"}
	}
	var offences []string
	for _, dir := range dirs {
		found, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "persistlint: %v\n", err)
			os.Exit(2)
		}
		offences = append(offences, found...)
	}
	if len(offences) > 0 {
		sort.Strings(offences)
		for _, o := range offences {
			fmt.Fprintln(os.Stderr, o)
		}
		fmt.Fprintf(os.Stderr, "persistlint: %d raw os write call(s) in audited packages; route them through internal/statefs\n", len(offences))
		os.Exit(1)
	}
}

// lintDir scans one package directory's non-test files for banned calls.
func lintDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var offences []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, err
		}
		// Only flag selectors on the real "os" package: a file that renames
		// the import (or defines a local identifier `os`) is out of scope
		// for this textual check and none of the audited packages do either.
		if !importsOS(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || ident.Name != "os" {
				return true
			}
			if fix, bad := banned[sel.Sel.Name]; bad {
				pos := fset.Position(sel.Pos())
				offences = append(offences, fmt.Sprintf("%s: os.%s bypasses the statefs persistence layer; use %s", pos, sel.Sel.Name, fix))
			}
			return true
		})
	}
	return offences, nil
}

// importsOS reports whether the file imports "os" under its own name.
func importsOS(file *ast.File) bool {
	for _, imp := range file.Imports {
		if imp.Path.Value == `"os"` && imp.Name == nil {
			return true
		}
	}
	return false
}
