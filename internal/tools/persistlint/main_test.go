package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLintDir pins the linter's judgement: raw os write calls in non-test
// files are offences, reads and removals are not, and _test.go files are
// out of scope entirely.
func TestLintDir(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "good.go", `package p

import "os"

func read(p string) ([]byte, error) { return os.ReadFile(p) }
func drop(p string) error           { return os.Remove(p) }
func mk(p string) error             { return os.MkdirAll(p, 0o755) }
`)
	write(t, dir, "bad.go", `package p

import "os"

func save(p string, b []byte) error {
	if err := os.WriteFile(p+".tmp", b, 0o644); err != nil {
		return err
	}
	return os.Rename(p+".tmp", p)
}
`)
	write(t, dir, "bad_test.go", `package p

import "os"

func helper(p string) { _ = os.WriteFile(p, nil, 0o644) }
`)

	offences, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(offences) != 2 {
		t.Fatalf("offences = %v, want exactly the WriteFile and Rename in bad.go", offences)
	}
	for _, o := range offences {
		if !strings.Contains(o, "bad.go") || !strings.Contains(o, "statefs") {
			t.Errorf("offence %q does not point at bad.go with a statefs suggestion", o)
		}
	}
}

// TestLintDirRenamedImport: a file importing os under another name is out
// of the textual check's scope rather than a false positive or a crash.
func TestLintDirRenamedImport(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "renamed.go", `package p

import stdos "os"

func save(p string, b []byte) error { return stdos.WriteFile(p, b, 0o644) }
`)
	offences, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(offences) != 0 {
		t.Fatalf("offences = %v, want none for a renamed import", offences)
	}
}
