// Package serve turns the ParaCrash checker into a long-running service:
// an HTTP API accepting exploration and fuzz-campaign jobs, a bounded FIFO
// scheduler running them with per-job timeouts, cancellation and panic
// isolation, a results store persisting completed jobs as versioned JSON,
// and per-job progress streaming over the internal/obs event sinks.
//
// The package deliberately amortises nothing *inside* the engine — every
// job still gets a fresh simulated cluster, exactly like the CLI — but a
// daemon amortises process setup, keeps one admission-controlled queue in
// front of the CPU, and makes results durable and listable across
// restarts. cmd/paracrashd is the daemon binary; `paracrash -remote`
// submits to it.
package serve

import (
	"fmt"
	"strings"
	"time"

	"paracrash/internal/exps"
	core "paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// JobVersion is the schema version of persisted job records; bump on
// incompatible changes to Job or JobRequest.
const JobVersion = 1

// Job kinds.
const (
	// JobKindExplore is one explorer run: program × file system × options.
	JobKindExplore = "explore"
	// JobKindFuzz is a metamorphic fuzz campaign (internal/fuzzcamp).
	JobKindFuzz = "fuzz"
)

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle states. Terminal states (done, failed, canceled) are
// persisted to the results directory.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether a job in state s has finished for good.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobRequest is the POST /v1/jobs payload.
type JobRequest struct {
	// Kind selects the job type: "explore" (default) or "fuzz".
	Kind string `json:"kind,omitempty"`

	// Explore fields (ignored for fuzz jobs).

	// FS is the backend under test (beegfs, orangefs, glusterfs, gpfs,
	// lustre, ext4). Default beegfs.
	FS string `json:"fs,omitempty"`
	// Program is the test program name (see exps.Programs). Default ARVR.
	Program string `json:"program,omitempty"`
	// Mode is the exploration strategy: brute, pruning (default), optimized.
	Mode string `json:"mode,omitempty"`
	// PFSModel / LibModel are consistency-model names (strict, commit,
	// causal, baseline); defaults mirror paracrash.DefaultOptions.
	PFSModel string `json:"pfs_model,omitempty"`
	LibModel string `json:"lib_model,omitempty"`
	// K is Algorithm 1's victims-per-front bound (default 1).
	K int `json:"k,omitempty"`
	// Workers is the per-job exploration worker budget; the scheduler
	// clamps it to its per-job maximum. 0 keeps the scheduler's default.
	Workers int `json:"workers,omitempty"`
	// Representative toggles representative-state exploration (nil keeps
	// the engine default: on). Set false for a brute-force-equivalent run
	// that reconstructs every crash state.
	Representative *bool `json:"representative,omitempty"`
	// Incremental toggles O(delta) incremental crash-state reconstruction
	// (nil keeps the engine default: on). Set false to rebuild every crash
	// state with a full restore and replay. Explore jobs only.
	Incremental *bool `json:"incremental,omitempty"`
	// Shards requests a fleet partition width for this explore job: the
	// coordinator splits the crash-state space into this many shards for
	// worker processes to claim. 0 keeps the daemon's default; values are
	// capped by the daemon's maximum, and a daemon running standalone (no
	// fleet) executes the job in-process regardless. Explore jobs only.
	Shards int `json:"shards,omitempty"`
	// Clients/Rows/Cols/ResizeRows/ResizeCols are the H5 program knobs;
	// zero values keep workloads.DefaultH5Params.
	Clients    int `json:"clients,omitempty"`
	Rows       int `json:"rows,omitempty"`
	Cols       int `json:"cols,omitempty"`
	ResizeRows int `json:"resize_rows,omitempty"`
	ResizeCols int `json:"resize_cols,omitempty"`

	// Fuzz configures a fuzz-campaign job (required when Kind is "fuzz").
	Fuzz *FuzzRequest `json:"fuzz,omitempty"`

	// TimeoutSeconds bounds the job's run time; 0 uses the scheduler's
	// default, and the scheduler's maximum always applies.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// FuzzRequest mirrors the fuzzcamp.Config knobs exposed over the API.
type FuzzRequest struct {
	// Backends under test; empty means all six.
	Backends []string `json:"backends,omitempty"`
	// Seeds/SeedStart select the generated workloads.
	Seeds     int   `json:"seeds,omitempty"`
	SeedStart int64 `json:"seed_start,omitempty"`
	// EnumOps additionally enumerates all op sequences up to this length.
	EnumOps int `json:"enum_ops,omitempty"`
}

// Normalize fills defaults and validates the request, returning a
// client-error (HTTP 400) description on invalid input.
func (r *JobRequest) Normalize() error {
	switch r.Kind {
	case "":
		r.Kind = JobKindExplore
	case JobKindExplore, JobKindFuzz:
	default:
		return fmt.Errorf("unknown job kind %q (want %q or %q)", r.Kind, JobKindExplore, JobKindFuzz)
	}
	if r.TimeoutSeconds < 0 {
		return fmt.Errorf("timeout_seconds must be >= 0, got %g", r.TimeoutSeconds)
	}
	if r.Workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", r.Workers)
	}
	if r.Shards < 0 {
		return fmt.Errorf("shards must be >= 0, got %d", r.Shards)
	}

	if r.Kind == JobKindFuzz {
		if r.Fuzz == nil {
			r.Fuzz = &FuzzRequest{}
		}
		if r.Fuzz.Seeds < 0 || r.Fuzz.EnumOps < 0 {
			return fmt.Errorf("fuzz seeds and enum_ops must be >= 0")
		}
		for _, b := range r.Fuzz.Backends {
			if !validFS(b) {
				return fmt.Errorf("unknown fuzz backend %q (have %s)", b, strings.Join(exps.FSNames(), ", "))
			}
		}
		return nil
	}

	if r.FS == "" {
		r.FS = "beegfs"
	}
	if !validFS(r.FS) {
		return fmt.Errorf("unknown file system %q (have %s)", r.FS, strings.Join(exps.FSNames(), ", "))
	}
	if r.Program == "" {
		r.Program = "ARVR"
	}
	if _, err := exps.ProgramByName(r.Program); err != nil {
		return fmt.Errorf("unknown program %q", r.Program)
	}
	switch r.Mode {
	case "":
		r.Mode = "pruning"
	case "brute", "pruning", "optimized":
	default:
		return fmt.Errorf("unknown mode %q (want brute, pruning or optimized)", r.Mode)
	}
	if r.PFSModel != "" {
		if _, err := core.ParseModel(r.PFSModel); err != nil {
			return fmt.Errorf("pfs_model: %v", err)
		}
	}
	if r.LibModel != "" {
		if _, err := core.ParseModel(r.LibModel); err != nil {
			return fmt.Errorf("lib_model: %v", err)
		}
	}
	if r.K < 0 {
		return fmt.Errorf("k must be >= 0, got %d", r.K)
	}
	return nil
}

// options materialises the exploration Options for a normalized explore
// request. maxWorkers caps the per-job worker budget (0 = no cap).
func (r *JobRequest) options(maxWorkers int) core.Options {
	opts := core.DefaultOptions()
	switch r.Mode {
	case "brute":
		opts.Mode = core.ModeBrute
	case "optimized":
		opts.Mode = core.ModeOptimized
	default:
		opts.Mode = core.ModePruning
	}
	if r.PFSModel != "" {
		opts.PFSModel, _ = core.ParseModel(r.PFSModel)
	}
	if r.LibModel != "" {
		opts.LibModel, _ = core.ParseModel(r.LibModel)
	}
	if r.K > 0 {
		opts.Emulator.K = r.K
	}
	if r.Workers > 0 {
		opts.Workers = r.Workers
	}
	if maxWorkers > 0 && opts.Workers > maxWorkers {
		opts.Workers = maxWorkers
	}
	if r.Representative != nil {
		opts.DisableRepresentative = !*r.Representative
	}
	if r.Incremental != nil {
		opts.DisableIncremental = !*r.Incremental
	}
	return opts
}

// h5Params materialises the H5 program knobs for a normalized request.
func (r *JobRequest) h5Params() workloads.H5Params {
	p := workloads.DefaultH5Params()
	if r.Clients > 0 {
		p.Clients = r.Clients
	}
	if r.Rows > 0 {
		p.Rows = r.Rows
	}
	if r.Cols > 0 {
		p.Cols = r.Cols
	}
	if r.ResizeRows > 0 {
		p.ResizeRows = r.ResizeRows
	}
	if r.ResizeCols > 0 {
		p.ResizeCols = r.ResizeCols
	}
	return p
}

func validFS(name string) bool {
	for _, n := range exps.FSNames() {
		if n == name {
			return true
		}
	}
	return false
}

// Job is one submitted job's full record. Terminal jobs are persisted as
// versioned JSON in the results directory and survive daemon restarts.
type Job struct {
	Version int        `json:"version"`
	ID      string     `json:"id"`
	State   JobState   `json:"state"`
	Request JobRequest `json:"request"`
	// Tenant is the submitting tenant's name (empty for open-mode jobs).
	// Tenants only see their own jobs over the API.
	Tenant     string     `json:"tenant,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Resumes counts how many times the daemon re-enqueued this job after
	// finding it interrupted by an unclean shutdown; explore jobs resume
	// from their checkpoint journal.
	Resumes int `json:"resumes,omitempty"`
	// Error describes a failed or canceled job.
	Error string `json:"error,omitempty"`
	// Report is the explore-job result.
	Report *core.Report `json:"report,omitempty"`
	// Fuzz is the fuzz-job result.
	Fuzz *FuzzResult `json:"fuzz,omitempty"`
}

// FuzzResult is the persisted summary of a fuzz-campaign job: the
// campaign's formatted report plus the headline numbers (the full
// fuzzcamp.Result carries non-JSON-stable internals, so jobs persist this
// stable projection instead).
type FuzzResult struct {
	OK           bool   `json:"ok"`
	Workloads    int    `json:"workloads"`
	Cells        int    `json:"cells"`
	CellsSkipped int    `json:"cells_skipped,omitempty"`
	ExplorerRuns int64  `json:"explorer_runs"`
	Violations   int    `json:"violations"`
	TimedOut     bool   `json:"timed_out,omitempty"`
	Canceled     bool   `json:"canceled,omitempty"`
	Summary      string `json:"summary"`
}

// JobSummary is the list-view projection of a job (GET /v1/jobs).
type JobSummary struct {
	ID         string     `json:"id"`
	Kind       string     `json:"kind"`
	State      JobState   `json:"state"`
	FS         string     `json:"fs,omitempty"`
	Program    string     `json:"program,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	Error      string     `json:"error,omitempty"`
}

// Summary projects the job onto its list view.
func (j *Job) Summary() JobSummary {
	return JobSummary{
		ID: j.ID, Kind: j.Request.Kind, State: j.State,
		FS: j.Request.FS, Program: j.Request.Program,
		CreatedAt: j.CreatedAt, FinishedAt: j.FinishedAt,
		Error: j.Error,
	}
}
