package serve

import "paracrash/internal/statefs"

// The daemon's durable-write catalogue: every file the service layer
// persists goes through one of these statefs sites, so each write carries
// the audited fsync discipline and a set of named crash points the
// selfcheck harness kills the daemon at (see internal/statefs and
// DESIGN.md §11). internal/tools/persistlint fails the build if a direct
// os.Create/os.Rename/os.WriteFile/os.OpenFile sneaks back into this
// package.
var (
	// siteJobRecord persists job-<id>.json store records (store.go).
	siteJobRecord = statefs.Register("serve/job-record", statefs.OpAtomic)
	// siteLeaseCreate O_EXCL-creates lease-<task>.json claims (lease.go).
	siteLeaseCreate = statefs.Register("serve/lease-create", statefs.OpExclusive)
	// siteLeaseRenew rewrites a held lease on renewal or idempotent
	// re-claim (lease.go).
	siteLeaseRenew = statefs.Register("serve/lease-renew", statefs.OpAtomic)
	// siteShardTask persists task-<job>-shard-<i>.json fleet tasks
	// (shard.go).
	siteShardTask = statefs.Register("serve/shard-task", statefs.OpAtomic)
	// siteShardResult persists result-<job>-shard-<i>.json fleet results
	// (shard.go).
	siteShardResult = statefs.Register("serve/shard-result", statefs.OpAtomic)
	// siteFsckQuarantine moves damaged records into the quarantine
	// directory (fsck.go). Recovery-path: only runs when there is damage.
	siteFsckQuarantine = statefs.RegisterRecovery("serve/fsck-quarantine", statefs.OpRename)
	// siteFsckRewrite rewrites a journal fsck repaired in place — torn
	// tail truncated or duplicate records deduplicated (fsck.go).
	siteFsckRewrite = statefs.RegisterRecovery("serve/fsck-rewrite", statefs.OpAtomic)
)
