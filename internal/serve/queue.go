package serve

import "sync"

// queuedJob is one queue entry: the job plus the admission facts the queue
// needs at dispatch time (tenant identity and its running-cap).
type queuedJob struct {
	job    *Job
	tenant string // "" is the open-mode default tenant
	maxRun int    // tenant's MaxRunning (0 = no per-tenant cap)
}

// tenantRing is one priority class: a round-robin ring over tenants that
// currently have queued jobs, each with its own FIFO.
type tenantRing struct {
	order    []string
	next     int
	byTenant map[string][]*queuedJob
}

func newTenantRing() *tenantRing {
	return &tenantRing{byTenant: map[string][]*queuedJob{}}
}

func (r *tenantRing) push(qj *queuedJob) {
	if _, ok := r.byTenant[qj.tenant]; !ok {
		r.order = append(r.order, qj.tenant)
	}
	r.byTenant[qj.tenant] = append(r.byTenant[qj.tenant], qj)
}

// pop returns the next job from the first eligible tenant at or after the
// round-robin cursor, advancing the cursor past the chosen tenant so the
// next pop starts at its neighbour — that interleaving is what keeps one
// chatty tenant from starving the others in its class.
func (r *tenantRing) pop(eligible func(tenant string, maxRun int) bool) *queuedJob {
	for off := 0; off < len(r.order); off++ {
		i := (r.next + off) % len(r.order)
		tn := r.order[i]
		q := r.byTenant[tn]
		if len(q) == 0 || !eligible(tn, q[0].maxRun) {
			continue
		}
		qj := q[0]
		q = q[1:]
		if len(q) == 0 {
			delete(r.byTenant, tn)
			r.order = append(r.order[:i], r.order[i+1:]...)
			if r.next > i {
				r.next--
			}
			if len(r.order) > 0 {
				r.next %= len(r.order)
			} else {
				r.next = 0
			}
		} else {
			r.byTenant[tn] = q
			r.next = (i + 1) % len(r.order)
		}
		return qj
	}
	return nil
}

// fairQueue replaces the scheduler's FIFO channel when tenants exist (and
// degenerates to one for a single tenant): three priority classes, each a
// round-robin ring of per-tenant FIFOs, plus per-tenant running counts so
// a tenant at its MaxRunning cap is skipped — not blocking — at dispatch.
type fairQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	size    int
	classes [3]*tenantRing
	queued  map[string]int
	running map[string]int
}

func newFairQueue() *fairQueue {
	q := &fairQueue{
		queued:  map[string]int{},
		running: map[string]int{},
	}
	for i := range q.classes {
		q.classes[i] = newTenantRing()
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job in the given priority class (0 strongest). The caller
// enforces capacity and drain state; push never refuses.
func (q *fairQueue) push(qj *queuedJob, prio int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.classes[prio].push(qj)
	q.size++
	q.queued[qj.tenant]++
	q.cond.Signal()
}

// pop blocks until a dispatchable job exists, serving higher classes first
// and round-robining tenants within a class; a tenant at its MaxRunning cap
// is passed over until release frees a slot. After close, pop keeps
// draining the backlog and returns nil once it is empty — preserving the
// channel-drain semantics Drain relies on.
func (q *fairQueue) pop() *queuedJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for _, ring := range q.classes {
			if qj := ring.pop(q.eligible); qj != nil {
				q.size--
				q.queued[qj.tenant]--
				q.running[qj.tenant]++
				return qj
			}
		}
		if q.closed && q.size == 0 {
			return nil
		}
		q.cond.Wait()
	}
}

// eligible is pop's dispatch gate; called with q.mu held.
func (q *fairQueue) eligible(tenant string, maxRun int) bool {
	return maxRun <= 0 || q.running[tenant] < maxRun
}

// release returns a tenant's running slot after its job finishes, waking
// poppers that skipped the tenant at its cap.
func (q *fairQueue) release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.running[tenant]--
	q.cond.Broadcast()
}

// close stops pop from blocking once the backlog drains. Idempotent.
func (q *fairQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

func (q *fairQueue) queuedFor(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued[tenant]
}

func (q *fairQueue) runningFor(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.running[tenant]
}
