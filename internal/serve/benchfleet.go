package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"paracrash/internal/exps"
)

// FleetBenchConfig sizes the fleet throughput cell: an in-process
// coordinator + Workers worker loops + Tenants API keys, stormed with Jobs
// submissions through the real HTTP stack by the load generator.
type FleetBenchConfig struct {
	// Workers is the fleet worker count (default 3).
	Workers int
	// Tenants is how many tenant API keys the storm rotates through
	// (default 2; 0 runs open mode).
	Tenants int
	// Shards is the partition width each job requests (default 2).
	Shards int
	// Jobs / Concurrency size the storm (defaults 24 / 8).
	Jobs        int
	Concurrency int
	// Request is the job template; zero value means ext4/CR/pruning — the
	// cheapest cell, so the measurement is dominated by the service path
	// (admission, scheduling, shard dispatch, leases, merge), not the
	// engine.
	Request JobRequest
	// MaxConcurrent bounds the coordinator's running jobs (default 4).
	MaxConcurrent int
}

// BenchFleet runs the fleet cell of the benchmark trajectory: it stands up
// a real coordinator (scheduler + HTTP server + shared shard directory), N
// worker loops and M tenants, pushes the configured job storm through the
// load generator, and reports jobs/sec with latency percentiles. Every
// layer is the production code path — the only shortcut is that workers
// run as goroutines instead of processes.
func BenchFleet(ctx context.Context, cfg FleetBenchConfig) (*exps.FleetBenchRecord, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Tenants < 0 {
		cfg.Tenants = 0
	} else if cfg.Tenants == 0 {
		cfg.Tenants = 2
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 24
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.Request.FS == "" {
		cfg.Request = JobRequest{Kind: JobKindExplore, FS: "ext4", Program: "CR", Mode: "pruning"}
	}

	rec := &exps.FleetBenchRecord{
		Workers: cfg.Workers, Tenants: cfg.Tenants, Shards: cfg.Shards,
		Jobs: cfg.Jobs, Concurrency: cfg.Concurrency,
	}

	dir, err := os.MkdirTemp("", "paracrash-benchfleet-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var tenants *Tenants
	var keys []string
	if cfg.Tenants > 0 {
		list := make([]Tenant, cfg.Tenants)
		for i := range list {
			key := fmt.Sprintf("bench-tenant-%d-key", i)
			list[i] = Tenant{Name: fmt.Sprintf("bench-%d", i), Key: key}
			keys = append(keys, key)
		}
		tenants, err = NewTenants(list)
		if err != nil {
			return nil, err
		}
	}

	st, warns := OpenStore(dir)
	if len(warns) > 0 {
		return nil, warns[0]
	}
	sched := NewScheduler(SchedulerConfig{
		MaxConcurrent: cfg.MaxConcurrent,
		QueueDepth:    cfg.Jobs + cfg.Concurrency,
		Tenants:       tenants,
		Fleet:         &FleetConfig{Shards: cfg.Shards, MaxShards: cfg.Shards, Poll: 2 * time.Millisecond},
	}, st, nil)
	sched.Start()
	defer sched.Drain(context.Background())

	wctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer func() {
		cancel()
		wg.Wait()
	}()
	for i := 0; i < cfg.Workers; i++ {
		w, werr := NewFleetWorker(FleetWorkerConfig{
			Dir: dir, ID: fmt.Sprintf("bench-w%d", i), Poll: 2 * time.Millisecond,
		})
		if werr != nil {
			return nil, werr
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(wctx)
		}()
	}

	srv := httptest.NewServer(NewServer(sched, st, nil))
	defer srv.Close()

	req := cfg.Request
	req.Shards = cfg.Shards
	load, err := RunLoad(ctx, LoadGenConfig{
		BaseURL:      srv.URL,
		Keys:         keys,
		Jobs:         cfg.Jobs,
		Concurrency:  cfg.Concurrency,
		Request:      req,
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		rec.Err = err.Error()
	}
	rec.Done, rec.Failed, rec.Rejected = load.Done, load.Failed, load.Rejected
	rec.Seconds = load.Duration.Seconds()
	rec.JobsPerSec = load.JobsPerSec
	rec.P50 = load.P50.Seconds()
	rec.P95 = load.P95.Seconds()
	rec.P99 = load.P99.Seconds()
	if rec.Err == "" && load.Errors > 0 {
		rec.Err = fmt.Sprintf("%d submissions abandoned on errors", load.Errors)
	}
	return rec, nil
}
