package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadGenConfig drives a synthetic job storm against a running paracrashd:
// Jobs submissions spread across Concurrency client goroutines, optionally
// rotating through a set of tenant API keys so the fleet's fair scheduler,
// quotas and rate limits are exercised the way a real multi-tenant
// deployment would exercise them.
type LoadGenConfig struct {
	// BaseURL is the daemon address, e.g. "http://localhost:7077".
	BaseURL string
	// Keys are tenant API keys to rotate through (client i uses
	// Keys[i % len(Keys)]). Empty means open mode: no auth header.
	Keys []string
	// Jobs is the total number of jobs to submit (required, >= 1).
	Jobs int
	// Concurrency is how many client goroutines submit and await jobs
	// concurrently (default 8, capped at Jobs).
	Concurrency int
	// Request is the job template every submission sends.
	Request JobRequest
	// PollInterval is the terminal-state poll cadence (default 100ms).
	PollInterval time.Duration
	// Timeout bounds the whole run; 0 means no bound beyond ctx.
	Timeout time.Duration
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// LoadReport is the outcome of one load-generation run.
type LoadReport struct {
	// Jobs is the number of submissions attempted.
	Jobs int `json:"jobs"`
	// Done / Failed count jobs that reached a terminal state.
	Done   int `json:"done"`
	Failed int `json:"failed"`
	// Rejected counts 429 responses (queue-full, rate-limited or
	// quota-exceeded); rejected submissions are retried until admitted.
	Rejected int `json:"rejected"`
	// Errors counts submissions abandoned on transport or protocol errors.
	Errors int `json:"errors"`
	// Duration is the wall-clock span of the run.
	Duration time.Duration `json:"duration"`
	// JobsPerSec is terminal jobs per second of wall clock.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// P50/P95/P99 are submit-to-terminal latency percentiles.
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
}

// Format renders the report for humans.
func (r LoadReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d jobs in %v (%.1f jobs/sec)\n", r.Jobs, r.Duration.Round(time.Millisecond), r.JobsPerSec)
	fmt.Fprintf(&b, "  done %d, failed %d, errors %d, 429-rejections %d (retried)\n", r.Done, r.Failed, r.Errors, r.Rejected)
	fmt.Fprintf(&b, "  latency p50 %v, p95 %v, p99 %v\n",
		r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond), r.P99.Round(time.Millisecond))
	return b.String()
}

// RunLoad executes the configured storm and reports throughput and latency.
// A 429 (admission control pushing back) is not a failure: the client backs
// off and resubmits, so the report measures sustainable throughput under
// the daemon's own limits.
func RunLoad(ctx context.Context, cfg LoadGenConfig) (LoadReport, error) {
	if cfg.Jobs < 1 {
		return LoadReport{}, fmt.Errorf("loadgen: Jobs must be >= 1, got %d", cfg.Jobs)
	}
	if cfg.BaseURL == "" {
		return LoadReport{}, fmt.Errorf("loadgen: BaseURL required")
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 8
	}
	if conc > cfg.Jobs {
		conc = cfg.Jobs
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	body, err := json.Marshal(cfg.Request)
	if err != nil {
		return LoadReport{}, fmt.Errorf("loadgen: marshal request: %v", err)
	}

	var (
		mu        sync.Mutex
		rep       = LoadReport{Jobs: cfg.Jobs}
		latencies []time.Duration
	)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conc; i++ {
		key := ""
		if len(cfg.Keys) > 0 {
			key = cfg.Keys[i%len(cfg.Keys)]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				state, rejected, err := runOneLoadJob(ctx, client, cfg.BaseURL, key, body, poll)
				mu.Lock()
				rep.Rejected += rejected
				switch {
				case err != nil:
					rep.Errors++
				case state == JobDone:
					rep.Done++
					latencies = append(latencies, time.Since(t0))
				default:
					rep.Failed++
					latencies = append(latencies, time.Since(t0))
				}
				mu.Unlock()
			}
		}()
	}
	for n := 0; n < cfg.Jobs; n++ {
		select {
		case work <- n:
		case <-ctx.Done():
			n = cfg.Jobs
		}
	}
	close(work)
	wg.Wait()

	rep.Duration = time.Since(start)
	if secs := rep.Duration.Seconds(); secs > 0 {
		rep.JobsPerSec = float64(rep.Done+rep.Failed) / secs
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50 = percentile(latencies, 0.50)
	rep.P95 = percentile(latencies, 0.95)
	rep.P99 = percentile(latencies, 0.99)
	if err := ctx.Err(); err != nil {
		return rep, fmt.Errorf("loadgen: run cut short: %v", err)
	}
	return rep, nil
}

// runOneLoadJob submits one job (retrying 429 pushback with backoff) and
// polls it to a terminal state. Returns the terminal state and how many
// 429s the submission absorbed.
func runOneLoadJob(ctx context.Context, client *http.Client, base, key string, body []byte, poll time.Duration) (JobState, int, error) {
	rejected := 0
	backoff := poll
	var id string
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return "", rejected, err
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", rejected, err
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rejected++
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return "", rejected, ctx.Err()
			}
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return "", rejected, fmt.Errorf("submit: %s: %s", resp.Status, msg)
		}
		var job Job
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			return "", rejected, fmt.Errorf("submit response: %v", err)
		}
		id = job.ID
		break
	}

	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id, nil)
		if err != nil {
			return "", rejected, err
		}
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", rejected, err
		}
		var job Job
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			return "", rejected, fmt.Errorf("poll: %v", err)
		}
		if job.State.Terminal() {
			return job.State, rejected, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return "", rejected, ctx.Err()
		}
	}
}

// percentile picks the pth percentile from sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
