package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"

	"paracrash/internal/obs"
)

// Server is the paracrashd HTTP API over a scheduler and its store.
type Server struct {
	sched   *Scheduler
	store   *Store
	run     *obs.Run // daemon-level run, exposed at /debug/obs
	tenants *Tenants // from the scheduler config; nil = open mode
	mux     *http.ServeMux

	mu   sync.RWMutex
	fsck *FsckReport // startup fsck report; nil until SetFsck
}

// NewServer wires the API routes. run (nilable) is the daemon-level obs
// run served at /debug/obs*. When the scheduler carries a tenant registry,
// every /v1 route requires an API key; /healthz, /metrics and /debug stay
// open (they feed probes and scrapers, not tenants).
func NewServer(sched *Scheduler, store *Store, run *obs.Run) *Server {
	s := &Server{sched: sched, store: store, run: run, tenants: sched.Tenants(), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/tenant", s.handleTenant)
	// /metrics is the Prometheus text exposition of the scheduler's
	// telemetry router: fleet-level series (daemon counters plus rollups
	// across all jobs, completed ones included) and one labeled series set
	// per running job.
	s.mux.Handle("GET /metrics", sched.Router().PromHandler())
	s.mux.HandleFunc("GET /debug/obs", s.handleObs)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// authenticate resolves the caller's tenant on a /v1 route. In open mode
// (no registry) it returns (nil, true): no key required, full visibility.
// With tenants configured, a missing or unknown key gets a 401 and
// (nil, false).
func (s *Server) authenticate(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	if s.tenants == nil {
		return nil, true
	}
	tn, err := s.tenants.Authenticate(r)
	if err != nil {
		w.Header().Set("WWW-Authenticate", `Bearer realm="paracrashd"`)
		writeError(w, http.StatusUnauthorized, "%v", err)
		return nil, false
	}
	return tn, true
}

// visible reports whether the caller may see the job: everything in open
// mode, only the tenant's own jobs otherwise. Hidden jobs 404 rather than
// 403 so tenants cannot probe for other tenants' job IDs.
func (s *Server) visible(tn *Tenant, j *Job) bool {
	if s.tenants == nil {
		return true
	}
	return tn != nil && j.Tenant == tn.Name
}

// SetFsck records the startup fsck report so /healthz summarises it and
// /readyz fails while quarantined (unreconstructible) records exist.
func (s *Server) SetFsck(r *FsckReport) {
	s.mu.Lock()
	s.fsck = r
	s.mu.Unlock()
}

// fsckReport returns the report recorded by SetFsck (nil before it).
func (s *Server) fsckReport() *FsckReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fsck
}

// fsckHealth is the /healthz projection of the startup fsck report.
type fsckHealth struct {
	Problems    int  `json:"problems"`
	Repaired    int  `json:"repaired"`
	Quarantined int  `json:"quarantined"`
	Clean       bool `json:"clean"`
}

// healthResponse is the GET /healthz payload.
type healthResponse struct {
	// Status is "ok", "degraded" (startup fsck quarantined records) or
	// "draining" (shutdown in progress; draining wins over degraded).
	Status  string `json:"status"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Done    int    `json:"done"`
	// Fsck summarises the startup state-directory check; absent when the
	// daemon runs memory-only or predates SetFsck.
	Fsck *fsckHealth `json:"fsck,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Status: "ok"}
	if rep := s.fsckReport(); rep != nil {
		resp.Fsck = &fsckHealth{
			Problems:    len(rep.Problems),
			Repaired:    rep.Repaired,
			Quarantined: rep.Quarantined,
			Clean:       rep.Clean,
		}
		if rep.Degraded() {
			resp.Status = "degraded"
		}
	}
	if s.sched.Draining() {
		resp.Status = "draining"
	}
	for _, j := range s.store.List() {
		switch j.State {
		case JobQueued:
			resp.Queued++
		case JobRunning:
			resp.Running++
		default:
			resp.Done++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// readyResponse is the GET /readyz payload.
type readyResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
}

// handleReady is the load-balancer gate: 200 only when the daemon is
// accepting work. Draining daemons and daemons whose startup fsck had to
// quarantine state (they run, but something was lost) answer 503 so
// orchestrators route around them while /healthz still shows the details.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.sched.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{Reason: "draining"})
		return
	}
	if rep := s.fsckReport(); rep != nil && rep.Degraded() {
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{
			Reason: fmt.Sprintf("degraded: startup fsck quarantined %d record(s); see /healthz and the quarantine directory", rep.Quarantined),
		})
		return
	}
	writeJSON(w, http.StatusOK, readyResponse{Ready: true})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	job, err := s.sched.SubmitTenant(req, tn)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, job)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited), errors.Is(err, ErrQuotaExceeded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	jobs := s.store.List()
	out := make([]JobSummary, 0, len(jobs))
	for i := range jobs {
		if s.visible(tn, &jobs[i]) {
			out = append(out, jobs[i].Summary())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	job, found := s.store.Get(id)
	if !found || !s.visible(tn, &job) {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// tenantStatus is the GET /v1/tenant payload: the caller's configuration
// plus live queue usage. Open-mode daemons report the implicit tenant.
type tenantStatus struct {
	Open       bool    `json:"open"`
	Name       string  `json:"name,omitempty"`
	Priority   string  `json:"priority,omitempty"`
	MaxQueued  int     `json:"max_queued,omitempty"`
	MaxRunning int     `json:"max_running,omitempty"`
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Queued     int     `json:"queued"`
	Running    int     `json:"running"`
}

func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	st := tenantStatus{Open: s.tenants == nil}
	name := ""
	if tn != nil {
		st.Name = tn.Name
		st.Priority = tn.Priority
		if st.Priority == "" {
			st.Priority = PriorityNormal
		}
		st.MaxQueued = tn.MaxQueued
		st.MaxRunning = tn.MaxRunning
		st.RatePerSec = tn.RatePerSec
		name = tn.Name
	}
	st.Queued = s.sched.QueuedFor(name)
	st.Running = s.sched.RunningFor(name)
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's progress events as NDJSON: the retained
// history first, then live events until the job finishes or the client
// goes away. Completed jobs replay their history and close immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	if job, found := s.store.Get(id); !found || !s.visible(tn, &job) {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	sink := s.sched.Events(id)
	if sink == nil {
		// Restart-loaded job: the record survived, the stream did not.
		writeError(w, http.StatusGone, "job %q predates this daemon instance; no event stream retained", id)
		return
	}

	history, live, unsubscribe := sink.Subscribe()
	defer unsubscribe()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for _, ev := range history {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleObs serves the daemon-level obs summary.
func (s *Server) handleObs(w http.ResponseWriter, r *http.Request) {
	if s.run == nil {
		writeError(w, http.StatusNotFound, "observability disabled")
		return
	}
	data, err := s.run.SummaryJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}
