package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"paracrash/internal/obs"
	core "paracrash/internal/paracrash"
)

// shardSpec abbreviates the fixture shard identity.
func shardSpec(index, count int) core.ShardSpec {
	return core.ShardSpec{Index: index, Count: count}
}

// fsckNow is the fixed clock every fsck fixture is judged against.
var fsckNow = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// writeFixture drops raw bytes into the state dir under test.
func writeFixture(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// jobFixture renders a parseable job record in state st.
func jobFixture(t *testing.T, id string, st JobState) string {
	t.Helper()
	data, err := json.Marshal(Job{Version: JobVersion, ID: id, State: st, CreatedAt: fsckNow})
	if err != nil {
		t.Fatal(err)
	}
	return string(data) + "\n"
}

// leaseFixture renders a parseable lease expiring at exp.
func leaseFixture(t *testing.T, task, owner string, epoch int, exp time.Time) string {
	t.Helper()
	data, err := json.Marshal(Lease{Task: task, Owner: owner, Epoch: epoch, Expires: exp})
	if err != nil {
		t.Fatal(err)
	}
	return string(data) + "\n"
}

// journalFixture renders a checkpoint journal: a header line plus one
// record per key, optionally ending with a torn (unterminated) tail.
func journalFixture(keys []string, tornTail string) string {
	out := `{"version":1,"config":"test"}` + "\n"
	for _, k := range keys {
		out += fmt.Sprintf(`{"key":%q,"consistent":true}`+"\n", k)
	}
	return out + tornTail
}

// TestFsckRepairTaxonomy drives serve.Fsck over one corrupted state
// directory per damage class and asserts the classification, the
// repair-vs-quarantine decision, and that a repaired directory re-scans
// clean.
func TestFsckRepairTaxonomy(t *testing.T) {
	taskJSON := func(job string, shard int) string {
		data, _ := json.Marshal(ShardTask{Version: FleetVersion, Job: job, Shard: shardSpec(shard, 2)})
		return string(data) + "\n"
	}
	resultJSON := func(job string, shard int) string {
		data, _ := json.Marshal(ShardResult{Version: FleetVersion, Job: job, Shard: shardSpec(shard, 2), Worker: "w1", Epoch: 1})
		return string(data) + "\n"
	}

	cases := []struct {
		name string
		// seed populates the directory; returns nothing.
		seed func(t *testing.T, dir string)
		// category/action expected for the (single) problem of interest.
		category string
		action   string
		// gone lists files that must be absent after repair; kept lists
		// files that must survive untouched.
		gone []string
		kept []string
		// quarantined lists files that must appear under quarantine/.
		quarantined []string
	}{
		{
			name: "orphan tmp from interrupted atomic replace",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "job-j-1.json", jobFixture(t, "j-1", JobDone))
				writeFixture(t, dir, "job-j-1.json.tmp", `{"version":1,"id":"j-`)
			},
			category: ProblemOrphanTmp,
			action:   ActionRemoved,
			gone:     []string{"job-j-1.json.tmp"},
			kept:     []string{"job-j-1.json"},
		},
		{
			name: "torn job record is quarantined, not destroyed",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "job-j-2.json", `{"version":1,"id":"j-2","state":"run`)
			},
			category:    ProblemTornJobRecord,
			action:      ActionQuarantined,
			gone:        []string{"job-j-2.json"},
			quarantined: []string{"job-j-2.json"},
		},
		{
			name: "version-skewed job record is quarantined",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "job-j-3.json", `{"version":99,"id":"j-3","state":"done"}`+"\n")
			},
			category:    ProblemVersionSkew,
			action:      ActionQuarantined,
			gone:        []string{"job-j-3.json"},
			quarantined: []string{"job-j-3.json"},
		},
		{
			name: "malformed lease is removed",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "lease-j-4-shard-0.json", `{"task":"j-4-sh`)
			},
			category: ProblemMalformedLease,
			action:   ActionRemoved,
			gone:     []string{"lease-j-4-shard-0.json"},
		},
		{
			name: "stale lease epoch (expired claim of a live job) is removed",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "job-j-5.json", jobFixture(t, "j-5", JobRunning))
				writeFixture(t, dir, "lease-j-5-shard-0.json",
					leaseFixture(t, "j-5-shard-0", "w-dead", 3, fsckNow.Add(-time.Minute)))
			},
			category: ProblemStaleLease,
			action:   ActionRemoved,
			gone:     []string{"lease-j-5-shard-0.json"},
			kept:     []string{"job-j-5.json"},
		},
		{
			name: "torn journal tail is truncated by rewrite",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "job-j-6.json", jobFixture(t, "j-6", JobRunning))
				writeFixture(t, dir, "ckpt-j-6.jsonl", journalFixture([]string{"a", "b"}, `{"key":"c","consis`))
			},
			category: ProblemTornJournalTail,
			action:   ActionRewritten,
			kept:     []string{"ckpt-j-6.jsonl", "job-j-6.json"},
		},
		{
			name: "duplicate shard verdict is deduplicated by rewrite",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "job-j-7.json", jobFixture(t, "j-7", JobRunning))
				writeFixture(t, dir, "ckpt-j-7-shard-0.jsonl", journalFixture([]string{"a", "b", "a"}, ""))
			},
			category: ProblemDuplicateJournalRecord,
			action:   ActionRewritten,
			kept:     []string{"ckpt-j-7-shard-0.jsonl", "job-j-7.json"},
		},
		{
			name: "journal with unreadable header is quarantined",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "job-j-8.json", jobFixture(t, "j-8", JobRunning))
				writeFixture(t, dir, "ckpt-j-8.jsonl", "not json at all\n")
			},
			category:    ProblemUnreadableJournal,
			action:      ActionQuarantined,
			gone:        []string{"ckpt-j-8.jsonl"},
			quarantined: []string{"ckpt-j-8.jsonl"},
			kept:        []string{"job-j-8.json"},
		},
		{
			name: "damaged shard task is removed (coordinator rewrites it)",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "job-j-9.json", jobFixture(t, "j-9", JobRunning))
				writeFixture(t, dir, "task-j-9-shard-0.json", `{"version":1,"job":"j-9","sh`)
			},
			category: ProblemDamagedShardTask,
			action:   ActionRemoved,
			gone:     []string{"task-j-9-shard-0.json"},
		},
		{
			name: "damaged shard result is removed (worker recomputes it)",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "job-j-10.json", jobFixture(t, "j-10", JobRunning))
				writeFixture(t, dir, "result-j-10-shard-1.json", `{"version":7,"job":"j-10"}`+"\n")
			},
			category: ProblemDamagedShardResult,
			action:   ActionRemoved,
			gone:     []string{"result-j-10-shard-1.json"},
		},
		{
			name: "half-merged shard debris of a terminal job is removed",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "job-j-11.json", jobFixture(t, "j-11", JobDone))
				writeFixture(t, dir, "task-j-11-shard-0.json", taskJSON("j-11", 0))
				writeFixture(t, dir, "result-j-11-shard-0.json", resultJSON("j-11", 0))
				writeFixture(t, dir, "ckpt-j-11-shard-0.jsonl", journalFixture([]string{"a"}, ""))
				writeFixture(t, dir, "lease-j-11-shard-0.json",
					leaseFixture(t, "j-11-shard-0", "w1", 1, fsckNow.Add(time.Hour)))
			},
			category: ProblemStaleShardFiles,
			action:   ActionRemoved,
			gone: []string{
				"task-j-11-shard-0.json", "result-j-11-shard-0.json",
				"ckpt-j-11-shard-0.jsonl", "lease-j-11-shard-0.json",
			},
			kept: []string{"job-j-11.json"},
		},
		{
			name: "orphan shard result (job record lost) is quarantined as evidence",
			seed: func(t *testing.T, dir string) {
				writeFixture(t, dir, "result-j-ghost-shard-0.json", resultJSON("j-ghost", 0))
			},
			category:    ProblemOrphanShardFiles,
			action:      ActionQuarantined,
			gone:        []string{"result-j-ghost-shard-0.json"},
			quarantined: []string{"result-j-ghost-shard-0.json"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.seed(t, dir)

			// Dry run first: same classification, nothing changed.
			dry, err := Fsck(dir, FsckOptions{Now: fsckNow})
			if err != nil {
				t.Fatalf("dry-run fsck: %v", err)
			}
			if dry.Clean {
				t.Fatalf("dry run reported clean; want %s finding", tc.category)
			}
			found := false
			for _, p := range dry.Problems {
				if p.Category == tc.category {
					found = true
					if p.Action != ActionDetected {
						t.Errorf("dry-run action for %s = %q, want %q", p.Path, p.Action, ActionDetected)
					}
				}
			}
			if !found {
				t.Fatalf("dry run found %v, want a %s finding", dry.Problems, tc.category)
			}
			if dry.Repaired != 0 || dry.Quarantined != 0 {
				t.Fatalf("dry run claims repairs: %+v", dry)
			}
			for _, name := range append(append([]string{}, tc.gone...), tc.kept...) {
				if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
					t.Fatalf("dry run touched %s: %v", name, err)
				}
			}

			// Repair run: the expected action lands on the expected category.
			rep, err := Fsck(dir, FsckOptions{Repair: true, Now: fsckNow})
			if err != nil {
				t.Fatalf("repair fsck: %v", err)
			}
			found = false
			for _, p := range rep.Problems {
				if p.Category == tc.category {
					found = true
					if p.Action != tc.action {
						t.Errorf("repair action for %s = %q, want %q (%s)", p.Path, p.Action, tc.action, p.Detail)
					}
				}
			}
			if !found {
				t.Fatalf("repair run found %v, want a %s finding", rep.Problems, tc.category)
			}
			for _, name := range tc.gone {
				if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
					t.Errorf("%s still present after repair", name)
				}
			}
			for _, name := range tc.kept {
				if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
					t.Errorf("%s damaged by repair: %v", name, err)
				}
			}
			for _, name := range tc.quarantined {
				if _, err := os.Stat(filepath.Join(dir, QuarantineDirName, name)); err != nil {
					t.Errorf("%s not in quarantine after repair: %v", name, err)
				}
			}
			if (rep.Quarantined > 0) != (tc.action == ActionQuarantined) {
				t.Errorf("quarantined=%d for action %s", rep.Quarantined, tc.action)
			}
			if rep.Degraded() != (tc.action == ActionQuarantined) {
				t.Errorf("Degraded() = %t for action %s", rep.Degraded(), tc.action)
			}

			// A repaired directory re-scans clean.
			again, err := Fsck(dir, FsckOptions{Now: fsckNow})
			if err != nil {
				t.Fatalf("post-repair fsck: %v", err)
			}
			if !again.Clean {
				t.Fatalf("directory not clean after repair: %v", again.Problems)
			}
		})
	}
}

// TestFsckJournalRewriteContent pins the byte-level result of a journal
// repair: the torn tail and the duplicate record are gone, the header and
// first occurrences survive verbatim, and the file is newline-terminated
// so subsequent appends stay well-formed.
func TestFsckJournalRewriteContent(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "job-j-1.json", jobFixture(t, "j-1", JobRunning))
	writeFixture(t, dir, "ckpt-j-1.jsonl", journalFixture([]string{"a", "b", "a"}, `{"key":"c","cons`))

	rep, err := Fsck(dir, FsckOptions{Repair: true, Now: fsckNow})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired == 0 {
		t.Fatalf("no repairs recorded: %+v", rep)
	}
	got, err := os.ReadFile(filepath.Join(dir, "ckpt-j-1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	want := journalFixture([]string{"a", "b"}, "")
	if string(got) != want {
		t.Fatalf("rewritten journal = %q, want %q", got, want)
	}
}

// TestFsckCleanDirectory asserts the healthy cases: a live fleet directory
// mid-job, a missing directory, and an empty one are all clean.
func TestFsckCleanDirectory(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "job-j-1.json", jobFixture(t, "j-1", JobRunning))
	writeFixture(t, dir, "task-j-1-shard-0.json", func() string {
		data, _ := json.Marshal(ShardTask{Version: FleetVersion, Job: "j-1", Shard: shardSpec(0, 1)})
		return string(data) + "\n"
	}())
	writeFixture(t, dir, "ckpt-j-1-shard-0.jsonl", journalFixture([]string{"a", "b"}, ""))
	writeFixture(t, dir, "lease-j-1-shard-0.json",
		leaseFixture(t, "j-1-shard-0", "w1", 1, fsckNow.Add(time.Hour)))
	writeFixture(t, dir, "job-j-0.json", jobFixture(t, "j-0", JobDone))

	for name, d := range map[string]string{
		"live fleet dir": dir,
		"missing dir":    filepath.Join(dir, "nope"),
		"empty dir":      t.TempDir(),
	} {
		rep, err := Fsck(d, FsckOptions{Now: fsckNow})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Clean {
			t.Fatalf("%s: not clean: %v", name, rep.Problems)
		}
	}
}

// TestReadyzFsckGate exercises the daemon-facing surface of the fsck
// report: /healthz carries the summary and turns "degraded" on
// quarantines, and /readyz flips to 503 so orchestrators route around a
// daemon that lost state.
func TestReadyzFsckGate(t *testing.T) {
	st, _ := OpenStore("")
	run := obs.NewRun()
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 1, QueueDepth: 4}, st, run)
	s.Start()
	defer s.Drain(context.Background())
	api := NewServer(s, st, run)
	srv := httptest.NewServer(api)
	defer srv.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// No fsck report yet (memory-only daemon): ready, no fsck block.
	if code, body := get("/readyz"); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("/readyz before fsck = %d %v", code, body)
	}
	if _, body := get("/healthz"); body["fsck"] != nil {
		t.Fatalf("/healthz carries fsck block without a report: %v", body)
	}

	// Clean startup fsck: still ready, summary visible.
	api.SetFsck(&FsckReport{Version: FsckVersion, Repair: true, Clean: true})
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after clean fsck = %d", code)
	}
	code, body := get("/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("/healthz after clean fsck = %d %v", code, body)
	}
	if f, ok := body["fsck"].(map[string]any); !ok || f["clean"] != true {
		t.Fatalf("/healthz fsck block = %v", body["fsck"])
	}

	// Quarantines degrade: /healthz says so, /readyz fails.
	api.SetFsck(&FsckReport{
		Version: FsckVersion, Repair: true, Quarantined: 2,
		Problems: []FsckProblem{
			{Path: "job-j-1.json", Category: ProblemTornJobRecord, Action: ActionQuarantined},
			{Path: "ckpt-j-2.jsonl", Category: ProblemUnreadableJournal, Action: ActionQuarantined},
		},
	})
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["ready"] == true {
		t.Fatalf("/readyz degraded = %d %v", code, body)
	}
	if _, body := get("/healthz"); body["status"] != "degraded" {
		t.Fatalf("/healthz degraded status = %v", body["status"])
	}
}
