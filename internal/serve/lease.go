// Lease records: how fleet workers claim shard work without a coordinator
// round-trip. A lease is one JSON file in the shared results directory,
// created with O_EXCL so exactly one claimant wins, renewed by its owner
// before the TTL elapses, and reclaimable by anyone once it expires — the
// crash-recovery path for a worker that died mid-shard. Epochs count
// ownership transfers: a renewal or release by a worker whose epoch the
// file no longer carries fails with ErrLeaseLost, so a paused-and-revived
// worker notices it was presumed dead instead of double-writing.
//
// The protocol tolerates the one race a shared directory cannot exclude:
// two workers may both observe an expired lease and both remove-then-create
// it. The O_EXCL create serialises them — one wins the new epoch — and the
// loser's verdicts were deterministic anyway, so even a worker that briefly
// keeps computing after losing its lease cannot corrupt a merge.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"paracrash/internal/statefs"
)

// ErrLeaseHeld is returned by Claim when another worker holds an
// unexpired lease on the task.
var ErrLeaseHeld = errors.New("serve: lease held by another worker")

// ErrLeaseLost is returned by Renew and Release when the caller no longer
// owns the lease (it expired and another worker reclaimed it).
var ErrLeaseLost = errors.New("serve: lease lost")

// Lease is one claim on a unit of fleet work.
type Lease struct {
	// Task names the work unit (e.g. "<job>-shard-2").
	Task string `json:"task"`
	// Owner is the claiming worker's ID.
	Owner string `json:"owner"`
	// Epoch counts ownership transfers; it increments on every reclaim.
	Epoch int `json:"epoch"`
	// Expires is the wall-clock deadline after which the lease is dead and
	// any worker may reclaim the task.
	Expires time.Time `json:"expires"`
}

// Expired reports whether the lease is past its deadline at now.
func (l Lease) Expired(now time.Time) bool { return now.After(l.Expires) }

// LeaseDir manages lease files under one shared directory. All methods are
// safe for concurrent use across processes — the directory is the lock.
type LeaseDir struct {
	dir string
	// now is the clock, swappable in tests to force expiry deterministically.
	now func() time.Time
}

// NewLeaseDir returns a lease manager over dir (created if needed).
func NewLeaseDir(dir string) (*LeaseDir, error) {
	if dir == "" {
		return nil, errors.New("serve: lease dir must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: lease dir: %w", err)
	}
	return &LeaseDir{dir: dir, now: time.Now}, nil
}

// path returns the lease file for a task.
func (d *LeaseDir) path(task string) string {
	return filepath.Join(d.dir, "lease-"+sanitizeID(task)+".json")
}

// Claim attempts to acquire the task's lease for owner with the given TTL.
// It wins when no lease file exists (fresh claim, epoch 1) or the existing
// lease is expired (reclaim, epoch+1); an unexpired lease by another owner
// returns ErrLeaseHeld, and re-claiming a task the owner already holds
// renews it in place.
func (d *LeaseDir) Claim(task, owner string, ttl time.Duration) (*Lease, error) {
	now := d.now()
	path := d.path(task)
	cur, err := d.read(path)
	switch {
	case err == nil && cur.Owner == owner && !cur.Expired(now):
		// Already ours: refresh the deadline (idempotent claim after a
		// worker restart that kept its ID).
		cur.Expires = now.Add(ttl)
		if err := d.rewrite(path, cur); err != nil {
			return nil, err
		}
		return &cur, nil
	case err == nil && !cur.Expired(now):
		return nil, fmt.Errorf("%w: %s owns %s until %s", ErrLeaseHeld, cur.Owner, task, cur.Expires.Format(time.RFC3339))
	case err == nil:
		// Expired: anyone may reclaim. Remove then O_EXCL-create; losing
		// either race means another worker won the reclaim.
		_ = os.Remove(path)
		next := Lease{Task: task, Owner: owner, Epoch: cur.Epoch + 1, Expires: now.Add(ttl)}
		if err := d.create(path, next); err != nil {
			return nil, err
		}
		return &next, nil
	case os.IsNotExist(err):
		next := Lease{Task: task, Owner: owner, Epoch: 1, Expires: now.Add(ttl)}
		if err := d.create(path, next); err != nil {
			return nil, err
		}
		return &next, nil
	default:
		return nil, err
	}
}

// Renew extends the lease's deadline by ttl from now. The caller must still
// own the exact epoch it claimed; anything else — file gone, other owner,
// other epoch — is ErrLeaseLost.
func (d *LeaseDir) Renew(l *Lease, ttl time.Duration) error {
	path := d.path(l.Task)
	cur, err := d.read(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: lease file for %s is gone", ErrLeaseLost, l.Task)
		}
		return err
	}
	if cur.Owner != l.Owner || cur.Epoch != l.Epoch {
		return fmt.Errorf("%w: %s is owned by %s (epoch %d)", ErrLeaseLost, l.Task, cur.Owner, cur.Epoch)
	}
	l.Expires = d.now().Add(ttl)
	return d.rewrite(path, *l)
}

// Release drops the lease so the task stops looking claimed. Releasing a
// lease the caller no longer owns returns ErrLeaseLost and removes nothing.
func (d *LeaseDir) Release(l *Lease) error {
	path := d.path(l.Task)
	cur, err := d.read(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // already gone — release is idempotent
		}
		return err
	}
	if cur.Owner != l.Owner || cur.Epoch != l.Epoch {
		return fmt.Errorf("%w: %s is owned by %s (epoch %d)", ErrLeaseLost, l.Task, cur.Owner, cur.Epoch)
	}
	return os.Remove(path)
}

// Get returns the task's current lease, with ok=false when none exists.
func (d *LeaseDir) Get(task string) (Lease, bool, error) {
	l, err := d.read(d.path(task))
	if err != nil {
		if os.IsNotExist(err) {
			return Lease{}, false, nil
		}
		return Lease{}, false, err
	}
	return l, true, nil
}

// List returns every lease in the directory, sorted by task. Unparsable
// files (a worker died mid-create before O_EXCL content landed — impossible
// with our create, but directories are shared) are skipped.
func (d *LeaseDir) List() ([]Lease, error) {
	paths, err := filepath.Glob(filepath.Join(d.dir, "lease-*.json"))
	if err != nil {
		return nil, err
	}
	var out []Lease
	for _, p := range paths {
		l, err := d.read(p)
		if err != nil {
			continue
		}
		out = append(out, l)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Task < out[b].Task })
	return out, nil
}

// read parses one lease file. A file that exists but does not parse is
// reported as malformed, distinct from not-exist.
func (d *LeaseDir) read(path string) (Lease, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Lease{}, err
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return Lease{}, fmt.Errorf("serve: malformed lease %s: %w", path, err)
	}
	return l, nil
}

// create writes a brand-new lease file through the statefs O_EXCL
// discipline, the cross-process mutual-exclusion primitive: exactly one
// concurrent claimant succeeds, and the winning claim is fsynced along
// with its directory entry before the claimant proceeds (the missing
// parent-directory fsync here was one of the durability holes the statefs
// migration closed).
func (d *LeaseDir) create(path string, l Lease) error {
	err := statefs.CreateExclusiveJSON(siteLeaseCreate, path, l)
	if err != nil && os.IsExist(err) {
		return fmt.Errorf("%w: lost the claim race for %s", ErrLeaseHeld, l.Task)
	}
	return err
}

// rewrite replaces a held lease in place (renewal, idempotent re-claim)
// through the statefs atomic discipline.
func (d *LeaseDir) rewrite(path string, l Lease) error {
	return statefs.WriteJSON(siteLeaseRenew, path, l)
}

// leaseTaskForShard names the lease protecting one shard of one job.
func leaseTaskForShard(job string, index int) string {
	return fmt.Sprintf("%s-shard-%d", job, index)
}

// jobOfLeaseTask extracts the job ID out of a shard lease task name,
// with ok=false for non-shard tasks.
func jobOfLeaseTask(task string) (string, bool) {
	i := strings.LastIndex(task, "-shard-")
	if i < 0 {
		return "", false
	}
	return task[:i], true
}
