package serve

// The self-check gate: the checker turned on itself. The test binary
// doubles as a miniature daemon (TestMain scenario mode) that recovers a
// state directory with Fsck, resumes or submits one fleet explore job and
// prints a machine-readable transcript. The driver enumerates every
// registered statefs crash point, runs the scenario with that point armed
// (the process kills itself at the exact instant the simulated crash
// lands), then runs it again for recovery — asserting the crash actually
// fired (exit code), that no acknowledged job was lost, and that the
// recovered report is byte-identical to an uncrashed run's.
//
// Transcript protocol, one record per line on stdout:
//
//	FSCK problems=<n> repaired=<n> quarantined=<n>
//	HAVE <job-id> <state>     (one per job record loaded after fsck)
//	ACK <job-id>              (the job is durably accepted)
//	REPORT <sha256>           (hash of the final report fingerprint)
//	DONE
import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/statefs"
)

// Environment markers that flip the test binary into scenario mode.
const (
	envSelfCheckScenario = "PARACRASH_SELFCHECK_SCENARIO"
	envSelfCheckDir      = "PARACRASH_SELFCHECK_DIR"
)

// selfCheckRequest is the one job every scenario run executes: small
// enough to finish in tens of milliseconds, sharded so every fleet
// persistence site (tasks, leases, results, shard journals) is traversed.
var selfCheckRequest = JobRequest{Kind: JobKindExplore, FS: "ext4", Program: "CR", Mode: "pruning"}

// TestMain doubles the test binary as the self-check scenario daemon.
func TestMain(m *testing.M) {
	if os.Getenv(envSelfCheckScenario) == "1" {
		runSelfCheckScenario()
		return
	}
	os.Exit(m.Run())
}

// scenarioFatalf aborts a scenario subprocess with a diagnosable message.
func scenarioFatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "selfcheck scenario: "+format+"\n", args...)
	os.Exit(3)
}

// runSelfCheckScenario is one daemon lifetime: fsck-with-repair, load the
// store, resume the interrupted job (or submit a fresh one), run it on an
// in-process two-shard fleet and report the result. A crash point armed
// via statefs environment variables kills the process partway through;
// the next lifetime must recover.
func runSelfCheckScenario() {
	dir := os.Getenv(envSelfCheckDir)
	if dir == "" {
		scenarioFatalf("%s not set", envSelfCheckDir)
	}

	rep, err := Fsck(dir, FsckOptions{Repair: true})
	if err != nil {
		scenarioFatalf("fsck: %v", err)
	}
	fmt.Printf("FSCK problems=%d repaired=%d quarantined=%d\n", len(rep.Problems), rep.Repaired, rep.Quarantined)
	if rep.Quarantined > 0 {
		// The scenario only crashes at statefs crash points, whose debris is
		// always reconstructible; quarantine means the repair taxonomy has a
		// hole. Degrade loudly.
		scenarioFatalf("fsck quarantined %d record(s): %+v", rep.Quarantined, rep.Problems)
	}

	st, warns := OpenStore(dir)
	if len(warns) > 0 {
		scenarioFatalf("store still dirty after fsck: %v", warns)
	}
	jobs := st.List()
	for _, j := range jobs {
		fmt.Printf("HAVE %s %s\n", j.ID, j.State)
	}

	// Deterministically traverse the lease-renew site. Shards on a fast rig
	// finish inside one heartbeat tick, so renewal-by-heartbeat is not
	// guaranteed to happen — claim, renew and release a warmup lease
	// through the very same statefs sites the worker heartbeat uses, so
	// the crash-point sweep always finds them armed on a live write.
	ld, err := NewLeaseDir(dir)
	if err != nil {
		scenarioFatalf("lease dir: %v", err)
	}
	warmup, err := ld.Claim("selfcheck-warmup", "w1", 2*time.Second)
	if err != nil {
		scenarioFatalf("warmup claim: %v", err)
	}
	if err := ld.Renew(warmup, 2*time.Second); err != nil {
		scenarioFatalf("warmup renew: %v", err)
	}
	if err := ld.Release(warmup); err != nil {
		scenarioFatalf("warmup release: %v", err)
	}

	sched := NewScheduler(SchedulerConfig{
		MaxConcurrent: 1,
		Fleet:         &FleetConfig{Shards: 2, Poll: 2 * time.Millisecond},
	}, st, nil)
	sched.Start()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	worker, err := NewFleetWorker(FleetWorkerConfig{
		// The fixed ID makes a post-crash restart look like the same worker
		// coming back, exercising the idempotent lease re-claim path; the
		// 1ms heartbeat guarantees lease renewals happen during any shard.
		Dir: dir, ID: "w1",
		LeaseTTL: 2 * time.Second, Heartbeat: time.Millisecond, Poll: time.Millisecond,
	})
	if err != nil {
		scenarioFatalf("worker: %v", err)
	}
	go func() { _ = worker.Run(ctx) }()

	var id string
	switch {
	case len(jobs) > 1:
		scenarioFatalf("scenario owns one job, found %d", len(jobs))
	case len(jobs) == 1 && jobs[0].State.Terminal():
		// The previous lifetime crashed after the job's terminal record
		// landed (e.g. job-record@post-rename on the done persist): nothing
		// to recover, just report.
		j := jobs[0]
		if j.State != JobDone || j.Report == nil {
			scenarioFatalf("job %s recovered in state %s: %s", j.ID, j.State, j.Error)
		}
		reportAndExit(sched, cancel, j)
	case len(jobs) == 1:
		// Interrupted mid-run: resume under the original ID so shard
		// checkpoints are picked up.
		id = jobs[0].ID
		if err := sched.Resubmit(id); err != nil {
			scenarioFatalf("resubmit %s: %v", id, err)
		}
		fmt.Printf("ACK %s\n", id)
	default:
		j, err := sched.Submit(selfCheckRequest)
		if err != nil {
			scenarioFatalf("submit: %v", err)
		}
		id = j.ID
		fmt.Printf("ACK %s\n", id)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		j, ok := st.Get(id)
		if !ok {
			scenarioFatalf("job %s vanished from the store", id)
		}
		if j.State.Terminal() {
			if j.State != JobDone || j.Report == nil {
				scenarioFatalf("job %s ended %s: %s", id, j.State, j.Error)
			}
			reportAndExit(sched, cancel, j)
		}
		if time.Now().After(deadline) {
			scenarioFatalf("job %s still %s after 2m", id, j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// reportAndExit drains the scenario daemon (so the terminal record is
// durable before the transcript claims success) and prints the report.
func reportAndExit(sched *Scheduler, cancelWorker context.CancelFunc, j Job) {
	cancelWorker()
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = sched.Drain(drainCtx)
	sum := sha256.Sum256([]byte(exps.ReportFingerprint(j.Report)))
	fmt.Printf("REPORT %s\n", hex.EncodeToString(sum[:]))
	fmt.Println("DONE")
	os.Exit(0)
}

// scenarioResult is one parsed scenario transcript.
type scenarioResult struct {
	exitCode int
	acked    []string
	have     map[string]string // job ID -> state at startup
	report   string
	done     bool
	stdout   string
	stderr   string
}

// runScenario executes the scenario subprocess over dir, optionally with
// one crash point armed (hit selects which traversal crashes, 0 = first).
func runScenario(t *testing.T, dir, crashPoint string, hit int) scenarioResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0])
	cmd.Env = append(os.Environ(),
		envSelfCheckScenario+"=1",
		envSelfCheckDir+"="+dir,
		statefs.EnvCrashPoint+"="+crashPoint,
	)
	if hit > 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", statefs.EnvCrashHit, hit))
	}
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	res := scenarioResult{have: map[string]string{}, stdout: stdout.String(), stderr: stderr.String()}
	switch e := err.(type) {
	case nil:
		res.exitCode = 0
	case *exec.ExitError:
		res.exitCode = e.ExitCode()
	default:
		t.Fatalf("scenario did not run: %v", err)
	}
	for _, line := range strings.Split(res.stdout, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "ACK":
			if len(fields) == 2 {
				res.acked = append(res.acked, fields[1])
			}
		case "HAVE":
			if len(fields) == 3 {
				res.have[fields[1]] = fields[2]
			}
		case "REPORT":
			if len(fields) == 2 {
				res.report = fields[1]
			}
		case "DONE":
			res.done = true
		}
	}
	return res
}

// mustScenario runs an uncrashed scenario and fails the test unless it
// completes with a report.
func mustScenario(t *testing.T, dir, context string) scenarioResult {
	t.Helper()
	res := runScenario(t, dir, "", 0)
	if res.exitCode != 0 || !res.done || res.report == "" {
		t.Fatalf("%s: exit %d, done=%t, report=%q\nstdout:\n%s\nstderr:\n%s",
			context, res.exitCode, res.done, res.report, res.stdout, res.stderr)
	}
	return res
}

// TestSelfCheckCrashPointSweep is the `make selfcheck` gate: for every
// registered statefs crash point, kill the daemon exactly there, restart
// it with fsck, and require (a) the crash actually fired — a run that
// exits cleanly means the catalogue lists a point the scenario never
// traverses, which is a coverage hole, (b) no acknowledged job was lost,
// and (c) the recovered report is byte-identical to the uncrashed run's —
// which also proves no verdict was duplicated, since the fingerprint
// covers every verdict and charge.
func TestSelfCheckCrashPointSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("selfcheck sweep spawns ~40 daemon lifetimes; skipped in -short")
	}

	points := statefs.CrashPoints()
	// The catalogue floor: serve's five sites plus the core journal's two.
	// A migration that silently drops a site from the audited plane shrinks
	// this list — fail loudly instead.
	if len(points) < 19 {
		t.Fatalf("crash-point catalogue shrank to %d points: %v", len(points), points)
	}

	baseline := mustScenario(t, t.TempDir(), "baseline scenario")

	for _, point := range points {
		point := point
		t.Run(strings.ReplaceAll(point, "/", "_"), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()

			crash := runScenario(t, dir, point, 0)
			if crash.exitCode != statefs.CrashExitCode {
				t.Fatalf("crash run exited %d, want %d — crash point %s was never exercised by the scenario\nstdout:\n%s\nstderr:\n%s",
					crash.exitCode, statefs.CrashExitCode, point, crash.stdout, crash.stderr)
			}

			rec := mustScenario(t, dir, "recovery after crash at "+point)
			if rec.report != baseline.report {
				t.Errorf("recovered report diverged from uncrashed baseline after crash at %s:\nrecovered: %s\nbaseline:  %s\nrecovery stdout:\n%s",
					point, rec.report, baseline.report, rec.stdout)
			}
			for _, id := range crash.acked {
				if _, ok := rec.have[id]; !ok {
					t.Errorf("job %s was acknowledged before the crash at %s but has no record after recovery", id, point)
				}
			}
		})
	}
}

// TestChaosCoordinatorDeathMidMerge kills the coordinator at the precise
// worst moment of a fleet job: the merge has completed and the daemon is
// persisting the terminal job record (the third job-record traversal —
// queued, running, then done). The restarted daemon must find the job
// running, re-run the merged shards and land the identical report.
func TestChaosCoordinatorDeathMidMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon subprocesses; skipped in -short")
	}
	baseline := mustScenario(t, t.TempDir(), "baseline scenario")

	dir := t.TempDir()
	crash := runScenario(t, dir, "serve/job-record@pre-rename", 3)
	if crash.exitCode != statefs.CrashExitCode {
		t.Fatalf("crash run exited %d, want %d\nstdout:\n%s\nstderr:\n%s",
			crash.exitCode, statefs.CrashExitCode, crash.stdout, crash.stderr)
	}
	if len(crash.acked) != 1 {
		t.Fatalf("crash run acked %v, want exactly one job", crash.acked)
	}

	rec := mustScenario(t, dir, "recovery after coordinator death mid-merge")
	// The done record's rename never landed, so the store must see the job
	// as interrupted (running), not lost and not done.
	if state, ok := rec.have[crash.acked[0]]; !ok || state != string(JobRunning) {
		t.Errorf("job %s after coordinator death = %q, want %q\nstdout:\n%s",
			crash.acked[0], state, JobRunning, rec.stdout)
	}
	if rec.report != baseline.report {
		t.Errorf("report diverged after coordinator death mid-merge:\nrecovered: %s\nbaseline:  %s", rec.report, baseline.report)
	}
}
