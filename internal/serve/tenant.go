// Multi-tenancy: API keys, per-tenant quotas, submission rate limits and
// priority classes. A daemon started without a tenant file runs open —
// no authentication, one implicit tenant, today's behaviour exactly. With
// tenants configured, every /v1 request must present a key (Authorization:
// Bearer or X-API-Key), submissions pass the tenant's token-bucket rate
// limit and queued-job quota, the scheduler's fair queue interleaves
// tenants round-robin within priority classes, and each tenant sees only
// its own jobs.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// Admission errors introduced by multi-tenancy; the server maps both to
// HTTP 429 (with ErrUnauthorized mapping to 401).
var (
	// ErrUnauthorized signals a missing or unknown API key.
	ErrUnauthorized = errors.New("serve: missing or invalid API key")
	// ErrRateLimited signals the tenant exhausted its submission tokens.
	ErrRateLimited = errors.New("serve: tenant rate limit exceeded")
	// ErrQuotaExceeded signals the tenant is at its queued-job quota.
	ErrQuotaExceeded = errors.New("serve: tenant job quota exceeded")
)

// Priority classes, strongest first. The fair queue always serves a higher
// class before a lower one; within a class, tenants interleave round-robin.
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal"
	PriorityLow    = "low"
)

// priorityIndex maps a class name to its queue rank (0 strongest).
func priorityIndex(p string) (int, error) {
	switch p {
	case PriorityHigh:
		return 0, nil
	case "", PriorityNormal:
		return 1, nil
	case PriorityLow:
		return 2, nil
	default:
		return 0, fmt.Errorf("unknown priority %q (want %s, %s or %s)", p, PriorityHigh, PriorityNormal, PriorityLow)
	}
}

// Tenant is one tenant's static configuration.
type Tenant struct {
	// Name identifies the tenant in job records and metrics.
	Name string `json:"name"`
	// Key is the tenant's API key (Authorization: Bearer <key> or
	// X-API-Key: <key>).
	Key string `json:"key"`
	// Priority is the tenant's scheduling class: high, normal (default)
	// or low.
	Priority string `json:"priority,omitempty"`
	// MaxQueued caps the tenant's queued jobs (0 = only the global queue
	// depth applies).
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxRunning caps the tenant's concurrently running jobs (0 = only the
	// scheduler's concurrency applies).
	MaxRunning int `json:"max_running,omitempty"`
	// RatePerSec refills the tenant's submission token bucket (0 = no rate
	// limit).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (default max(1, ceil(RatePerSec))).
	Burst int `json:"burst,omitempty"`
}

// burst resolves the bucket capacity.
func (t Tenant) burst() float64 {
	if t.Burst > 0 {
		return float64(t.Burst)
	}
	if t.RatePerSec > 1 {
		return t.RatePerSec
	}
	return 1
}

// tenantsFile is the on-disk tenant configuration.
type tenantsFile struct {
	Version int      `json:"version"`
	Tenants []Tenant `json:"tenants"`
}

// TenantsVersion is the schema version of the tenant configuration file.
const TenantsVersion = 1

// tenantBucket is one tenant's live token bucket.
type tenantBucket struct {
	tokens float64
	last   time.Time
}

// Tenants is the authentication registry: static config plus the live rate
// buckets. Safe for concurrent use.
type Tenants struct {
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	order  []string // config order, for stable listings

	mu      sync.Mutex
	buckets map[string]*tenantBucket
	now     func() time.Time // test clock
}

// NewTenants builds a registry from static configs, validating names, keys
// and priorities.
func NewTenants(list []Tenant) (*Tenants, error) {
	if len(list) == 0 {
		return nil, errors.New("serve: tenant list is empty")
	}
	t := &Tenants{
		byKey:   map[string]*Tenant{},
		byName:  map[string]*Tenant{},
		buckets: map[string]*tenantBucket{},
		now:     time.Now,
	}
	for i := range list {
		tn := list[i]
		if tn.Name == "" {
			return nil, fmt.Errorf("serve: tenant %d has no name", i)
		}
		if len(tn.Key) < 8 {
			return nil, fmt.Errorf("serve: tenant %q: key must be at least 8 characters", tn.Name)
		}
		if _, err := priorityIndex(tn.Priority); err != nil {
			return nil, fmt.Errorf("serve: tenant %q: %v", tn.Name, err)
		}
		if tn.MaxQueued < 0 || tn.MaxRunning < 0 || tn.RatePerSec < 0 || tn.Burst < 0 {
			return nil, fmt.Errorf("serve: tenant %q: quotas and rates must be >= 0", tn.Name)
		}
		if _, dup := t.byName[tn.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant name %q", tn.Name)
		}
		if _, dup := t.byKey[tn.Key]; dup {
			return nil, fmt.Errorf("serve: tenants %q and %q share an API key", t.byKey[tn.Key].Name, tn.Name)
		}
		cp := tn
		t.byName[tn.Name] = &cp
		t.byKey[tn.Key] = &cp
		t.order = append(t.order, tn.Name)
	}
	return t, nil
}

// LoadTenants reads the tenant configuration file (see docs/OPERATIONS.md
// for the format).
func LoadTenants(path string) (*Tenants, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: tenants file: %w", err)
	}
	var f tenantsFile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("serve: parse tenants file %s: %w", path, err)
	}
	if f.Version != TenantsVersion {
		return nil, fmt.Errorf("serve: tenants file %s has version %d, want %d", path, f.Version, TenantsVersion)
	}
	return NewTenants(f.Tenants)
}

// Authenticate resolves the request's API key to a tenant. The key rides in
// "Authorization: Bearer <key>" or "X-API-Key: <key>".
func (t *Tenants) Authenticate(r *http.Request) (*Tenant, error) {
	key := r.Header.Get("X-API-Key")
	if auth := r.Header.Get("Authorization"); key == "" && auth != "" {
		if rest, ok := strings.CutPrefix(auth, "Bearer "); ok {
			key = rest
		}
	}
	if key == "" {
		return nil, fmt.Errorf("%w: no key presented", ErrUnauthorized)
	}
	tn, ok := t.byKey[key]
	if !ok {
		return nil, fmt.Errorf("%w: unknown key", ErrUnauthorized)
	}
	return tn, nil
}

// ByName returns a tenant's config.
func (t *Tenants) ByName(name string) (*Tenant, bool) {
	tn, ok := t.byName[name]
	return tn, ok
}

// Names returns the tenant names in configuration order.
func (t *Tenants) Names() []string {
	return append([]string(nil), t.order...)
}

// Allow consumes one submission token from the tenant's bucket, reporting
// false when the tenant is over its rate. Tenants without a rate always
// pass.
func (t *Tenants) Allow(name string) bool {
	tn, ok := t.byName[name]
	if !ok || tn.RatePerSec <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	b, ok := t.buckets[name]
	if !ok {
		b = &tenantBucket{tokens: tn.burst(), last: now}
		t.buckets[name] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * tn.RatePerSec
	b.last = now
	if max := tn.burst(); b.tokens > max {
		b.tokens = max
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
