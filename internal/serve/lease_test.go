package serve

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	core "paracrash/internal/paracrash"
)

// testLeaseDir builds a lease dir with a controllable clock.
func testLeaseDir(t *testing.T) (*LeaseDir, *time.Time) {
	t.Helper()
	ld, err := NewLeaseDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	ld.now = func() time.Time { return now }
	return ld, &now
}

func TestLeaseClaimRenewRelease(t *testing.T) {
	ld, now := testLeaseDir(t)

	l, err := ld.Claim("job-shard-0", "w1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch != 1 || l.Owner != "w1" {
		t.Fatalf("fresh claim: %+v", l)
	}

	// A second worker is refused while the lease is live.
	if _, err := ld.Claim("job-shard-0", "w2", time.Second); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second claim: got %v, want ErrLeaseHeld", err)
	}

	// The owner renews; the deadline moves.
	*now = now.Add(500 * time.Millisecond)
	before := l.Expires
	if err := ld.Renew(l, time.Second); err != nil {
		t.Fatal(err)
	}
	if !l.Expires.After(before) {
		t.Fatal("renew did not extend the deadline")
	}

	// Re-claiming our own live lease refreshes it instead of failing.
	l2, err := ld.Claim("job-shard-0", "w1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Epoch != 1 {
		t.Fatalf("self re-claim bumped epoch to %d", l2.Epoch)
	}

	if err := ld.Release(l2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ld.Get("job-shard-0"); ok {
		t.Fatal("lease survived release")
	}
	// Releasing again is idempotent.
	if err := ld.Release(l2); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseExpiryReclaim(t *testing.T) {
	ld, now := testLeaseDir(t)

	l1, err := ld.Claim("job-shard-1", "w1", time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Not yet expired: reclaim refused.
	*now = now.Add(900 * time.Millisecond)
	if _, err := ld.Claim("job-shard-1", "w2", time.Second); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("early reclaim: got %v", err)
	}

	// Past the TTL: w2 reclaims with a bumped epoch.
	*now = now.Add(200 * time.Millisecond)
	l2, err := ld.Claim("job-shard-1", "w2", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Epoch != 2 || l2.Owner != "w2" {
		t.Fatalf("reclaim: %+v", l2)
	}

	// The presumed-dead worker wakes up: its renewal and release both fail
	// with ErrLeaseLost and leave w2's lease untouched.
	if err := ld.Renew(l1, time.Second); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale renew: got %v", err)
	}
	if err := ld.Release(l1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale release: got %v", err)
	}
	if cur, ok, _ := ld.Get("job-shard-1"); !ok || cur.Owner != "w2" || cur.Epoch != 2 {
		t.Fatalf("lease after stale ops: %+v ok=%v", cur, ok)
	}
}

// TestLeaseClaimRace: many workers race for the same fresh task; exactly one
// claim must succeed (the O_EXCL guarantee).
func TestLeaseClaimRace(t *testing.T) {
	ld, err := NewLeaseDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const racers = 16
	var wg sync.WaitGroup
	wins := make(chan string, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := ld.Claim("hot-task", string(rune('a'+i)), time.Minute); err == nil {
				wins <- string(rune('a' + i))
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []string
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("%d workers won the claim race: %v", len(winners), winners)
	}
}

func TestLeaseList(t *testing.T) {
	ld, _ := testLeaseDir(t)
	for _, task := range []string{"j1-shard-0", "j1-shard-1", "j0-shard-0"} {
		if _, err := ld.Claim(task, "w", time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	leases, err := ld.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 3 || leases[0].Task != "j0-shard-0" {
		t.Fatalf("list: %+v", leases)
	}
	if job, ok := jobOfLeaseTask(leases[0].Task); !ok || job != "j0" {
		t.Fatalf("jobOfLeaseTask: %q %v", job, ok)
	}
	if _, ok := jobOfLeaseTask("plain-task"); ok {
		t.Fatal("non-shard task parsed as shard lease")
	}
}

// TestShardRecordRoundTrip: task and result records survive the write/list/
// read cycle, version-skewed records are skipped, and RemoveShardFiles
// clears every per-job artifact.
func TestShardRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	req := JobRequest{Kind: JobKindExplore, FS: "ext4", Program: "CR", Mode: "pruning"}
	for i := 0; i < 2; i++ {
		if err := WriteShardTask(dir, ShardTask{Job: "j-ab", Shard: core.ShardSpec{Index: i, Count: 2}, Request: req}); err != nil {
			t.Fatal(err)
		}
	}
	// A corrupt task file must be skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "task-zzz-shard-0.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	tasks, err := ListShardTasks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 || tasks[0].Shard.Index != 0 || tasks[1].Shard.Index != 1 {
		t.Fatalf("tasks: %+v", tasks)
	}
	if tasks[0].Request.FS != "ext4" {
		t.Fatalf("request did not round-trip: %+v", tasks[0].Request)
	}

	if _, ok, err := ReadShardResult(dir, "j-ab", 0); ok || err != nil {
		t.Fatalf("missing result: ok=%v err=%v", ok, err)
	}
	res := ShardResult{Job: "j-ab", Shard: core.ShardSpec{Index: 0, Count: 2}, Worker: "w1", Epoch: 1,
		Report: &core.ShardReport{Shard: core.ShardSpec{Index: 0, Count: 2}, Config: "cfg", StatesGenerated: 7}}
	if err := WriteShardResult(dir, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadShardResult(dir, "j-ab", 0)
	if err != nil || !ok {
		t.Fatalf("read result: ok=%v err=%v", ok, err)
	}
	if got.Report.StatesGenerated != 7 || got.Worker != "w1" {
		t.Fatalf("result did not round-trip: %+v", got)
	}

	RemoveShardFiles(dir, "j-ab", 2)
	tasks, _ = ListShardTasks(dir)
	if len(tasks) != 0 {
		t.Fatalf("tasks survived removal: %+v", tasks)
	}
	if _, ok, _ := ReadShardResult(dir, "j-ab", 0); ok {
		t.Fatal("result survived removal")
	}
}
