package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/faultinject"
	"paracrash/internal/obs"
	core "paracrash/internal/paracrash"
)

// startFleet builds a coordinator scheduler over a persistent store and n
// worker loops sharing its directory, all tuned for test latencies.
func startFleet(t *testing.T, dir string, shards, workers int) (*Scheduler, *Store, func()) {
	t.Helper()
	st, warns := OpenStore(dir)
	if len(warns) > 0 {
		t.Fatal(warns[0])
	}
	s := NewScheduler(SchedulerConfig{
		MaxConcurrent: 1,
		Fleet:         &FleetConfig{Shards: shards, Poll: 5 * time.Millisecond},
	}, st, nil)
	s.Start()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w, err := NewFleetWorker(FleetWorkerConfig{Dir: dir, ID: fmt.Sprintf("w%d", i), Poll: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	stop := func() {
		cancel()
		wg.Wait()
		_ = s.Drain(context.Background())
	}
	return s, st, stop
}

// standaloneFingerprint runs the same request in-process (serial engine)
// and fingerprints the report — the byte-identity baseline.
func standaloneFingerprint(t *testing.T, req JobRequest) string {
	t.Helper()
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	prog, err := exps.ProgramByName(req.Program)
	if err != nil {
		t.Fatal(err)
	}
	opts := req.options(0)
	opts.Workers = 1
	rep, err := exps.RunOneContext(context.Background(), req.FS, prog, opts, req.h5Params(), exps.ConfigFor(req.FS))
	if err != nil {
		t.Fatal(err)
	}
	return exps.ReportFingerprint(rep)
}

// TestFleetByteIdentity: a 3-worker fleet over every backend produces the
// byte-identical report a standalone serial run produces — the tentpole
// invariant, checked end to end through the coordinator, leases, shard
// checkpoints and the merge.
func TestFleetByteIdentity(t *testing.T) {
	for _, fsName := range exps.FSNames() {
		fsName := fsName
		t.Run(fsName, func(t *testing.T) {
			req := JobRequest{Kind: JobKindExplore, FS: fsName, Program: "CR", Mode: "pruning"}
			want := standaloneFingerprint(t, req)

			s, st, stop := startFleet(t, t.TempDir(), 3, 3)
			defer stop()
			job, err := s.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
			done := waitState(t, st, job.ID, JobDone)
			if done.Report == nil {
				t.Fatal("fleet job finished without a report")
			}
			if got := exps.ReportFingerprint(done.Report); got != want {
				t.Errorf("fleet report diverged from standalone on %s:\nfleet:      %.120q\nstandalone: %.120q", fsName, got, want)
			}
		})
	}
}

// TestFleetShardFailureFailsJob: a shard that fails for good (not a lease
// loss) must fail the job with the worker's error, not hang the
// coordinator.
func TestFleetShardFailureFailsJob(t *testing.T) {
	dir := t.TempDir()
	st, warns := OpenStore(dir)
	if len(warns) > 0 {
		t.Fatal(warns[0])
	}
	s := NewScheduler(SchedulerConfig{
		MaxConcurrent: 1,
		Fleet:         &FleetConfig{Shards: 2, Poll: 5 * time.Millisecond},
	}, st, nil)
	s.Start()
	defer s.Drain(context.Background())

	job, err := s.Submit(JobRequest{FS: "beegfs", Program: "CR"})
	if err != nil {
		t.Fatal(err)
	}
	// Play a worker that fails shard 0 terminally.
	deadline := time.Now().Add(10 * time.Second)
	for {
		tasks, _ := ListShardTasks(dir)
		if len(tasks) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never wrote shard tasks")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := WriteShardResult(dir, ShardResult{Job: job.ID, Shard: core.ShardSpec{Index: 0, Count: 2}, Worker: "wX", Epoch: 1, Err: "disk on fire"}); err != nil {
		t.Fatal(err)
	}
	j := waitState(t, st, job.ID, JobFailed)
	if j.Error == "" {
		t.Fatalf("failed job carries no error: %+v", j)
	}
}

// TestChaosFleetWorkerDeathLeaseReclaim is the fleet chaos drill: workers
// are repeatedly "killed" mid-shard (context cancelled while configured to
// hold the lease, exactly like a kill -9), the lease expires, a fresh
// worker reclaims the shard at a bumped epoch and resumes the dead
// worker's checkpoint journal — and the merged report is still
// byte-identical to the standalone run.
func TestChaosFleetWorkerDeathLeaseReclaim(t *testing.T) {
	req := JobRequest{Kind: JobKindExplore, FS: "lustre", Program: "CR", Mode: "optimized"}
	want := standaloneFingerprint(t, req)

	dir := t.TempDir()
	st, warns := OpenStore(dir)
	if len(warns) > 0 {
		t.Fatal(warns[0])
	}
	s := NewScheduler(SchedulerConfig{
		MaxConcurrent: 1,
		Fleet:         &FleetConfig{Shards: 3, Poll: 5 * time.Millisecond},
	}, st, nil)
	s.Start()
	defer s.Drain(context.Background())

	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Rounds of short-lived workers with escalating lifetimes: early rounds
	// die mid-shard leaving a held lease and a partial journal; later rounds
	// must wait out the TTL, reclaim at epoch >= 2 and resume the journal.
	// Fault injection makes per-state work uneven, like the engine's own
	// chaos drill.
	const ttl = 50 * time.Millisecond
	var reclaims, resumed int64
	finished := func() bool {
		j, ok := st.Get(job.ID)
		return ok && j.State.Terminal()
	}
	for round := 0; !finished(); round++ {
		if round > 120 {
			t.Fatal("fleet never finished the job under worker churn")
		}
		wrun := obs.NewRun()
		w, err := NewFleetWorker(FleetWorkerConfig{
			Dir:               dir,
			ID:                fmt.Sprintf("chaos-w%d", round),
			LeaseTTL:          ttl,
			Heartbeat:         10 * time.Millisecond,
			Poll:              time.Millisecond,
			HoldLeaseOnCancel: true,
			Faults:            faultinject.New(faultinject.Config{Seed: 7, Rate: 0.25}),
			Obs:               wrun,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(round+1)*3*time.Millisecond)
		_ = w.Run(ctx)
		cancel()
		reclaims += wrun.Counter("fleet/reclaims").Value()
		resumed += wrun.Counter("fleet/resumed-verdicts").Value()
		// Let the dead worker's lease expire before the next one spawns.
		time.Sleep(ttl + 20*time.Millisecond)
	}

	j := waitState(t, st, job.ID, JobDone)
	if j.Report == nil {
		t.Fatalf("chaos job finished without a report: %+v", j)
	}
	if got := exps.ReportFingerprint(j.Report); got != want {
		t.Errorf("report diverged from standalone after worker churn:\nfleet:      %.120q\nstandalone: %.120q", got, want)
	}
	if reclaims == 0 {
		t.Error("no shard was ever reclaimed from an expired lease — the chaos never bit")
	}
	if resumed == 0 {
		t.Error("no reclaimed shard resumed a dead worker's checkpoint journal")
	}
}
