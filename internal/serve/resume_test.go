package serve

import (
	"context"
	"strings"
	"testing"

	"paracrash/internal/exps"
	"paracrash/internal/faultinject"
)

// TestInterruptedAndResubmit simulates an unclean daemon death: a job is
// mid-run when the "process" dies (we simply abandon the first scheduler),
// a fresh store over the same directory reports it interrupted, and
// Resubmit re-enqueues it under its original ID to completion.
func TestInterruptedAndResubmit(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	s1, gate1 := gatedScheduler(SchedulerConfig{MaxConcurrent: 1}, st)
	t.Cleanup(func() { close(gate1); s1.Drain(context.Background()) })

	j, err := s1.Submit(JobRequest{Program: "WAL", FS: "lustre"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st, j.ID, JobRunning)

	// "Restart": a second store and scheduler over the same directory see
	// the running record and flag it interrupted.
	st2, warns := OpenStore(dir)
	if len(warns) != 0 {
		t.Fatalf("reopen warnings: %v", warns)
	}
	interrupted := st2.Interrupted()
	if len(interrupted) != 1 || interrupted[0].ID != j.ID {
		t.Fatalf("Interrupted() = %+v, want the one running job", interrupted)
	}

	s2, gate2 := gatedScheduler(SchedulerConfig{MaxConcurrent: 1}, st2)
	defer s2.Drain(context.Background())
	if err := s2.Resubmit(j.ID); err != nil {
		t.Fatalf("Resubmit: %v", err)
	}
	close(gate2)
	got := waitState(t, st2, j.ID, JobDone)
	if got.Resumes != 1 {
		t.Errorf("Resumes = %d, want 1", got.Resumes)
	}
	if got.Report == nil || got.Report.Program != "WAL" {
		t.Errorf("resumed job report = %+v", got.Report)
	}
	if len(st2.Interrupted()) != 0 {
		t.Error("job still listed as interrupted after completing")
	}

	// Guard rails: unknown and already-finished jobs are rejected.
	if err := s2.Resubmit("j-doesnotexist"); err == nil {
		t.Error("Resubmit accepted an unknown job")
	}
	if err := s2.Resubmit(j.ID); err == nil || !strings.Contains(err.Error(), "finished") {
		t.Errorf("Resubmit of a done job: err = %v, want 'already finished'", err)
	}
}

// TestStoreWarnsHalfWrittenRecord: a record truncated mid-write — the
// artifact the temp+rename discipline prevents, but which a lost rename can
// still leave — is skipped with a warning, never a crash.
func TestStoreWarnsHalfWrittenRecord(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/job-half.json", `{"version": 1, "id": "j-half", "sta`)
	st, warns := OpenStore(dir)
	if len(warns) != 1 || !strings.Contains(warns[0].Error(), "parse") {
		t.Fatalf("warnings = %v, want one parse warning", warns)
	}
	if len(st.List()) != 0 {
		t.Fatalf("half-written record was loaded: %+v", st.List())
	}
}

// TestJobSurvivesInjectedFaults drives a real exploration job through a
// scheduler whose fault plane is armed: bounded faults heal via retries and
// the job's report matches an unfaulted run exactly.
func TestJobSurvivesInjectedFaults(t *testing.T) {
	st, _ := OpenStore("")
	clean := NewScheduler(SchedulerConfig{MaxConcurrent: 1}, st, nil)
	clean.Start()
	defer clean.Drain(context.Background())
	j1, err := clean.Submit(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, st, j1.ID, JobDone)

	faulted := NewScheduler(SchedulerConfig{
		MaxConcurrent: 1,
		Faults:        faultinject.New(faultinject.Config{Seed: 21, Rate: 0.3}),
	}, st, nil)
	faulted.Start()
	defer faulted.Drain(context.Background())
	j2, err := faulted.Submit(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, st, j2.ID, JobDone)

	if exps.ReportFingerprint(got.Report) != exps.ReportFingerprint(want.Report) {
		t.Error("faulted job report differs from clean job report")
	}
}

// TestJobQuarantinesInjectedPanics arms a fault plane that panics on every
// crash-state reconstruction: the engine quarantines the poisoned states,
// so the job finishes done (with Skipped entries) instead of failed — the
// daemon keeps serving.
func TestJobQuarantinesInjectedPanics(t *testing.T) {
	st, _ := OpenStore("")
	s := NewScheduler(SchedulerConfig{
		MaxConcurrent: 1,
		Faults: faultinject.New(faultinject.Config{
			Seed: 9, Rate: 1, Kinds: []faultinject.Kind{faultinject.KindPanic},
			Sites: []string{"pfs/apply"}, MaxPerPoint: 1 << 30,
		}),
	}, st, nil)
	s.Start()
	defer s.Drain(context.Background())

	j, err := s.Submit(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, st, j.ID, JobDone)
	if len(got.Report.Skipped) == 0 {
		t.Fatal("panicking backend produced no quarantined states")
	}

	// The scheduler is still healthy: a clean follow-up job completes.
	// (Fault quotas are per-plan state, so the poisoned plan keeps firing;
	// this job is expected to quarantine too but must still finish.)
	j2, err := s.Submit(JobRequest{Program: "WAL"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st, j2.ID, JobDone)
}
