// Fleet sharding: how one explore job spreads across worker processes.
//
// The coordinator partitions a job's crash-state space into Count shards
// and writes one task record per shard into the shared results directory.
// Worker processes (cmd/paracrashd -role worker) scan for tasks, claim a
// shard's lease (lease.go), judge the shard with paracrash.RunShard —
// journaling verdicts to a shard-scoped checkpoint so a reclaimed shard
// resumes the dead worker's frontier — and persist a result record. The
// coordinator polls for results and merges them with MergeShards into the
// byte-identical standalone report.
//
// Everything is files in one directory with the store's temp+rename+fsync
// discipline: the fleet needs no RPC fabric beyond a shared file system,
// which is the natural deployment substrate for a PFS testing tool.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/faultinject"
	"paracrash/internal/obs"
	core "paracrash/internal/paracrash"
	"paracrash/internal/statefs"
)

// FleetVersion is the schema version of shard task/result records.
const FleetVersion = 1

// ShardTask is one unit of fleet work: a job shard awaiting a worker.
type ShardTask struct {
	Version int            `json:"version"`
	Job     string         `json:"job"`
	Shard   core.ShardSpec `json:"shard"`
	Request JobRequest     `json:"request"`
}

// ShardResult is a worker's completed shard: the shard report, or the error
// that killed it.
type ShardResult struct {
	Version int            `json:"version"`
	Job     string         `json:"job"`
	Shard   core.ShardSpec `json:"shard"`
	// Worker is the ID of the worker that produced the result.
	Worker string `json:"worker"`
	// Epoch is the lease epoch the worker held; >1 means the shard was
	// reclaimed at least once before completing.
	Epoch int `json:"epoch"`
	// Err is set when the shard failed for good (not a lease loss — those
	// leave no result so another worker retries).
	Err    string            `json:"err,omitempty"`
	Report *core.ShardReport `json:"report,omitempty"`
}

// shardTaskPath/shardResultPath name the fleet records for one shard.
func shardTaskPath(dir, job string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("task-%s-shard-%d.json", sanitizeID(job), index))
}
func shardResultPath(dir, job string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("result-%s-shard-%d.json", sanitizeID(job), index))
}

// shardCheckpointPath is the shard's verdict journal — shared between the
// worker that started the shard and any worker that reclaims it.
func shardCheckpointPath(dir, job string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%s-shard-%d.jsonl", sanitizeID(job), index))
}

// WriteShardTask persists one task record.
func WriteShardTask(dir string, t ShardTask) error {
	t.Version = FleetVersion
	return statefs.WriteJSON(siteShardTask, shardTaskPath(dir, t.Job, t.Shard.Index), t)
}

// ListShardTasks returns every task record in the directory, sorted by job
// then shard index (the worker scan order). Unparsable or version-skewed
// records are skipped — one corrupt task must not wedge the fleet.
func ListShardTasks(dir string) ([]ShardTask, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "task-*-shard-*.json"))
	if err != nil {
		return nil, err
	}
	var out []ShardTask
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		var t ShardTask
		if err := json.Unmarshal(data, &t); err != nil || t.Version != FleetVersion || t.Job == "" {
			continue
		}
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Job != out[b].Job {
			return out[a].Job < out[b].Job
		}
		return out[a].Shard.Index < out[b].Shard.Index
	})
	return out, nil
}

// WriteShardResult persists one result record.
func WriteShardResult(dir string, r ShardResult) error {
	r.Version = FleetVersion
	return statefs.WriteJSON(siteShardResult, shardResultPath(dir, r.Job, r.Shard.Index), r)
}

// ReadShardResult loads one shard's result; ok=false when none exists yet.
func ReadShardResult(dir, job string, index int) (ShardResult, bool, error) {
	data, err := os.ReadFile(shardResultPath(dir, job, index))
	if err != nil {
		if os.IsNotExist(err) {
			return ShardResult{}, false, nil
		}
		return ShardResult{}, false, err
	}
	var r ShardResult
	if err := json.Unmarshal(data, &r); err != nil {
		return ShardResult{}, false, fmt.Errorf("serve: malformed shard result for %s/%d: %w", job, index, err)
	}
	if r.Version != FleetVersion {
		return ShardResult{}, false, fmt.Errorf("serve: shard result for %s/%d has version %d, want %d", job, index, r.Version, FleetVersion)
	}
	return r, true, nil
}

// RemoveShardFiles deletes every fleet record of one job — tasks, results,
// leases and shard checkpoints — after the merge (or a terminal failure).
func RemoveShardFiles(dir, job string, count int) {
	for i := 0; i < count; i++ {
		os.Remove(shardTaskPath(dir, job, i))
		os.Remove(shardResultPath(dir, job, i))
		os.Remove(shardCheckpointPath(dir, job, i))
		os.Remove(filepath.Join(dir, "lease-"+sanitizeID(leaseTaskForShard(job, i))+".json"))
	}
}

// FleetWorkerConfig configures one worker process.
type FleetWorkerConfig struct {
	// Dir is the shared results directory (the coordinator's store dir).
	Dir string
	// ID identifies this worker in leases and results. Default "worker-<pid>".
	ID string
	// LeaseTTL is how long a claimed shard stays ours without renewal;
	// a worker that dies is reclaimed after at most this long. Default 3s.
	LeaseTTL time.Duration
	// Heartbeat is the renewal cadence. Default LeaseTTL/3.
	Heartbeat time.Duration
	// Poll is the task-scan cadence when idle. Default 500ms.
	Poll time.Duration
	// Retry/Faults mirror the scheduler's engine knobs.
	Retry  core.RetryPolicy
	Faults *faultinject.Plan
	// Obs (nilable) receives the worker's metrics.
	Obs *obs.Run
	// HoldLeaseOnCancel simulates hard worker death for the chaos tests: a
	// cancelled worker exits without releasing its lease, so reclaim must
	// wait out the TTL exactly as after a kill -9.
	HoldLeaseOnCancel bool
}

func (c FleetWorkerConfig) withDefaults() FleetWorkerConfig {
	if c.ID == "" {
		c.ID = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.LeaseTTL / 3
	}
	if c.Poll <= 0 {
		c.Poll = 500 * time.Millisecond
	}
	return c
}

// FleetWorker claims and judges shards until its context is cancelled.
type FleetWorker struct {
	cfg    FleetWorkerConfig
	leases *LeaseDir
}

// NewFleetWorker builds a worker over the shared directory.
func NewFleetWorker(cfg FleetWorkerConfig) (*FleetWorker, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("serve: fleet worker needs a shared directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: fleet dir: %w", err)
	}
	ld, err := NewLeaseDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	return &FleetWorker{cfg: cfg, leases: ld}, nil
}

// ID returns the worker's identity.
func (w *FleetWorker) ID() string { return w.cfg.ID }

// Run is the worker loop: scan for tasks, claim one, judge it, repeat.
// It returns when ctx is cancelled. Shards run one at a time — fleet
// parallelism is across worker processes, and a shard explores serially.
func (w *FleetWorker) Run(ctx context.Context) error {
	tick := time.NewTicker(w.cfg.Poll)
	defer tick.Stop()
	for {
		worked := w.runOne(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if worked {
			continue // drain the backlog before sleeping
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// runOne scans once and processes at most one claimable task, reporting
// whether it did any work.
func (w *FleetWorker) runOne(ctx context.Context) bool {
	tasks, err := ListShardTasks(w.cfg.Dir)
	if err != nil {
		w.cfg.Obs.Counter("fleet/scan-errors").Inc()
		return false
	}
	for _, t := range tasks {
		if ctx.Err() != nil {
			return false
		}
		if _, done, _ := ReadShardResult(w.cfg.Dir, t.Job, t.Shard.Index); done {
			continue
		}
		lease, err := w.leases.Claim(leaseTaskForShard(t.Job, t.Shard.Index), w.cfg.ID, w.cfg.LeaseTTL)
		if err != nil {
			if !errors.Is(err, ErrLeaseHeld) {
				w.cfg.Obs.Counter("fleet/claim-errors").Inc()
			}
			continue
		}
		if lease.Epoch > 1 {
			w.cfg.Obs.Counter("fleet/reclaims").Inc()
		}
		w.cfg.Obs.Counter("fleet/claims").Inc()
		w.runTask(ctx, t, lease)
		return true
	}
	return false
}

// runTask judges one claimed shard under a heartbeat, writes the result and
// releases the lease. A lost lease (another worker reclaimed us after a
// stall) abandons the shard silently — the new owner produces the result.
func (w *FleetWorker) runTask(ctx context.Context, t ShardTask, lease *Lease) {
	// The heartbeat renews until the shard finishes; losing the lease
	// cancels the shard so we stop burning CPU on work we no longer own.
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	lost := make(chan struct{})
	go func() {
		tick := time.NewTicker(w.cfg.Heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				if err := w.leases.Renew(lease, w.cfg.LeaseTTL); err != nil {
					if errors.Is(err, ErrLeaseLost) {
						close(lost)
						return
					}
					w.cfg.Obs.Counter("fleet/renew-errors").Inc()
				}
			}
		}
	}()
	shardCtx, shardCancel := context.WithCancel(ctx)
	defer shardCancel()
	go func() {
		select {
		case <-lost:
			shardCancel()
		case <-hbCtx.Done():
		}
	}()

	report, err := w.executeShard(shardCtx, t)
	hbCancel()

	select {
	case <-lost:
		// Presumed dead and reclaimed: the new owner resumed our journal;
		// writing a result now would be a stale epoch's word against theirs
		// (identical verdicts, but the new owner may still be judging).
		w.cfg.Obs.Counter("fleet/leases-lost").Inc()
		return
	default:
	}
	if ctx.Err() != nil {
		// Worker shutdown mid-shard: leave no result. With HoldLeaseOnCancel
		// the lease times out like a crash; otherwise release it so another
		// worker picks the shard up immediately.
		if !w.cfg.HoldLeaseOnCancel {
			_ = w.leases.Release(lease)
		}
		return
	}
	res := ShardResult{Job: t.Job, Shard: t.Shard, Worker: w.cfg.ID, Epoch: lease.Epoch}
	if err != nil {
		res.Err = err.Error()
		w.cfg.Obs.Counter("fleet/shard-failures").Inc()
	} else {
		res.Report = report
		w.cfg.Obs.Counter("fleet/shards-done").Inc()
	}
	if werr := WriteShardResult(w.cfg.Dir, res); werr != nil {
		w.cfg.Obs.Counter("fleet/result-write-errors").Inc()
		return
	}
	_ = w.leases.Release(lease)
}

// executeShard runs the engine for one shard with panic isolation, resuming
// the shard's checkpoint journal (ours, or a dead predecessor's).
func (w *FleetWorker) executeShard(ctx context.Context, t ShardTask) (report *core.ShardReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			report = nil
			err = fmt.Errorf("serve: shard panicked: %v\n%s", r, debug.Stack())
		}
	}()
	req := t.Request
	prog, perr := exps.ProgramByName(req.Program)
	if perr != nil {
		return nil, perr
	}
	opts := req.options(0)
	opts.Workers = 1 // shards explore serially; fleet parallelism is across processes
	opts.Obs = w.cfg.Obs
	opts.Retry = w.cfg.Retry
	opts.Faults = w.cfg.Faults
	opts.Checkpoint = core.OpenCheckpoint(shardCheckpointPath(w.cfg.Dir, t.Job, t.Shard.Index))
	opts.Checkpoint.Every = 1 // a reclaim must find the frontier, not a stale batch
	rep, rerr := exps.RunOneShardContext(ctx, req.FS, prog, opts, req.h5Params(), exps.ConfigFor(req.FS), t.Shard)
	if rerr != nil {
		return nil, rerr
	}
	if n := opts.Checkpoint.Resumed(); n > 0 {
		w.cfg.Obs.Counter("fleet/resumed-verdicts").Add(int64(n))
	}
	return rep, nil
}

// FleetConfig arms the scheduler's coordinator role: explore jobs are
// partitioned into shards executed by external workers.
type FleetConfig struct {
	// Shards is the default partition width for explore jobs (a job may ask
	// for its own via JobRequest.Shards). Values < 2 mean the job runs
	// standalone in-process.
	Shards int
	// MaxShards caps any job's requested partition width (default 16).
	MaxShards int
	// Poll is the coordinator's result-poll cadence (default 250ms).
	Poll time.Duration
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.MaxShards <= 0 {
		c.MaxShards = 16
	}
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	return c
}

// effectiveShards resolves one job's partition width.
func (c FleetConfig) effectiveShards(req JobRequest) int {
	n := c.Shards
	if req.Shards > 0 {
		n = req.Shards
	}
	if n > c.MaxShards {
		n = c.MaxShards
	}
	return n
}

// executeFleet is the coordinator's explore path: write one task per shard,
// wait for worker results, merge. Fuzz jobs and width<2 partitions never
// reach here (execute falls back to the in-process engine).
func (s *Scheduler) executeFleet(ctx context.Context, job *Job, run *obs.Run, count int) (*core.Report, error) {
	req := job.Request
	prog, perr := exps.ProgramByName(req.Program)
	if perr != nil {
		return nil, perr
	}
	dir := s.store.Dir()
	run.Gauge("fleet/shards").Set(int64(count))
	for i := 0; i < count; i++ {
		// Tasks are idempotent per job ID: a coordinator resuming an
		// interrupted job rewrites identical tasks, and shards that already
		// have results are simply not re-claimed by workers.
		if err := WriteShardTask(dir, ShardTask{Job: job.ID, Shard: core.ShardSpec{Index: i, Count: count}, Request: req}); err != nil {
			return nil, fmt.Errorf("serve: writing shard task %d/%d: %w", i, count, err)
		}
	}
	s.obs.Counter("fleet/shards-dispatched").Add(int64(count))

	// Poll for results. Workers own all the retry machinery (lease reclaim,
	// checkpoint resume); the coordinator only waits — bounded by the job's
	// timeout like any other job.
	reports := make([]*core.ShardReport, count)
	have := make([]bool, count)
	pending := count
	tick := time.NewTicker(s.fleet.Poll)
	defer tick.Stop()
	for pending > 0 {
		for i := 0; i < count; i++ {
			if have[i] {
				continue
			}
			res, ok, err := ReadShardResult(dir, job.ID, i)
			if err != nil {
				run.Counter("fleet/result-read-errors").Inc()
				continue
			}
			if !ok {
				continue
			}
			if res.Err != "" {
				RemoveShardFiles(dir, job.ID, count)
				return nil, fmt.Errorf("serve: shard %d/%d failed on worker %s: %s", i, count, res.Worker, res.Err)
			}
			reports[i] = res.Report
			have[i] = true
			pending--
			run.Counter("fleet/shards-merged").Inc()
			run.Gauge("fleet/shards-pending").Set(int64(pending))
		}
		if pending == 0 {
			break
		}
		select {
		case <-ctx.Done():
			// Cancellation/timeout: leave tasks and results in place — a
			// resubmitted job (same ID) reuses finished shards and workers
			// resume the unfinished ones from their journals.
			return nil, ctx.Err()
		case <-tick.C:
		}
	}

	opts := req.options(s.cfg.MaxJobWorkers)
	opts.Obs = run
	opts.Retry = s.cfg.Retry
	opts.Faults = s.cfg.Faults
	if p := s.checkpointPath(job.ID); p != "" {
		opts.Checkpoint = core.OpenCheckpoint(p)
	}
	rep, err := exps.MergeOneShardsContext(ctx, req.FS, prog, opts, req.h5Params(), exps.ConfigFor(req.FS), reports)
	if err != nil {
		return nil, err
	}
	if opts.Checkpoint != nil {
		os.Remove(opts.Checkpoint.Path())
	}
	RemoveShardFiles(dir, job.ID, count)
	return rep, nil
}
