package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"paracrash/internal/statefs"
)

// Store indexes every job the daemon knows about. Every job — queued,
// running or terminal — is persisted to the results directory as one
// `job-<id>.json` per job, schema-versioned by JobVersion and written with
// the temp-file + rename + fsync discipline, so a restarted daemon both
// lists previously completed jobs and notices the ones an unclean death
// interrupted (Interrupted). An empty directory path keeps the store
// memory-only.
type Store struct {
	dir string

	mu    sync.RWMutex
	jobs  map[string]*Job
	order []string // submission order; restart-loaded jobs sort by CreatedAt first
}

// OpenStore opens (creating if needed) a store over dir and loads every
// persisted job record. Records with a different schema version or
// unparsable content — including the half-written file a crash mid-persist
// leaves behind when rename atomicity is lost — are skipped with an error
// list, never a failure: one corrupt record must not take the daemon down.
func OpenStore(dir string) (*Store, []error) {
	s := &Store{dir: dir, jobs: map[string]*Job{}}
	if dir == "" {
		return s, nil
	}
	var warns []error
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return s, []error{fmt.Errorf("serve: results dir: %w", err)}
	}
	paths, err := filepath.Glob(filepath.Join(dir, "job-*.json"))
	if err != nil {
		return s, []error{err}
	}
	var loaded []*Job
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			warns = append(warns, fmt.Errorf("serve: read %s: %w", p, err))
			continue
		}
		var j Job
		if err := json.Unmarshal(data, &j); err != nil {
			warns = append(warns, fmt.Errorf("serve: parse %s: %w", p, err))
			continue
		}
		if j.Version != JobVersion {
			warns = append(warns, fmt.Errorf("serve: %s has schema version %d, want %d", p, j.Version, JobVersion))
			continue
		}
		if j.ID == "" {
			warns = append(warns, fmt.Errorf("serve: %s has no job ID", p))
			continue
		}
		loaded = append(loaded, &j)
	}
	sort.Slice(loaded, func(a, b int) bool { return loaded[a].CreatedAt.Before(loaded[b].CreatedAt) })
	for _, j := range loaded {
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	return s, warns
}

// Interrupted returns the jobs a previous daemon left non-terminal (it died
// while they were queued or running), oldest first. The scheduler resubmits
// them on startup so their work resumes from any checkpoint journal.
func (s *Store) Interrupted() []Job {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Job
	for _, id := range s.order {
		if j := s.jobs[id]; !j.State.Terminal() {
			out = append(out, *j)
		}
	}
	return out
}

// Dir returns the results directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// Add registers a new job and persists its queued record (best-effort: the
// in-memory registration always applies; a persist failure only costs the
// job's restart durability).
func (s *Store) Add(j *Job) {
	s.mu.Lock()
	if _, ok := s.jobs[j.ID]; !ok {
		s.order = append(s.order, j.ID)
	}
	s.jobs[j.ID] = j
	cp := *j
	s.mu.Unlock()
	if s.dir != "" {
		_ = s.persist(&cp)
	}
}

// Get returns a snapshot copy of the job record. The copy shares the
// immutable result pointers (Report, Fuzz are written once, before the job
// turns terminal) but detaches the mutable scalar fields, so handlers can
// marshal it without holding the store lock.
func (s *Store) Get(id string) (Job, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns snapshot copies of every job in submission order.
func (s *Store) List() []Job {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Update applies fn to the job under the store lock and persists the new
// record (every state, so restarts see queued/running jobs as interrupted).
// The returned error is the persistence error (the in-memory update always
// applies).
func (s *Store) Update(id string, fn func(*Job)) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: update of unknown job %s", id)
	}
	fn(j)
	cp := *j
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	return s.persist(&cp)
}

// persist writes one job record through the statefs atomic discipline
// (temp + fsync + rename + directory fsync) — the discipline whose absence
// this project exists to detect, implemented exactly once in
// internal/statefs and crash-tested by `make selfcheck`.
func (s *Store) persist(j *Job) error {
	path := filepath.Join(s.dir, "job-"+sanitizeID(j.ID)+".json")
	if err := statefs.WriteJSON(siteJobRecord, path, j); err != nil {
		return fmt.Errorf("serve: persist job %s: %w", j.ID, err)
	}
	return nil
}

// sanitizeID keeps persisted file names flat even if an ID were ever
// attacker-shaped; IDs the scheduler mints are already [a-z0-9-].
func sanitizeID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '_'
		}
	}, id)
}
