package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"paracrash/internal/obs"
	core "paracrash/internal/paracrash"
)

func TestTenantRegistryValidation(t *testing.T) {
	good := []Tenant{{Name: "acme", Key: "acme-key-1"}, {Name: "rival", Key: "rival-key-1", Priority: PriorityLow}}
	if _, err := NewTenants(good); err != nil {
		t.Fatal(err)
	}
	bad := [][]Tenant{
		nil, // empty
		{{Name: "", Key: "some-key-1"}},
		{{Name: "a", Key: "short"}},
		{{Name: "a", Key: "aaaaaaaa"}, {Name: "a", Key: "bbbbbbbb"}}, // dup name
		{{Name: "a", Key: "aaaaaaaa"}, {Name: "b", Key: "aaaaaaaa"}}, // dup key
		{{Name: "a", Key: "aaaaaaaa", Priority: "urgent"}},           // bad class
		{{Name: "a", Key: "aaaaaaaa", MaxQueued: -1}},                // bad quota
		{{Name: "a", Key: "aaaaaaaa", RatePerSec: -0.5}},             // bad rate
	}
	for i, list := range bad {
		if _, err := NewTenants(list); err == nil {
			t.Errorf("case %d: invalid tenant list accepted", i)
		}
	}
}

func TestTenantsFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	body := `{"version":1,"tenants":[{"name":"acme","key":"acme-key-1","priority":"high","max_queued":4,"rate_per_sec":2}]}`
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	reg, err := LoadTenants(path)
	if err != nil {
		t.Fatal(err)
	}
	tn, ok := reg.ByName("acme")
	if !ok || tn.Priority != PriorityHigh || tn.MaxQueued != 4 {
		t.Fatalf("loaded tenant: %+v ok=%v", tn, ok)
	}

	// Version skew and unknown fields are refused, not silently accepted.
	os.WriteFile(path, []byte(`{"version":2,"tenants":[]}`), 0o600)
	if _, err := LoadTenants(path); err == nil {
		t.Fatal("version skew accepted")
	}
	os.WriteFile(path, []byte(`{"version":1,"tenants":[{"name":"a","key":"aaaaaaaa","max_jobs":3}]}`), 0o600)
	if _, err := LoadTenants(path); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestTenantAuthenticate(t *testing.T) {
	reg, err := NewTenants([]Tenant{{Name: "acme", Key: "acme-key-1"}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(hdr, val string) *http.Request {
		r := httptest.NewRequest("GET", "/v1/jobs", nil)
		if hdr != "" {
			r.Header.Set(hdr, val)
		}
		return r
	}
	if tn, err := reg.Authenticate(mk("Authorization", "Bearer acme-key-1")); err != nil || tn.Name != "acme" {
		t.Fatalf("bearer auth: %v %+v", err, tn)
	}
	if tn, err := reg.Authenticate(mk("X-API-Key", "acme-key-1")); err != nil || tn.Name != "acme" {
		t.Fatalf("header auth: %v %+v", err, tn)
	}
	for _, r := range []*http.Request{mk("", ""), mk("X-API-Key", "wrong-key-1"), mk("Authorization", "Basic acme-key-1")} {
		if _, err := reg.Authenticate(r); !errors.Is(err, ErrUnauthorized) {
			t.Fatalf("bad auth accepted: %v", err)
		}
	}
}

func TestTenantRateLimit(t *testing.T) {
	reg, err := NewTenants([]Tenant{{Name: "acme", Key: "acme-key-1", RatePerSec: 1, Burst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	reg.now = func() time.Time { return now }

	if !reg.Allow("acme") || !reg.Allow("acme") {
		t.Fatal("burst of 2 not honoured")
	}
	if reg.Allow("acme") {
		t.Fatal("third immediate submission passed the bucket")
	}
	// One second refills one token.
	now = now.Add(time.Second)
	if !reg.Allow("acme") {
		t.Fatal("refill did not restore a token")
	}
	if reg.Allow("acme") {
		t.Fatal("bucket over-refilled")
	}
	// Unknown and unlimited tenants always pass.
	if !reg.Allow("nobody") {
		t.Fatal("unknown tenant rate-limited")
	}
}

func TestFairQueueRoundRobinAndPriority(t *testing.T) {
	q := newFairQueue()
	push := func(id, tenant string, prio int) {
		q.push(&queuedJob{job: &Job{ID: id}, tenant: tenant}, prio)
	}
	// Three tenants in the normal class, one of them chatty; plus one low
	// and one high job arriving last.
	push("a1", "a", 1)
	push("a2", "a", 1)
	push("a3", "a", 1)
	push("b1", "b", 1)
	push("c1", "c", 1)
	push("l1", "low", 2)
	push("h1", "hi", 0)

	var got []string
	for i := 0; i < 7; i++ {
		qj := q.pop()
		got = append(got, qj.job.ID)
		q.release(qj.tenant)
	}
	want := "h1 a1 b1 c1 a2 a3 l1"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("dispatch order %q, want %q", s, want)
	}
}

func TestFairQueueRunningCap(t *testing.T) {
	q := newFairQueue()
	q.push(&queuedJob{job: &Job{ID: "a1"}, tenant: "a", maxRun: 1}, 1)
	q.push(&queuedJob{job: &Job{ID: "a2"}, tenant: "a", maxRun: 1}, 1)
	q.push(&queuedJob{job: &Job{ID: "b1"}, tenant: "b"}, 1)

	if qj := q.pop(); qj.job.ID != "a1" {
		t.Fatalf("first pop: %s", qj.job.ID)
	}
	// Tenant a is at its cap: the queue passes over a2 and serves b1.
	if qj := q.pop(); qj.job.ID != "b1" {
		t.Fatalf("capped tenant not skipped: got %s", qj.job.ID)
	}
	// a2 is blocked until a1's slot frees.
	unblocked := make(chan string, 1)
	go func() {
		qj := q.pop()
		unblocked <- qj.job.ID
	}()
	select {
	case id := <-unblocked:
		t.Fatalf("pop returned %s while tenant a was at its cap", id)
	case <-time.After(50 * time.Millisecond):
	}
	q.release("a")
	select {
	case id := <-unblocked:
		if id != "a2" {
			t.Fatalf("after release got %s, want a2", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release did not unblock the capped tenant")
	}
}

func TestFairQueueCloseDrains(t *testing.T) {
	q := newFairQueue()
	q.push(&queuedJob{job: &Job{ID: "j1"}, tenant: ""}, 1)
	q.push(&queuedJob{job: &Job{ID: "j2"}, tenant: ""}, 1)
	q.close()
	if qj := q.pop(); qj == nil || qj.job.ID != "j1" {
		t.Fatalf("backlog lost on close: %+v", qj)
	}
	if qj := q.pop(); qj == nil || qj.job.ID != "j2" {
		t.Fatalf("backlog lost on close: %+v", qj)
	}
	if qj := q.pop(); qj != nil {
		t.Fatalf("pop after drain: %+v", qj)
	}
}

// tenantScheduler builds a gated scheduler with a tenant registry attached.
func tenantScheduler(t *testing.T, cfg SchedulerConfig, tenants []Tenant) (*Scheduler, *Store, chan struct{}, *Tenants) {
	t.Helper()
	reg, err := NewTenants(tenants)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tenants = reg
	st, _ := OpenStore("")
	s, gate := gatedScheduler(cfg, st)
	return s, st, gate, reg
}

func TestSchedulerTenantAdmission(t *testing.T) {
	s, st, gate, reg := tenantScheduler(t, SchedulerConfig{MaxConcurrent: 1, QueueDepth: 16}, []Tenant{
		{Name: "acme", Key: "acme-key-1", MaxQueued: 1},
		{Name: "slow", Key: "slow-key-1", RatePerSec: 0.001, Burst: 1},
	})
	defer func() { close(gate); s.Drain(context.Background()) }()
	acme, _ := reg.ByName("acme")
	slow, _ := reg.ByName("slow")

	// Occupy the single worker so later submissions stay queued.
	filler, err := s.Submit(JobRequest{Program: "CR"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st, filler.ID, JobRunning)

	j1, err := s.SubmitTenant(JobRequest{Program: "CR"}, acme)
	if err != nil {
		t.Fatal(err)
	}
	if j1.Tenant != "acme" {
		t.Fatalf("job not stamped with tenant: %+v", j1)
	}
	if got, _ := st.Get(j1.ID); got.Tenant != "acme" {
		t.Fatalf("store record missing tenant: %+v", got)
	}
	// acme is at MaxQueued=1 now.
	if _, err := s.SubmitTenant(JobRequest{Program: "CR"}, acme); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("quota: got %v", err)
	}
	// slow's bucket holds one token; the second submission is rate-limited.
	if _, err := s.SubmitTenant(JobRequest{Program: "CR"}, slow); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitTenant(JobRequest{Program: "CR"}, slow); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("rate limit: got %v", err)
	}
	if s.QueuedFor("acme") != 1 || s.QueuedFor("slow") != 1 {
		t.Fatalf("queue usage: acme=%d slow=%d", s.QueuedFor("acme"), s.QueuedFor("slow"))
	}
}

// TestSchedulerPriorityDispatch: with one worker busy, a high-priority
// tenant's job queued after a low-priority tenant's job still runs first.
func TestSchedulerPriorityDispatch(t *testing.T) {
	reg, err := NewTenants([]Tenant{
		{Name: "batch", Key: "batch-key-1", Priority: PriorityLow},
		{Name: "urgent", Key: "urgent-key-1", Priority: PriorityHigh},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := OpenStore("")
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 1, Tenants: reg}, st, nil)
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	s.executor = func(ctx context.Context, job *Job, run *obs.Run) (*core.Report, *FuzzResult, error) {
		mu.Lock()
		order = append(order, job.Tenant)
		mu.Unlock()
		select {
		case <-gate:
			return &core.Report{}, nil, nil
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	s.Start()

	batch, _ := reg.ByName("batch")
	urgent, _ := reg.ByName("urgent")
	filler, err := s.Submit(JobRequest{Program: "CR"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st, filler.ID, JobRunning)
	lo, err := s.SubmitTenant(JobRequest{Program: "CR"}, batch)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := s.SubmitTenant(JobRequest{Program: "CR"}, urgent)
	if err != nil {
		t.Fatal(err)
	}

	gate <- struct{}{} // finish the filler; the worker picks the next job
	waitState(t, st, hi.ID, JobRunning)
	gate <- struct{}{}
	waitState(t, st, lo.ID, JobRunning)
	gate <- struct{}{}
	waitState(t, st, lo.ID, JobDone)

	mu.Lock()
	defer mu.Unlock()
	want := []string{"", "urgent", "batch"}
	if len(order) != 3 || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

func TestHTTPTenantAuthAndScoping(t *testing.T) {
	s, st, gate, _ := tenantScheduler(t, SchedulerConfig{MaxConcurrent: 2, QueueDepth: 8}, []Tenant{
		{Name: "acme", Key: "acme-key-1", Priority: PriorityHigh, MaxQueued: 4},
		{Name: "rival", Key: "rival-key-1"},
	})
	close(gate) // jobs finish immediately
	defer s.Drain(context.Background())
	srv := httptest.NewServer(NewServer(s, st, nil))
	defer srv.Close()

	do := func(method, path, key, body string) (*http.Response, []byte) {
		t.Helper()
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req, _ := http.NewRequest(method, srv.URL+path, rd)
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}

	// No key / wrong key: 401 on every /v1 route; /healthz stays open.
	for _, path := range []string{"/v1/jobs", "/v1/tenant"} {
		if resp, _ := do("GET", path, "", ""); resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("GET %s without key: %d", path, resp.StatusCode)
		}
		if resp, _ := do("GET", path, "wrong-key-1", ""); resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("GET %s wrong key: %d", path, resp.StatusCode)
		}
	}
	if resp, _ := do("GET", "/healthz", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz requires auth: %d", resp.StatusCode)
	}
	if resp, _ := do("GET", "/metrics", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics requires auth: %d", resp.StatusCode)
	}

	// acme submits a job.
	resp, body := do("POST", "/v1/jobs", "acme-key-1", `{"program":"CR","fs":"ext4"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.Tenant != "acme" {
		t.Fatalf("submitted job tenant %q", job.Tenant)
	}

	// rival sees neither the job record, its events, nor its list entry.
	if resp, _ := do("GET", "/v1/jobs/"+job.ID, "rival-key-1", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant get: %d", resp.StatusCode)
	}
	if resp, _ := do("GET", "/v1/jobs/"+job.ID+"/events", "rival-key-1", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant events: %d", resp.StatusCode)
	}
	_, body = do("GET", "/v1/jobs", "rival-key-1", "")
	var list []JobSummary
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("rival sees %d jobs", len(list))
	}

	// acme sees its own job and its tenant status.
	if resp, _ := do("GET", "/v1/jobs/"+job.ID, "acme-key-1", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("own get: %d", resp.StatusCode)
	}
	_, body = do("GET", "/v1/tenant", "acme-key-1", "")
	var ts tenantStatus
	if err := json.Unmarshal(body, &ts); err != nil {
		t.Fatal(err)
	}
	if ts.Open || ts.Name != "acme" || ts.Priority != PriorityHigh || ts.MaxQueued != 4 {
		t.Fatalf("tenant status: %+v", ts)
	}
}

func TestHTTPTenantOpenMode(t *testing.T) {
	st, _ := OpenStore("")
	s, gate := gatedScheduler(SchedulerConfig{MaxConcurrent: 1}, st)
	close(gate)
	defer s.Drain(context.Background())
	srv := httptest.NewServer(NewServer(s, st, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/tenant")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ts tenantStatus
	if err := json.NewDecoder(resp.Body).Decode(&ts); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !ts.Open {
		t.Fatalf("open-mode tenant status: %d %+v", resp.StatusCode, ts)
	}
}
