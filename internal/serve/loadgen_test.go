package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// TestLoadGen drives the load generator against a live multi-tenant server
// with tight admission limits: every job must eventually complete (429
// pushback is retried, not failed) and the report must account for all of
// them.
func TestLoadGen(t *testing.T) {
	tenants, err := NewTenants([]Tenant{
		{Name: "alice", Key: "alice-key-123", Priority: PriorityHigh, MaxQueued: 2},
		{Name: "bob", Key: "bob-key-45678", MaxQueued: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, warns := OpenStore("")
	if len(warns) > 0 {
		t.Fatal(warns[0])
	}
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 2, QueueDepth: 4, Tenants: tenants}, st, nil)
	s.Start()
	defer s.Drain(context.Background())
	srv := httptest.NewServer(NewServer(s, st, nil))
	defer srv.Close()

	rep, err := RunLoad(context.Background(), LoadGenConfig{
		BaseURL:      srv.URL,
		Keys:         []string{"alice-key-123", "bob-key-45678"},
		Jobs:         12,
		Concurrency:  6,
		Request:      JobRequest{Kind: JobKindExplore, FS: "ext4", Program: "CR", Mode: "pruning"},
		PollInterval: 5 * time.Millisecond,
		Timeout:      time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 12 || rep.Failed != 0 || rep.Errors != 0 {
		t.Fatalf("load run did not complete cleanly: %+v", rep)
	}
	if rep.JobsPerSec <= 0 || rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("implausible throughput/latency stats: %+v", rep)
	}
}

// TestLoadGenValidation rejects unusable configs up front.
func TestLoadGenValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadGenConfig{BaseURL: "http://x", Jobs: 0}); err == nil {
		t.Error("Jobs=0 accepted")
	}
	if _, err := RunLoad(context.Background(), LoadGenConfig{Jobs: 1}); err == nil {
		t.Error("empty BaseURL accepted")
	}
}
