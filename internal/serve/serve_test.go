package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"paracrash/internal/obs"
	core "paracrash/internal/paracrash"
)

// waitState polls the store until the job reaches want (or a terminal
// state, or the deadline).
func waitState(t *testing.T, st *Store, id string, want JobState) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := st.Get(id)
		if !ok {
			t.Fatalf("job %s vanished from store", id)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %s reached %s, want %s (error: %s)", id, j.State, want, j.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Job{}
}

// gatedScheduler builds a scheduler whose jobs block until the returned
// gate closes, so tests control exactly when jobs finish.
func gatedScheduler(cfg SchedulerConfig, st *Store) (*Scheduler, chan struct{}) {
	s := NewScheduler(cfg, st, nil)
	gate := make(chan struct{})
	s.executor = func(ctx context.Context, job *Job, run *obs.Run) (*core.Report, *FuzzResult, error) {
		select {
		case <-gate:
			return &core.Report{Program: job.Request.Program, FS: job.Request.FS}, nil, nil
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	s.Start()
	return s, gate
}

func TestSubmitValidation(t *testing.T) {
	st, _ := OpenStore("")
	s := NewScheduler(SchedulerConfig{}, st, nil)
	s.Start()
	defer s.Drain(context.Background())

	for _, req := range []JobRequest{
		{Kind: "bogus"},
		{FS: "zfs"},
		{Program: "no-such-program"},
		{Mode: "exhaustive"},
		{PFSModel: "eventual"},
		{K: -1},
		{Workers: -2},
		{TimeoutSeconds: -1},
		{Kind: JobKindFuzz, Fuzz: &FuzzRequest{Backends: []string{"zfs"}}},
	} {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid request", req)
		}
	}
	if len(st.List()) != 0 {
		t.Fatalf("invalid submissions reached the store: %d jobs", len(st.List()))
	}
}

// TestConcurrentJobsAndBackpressure runs four jobs at once and verifies the
// queue-depth limit surfaces as ErrQueueFull while they hold the slots.
func TestConcurrentJobsAndBackpressure(t *testing.T) {
	st, _ := OpenStore("")
	s, gate := gatedScheduler(SchedulerConfig{MaxConcurrent: 4, QueueDepth: 2}, st)

	// Submit one at a time, waiting for a worker to claim each: admission
	// counts queue slots only, so racing 4 submissions against dispatch
	// could trip the depth-2 queue before the slots fill.
	for i := 0; i < 4; i++ {
		j, err := s.Submit(JobRequest{})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, st, j.ID, JobRunning)
	}

	// Slots are full; the queue absorbs exactly QueueDepth more.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobRequest{}); err != nil {
			t.Fatalf("queued submission %d: %v", i, err)
		}
	}
	if _, err := s.Submit(JobRequest{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submission over queue depth: err = %v, want ErrQueueFull", err)
	}

	close(gate)
	for _, j := range st.List() {
		j := waitState(t, st, j.ID, JobDone)
		if j.Report == nil {
			t.Errorf("job %s done without a report", j.ID)
		}
	}
}

// TestDrainCompletesInFlight verifies graceful shutdown: draining rejects
// new submissions but lets running jobs finish.
func TestDrainCompletesInFlight(t *testing.T) {
	st, _ := OpenStore("")
	s, gate := gatedScheduler(SchedulerConfig{MaxConcurrent: 1}, st)

	j, err := s.Submit(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st, j.ID, JobRunning)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Drain flips the draining flag before waiting; poll until it shows.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(JobRequest{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}

	close(gate) // let the in-flight job finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if j := waitState(t, st, j.ID, JobDone); j.Report == nil {
		t.Fatalf("drained job lost its report")
	}
}

// TestDrainDeadlineCancels verifies the forced path: when the drain
// context expires, in-flight jobs are cancelled and recorded as such.
func TestDrainDeadlineCancels(t *testing.T) {
	st, _ := OpenStore("")
	s, _ := gatedScheduler(SchedulerConfig{MaxConcurrent: 1}, st)

	j, err := s.Submit(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st, j.ID, JobRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain: err = %v, want DeadlineExceeded", err)
	}
	got, _ := st.Get(j.ID)
	if got.State != JobCanceled {
		t.Fatalf("job state = %s, want canceled", got.State)
	}
}

// TestJobTimeoutCancelsExploration bounds a real brute-force exploration
// with a tiny per-job timeout and verifies the job lands in canceled
// without leaking worker goroutines.
func TestJobTimeoutCancelsExploration(t *testing.T) {
	before := runtime.NumGoroutine()
	st, _ := OpenStore("")
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 1}, st, nil)
	s.Start()

	j, err := s.Submit(JobRequest{
		Mode: "brute", K: 2, Workers: 4,
		TimeoutSeconds: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	var got Job
	for time.Now().Before(deadline) {
		got, _ = st.Get(j.ID)
		if got.State.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// done is possible if the run beat the 20ms clock; anything else must
	// be the timeout.
	if got.State != JobCanceled && got.State != JobDone {
		t.Fatalf("job state = %s (error %q), want canceled or done", got.State, got.Error)
	}
	if got.State == JobCanceled && !strings.Contains(got.Error, "deadline") {
		t.Errorf("canceled job error = %q, want a deadline error", got.Error)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	settle := time.Now().Add(5 * time.Second)
	for time.Now().Before(settle) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestPanicIsolation verifies a panicking job becomes a failed record and
// the scheduler keeps serving.
func TestPanicIsolation(t *testing.T) {
	st, _ := OpenStore("")
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 1}, st, nil)
	boom := true
	s.executor = func(ctx context.Context, job *Job, run *obs.Run) (*core.Report, *FuzzResult, error) {
		if boom {
			boom = false
			panic("engine blew up")
		}
		return &core.Report{}, nil, nil
	}
	s.Start()
	defer s.Drain(context.Background())

	j1, err := s.Submit(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := st.Get(j1.ID)
		if got.State.Terminal() {
			if got.State != JobFailed || !strings.Contains(got.Error, "panicked") {
				t.Fatalf("job state = %s error = %q, want failed/panicked", got.State, got.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("panicking job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	j2, err := s.Submit(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st, j2.ID, JobDone)
}

// TestStoreRestartRoundTrip persists completed jobs and verifies a fresh
// store over the same directory lists them.
func TestStoreRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, warns := OpenStore(dir)
	if len(warns) != 0 {
		t.Fatalf("fresh store warnings: %v", warns)
	}
	s, gate := gatedScheduler(SchedulerConfig{MaxConcurrent: 2}, st)
	close(gate)

	j1, err := s.Submit(JobRequest{Program: "WAL", FS: "lustre"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(JobRequest{Program: "CR", FS: "gpfs"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st, j1.ID, JobDone)
	waitState(t, st, j2.ID, JobDone)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new store over the same directory.
	st2, warns := OpenStore(dir)
	if len(warns) != 0 {
		t.Fatalf("reopen warnings: %v", warns)
	}
	jobs := st2.List()
	if len(jobs) != 2 {
		t.Fatalf("reloaded %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if j.State != JobDone || j.Report == nil || j.Version != JobVersion {
			t.Errorf("reloaded job %s: state=%s report=%v version=%d", j.ID, j.State, j.Report != nil, j.Version)
		}
	}
	got, ok := st2.Get(j1.ID)
	if !ok || got.Request.Program != "WAL" || got.Request.FS != "lustre" {
		t.Fatalf("job %s round-trip mismatch: %+v", j1.ID, got.Request)
	}
}

// TestStoreSkipsCorruptRecords verifies one bad file cannot poison a
// restart.
func TestStoreSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	s, gate := gatedScheduler(SchedulerConfig{}, st)
	close(gate)
	j, err := s.Submit(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st, j.ID, JobDone)
	s.Drain(context.Background())

	writeFile(t, dir+"/job-corrupt.json", "{not json")
	writeFile(t, dir+"/job-oldversion.json", `{"version": 99, "id": "j-old", "state": "done"}`)

	st2, warns := OpenStore(dir)
	if len(warns) != 2 {
		t.Fatalf("warnings = %v, want 2", warns)
	}
	if len(st2.List()) != 1 {
		t.Fatalf("reloaded %d jobs, want 1 (corrupt records skipped)", len(st2.List()))
	}
}

// TestHTTPEndToEnd drives the full API over HTTP: submit, list, get,
// stream events, health, and the error statuses.
func TestHTTPEndToEnd(t *testing.T) {
	st, _ := OpenStore("")
	run := obs.NewRun()
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 4, QueueDepth: 8, ProgressInterval: 5 * time.Millisecond}, st, run)
	s.Start()
	defer s.Drain(context.Background())
	srv := httptest.NewServer(NewServer(s, st, run))
	defer srv.Close()

	// Submit four real (fast) exploration jobs concurrently.
	var ids []string
	for i := 0; i < 4; i++ {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"fs":"beegfs","program":"ARVR","mode":"pruning"}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %s", resp.Status)
		}
		var j Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if j.State != JobQueued || j.ID == "" {
			t.Fatalf("submitted job = %+v", j)
		}
		ids = append(ids, j.ID)
	}

	// Stream one job's events to completion: NDJSON lines ending in the
	// final progress event.
	eresp, err := http.Get(srv.URL + "/v1/jobs/" + ids[0] + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content-type = %q", ct)
	}
	var events []obs.Event
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	eresp.Body.Close()
	if len(events) == 0 || !events[len(events)-1].Final {
		t.Fatalf("event stream = %d events, final=%v; want >=1 ending final", len(events), len(events) > 0 && events[len(events)-1].Final)
	}

	// All four jobs finish with reports.
	for _, id := range ids {
		j := waitState(t, st, id, JobDone)
		if j.Report == nil || j.Report.Program != "ARVR" {
			t.Fatalf("job %s report = %+v", id, j.Report)
		}
	}

	// GET /v1/jobs lists all four.
	lresp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobSummary
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list) != 4 {
		t.Fatalf("list = %d jobs, want 4", len(list))
	}

	// GET /v1/jobs/{id} returns the full record.
	gresp, err := http.Get(srv.URL + "/v1/jobs/" + ids[1])
	if err != nil {
		t.Fatal(err)
	}
	var got Job
	if err := json.NewDecoder(gresp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if got.ID != ids[1] || got.State != JobDone {
		t.Fatalf("get job = %+v", got.Summary())
	}

	// healthz.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Done   int    `json:"done"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || health.Done != 4 {
		t.Fatalf("health = %+v", health)
	}

	// Error statuses: unknown job, invalid body, unknown field.
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/v1/jobs/j-doesnotexist", "", http.StatusNotFound},
		{"GET", "/v1/jobs/j-doesnotexist/events", "", http.StatusNotFound},
		{"POST", "/v1/jobs", "{", http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"filesystem":"beegfs"}`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"fs":"zfs"}`, http.StatusBadRequest},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestHTTPBackpressure verifies the 429 + Retry-After contract over HTTP.
func TestHTTPBackpressure(t *testing.T) {
	st, _ := OpenStore("")
	s, gate := gatedScheduler(SchedulerConfig{MaxConcurrent: 1, QueueDepth: 1}, st)
	defer func() { close(gate); s.Drain(context.Background()) }()
	srv := httptest.NewServer(NewServer(s, st, nil))
	defer srv.Close()

	submit := func() *http.Response {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	var j Job
	{
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
	}
	waitState(t, st, j.ID, JobRunning) // slot taken
	if resp := submit(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit status = %d", resp.StatusCode) // queue takes one
	}
	resp := submit()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
