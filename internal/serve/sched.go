package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/faultinject"
	"paracrash/internal/fuzzcamp"
	"paracrash/internal/obs"
	core "paracrash/internal/paracrash"
)

// Admission errors, mapped to HTTP statuses by the server (429 and 503).
var (
	// ErrQueueFull signals backpressure: the FIFO queue is at capacity.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining signals shutdown: the scheduler no longer accepts jobs.
	ErrDraining = errors.New("serve: scheduler is draining")
)

// SchedulerConfig bounds the scheduler. The zero value is usable: 2
// concurrent jobs, a 16-deep queue, no default timeout, uncapped per-job
// workers.
type SchedulerConfig struct {
	// MaxConcurrent is the number of jobs running at once (default 2).
	MaxConcurrent int
	// QueueDepth bounds the FIFO queue; a full queue rejects submissions
	// with ErrQueueFull (default 16).
	QueueDepth int
	// DefaultTimeout applies to jobs that do not request one (0 = none).
	DefaultTimeout time.Duration
	// MaxTimeout caps every job's timeout, requested or defaulted
	// (0 = no cap).
	MaxTimeout time.Duration
	// MaxJobWorkers caps Options.Workers per job so one job cannot claim
	// every CPU (0 = no cap).
	MaxJobWorkers int
	// ProgressInterval is the per-job obs progress cadence feeding the
	// events stream (default 250ms).
	ProgressInterval time.Duration
	// EventHistory is the per-job event ring size (default 256).
	EventHistory int
	// Retry bounds per-crash-state fault recovery inside every explore job
	// (the zero value is the engine's default policy).
	Retry core.RetryPolicy
	// Faults, when non-nil, arms the deterministic fault plane on every
	// explore job — the daemon-level chaos knob the robustness tests drive.
	Faults *faultinject.Plan
	// Fleet, when non-nil, makes this scheduler a fleet coordinator: explore
	// jobs whose effective partition width is >= 2 are sharded across worker
	// processes through the shared results directory (see shard.go). Requires
	// a persistent store (fleet records are files).
	Fleet *FleetConfig
	// Tenants, when non-nil, turns on multi-tenancy: the server requires an
	// API key on /v1 routes, submissions pass per-tenant rate limits and
	// queued-job quotas, and the queue becomes priority-classed and
	// tenant-fair (see tenant.go and queue.go).
	Tenants *Tenants
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 16
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 250 * time.Millisecond
	}
	if c.EventHistory < 1 {
		c.EventHistory = 256
	}
	return c
}

// jobRun is the live half of a job: its obs run, event stream and cancel
// handle. Entries are retained after completion so the events endpoint can
// replay a finished job's stream (restart-loaded jobs have none).
type jobRun struct {
	run    *obs.Run
	sink   *obs.StreamSink
	cancel context.CancelFunc
}

// Scheduler owns the job queue and the worker pool.
type Scheduler struct {
	cfg    SchedulerConfig
	store  *Store
	obs    *obs.Run    // daemon-level run (queue gauges, job counters)
	router *obs.Router // telemetry router: daemon run + live job runs
	fleet  FleetConfig // resolved coordinator knobs (zero when not a coordinator)

	fq *fairQueue
	wg sync.WaitGroup

	mu       sync.Mutex
	draining bool
	runs     map[string]*jobRun

	// executor runs one job's payload; tests substitute it to control job
	// duration and failure modes without spinning real explorations. It
	// receives the whole job (not just the request) so the real executor can
	// derive the job's checkpoint-journal path from its ID.
	executor func(ctx context.Context, job *Job, run *obs.Run) (*core.Report, *FuzzResult, error)

	ctrSubmitted *obs.Counter
	ctrRejected  *obs.Counter
	ctrDone      *obs.Counter
	ctrFailed    *obs.Counter
	ctrCanceled  *obs.Counter
	gaugeQueued  *obs.Gauge
	gaugeRunning *obs.Gauge
}

// NewScheduler builds a scheduler over the store; run (nilable) receives
// the daemon-level metrics. Call Start to launch the worker pool.
//
// The scheduler also owns the daemon's telemetry router (see Router): the
// daemon run is its process-level collector, every live job's run is
// attached under the job ID for the duration of the job, and a finished
// job's counters fold into the fleet totals on detach — so the /metrics
// exposition carries per-job series for running jobs and monotonic
// fleet-level rollups across completions.
func NewScheduler(cfg SchedulerConfig, store *Store, run *obs.Run) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:    cfg,
		store:  store,
		obs:    run,
		router: obs.NewRouter(),
		fq:     newFairQueue(),
		runs:   map[string]*jobRun{},

		ctrSubmitted: run.Counter("jobs/submitted"),
		ctrRejected:  run.Counter("jobs/rejected"),
		ctrDone:      run.Counter("jobs/done"),
		ctrFailed:    run.Counter("jobs/failed"),
		ctrCanceled:  run.Counter("jobs/canceled"),
		gaugeQueued:  run.Gauge("jobs/queued"),
		gaugeRunning: run.Gauge("jobs/running"),
	}
	if cfg.Fleet != nil {
		s.fleet = cfg.Fleet.withDefaults()
	}
	s.router.Attach("", run)
	s.executor = s.execute
	return s
}

// fleetEnabled reports whether this scheduler coordinates a worker fleet
// (configured for it and backed by a persistent store to exchange records).
func (s *Scheduler) fleetEnabled() bool {
	return s.cfg.Fleet != nil && s.store.Dir() != ""
}

// Tenants returns the tenant registry (nil in open mode). The server uses
// it to authenticate /v1 requests.
func (s *Scheduler) Tenants() *Tenants {
	return s.cfg.Tenants
}

// QueuedFor reports how many of the tenant's jobs are queued ("" is the
// open-mode default tenant).
func (s *Scheduler) QueuedFor(tenant string) int { return s.fq.queuedFor(tenant) }

// RunningFor reports how many of the tenant's jobs are running ("" is the
// open-mode default tenant).
func (s *Scheduler) RunningFor(tenant string) int { return s.fq.runningFor(tenant) }

// tenantOf resolves a persisted job's tenant name against the current
// registry; a job from an open-mode era (or a since-removed tenant) falls
// back to default scheduling.
func (s *Scheduler) tenantOf(name string) (*Tenant, bool) {
	if name == "" || s.cfg.Tenants == nil {
		return nil, false
	}
	return s.cfg.Tenants.ByName(name)
}

// Router returns the scheduler's telemetry router. The server mounts its
// Prometheus handler at /metrics; the daemon attaches push/file sinks and
// starts the sampling loop when asked to.
func (s *Scheduler) Router() *obs.Router {
	return s.router
}

// Start launches the worker pool.
func (s *Scheduler) Start() {
	for i := 0; i < s.cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				qj := s.fq.pop()
				if qj == nil {
					return
				}
				s.gaugeQueued.Add(-1)
				s.runJob(qj.job)
				s.fq.release(qj.tenant)
			}
		}()
	}
}

// Submit validates, enqueues and registers a job for the open-mode default
// tenant. ErrQueueFull and ErrDraining are admission rejections; other
// errors are request errors.
func (s *Scheduler) Submit(req JobRequest) (Job, error) {
	return s.SubmitTenant(req, nil)
}

// SubmitTenant is Submit on behalf of a tenant (nil = the open-mode
// default): the submission additionally passes the tenant's token-bucket
// rate limit (ErrRateLimited) and queued-job quota (ErrQuotaExceeded), and
// the job queues in the tenant's priority class.
func (s *Scheduler) SubmitTenant(req JobRequest, tn *Tenant) (Job, error) {
	if err := req.Normalize(); err != nil {
		return Job{}, err
	}
	job := &Job{
		Version:   JobVersion,
		ID:        newJobID(),
		State:     JobQueued,
		Request:   req,
		CreatedAt: time.Now().UTC(),
	}
	name, prio, maxRun := "", 1, 0
	if tn != nil {
		job.Tenant = tn.Name
		name = tn.Name
		prio, _ = priorityIndex(tn.Priority) // validated at registry build
		maxRun = tn.MaxRunning
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.ctrRejected.Inc()
		return Job{}, ErrDraining
	}
	// Admission order: the tenant's own limits first (rate, then quota), the
	// shared queue depth last — a tenant over its own budget is told so even
	// when the global queue also happens to be full.
	if tn != nil && s.cfg.Tenants != nil && !s.cfg.Tenants.Allow(tn.Name) {
		s.mu.Unlock()
		s.ctrRejected.Inc()
		s.obs.Counter("tenant/" + tn.Name + "/rate-limited").Inc()
		return Job{}, ErrRateLimited
	}
	if tn != nil && tn.MaxQueued > 0 && s.fq.queuedFor(tn.Name) >= tn.MaxQueued {
		s.mu.Unlock()
		s.ctrRejected.Inc()
		s.obs.Counter("tenant/" + tn.Name + "/quota-rejected").Inc()
		return Job{}, ErrQuotaExceeded
	}
	// Every push happens under s.mu and workers only drain the queue, so
	// this depth check bounds the queue exactly.
	if s.fq.len() >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.ctrRejected.Inc()
		return Job{}, ErrQueueFull
	}
	// Register the live half and the store record before the job becomes
	// visible to workers: a worker that dequeues it immediately must find
	// both, and the events endpoint can subscribe the instant Submit
	// returns. Snapshot the record now — once enqueued, workers own it.
	jr := &jobRun{run: obs.NewRun(), sink: obs.NewStreamSink(s.cfg.EventHistory)}
	jr.run.AddSink(jr.sink)
	s.runs[job.ID] = jr
	s.store.Add(job)
	snap := *job
	s.gaugeQueued.Add(1)
	s.fq.push(&queuedJob{job: job, tenant: name, maxRun: maxRun}, prio)
	s.mu.Unlock()

	s.router.Attach(job.ID, jr.run)
	s.ctrSubmitted.Inc()
	if tn != nil {
		s.obs.Counter("tenant/" + tn.Name + "/submitted").Inc()
	}
	return snap, nil
}

// Events returns the job's event stream sink (nil for unknown or
// restart-loaded jobs, which have no live stream).
func (s *Scheduler) Events(id string) *obs.StreamSink {
	s.mu.Lock()
	defer s.mu.Unlock()
	if jr, ok := s.runs[id]; ok {
		return jr.sink
	}
	return nil
}

// Draining reports whether the scheduler has stopped accepting jobs.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission and waits for the queue to empty and in-flight
// jobs to finish. When ctx expires first, the remaining jobs are cancelled
// and Drain waits for them to acknowledge. Idempotent.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.fq.close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		return ctx.Err()
	}
}

// cancelAll cancels every live job's context (drain-deadline path).
func (s *Scheduler) cancelAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, jr := range s.runs {
		if jr.cancel != nil {
			jr.cancel()
		}
	}
}

// timeoutFor resolves a job's effective timeout.
func (s *Scheduler) timeoutFor(req JobRequest) time.Duration {
	d := s.cfg.DefaultTimeout
	if req.TimeoutSeconds > 0 {
		d = time.Duration(req.TimeoutSeconds * float64(time.Second))
	}
	if s.cfg.MaxTimeout > 0 && (d == 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	return d
}

// runJob executes one job with timeout, cancellation and panic isolation,
// then records the terminal state and closes the event stream.
func (s *Scheduler) runJob(job *Job) {
	s.mu.Lock()
	jr := s.runs[job.ID]
	s.mu.Unlock()
	if jr == nil { // unreachable: Submit registers before enqueueing
		jr = &jobRun{run: obs.NewRun(), sink: obs.NewStreamSink(s.cfg.EventHistory)}
		jr.run.AddSink(jr.sink)
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if d := s.timeoutFor(job.Request); d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	s.mu.Lock()
	jr.cancel = cancel
	s.mu.Unlock()

	now := time.Now().UTC()
	_ = s.store.Update(job.ID, func(j *Job) {
		j.State = JobRunning
		j.StartedAt = &now
	})
	s.gaugeRunning.Add(1)
	defer s.gaugeRunning.Add(-1)

	jr.run.StartProgress(s.cfg.ProgressInterval)

	report, fuzz, err := s.safeExecute(ctx, job, jr.run)

	// Close flushes the final progress event, which also closes every
	// events-stream subscriber. Detaching from the router then folds the
	// job's final counters into the fleet totals and ends its per-job
	// /metrics series (bounded label cardinality).
	jr.run.Close()
	s.router.Detach(job.ID)

	end := time.Now().UTC()
	perr := s.store.Update(job.ID, func(j *Job) {
		j.FinishedAt = &end
		j.Report = report
		j.Fuzz = fuzz
		switch {
		case err == nil:
			j.State = JobDone
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			j.State = JobCanceled
			j.Error = err.Error()
		default:
			j.State = JobFailed
			j.Error = err.Error()
		}
	})
	if perr != nil {
		// The record stays queryable in memory; persistence failure only
		// costs restart durability.
		s.obs.Counter("jobs/persist-errors").Inc()
	}
	switch {
	case err == nil:
		s.ctrDone.Inc()
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.ctrCanceled.Inc()
	default:
		s.ctrFailed.Inc()
	}
}

// safeExecute isolates panics: a panic anywhere in the engine becomes a
// job failure instead of taking the daemon down.
func (s *Scheduler) safeExecute(ctx context.Context, job *Job, run *obs.Run) (report *core.Report, fuzz *FuzzResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			report, fuzz = nil, nil
			err = fmt.Errorf("serve: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return s.executor(ctx, job, run)
}

// checkpointPath is the per-job checkpoint-journal location ("" for a
// memory-only store — no directory to journal into).
func (s *Scheduler) checkpointPath(id string) string {
	if s.store.Dir() == "" {
		return ""
	}
	return filepath.Join(s.store.Dir(), "ckpt-"+sanitizeID(id)+".jsonl")
}

// execute dispatches on the job kind.
func (s *Scheduler) execute(ctx context.Context, job *Job, run *obs.Run) (*core.Report, *FuzzResult, error) {
	req := job.Request
	switch req.Kind {
	case JobKindFuzz:
		cfg := fuzzcamp.Config{Obs: run}
		if req.Fuzz != nil {
			cfg.Backends = req.Fuzz.Backends
			cfg.Seeds = req.Fuzz.Seeds
			cfg.SeedStart = req.Fuzz.SeedStart
			cfg.EnumOps = req.Fuzz.EnumOps
		}
		if req.Representative != nil {
			cfg.DisableRepresentative = !*req.Representative
		}
		if req.Workers > 0 {
			cfg.Workers = req.Workers
		}
		if s.cfg.MaxJobWorkers > 0 && (cfg.Workers == 0 || cfg.Workers > s.cfg.MaxJobWorkers) {
			cfg.Workers = s.cfg.MaxJobWorkers
		}
		res, ferr := fuzzcamp.RunContext(ctx, cfg)
		if ferr != nil {
			return nil, nil, ferr
		}
		if res.Canceled {
			// Surface the cancellation as the job's terminal state; the
			// partial summary still rides along.
			return nil, summarizeFuzz(res), ctx.Err()
		}
		return nil, summarizeFuzz(res), nil
	default:
		if s.fleetEnabled() {
			if n := s.fleet.effectiveShards(req); n >= 2 {
				rep, ferr := s.executeFleet(ctx, job, run, n)
				return rep, nil, ferr
			}
		}
		prog, perr := exps.ProgramByName(req.Program)
		if perr != nil {
			return nil, nil, perr
		}
		opts := req.options(s.cfg.MaxJobWorkers)
		opts.Obs = run
		opts.Retry = s.cfg.Retry
		opts.Faults = s.cfg.Faults
		if p := s.checkpointPath(job.ID); p != "" {
			// The journal lives next to the job record; a resubmitted job
			// (same ID) resumes from it, and a clean finish removes it.
			opts.Checkpoint = core.OpenCheckpoint(p)
		}
		rep, rerr := exps.RunOneContext(ctx, req.FS, prog, opts, req.h5Params(), exps.ConfigFor(req.FS))
		if rerr != nil {
			return nil, nil, rerr
		}
		if opts.Checkpoint != nil {
			if n := opts.Checkpoint.Resumed(); n > 0 {
				run.Counter("job/resumed-verdicts").Add(int64(n))
			}
			os.Remove(opts.Checkpoint.Path())
		}
		return rep, nil, nil
	}
}

// Resubmit re-enqueues a non-terminal job — one a previous daemon process
// was killed while running — under its original ID, so its explore
// checkpoint journal (if any) is picked up and the work continues from the
// frontier. Admission control applies like Submit's.
func (s *Scheduler) Resubmit(id string) error {
	j, ok := s.store.Get(id)
	if !ok {
		return fmt.Errorf("serve: resubmit of unknown job %s", id)
	}
	if j.State.Terminal() {
		return fmt.Errorf("serve: job %s already finished", id)
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.ctrRejected.Inc()
		return ErrDraining
	}
	if s.fq.len() >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.ctrRejected.Inc()
		return ErrQueueFull
	}
	jr := &jobRun{run: obs.NewRun(), sink: obs.NewStreamSink(s.cfg.EventHistory)}
	jr.run.AddSink(jr.sink)
	s.runs[id] = jr
	_ = s.store.Update(id, func(job *Job) {
		job.State = JobQueued
		job.Resumes++
		job.StartedAt = nil
	})
	s.gaugeQueued.Add(1)
	// Workers only read ID, Request and Tenant off the queued record; the
	// store keeps the canonical copy. Resubmission is the daemon recovering
	// its own interrupted work, so the tenant's rate limit and queued quota
	// do not re-apply — but its priority class and running cap still do.
	prio, maxRun := 1, 0
	if tn, ok := s.tenantOf(j.Tenant); ok {
		prio, _ = priorityIndex(tn.Priority)
		maxRun = tn.MaxRunning
	}
	s.fq.push(&queuedJob{job: &Job{ID: id, Request: j.Request, Tenant: j.Tenant}, tenant: j.Tenant, maxRun: maxRun}, prio)
	s.mu.Unlock()

	s.router.Attach(id, jr.run)
	s.obs.Counter("jobs/resumed").Inc()
	return nil
}

// summarizeFuzz projects a campaign result onto the persisted form.
func summarizeFuzz(res *fuzzcamp.Result) *FuzzResult {
	return &FuzzResult{
		OK:           res.OK(),
		Workloads:    res.Workloads,
		Cells:        res.Cells,
		CellsSkipped: res.CellsSkipped,
		ExplorerRuns: res.ExplorerRuns,
		Violations:   len(res.Violations),
		TimedOut:     res.TimedOut,
		Canceled:     res.Canceled,
		Summary:      res.Format(),
	}
}

// newJobID mints a random 12-hex-digit job ID.
func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable noise; fall back to a
		// time-derived ID rather than refusing jobs.
		return fmt.Sprintf("j-%012x", time.Now().UnixNano()&0xffffffffffff)
	}
	return "j-" + hex.EncodeToString(b[:])
}
