// Fsck: the daemon runs the same kind of crash-consistency check on its
// own state directory that the engine runs on simulated file systems. A
// state directory is a bag of independently-written records (job files,
// leases, shard tasks and results, checkpoint journals), and an unclean
// death can leave it with exactly the debris classes bounded black-box
// crash testing predicts: orphan temp files from interrupted atomic
// replaces, torn records from interrupted creates, torn journal tails from
// interrupted appends, and cross-record staleness (shard files outliving
// their merged job, leases outliving their owner).
//
// Fsck scans for every class, classifies each finding, and — in repair
// mode — either repairs it (reconstructible state: temp files, leases,
// shard tasks/results, journal tails) or quarantines it (state that cannot
// be reconstructed and must not be silently dropped: job records, whole
// journals with unreadable headers, shard files whose owning job record is
// gone). The report is machine-readable; the daemon exports its counters
// on /metrics and reflects quarantines in /healthz and /readyz so a
// wounded daemon degrades visibly instead of serving garbage.
// `make selfcheck` proves the pass sufficient: for every statefs crash
// point, kill → fsck → restart recovers to a byte-identical report.
package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"paracrash/internal/statefs"
)

// FsckVersion is the schema version of FsckReport.
const FsckVersion = 1

// QuarantineDirName is the subdirectory of the state dir that quarantined
// records are moved into.
const QuarantineDirName = "quarantine"

// Fsck problem categories.
const (
	// ProblemOrphanTmp is a leftover temp file from an interrupted atomic
	// replace. Repair: remove (the destination record is intact).
	ProblemOrphanTmp = "orphan-tmp"
	// ProblemTornJobRecord is a job record that does not parse — the torn
	// file a crash mid-create leaves. Repair: quarantine (a job record is
	// not reconstructible and may still identify lost work).
	ProblemTornJobRecord = "torn-job-record"
	// ProblemVersionSkew is a job record with a different schema version.
	// Repair: quarantine.
	ProblemVersionSkew = "version-skew"
	// ProblemMalformedLease is a lease file that does not parse (a worker
	// died mid-create). Repair: remove — a missing lease just means the
	// task is claimable, which is also true of a dead claimant's task.
	ProblemMalformedLease = "malformed-lease"
	// ProblemStaleLease is a lease past its deadline (its owner died and
	// no one reclaimed the task yet). Repair: remove.
	ProblemStaleLease = "stale-lease"
	// ProblemDamagedShardTask is a shard task that does not parse or has
	// a skewed version. Repair: remove — the coordinator rewrites tasks
	// idempotently on resubmission.
	ProblemDamagedShardTask = "damaged-shard-task"
	// ProblemDamagedShardResult is a shard result that does not parse or
	// has a skewed version. Repair: remove — the worker recomputes the
	// shard from its checkpoint journal.
	ProblemDamagedShardResult = "damaged-shard-result"
	// ProblemTornJournalTail is a checkpoint journal whose last record is
	// torn (a crash mid-append). Repair: rewrite without the torn tail;
	// every complete record before it is kept.
	ProblemTornJournalTail = "torn-journal-tail"
	// ProblemDuplicateJournalRecord is a checkpoint journal carrying the
	// same verdict key twice. Repair: rewrite deduplicated (first
	// occurrence wins, matching resume semantics) so no verdict can ever
	// be double-counted.
	ProblemDuplicateJournalRecord = "duplicate-journal-record"
	// ProblemUnreadableJournal is a checkpoint journal whose header line
	// does not parse. Repair: quarantine the whole file.
	ProblemUnreadableJournal = "unreadable-journal"
	// ProblemStaleShardFiles is fleet debris (task, result, checkpoint or
	// lease) for a job whose record is already terminal — the coordinator
	// died between the merge and its cleanup. Repair: remove.
	ProblemStaleShardFiles = "stale-shard-files"
	// ProblemOrphanShardFiles is fleet debris whose owning job has no
	// record at all. Repair: quarantine tasks/results/journals (they may
	// witness work whose job record was lost) and remove leases.
	ProblemOrphanShardFiles = "orphan-shard-files"
)

// Fsck actions.
const (
	// ActionDetected marks a dry-run finding: nothing was changed.
	ActionDetected = "detected"
	// ActionRemoved marks a repaired finding whose file was deleted.
	ActionRemoved = "removed"
	// ActionRewritten marks a journal repaired in place.
	ActionRewritten = "rewritten"
	// ActionQuarantined marks a file moved into the quarantine directory.
	ActionQuarantined = "quarantined"
)

// FsckOptions configures a state-directory check.
type FsckOptions struct {
	// Repair applies repairs and quarantines; false is a read-only scan
	// whose problems all carry ActionDetected.
	Repair bool
	// Now is the clock for lease-expiry checks (zero value = time.Now).
	Now time.Time
}

// FsckProblem is one finding: what is wrong with which file, and what
// fsck did about it.
type FsckProblem struct {
	// Path is the offending file, relative to the state directory.
	Path string `json:"path"`
	// Category is one of the Problem* constants.
	Category string `json:"category"`
	// Detail is the human-readable specifics.
	Detail string `json:"detail"`
	// Action is one of the Action* constants.
	Action string `json:"action"`
}

// FsckReport is the machine-readable result of one state-directory check.
type FsckReport struct {
	// Version is the report schema version (FsckVersion).
	Version int `json:"version"`
	// Dir is the checked state directory.
	Dir string `json:"dir"`
	// Repair records whether repairs were applied or this was a dry run.
	Repair bool `json:"repair"`
	// Scanned counts the directory entries examined.
	Scanned int `json:"scanned"`
	// Problems lists every finding, sorted by path then category.
	Problems []FsckProblem `json:"problems,omitempty"`
	// Repaired counts removed and rewritten findings.
	Repaired int `json:"repaired"`
	// Quarantined counts findings moved to the quarantine directory.
	Quarantined int `json:"quarantined"`
	// Clean is true when no problems were found.
	Clean bool `json:"clean"`
}

// Degraded reports whether the check left unreconstructible state behind:
// a daemon with quarantined records serves what it has but fails /readyz
// so orchestrators stop routing new work at it.
func (r *FsckReport) Degraded() bool { return r.Quarantined > 0 }

// Summary renders the one-line operator view.
func (r *FsckReport) Summary() string {
	if r.Clean {
		return fmt.Sprintf("fsck: %s clean (%d entries)", r.Dir, r.Scanned)
	}
	return fmt.Sprintf("fsck: %s: %d problem(s), %d repaired, %d quarantined (repair=%t)",
		r.Dir, len(r.Problems), r.Repaired, r.Quarantined, r.Repair)
}

// fsck is the working state of one check.
type fsck struct {
	dir  string
	opts FsckOptions
	rep  *FsckReport

	// jobs maps parsed job IDs to terminality, for cross-record checks.
	jobs map[string]bool
}

// Fsck checks (and in repair mode, repairs) the daemon's state directory.
// A missing or empty directory is clean. The error return is for I/O
// failures of the scan itself; findings — however bad — are report
// content, never an error, because a daemon must be able to start from
// any wreckage.
func Fsck(dir string, opts FsckOptions) (*FsckReport, error) {
	if opts.Now.IsZero() {
		opts.Now = time.Now()
	}
	f := &fsck{
		dir:  dir,
		opts: opts,
		rep:  &FsckReport{Version: FsckVersion, Dir: dir, Repair: opts.Repair},
		jobs: map[string]bool{},
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			f.rep.Clean = true
			return f.rep, nil
		}
		return nil, fmt.Errorf("serve: fsck %s: %w", dir, err)
	}

	// Pass 1: per-file integrity, and the job-record index the
	// cross-record pass needs.
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f.rep.Scanned++
		f.checkFile(name)
	}

	// Pass 2: cross-record staleness — fleet debris whose owning job is
	// terminal or gone.
	for _, name := range names {
		f.checkOwnership(name)
	}

	sort.Slice(f.rep.Problems, func(a, b int) bool {
		pa, pb := f.rep.Problems[a], f.rep.Problems[b]
		if pa.Path != pb.Path {
			return pa.Path < pb.Path
		}
		return pa.Category < pb.Category
	})
	f.rep.Clean = len(f.rep.Problems) == 0
	return f.rep, nil
}

// checkFile classifies one directory entry and repairs per-file damage.
func (f *fsck) checkFile(name string) {
	path := filepath.Join(f.dir, name)
	switch {
	case strings.HasSuffix(name, ".tmp") || strings.HasPrefix(name, ".ckpt-"):
		f.remove(name, ProblemOrphanTmp, "leftover temp file from an interrupted atomic replace")
	case strings.HasPrefix(name, "job-") && strings.HasSuffix(name, ".json"):
		var j Job
		data, err := os.ReadFile(path)
		if err != nil || json.Unmarshal(data, &j) != nil || j.ID == "" {
			f.quarantine(name, ProblemTornJobRecord, "job record does not parse")
			return
		}
		if j.Version != JobVersion {
			f.quarantine(name, ProblemVersionSkew, fmt.Sprintf("job record has schema version %d, want %d", j.Version, JobVersion))
			return
		}
		f.jobs[j.ID] = j.State.Terminal()
	case strings.HasPrefix(name, "lease-") && strings.HasSuffix(name, ".json"):
		var l Lease
		data, err := os.ReadFile(path)
		if err != nil || json.Unmarshal(data, &l) != nil || l.Task == "" {
			f.remove(name, ProblemMalformedLease, "lease file does not parse (claimant died mid-create)")
			return
		}
		if l.Expired(f.opts.Now) {
			f.remove(name, ProblemStaleLease, fmt.Sprintf("lease by %s expired %s", l.Owner, l.Expires.Format(time.RFC3339)))
		}
	case strings.HasPrefix(name, "task-") && strings.HasSuffix(name, ".json"):
		var t ShardTask
		data, err := os.ReadFile(path)
		if err != nil || json.Unmarshal(data, &t) != nil || t.Job == "" || t.Version != FleetVersion {
			f.remove(name, ProblemDamagedShardTask, "shard task does not parse or has a skewed version")
		}
	case strings.HasPrefix(name, "result-") && strings.HasSuffix(name, ".json"):
		var r ShardResult
		data, err := os.ReadFile(path)
		if err != nil || json.Unmarshal(data, &r) != nil || r.Job == "" || r.Version != FleetVersion {
			f.remove(name, ProblemDamagedShardResult, "shard result does not parse or has a skewed version")
		}
	case strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".jsonl"):
		f.checkJournal(name)
	}
}

// checkJournal validates a checkpoint journal's line structure: a JSON
// header, then JSON records with unique non-empty keys, newline-terminated.
func (f *fsck) checkJournal(name string) {
	path := filepath.Join(f.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		f.quarantine(name, ProblemUnreadableJournal, fmt.Sprintf("journal unreadable: %v", err))
		return
	}
	if len(data) == 0 {
		return // an empty journal is a fresh start, not damage
	}
	lines := strings.Split(string(data), "\n")
	// A well-formed journal ends with "\n", so the final split element is
	// empty; anything else is a torn tail.
	torn := lines[len(lines)-1] != ""
	if !torn {
		lines = lines[:len(lines)-1]
	}
	var hdr map[string]any
	if len(lines) == 0 || json.Unmarshal([]byte(lines[0]), &hdr) != nil {
		f.quarantine(name, ProblemUnreadableJournal, "journal header line does not parse")
		return
	}
	seen := map[string]bool{}
	keep := []string{lines[0]}
	dups := 0
	for i, line := range lines[1:] {
		var rec struct {
			Key string `json:"key"`
		}
		if json.Unmarshal([]byte(line), &rec) != nil || rec.Key == "" {
			// Interior damage: everything from here on is untrustworthy,
			// exactly like resume's drop-the-rest rule.
			torn = true
			f.problem(name, ProblemTornJournalTail,
				fmt.Sprintf("record at line %d is damaged; truncating it and the %d line(s) after it", i+2, len(lines[1:])-i-1),
				ActionRewritten)
			break
		}
		if seen[rec.Key] {
			dups++
			continue
		}
		seen[rec.Key] = true
		keep = append(keep, line)
	}
	if torn && f.rep.Problems[len(f.rep.Problems)-1].Category != ProblemTornJournalTail {
		f.problem(name, ProblemTornJournalTail, "journal ends mid-record (crash during append)", ActionRewritten)
	}
	if dups > 0 {
		f.problem(name, ProblemDuplicateJournalRecord,
			fmt.Sprintf("%d duplicated verdict record(s); keeping first occurrences", dups), ActionRewritten)
	}
	if (torn || dups > 0) && f.opts.Repair {
		clean := strings.Join(keep, "\n") + "\n"
		if err := statefs.WriteBytes(siteFsckRewrite, path, []byte(clean)); err != nil {
			f.problem(name, ProblemUnreadableJournal, fmt.Sprintf("rewrite failed: %v", err), ActionDetected)
		}
	}
}

// checkOwnership flags fleet debris whose owning job record is terminal
// (stale) or missing (orphan). Job records themselves and already-removed
// files are skipped.
func (f *fsck) checkOwnership(name string) {
	job, kind := ownerOf(name)
	if job == "" {
		return
	}
	if _, err := os.Stat(filepath.Join(f.dir, name)); os.IsNotExist(err) {
		return // pass 1 already removed or quarantined it
	}
	terminal, known := f.jobs[job]
	switch {
	case known && terminal:
		f.remove(name, ProblemStaleShardFiles,
			fmt.Sprintf("%s outlives terminal job %s (coordinator died between merge and cleanup)", kind, job))
	case !known:
		if kind == "lease" {
			// Leases are transient claims; with no job to claim for, drop.
			f.remove(name, ProblemOrphanShardFiles, fmt.Sprintf("lease for unknown job %s", job))
			return
		}
		f.quarantine(name, ProblemOrphanShardFiles,
			fmt.Sprintf("%s belongs to unknown job %s (its record may have been lost)", kind, job))
	}
}

// ownerOf extracts the owning job ID and record kind from a fleet or
// journal file name; job is "" for names that have no owner (job records,
// temp files, foreign files).
func ownerOf(name string) (job, kind string) {
	trim := func(s, prefix, suffix string) (string, bool) {
		if strings.HasPrefix(s, prefix) && strings.HasSuffix(s, suffix) {
			return strings.TrimSuffix(strings.TrimPrefix(s, prefix), suffix), true
		}
		return "", false
	}
	stripShard := func(s string) string {
		if i := strings.LastIndex(s, "-shard-"); i >= 0 {
			return s[:i]
		}
		return s
	}
	if base, ok := trim(name, "task-", ".json"); ok {
		return stripShard(base), "shard task"
	}
	if base, ok := trim(name, "result-", ".json"); ok {
		return stripShard(base), "shard result"
	}
	if base, ok := trim(name, "ckpt-", ".jsonl"); ok {
		return stripShard(base), "checkpoint journal"
	}
	if base, ok := trim(name, "lease-", ".json"); ok {
		if j, ok := jobOfLeaseTask(base); ok {
			return j, "lease"
		}
	}
	return "", ""
}

// problem records one finding; action is downgraded to ActionDetected on
// dry runs.
func (f *fsck) problem(name, category, detail, action string) {
	if !f.opts.Repair {
		action = ActionDetected
	}
	f.rep.Problems = append(f.rep.Problems, FsckProblem{Path: name, Category: category, Detail: detail, Action: action})
	switch action {
	case ActionRemoved, ActionRewritten:
		f.rep.Repaired++
	case ActionQuarantined:
		f.rep.Quarantined++
	}
}

// remove repairs a finding by deleting the file.
func (f *fsck) remove(name, category, detail string) {
	if f.opts.Repair {
		if err := os.Remove(filepath.Join(f.dir, name)); err != nil && !os.IsNotExist(err) {
			f.problem(name, category, fmt.Sprintf("%s (remove failed: %v)", detail, err), ActionDetected)
			return
		}
	}
	f.problem(name, category, detail, ActionRemoved)
}

// quarantine moves a finding into the quarantine directory (unique name,
// durable rename) so it is out of the daemon's way but not destroyed.
func (f *fsck) quarantine(name, category, detail string) {
	if f.opts.Repair {
		qdir := filepath.Join(f.dir, QuarantineDirName)
		if err := os.MkdirAll(qdir, 0o755); err != nil {
			f.problem(name, category, fmt.Sprintf("%s (quarantine failed: %v)", detail, err), ActionDetected)
			return
		}
		dst := filepath.Join(qdir, name)
		for i := 1; ; i++ {
			if _, err := os.Stat(dst); os.IsNotExist(err) {
				break
			}
			dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", name, i))
		}
		if err := statefs.Rename(siteFsckQuarantine, filepath.Join(f.dir, name), dst); err != nil {
			f.problem(name, category, fmt.Sprintf("%s (quarantine failed: %v)", detail, err), ActionDetected)
			return
		}
	}
	f.problem(name, category, detail, ActionQuarantined)
}
