package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"paracrash/internal/obs"
	core "paracrash/internal/paracrash"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// scrapeUntil polls /metrics until the predicate holds.
func scrapeUntil(t *testing.T, url, what string, pred func(string) bool) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		last = scrape(t, url)
		if pred(last) {
			return last
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s; last scrape:\n%s", what, last)
	return ""
}

// TestMetricsEndpointLifecycle drives the full per-job series lifecycle
// over HTTP: while a job runs, /metrics exposes its counters labeled
// job="<id>" alongside the fleet rollup and the daemon's own series; after
// completion the per-job series disappears and its counters stay folded
// into the monotonic fleet totals.
func TestMetricsEndpointLifecycle(t *testing.T) {
	st, _ := OpenStore("")
	run := obs.NewRun()
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 1}, st, run)
	gate := make(chan struct{})
	s.executor = func(ctx context.Context, job *Job, jrun *obs.Run) (*core.Report, *FuzzResult, error) {
		jrun.Counter("states/checked").Add(7)
		select {
		case <-gate:
			return &core.Report{}, nil, nil
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	s.Start()
	defer s.Drain(context.Background())
	srv := httptest.NewServer(NewServer(s, st, run))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, st, j.ID, JobRunning)

	perJob := `paracrash_states_checked_total{job="` + j.ID + `"} 7`
	running := scrapeUntil(t, srv.URL, "the running job's series", func(text string) bool {
		return strings.Contains(text, perJob)
	})
	for _, want := range []string{
		"# TYPE paracrash_states_checked_total counter",
		"paracrash_states_checked_total 7", // fleet rollup
		"paracrash_jobs_submitted_total 1", // daemon's own run, fleet-level
		"paracrash_jobs_running 1",
	} {
		if !strings.Contains(running, want) {
			t.Fatalf("running scrape missing %q:\n%s", want, running)
		}
	}

	close(gate)
	waitState(t, st, j.ID, JobDone)
	done := scrapeUntil(t, srv.URL, "the per-job series to retire", func(text string) bool {
		return !strings.Contains(text, perJob) && strings.Contains(text, "paracrash_jobs_done_total 1")
	})
	// Folded: the fleet total survives the job's completion.
	if !strings.Contains(done, "paracrash_states_checked_total 7") {
		t.Fatalf("fleet total lost after job completion:\n%s", done)
	}
	if strings.Contains(done, `job="`+j.ID+`"`) {
		t.Fatalf("finished job still has labeled series:\n%s", done)
	}
}

// TestSchedulerRouterRingSink asserts in-process what the HTTP test asserts
// over the wire: a sink attached to the scheduler's router receives each
// published batch with per-job and fleet series — no scraping involved.
func TestSchedulerRouterRingSink(t *testing.T) {
	st, _ := OpenStore("")
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 1}, st, obs.NewRun())
	s.executor = func(ctx context.Context, job *Job, jrun *obs.Run) (*core.Report, *FuzzResult, error) {
		jrun.Counter("states/checked").Add(3)
		return &core.Report{}, nil, nil
	}
	s.Start()
	defer s.Drain(context.Background())

	ring := obs.NewRingSink(8)
	s.Router().AddSink(ring)

	j, err := s.Submit(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, st, j.ID, JobDone)

	s.Router().Publish()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := ring.Find("states/checked", ""); ok {
			break
		}
		time.Sleep(time.Millisecond)
		s.Router().Publish()
	}
	m, ok := ring.Find("states/checked", "")
	if !ok || m.Value != 3 {
		t.Fatalf("ring fleet sample = (%+v, %v), want folded value 3", m, ok)
	}
	if m, ok := ring.Find("jobs/done", ""); !ok || m.Value != 1 {
		t.Fatalf("ring daemon sample = (%+v, %v), want jobs/done 1", m, ok)
	}
}

// TestChaosSchedulerWedgedSinkDoesNotStallJobs is the serve-layer chaos
// gate: a wedged telemetry sink on the scheduler's router — with an
// aggressive sampling loop — must not delay a real exploration job or its
// verdict.
func TestChaosSchedulerWedgedSinkDoesNotStallJobs(t *testing.T) {
	st, _ := OpenStore("")
	run := obs.NewRun()
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 2}, st, run)
	s.Start()
	defer s.Drain(context.Background())

	router := s.Router()
	router.DrainTimeout = 50 * time.Millisecond
	wedged := &wedgedMetricSink{release: make(chan struct{})}
	defer close(wedged.release)
	router.AddSink(wedged)
	router.Start(time.Millisecond)
	defer router.Close()

	j, err := s.Submit(JobRequest{FS: "beegfs", Program: "ARVR", Mode: "pruning"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, st, j.ID, JobDone) // waitState's deadline IS the stall check
	if done.Report == nil {
		t.Fatal("job finished without a report under a wedged sink")
	}
}

// wedgedMetricSink blocks every metric write until released.
type wedgedMetricSink struct{ release chan struct{} }

func (s *wedgedMetricSink) WriteMetrics([]obs.Metric) error {
	<-s.release
	return nil
}
