package trace_test

import (
	"testing"

	"paracrash/internal/causality"
	"paracrash/internal/pfs"
	"paracrash/internal/pfs/beegfs"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// TestGoldenTraceRoundTrip records a real ARVR execution on BeeGFS, pushes
// the trace through Encode/Decode, and checks that the decoded trace rebuilds
// an identical causality graph: same node count, same happens-before relation
// edge for edge, and the same lowermost-op universe. This is the contract
// the -dump-trace / offline-analysis path relies on.
func TestGoldenTraceRoundTrip(t *testing.T) {
	rec := trace.NewRecorder()
	fs := beegfs.New(pfs.DefaultConfig(), rec)
	w := workloads.ARVR()

	rec.SetEnabled(false)
	if err := w.Preamble(fs); err != nil {
		t.Fatalf("preamble: %v", err)
	}
	rec.Reset()
	rec.SetEnabled(true)
	if err := w.Run(fs); err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.SetEnabled(false)

	ops := rec.Ops()
	if len(ops) == 0 {
		t.Fatal("empty trace")
	}

	data, err := trace.Encode(ops)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := trace.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(decoded) != len(ops) {
		t.Fatalf("decoded %d ops, recorded %d", len(decoded), len(ops))
	}

	g1 := causality.Build(ops)
	g2 := causality.Build(decoded)
	if g1.Len() != g2.Len() {
		t.Fatalf("graph sizes differ: %d vs %d", g1.Len(), g2.Len())
	}
	for i := 0; i < g1.Len(); i++ {
		for j := 0; j < g1.Len(); j++ {
			if g1.HB(i, j) != g2.HB(i, j) {
				t.Errorf("HB(%d,%d): original %v, decoded %v (%s / %s)",
					i, j, g1.HB(i, j), g2.HB(i, j), g1.Ops[i], g2.Ops[j])
			}
		}
	}

	// The replay universe must survive too: same lowermost ops with the
	// same keys in the same order.
	lo1, lo2 := trace.Lowermost(ops), trace.Lowermost(decoded)
	if len(lo1) != len(lo2) {
		t.Fatalf("lowermost counts differ: %d vs %d", len(lo1), len(lo2))
	}
	for i := range lo1 {
		if lo1[i].Key() != lo2[i].Key() {
			t.Errorf("lowermost op %d: key %q vs %q", i, lo1[i].Key(), lo2[i].Key())
		}
		if string(lo1[i].Data) != string(lo2[i].Data) {
			t.Errorf("lowermost op %d: payload bytes differ", i)
		}
	}
}
