package trace

import (
	"bytes"
	"testing"

	"paracrash/internal/blockdev"
	"paracrash/internal/vfs"
)

// FuzzTraceRoundTrip checks the trace codec's parse→format→parse identity:
// any byte sequence Decode accepts must re-encode to a fixpoint — decoding
// the encoded form and encoding again yields byte-identical JSON. Trace
// files are the hand-off between the tracing stage and the checker, so a
// non-idempotent codec would silently corrupt replays.
func FuzzTraceRoundTrip(f *testing.F) {
	// A representative trace: client ops, a communication pair, and both
	// replayable payload kinds.
	ops := []*Op{
		{ID: 1, Layer: LayerPFS, Proc: "client/0", Name: "creat", Path: "/foo", FileID: "foo", Parent: -1},
		{ID: 2, Layer: LayerPFS, Proc: "client/0", Name: "pwrite", Path: "/foo", Offset: 0, Size: 4, Data: []byte("data"), FileID: "foo", Parent: -1},
		{ID: 3, Layer: LayerPFS, Proc: "client/0", Name: "send", MsgID: 1, IsSend: true, Parent: 2},
		{ID: 4, Layer: LayerLocalFS, Proc: "storage/0", Name: "recv", MsgID: 1, Parent: 3},
		{ID: 5, Layer: LayerLocalFS, Proc: "storage/0", Name: "pwrite", Path: "/chunk0", Tag: "chunk", Parent: 4,
			Payload: vfs.Op{Kind: vfs.OpWrite, Path: "/chunk0", Data: []byte("data")}},
		{ID: 6, Layer: LayerBlock, Proc: "server/0", Name: "scsi_write", Parent: -1,
			Payload: blockdev.Op{Kind: blockdev.OpWrite, LBA: 128, Data: []byte("blk")}},
		{ID: 7, Layer: LayerPFS, Proc: "client/0", Name: "fsync", Path: "/foo", Sync: true, DataSync: true, FileID: "foo", Parent: -1},
	}
	enc, err := Encode(ops)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte("[]"))
	f.Add([]byte("null"))
	f.Add([]byte(`[{"id":1,"layer":3,"proc":"client/0","name":"creat","parent":-1}]`))
	f.Add([]byte(`[{"id":1,"pkind":"bogus"}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		ops1, err := Decode(data)
		if err != nil {
			return // rejected inputs just need to fail cleanly
		}
		enc1, err := Encode(ops1)
		if err != nil {
			t.Fatalf("decoded trace failed to encode: %v", err)
		}
		ops2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("encoded trace failed to decode: %v", err)
		}
		if len(ops2) != len(ops1) {
			t.Fatalf("round trip changed op count: %d -> %d", len(ops1), len(ops2))
		}
		enc2, err := Encode(ops2)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("parse->format->parse is not identity:\n%s\nvs\n%s", enc1, enc2)
		}
	})
}
