// Package trace defines the cross-layer operation records that every
// component of the simulated HPC I/O stack emits, and the Recorder that
// collects them during a traced execution.
//
// A trace.Op is the unit of everything ParaCrash does: causality analysis,
// crash emulation, legal-state replay and bug classification all operate on
// sequences of Ops. Ops are recorded at every layer (application, I/O
// library, MPI-IO, PFS client, local file system, block device); the
// lowermost-layer ops additionally carry a replayable payload (a vfs.Op or
// blockdev.Op) that the crash emulator can apply to a snapshot.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Layer identifies the I/O-stack layer an operation belongs to.
type Layer int

const (
	// LayerApp is the application layer (test program statements).
	LayerApp Layer = iota
	// LayerIOLib is the parallel I/O library layer (HDF5, NetCDF).
	LayerIOLib
	// LayerMPI is the MPI-IO layer.
	LayerMPI
	// LayerPFS is the parallel-file-system client layer (POSIX-like calls
	// issued against the PFS mount point).
	LayerPFS
	// LayerLocalFS is the lowermost layer for user-level PFSs: POSIX I/O
	// calls issued by PFS server processes against their local file systems.
	LayerLocalFS
	// LayerBlock is the lowermost layer for kernel-level PFSs: SCSI block
	// commands issued against the servers' block devices.
	LayerBlock
)

// String returns the layer name used in reports.
func (l Layer) String() string {
	switch l {
	case LayerApp:
		return "app"
	case LayerIOLib:
		return "iolib"
	case LayerMPI:
		return "mpi-io"
	case LayerPFS:
		return "pfs"
	case LayerLocalFS:
		return "localfs"
	case LayerBlock:
		return "block"
	default:
		return fmt.Sprintf("layer(%d)", int(l))
	}
}

// Op is a single traced operation. Fields that do not apply to a given
// operation are left at their zero value.
type Op struct {
	// ID is a globally unique, monotonically increasing identifier assigned
	// by the Recorder. IDs reflect global recording order, which for a
	// single-threaded execution is a valid linearisation of causality.
	ID int

	// Layer is the I/O-stack layer the op was recorded at.
	Layer Layer

	// Proc identifies the process that executed the op, e.g. "client/0",
	// "meta/1", "storage/0". Ops with the same Proc are totally ordered by
	// their recording order (program order).
	Proc string

	// Name is the operation name, e.g. "pwrite", "rename", "fsync",
	// "MPI_File_write_at", "H5Dcreate", "scsi_write".
	Name string

	// Path is the primary path or object the op refers to; Path2 is the
	// secondary one (rename destination, link target).
	Path  string
	Path2 string

	// Offset and Size describe the byte range of data operations. For block
	// ops Offset is the LBA.
	Offset int64
	Size   int64

	// Data holds the written bytes for data operations, so that recorded
	// upper-layer ops can be re-executed during legal-state replay.
	Data []byte

	// Meta reports whether this is a metadata operation (directory ops,
	// xattrs, inode changes). The journaling-mode persistence models treat
	// metadata and data differently.
	Meta bool

	// Sync reports whether this is a commit operation (fsync, fdatasync,
	// scsi_sync). DataSync distinguishes fdatasync from fsync.
	Sync     bool
	DataSync bool

	// FileID names the file identity a data or sync op applies to, for
	// commit coverage ("fsync(fd) persists preceding ops on the same file").
	// Empty for ops without a file identity.
	FileID string

	// Tag carries semantic information: the I/O-library data structure the
	// op modifies (e.g. "btree:/g1", "superblock", "data:/g1/d1"). Used by
	// the object-map pruning and bug classification.
	Tag string

	// Parent is the ID of the calling op one layer up (caller-callee edge);
	// -1 (or 0 before recording) when the op has no traced caller. For RPC
	// receive ops the parent is the matching send, which chains server-side
	// work to the client call that triggered it.
	Parent int

	// MsgID links communication pairs: a send op and its matching receive
	// share a MsgID (always positive). Zero or negative when the op is not
	// a communication.
	MsgID int
	// IsSend distinguishes the sender (true) from the receiver (false) of a
	// matched communication pair.
	IsSend bool

	// Payload is the replayable lowermost-level operation (a vfs.Op or
	// blockdev.Op) for LayerLocalFS / LayerBlock ops; nil otherwise.
	Payload any
}

// IsComm reports whether the op is a communication event.
func (o *Op) IsComm() bool { return o.MsgID > 0 }

// IsLowermost reports whether the op belongs to a lowermost layer whose
// operations are replayed during crash emulation.
func (o *Op) IsLowermost() bool {
	return o.Layer == LayerLocalFS || o.Layer == LayerBlock
}

// Key returns a stable human-readable identity for the op used in bug
// signatures and reports: name(path[,path2])@proc.
func (o *Op) Key() string {
	var b strings.Builder
	b.WriteString(o.Name)
	b.WriteByte('(')
	b.WriteString(o.Path)
	if o.Path2 != "" {
		b.WriteString(", ")
		b.WriteString(o.Path2)
	}
	if o.Name == "pwrite" || o.Name == "scsi_write" {
		fmt.Fprintf(&b, " off=%d len=%d", o.Offset, o.Size)
	}
	b.WriteByte(')')
	b.WriteByte('@')
	b.WriteString(o.Proc)
	if o.Tag != "" {
		b.WriteString(" [")
		b.WriteString(o.Tag)
		b.WriteByte(']')
	}
	return b.String()
}

// String implements fmt.Stringer.
func (o *Op) String() string {
	return fmt.Sprintf("#%d %s %s", o.ID, o.Layer, o.Key())
}

// Recorder collects ops during a traced execution. It is safe for use by a
// single goroutine per recording site; the recorder itself serialises
// appends, so concurrent layers may share one recorder.
type Recorder struct {
	mu      sync.Mutex
	ops     []*Op
	nextID  int
	nextMsg int
	enabled bool

	// callStack maps a proc to its stack of in-flight caller op IDs so that
	// nested recordings pick up caller-callee edges automatically.
	callStack map[string][]int
}

// NewRecorder returns an empty, enabled recorder. Op IDs start at 1 so that
// a zero Parent unambiguously means "unset".
func NewRecorder() *Recorder {
	return &Recorder{enabled: true, nextID: 1, callStack: make(map[string][]int)}
}

// SetEnabled turns recording on or off. Disabled recorders still assign
// message IDs so that communication matching keeps working during preambles.
func (r *Recorder) SetEnabled(v bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.enabled = v
}

// Enabled reports whether ops are currently being recorded.
func (r *Recorder) Enabled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.enabled
}

// Record appends op to the trace, assigning its ID. If the op's Parent is
// zero (unset) and the proc has an in-flight caller, the caller edge is
// filled in. The returned op is always non-nil; when recording is disabled
// the op gets ID -1 and is not stored.
func (r *Recorder) Record(op Op) *Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.enabled {
		op.ID = -1
		if op.Parent == 0 {
			op.Parent = -1
		}
		return &op
	}
	op.ID = r.nextID
	r.nextID++
	if op.Parent == 0 {
		if st := r.callStack[op.Proc]; len(st) > 0 {
			op.Parent = st[len(st)-1]
		} else {
			op.Parent = -1
		}
	}
	p := &op
	r.ops = append(r.ops, p)
	return p
}

// Push records op and makes it the current caller for its proc until the
// matching Pop. Used by upper layers wrapping lower-layer calls.
func (r *Recorder) Push(op Op) *Op {
	p := r.Record(op)
	r.mu.Lock()
	defer r.mu.Unlock()
	// When disabled p.ID is -1, which acts as a harmless sentinel.
	r.callStack[op.Proc] = append(r.callStack[op.Proc], p.ID)
	return p
}

// Pop ends the innermost in-flight call for proc.
func (r *Recorder) Pop(proc string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.callStack[proc]
	if len(st) == 0 {
		return
	}
	r.callStack[proc] = st[:len(st)-1]
}

// NewMsgID allocates a fresh message ID (always positive) for a send/recv
// pair.
func (r *Recorder) NewMsgID() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextMsg++
	return r.nextMsg
}

// Ops returns the recorded ops in recording order. The returned slice is a
// copy; the ops themselves are shared.
func (r *Recorder) Ops() []*Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Reset discards all recorded ops but keeps ID counters monotonic so that
// ops from different phases never collide.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = nil
	r.callStack = make(map[string][]int)
}

// Len returns the number of recorded ops.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Filter returns the ops for which keep returns true, preserving order.
func Filter(ops []*Op, keep func(*Op) bool) []*Op {
	var out []*Op
	for _, o := range ops {
		if keep(o) {
			out = append(out, o)
		}
	}
	return out
}

// ByLayer returns the ops recorded at the given layer, in order.
func ByLayer(ops []*Op, l Layer) []*Op {
	return Filter(ops, func(o *Op) bool { return o.Layer == l })
}

// Lowermost returns the ops at the lowermost (replayable) layers, in order.
func Lowermost(ops []*Op) []*Op {
	return Filter(ops, func(o *Op) bool { return o.IsLowermost() })
}

// Procs returns the sorted set of process names appearing in ops.
func Procs(ops []*Op) []string {
	set := map[string]bool{}
	for _, o := range ops {
		set[o.Proc] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Format renders ops as an indented multi-line listing grouped by process,
// used by the trace-dump tooling and the Figure 2/9 example programs.
func Format(ops []*Op) string {
	var b strings.Builder
	byProc := map[string][]*Op{}
	for _, o := range ops {
		byProc[o.Proc] = append(byProc[o.Proc], o)
	}
	for _, p := range Procs(ops) {
		fmt.Fprintf(&b, "%s:\n", p)
		for _, o := range byProc[p] {
			fmt.Fprintf(&b, "  %s\n", o)
		}
	}
	return b.String()
}
