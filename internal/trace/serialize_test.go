package trace

import (
	"reflect"
	"testing"

	"paracrash/internal/blockdev"
	"paracrash/internal/vfs"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ops := []*Op{
		{ID: 1, Layer: LayerPFS, Proc: "client/0", Name: "creat", Path: "/f",
			FileID: "/f", Meta: true, Parent: -1},
		{ID: 2, Layer: LayerLocalFS, Proc: "meta/0", Name: "pwrite", Path: "/db",
			Offset: 256, Size: 3, Data: []byte("abc"), Parent: 1, Tag: "keyval.db",
			Payload: vfs.Op{Kind: vfs.OpWrite, Path: "/db", Offset: 256, Data: []byte("abc")}},
		{ID: 3, Layer: LayerLocalFS, Proc: "meta/0", Name: "fdatasync", Path: "/db",
			Sync: true, DataSync: true, FileID: "/db", Parent: 1,
			Payload: vfs.Op{Kind: vfs.OpSync, Path: "/db"}},
		{ID: 4, Layer: LayerBlock, Proc: "server/1", Name: "scsi_write", Offset: 100,
			Parent: -1, Tag: "inode", MsgID: 7, IsSend: true,
			Payload: blockdev.Op{Kind: blockdev.OpWrite, LBA: 100, Data: []byte{1, 2}}},
		{ID: 5, Layer: LayerIOLib, Proc: "client/0", Name: "H5Dcreate", Path: "/g1/d",
			Data: []byte(`[4,4]`), Parent: -1},
	}
	data, err := Encode(ops)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(back), len(ops))
	}
	for i := range ops {
		if !reflect.DeepEqual(*ops[i], *back[i]) {
			t.Errorf("op %d round-trip mismatch:\n%+v\n%+v", i, *ops[i], *back[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Fatal("garbage must not decode")
	}
	if _, err := Decode([]byte(`[{"id":1,"pkind":"alien","payload":{}}]`)); err == nil {
		t.Fatal("unknown payload kind must not decode")
	}
}

func TestEncodeRejectsUnknownPayload(t *testing.T) {
	if _, err := Encode([]*Op{{ID: 1, Payload: 42}}); err == nil {
		t.Fatal("unsupported payload must not encode")
	}
}
