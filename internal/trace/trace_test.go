package trace

import (
	"strings"
	"testing"
)

func TestRecorderAssignsIDsFromOne(t *testing.T) {
	r := NewRecorder()
	a := r.Record(Op{Proc: "p", Name: "a"})
	b := r.Record(Op{Proc: "p", Name: "b"})
	if a.ID != 1 || b.ID != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", a.ID, b.ID)
	}
	if a.Parent != -1 {
		t.Fatalf("top-level op parent = %d, want -1", a.Parent)
	}
}

func TestPushPopCallerEdges(t *testing.T) {
	r := NewRecorder()
	outer := r.Push(Op{Proc: "p", Name: "outer"})
	inner := r.Record(Op{Proc: "p", Name: "inner"})
	if inner.Parent != outer.ID {
		t.Fatalf("inner.Parent = %d, want %d", inner.Parent, outer.ID)
	}
	nested := r.Push(Op{Proc: "p", Name: "nested"})
	deepest := r.Record(Op{Proc: "p", Name: "deepest"})
	if deepest.Parent != nested.ID {
		t.Fatalf("deepest.Parent = %d, want %d", deepest.Parent, nested.ID)
	}
	r.Pop("p")
	after := r.Record(Op{Proc: "p", Name: "after"})
	if after.Parent != outer.ID {
		t.Fatalf("after.Parent = %d, want %d", after.Parent, outer.ID)
	}
	r.Pop("p")
	top := r.Record(Op{Proc: "p", Name: "top"})
	if top.Parent != -1 {
		t.Fatalf("top.Parent = %d, want -1", top.Parent)
	}
}

func TestCallStacksArePerProc(t *testing.T) {
	r := NewRecorder()
	r.Push(Op{Proc: "p", Name: "p-outer"})
	q := r.Record(Op{Proc: "q", Name: "q-op"})
	if q.Parent != -1 {
		t.Fatalf("q's op picked up p's caller: parent=%d", q.Parent)
	}
}

func TestDisabledRecorder(t *testing.T) {
	r := NewRecorder()
	r.SetEnabled(false)
	op := r.Record(Op{Proc: "p", Name: "x"})
	if op == nil || op.ID != -1 {
		t.Fatalf("disabled Record should return sentinel op, got %+v", op)
	}
	if r.Len() != 0 {
		t.Fatal("disabled recorder stored an op")
	}
	// Push/Pop must stay balanced while disabled.
	r.Push(Op{Proc: "p", Name: "y"})
	r.Pop("p")
	r.SetEnabled(true)
	live := r.Record(Op{Proc: "p", Name: "z"})
	if live.Parent != -1 {
		t.Fatalf("stale caller leaked: parent=%d", live.Parent)
	}
}

func TestMsgIDsArePositive(t *testing.T) {
	r := NewRecorder()
	if id := r.NewMsgID(); id <= 0 {
		t.Fatalf("NewMsgID = %d", id)
	}
	op := r.Record(Op{Proc: "p", Name: "x"})
	if op.IsComm() {
		t.Fatal("plain op must not be a communication")
	}
	send := r.Record(Op{Proc: "p", Name: "send", MsgID: r.NewMsgID(), IsSend: true})
	if !send.IsComm() {
		t.Fatal("send must be a communication")
	}
}

func TestResetKeepsIDsMonotonic(t *testing.T) {
	r := NewRecorder()
	a := r.Record(Op{Proc: "p", Name: "a"})
	r.Reset()
	b := r.Record(Op{Proc: "p", Name: "b"})
	if b.ID <= a.ID {
		t.Fatalf("IDs must stay monotonic across Reset: %d then %d", a.ID, b.ID)
	}
	if r.Len() != 1 {
		t.Fatalf("Reset did not clear ops: %d", r.Len())
	}
}

func TestFiltersAndProcs(t *testing.T) {
	r := NewRecorder()
	r.Record(Op{Proc: "b", Name: "x", Layer: LayerPFS})
	r.Record(Op{Proc: "a", Name: "y", Layer: LayerLocalFS})
	ops := r.Ops()
	if len(ByLayer(ops, LayerPFS)) != 1 || len(Lowermost(ops)) != 1 {
		t.Fatal("layer filters wrong")
	}
	procs := Procs(ops)
	if len(procs) != 2 || procs[0] != "a" {
		t.Fatalf("Procs = %v", procs)
	}
}

func TestKeyAndFormat(t *testing.T) {
	op := &Op{ID: 7, Proc: "storage/1", Name: "pwrite", Path: "/chunks/f1",
		Offset: 128, Size: 64, Tag: "chunk", Layer: LayerLocalFS}
	key := op.Key()
	for _, want := range []string{"pwrite", "/chunks/f1", "off=128", "@storage/1", "[chunk]"} {
		if !strings.Contains(key, want) {
			t.Errorf("Key %q missing %q", key, want)
		}
	}
	out := Format([]*Op{op})
	if !strings.Contains(out, "storage/1:") || !strings.Contains(out, "#7") {
		t.Errorf("Format output wrong:\n%s", out)
	}
}

func TestLayerString(t *testing.T) {
	for l, want := range map[Layer]string{
		LayerApp: "app", LayerIOLib: "iolib", LayerMPI: "mpi-io",
		LayerPFS: "pfs", LayerLocalFS: "localfs", LayerBlock: "block",
	} {
		if l.String() != want {
			t.Errorf("%d.String() = %q", int(l), l.String())
		}
	}
}
