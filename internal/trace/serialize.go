package trace

import (
	"encoding/json"
	"fmt"

	"paracrash/internal/blockdev"
	"paracrash/internal/vfs"
)

// wireOp is the JSON form of an Op. The replayable payload is carried as a
// tagged union so traces round-trip through files, like the per-process
// trace files the paper's tracing stage emits.
type wireOp struct {
	ID       int    `json:"id"`
	Layer    Layer  `json:"layer"`
	Proc     string `json:"proc"`
	Name     string `json:"name"`
	Path     string `json:"path,omitempty"`
	Path2    string `json:"path2,omitempty"`
	Offset   int64  `json:"offset,omitempty"`
	Size     int64  `json:"size,omitempty"`
	Data     []byte `json:"data,omitempty"`
	Meta     bool   `json:"meta,omitempty"`
	Sync     bool   `json:"sync,omitempty"`
	DataSync bool   `json:"datasync,omitempty"`
	FileID   string `json:"file,omitempty"`
	Tag      string `json:"tag,omitempty"`
	Parent   int    `json:"parent"`
	MsgID    int    `json:"msg,omitempty"`
	IsSend   bool   `json:"send,omitempty"`

	PayloadKind string          `json:"pkind,omitempty"` // "vfs" | "block"
	Payload     json.RawMessage `json:"payload,omitempty"`
}

// wireVFSOp mirrors vfs.Op for JSON.
type wireVFSOp struct {
	Kind   vfs.OpKind `json:"kind"`
	Path   string     `json:"path,omitempty"`
	Path2  string     `json:"path2,omitempty"`
	Offset int64      `json:"offset,omitempty"`
	Size   int64      `json:"size,omitempty"`
	Data   []byte     `json:"data,omitempty"`
	Name   string     `json:"name,omitempty"`
	Value  []byte     `json:"value,omitempty"`
}

// wireBlockOp mirrors blockdev.Op for JSON.
type wireBlockOp struct {
	Kind blockdev.OpKind `json:"kind"`
	LBA  int64           `json:"lba,omitempty"`
	Data []byte          `json:"data,omitempty"`
}

// Encode serialises a trace to JSON.
func Encode(ops []*Op) ([]byte, error) {
	out := make([]wireOp, 0, len(ops))
	for _, o := range ops {
		w := wireOp{
			ID: o.ID, Layer: o.Layer, Proc: o.Proc, Name: o.Name,
			Path: o.Path, Path2: o.Path2, Offset: o.Offset, Size: o.Size,
			Data: o.Data, Meta: o.Meta, Sync: o.Sync, DataSync: o.DataSync,
			FileID: o.FileID, Tag: o.Tag, Parent: o.Parent, MsgID: o.MsgID,
			IsSend: o.IsSend,
		}
		switch p := o.Payload.(type) {
		case nil:
		case vfs.Op:
			raw, err := json.Marshal(wireVFSOp{
				Kind: p.Kind, Path: p.Path, Path2: p.Path2, Offset: p.Offset,
				Size: p.Size, Data: p.Data, Name: p.Name, Value: p.Value,
			})
			if err != nil {
				return nil, err
			}
			w.PayloadKind, w.Payload = "vfs", raw
		case blockdev.Op:
			raw, err := json.Marshal(wireBlockOp{Kind: p.Kind, LBA: p.LBA, Data: p.Data})
			if err != nil {
				return nil, err
			}
			w.PayloadKind, w.Payload = "block", raw
		default:
			return nil, fmt.Errorf("trace: encode: op #%d has unsupported payload %T", o.ID, o.Payload)
		}
		out = append(out, w)
	}
	return json.MarshalIndent(out, "", " ")
}

// Decode deserialises a trace produced by Encode.
func Decode(data []byte) ([]*Op, error) {
	var wire []wireOp
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	out := make([]*Op, 0, len(wire))
	for _, w := range wire {
		o := &Op{
			ID: w.ID, Layer: w.Layer, Proc: w.Proc, Name: w.Name,
			Path: w.Path, Path2: w.Path2, Offset: w.Offset, Size: w.Size,
			Data: w.Data, Meta: w.Meta, Sync: w.Sync, DataSync: w.DataSync,
			FileID: w.FileID, Tag: w.Tag, Parent: w.Parent, MsgID: w.MsgID,
			IsSend: w.IsSend,
		}
		switch w.PayloadKind {
		case "":
		case "vfs":
			var p wireVFSOp
			if err := json.Unmarshal(w.Payload, &p); err != nil {
				return nil, fmt.Errorf("trace: decode vfs payload of #%d: %w", w.ID, err)
			}
			o.Payload = vfs.Op{
				Kind: p.Kind, Path: p.Path, Path2: p.Path2, Offset: p.Offset,
				Size: p.Size, Data: p.Data, Name: p.Name, Value: p.Value,
			}
		case "block":
			var p wireBlockOp
			if err := json.Unmarshal(w.Payload, &p); err != nil {
				return nil, fmt.Errorf("trace: decode block payload of #%d: %w", w.ID, err)
			}
			o.Payload = blockdev.Op{Kind: p.Kind, LBA: p.LBA, Data: p.Data}
		default:
			return nil, fmt.Errorf("trace: decode: unknown payload kind %q", w.PayloadKind)
		}
		out = append(out, o)
	}
	return out, nil
}
