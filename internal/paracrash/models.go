// Package paracrash implements the paper's core contribution: golden-master
// crash-consistency testing of a multilayered parallel I/O stack.
//
// Given a traced execution of a test program, the package
//
//  1. builds the cross-layer causality graph (package causality),
//  2. emulates crashes by generating persistence subsets of the
//     lowermost-layer operations (Algorithm 1, emulate.go),
//  3. reconstructs each crash state on server snapshots, runs recovery, and
//     compares the recovered state at each layer against legal states
//     produced by replaying preserved sets allowed by that layer's
//     crash-consistency model (models.go, checker in explore.go),
//  4. attributes inconsistencies to the responsible layer and classifies
//     them as reordering or atomicity violations (classify.go),
//  5. prunes the search space and orders state reconstruction to minimise
//     server restarts (explore.go).
package paracrash

import (
	"encoding/json"
	"fmt"
	"strings"

	"paracrash/internal/causality"
	"paracrash/internal/trace"
)

// isCloseName reports whether an op name is a close at any layer ("close",
// "H5Fclose", "MPI_File_close", "nc_close").
func isCloseName(name string) bool {
	return strings.HasSuffix(strings.ToLower(name), "close")
}

// Model is a crash-consistency model (paper §4.4.2): a rule defining which
// subsets of the operations executed before a crash are legal preserved
// sets.
type Model int

const (
	// ModelStrict requires all operations preceding the crash (and only
	// those) to be preserved; operations in flight at the crash may be
	// fully present or fully absent.
	ModelStrict Model = iota
	// ModelCommit requires operations covered by a commit (fsync) that
	// happened before the crash to be preserved; everything else is free.
	ModelCommit
	// ModelCausal is commit consistency plus downward closure: if an op is
	// preserved, everything that happened-before it is preserved too.
	ModelCausal
	// ModelBaseline only requires updates to files/datasets that were
	// closed (not open for write) at the crash to be preserved.
	ModelBaseline
)

// String returns the model name used in configuration and reports.
func (m Model) String() string {
	switch m {
	case ModelStrict:
		return "strict"
	case ModelCommit:
		return "commit"
	case ModelCausal:
		return "causal"
	case ModelBaseline:
		return "baseline"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// MarshalJSON renders the model by name (machine-readable reports and the
// fuzz-campaign corpus files).
func (m Model) MarshalJSON() ([]byte, error) {
	return []byte(`"` + m.String() + `"`), nil
}

// UnmarshalJSON parses the model by name, inverting MarshalJSON so
// persisted reports round-trip.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseModel(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// ParseModel parses a model name.
func ParseModel(s string) (Model, error) {
	switch s {
	case "strict":
		return ModelStrict, nil
	case "commit":
		return ModelCommit, nil
	case "causal":
		return ModelCausal, nil
	case "baseline":
		return ModelBaseline, nil
	default:
		return 0, fmt.Errorf("paracrash: unknown consistency model %q", s)
	}
}

// LayerOps describes the operations of one checked layer, derived from the
// full trace: the ops themselves, their happens-before order, and the
// mapping from lowermost ops to their layer-level ancestors.
type LayerOps struct {
	G *causality.Graph
	// Ops holds the layer's operations in recording order. Communication
	// ops are excluded.
	Ops []*trace.Op
	// nodeIdx[i] is Ops[i]'s node index in G.
	nodeIdx []int
	// ancestorOf maps a lowermost node index to the position (in Ops) of
	// its layer-level ancestor, or -1.
	ancestorOf map[int]int
	// descendants[i] = lowermost node indices descending from Ops[i].
	descendants [][]int
}

// NewLayerOps extracts the ops of the given layer from the graph. Only ops
// matching keep (nil = all non-communication ops of the layer) become layer
// operations.
func NewLayerOps(g *causality.Graph, layer trace.Layer, keep func(*trace.Op) bool) *LayerOps {
	lo := &LayerOps{G: g, ancestorOf: make(map[int]int)}
	posByNode := map[int]int{}
	for i, o := range g.Ops {
		if o.Layer != layer || o.IsComm() {
			continue
		}
		if keep != nil && !keep(o) {
			continue
		}
		posByNode[i] = len(lo.Ops)
		lo.Ops = append(lo.Ops, o)
		lo.nodeIdx = append(lo.nodeIdx, i)
	}
	lo.descendants = make([][]int, len(lo.Ops))
	// Map every replayable lowermost node to its layer ancestor by walking
	// the Parent chain.
	for i, o := range g.Ops {
		if !o.IsLowermost() || o.Payload == nil {
			continue
		}
		anc := -1
		cur := o
		for cur != nil && cur.Parent >= 0 {
			pi, ok := g.IndexOf(cur.Parent)
			if !ok {
				break
			}
			if pos, ok := posByNode[pi]; ok {
				anc = pos
				break
			}
			cur = g.Ops[pi]
		}
		lo.ancestorOf[i] = anc
		if anc >= 0 {
			lo.descendants[anc] = append(lo.descendants[anc], i)
		}
	}
	return lo
}

// Len returns the number of layer ops.
func (lo *LayerOps) Len() int { return len(lo.Ops) }

// HB reports whether layer op i happens-before layer op j.
func (lo *LayerOps) HB(i, j int) bool {
	return lo.G.HB(lo.nodeIdx[i], lo.nodeIdx[j])
}

// AncestorOf returns the layer-op position owning the lowermost node, or -1.
func (lo *LayerOps) AncestorOf(node int) int {
	a, ok := lo.ancestorOf[node]
	if !ok {
		return -1
	}
	return a
}

// Status classifies each layer op against a lowermost crash front:
// completed (all replayable descendants inside the front), inflight (some
// inside), or unexecuted (none inside; vacuously completed if no
// descendants but recorded before the front's last op — we approximate by
// treating descendant-less ops as completed).
type Status int

const (
	// StatusUnexecuted means the op had not started at the crash front.
	StatusUnexecuted Status = iota
	// StatusInflight means the op was partially executed at the front.
	StatusInflight
	// StatusCompleted means the op fully executed before the front.
	StatusCompleted
)

// StatusAgainst computes each layer op's status against the lowermost front
// (a bitset over graph nodes).
func (lo *LayerOps) StatusAgainst(front causality.Bitset) []Status {
	out := make([]Status, len(lo.Ops))
	for i := range lo.Ops {
		desc := lo.descendants[i]
		if len(desc) == 0 {
			// No storage footprint (e.g. close): completed unless a
			// preceding op of the same layer is not completed — we keep it
			// simple and mark completed; such ops have no replayed effect.
			out[i] = StatusCompleted
			continue
		}
		in, total := 0, 0
		for _, d := range desc {
			total++
			if front.Get(d) {
				in++
			}
		}
		switch {
		case in == 0:
			out[i] = StatusUnexecuted
		case in == total:
			out[i] = StatusCompleted
		default:
			out[i] = StatusInflight
		}
	}
	return out
}

// CommittedSet returns the positions of layer ops that must be preserved
// under commit/causal consistency given the front statuses: ops covered by
// a completed sync op on the same file that happened after them.
func (lo *LayerOps) CommittedSet(status []Status) map[int]bool {
	out := map[int]bool{}
	for s, so := range lo.Ops {
		if !so.Sync || status[s] != StatusCompleted {
			continue
		}
		for i, o := range lo.Ops {
			if i == s || status[i] != StatusCompleted {
				continue
			}
			if o.FileID != "" && o.FileID == so.FileID && lo.HB(i, s) {
				out[i] = true
			}
		}
	}
	return out
}

// ClosedSet returns the positions of layer ops that must be preserved under
// baseline consistency: every op touching a file whose last completed op is
// a close (the file was not open for write at the crash).
func (lo *LayerOps) ClosedSet(status []Status) map[int]bool {
	// Determine, per file, whether it ends closed within the front.
	lastTouch := map[string]int{} // fileID -> last completed op position
	for i, o := range lo.Ops {
		if status[i] != StatusCompleted || o.FileID == "" {
			continue
		}
		lastTouch[o.FileID] = i
	}
	out := map[int]bool{}
	for file, last := range lastTouch {
		if !isCloseName(lo.Ops[last].Name) {
			continue // still open (or never closed): nothing required
		}
		for i, o := range lo.Ops {
			if status[i] == StatusCompleted && o.FileID == file {
				out[i] = true
			}
		}
	}
	return out
}

// PreservedSets enumerates the legal preserved sets of the layer under the
// model for the given front statuses, invoking visit with the positions of
// preserved ops (ascending) until visit returns false or limit sets have
// been produced (limit <= 0 means unlimited).
//
// Required ops depend on the model; optional ops may each be present or
// absent. Strict and causal additionally require downward closure under
// the layer's happens-before order, which the enumeration enforces
// directly (ideals of the candidate poset, with branches that can no
// longer include a required op pruned), so the cost is proportional to the
// number of legal sets rather than 2^n.
func (lo *LayerOps) PreservedSets(m Model, status []Status, limit int, visit func(sel []int) bool) {
	var candidates []int
	required := map[int]bool{}
	switch m {
	case ModelStrict:
		for i := range lo.Ops {
			if status[i] == StatusCompleted {
				required[i] = true
				candidates = append(candidates, i)
			} else if status[i] == StatusInflight {
				candidates = append(candidates, i)
			}
		}
	case ModelCommit, ModelCausal:
		required = lo.CommittedSet(status)
		for i := range lo.Ops {
			if status[i] != StatusUnexecuted {
				candidates = append(candidates, i)
			}
		}
	case ModelBaseline:
		required = lo.ClosedSet(status)
		for i := range lo.Ops {
			if status[i] != StatusUnexecuted {
				candidates = append(candidates, i)
			}
		}
	}
	closed := m == ModelStrict || m == ModelCausal

	// preds[k] = positions (indices into candidates) of candidate
	// predecessors of candidates[k]; candidates are in recording order,
	// which is a topological order.
	preds := make([][]int, len(candidates))
	if closed {
		for k, j := range candidates {
			for k2, i := range candidates {
				if k2 >= k {
					break
				}
				if lo.HB(i, j) {
					preds[k] = append(preds[k], k2)
				}
			}
		}
	}

	in := make([]bool, len(candidates))
	count := 0
	stopped := false
	var rec func(k int)
	rec = func(k int) {
		if stopped {
			return
		}
		if k == len(candidates) {
			out := make([]int, 0, len(candidates))
			for i, c := range candidates {
				if in[i] {
					out = append(out, c)
				}
			}
			count++
			if !visit(out) || (limit > 0 && count >= limit) {
				stopped = true
			}
			return
		}
		c := candidates[k]
		// Include branch: allowed if (for closed models) every candidate
		// predecessor is in.
		canInclude := true
		if closed {
			for _, p := range preds[k] {
				if !in[p] {
					canInclude = false
					break
				}
			}
		}
		if canInclude {
			in[k] = true
			rec(k + 1)
			in[k] = false
			if stopped {
				return
			}
		}
		// Exclude branch: disallowed if c is required, or if excluding c
		// would make a later required op unreachable in a closed model.
		if required[c] {
			return
		}
		if closed {
			for k2 := k + 1; k2 < len(candidates); k2++ {
				if !required[candidates[k2]] {
					continue
				}
				for _, p := range preds[k2] {
					if p == k {
						return // required op depends on c
					}
				}
			}
		}
		rec(k + 1)
	}
	rec(0)
}
