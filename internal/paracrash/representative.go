// Representative-state exploration (Pathfinder-style): most generated
// crash states collapse into a small number of equivalence classes whose
// members are indistinguishable to the checker, so one representative per
// class is reconstructed and judged and its verdict is attributed to every
// member.
//
// The class key is a model-independent pre-check digest of exactly the
// inputs the verdict is a pure function of:
//
//   - the recovered content of the crash state (the StateDigest of what
//     recovery and mount produce from the kept ops — the kept sequence
//     only ever reaches the verdict through this content, so states that
//     recover identically are indistinguishable to every later step),
//   - the PFS-layer status vector of the crash front (legal-state sets are
//     keyed on it, and it is the only way the verdict consults Front), and
//   - the library-layer status vector, when a library is checked.
//
// The recovered content is computed by the emulator's in-memory shadow
// pipeline — apply the kept ops to a scratch restore, run recovery, mount —
// which is memoised per kept set and charges nothing: the Stats model the
// cost of touching a real cluster (server restores, op replays), which
// representative exploration pays once per class, while classification is
// pure user-space emulation. On ARVR/BeeGFS the 105 generated states
// collapse into 15 classes over 6 distinct recovered states.
//
// Attribution keeps the report byte-identical to brute force: a member
// inherits its representative's full checkResult — recovered-state content
// (hence InconsistentState.Key and Bug.CauseKey grouping), consequence and
// legal-set sizes — and only the effort stats differ (members land in
// Stats.StatesDeduped instead of StatesChecked and charge no restores or
// replays). Quarantined verdicts are never recorded as class
// representatives: a state that faulted through every retry says nothing
// about its class, so each member re-attempts on its own and a poisoned
// representative cannot silence a whole class.
package paracrash

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"

	"paracrash/internal/causality"
	"paracrash/internal/faultinject"
	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

// representative reports whether representative-state exploration is on
// (the default; Options.DisableRepresentative falls back to brute force).
func (s *session) representative() bool {
	return !s.opts.DisableRepresentative
}

// classKey computes the crash state's equivalence-class digest: the
// recovered-content digest of the kept ops plus the per-layer status
// vectors of the front. States sharing the key recover to identical
// content and are judged against identical legal-state sets, so they
// share one verdict. An empty key (digest quarantined by persistent
// faults) means the state classifies itself — sound, never wrong.
func (s *session) classKey(cs CrashState) string {
	d, err := s.crashDigest(cs)
	if err != nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(d)
	b.WriteByte('|')
	b.WriteString(s.frontStatus(cs.Front, s.pfsOps, s.frontPFSStatus))
	if s.libOps != nil {
		b.WriteByte('|')
		b.WriteString(s.frontStatus(cs.Front, s.libOps, s.frontLibStatus))
	}
	return b.String()
}

// crashDigest runs the shadow pipeline for a kept set: restore the initial
// snapshot, apply the kept replayable ops in recording order, run recovery
// and mount, and digest the outcome (recovery and mount failures fold their
// deterministic error text in — states that fail differently must not share
// a class, their consequences differ). The pipeline leaves the live cluster
// repairable (legacy: a full snapshot is restored; incremental: mutated
// servers are marked dirty and the next bring restores them from prefix
// roots) and nothing is charged: this is the emulator's in-memory
// classification step, not a modeled cluster touch.
// Injected faults retry under the policy like any other faultable work; an
// exhausted retry budget surfaces as an error and the caller falls back to
// a private class.
func (s *session) crashDigest(cs CrashState) (string, error) {
	var kk string
	if s.incremental() {
		kk = s.recon.keepKey(cs)
	} else {
		kk = cs.Keep.Key()
	}
	if d, ok := s.imageDigests[kk]; ok {
		return d, nil
	}
	var content string
	var err error
	if s.incremental() {
		// O(delta) shadow pipeline: reconstruct the kept set through the
		// reconstructor (per-server order — ops on different servers commute,
		// so the content matches the recording-order replay below) and judge
		// a scratch copy. The reconstruction is uncharged like the legacy
		// branch, and both its prefix roots and the recovery outcome stay
		// cached: when this state misses its class and needs a real verdict
		// next, bring and fsck+mount are both no-ops.
		err = s.withRetry(func() error {
			if berr := s.recon.bring(cs); berr != nil {
				return berr
			}
			o, derr := s.recon.recoveredOutcome(cs)
			if derr != nil {
				return derr
			}
			switch {
			case o.recoverErr != "":
				content = "UNRECOVERABLE: " + o.recoverErr
			case o.mountErr != "":
				content = "UNMOUNTABLE: " + o.mountErr
			default:
				content = o.treeStr
			}
			return nil
		})
	} else {
		saved := s.fs.Snapshot()
		err = s.withRetry(func() error {
			s.fs.Restore(s.initial)
			for _, i := range s.emu.Universe {
				if !cs.Keep.Get(i) {
					continue
				}
				if aerr := s.fs.ApplyLowermost(s.g.Ops[i]); aerr != nil && faultinject.Is(aerr) {
					return aerr
				}
			}
			c, derr := s.recoveredContent()
			if derr != nil {
				return derr
			}
			content = c
			return nil
		})
		s.fs.Restore(saved)
	}
	if err != nil {
		return "", err
	}
	d := StateDigest("crash", content)
	s.imageDigests[kk] = d
	return d, nil
}

// recoveredContent runs recovery and mount on the current cluster state and
// returns its canonical content (deterministic failure text folded in —
// states that fail differently must not share a class). Injected faults
// surface as errors for the retry loop.
func (s *session) recoveredContent() (string, error) {
	if rerr := s.fs.Recover(); rerr != nil {
		if faultinject.Is(rerr) {
			return "", rerr
		}
		return "UNRECOVERABLE: " + rerr.Error(), nil
	}
	tree, merr := s.fs.Mount()
	if merr != nil {
		if faultinject.Is(merr) {
			return "", merr
		}
		return "UNMOUNTABLE: " + merr.Error(), nil
	}
	return tree.Serialize(), nil
}

// frontStatus memoises a layer's status vector per crash front (many states
// share a front, and StatusAgainst walks every descendant list).
func (s *session) frontStatus(front causality.Bitset, lo *LayerOps, memo map[string]string) string {
	fk := front.Key()
	if v, ok := memo[fk]; ok {
		return v
	}
	v := statusKey(lo.StatusAgainst(front))
	memo[fk] = v
	return v
}

// recordClass stores a freshly computed (or resumed) verdict as its class
// representative. Skipped verdicts are never recorded — quarantine must not
// poison a class — and the first verdict wins, matching the visiting order.
func (s *session) recordClass(ckey string, r checkResult) {
	if ckey == "" || r.skipped {
		return
	}
	if _, ok := s.classes[ckey]; !ok {
		s.classes[ckey] = r
	}
}

// attributeClass adopts a representative's verdict for a member state:
// the verdict is cached under the member's own key, the member is marked
// deduplicated (handle charges StatesDeduped instead of StatesChecked),
// and only the legal-set maxima are folded in — no restores or replays.
func (s *session) attributeClass(key string, r checkResult) {
	s.chargeLegal(r)
	s.checkCache[key] = r
	s.dedupKeys[key] = true
}

// LegalMemo shares legal-state sets across runs: the enumerated set for a
// given (scope, layer, model, status vector) is identical for every run of
// the same workload on the same file system, so a fuzz campaign's seven-odd
// explorer runs per cell enumerate each set once. Sets are stored only
// after a successful (unfaulted) enumeration and are read-only afterwards,
// so sharing them across concurrent sessions is safe.
//
// The scope key folds in the file-system name, server count, workload name
// and a trace digest; callers reusing one memo across workloads must ensure
// workload names identify the traced body (the fuzz campaign's generated
// and enumerated program names do).
type LegalMemo struct {
	mu sync.Mutex
	m  map[string]map[string]bool
}

// NewLegalMemo returns an empty cross-run legal-state memo.
func NewLegalMemo() *LegalMemo {
	return &LegalMemo{m: map[string]map[string]bool{}}
}

// Len returns the number of memoised legal-state sets.
func (m *LegalMemo) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

func (m *LegalMemo) get(key string) (map[string]bool, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	set, ok := m.m[key]
	return set, ok
}

func (m *LegalMemo) put(key string, set map[string]bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.m[key]; !ok {
		m.m[key] = set
	}
}

// legalMemoScope derives the session's memo namespace from everything a
// legal-state set depends on besides (layer, model, status): the backend,
// its server count, the workload identity, the traced ops and the
// enumeration cap.
func legalMemoScope(fs pfs.FileSystem, workload string, ops []*trace.Op, opts Options) string {
	h := sha256.New()
	for _, op := range ops {
		fmt.Fprintf(h, "%s|%+v\n", op.Key(), op.Payload)
	}
	return fmt.Sprintf("%s|%d|%s|%x|mls=%d", fs.Name(), len(fs.Procs()), workload, h.Sum(nil)[:8], opts.MaxLegalStates)
}

// memoLookup consults the cross-run memo (nil-safe; "" scope = memo off).
func (s *session) memoLookup(layer string, model Model, statusKey string) (map[string]bool, bool) {
	if s.opts.LegalMemo == nil || s.memoScope == "" {
		return nil, false
	}
	return s.opts.LegalMemo.get(s.memoScope + "|" + layer + "|" + model.String() + "|" + statusKey)
}

// memoStore publishes a successfully enumerated set to the cross-run memo.
func (s *session) memoStore(layer string, model Model, statusKey string, set map[string]bool) {
	if s.opts.LegalMemo == nil || s.memoScope == "" {
		return
	}
	s.opts.LegalMemo.put(s.memoScope+"|"+layer+"|"+model.String()+"|"+statusKey, set)
}
