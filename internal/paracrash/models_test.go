package paracrash

import (
	"fmt"
	"testing"

	"paracrash/internal/causality"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// buildLayerFixture constructs a trace with client-layer ops and lowermost
// descendants:
//
//	client/0: creat f (srv op 1) ; pwrite f (srv op 2) ; fsync f (srv sync) ;
//	          pwrite g (srv op 3) ; close f
func buildLayerFixture() (*causality.Graph, *LayerOps) {
	rec := trace.NewRecorder()
	client := func(name, file string, sync bool) *trace.Op {
		op := rec.Push(trace.Op{Layer: trace.LayerPFS, Proc: "client/0", Name: name, Path: file, FileID: file, Sync: sync})
		// Server-side work carries the explicit caller edge, as the RPC
		// plumbing does (call stacks are per-process).
		rec.Record(trace.Op{Layer: trace.LayerLocalFS, Proc: "srv/0", Name: name + "_low", FileID: file,
			Sync: sync, Parent: op.ID, Payload: vfs.Op{Kind: vfs.OpCreate, Path: file}})
		rec.Pop("client/0")
		return op
	}
	client("creat", "/f", false)
	client("pwrite", "/f", false)
	client("fsync", "/f", true)
	client("pwrite", "/g", false)
	// close has no storage footprint.
	rec.Record(trace.Op{Layer: trace.LayerPFS, Proc: "client/0", Name: "close", Path: "/f", FileID: "/f"})
	g := causality.Build(rec.Ops())
	return g, NewLayerOps(g, trace.LayerPFS, nil)
}

func fullFront(g *causality.Graph) causality.Bitset {
	front := causality.NewBitset(g.Len())
	for i, o := range g.Ops {
		if o.IsLowermost() && o.Payload != nil {
			front.Set(i)
		}
	}
	return front
}

func TestLayerOpsDescendants(t *testing.T) {
	g, lo := buildLayerFixture()
	if lo.Len() != 5 {
		t.Fatalf("layer ops = %d, want 5", lo.Len())
	}
	status := lo.StatusAgainst(fullFront(g))
	for i, st := range status {
		if st != StatusCompleted {
			t.Errorf("op %d status = %v, want completed", i, st)
		}
	}
	// A front missing the last lowermost op leaves its owner in-flight...
	front := fullFront(g)
	members := front.Members()
	front.Clear(members[len(members)-1])
	status = lo.StatusAgainst(front)
	if status[3] != StatusUnexecuted {
		t.Errorf("pwrite g should be unexecuted, got %v", status[3])
	}
	// ...while close (no footprint) stays completed.
	if status[4] != StatusCompleted {
		t.Errorf("close should be completed, got %v", status[4])
	}
}

func TestCommittedSet(t *testing.T) {
	g, lo := buildLayerFixture()
	status := lo.StatusAgainst(fullFront(g))
	committed := lo.CommittedSet(status)
	// creat f and pwrite f precede fsync f on the same file; pwrite g does
	// not.
	if !committed[0] || !committed[1] {
		t.Errorf("ops on /f before fsync must be committed: %v", committed)
	}
	if committed[3] {
		t.Error("pwrite g must not be committed")
	}
}

func TestClosedSet(t *testing.T) {
	g, lo := buildLayerFixture()
	status := lo.StatusAgainst(fullFront(g))
	closed := lo.ClosedSet(status)
	// /f ends with a close: all its ops are required. /g stays open.
	for _, i := range []int{0, 1, 4} {
		if !closed[i] {
			t.Errorf("op %d on closed /f must be required: %v", i, closed)
		}
	}
	if closed[3] {
		t.Error("op on open /g must not be required")
	}
}

func TestPreservedSetCounts(t *testing.T) {
	g, lo := buildLayerFixture()
	status := lo.StatusAgainst(fullFront(g))
	count := func(m Model) int {
		n := 0
		lo.PreservedSets(m, status, 0, func([]int) bool { n++; return true })
		return n
	}
	// Strict: everything completed is required — exactly one set.
	if n := count(ModelStrict); n != 1 {
		t.Errorf("strict sets = %d, want 1", n)
	}
	// Commit: ops 0,1 required; 2 (the fsync), 3, 4 free -> 2^3 = 8.
	if n := count(ModelCommit); n != 8 {
		t.Errorf("commit sets = %d, want 8", n)
	}
	// Causal: committed (0,1) required; the free ops chain under program
	// order (fsync <= pwrite g <= close), so the downward-closed choices
	// are the four prefixes of that chain.
	if n := count(ModelCausal); n != 4 {
		t.Errorf("causal sets = %d, want 4", n)
	}
	// Baseline: every op on the closed /f is required (including its
	// fsync); only pwrite g is free -> 2.
	if n := count(ModelBaseline); n != 2 {
		t.Errorf("baseline sets = %d, want 2", n)
	}
}

func TestPreservedSetsRespectLimit(t *testing.T) {
	g, lo := buildLayerFixture()
	status := lo.StatusAgainst(fullFront(g))
	n := 0
	lo.PreservedSets(ModelCommit, status, 3, func([]int) bool { n++; return true })
	if n != 3 {
		t.Fatalf("limit ignored: %d sets", n)
	}
}

func TestCausalClosureEnforced(t *testing.T) {
	g, lo := buildLayerFixture()
	status := lo.StatusAgainst(fullFront(g))
	lo.PreservedSets(ModelCausal, status, 0, func(sel []int) bool {
		in := map[int]bool{}
		for _, s := range sel {
			in[s] = true
		}
		for _, j := range sel {
			for i := 0; i < lo.Len(); i++ {
				if lo.HB(i, j) && !in[i] {
					t.Errorf("causal set %v not downward closed (missing %d before %d)", sel, i, j)
				}
			}
		}
		return true
	})
	_ = g
}

func TestParseModel(t *testing.T) {
	for _, name := range []string{"strict", "commit", "causal", "baseline"} {
		m, err := ParseModel(name)
		if err != nil || m.String() != name {
			t.Errorf("ParseModel(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ParseModel("nope"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestModeAndKindStrings(t *testing.T) {
	if ModeBrute.String() != "brute-force" || ModePruning.String() != "pruning" || ModeOptimized.String() != "optimized" {
		t.Error("mode strings wrong")
	}
	if BugReordering.String() != "reordering" || BugAtomicity.String() != "atomicity" || BugUnknown.String() != "unknown" {
		t.Error("kind strings wrong")
	}
}

func ExampleModel_String() {
	fmt.Println(ModelCausal)
	// Output: causal
}
