package paracrash

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func ckptAt(t *testing.T) *Checkpoint {
	t.Helper()
	return OpenCheckpoint(filepath.Join(t.TempDir(), "ckpt.jsonl"))
}

// TestCheckpointRoundTrip journals verdicts, flushes, and resumes them from
// a fresh Checkpoint over the same file.
func TestCheckpointRoundTrip(t *testing.T) {
	c := ckptAt(t)
	if got, err := c.resume("cfg"); err != nil || len(got) != 0 {
		t.Fatalf("fresh resume = %v, %v", got, err)
	}
	want := map[string]checkResult{
		"f1|k1": {consistent: true, pfsLegalN: 3, libLegalN: 2},
		"f1|k2": {consistent: false, layer: "PFS", consequence: "data loss", state: "s", pfsLegalN: 1},
		"f2|k1": {consistent: true},
	}
	for k, r := range want {
		if err := c.record(k, r); err != nil {
			t.Fatalf("record(%s): %v", k, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	c2 := OpenCheckpoint(c.Path())
	got, err := c2.resume("cfg")
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed %d records, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("resumed %s = %+v, want %+v", k, got[k], w)
		}
	}
	if c2.Resumed() != 3 || len(c2.Warnings()) != 0 {
		t.Fatalf("Resumed=%d Warnings=%v", c2.Resumed(), c2.Warnings())
	}
}

// TestCheckpointSkippedNotJournaled: quarantined verdicts must never be
// journaled — a resumed run re-attempts them.
func TestCheckpointSkippedNotJournaled(t *testing.T) {
	c := ckptAt(t)
	if _, err := c.resume("cfg"); err != nil {
		t.Fatal(err)
	}
	if err := c.record("f|skip", checkResult{skipped: true, consequence: "quarantined"}); err != nil {
		t.Fatal(err)
	}
	if err := c.record("f|ok", checkResult{consistent: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := OpenCheckpoint(c.Path()).resume("cfg")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["f|skip"]; ok {
		t.Fatal("skipped verdict was journaled")
	}
	if _, ok := got["f|ok"]; !ok {
		t.Fatal("real verdict missing from journal")
	}
}

// TestCheckpointTruncatedTail: chopping bytes off the last record — the
// artifact of dying mid-write when rename atomicity is lost — drops that
// record with a warning and keeps the prefix.
func TestCheckpointTruncatedTail(t *testing.T) {
	c := ckptAt(t)
	if _, err := c.resume("cfg"); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a|1", "a|2", "a|3"} {
		if err := c.record(k, checkResult{consistent: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.Path(), data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := OpenCheckpoint(c.Path())
	got, err := c2.resume("cfg")
	if err != nil {
		t.Fatalf("resume over truncated journal: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("resumed %d records from truncated journal, want the 2 intact ones", len(got))
	}
	warns := strings.Join(c2.Warnings(), "\n")
	if !strings.Contains(warns, "damaged") {
		t.Fatalf("no truncation warning, got %q", warns)
	}
}

// TestCheckpointConfigMismatch: a journal from a different configuration is
// discarded with a warning, never resumed.
func TestCheckpointConfigMismatch(t *testing.T) {
	c := ckptAt(t)
	if _, err := c.resume("cfg-A"); err != nil {
		t.Fatal(err)
	}
	if err := c.record("a|1", checkResult{consistent: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c2 := OpenCheckpoint(c.Path())
	got, err := c2.resume("cfg-B")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || c2.Resumed() != 0 {
		t.Fatalf("resumed %d records across a config change", len(got))
	}
	if warns := strings.Join(c2.Warnings(), "\n"); !strings.Contains(warns, "different configuration") {
		t.Fatalf("no config-mismatch warning, got %q", warns)
	}
}

// TestCheckpointVersionAndHeaderDamage: wrong version or an unparsable
// header both mean a fresh start with a warning, never an error.
func TestCheckpointVersionAndHeaderDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	cases := map[string]string{
		"version": `{"version":99,"config":"cfg"}` + "\n",
		"garbage": "not json at all\n",
		"empty":   "",
		"dupkeys": `{"version":1,"config":"cfg"}` + "\n" + `{"key":"a"}` + "\n" + `{"key":"a"}` + "\n",
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			c := OpenCheckpoint(path)
			got, err := c.resume("cfg")
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if len(c.Warnings()) == 0 {
				t.Fatalf("no warning for %s journal", name)
			}
			if name == "dupkeys" {
				if len(got) != 1 {
					t.Fatalf("dup journal resumed %d records, want 1", len(got))
				}
			} else if len(got) != 0 {
				t.Fatalf("%s journal resumed %d records, want 0", name, len(got))
			}
		})
	}
}

// TestCheckpointAutoFlush: Every bounds how much an unclean death loses —
// the journal must hit disk without an explicit Flush once Every records
// accumulate.
func TestCheckpointAutoFlush(t *testing.T) {
	c := ckptAt(t)
	c.Every = 2
	if _, err := c.resume("cfg"); err != nil {
		t.Fatal(err)
	}
	if err := c.record("a|1", checkResult{consistent: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(c.Path()); !os.IsNotExist(err) {
		t.Fatalf("journal flushed before Every records (stat err = %v)", err)
	}
	if err := c.record("a|2", checkResult{consistent: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(c.Path()); err != nil {
		t.Fatalf("journal not flushed at Every records: %v", err)
	}
}

// TestCheckpointConfigCoversVerdictKnobs: the fingerprint must move when a
// verdict-relevant option moves, and stay put for verdict-transparent ones.
func TestCheckpointConfigCoversVerdictKnobs(t *testing.T) {
	base := DefaultOptions()
	fp := checkpointConfig("ARVR", "beegfs", base)

	changed := DefaultOptions()
	changed.Mode = ModeOptimized
	if checkpointConfig("ARVR", "beegfs", changed) == fp {
		t.Error("fingerprint ignores Mode")
	}
	if checkpointConfig("WAL", "beegfs", base) == fp {
		t.Error("fingerprint ignores workload")
	}
	if checkpointConfig("ARVR", "lustre", base) == fp {
		t.Error("fingerprint ignores file system")
	}

	norep := DefaultOptions()
	norep.DisableRepresentative = true
	if checkpointConfig("ARVR", "beegfs", norep) == fp {
		t.Error("fingerprint ignores DisableRepresentative: representative journals hold one record per class, so a journal written in one mode must not resume a run in the other")
	}

	transparent := DefaultOptions()
	transparent.Workers = 7
	transparent.Retry = RetryPolicy{MaxAttempts: 9}
	if checkpointConfig("ARVR", "beegfs", transparent) != fp {
		t.Error("fingerprint moves on verdict-transparent options (Workers/Retry)")
	}
}
