package paracrash

import (
	"testing"

	"paracrash/internal/causality"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// twoServerTrace builds a cross-server trace with no syncs: two chains of
// two replayable ops, the first chain happening before the second (via a
// message), all on ext4-style data journaling.
func twoServerTrace() *causality.Graph {
	rec := trace.NewRecorder()
	low := func(proc, name string) *trace.Op {
		return rec.Record(trace.Op{Layer: trace.LayerLocalFS, Proc: proc, Name: name,
			Payload: vfs.Op{Kind: vfs.OpCreate, Path: "/" + name}})
	}
	low("a", "a1")
	low("a", "a2")
	m := rec.NewMsgID()
	rec.Record(trace.Op{Layer: trace.LayerLocalFS, Proc: "a", Name: "send", MsgID: m, IsSend: true})
	rec.Record(trace.Op{Layer: trace.LayerLocalFS, Proc: "b", Name: "recv", MsgID: m})
	low("b", "b1")
	low("b", "b2")
	return causality.Build(rec.Ops())
}

func emulatorFor(g *causality.Graph) *Emulator {
	return NewEmulator(g, causality.PersistConfig{
		Journal: map[string]vfs.JournalMode{"a": vfs.JournalData, "b": vfs.JournalData},
	})
}

func TestEmulatorUniverseExcludesComms(t *testing.T) {
	g := twoServerTrace()
	e := emulatorFor(g)
	if len(e.Universe) != 4 {
		t.Fatalf("universe = %d ops, want 4 (comm ops excluded)", len(e.Universe))
	}
}

func TestGenerateEndFrontVictims(t *testing.T) {
	g := twoServerTrace()
	e := emulatorFor(g)
	var states []CrashState
	n := e.Generate(EmulatorConfig{K: 1, FrontMode: FrontEnd}, func(cs CrashState) bool {
		states = append(states, cs)
		return true
	})
	// One normal state + one state per victim whose closure is distinct:
	// victims a1 (drops a1,a2,b1,b2 via persist closure... a1 pb a2 only on
	// the same server; cross-server there is no sync so closure stays
	// within the server), a2, b1, b2.
	if n != len(states) || n == 0 {
		t.Fatalf("generate count mismatch: %d vs %d", n, len(states))
	}
	// The normal state keeps everything.
	if states[0].Keep.Count() != 4 {
		t.Fatalf("normal state keeps %d ops", states[0].Keep.Count())
	}
	// Every state's keep is a subset of its front and closed under
	// persists-before.
	for _, cs := range states {
		if !cs.Front.ContainsAll(cs.Keep) {
			t.Fatal("keep exceeds front")
		}
		for _, i := range cs.Front.Members() {
			if cs.Keep.Get(i) {
				continue
			}
			// i dropped: everything i persists-before must be dropped too.
			for _, j := range cs.Keep.Members() {
				if e.PO.PersistsBefore(i, j) {
					t.Fatalf("state keeps %d although dropped %d persists-before it", j, i)
				}
			}
		}
	}
}

func TestGenerateAllCutsRespectsCausality(t *testing.T) {
	g := twoServerTrace()
	e := emulatorFor(g)
	fronts := map[string]bool{}
	e.Generate(EmulatorConfig{K: 0, FrontMode: FrontAllCuts}, func(cs CrashState) bool {
		fronts[cs.Front.Key()] = true
		// b ops never appear without both a ops (hb through the message).
		hasB := false
		for _, i := range cs.Front.Members() {
			if g.Ops[i].Proc == "b" {
				hasB = true
			}
		}
		if hasB && cs.Front.Count() < 3 {
			t.Fatalf("front %v has b ops without a's prefix", cs.Front.Members())
		}
		return true
	})
	// Cuts: a-prefix 0..2 × b-prefix 0..2 with b>0 requiring a=2:
	// (0,0),(1,0),(2,0),(2,1),(2,2) = 5.
	if len(fronts) != 5 {
		t.Fatalf("distinct fronts = %d, want 5", len(fronts))
	}
}

func TestGenerateDeduplicates(t *testing.T) {
	g := twoServerTrace()
	e := emulatorFor(g)
	seen := map[string]bool{}
	e.Generate(EmulatorConfig{K: 2, FrontMode: FrontAllCuts}, func(cs CrashState) bool {
		key := cs.Front.Key() + "|" + cs.Keep.Key()
		if seen[key] {
			t.Fatal("duplicate (front, keep) emitted")
		}
		seen[key] = true
		return true
	})
}

func TestGenerateMaxStates(t *testing.T) {
	g := twoServerTrace()
	e := emulatorFor(g)
	n := e.Generate(EmulatorConfig{K: 2, FrontMode: FrontAllCuts, MaxStates: 3}, func(CrashState) bool { return true })
	if n != 3 {
		t.Fatalf("MaxStates ignored: %d", n)
	}
}

func TestVictimFilter(t *testing.T) {
	g := twoServerTrace()
	e := emulatorFor(g)
	// Refuse victims on server b: no state may drop a b op while keeping
	// its front position.
	cfg := EmulatorConfig{K: 1, FrontMode: FrontEnd,
		VictimFilter: func(o *trace.Op) bool { return o.Proc != "b" }}
	e.Generate(cfg, func(cs CrashState) bool {
		for _, v := range cs.Victims {
			if g.Ops[v].Proc == "b" {
				t.Fatal("filtered victim selected")
			}
		}
		return true
	})
}

func TestServerOps(t *testing.T) {
	g := twoServerTrace()
	e := emulatorFor(g)
	so := e.ServerOps()
	if len(so["a"]) != 2 || len(so["b"]) != 2 {
		t.Fatalf("ServerOps = %v", so)
	}
}

func TestSyncCoverageBlocksVictims(t *testing.T) {
	// An fsync right after a write makes dropping that write infeasible.
	rec := trace.NewRecorder()
	rec.Record(trace.Op{Layer: trace.LayerLocalFS, Proc: "a", Name: "pwrite", FileID: "f",
		Payload: vfs.Op{Kind: vfs.OpCreate, Path: "/x"}})
	rec.Record(trace.Op{Layer: trace.LayerLocalFS, Proc: "a", Name: "fsync", FileID: "f", Sync: true,
		Payload: vfs.Op{Kind: vfs.OpSync}})
	g := causality.Build(rec.Ops())
	e := NewEmulator(g, causality.PersistConfig{Journal: map[string]vfs.JournalMode{"a": vfs.JournalData}})
	e.Generate(EmulatorConfig{K: 1, FrontMode: FrontEnd}, func(cs CrashState) bool {
		if cs.Front.Get(1) && !cs.Keep.Get(0) {
			t.Fatal("emitted a state losing a synced write")
		}
		return true
	})
}
