// Incremental O(delta) crash-state reconstruction.
//
// The legacy engine rebuilt every crash state from scratch: restore every
// server store from the initial snapshot, then replay every kept lowermost
// op. With the vfs/blockdev substrates now persistent (O(1) snapshot and
// restore), reconstruction can move *between* crash states by undoing and
// applying op deltas instead:
//
//   - Every server's reconstruction target is its kept-op subsequence (the
//     same per-server signature the greedy-TSP ordering minimises distance
//     over). A server whose signature is unchanged from the previous state
//     is not touched at all.
//   - While building a server's kept sequence, the reconstructor captures an
//     O(1) store snapshot after every applied op — a chain of prefix roots.
//     The chain is an undo log in snapshot form: "undoing" the ops that the
//     next crash state drops is restoring the longest prefix root the two
//     states share, and only the ops past that prefix are replayed. Under
//     TSP ordering adjacent states share long prefixes, so most transitions
//     are one O(1) restore plus a handful of op applies.
//
// Charging is decoupled from physical work: chargeState runs an arithmetic
// simulation of the same prefix-cache policy and charges Stats.ServerRestores
// and Stats.OpsReplayed for exactly the restores and op replays an unfaulted
// serial walk would perform. Because the simulation is a pure function of
// the visit sequence, faulted retries, checkpoint resume and parallel merge
// all report byte-identical effort stats — the same invariant the legacy
// engine maintained with per-attempt charge rollback, now by construction.
package paracrash

import (
	"fmt"
	"strconv"
	"strings"

	"paracrash/internal/faultinject"
	"paracrash/internal/pfs"
)

// maxPrefixRoots bounds the per-server prefix-root cache (and, with the
// same policy, the arithmetic simulation's prefix set). Each entry is an
// O(1) structurally-shared snapshot, so the bound exists only to keep
// divergence-path garbage from accumulating on very long runs. When a
// server's cache would overflow mid-build, it is cleared and the build
// restarts from the initial snapshot, preserving the invariant that cached
// prefixes are contiguous from the empty prefix.
const maxPrefixRoots = 4096

// dirtySig marks a server whose physical content is mid-build (or was
// abandoned by a faulted build) and must be restored before reuse.
const dirtySig = "\x00dirty"

// unsetSig marks a server whose physical content has not been brought to
// any crash state yet.
const unsetSig = "\x00unset"

// reconstructor moves the live cluster between crash states in O(delta).
// One reconstructor serves one session (the primary's or a shard worker's
// clone); it owns the per-server physical signature tracking and the
// prefix-root caches.
type reconstructor struct {
	s   *session
	inc pfs.IncrementalStater

	procs     []string         // sorted servers with universe ops
	serverOps map[string][]int // proc -> universe node indices, in order

	initials []pfs.ServerSnap // per-proc initial store snapshot

	// others are the cluster's servers without universe ops: no crash state
	// ever changes them, but recovery and legal-state replay mutate the
	// whole cluster in place, so they need restoring (always to the initial
	// snapshot) when a mutation dirtied them.
	others      []string
	otherSnaps  []pfs.ServerSnap
	othersDirty bool

	// Physical state: what is actually on the cluster.
	phys  []string                    // per-proc signature currently applied
	roots []map[string]pfs.ServerSnap // per-proc prefix key -> captured root

	// Arithmetic simulation: what an unfaulted serial walk would have paid.
	simSig []string          // per-proc simulated signature
	sim    []map[string]bool // per-proc simulated prefix cache

	// keptMemo caches per-Keep kept sequences and their cumulative prefix
	// keys (many states share a Keep via distinct fronts, and the classifier
	// re-probes states repeatedly; building the key strings is the hottest
	// allocation in the whole walk).
	keptMemo map[string][]serverKept

	// outcomes caches the recovery outcome per Keep.Key(): recovery and
	// mount are pure functions of the kept set (the front only selects
	// legal-state sets), so the digest shadow pipeline and real verdicts of
	// states sharing a Keep run fsck+mount exactly once between them.
	outcomes map[string]*recoveredOutcome

	// lastKeep/lastKeepKey memoise the most recent Keep.Key() by slice
	// identity: one state's digest, reconstruction, charging and verdict all
	// key off the same (read-only, never mutated in place) Keep bitset, so
	// the key is encoded once per state instead of once per lookup. Holding
	// the element pointer keeps the bitset alive, so the address cannot be
	// reused for different content while cached.
	lastKeep    *uint64
	lastKeepKey string
}

// keepKey returns cs.Keep.Key(), memoising the most recent bitset.
func (r *reconstructor) keepKey(cs CrashState) string {
	if len(cs.Keep) == 0 {
		return cs.Keep.Key()
	}
	if &cs.Keep[0] == r.lastKeep {
		return r.lastKeepKey
	}
	r.lastKeep = &cs.Keep[0]
	r.lastKeepKey = cs.Keep.Key()
	return r.lastKeepKey
}

// maxOutcomes bounds the recovered-outcome cache; entries hold mounted
// trees, so the bound keeps long runs from accumulating whole namespaces.
const maxOutcomes = 4096

// recoveredOutcome is the deterministic result of running recovery and
// mount on one kept set. Exactly one of recoverErr/mountErr/tree is set;
// the tree is read-only once cached (Mount builds fresh buffers and the
// library recovery tools copy before modifying).
type recoveredOutcome struct {
	recoverErr string // genuine fsck failure, the error text
	mountErr   string // genuine post-fsck mount failure, the error text
	tree       *pfs.Tree
	treeStr    string // memoised tree.Serialize()
}

// serverKept is one server's kept-op subsequence for a Keep, with the
// cumulative prefix keys ("n0," then "n0,n1," ...). keys[k] identifies the
// store state after applying kept[0..k]; the final key (or "" when nothing
// is kept) is the server's reconstruction signature.
type serverKept struct {
	kept []int
	keys []string
}

// sig returns the server's reconstruction signature.
func (sk serverKept) sig() string {
	if len(sk.keys) == 0 {
		return ""
	}
	return sk.keys[len(sk.keys)-1]
}

// newReconstructor builds the incremental reconstruction state for s, or
// returns nil when the initial snapshot lacks a store for some server (an
// external FileSystem keeping state outside vfs/blockdev stores — the
// caller then falls back to the legacy full-restore engine).
func newReconstructor(s *session, inc pfs.IncrementalStater) *reconstructor {
	procs, serverOps := s.emu.serverProcs()
	r := &reconstructor{
		s: s, inc: inc, procs: procs, serverOps: serverOps,
		initials: make([]pfs.ServerSnap, len(procs)),
		phys:     make([]string, len(procs)),
		roots:    make([]map[string]pfs.ServerSnap, len(procs)),
		simSig:   make([]string, len(procs)),
		sim:      make([]map[string]bool, len(procs)),
		keptMemo: map[string][]serverKept{},
	}
	for pi, p := range procs {
		snap, ok := s.initial.ServerSnap(p)
		if !ok {
			return nil
		}
		r.initials[pi] = snap
		r.phys[pi] = unsetSig
		r.roots[pi] = map[string]pfs.ServerSnap{}
		r.simSig[pi] = unsetSig
		r.sim[pi] = map[string]bool{}
	}
	inProcs := map[string]bool{}
	for _, p := range procs {
		inProcs[p] = true
	}
	for _, p := range s.fs.Procs() {
		if inProcs[p] {
			continue
		}
		snap, ok := s.initial.ServerSnap(p)
		if !ok {
			return nil
		}
		r.others = append(r.others, p)
		r.otherSnaps = append(r.otherSnaps, snap)
	}
	r.outcomes = map[string]*recoveredOutcome{}
	return r
}

// markAllDirty records that something mutated the whole cluster in place
// (recovery, legal-state replay): every server must be restored before the
// next crash state is trusted. Each repair is one O(1) restore — from a
// cached prefix root for op servers, from the initial snapshot for the
// rest — so marking is always sound and never more than O(servers) work.
func (r *reconstructor) markAllDirty() {
	for pi := range r.phys {
		r.phys[pi] = dirtySig
	}
	r.othersDirty = true
}

// recoveredOutcome runs recovery and mount on the live cluster — which the
// caller must already have brought to cs — memoising the result per kept
// set. Injected faults surface as errors (nothing is cached); genuine
// recovery or mount failures are themselves deterministic outcomes and are
// cached like successful mounts.
func (r *reconstructor) recoveredOutcome(cs CrashState) (*recoveredOutcome, error) {
	kk := r.keepKey(cs)
	if o, ok := r.outcomes[kk]; ok {
		return o, nil
	}
	// Recovery mutates the server stores in place. Marking every server
	// dirty up front (rather than snapshotting and restoring the whole
	// cluster around the mutation) lets the next bring repair exactly the
	// servers the next state needs, each with one O(1) prefix-root restore —
	// and holds even when a fault or panic aborts recovery mid-way.
	r.markAllDirty()
	o := &recoveredOutcome{}
	if rerr := r.s.fs.Recover(); rerr != nil {
		if faultinject.Is(rerr) {
			return nil, rerr
		}
		o.recoverErr = rerr.Error()
	} else if tree, merr := r.s.fs.Mount(); merr != nil {
		if faultinject.Is(merr) {
			return nil, merr
		}
		o.mountErr = merr.Error()
	} else {
		o.tree = tree
		o.treeStr = tree.Serialize()
	}
	if len(r.outcomes) >= maxOutcomes {
		r.outcomes = map[string]*recoveredOutcome{}
	}
	r.outcomes[kk] = o
	return o, nil
}

// keptOf returns the per-server kept sequences of cs with their cumulative
// prefix keys, memoised per kept set: keptOf(cs)[pi].sig() is the final
// prefix key of server pi's kept sequence, "" when the server keeps
// nothing. The cached slices are read-only.
func (r *reconstructor) keptOf(cs CrashState) []serverKept {
	kk := r.keepKey(cs)
	if ks, ok := r.keptMemo[kk]; ok {
		return ks
	}
	ks := make([]serverKept, len(r.procs))
	for pi, p := range r.procs {
		var b strings.Builder
		sk := &ks[pi]
		for _, n := range r.serverOps[p] {
			if !cs.Keep.Get(n) {
				continue
			}
			sk.kept = append(sk.kept, n)
			b.WriteString(strconv.Itoa(n))
			b.WriteByte(',')
			sk.keys = append(sk.keys, b.String())
		}
	}
	if len(r.keptMemo) >= 1<<15 {
		r.keptMemo = map[string][]serverKept{}
	}
	r.keptMemo[kk] = ks
	return ks
}

// chargeState charges the arithmetic O(delta) cost of visiting cs: one
// restore per server whose signature changes, plus the kept ops past the
// longest simulated cached prefix. It must be called exactly once per
// charged visit (fresh verdict, resumed verdict, board verdict), never for
// cache hits or class attributions — the rule every engine shares.
func (r *reconstructor) chargeState(cs CrashState) {
	ks := r.keptOf(cs)
	for pi := range r.procs {
		if r.simSig[pi] == ks[pi].sig() {
			continue
		}
		kept, keys := ks[pi].kept, ks[pi].keys
		last := 0
		for k := 1; k <= len(kept); k++ {
			if !r.sim[pi][keys[k-1]] {
				break
			}
			last = k
		}
		if len(r.sim[pi])+(len(kept)-last) > maxPrefixRoots {
			r.sim[pi] = map[string]bool{}
			last = 0
		}
		r.s.chargeRestores(1)
		r.s.chargeReplayed(len(kept) - last)
		for k := last; k < len(kept); k++ {
			r.sim[pi][keys[k]] = true
		}
		r.simSig[pi] = ks[pi].sig()
	}
}

// bring physically reconstructs cs on the live cluster, touching only
// servers whose signature differs from what is already applied. Nothing is
// charged here (chargeState carries the accounting); injected faults abort
// with the touched server marked dirty, so a retry re-restores it from a
// cached prefix instead of trusting partial state.
func (r *reconstructor) bring(cs CrashState) error {
	ks := r.keptOf(cs)
	for pi := range r.procs {
		want := ks[pi].sig()
		if r.phys[pi] == want {
			continue
		}
		if err := r.bringServer(ks[pi], pi, want); err != nil {
			return err
		}
	}
	if r.othersDirty {
		for i, p := range r.others {
			if !r.inc.RestoreServerSnap(p, r.otherSnaps[i]) {
				return fmt.Errorf("paracrash: incremental restore of %s failed", p)
			}
		}
		r.othersDirty = false
	}
	return nil
}

// bringServer rebuilds one server: restore the longest cached prefix root
// (the initial snapshot when none is cached) and apply the remaining kept
// ops, capturing a prefix root after each one. Panics from backend apply
// paths are quarantined into errors, leaving the server marked dirty.
func (r *reconstructor) bringServer(sk serverKept, pi int, want string) (err error) {
	defer func() {
		if pv := recover(); pv != nil {
			if fe, ok := faultinject.FromPanic(pv); ok {
				err = fe
			} else {
				err = fmt.Errorf("panic applying ops on %s: %v", r.procs[pi], pv)
			}
		}
	}()
	r.phys[pi] = dirtySig
	p := r.procs[pi]
	kept, keys := sk.kept, sk.keys
	base := r.initials[pi]
	last := 0
	for k := 1; k <= len(kept); k++ {
		snap, ok := r.roots[pi][keys[k-1]]
		if !ok {
			break
		}
		last, base = k, snap
	}
	if len(r.roots[pi])+(len(kept)-last) > maxPrefixRoots {
		// Clearing mid-chain would leave cached suffixes unreachable (the
		// prefix walk above stops at the first gap), so restart from the
		// initial snapshot and rebuild a contiguous chain.
		r.roots[pi] = map[string]pfs.ServerSnap{}
		base, last = r.initials[pi], 0
	}
	if !r.inc.RestoreServerSnap(p, base) {
		return fmt.Errorf("paracrash: incremental restore of %s failed", p)
	}
	for k := last; k < len(kept); k++ {
		if aerr := r.s.fs.ApplyLowermost(r.s.g.Ops[kept[k]]); aerr != nil && faultinject.Is(aerr) {
			return aerr
		}
		// Genuine apply errors mean the op's effect is lost (crash
		// semantics); the prefix root still captures the deterministic
		// "state after attempting ops 0..k".
		if _, ok := r.roots[pi][keys[k]]; !ok {
			if snap, ok := r.inc.CaptureServer(p); ok {
				r.roots[pi][keys[k]] = snap
			}
		}
	}
	r.phys[pi] = want
	return nil
}
