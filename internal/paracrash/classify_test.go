package paracrash

import (
	"reflect"
	"testing"

	"paracrash/internal/causality"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// synthFixture builds a two-server trace whose "storage semantics" are
// decided by a programmable check function, letting the Table 1 truth
// tables be verified directly: op A on server a happens-before op B on
// server b, with no sync (so any subset of {A,B} is a feasible crash
// state).
func synthFixture() (*Emulator, causality.Bitset, int, int) {
	rec := trace.NewRecorder()
	a := rec.Record(trace.Op{Layer: trace.LayerLocalFS, Proc: "a", Name: "opA",
		Payload: vfs.Op{Kind: vfs.OpCreate, Path: "/A"}})
	m := rec.NewMsgID()
	rec.Record(trace.Op{Layer: trace.LayerLocalFS, Proc: "a", Name: "send", MsgID: m, IsSend: true})
	rec.Record(trace.Op{Layer: trace.LayerLocalFS, Proc: "b", Name: "recv", MsgID: m})
	b := rec.Record(trace.Op{Layer: trace.LayerLocalFS, Proc: "b", Name: "opB",
		Payload: vfs.Op{Kind: vfs.OpCreate, Path: "/B"}})
	g := causality.Build(rec.Ops())
	e := NewEmulator(g, causality.PersistConfig{
		Journal: map[string]vfs.JournalMode{"a": vfs.JournalData, "b": vfs.JournalData},
	})
	front := causality.NewBitset(g.Len())
	ai, _ := g.IndexOf(a.ID)
	bi, _ := g.IndexOf(b.ID)
	front.Set(ai)
	front.Set(bi)
	return e, front, ai, bi
}

// checkerFor builds a Check function that fails exactly the listed
// (hasA, hasB) combinations.
func checkerFor(ai, bi int, fail map[[2]bool]bool) func(CrashState) (bool, string) {
	return func(cs CrashState) (bool, string) {
		combo := [2]bool{cs.Keep.Get(ai), cs.Keep.Get(bi)}
		if fail[combo] {
			return false, "synthetic-failure"
		}
		return true, ""
	}
}

func TestClassifyReorderingTruthTable(t *testing.T) {
	// Table 1a: only (A lost, B persisted) fails -> reordering A -> B.
	e, front, ai, bi := synthFixture()
	c := NewClassifier(e, checkerFor(ai, bi, map[[2]bool]bool{{false, true}: true}))
	cs := CrashState{Front: front, Keep: front.Clone(), Victims: []int{ai}}
	cs.Keep.Clear(ai)
	results := c.ClassifyState(cs, nil, "synthetic-failure")
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	pr := results[0]
	if pr.Kind != BugReordering || pr.A != ai || pr.B != bi {
		t.Fatalf("classified %v (%d -> %d), want reordering %d -> %d", pr.Kind, pr.A, pr.B, ai, bi)
	}
}

func TestClassifyAtomicityTruthTable(t *testing.T) {
	// Table 1b: both mixed states fail -> atomicity [A, B].
	e, front, ai, bi := synthFixture()
	c := NewClassifier(e, checkerFor(ai, bi, map[[2]bool]bool{
		{false, true}: true,
		{true, false}: true,
	}))
	cs := CrashState{Front: front, Keep: front.Clone(), Victims: []int{ai}}
	cs.Keep.Clear(ai)
	results := c.ClassifyState(cs, nil, "synthetic-failure")
	if len(results) != 1 || results[0].Kind != BugAtomicity {
		t.Fatalf("results = %+v, want one atomicity pair", results)
	}
}

func TestClassifyNoPairWhenOnlyCutBroken(t *testing.T) {
	// If the state fails regardless of the victim (the cut itself is the
	// problem), no victim-caused pair may be reported.
	e, front, ai, bi := synthFixture()
	c := NewClassifier(e, checkerFor(ai, bi, map[[2]bool]bool{
		{false, true}: true,
		{true, true}:  true, // even the full state fails
	}))
	cs := CrashState{Front: front, Keep: front.Clone(), Victims: []int{ai}}
	cs.Keep.Clear(ai)
	results := c.ClassifyState(cs, nil, "synthetic-failure")
	for _, pr := range results {
		if pr.Kind == BugReordering && pr.A == ai {
			t.Fatalf("victim blamed although the baseline cut fails too: %+v", pr)
		}
	}
}

func TestBugSetDedupAndKnownBad(t *testing.T) {
	e, front, ai, bi := synthFixture()
	_ = e
	set := NewBugSet()
	pr := PairResult{Kind: BugReordering, A: ai, B: bi,
		ASig: "opA()@a", BSig: "opB()@b", BClass: "opB()@b"}
	b1 := set.Add(pr, "pfs", "fsx", "prog", "c")
	b2 := set.Add(pr, "pfs", "fsx", "prog", "c")
	if b1 != b2 || b1.States != 2 {
		t.Fatalf("dedup failed: %+v vs %+v", b1, b2)
	}
	if len(set.Bugs()) != 1 {
		t.Fatalf("Bugs() = %d entries", len(set.Bugs()))
	}
	// KnownBad matches the recorded scenario.
	bad := CrashState{Front: front, Keep: front.Clone()}
	bad.Keep.Clear(ai)
	if !set.KnownBad(bad) {
		t.Fatal("scenario with A lost and B kept should be known-bad")
	}
	good := CrashState{Front: front, Keep: front.Clone()}
	if set.KnownBad(good) {
		t.Fatal("fully persisted state must not be known-bad")
	}
}

func TestBugSetLatestVictimWins(t *testing.T) {
	set := NewBugSet()
	set.Add(PairResult{Kind: BugReordering, A: 3, B: 9, ASig: "early", BSig: "culprit", BClass: "culprit"},
		"pfs", "fs", "p", "c")
	got := set.Add(PairResult{Kind: BugReordering, A: 7, B: 9, ASig: "late", BSig: "culprit", BClass: "culprit"},
		"pfs", "fs", "p", "c")
	if got.OpA != "late" {
		t.Fatalf("representative OpA = %q, want the causally latest victim", got.OpA)
	}
	set.Add(PairResult{Kind: BugReordering, A: 1, B: 9, ASig: "earliest", BSig: "culprit", BClass: "culprit"},
		"pfs", "fs", "p", "c")
	if set.Bugs()[0].OpA != "late" {
		t.Fatalf("earlier victim displaced the representative: %q", set.Bugs()[0].OpA)
	}
}

func TestOpSignatureForms(t *testing.T) {
	op := &trace.Op{Name: "pwrite", Proc: "storage/1", Tag: "chunk"}
	if got := OpSignature(op); got != "pwrite(chunk)@storage#1" {
		t.Errorf("OpSignature = %q", got)
	}
	if got := OpSignatureClass(op); got != "pwrite(chunk)@storage" {
		t.Errorf("OpSignatureClass = %q", got)
	}
	noTag := &trace.Op{Name: "rename", Proc: "meta/0", Path: "/a"}
	if got := OpSignatureClass(noTag); got != "rename(/a)@meta" {
		t.Errorf("path fallback = %q", got)
	}
}

// TestBugSetOrderStableOnSignatureTies pins the report order of bugs whose
// signatures tie: two in-flight atomicity groups can involve identically
// named op pairs and differ only in their consequence, and before the
// consequence tiebreak the order fell back to map iteration — serial runs of
// the same workload produced differently ordered (hence non-byte-identical)
// reports. Found by the fuzz campaign's differential oracle.
func TestBugSetOrderStableOnSignatureTies(t *testing.T) {
	build := func(flip bool) []string {
		a := PairResult{Kind: BugAtomicity, A: 1, B: 2, ASig: "append(x)@s#1", BSig: "append(x)@s#0",
			BClass: "append(x)@s", GroupKey: "inflight|op-a"}
		b := PairResult{Kind: BugAtomicity, A: 3, B: 4, ASig: "append(x)@s#1", BSig: "append(x)@s#0",
			BClass: "append(x)@s", GroupKey: "inflight|op-b"}
		set := NewBugSet()
		if flip {
			set.Add(b, "pfs", "fs", "prog", "consequence B")
			set.Add(a, "pfs", "fs", "prog", "consequence A")
		} else {
			set.Add(a, "pfs", "fs", "prog", "consequence A")
			set.Add(b, "pfs", "fs", "prog", "consequence B")
		}
		var out []string
		for _, bug := range set.Bugs() {
			out = append(out, bug.Signature()+"|"+bug.Consequence)
		}
		return out
	}
	want := build(false)
	for i := 0; i < 50; i++ {
		for _, flip := range []bool{false, true} {
			if got := build(flip); !reflect.DeepEqual(got, want) {
				t.Fatalf("bug order unstable (flip=%v iteration %d):\n got %v\nwant %v", flip, i, got, want)
			}
		}
	}
}

// TestBugSetOrderStableOnFullFieldTies pins the order when even the
// consequence and state count tie and only the group key differs — two
// in-flight groups over creats of different paths can produce bugs whose
// every printed field except Group is identical. The group key, unique
// within a set, is the final tiebreak. Found by the fuzz campaign's
// differential oracle at seed 52 on glusterfs.
func TestBugSetOrderStableOnFullFieldTies(t *testing.T) {
	build := func(flip bool) []string {
		a := PairResult{Kind: BugAtomicity, A: 1, B: 2, ASig: "setxattr(xattr)@brick#0", BSig: "creat(file)@brick#0",
			BClass: "creat(file)@brick", GroupKey: "inflight|creat(/f1)@client/0"}
		b := PairResult{Kind: BugAtomicity, A: 3, B: 4, ASig: "setxattr(xattr)@brick#0", BSig: "creat(file)@brick#0",
			BClass: "creat(file)@brick", GroupKey: "inflight|creat(/dir0/f2)@client/0"}
		set := NewBugSet()
		if flip {
			set.Add(b, "pfs", "fs", "prog", "same consequence")
			set.Add(a, "pfs", "fs", "prog", "same consequence")
		} else {
			set.Add(a, "pfs", "fs", "prog", "same consequence")
			set.Add(b, "pfs", "fs", "prog", "same consequence")
		}
		var out []string
		for _, bug := range set.Bugs() {
			out = append(out, bug.Group)
		}
		return out
	}
	want := build(false)
	for i := 0; i < 50; i++ {
		for _, flip := range []bool{false, true} {
			if got := build(flip); !reflect.DeepEqual(got, want) {
				t.Fatalf("bug order unstable (flip=%v iteration %d):\n got %v\nwant %v", flip, i, got, want)
			}
		}
	}
}

// TestCauseKeyStableAcrossVictimRepresentatives pins that CauseKey does not
// depend on which states a strategy classified: brute force seeing victims
// {inode, log} and pruning seeing only {log} for the same culprit must agree
// on the cause identity. Found by the fuzz campaign's pruning oracle (lustre,
// append+pwrite): the two strategies reported different victim halves of the
// atomicity pair for one underlying bug.
func TestCauseKeyStableAcrossVictimRepresentatives(t *testing.T) {
	culprit := PairResult{Kind: BugAtomicity, B: 9, BSig: "scsi_write(data)@server#0", BClass: "scsi_write(data)@server"}
	brute := NewBugSet()
	a := culprit
	a.A, a.ASig = 3, "scsi_write(inode)@server#0"
	brute.Add(a, "pfs", "fs", "p", "c")
	b := culprit
	b.A, b.ASig = 1, "scsi_write(log)@server#0"
	brute.Add(b, "pfs", "fs", "p", "c")

	pruned := NewBugSet()
	pruned.Add(b, "pfs", "fs", "p", "c")

	bk, pk := brute.Bugs()[0].CauseKey(), pruned.Bugs()[0].CauseKey()
	if bk != pk {
		t.Fatalf("cause identity depends on classified states: brute %q vs pruned %q", bk, pk)
	}
	// In-flight groups key on the parent op, not the representative pair.
	inflight := NewBugSet()
	pr := PairResult{Kind: BugAtomicity, A: 1, B: 2, ASig: "append(x)@s#1", BSig: "append(x)@s#0",
		BClass: "append(x)@s", GroupKey: "inflight|op-a"}
	inflight.Add(pr, "pfs", "fs", "p", "c")
	if got := inflight.Bugs()[0].CauseKey(); got != "atomicity|pfs|inflight|op-a" {
		t.Fatalf("in-flight cause key = %q", got)
	}
}
