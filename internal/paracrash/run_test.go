package paracrash_test

import (
	"strings"
	"testing"

	"paracrash/internal/paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/pfs/beegfs"
	"paracrash/internal/pfs/extfs"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

func runOn(t *testing.T, fs pfs.FileSystem, w paracrash.Workload, opts paracrash.Options) *paracrash.Report {
	t.Helper()
	rep, err := paracrash.Run(fs, nil, w, opts)
	if err != nil {
		t.Fatalf("Run(%s on %s): %v", w.Name(), fs.Name(), err)
	}
	return rep
}

// TestARVRExt4Clean is Figure 8's control: ext4 with data journaling leaves
// no POSIX program in an inconsistent state.
func TestARVRExt4Clean(t *testing.T) {
	for _, w := range workloads.POSIXPrograms() {
		fs := extfs.New(pfs.DefaultConfig(), trace.NewRecorder())
		rep := runOn(t, fs, w, paracrash.DefaultOptions())
		if rep.Inconsistent != 0 {
			t.Errorf("%s on ext4: %d inconsistent states, want 0\nfirst: %+v",
				w.Name(), rep.Inconsistent, rep.States[0])
		}
		if len(rep.Bugs) != 0 {
			t.Errorf("%s on ext4: unexpected bugs: %v", w.Name(), rep.Bugs[0])
		}
	}
}

// TestARVRBeeGFSBugs checks the paper's Figure 2 / Table 3 bugs #1 and #2:
// ARVR on BeeGFS loses data when the storage-server append and the
// metadata-server rename persist out of order.
func TestARVRBeeGFSBugs(t *testing.T) {
	fs := beegfs.New(pfs.DefaultConfig(), trace.NewRecorder())
	rep := runOn(t, fs, workloads.ARVR(), paracrash.DefaultOptions())
	if rep.Inconsistent == 0 {
		t.Fatalf("ARVR on BeeGFS: no inconsistent states found")
	}
	var sawAppendRename, sawRenameUnlink bool
	for _, b := range rep.Bugs {
		t.Logf("bug: %s %s -> %s (%s)", b.Kind, b.OpA, b.OpB, b.Consequence)
		if b.Kind == paracrash.BugReordering {
			if strings.Contains(b.OpA, "append(chunk)@storage") && strings.Contains(b.OpB, "rename(dentry)@meta") {
				sawAppendRename = true
			}
			if strings.Contains(b.OpA, "rename(dentry)@meta") && strings.Contains(b.OpB, "unlink(chunk)@storage") {
				sawRenameUnlink = true
			}
		}
	}
	if !sawAppendRename {
		t.Errorf("missing bug #1: append(chunk)@storage -> rename(dentry)@meta")
	}
	if !sawRenameUnlink {
		t.Errorf("missing bug #2: rename(dentry)@meta -> unlink(chunk)@storage")
	}
}
