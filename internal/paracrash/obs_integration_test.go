package paracrash_test

import (
	"testing"

	"paracrash/internal/exps"
	"paracrash/internal/obs"
	"paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// runWithObs runs ARVR on BeeGFS with an attached observability run.
func runWithObs(t *testing.T, mode paracrash.Mode, workers int) (*paracrash.Report, *obs.Run) {
	t.Helper()
	prog, err := exps.ProgramByName("ARVR")
	if err != nil {
		t.Fatal(err)
	}
	opts := paracrash.DefaultOptions()
	opts.Mode = mode
	opts.Workers = workers
	r := obs.NewRun()
	opts.Obs = r
	rep, err := exps.RunOne("beegfs", prog, opts, workloads.DefaultH5Params(), exps.ConfigFor("beegfs"))
	if err != nil {
		t.Fatalf("RunOne(mode=%s, workers=%d): %v", mode, workers, err)
	}
	return rep, r
}

// TestObsCountersReconcileWithStats is the tentpole's accounting contract:
// the primary counters must equal the report's Stats exactly — for every
// strategy, serial and parallel.
func TestObsCountersReconcileWithStats(t *testing.T) {
	for _, mode := range []paracrash.Mode{paracrash.ModeBrute, paracrash.ModePruning, paracrash.ModeOptimized} {
		for _, workers := range []int{1, 8} {
			t.Run(mode.String()+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				rep, r := runWithObs(t, mode, workers)
				s := r.Summary()
				wantCounters := map[string]int64{
					"states/generated":    int64(rep.Stats.StatesGenerated),
					"states/checked":      int64(rep.Stats.StatesChecked),
					"states/deduped":      int64(rep.Stats.StatesDeduped),
					"states/pruned":       int64(rep.Stats.StatesPruned),
					"restores/servers":    int64(rep.Stats.ServerRestores),
					"ops/replayed":        int64(rep.Stats.OpsReplayed),
					"states/inconsistent": int64(rep.Inconsistent),
					"trace/ops":           int64(rep.Stats.TraceOps),
					"trace/lowermost":     int64(rep.Stats.LowermostOps),
				}
				for name, want := range wantCounters {
					if got := s.Counters[name]; got != want {
						t.Errorf("counter %s = %d, Stats say %d", name, got, want)
					}
				}
				wantGauges := map[string]int64{
					"legal/pfs":      int64(rep.Stats.LegalPFSStates),
					"legal/lib":      int64(rep.Stats.LegalLibStates),
					"states/classes": int64(rep.Stats.StateClasses),
				}
				for name, want := range wantGauges {
					if got := s.Gauges[name]; got != want {
						t.Errorf("gauge %s = %d, Stats say %d", name, got, want)
					}
				}
				// Every pipeline phase must have timed exactly one span.
				phases := []string{obs.PhaseTrace, obs.PhaseGraph, obs.PhaseExplore}
				if mode == paracrash.ModeOptimized || workers != 1 {
					phases = append(phases, obs.PhaseGenerate)
				}
				if workers != 1 {
					phases = append(phases, obs.PhaseMerge)
				}
				byName := map[string]obs.TimerStat{}
				for _, ts := range s.Timers {
					byName[ts.Name] = ts
				}
				for _, ph := range phases {
					if ts, ok := byName["phase/"+ph]; !ok || ts.Count != 1 {
						t.Errorf("phase %s: timer = %+v, want one span", ph, ts)
					}
				}
			})
		}
	}
}

// TestObsPreservesDeterminism pins the acceptance criterion: with metrics
// attached, a Workers=8 run must still produce a report byte-identical to a
// Workers=1 run — and both identical to a run with obs disabled.
func TestObsPreservesDeterminism(t *testing.T) {
	baseFP, _ := runFingerprinted(t, "beegfs", "ARVR", paracrash.ModeBrute, 1) // obs off
	for _, workers := range []int{1, 8} {
		rep, _ := runWithObs(t, paracrash.ModeBrute, workers)
		if fp := exps.ReportFingerprint(rep); fp != baseFP {
			t.Errorf("workers=%d with obs: fingerprint differs from obs-off serial run", workers)
		}
	}
}
