// Parallel crash-state exploration: the generated crash-state list is
// sharded across N workers, each owning a detached clone of the cluster
// (pfs.Cloner) with its own clients, reconstruction scratch state and
// replay/check caches. Workers only *judge* states — every verdict is
// published to a result board keyed by crash-state index. The calling
// goroutine then replays the exact serial exploration (same visiting
// order, same pruning decisions, same classifier probes) but satisfies
// its checks from the board, charging the stats a serial reconstruction
// would have charged. The report is therefore byte-identical to a
// Workers=1 run except for Stats.Duration.
//
// Pruning is speculative on the workers: they consult the shared BugSet
// (mutated only by the merge goroutine, read-locked by workers) and skip
// states that already match a known-bad pair. A worker's pair view at
// skip time is always a subset of the merge's view when the merge reaches
// that state, so a skipped state is one the merge would prune too — and
// if a classifier probe nevertheless needs a skipped state's verdict, the
// merge computes it locally, exactly as the serial engine would.
//
// Everything the workers share — the causality graph, the persist order,
// the emulator universe, the layer-op tables, the initial snapshot, the
// golden states and the Library — is immutable during exploration (see
// the concurrency notes in internal/causality and internal/pfs).
package paracrash

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"paracrash/internal/obs"
	"paracrash/internal/pfs"
	"paracrash/internal/tsp"
)

// resultBoard collects worker verdicts by crash-state index. await blocks
// until the state's worker has published (a verdict or a speculative skip);
// workers themselves never block, so await always terminates. Cancelling
// the board releases every waiter: await then reports "no verdict" for
// unpublished states, and the merge goroutine — which polls the run's
// context between states — exits before asking for another.
type resultBoard struct {
	mu       sync.Mutex
	cond     *sync.Cond
	res      []checkResult
	done     []bool // published at all
	have     []bool // published with a verdict (false = speculatively skipped)
	canceled bool
}

func newResultBoard(n int) *resultBoard {
	b := &resultBoard{res: make([]checkResult, n), done: make([]bool, n), have: make([]bool, n)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// publish records the verdict for state i.
func (b *resultBoard) publish(i int, r checkResult) {
	b.mu.Lock()
	b.res[i], b.done[i], b.have[i] = r, true, true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// skip records that state i's worker pruned it speculatively.
func (b *resultBoard) skip(i int) {
	b.mu.Lock()
	b.done[i] = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// await blocks until state i is published and returns its verdict; ok is
// false when the worker skipped the state (or the board was cancelled
// before the worker reached it).
func (b *resultBoard) await(i int) (checkResult, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for !b.done[i] && !b.canceled {
		b.cond.Wait()
	}
	if !b.done[i] {
		return checkResult{}, false
	}
	return b.res[i], b.have[i]
}

// cancel releases every awaiting goroutine; workers observing the run's
// context stop publishing shortly after.
func (b *resultBoard) cancel() {
	b.mu.Lock()
	b.canceled = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// shardStates deals n state indices round-robin onto w shards, so each
// shard samples the whole front sequence (neighbouring states of one front
// share Front bitsets and differ in few servers, keeping shard-local TSP
// tours short).
func shardStates(n, w int) [][]int {
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	shards := make([][]int, w)
	for i := 0; i < n; i++ {
		shards[i%w] = append(shards[i%w], i)
	}
	return shards
}

// stateKey is the cache/dedup key of a crash state.
func stateKey(cs CrashState) string {
	return cs.Front.Key() + "|" + cs.Keep.Key()
}

// serverProcs returns ServerOps plus the sorted proc names — the
// deterministic per-server iteration order shared by the serial optimized
// walk, the shard workers and the merge accounting.
func (e *Emulator) serverProcs() ([]string, map[string][]int) {
	serverOps := e.ServerOps()
	procs := make([]string, 0, len(serverOps))
	for p := range serverOps {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	return procs, serverOps
}

// stateSigs computes the per-state, per-server signatures of the kept
// subsequence (the distance basis of the incremental reconstruction).
func stateSigs(states []CrashState, procs []string, serverOps map[string][]int) [][]string {
	sigs := make([][]string, len(states))
	for i, cs := range states {
		sigs[i] = make([]string, len(procs))
		for pi, p := range procs {
			var b strings.Builder
			for _, n := range serverOps[p] {
				if cs.Keep.Get(n) {
					fmt.Fprintf(&b, "%d,", n)
				}
			}
			sigs[i][pi] = b.String()
		}
	}
	return sigs
}

// exploreOrder returns the optimized visiting order: the greedy TSP tour
// over servers-changed distance, or recording order when disabled.
func exploreOrder(n, nprocs int, sigs [][]string, disableTSP bool) []int {
	if disableTSP {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}
	dist := func(i, j int) int {
		d := 0
		for pi := 0; pi < nprocs; pi++ {
			if sigs[i][pi] != sigs[j][pi] {
				d++
			}
		}
		return d
	}
	return tsp.GreedyOrder(n, dist)
}

// shardSession builds a worker's private session around a detached clone:
// shared read-only analysis state, private clients and caches. The
// worker's effort lands on worker/-prefixed counters so the primary
// session's counters keep reconciling 1:1 with Stats.
func (s *session) shardSession(fs pfs.FileSystem) *session {
	ws := &session{
		fs: fs, lib: s.lib, opts: s.opts, ctx: s.ctx,
		g: s.g, emu: s.emu, pfsOps: s.pfsOps, libOps: s.libOps,
		initial:        s.initial,
		clients:        map[string]pfs.Client{},
		pfsReplayCache: map[string]string{},
		legalPFSCache:  map[string]map[string]bool{},
		libReplayCache: map[string]string{},
		legalLibCache:  map[string]map[string]bool{},
		checkCache:     map[string]checkResult{},
		classes:        map[string]checkResult{},
		dedupKeys:      map[string]bool{},
		imageDigests:   map[string]string{},
		frontPFSStatus: map[string]string{},
		frontLibStatus: map[string]string{},
		memoScope:      s.memoScope,
		goldenPFS:      s.goldenPFS,
		goldenLib:      s.goldenLib,
		// The resumed map is shared read-only: workers skip journaled states
		// just like the merge does. The checkpoint itself stays with the
		// primary session (only the merge journals fresh verdicts).
		resumed: s.resumed,
	}
	ws.bindObs(s.obs, "worker/")
	if s.recon != nil {
		if inc, ok := fs.(pfs.IncrementalStater); ok {
			// The clone gets its own reconstructor (private physical tracking
			// and prefix-root caches over the clone's stores, worker/-prefixed
			// arithmetic charges) seeded from the same shared initial snapshot.
			ws.recon = newReconstructor(ws, inc)
		}
	}
	return ws
}

// runParallel shards the states across workers and merges their verdicts
// deterministically. skip/handle are the serial per-state closures; bugs is
// shared with the workers for speculative pruning.
func (s *session) runParallel(states []CrashState, cloner pfs.Cloner, workers int, skip func(CrashState) bool, handle func(CrashState), bugs *BugSet) {
	board := newResultBoard(len(states))
	// Cancellation releases the merge goroutine from board.await; the
	// workers notice the context themselves between states.
	stopCancel := context.AfterFunc(s.ctx, board.cancel)
	defer stopCancel()
	shards := shardStates(len(states), workers)
	s.obs.Gauge("workers").Set(int64(len(shards)))

	var wg sync.WaitGroup
	for wi, ids := range shards {
		// Clones are built sequentially here (backend constructors are not
		// concurrency-safe against each other's recorder plumbing).
		clone := cloner.CloneDetached()
		if oa, ok := clone.(pfs.ObsAware); ok {
			oa.SetObs(s.obs)
		}
		if fa, ok := clone.(pfs.FaultAware); ok {
			// Clones share the primary's fault plan: injection decisions are
			// schedule-independent (hash-based), so worker count does not
			// change which points fault.
			fa.SetFaults(s.opts.Faults)
		}
		ws := s.shardSession(clone)
		ws.fs.Recorder().SetEnabled(false)
		// Per-worker shard depth, decremented as the worker publishes; the
		// progress stream shows stragglers directly.
		pending := s.obs.Gauge(fmt.Sprintf("worker/%02d/pending", wi))
		pending.Set(int64(len(ids)))
		wg.Add(1)
		go func(ws *session, ids []int, pending *obs.Gauge) {
			defer wg.Done()
			// Last-resort quarantine: per-attempt recovery inside check
			// should contain every backend panic, but if one escapes, the
			// worker releases its remaining states as "no verdict" (the
			// merge computes them locally) instead of deadlocking the merge
			// on a board entry nobody will publish.
			defer func() {
				if p := recover(); p != nil {
					s.obs.Counter("worker/panics").Inc()
					for _, id := range ids {
						board.skip(id)
					}
				}
			}()
			switch {
			case ws.incremental():
				ws.exploreShardIncremental(states, ids, bugs, board, pending)
			case ws.opts.Mode == ModeOptimized:
				ws.exploreShardOptimized(states, ids, bugs, board, pending)
			default:
				ws.exploreShard(states, ids, bugs, board, pending)
			}
		}(ws, ids, pending)
	}

	// Merge on this goroutine, in the exact serial visiting order. Checks
	// for generated states (and for classifier probes that coincide with
	// generated states) resolve through the board.
	byKey := make(map[string]int, len(states))
	for i, cs := range states {
		byKey[stateKey(cs)] = i
	}
	s.outcomeFor = func(key string) (checkResult, bool) {
		id, ok := byKey[key]
		if !ok {
			return checkResult{}, false
		}
		return board.await(id)
	}
	stopMerge := s.obs.Phase(obs.PhaseMerge)
	if s.opts.Mode == ModeOptimized && s.incremental() {
		// The incremental merge is the serial ordered walk verbatim: check
		// resolves verdicts through outcomeFor (the board) and the primary's
		// reconstructor charges the arithmetic walk, so no merge-specific
		// accounting pass is needed.
		s.visitOrdered(states, skip, handle)
	} else if s.opts.Mode == ModeOptimized {
		s.mergeOptimized(states, skip, handle)
	} else {
		for _, cs := range states {
			if s.ctx.Err() != nil {
				break
			}
			if !skip(cs) {
				handle(cs)
			}
		}
	}
	stopMerge()
	s.outcomeFor = nil
	wg.Wait()
}

// exploreShard judges the worker's states in index order (the brute/pruning
// visiting order), publishing every verdict to the board.
func (ws *session) exploreShard(states []CrashState, ids []int, bugs *BugSet, board *resultBoard, pending *obs.Gauge) {
	for _, id := range ids {
		if ws.ctx.Err() != nil {
			return
		}
		cs := states[id]
		if ws.opts.Mode != ModeBrute && bugs.KnownBad(cs) {
			board.skip(id)
			ws.ctrPruned.Inc()
			pending.Add(-1)
			continue
		}
		board.publish(id, ws.check(cs))
		if ws.dedupKeys[stateKey(cs)] {
			ws.ctrDeduped.Inc()
		} else {
			ws.ctrChecked.Inc()
		}
		pending.Add(-1)
	}
}

// exploreShardIncremental judges the worker's states with the O(delta)
// reconstructor: along a shard-local TSP tour in optimized mode, in index
// order otherwise. All per-state logic lives in ws.check — the worker's
// private reconstructor tracks the clone's physical state, caches prefix
// roots and charges the worker/-prefixed counters arithmetically.
func (ws *session) exploreShardIncremental(states []CrashState, ids []int, bugs *BugSet, board *resultBoard, pending *obs.Gauge) {
	if len(ids) == 0 {
		return
	}
	order := make([]int, len(ids))
	for k := range order {
		order[k] = k
	}
	if ws.opts.Mode == ModeOptimized {
		shard := make([]CrashState, len(ids))
		for k, id := range ids {
			shard[k] = states[id]
		}
		procs, serverOps := ws.emu.serverProcs()
		sigs := stateSigs(shard, procs, serverOps)
		order = exploreOrder(len(shard), len(procs), sigs, ws.opts.DisableTSP)
	}
	// Prime the fresh clone with the full initial snapshot (an O(1) adoption
	// per server): the reconstructor only ever touches servers with universe
	// ops, so servers the traced run never wrote would otherwise keep their
	// empty mkfs state instead of the initial content every crash state
	// shares.
	ws.fs.Restore(ws.initial)
	for _, k := range order {
		if ws.ctx.Err() != nil {
			return
		}
		id := ids[k]
		cs := states[id]
		if ws.opts.Mode != ModeBrute && bugs.KnownBad(cs) {
			board.skip(id)
			ws.ctrPruned.Inc()
			pending.Add(-1)
			continue
		}
		board.publish(id, ws.check(cs))
		if ws.dedupKeys[stateKey(cs)] {
			ws.ctrDeduped.Inc()
		} else {
			ws.ctrChecked.Inc()
		}
		pending.Add(-1)
	}
}

// exploreShardOptimized judges the worker's states along a shard-local TSP
// tour with incremental per-server reconstruction (the serial optimized
// engine, confined to the shard).
func (ws *session) exploreShardOptimized(states []CrashState, ids []int, bugs *BugSet, board *resultBoard, pending *obs.Gauge) {
	if len(ids) == 0 {
		return
	}
	shard := make([]CrashState, len(ids))
	for k, id := range ids {
		shard[k] = states[id]
	}
	procs, serverOps := ws.emu.serverProcs()
	sigs := stateSigs(shard, procs, serverOps)
	order := exploreOrder(len(shard), len(procs), sigs, ws.opts.DisableTSP)

	// Prime the fresh clone with the full initial snapshot: procs only
	// lists servers with universe ops, so servers the traced run never
	// touched would otherwise keep their empty mkfs state instead of the
	// initial content every crash state shares. (The serial walk needs no
	// such step — its live cluster already holds every server's content.)
	ws.fs.Restore(ws.initial)

	// cur charges the worker's effort counters along the unfaulted walk;
	// phys tracks what is physically on the clone (optimizedCheck re-syncs
	// dirty servers after a faulted attempt without extra charges).
	cur := make([]string, len(procs))
	phys := make([]string, len(procs))
	for i := range cur {
		cur[i] = "\x00unset"
		phys[i] = "\x00unset"
	}
	for _, k := range order {
		if ws.ctx.Err() != nil {
			return
		}
		cs := shard[k]
		if bugs.KnownBad(cs) {
			board.skip(ids[k])
			ws.ctrPruned.Inc()
			pending.Add(-1)
			continue
		}
		ckey := ""
		if ws.representative() {
			ckey = ws.classKey(cs)
			if r, hit := ws.classes[ckey]; hit {
				// Class member: publish the shard-local representative's
				// verdict without advancing the incremental tour. The class
				// verdict is byte-identical to what this state would compute
				// (the class key captures every verdict input), so the merge
				// stays deterministic regardless of shard-local class shape.
				board.publish(ids[k], r)
				ws.ctrDeduped.Inc()
				pending.Add(-1)
				continue
			}
		}
		for pi, p := range procs {
			if cur[pi] == sigs[k][pi] {
				continue
			}
			ws.ctrRestores.Inc()
			for _, n := range serverOps[p] {
				if cs.Keep.Get(n) {
					ws.ctrReplayed.Inc()
				}
			}
			cur[pi] = sigs[k][pi]
		}
		r, ok := ws.resumed[stateKey(cs)]
		if !ok {
			r = ws.optimizedCheck(cs, sigs[k], procs, serverOps, phys)
			// In-process workers carry no checkpoint (the merge journals);
			// a fleet shard run owns its journal and records here.
			ws.journal(stateKey(cs), r)
		}
		ws.recordClass(ckey, r)
		board.publish(ids[k], r)
		ws.ctrChecked.Inc()
		pending.Add(-1)
	}
}

// mergeOptimized replays the serial optimized walk — same global TSP order,
// same pruning, same cache discipline — but reconstructs nothing: the
// incremental restore/replay work is charged arithmetically and verdicts
// come from s.outcomeFor (the in-process result board, or a fleet run's
// shard-report lookup), with a local fallback when no verdict was published
// (a worker skipped the state speculatively).
func (s *session) mergeOptimized(states []CrashState, skip func(CrashState) bool, handle func(CrashState)) {
	procs, serverOps := s.emu.serverProcs()
	sigs := stateSigs(states, procs, serverOps)
	order := exploreOrder(len(states), len(procs), sigs, s.opts.DisableTSP)

	cur := make([]string, len(procs))
	for i := range cur {
		cur[i] = "\x00unset"
	}
	for _, idx := range order {
		if s.ctx.Err() != nil {
			return
		}
		cs := states[idx]
		if skip(cs) {
			continue
		}
		key := stateKey(cs)
		ckey := ""
		if s.representative() {
			ckey = s.classKey(cs)
		}
		if ckey != "" {
			if _, ok := s.checkCache[key]; !ok {
				if res, hit := s.classes[ckey]; hit {
					// Class member, mirroring the serial optimized walk: the
					// verdict is attributed, the arithmetic tour does not
					// advance, and the board entry (the worker published one
					// for every state) is simply never awaited.
					s.attributeClass(key, res)
					handle(cs)
					continue
				}
			}
		}
		for pi, p := range procs {
			if cur[pi] == sigs[idx][pi] {
				continue
			}
			s.chargeRestores(1)
			for _, n := range serverOps[p] {
				if cs.Keep.Get(n) {
					s.chargeReplayed(1)
				}
			}
			cur[pi] = sigs[idx][pi]
		}
		if _, ok := s.checkCache[key]; !ok {
			if res, ok := s.resumed[key]; ok {
				// Journaled verdict: the arithmetic walk above already paid
				// the reconstruction, so only the legal-set sizes (or the
				// skip) remain to account.
				if res.skipped {
					s.ctrSkipped.Inc()
				} else {
					s.chargeLegal(res)
				}
				s.checkCache[key] = res
				s.recordClass(ckey, res)
			} else {
				res, published := s.outcomeFor(key)
				if !published {
					res = s.computeScratch(cs) // counts its own quarantines
				} else if res.skipped {
					s.ctrSkipped.Inc()
				}
				s.checkCache[key] = res
				s.recordClass(ckey, res)
				s.chargeLegal(res)
				s.journal(key, res)
			}
		}
		handle(cs)
	}
}

// computeScratch reconstructs and judges a state on the primary cluster —
// with the same bounded retry as the serial engine — without charging
// restore/replay stats (the optimized merge accounts those through its
// incremental simulation).
func (s *session) computeScratch(cs CrashState) checkResult {
	restores, replayed := s.stats.ServerRestores, s.stats.OpsReplayed
	res := s.checkWithRetry(cs)
	// Roll the counters back in lockstep with the stats so the obs totals
	// keep reconciling 1:1 with the reported Stats. (Failed attempts already
	// rolled themselves back; this cancels the successful attempt's charge.)
	s.ctrRestores.Add(int64(restores - s.stats.ServerRestores))
	s.ctrReplayed.Add(int64(replayed - s.stats.OpsReplayed))
	s.stats.ServerRestores, s.stats.OpsReplayed = restores, replayed
	return res
}
