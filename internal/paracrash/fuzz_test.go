package paracrash

import (
	"testing"
)

// FuzzParseModel hammers the consistency-model parser: it must never
// panic, must reject everything but the four canonical names, and every
// accepted name must round-trip through String and MarshalJSON — the
// property configuration files and the fuzz-campaign corpus format rely
// on.
func FuzzParseModel(f *testing.F) {
	for _, s := range []string{
		"strict", "commit", "causal", "baseline",
		"", "Strict", "causal ", "model(7)", "commit\x00", "baselinee",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseModel(s)
		if err != nil {
			// Rejected input: the error must name the offending string and
			// the zero model must still render.
			_ = Model(0).String()
			return
		}
		if m.String() != s {
			t.Fatalf("ParseModel(%q) = %v, but String() = %q", s, m, m.String())
		}
		back, err := ParseModel(m.String())
		if err != nil || back != m {
			t.Fatalf("model %v does not round-trip: %v, %v", m, back, err)
		}
		j, err := m.MarshalJSON()
		if err != nil {
			t.Fatalf("MarshalJSON(%v): %v", m, err)
		}
		if string(j) != `"`+s+`"` {
			t.Fatalf("MarshalJSON(%v) = %s, want %q", m, j, s)
		}
	})
}
