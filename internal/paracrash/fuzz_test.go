package paracrash

import (
	"testing"
)

// FuzzParseModel hammers the consistency-model parser: it must never
// panic, must reject everything but the four canonical names, and every
// accepted name must round-trip through String and MarshalJSON — the
// property configuration files and the fuzz-campaign corpus format rely
// on.
func FuzzParseModel(f *testing.F) {
	for _, s := range []string{
		"strict", "commit", "causal", "baseline",
		"", "Strict", "causal ", "model(7)", "commit\x00", "baselinee",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseModel(s)
		if err != nil {
			// Rejected input: the error must name the offending string and
			// the zero model must still render.
			_ = Model(0).String()
			return
		}
		if m.String() != s {
			t.Fatalf("ParseModel(%q) = %v, but String() = %q", s, m, m.String())
		}
		back, err := ParseModel(m.String())
		if err != nil || back != m {
			t.Fatalf("model %v does not round-trip: %v, %v", m, back, err)
		}
		j, err := m.MarshalJSON()
		if err != nil {
			t.Fatalf("MarshalJSON(%v): %v", m, err)
		}
		if string(j) != `"`+s+`"` {
			t.Fatalf("MarshalJSON(%v) = %s, want %q", m, j, s)
		}
	})
}

// FuzzStateDigest pins the properties representative-state bucketing
// borrows from the digest: determinism, the layer-qualified shape
// ("layer:16-hex"), and discrimination — two (layer, content) pairs
// collide exactly when they are equal, so two crash states with different
// recovered content can never share a class key.
func FuzzStateDigest(f *testing.F) {
	f.Add("pfs", "dir /\nfile /a 3 abc\n", "pfs", "dir /\n")
	f.Add("crash", "dir /\nfile /a 3 abc\n", "crash", "dir /\nfile /a 3 abc\n")
	f.Add("crash", "UNRECOVERABLE: torn journal", "crash", "UNMOUNTABLE: no superblock")
	f.Add("h5", "", "pfs", "")
	f.Add("", "x", "x", "")
	f.Fuzz(func(t *testing.T, layerA, contentA, layerB, contentB string) {
		da := StateDigest(layerA, contentA)
		if da != StateDigest(layerA, contentA) {
			t.Fatalf("StateDigest(%q, %q) not deterministic", layerA, contentA)
		}
		if len(da) != len(layerA)+1+16 || da[:len(layerA)] != layerA || da[len(layerA)] != ':' {
			t.Fatalf("StateDigest(%q, %q) = %q, want layer-prefixed 16-hex", layerA, contentA, da)
		}
		for _, c := range da[len(layerA)+1:] {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("StateDigest(%q, %q) = %q: non-hex digest byte %q", layerA, contentA, da, c)
			}
		}
		db := StateDigest(layerB, contentB)
		if layerA == layerB && contentA == contentB && da != db {
			t.Fatalf("equal inputs digest differently: %q vs %q", da, db)
		}
		if (layerA != layerB || contentA != contentB) && da == db {
			t.Fatalf("distinct inputs (%q,%q) vs (%q,%q) collide on %q", layerA, contentA, layerB, contentB, da)
		}
	})
}
