package paracrash

import (
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/pfs/extfs"
	"paracrash/internal/trace"
)

// TestClientIDParsing pins the malformed-proc-name regression: an ignored
// Sscanf error used to collapse every unparsable proc onto client 0.
func TestClientIDParsing(t *testing.T) {
	good := map[string]int{
		"client/0":  0,
		"client/3":  3,
		"client/12": 12,
	}
	for proc, want := range good {
		id, err := clientID(proc)
		if err != nil {
			t.Errorf("clientID(%q): unexpected error %v", proc, err)
			continue
		}
		if id != want {
			t.Errorf("clientID(%q) = %d, want %d", proc, id, want)
		}
	}
	bad := []string{"client", "client/", "client/x", "client/-1", "client/1x", "client/0.5", ""}
	for _, proc := range bad {
		if id, err := clientID(proc); err == nil {
			t.Errorf("clientID(%q) = %d, want error", proc, id)
		}
	}
}

// TestSessionClientRejectsMalformedProc exercises the plumbed error return:
// a corrupt proc name must fail loudly instead of replaying client 0.
func TestSessionClientRejectsMalformedProc(t *testing.T) {
	conf := pfs.DefaultConfig()
	conf.MetaServers = 0
	conf.StorageServers = 1
	s := &session{
		fs:      extfs.New(conf, trace.NewRecorder()),
		clients: map[string]pfs.Client{},
	}
	c, err := s.client("client/1")
	if err != nil || c == nil {
		t.Fatalf("client(client/1): %v", err)
	}
	if c2, err := s.client("client/1"); err != nil || c2 != c {
		t.Fatal("client endpoints must be cached per proc")
	}
	if _, err := s.client("corrupt-proc"); err == nil {
		t.Fatal("client(corrupt-proc) must error")
	}
}
