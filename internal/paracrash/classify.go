package paracrash

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"paracrash/internal/causality"
	"paracrash/internal/trace"
)

// BugKind distinguishes the paper's two failure patterns (Table 1).
type BugKind int

const (
	// BugUnknown marks inconsistencies whose pairwise pattern could not be
	// isolated (e.g. multi-op interactions beyond the pair tests).
	BugUnknown BugKind = iota
	// BugReordering: OA should persist before OB but the state where OA is
	// lost and OB persisted fails (Table 1a).
	BugReordering
	// BugAtomicity: OA and OB must persist together; either mixed state
	// fails (Table 1b).
	BugAtomicity
)

// String returns the report name of the kind.
func (k BugKind) String() string {
	switch k {
	case BugReordering:
		return "reordering"
	case BugAtomicity:
		return "atomicity"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the kind by name (for machine-readable reports).
func (k BugKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the kind by name, inverting MarshalJSON so
// persisted reports round-trip.
func (k *BugKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "reordering":
		*k = BugReordering
	case "atomicity":
		*k = BugAtomicity
	case "unknown":
		*k = BugUnknown
	default:
		return fmt.Errorf("paracrash: unknown bug kind %q", s)
	}
	return nil
}

// Bug is a deduplicated crash-consistency bug.
type Bug struct {
	Kind BugKind
	// Layer is the I/O layer the bug is attributed to ("pfs" or the
	// library name, e.g. "hdf5").
	Layer string
	// FS is the file system under test.
	FS string
	// Program is the test program that exposed the bug.
	Program string
	// OpA and OpB are the involved operation signatures; for reordering
	// bugs OpA should persist before OpB but was observed lost while OpB
	// survived.
	OpA, OpB string
	// Consequence summarises the observed damage.
	Consequence string
	// States counts the distinct inconsistent crash states deduplicated
	// into this bug.
	States int
	// Group is the BugSet aggregation key the bug was deduplicated under —
	// kind, layer and culprit class, or the in-flight parent operation. It is
	// the only identity stable across exploration strategies (see CauseKey).
	Group string
}

// Signature returns the dedup key (paper §5.2): bugs with the same cause
// share the kind and the normalised operation pair (including the I/O
// library objects carried in tags).
func (b *Bug) Signature() string {
	return fmt.Sprintf("%s|%s|%s|%s", b.Kind, b.Layer, b.OpA, b.OpB)
}

// CauseKey returns the bug's root-cause identity at the granularity the
// exploration strategies agree on: the BugSet aggregation group (kind, layer
// and culprit class, or the in-flight parent operation). The representative
// operation pair is NOT part of the identity — OpA is the causally latest
// victim among the states a strategy happened to classify, and OpB the pair
// of whichever state was aggregated first, so both shift when pruning
// classifies fewer states than brute force (the fuzz campaign's
// pruning-soundness oracle found exactly that on a 2-op lustre workload:
// same group, victim scsi_write(inode) under brute vs scsi_write(log) under
// pruning). For bugs built outside a BugSet the culprit class alone is the
// fallback key.
func (b *Bug) CauseKey() string {
	if b.Group != "" {
		return b.Group
	}
	return fmt.Sprintf("%s|%s|%s", b.Kind, b.Layer, stripServer(b.OpB))
}

// stripServer drops the "#i" server index from an op signature, leaving
// the class signature (see OpSignatureClass).
func stripServer(sig string) string {
	if i := strings.LastIndexByte(sig, '#'); i >= 0 {
		return sig[:i]
	}
	return sig
}

// OpSignature renders an op in the paper's "op(object)@server#i" notation
// for display.
func OpSignature(o *trace.Op) string {
	obj := o.Tag
	if obj == "" {
		obj = o.Path
	}
	return fmt.Sprintf("%s(%s)@%s", o.Name, obj, strings.ReplaceAll(o.Proc, "/", "#"))
}

// OpSignatureClass is OpSignature with the server index stripped — the
// aggregation key (paper §5.2: bugs involving the same operations on the
// same structures share a cause regardless of which server they landed on).
func OpSignatureClass(o *trace.Op) string {
	proc := o.Proc
	if i := strings.IndexByte(proc, '/'); i >= 0 {
		proc = proc[:i]
	}
	obj := o.Tag
	if obj == "" {
		obj = o.Path
	}
	return fmt.Sprintf("%s(%s)@%s", o.Name, obj, proc)
}

// Classifier isolates the failure pattern of an inconsistent crash state by
// re-testing targeted persistence combinations (Table 1), using a
// minimal-culprit search: for a victim operation OA, the culprit OB is the
// causally earliest surviving operation whose presence makes the state
// illegal. The check function reconstructs a crash state and reports
// whether it is consistent.
type Classifier struct {
	G  *causality.Graph
	PO *causality.PersistOrder
	// Check reconstructs and checks a crash state, returning whether it is
	// consistent and (when inconsistent) the canonical content of the
	// recovered state at the failing layer.
	Check func(cs CrashState) (bool, string)
	cache map[string]classifyCheck
}

type classifyCheck struct {
	pass  bool
	state string
}

// NewClassifier returns a classifier over the emulator's graph.
func NewClassifier(e *Emulator, check func(cs CrashState) (bool, string)) *Classifier {
	return &Classifier{G: e.G, PO: e.PO, Check: check, cache: map[string]classifyCheck{}}
}

func (c *Classifier) checkCached(cs CrashState) classifyCheck {
	key := cs.Front.Key() + "|" + cs.Keep.Key()
	if v, ok := c.cache[key]; ok {
		return v
	}
	pass, state := c.Check(cs)
	v := classifyCheck{pass: pass, state: state}
	c.cache[key] = v
	return v
}

// PairResult describes one classified pair.
type PairResult struct {
	Kind BugKind
	A, B int // graph node indices (A dropped / should-persist-first)
	ASig string
	BSig string
	// BClass is the culprit's class signature (server index stripped), the
	// aggregation key.
	BClass string
	// StateKey is the canonical content of the minimal failing state.
	StateKey string
	// GroupKey, when non-empty, overrides the dedup key (used for in-flight
	// atomicity, where every split of the same parent op is one bug).
	GroupKey string
}

// downTo returns the replayable members of the front that are b or strictly
// happen-before b.
func (c *Classifier) downTo(front causality.Bitset, b int) causality.Bitset {
	out := causality.NewBitset(c.G.Len())
	for _, x := range front.Members() {
		if x == b || c.G.HB(x, b) {
			out.Set(x)
		}
	}
	return out
}

// ClassifyState isolates the operation pairs responsible for an
// inconsistent crash state. lo is the LayerOps of the layer the
// inconsistency was attributed to (used to detect in-flight atomicity);
// state is the canonical content of the inconsistent recovered state.
func (c *Classifier) ClassifyState(cs CrashState, lo *LayerOps, state string) []PairResult {
	if len(cs.Victims) == 0 {
		return c.classifyInFlight(cs, lo, state)
	}
	var results []PairResult
	for _, v := range cs.Victims {
		if pr, ok := c.classifyVictim(cs, v); ok {
			results = append(results, pr)
		}
	}
	if len(results) == 0 {
		// No victim-caused pair isolated: the crash front itself may split
		// an operation that should have been atomic.
		return c.classifyInFlight(cs, lo, state)
	}
	return results
}

// classifyVictim finds the minimal culprit for victim v: the causally
// earliest kept op b such that keeping exactly b's causal past (minus v's
// persistence closure) already fails the check. It then distinguishes
// reordering from atomicity by testing the opposite mixed state.
func (c *Classifier) classifyVictim(cs CrashState, v int) (PairResult, bool) {
	vClosure := c.PO.DependsOn(v, cs.Front)
	// Candidates: kept ops causally after v, in recording order (a
	// topological order), so the first failing candidate whose strict
	// predecessors all pass is the minimal culprit.
	var cands []int
	for _, b := range cs.Keep.Members() {
		ob := c.G.Ops[b]
		if !ob.IsLowermost() || ob.Payload == nil || ob.Sync {
			continue
		}
		if c.G.HB(v, b) && !vClosure.Get(b) {
			cands = append(cands, b)
		}
	}
	sort.Ints(cands)

	failed := map[int]bool{}
	culprit := -1
	culpritState := ""
	for _, b := range cands {
		base := c.downTo(cs.Front, b)
		keep := base.Clone()
		keep.Subtract(vClosure)
		res := c.checkCached(CrashState{Front: cs.Front, Keep: keep, Victims: []int{v}})
		if res.pass {
			continue
		}
		// The failure must be caused by losing the victim: if the same cut
		// fails with the victim kept, the cut itself is the problem (an
		// in-flight atomicity handled elsewhere), not this victim.
		if !c.checkCached(CrashState{Front: cs.Front, Keep: base}).pass {
			continue
		}
		failed[b] = true
		culpritState = res.state
		// Minimal: no failing strict predecessor among candidates.
		minimal := true
		for _, b2 := range cands {
			if b2 != b && failed[b2] && c.G.HB(b2, b) {
				minimal = false
				break
			}
		}
		if minimal {
			culprit = b
			break
		}
	}
	if culprit < 0 {
		return PairResult{}, false
	}

	// Distinguish reordering from atomicity: keep v, drop the culprit.
	bClosure := c.PO.DependsOn(culprit, cs.Front)
	s10 := c.downTo(cs.Front, culprit)
	s10.Subtract(bClosure)
	s10Pass := c.checkCached(CrashState{Front: cs.Front, Keep: s10, Victims: []int{culprit}}).pass
	s00 := c.downTo(cs.Front, culprit)
	s00.Subtract(bClosure)
	s00.Subtract(vClosure)
	s00Pass := c.checkCached(CrashState{Front: cs.Front, Keep: s00, Victims: []int{v, culprit}}).pass

	// Paper §5.3: the state with OA lost and OB persisted fails while other
	// combinations pass ⇒ reordering; both mixed states fail with both pure
	// states passing ⇒ atomicity. When s00 is polluted by an unrelated bug
	// (it fails too), the baseline pass (checked above) stands in for the
	// "any other combination passes" condition and we default to
	// reordering, as the paper does.
	kind := BugReordering
	if !s10Pass && s00Pass {
		kind = BugAtomicity
	}
	return PairResult{
		Kind: kind, A: v, B: culprit,
		ASig: OpSignature(c.G.Ops[v]), BSig: OpSignature(c.G.Ops[culprit]),
		BClass:   OpSignatureClass(c.G.Ops[culprit]),
		StateKey: culpritState,
	}, true
}

// classifyInFlight handles victimless inconsistent states: the crash front
// split the storage footprint of a layer operation that should have been
// atomic. The missing and surviving descendants of the in-flight op form an
// atomicity pair.
func (c *Classifier) classifyInFlight(cs CrashState, lo *LayerOps, state string) []PairResult {
	if lo == nil {
		return nil
	}
	status := lo.StatusAgainst(cs.Front)
	var results []PairResult
	for i, st := range status {
		if st != StatusInflight {
			continue
		}
		var present, missing int = -1, -1
		for _, d := range lo.descendants[i] {
			if c.G.Ops[d].Sync {
				continue // syncs carry no state; name the real writes
			}
			if cs.Front.Get(d) {
				if present < 0 || d > present {
					present = d
				}
			} else if missing < 0 || d < missing {
				missing = d
			}
		}
		if present < 0 || missing < 0 {
			continue
		}
		results = append(results, PairResult{
			Kind: BugAtomicity, A: missing, B: present,
			ASig: OpSignature(c.G.Ops[missing]), BSig: OpSignature(c.G.Ops[present]),
			BClass:   OpSignatureClass(c.G.Ops[present]),
			StateKey: state,
			GroupKey: "inflight|" + lo.Ops[i].Key(),
		})
	}
	return results
}

// BugSet aggregates classified pairs into deduplicated bugs. Two pairs
// share a root cause when they have the same kind, layer, culprit operation
// and failing-state content (paper §5.2); the representative victim is the
// causally latest one, which is the common element of every implied
// persistence closure.
//
// BugSet is safe for concurrent use: during a parallel exploration the
// merge goroutine Adds pairs while shard workers consult KnownBad for
// speculative pruning.
type BugSet struct {
	mu    sync.RWMutex
	bugs  map[string]*Bug
	bestA map[string]int
	// knownBad records op-identity pairs already attributed; the pruning
	// exploration mode keys on these (paper §5.3).
	knownBadReorder map[[2]int]bool
	knownBadAtomic  map[[2]int]bool
}

// NewBugSet returns an empty aggregate.
func NewBugSet() *BugSet {
	return &BugSet{
		bugs:            map[string]*Bug{},
		bestA:           map[string]int{},
		knownBadReorder: map[[2]int]bool{},
		knownBadAtomic:  map[[2]int]bool{},
	}
}

// Add records a classified pair for the given program/fs/layer and returns
// the (possibly pre-existing) bug.
func (s *BugSet) Add(pr PairResult, layer, fsName, program, consequence string) *Bug {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pr.Kind == BugReordering {
		s.knownBadReorder[[2]int{pr.A, pr.B}] = true
	} else if pr.Kind == BugAtomicity {
		s.knownBadAtomic[[2]int{pr.A, pr.B}] = true
		s.knownBadAtomic[[2]int{pr.B, pr.A}] = true
	}
	// Group by kind, layer and culprit: every victim whose loss manifests
	// against the same surviving operation shares the root cause, and the
	// causally latest victim (the common element of all implied persistence
	// closures) is the canonical OpA. In-flight atomicity overrides the key
	// with its parent operation.
	bclass := pr.BClass
	if bclass == "" {
		bclass = pr.BSig
	}
	group := fmt.Sprintf("%s|%s|%s", pr.Kind, layer, bclass)
	if pr.GroupKey != "" {
		group = fmt.Sprintf("%s|%s|%s", pr.Kind, layer, pr.GroupKey)
	}
	if old, ok := s.bugs[group]; ok {
		old.States++
		if pr.A > s.bestA[group] {
			s.bestA[group] = pr.A
			old.OpA = pr.ASig
		}
		return old
	}
	b := &Bug{
		Kind: pr.Kind, Layer: layer, FS: fsName, Program: program,
		OpA: pr.ASig, OpB: pr.BSig, Consequence: consequence, States: 1,
		Group: group,
	}
	s.bugs[group] = b
	s.bestA[group] = pr.A
	return b
}

// KnownBad reports whether the crash state matches an already-identified
// scenario: a known reordering pair with OA dropped and OB kept, or a known
// atomic pair split across the persistence boundary.
func (s *BugSet) KnownBad(cs CrashState) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dropped := cs.Front.Clone()
	dropped.Subtract(cs.Keep)
	for pair := range s.knownBadReorder {
		if dropped.Get(pair[0]) && cs.Keep.Get(pair[1]) {
			return true
		}
	}
	for pair := range s.knownBadAtomic {
		if dropped.Get(pair[0]) && cs.Keep.Get(pair[1]) {
			return true
		}
	}
	return false
}

// Bugs returns the deduplicated bugs sorted by signature for stable output.
// Signatures alone can tie — two in-flight atomicity groups may involve
// identically named op pairs and differ only in the observed damage — so the
// sort tiebreaks on consequence, state count and finally the group key, which
// is unique within a set and makes the order total; anything less falls back
// to map iteration and the report is not reproducible (both gaps found by the
// fuzz campaign's serial-vs-parallel differential oracle).
func (s *BugSet) Bugs() []*Bug {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Bug, 0, len(s.bugs))
	for _, b := range s.bugs {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if si, sj := out[i].Signature(), out[j].Signature(); si != sj {
			return si < sj
		}
		if out[i].Consequence != out[j].Consequence {
			return out[i].Consequence < out[j].Consequence
		}
		if out[i].States != out[j].States {
			return out[i].States < out[j].States
		}
		return out[i].Group < out[j].Group
	})
	return out
}
