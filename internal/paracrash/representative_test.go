package paracrash_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/faultinject"
	"paracrash/internal/paracrash"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// reportPair holds one cell's brute-force reference run (representative
// exploration disabled) and the collapsed run under test.
type reportPair struct {
	off, on *paracrash.Report
}

// assertEquivalent is the differential oracle shared by every test below:
// the collapsed report must be byte-identical in shape to brute force
// (same inconsistent states, skip list and bugs — the ReportKernel), and
// the effort stats must reconcile exactly — every generated state lands in
// either StatesChecked or StatesDeduped, pruning decisions are unchanged,
// and the collapsed run never pays more restores than the reference.
func assertEquivalent(t *testing.T, label string, p reportPair) {
	t.Helper()
	if k, b := exps.ReportKernel(p.on), exps.ReportKernel(p.off); k != b {
		t.Errorf("%s: representative report differs from brute force:\n--- brute ---\n%s--- representative ---\n%s", label, b, k)
	}
	son, soff := p.on.Stats, p.off.Stats
	if son.StatesGenerated != soff.StatesGenerated {
		t.Errorf("%s: generated %d states, brute %d", label, son.StatesGenerated, soff.StatesGenerated)
	}
	if son.StatesChecked+son.StatesDeduped != soff.StatesChecked {
		t.Errorf("%s: checked(%d)+deduped(%d) != brute checked(%d)",
			label, son.StatesChecked, son.StatesDeduped, soff.StatesChecked)
	}
	if son.StatesPruned != soff.StatesPruned {
		t.Errorf("%s: pruned %d states, brute %d", label, son.StatesPruned, soff.StatesPruned)
	}
	if soff.StatesDeduped != 0 || soff.StateClasses != 0 {
		t.Errorf("%s: brute reference recorded dedup stats: %d deduped, %d classes",
			label, soff.StatesDeduped, soff.StateClasses)
	}
	if son.ServerRestores > soff.ServerRestores {
		t.Errorf("%s: representative restored %d servers, brute only %d",
			label, son.ServerRestores, soff.ServerRestores)
	}
	if son.StatesDeduped > 0 && son.StateClasses == 0 {
		t.Errorf("%s: %d states deduped but no classes reported", label, son.StatesDeduped)
	}
}

// namedPair runs a named program cell twice through exps (which wires I/O
// libraries for the H5 workloads) with representative exploration off and on.
func namedPair(t *testing.T, fsName, progName string, mode paracrash.Mode, workers int) reportPair {
	t.Helper()
	prog, err := exps.ProgramByName(progName)
	if err != nil {
		t.Fatal(err)
	}
	var p reportPair
	for _, disable := range []bool{true, false} {
		opts := paracrash.DefaultOptions()
		opts.Mode = mode
		opts.Workers = workers
		opts.DisableRepresentative = disable
		rep, err := exps.RunOne(fsName, prog, opts, workloads.DefaultH5Params(), exps.ConfigFor(fsName))
		if err != nil {
			t.Fatalf("%s/%s disable=%v: %v", fsName, progName, disable, err)
		}
		if disable {
			p.off = rep
		} else {
			p.on = rep
		}
	}
	return p
}

// generatedPair is namedPair for fuzz-style workloads (generated or
// enumerated programs), run through the engine directly with no library.
func generatedPair(t *testing.T, fsName string, w *workloads.Program, mode paracrash.Mode) reportPair {
	t.Helper()
	var p reportPair
	for _, disable := range []bool{true, false} {
		fs, err := exps.NewFS(fsName, exps.ConfigFor(fsName), trace.NewRecorder())
		if err != nil {
			t.Fatal(err)
		}
		opts := paracrash.DefaultOptions()
		opts.Mode = mode
		opts.DisableRepresentative = disable
		rep, err := paracrash.Run(fs, nil, w, opts)
		if err != nil {
			t.Fatalf("%s/%s disable=%v: %v", fsName, w.Name(), disable, err)
		}
		if disable {
			p.off = rep
		} else {
			p.on = rep
		}
	}
	return p
}

// TestRepresentativeDifferentialNamed is the headline harness: for every
// backend (with its bench workload, covering both the POSIX and the HDF5
// library families) the representative run must be report-equivalent to
// brute force. The ARVR/BeeGFS cell additionally pins the collapse the
// committed bench relies on: an order-of-magnitude drop in checked states.
func TestRepresentativeDifferentialNamed(t *testing.T) {
	cells := []struct {
		fs, prog string
		mode     paracrash.Mode
		workers  int
	}{
		{"beegfs", "ARVR", paracrash.ModeBrute, 1},
		{"beegfs", "ARVR", paracrash.ModeBrute, 4},
		{"beegfs", "ARVR", paracrash.ModePruning, 1},
		{"beegfs", "ARVR", paracrash.ModeOptimized, 1},
		{"orangefs", "CR", paracrash.ModePruning, 1},
		{"glusterfs", "WAL", paracrash.ModePruning, 1},
		{"gpfs", "H5-create", paracrash.ModePruning, 1},
		{"lustre", "H5-resize", paracrash.ModePruning, 1},
		{"ext4", "CR", paracrash.ModePruning, 1},
	}
	for _, c := range cells {
		label := c.fs + "/" + c.prog + "/" + c.mode.String()
		p := namedPair(t, c.fs, c.prog, c.mode, c.workers)
		assertEquivalent(t, label, p)
		if c.fs == "beegfs" && c.mode == paracrash.ModeBrute {
			s := p.on.Stats
			if s.StatesChecked*5 > s.StatesGenerated {
				t.Errorf("%s: only collapsed %d -> %d states, want >= 5x", label, s.StatesGenerated, s.StatesChecked)
			}
			if s.ServerRestores*5 > p.off.Stats.ServerRestores {
				t.Errorf("%s: restores %d vs brute %d, want >= 5x drop", label, s.ServerRestores, p.off.Stats.ServerRestores)
			}
		}
	}
}

// TestRepresentativeDifferentialFuzz replays the fuzz campaign's workload
// families — generated programs (seed order) and the length-1 bounded
// enumeration — through the differential oracle on the two cheapest
// backends, mirroring the campaign smoke cell grid.
func TestRepresentativeDifferentialFuzz(t *testing.T) {
	var progs []*workloads.Program
	for seed := int64(0); seed < 3; seed++ {
		progs = append(progs, workloads.Generate(workloads.DefaultGenConfig(seed)))
	}
	ec := workloads.DefaultEnumConfig()
	ec.MaxOps = 1
	workloads.Enumerate(ec, func(p *workloads.Program) bool {
		progs = append(progs, p)
		return true
	})
	for _, fsName := range []string{"ext4", "glusterfs"} {
		for _, w := range progs {
			label := fsName + "/" + w.Name()
			assertEquivalent(t, label, generatedPair(t, fsName, w, paracrash.ModeBrute))
		}
	}
}

// TestRepresentativeFaultTransparency checks that fault injection does not
// perturb the collapsed run: with healing quotas (the default MaxPerPoint)
// and retries, the faulted representative report is byte-identical to the
// unfaulted representative report, and still kernel-equivalent to the
// unfaulted brute-force reference. The class digests are recomputed under
// fire, so this exercises the shadow pipeline's retry path directly.
func TestRepresentativeFaultTransparency(t *testing.T) {
	for _, mode := range []paracrash.Mode{paracrash.ModeBrute, paracrash.ModeOptimized} {
		clean := paracrash.DefaultOptions()
		clean.Mode = mode
		cleanFP, err := runWithOpts(t, nil, clean)
		if err != nil {
			t.Fatal(err)
		}
		bref := clean
		bref.DisableRepresentative = true
		prog, err := exps.ProgramByName("ARVR")
		if err != nil {
			t.Fatal(err)
		}
		brute, err := exps.RunOne("beegfs", prog, bref, workloads.DefaultH5Params(), exps.ConfigFor("beegfs"))
		if err != nil {
			t.Fatal(err)
		}
		faulted := clean
		faulted.Retry = paracrash.RetryPolicy{MaxAttempts: 4, Backoff: time.Microsecond}
		faulted.Faults = faultinject.New(faultinject.Config{Seed: 11, Rate: 0.25})
		faultedFP, err := runWithOpts(t, nil, faulted)
		if err != nil {
			t.Fatal(err)
		}
		if faultedFP != cleanFP {
			t.Errorf("mode %s: faulted representative run diverged from the unfaulted one", mode)
		}
		rep, err := exps.RunOne("beegfs", prog, faulted, workloads.DefaultH5Params(), exps.ConfigFor("beegfs"))
		if err != nil {
			t.Fatal(err)
		}
		if exps.ReportKernel(rep) != exps.ReportKernel(brute) {
			t.Errorf("mode %s: faulted representative run not kernel-equivalent to brute force", mode)
		}
	}
}

// TestRepresentativeQuarantineDoesNotPoisonClass drives every apply into a
// hard fault (no healing, retries exhausted). Quarantine cannot poison a
// class for two reasons this test pins end to end: a skipped verdict is
// never recorded as a representative, and the shadow digest replays the
// same kept ops as reconstruct, so a state whose reconstruction hard-faults
// never obtains a class key and cannot silently inherit a healthy verdict.
// The observable: the skip list and the whole report kernel match brute
// force exactly (the only attributed states are the zero-apply ones that
// genuinely succeed in both runs).
func TestRepresentativeQuarantineDoesNotPoisonClass(t *testing.T) {
	hard := func(disable bool) *paracrash.Report {
		prog, err := exps.ProgramByName("ARVR")
		if err != nil {
			t.Fatal(err)
		}
		opts := paracrash.DefaultOptions()
		opts.DisableRepresentative = disable
		opts.Retry = paracrash.RetryPolicy{MaxAttempts: 2, Backoff: time.Microsecond}
		opts.Faults = faultinject.New(faultinject.Config{
			Seed: 3, Rate: 1, Kinds: []faultinject.Kind{faultinject.KindErr},
			Sites: []string{"pfs/apply"}, MaxPerPoint: 1 << 30,
		})
		rep, err := exps.RunOne("beegfs", prog, opts, workloads.DefaultH5Params(), exps.ConfigFor("beegfs"))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	on, off := hard(false), hard(true)
	if len(on.Skipped) == 0 {
		t.Fatal("hard faults quarantined nothing — the test lost its teeth")
	}
	assertEquivalent(t, "hard-faults", reportPair{off: off, on: on})
}

// TestRepresentativeChaosResume kills a representative run mid-class —
// with Checkpoint.Every=1 every kill lands between a representative's
// journal record and its members' attribution — and resumes until it
// completes. The journal holds one record per class (members are never
// journaled), so the resumed run must re-record each class from the
// replayed representative and attribute members exactly like an
// uninterrupted run: the final report must be byte-identical to a clean
// representative run, and kernel-identical to brute force.
func TestRepresentativeChaosResume(t *testing.T) {
	for _, workers := range []int{1, 4} {
		base := paracrash.DefaultOptions()
		base.Workers = workers
		baseFP, err := runWithOpts(t, nil, base)
		if err != nil {
			t.Fatal(err)
		}
		bref := base
		bref.DisableRepresentative = true
		bruteFP, err := runWithOpts(t, nil, bref)
		if err != nil {
			t.Fatal(err)
		}
		if baseFP == bruteFP {
			t.Fatal("representative run indistinguishable from brute force; the chaos test would prove nothing")
		}

		path := filepath.Join(t.TempDir(), "ckpt.jsonl")
		deadline := 2 * time.Millisecond
		kills := 0
		var finalFP string
		for attempt := 0; ; attempt++ {
			if attempt > 60 {
				t.Fatal("chaos run did not converge in 60 kill/resume rounds")
			}
			opts := paracrash.DefaultOptions()
			opts.Workers = workers
			opts.Checkpoint = paracrash.OpenCheckpoint(path)
			opts.Checkpoint.Every = 1
			opts.Faults = faultinject.New(faultinject.Config{Seed: 13, Rate: 0.25})

			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			fp, err := runWithOpts(t, ctx, opts)
			cancel()
			if err == nil {
				finalFP = fp
				break
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("chaos round %d died with a non-deadline error: %v", attempt, err)
			}
			kills++
			deadline += deadline / 2
		}
		if finalFP != baseFP {
			t.Errorf("workers=%d: resumed representative report differs from the uninterrupted one after %d kills:\n--- clean ---\n%s--- chaos ---\n%s",
				workers, kills, baseFP, finalFP)
		}
	}
}
