package paracrash

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"paracrash/internal/causality"
	"paracrash/internal/faultinject"
	"paracrash/internal/obs"
	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

// Workload is a test program: a preamble that builds the initial storage
// state (untraced) and the traced test body (paper §5: "a preamble program
// that initializes the storage system and a test program that runs next").
type Workload interface {
	Name() string
	// Preamble initialises the storage system; it runs with tracing off.
	Preamble(fs pfs.FileSystem) error
	// Run executes the traced test body.
	Run(fs pfs.FileSystem) error
}

// Library abstracts the parallel I/O library layer (HDF5, NetCDF) for
// cross-layer checking.
type Library interface {
	// Name returns the library name used in attribution ("hdf5", "netcdf").
	Name() string
	// IsLibOp selects this library's operations among LayerIOLib trace ops.
	IsLibOp(o *trace.Op) bool
	// Seed captures the library's initial on-PFS state (after the
	// preamble) so Replay can start from it.
	Seed(t *pfs.Tree) error
	// StateFromTree parses the library's files out of a mounted PFS tree
	// and returns a canonical logical state. An error means the state is
	// unreadable (corrupt).
	StateFromTree(t *pfs.Tree) (string, error)
	// RecoverTree applies the library's recovery tools (e.g. h5clear) to
	// the tree, returning the repaired tree and whether anything changed.
	RecoverTree(t *pfs.Tree) (*pfs.Tree, bool)
	// Replay re-executes the given library ops on a fresh copy of the
	// seeded state and returns the canonical logical state.
	Replay(ops []*trace.Op) (string, error)
}

// Mode selects the crash-state exploration strategy (paper §5 and §6.4).
type Mode int

const (
	// ModeBrute reconstructs and checks every generated crash state.
	ModeBrute Mode = iota
	// ModePruning skips crash states matching already-identified bug
	// scenarios and applies semantic (object-map) victim pruning.
	ModePruning
	// ModeOptimized adds incremental crash-state reconstruction with
	// TSP-ordered visiting on top of pruning.
	ModeOptimized
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeBrute:
		return "brute-force"
	case ModePruning:
		return "pruning"
	case ModeOptimized:
		return "optimized"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// MarshalJSON renders the mode by name.
func (m Mode) MarshalJSON() ([]byte, error) {
	return []byte(`"` + m.String() + `"`), nil
}

// UnmarshalJSON parses the mode by name, inverting MarshalJSON so
// persisted reports round-trip.
func (m *Mode) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseMode(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// ParseMode parses an exploration-strategy name ("brute" and "brute-force"
// are synonyms).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "brute", "brute-force":
		return ModeBrute, nil
	case "pruning":
		return ModePruning, nil
	case "optimized":
		return ModeOptimized, nil
	default:
		return 0, fmt.Errorf("paracrash: unknown exploration mode %q", s)
	}
}

// Options configures a testing run.
type Options struct {
	Mode Mode
	// PFSModel is the consistency model the PFS is tested against (the
	// paper uses causal for every PFS).
	PFSModel Model
	// LibModel is the model the I/O library is tested against (the paper
	// uses baseline and causal).
	LibModel Model
	// Emulator bounds (victims, fronts, caps).
	Emulator EmulatorConfig
	// MaxLayerOps guards the preserved-set enumeration (commit/baseline
	// enumerate subsets of the unconstrained ops).
	MaxLayerOps int
	// MaxLegalStates caps legal-state enumeration per crash front.
	MaxLegalStates int

	// Workers is the number of parallel exploration workers. The generated
	// crash-state list is sharded round-robin across the workers, each
	// owning a detached clone of the cluster (see pfs.Cloner) with private
	// clients and caches; their verdicts are merged on the calling
	// goroutine in the exact serial visiting order, so the report is
	// byte-identical to a Workers=1 run except for Stats.Duration.
	// 0 (the zero value) means runtime.NumCPU(); 1 forces today's serial
	// engine. File systems that do not implement pfs.Cloner always run
	// serially regardless of this setting.
	Workers int

	// Ablation switches (the design choices measured by the Ablation
	// benchmarks; both default to the paper's behaviour).
	//
	// DisableSemanticPruning turns off the object-map victim filter in the
	// pruning/optimized modes (paper §5.3's "semantic information" rule).
	DisableSemanticPruning bool
	// DisableTSP makes the optimized mode visit crash states in recording
	// order instead of the greedy travelling-salesman tour.
	DisableTSP bool
	// DisableRepresentative turns off representative-state exploration
	// (see representative.go) and falls back to checking every crash state
	// brute-force. The default (off) groups states into equivalence classes
	// by a pre-check digest, checks one representative per class and
	// attributes its verdict to every member, so the report stays
	// byte-identical while Stats.StatesChecked collapses to the class count.
	DisableRepresentative bool
	// DisableIncremental turns off O(delta) incremental reconstruction and
	// falls back to the legacy engine: every checked state restores all
	// servers from the initial snapshot and replays its full kept sequence.
	// The default (off) moves between crash states by restoring cached
	// per-server prefix roots (O(1) structurally-shared snapshots) and
	// replaying only the delta ops, charging Stats.ServerRestores and
	// Stats.OpsReplayed for exactly that smaller effort. Reports are
	// byte-identical either way; only effort stats and wall time differ.
	// File systems that do not implement pfs.IncrementalStater always use
	// the legacy engine regardless of this setting.
	DisableIncremental bool

	// LegalMemo, when non-nil, shares legal-state sets across runs of the
	// same workload on the same file system (see LegalMemo); the fuzz
	// campaign threads one memo through every explorer run of a cell.
	LegalMemo *LegalMemo

	// Obs, when non-nil, receives phase timings, counters, gauges and
	// progress events for the run (see internal/obs). Observability is
	// strictly passive: it never alters visiting order, pruning or caching,
	// so the report stays byte-identical with metrics on or off.
	Obs *obs.Run

	// Retry bounds the engine's fault recovery: how often a crash state
	// whose reconstruction or verdict failed (injected fault, backend
	// panic) is re-attempted before it is quarantined as a Skipped report
	// entry. The zero value means 3 attempts with a 2ms initial backoff.
	Retry RetryPolicy

	// Faults, when non-nil, arms the deterministic fault plane: the plan is
	// installed on the primary cluster, every worker clone and the emulator
	// once tracing has finished (the traced execution itself never faults —
	// the plane targets the checker's reconstruction machinery). Because
	// injection is schedule-independent and bounded (see internal/
	// faultinject), a run whose faults all heal within Retry.MaxAttempts
	// produces a report byte-identical to an unfaulted run.
	Faults *faultinject.Plan

	// Checkpoint, when non-nil, journals every completed crash-state
	// verdict to a versioned on-disk journal and, when the journal already
	// holds verdicts from an interrupted run with the same configuration,
	// resumes from them: journaled states are charged but not recomputed.
	Checkpoint *Checkpoint
}

// RetryPolicy bounds per-crash-state fault recovery.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per crash state
	// (0 = default 3, i.e. two retries).
	MaxAttempts int
	// Backoff is the sleep before the first retry, doubling per further
	// retry (0 = default 2ms).
	Backoff time.Duration
}

// attempts resolves the attempt budget.
func (r RetryPolicy) attempts() int {
	if r.MaxAttempts <= 0 {
		return 3
	}
	return r.MaxAttempts
}

// backoffAt returns the sleep before attempt a (a >= 1; attempt 0 never
// sleeps): exponential with attempt number.
func (r RetryPolicy) backoffAt(a int) time.Duration {
	d := r.Backoff
	if d <= 0 {
		d = 2 * time.Millisecond
	}
	for ; a > 1; a-- {
		d *= 2
	}
	return d
}

// DefaultOptions mirrors the paper's evaluation settings: k=1 victims, all
// consistent cuts, causal PFS model, baseline library model.
func DefaultOptions() Options {
	return Options{
		Mode:     ModePruning,
		PFSModel: ModelCausal,
		LibModel: ModelBaseline,
		Emulator: EmulatorConfig{
			K:         1,
			FrontMode: FrontAllCuts,
			MaxFronts: 20000,
			MaxStates: 200000,
		},
		MaxLayerOps:    20,
		MaxLegalStates: 50000,
		Workers:        runtime.NumCPU(),
	}
}

// effectiveWorkers resolves the Workers knob: the zero value means one
// worker per CPU.
func (o Options) effectiveWorkers() int {
	if o.Workers <= 0 {
		return runtime.NumCPU()
	}
	return o.Workers
}

// Stats records exploration effort, the quantities behind Figures 10/11.
type Stats struct {
	TraceOps        int
	LowermostOps    int
	StatesGenerated int
	StatesChecked   int
	// StatesDeduped counts crash states whose verdict was attributed from
	// their equivalence-class representative instead of being reconstructed
	// (representative exploration; 0 when DisableRepresentative is set).
	// StatesChecked + StatesDeduped equals the brute-force StatesChecked.
	StatesDeduped int
	// StateClasses is the number of distinct equivalence classes the
	// visited states collapsed into (0 when DisableRepresentative is set).
	StateClasses   int
	StatesPruned   int
	ServerRestores int
	OpsReplayed    int
	LegalPFSStates int
	LegalLibStates int
	Duration       time.Duration
}

// InconsistentState describes one failed crash state, pre-deduplication.
type InconsistentState struct {
	Layer       string // "pfs" or the library name
	Victims     []string
	Consequence string
	// Key is a stable digest of the recovered state's canonical content at
	// the failing layer — the dedup identity of the state. It depends only
	// on reconstruction (trace + persistence subset), never on the
	// consistency model judging it, so reports produced under different
	// models can be compared state-by-state: that is the basis of the fuzz
	// campaign's model-lattice oracle.
	Key string
}

// StateDigest condenses a recovered state's canonical content into the
// short stable identity used by InconsistentState.Key.
func StateDigest(layer, content string) string {
	sum := sha256.Sum256([]byte(content))
	return layer + ":" + hex.EncodeToString(sum[:8])
}

// SkippedState records one crash state the engine quarantined: every
// reconstruction attempt failed (injected fault that never healed, backend
// panic), so the state carries no verdict. Quarantine is the robustness
// contract's last resort — a poisoned state becomes a structured report
// entry instead of aborting the run.
type SkippedState struct {
	Victims []string
	Reason  string
}

// Report is the outcome of testing one workload against one file system.
type Report struct {
	Program string
	FS      string
	Mode    Mode
	Bugs    []*Bug
	// Inconsistent counts distinct inconsistent crash states (Figure 8
	// bars); LibOnly counts those where the PFS state was correct but the
	// library state was not (Figure 8 line plots).
	Inconsistent int
	LibOnly      int
	States       []InconsistentState
	// Skipped lists quarantined crash states (no verdict after every retry
	// attempt); empty on healthy runs.
	Skipped []SkippedState `json:",omitempty"`
	Stats   Stats
}

// Format renders the report as the CLI's crash-consistency report.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== ParaCrash report: %s on %s (%s) ===\n", r.Program, r.FS, r.Mode)
	fmt.Fprintf(&b, "trace: %d ops (%d lowermost) | crash states: %d generated, %d checked, %d pruned\n",
		r.Stats.TraceOps, r.Stats.LowermostOps, r.Stats.StatesGenerated, r.Stats.StatesChecked, r.Stats.StatesPruned)
	if r.Stats.StatesDeduped > 0 || r.Stats.StateClasses > 0 {
		fmt.Fprintf(&b, "representative: %d states attributed from %d equivalence classes\n",
			r.Stats.StatesDeduped, r.Stats.StateClasses)
	}
	fmt.Fprintf(&b, "legal states: %d pfs, %d lib | restores: %d servers, %d ops replayed | %.3fs\n",
		r.Stats.LegalPFSStates, r.Stats.LegalLibStates, r.Stats.ServerRestores, r.Stats.OpsReplayed, r.Stats.Duration.Seconds())
	fmt.Fprintf(&b, "inconsistent crash states: %d (library-only: %d)\n", r.Inconsistent, r.LibOnly)
	if n := len(r.Skipped); n > 0 {
		fmt.Fprintf(&b, "quarantined crash states (skipped after retries): %d\n", n)
	}
	if len(r.Bugs) == 0 {
		b.WriteString("no crash-consistency bugs found\n")
		return b.String()
	}
	fmt.Fprintf(&b, "unique bugs: %d\n", len(r.Bugs))
	for i, bug := range r.Bugs {
		fmt.Fprintf(&b, "  [%d] %s bug in %s layer:\n", i+1, bug.Kind, bug.Layer)
		if bug.Kind == BugReordering {
			fmt.Fprintf(&b, "      %s  ->  %s\n", bug.OpA, bug.OpB)
		} else {
			fmt.Fprintf(&b, "      [%s , %s]\n", bug.OpA, bug.OpB)
		}
		fmt.Fprintf(&b, "      consequence: %s (%d states)\n", bug.Consequence, bug.States)
	}
	return b.String()
}

// checkResult is the verdict for one crash state.
type checkResult struct {
	consistent  bool
	layer       string
	consequence string
	// state is the canonical content of the recovered state at the failing
	// layer (empty when consistent); the bug dedup keys on it.
	state string
	// pfsLegalN/libLegalN record the sizes of the legal-state sets consulted
	// by the verdict (0 when a set was not needed on the taken branch).
	// They let the merge pass of a parallel run charge LegalPFSStates /
	// LegalLibStates exactly as a serial verdict would have, without
	// recomputing the sets.
	pfsLegalN int
	libLegalN int
	// skipped marks a quarantined state: every attempt faulted, so there is
	// no verdict. consequence then holds the quarantine reason. Skipped
	// states are charged nothing (their attempts were rolled back) and are
	// reported via Report.Skipped, never as inconsistencies.
	skipped bool
}

// session holds everything needed to reconstruct and check crash states.
type session struct {
	fs   pfs.FileSystem
	lib  Library
	opts Options
	// ctx carries the run's cancellation signal; exploration loops poll it
	// between crash states, never inside a state's reconstruction, so a
	// cancelled run stops at a clean state boundary.
	ctx context.Context

	g       *causality.Graph
	emu     *Emulator
	pfsOps  *LayerOps
	libOps  *LayerOps
	initial *pfs.State

	clients map[string]pfs.Client

	// Caches: replays and legal-state sets are deterministic per subset.
	pfsReplayCache map[string]string
	legalPFSCache  map[string]map[string]bool
	libReplayCache map[string]string
	legalLibCache  map[string]map[string]bool
	checkCache     map[string]checkResult

	goldenPFS string // strict golden tree (all ops), for consequences
	goldenLib string

	// outcomeFor, when non-nil (the merge pass of a parallel run), resolves
	// a front|keep key to a verdict precomputed by a shard worker. check
	// charges the stats the serial engine would have charged for computing
	// it and skips the redundant reconstruction.
	outcomeFor func(key string) (checkResult, bool)

	// Representative exploration (representative.go): classes maps a class
	// key to its representative's verdict, dedupKeys marks state keys whose
	// verdict was attributed from a class representative, imageDigests
	// memoises the shadow-pipeline recovered-content digest per kept set,
	// and the two front-status maps memoise per-front status vectors for
	// classKey. All are session-private (workers keep their own), no locking.
	classes        map[string]checkResult
	dedupKeys      map[string]bool
	imageDigests   map[string]string
	frontPFSStatus map[string]string
	frontLibStatus map[string]string
	// memoScope namespaces this run inside opts.LegalMemo ("" = memo off).
	memoScope string

	// recon, when non-nil, is the O(delta) incremental reconstruction engine
	// (see reconstruct.go): it tracks the live cluster's per-server state,
	// caches prefix roots and carries the arithmetic effort accounting. nil
	// means the legacy full-restore engine (Options.DisableIncremental, or a
	// FileSystem without the pfs.IncrementalStater capability). Each session
	// owns its reconstructor — shard workers build one over their clone.
	recon *reconstructor

	// resumed holds verdicts replayed from a checkpoint journal, keyed like
	// checkCache. Read-only during exploration (shared with shard workers).
	resumed map[string]checkResult
	// ckpt, on the primary session only, receives every freshly computed
	// verdict for journaling.
	ckpt *Checkpoint

	stats Stats

	// Observability handles, pre-resolved so the per-state hot path pays
	// one atomic add (or nothing at all when obs is off — nil handles are
	// no-ops). The primary session's counters mirror the Stats fields
	// exactly; shard workers bind the same code paths to worker/-prefixed
	// counters so raw worker effort is visible without perturbing the
	// Stats reconciliation.
	obs           *obs.Run
	ctrChecked    *obs.Counter
	ctrDeduped    *obs.Counter
	ctrPruned     *obs.Counter
	ctrBad        *obs.Counter
	ctrRestores   *obs.Counter
	ctrReplayed   *obs.Counter
	ctrFaults     *obs.Counter
	ctrRetries    *obs.Counter
	ctrSkipped    *obs.Counter
	gaugeLegalPFS *obs.Gauge
	gaugeLegalLib *obs.Gauge
}

// bindObs resolves the session's metric handles against r (nil for a no-op
// collector). prefix distinguishes the primary session ("") — whose
// counters reconcile 1:1 with Stats — from shard workers ("worker/").
func (s *session) bindObs(r *obs.Run, prefix string) {
	s.obs = r
	s.ctrChecked = r.Counter(prefix + "states/checked")
	s.ctrDeduped = r.Counter(prefix + "states/deduped")
	s.ctrPruned = r.Counter(prefix + "states/pruned")
	s.ctrBad = r.Counter(prefix + "states/inconsistent")
	s.ctrRestores = r.Counter(prefix + "restores/servers")
	s.ctrReplayed = r.Counter(prefix + "ops/replayed")
	s.ctrFaults = r.Counter(prefix + "fault/injected")
	s.ctrRetries = r.Counter(prefix + "fault/retries")
	s.ctrSkipped = r.Counter(prefix + "states/skipped")
	s.gaugeLegalPFS = r.Gauge(prefix + "legal/pfs")
	s.gaugeLegalLib = r.Gauge(prefix + "legal/lib")
}

// incremental reports whether this session runs the O(delta) incremental
// reconstruction engine.
func (s *session) incremental() bool { return s.recon != nil }

// chargeRestores charges n server restores to the stats and the counters.
func (s *session) chargeRestores(n int) {
	s.stats.ServerRestores += n
	s.ctrRestores.Add(int64(n))
}

// chargeReplayed charges n replayed lowermost ops.
func (s *session) chargeReplayed(n int) {
	s.stats.OpsReplayed += n
	s.ctrReplayed.Add(int64(n))
}

// Run executes the full ParaCrash pipeline for a workload against a file
// system (optionally topped by an I/O library) and returns the report.
func Run(fs pfs.FileSystem, lib Library, w Workload, opts Options) (*Report, error) {
	return RunContext(context.Background(), fs, lib, w, opts)
}

// RunContext is Run with cancellation: when ctx is cancelled (deadline,
// timeout, caller shutdown) the exploration stops at the next crash-state
// boundary, the live cluster is restored, and the run returns ctx's error.
// Cancellation is strictly a stop signal — it never changes which states a
// surviving run visits, so an uncancelled RunContext is byte-identical to
// Run.
func RunContext(ctx context.Context, fs pfs.FileSystem, lib Library, w Workload, opts Options) (*Report, error) {
	return runPipeline(ctx, fs, lib, w, opts, nil)
}

// prepare runs phases 0–2 of the pipeline — preamble, traced execution,
// causality analysis, golden replay — and returns the exploration session.
// It is shared by the full pipeline (RunContext/MergeShards) and the
// shard-scoped entry point (RunShard): every caller sees the identical
// trace, graph, emulator universe and golden states, which is what makes
// shard keys derived from the generation order stable across processes.
func prepare(ctx context.Context, fs pfs.FileSystem, lib Library, w Workload, opts Options) (*session, error) {
	rec := fs.Recorder()
	if oa, ok := fs.(pfs.ObsAware); ok {
		// Store-level timings (restore/recover/mount) report to the same
		// run; a nil opts.Obs simply clears them to the no-op collector.
		oa.SetObs(opts.Obs)
	}

	// Phase 0: preamble (untraced) and the initial snapshot.
	stopTrace := opts.Obs.Phase(obs.PhaseTrace)
	rec.SetEnabled(false)
	if err := w.Preamble(fs); err != nil {
		return nil, fmt.Errorf("paracrash: preamble: %w", err)
	}
	initial := fs.Snapshot()

	if lib != nil {
		t, err := fs.Mount()
		if err != nil {
			return nil, fmt.Errorf("paracrash: mounting initial state: %w", err)
		}
		if err := lib.Seed(t); err != nil {
			return nil, fmt.Errorf("paracrash: seeding library: %w", err)
		}
	}

	// Phase 1: traced test execution.
	rec.Reset()
	rec.SetEnabled(true)
	if err := w.Run(fs); err != nil {
		return nil, fmt.Errorf("paracrash: test program: %w", err)
	}
	rec.SetEnabled(false)
	ops := rec.Ops()
	stopTrace()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("paracrash: run cancelled: %w", err)
	}

	// Arm the fault plane only now: the traced execution must stay
	// fault-free (the plane targets the checker's reconstruction machinery,
	// not the workload under test). A nil opts.Faults clears a stale plan.
	if fa, ok := fs.(pfs.FaultAware); ok {
		fa.SetFaults(opts.Faults)
	}

	// Phase 2: causality analysis.
	stopGraph := opts.Obs.Phase(obs.PhaseGraph)
	g := causality.Build(ops)
	emu := NewEmulator(g, fs.PersistConfig())
	emu.Obs = opts.Obs
	emu.Faults = opts.Faults

	s := &session{
		fs: fs, lib: lib, opts: opts, ctx: ctx,
		g: g, emu: emu, initial: initial,
		pfsOps:         NewLayerOps(g, trace.LayerPFS, nil),
		clients:        map[string]pfs.Client{},
		pfsReplayCache: map[string]string{},
		legalPFSCache:  map[string]map[string]bool{},
		libReplayCache: map[string]string{},
		legalLibCache:  map[string]map[string]bool{},
		checkCache:     map[string]checkResult{},
		classes:        map[string]checkResult{},
		dedupKeys:      map[string]bool{},
		imageDigests:   map[string]string{},
		frontPFSStatus: map[string]string{},
		frontLibStatus: map[string]string{},
	}
	if lib != nil {
		s.libOps = NewLayerOps(g, trace.LayerIOLib, lib.IsLibOp)
	}
	if opts.LegalMemo != nil {
		s.memoScope = legalMemoScope(fs, w.Name(), ops, opts)
	}
	if !opts.DisableIncremental {
		if inc, ok := fs.(pfs.IncrementalStater); ok {
			// O(delta) engine: newReconstructor returns nil when the initial
			// snapshot lacks a store for some server, falling back to legacy.
			s.recon = newReconstructor(s, inc)
		}
	}
	s.bindObs(opts.Obs, "")
	s.stats.TraceOps = len(ops)
	s.stats.LowermostOps = len(emu.Universe)
	opts.Obs.Counter("trace/ops").Add(int64(len(ops)))
	opts.Obs.Counter("trace/lowermost").Add(int64(len(emu.Universe)))

	if n := s.pfsOps.Len(); n > opts.MaxLayerOps {
		return nil, fmt.Errorf("paracrash: %d PFS-layer ops exceed MaxLayerOps=%d (preserved-set enumeration is exponential)", n, opts.MaxLayerOps)
	}
	if s.libOps != nil && s.libOps.Len() > opts.MaxLayerOps {
		return nil, fmt.Errorf("paracrash: %d library-layer ops exceed MaxLayerOps=%d", s.libOps.Len(), opts.MaxLayerOps)
	}

	// Resolve every PFS-layer client proc up front: a malformed proc name
	// (one that does not parse as "<name>/<rank>") fails the run loudly
	// here instead of silently replaying through client 0 deep inside
	// legal-state enumeration.
	for _, op := range s.pfsOps.Ops {
		if _, err := s.client(op.Proc); err != nil {
			return nil, err
		}
	}

	// Golden (strict) states for consequence reporting. The replay passes
	// through faultable mount paths, so it gets the same bounded retry as a
	// crash-state check; a fault that never heals fails the run here — the
	// engine cannot judge anything without the golden state.
	allPFS := make([]int, s.pfsOps.Len())
	for i := range allPFS {
		allPFS[i] = i
	}
	if err := s.withRetry(func() error {
		st, err := s.replayPFS(allPFS)
		if err == nil {
			s.goldenPFS = st
		}
		return err
	}); err != nil {
		return nil, fmt.Errorf("paracrash: golden replay: %w", err)
	}
	if s.libOps != nil {
		allLib := make([]int, s.libOps.Len())
		for i := range allLib {
			allLib[i] = i
		}
		s.goldenLib, _ = s.replayLib(allLib)
	}
	stopGraph()
	return s, nil
}

// resumeCheckpoint loads previously journaled verdicts (if any) for a run
// whose verdict-relevant configuration fingerprints to config, and arms the
// session to keep journaling. Callers arrange the exit-path Flush.
func (s *session) resumeCheckpoint(config string) error {
	stopResume := s.opts.Obs.Phase(obs.PhaseResume)
	defer stopResume()
	resumed, err := s.opts.Checkpoint.resume(config)
	if err != nil {
		return fmt.Errorf("paracrash: resume: %w", err)
	}
	s.resumed = resumed
	s.ckpt = s.opts.Checkpoint
	s.opts.Obs.Counter("resume/verdicts").Add(int64(len(resumed)))
	s.opts.Obs.Counter("resume/warnings").Add(int64(len(s.opts.Checkpoint.Warnings())))
	return nil
}

// emulatorConfig materialises the crash-emulation bounds for phase 3,
// including the semantic-pruning victim filter. Shard workers and the merge
// must build the identical configuration: it decides which crash states are
// generated, and with them the generation order the shard keys index.
func (o Options) emulatorConfig() EmulatorConfig {
	emuCfg := o.Emulator
	if o.Mode != ModeBrute && !o.DisableSemanticPruning {
		emuCfg.VictimFilter = func(op *trace.Op) bool {
			// Semantic pruning: data-chunk updates of library datasets are
			// not reordered (paper §5.3).
			return !strings.HasPrefix(op.Tag, "h5:data")
		}
	}
	return emuCfg
}

// runPipeline is the full exploration pipeline behind RunContext and
// MergeShards. lookup, when non-nil, resolves crash-state keys to verdicts
// precomputed elsewhere (shard workers of a fleet run); the pipeline then
// replays the exact serial walk — same visiting order, pruning, class
// attribution and charging — satisfying checks from the lookup and
// computing only what it misses, so the report stays byte-identical to a
// standalone run. A non-nil lookup forces the serial engine: the in-process
// parallel workers would race the external verdicts for the same states.
func runPipeline(ctx context.Context, fs pfs.FileSystem, lib Library, w Workload, opts Options, lookup func(string) (checkResult, bool)) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	s, err := prepare(ctx, fs, lib, w, opts)
	if err != nil {
		return nil, err
	}
	g, emu, initial := s.g, s.emu, s.initial

	// Checkpoint/resume: load previously journaled verdicts (if any) and
	// keep journaling from here on. The journal is flushed on every exit
	// path — success, failure and cancellation alike.
	if opts.Checkpoint != nil {
		if err := s.resumeCheckpoint(checkpointConfig(w.Name(), fs.Name(), opts)); err != nil {
			return nil, err
		}
		defer func() {
			if err := opts.Checkpoint.Flush(); err != nil {
				opts.Obs.Counter("checkpoint/flush-errors").Inc()
			}
		}()
	}
	s.outcomeFor = lookup

	// Prime the cluster for incremental exploration: the golden replay left
	// re-executed content on the live stores — including on servers the
	// traced run's lowermost ops never touched (replayed client ops may
	// allocate fresh object IDs and place data differently). The legacy
	// engine wipes that implicitly by restoring every server per state; the
	// incremental engine only ever touches servers with universe ops, so
	// everything else must start (and then provably stays) at the initial
	// content. One O(1)-per-server adoption, uncharged like the restores
	// inside the golden replay.
	if s.incremental() {
		fs.Restore(initial)
	}

	// Phase 3: crash emulation + checking.
	emuCfg := opts.emulatorConfig()

	report := &Report{Program: w.Name(), FS: fs.Name(), Mode: opts.Mode}
	bugs := NewBugSet()
	classifier := NewClassifier(emu, func(cs CrashState) (bool, string) {
		res := s.check(cs)
		// A quarantined probe state carries no verdict; report it as
		// consistent so classification degrades gracefully instead of
		// inventing causes from a state we could not reconstruct.
		return res.consistent || res.skipped, res.state
	})

	seenStates := map[string]bool{} // dedup inconsistent states by recovered content

	skip := func(cs CrashState) bool {
		if opts.Mode != ModeBrute && bugs.KnownBad(cs) {
			s.stats.StatesPruned++
			s.ctrPruned.Inc()
			return true
		}
		return false
	}

	handle := func(cs CrashState) {
		res := s.check(cs)
		if s.dedupKeys[cs.Front.Key()+"|"+cs.Keep.Key()] {
			s.stats.StatesDeduped++
			s.ctrDeduped.Inc()
		} else {
			s.stats.StatesChecked++
			s.ctrChecked.Inc()
		}
		if res.skipped {
			var victims []string
			for _, v := range cs.Victims {
				victims = append(victims, g.Ops[v].Key())
			}
			report.Skipped = append(report.Skipped, SkippedState{Victims: victims, Reason: res.consequence})
			return
		}
		if res.consistent {
			return
		}
		// Distinct persistence subsets recovering to the same content are
		// one inconsistent state (the paper's redundancy removal, §5.2).
		stateKey := res.layer + "|" + res.state
		if !seenStates[stateKey] {
			seenStates[stateKey] = true
			report.Inconsistent++
			s.ctrBad.Inc()
			if res.layer != "pfs" {
				report.LibOnly++
			}
			var victims []string
			for _, v := range cs.Victims {
				victims = append(victims, g.Ops[v].Key())
			}
			report.States = append(report.States, InconsistentState{
				Layer: res.layer, Victims: victims, Consequence: res.consequence,
				Key: StateDigest(res.layer, res.state),
			})
		}
		lo := s.pfsOps
		if res.layer != "pfs" && s.libOps != nil {
			lo = s.libOps
		}
		for _, pr := range classifier.ClassifyState(cs, lo, res.state) {
			bugs.Add(pr, res.layer, fs.Name(), w.Name(), res.consequence)
		}
	}

	workers := opts.effectiveWorkers()
	cloner, _ := fs.(pfs.Cloner)
	parallel := workers > 1 && cloner != nil && lookup == nil

	if opts.Mode == ModeOptimized || parallel {
		// Collect states first: the optimized mode orders them with a
		// greedy TSP over per-server distance, the parallel engine shards
		// them across workers.
		stopGen := opts.Obs.Phase(obs.PhaseGenerate)
		var states []CrashState
		s.stats.StatesGenerated = emu.Generate(emuCfg, func(cs CrashState) bool {
			states = append(states, cs)
			return ctx.Err() == nil
		})
		stopGen()
		stopExplore := opts.Obs.Phase(obs.PhaseExplore)
		switch {
		case parallel && len(states) > 1:
			s.runParallel(states, cloner, workers, skip, handle, bugs)
		case opts.Mode == ModeOptimized && lookup != nil && !s.incremental():
			// External verdicts under the legacy optimized engine: replay the
			// serial TSP walk with arithmetic charging, resolving verdicts
			// through the lookup — the same merge pass the in-process parallel
			// engine runs over its result board.
			s.mergeOptimized(states, skip, handle)
		case opts.Mode == ModeOptimized:
			s.runOptimized(states, skip, handle)
		default:
			for _, cs := range states {
				if ctx.Err() != nil {
					break
				}
				if !skip(cs) {
					handle(cs)
				}
			}
		}
		stopExplore()
	} else {
		// Streaming engine: generation and checking interleave, so the
		// combined pass is charged to the explore phase (the emulate/*
		// counters still break out enumeration volume).
		stopExplore := opts.Obs.Phase(obs.PhaseExplore)
		s.stats.StatesGenerated = emu.Generate(emuCfg, func(cs CrashState) bool {
			if ctx.Err() != nil {
				return false
			}
			if !skip(cs) {
				handle(cs)
			}
			return true
		})
		stopExplore()
	}
	opts.Obs.Counter("states/generated").Add(int64(s.stats.StatesGenerated))

	// Restore the live cluster to the untouched post-run state (also on
	// cancellation, so a reused file system is never left mid-crash-state).
	fs.Restore(initial)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("paracrash: run cancelled: %w", err)
	}

	report.Bugs = bugs.Bugs()
	s.stats.StateClasses = len(s.classes)
	opts.Obs.Gauge("states/classes").Set(int64(s.stats.StateClasses))
	s.stats.Duration = time.Since(start)
	report.Stats = s.stats
	return report, nil
}

// clientID parses the numeric rank out of a client proc name ("client/3").
// Proc names come from the trace recorder; one that does not parse means
// the trace is corrupt, and collapsing it onto rank 0 — as an ignored
// Sscanf error used to — would silently replay another client's state.
func clientID(proc string) (int, error) {
	i := strings.IndexByte(proc, '/')
	if i < 0 {
		return 0, fmt.Errorf("paracrash: client proc %q: missing \"/<rank>\" suffix", proc)
	}
	id, err := strconv.Atoi(proc[i+1:])
	if err != nil {
		return 0, fmt.Errorf("paracrash: client proc %q: unparsable rank: %v", proc, err)
	}
	if id < 0 {
		return 0, fmt.Errorf("paracrash: client proc %q: negative rank", proc)
	}
	return id, nil
}

// client returns (and caches) the client endpoint for a client proc name.
func (s *session) client(proc string) (pfs.Client, error) {
	if c, ok := s.clients[proc]; ok {
		return c, nil
	}
	id, err := clientID(proc)
	if err != nil {
		return nil, err
	}
	c := s.fs.Client(id)
	s.clients[proc] = c
	return c, nil
}

// reconstruct restores the initial snapshot and applies the kept lowermost
// ops in recording order. An injected replay fault aborts the attempt (the
// retry loop rolls back its charges); genuine application errors mean the
// op's effect is lost (its target was never persisted) — exactly the crash
// semantics we emulate.
func (s *session) reconstruct(cs CrashState) error {
	s.fs.Restore(s.initial)
	s.chargeRestores(len(s.fs.Procs()))
	for _, i := range s.emu.Universe {
		if !cs.Keep.Get(i) {
			continue
		}
		if err := s.fs.ApplyLowermost(s.g.Ops[i]); err != nil && faultinject.Is(err) {
			return err
		}
		s.chargeReplayed(1)
	}
	return nil
}

// check reconstructs the crash state, runs recovery and performs the
// top-down layer checks. Results are cached per (front, keep). States that
// violate commit durability cannot occur and count as consistent (the
// classifier probes such combinations). Faulted attempts are retried per
// Options.Retry; an exhausted state comes back skipped.
func (s *session) check(cs CrashState) checkResult {
	if !s.emu.PO.SyncFeasible(cs.Front, cs.Keep) {
		return checkResult{consistent: true}
	}
	key := cs.Front.Key() + "|" + cs.Keep.Key()
	if r, ok := s.checkCache[key]; ok {
		return r
	}
	ckey := ""
	if s.representative() {
		ckey = s.classKey(cs)
	}
	if r, ok := s.resumed[key]; ok {
		// The verdict was journaled by a previous (interrupted) run; charge
		// what computing it would have charged and skip the work. Only
		// representatives are ever journaled, so re-record the class: the
		// resumed run then deduplicates members exactly like a fresh one.
		s.chargeOutcome(cs, r)
		s.checkCache[key] = r
		s.recordClass(ckey, r)
		return r
	}
	if ckey != "" {
		if r, ok := s.classes[ckey]; ok {
			// A state of the same equivalence class already carries the
			// verdict: attribute it without reconstructing. Members are not
			// journaled — on resume they re-attribute from the replayed
			// representative, keeping the journal one record per class.
			s.attributeClass(key, r)
			return r
		}
	}
	if s.outcomeFor != nil {
		if r, ok := s.outcomeFor(key); ok {
			// A shard worker already reconstructed and judged this state;
			// charge exactly what reconstruct+verdict would have charged.
			s.chargeOutcome(cs, r)
			s.checkCache[key] = r
			s.recordClass(ckey, r)
			s.journal(key, r)
			return r
		}
	}
	if s.incremental() {
		// Charge the arithmetic O(delta) cost of the visit up front: the
		// charge is a pure function of the visit sequence, so faulted
		// retries — and states that end up quarantined — report exactly the
		// effort an unfaulted walk would.
		s.recon.chargeState(cs)
	}
	r := s.checkWithRetry(cs)
	s.checkCache[key] = r
	s.recordClass(ckey, r)
	s.journal(key, r)
	return r
}

// chargeOutcome charges the stats a serial reconstruction+verdict of cs
// would have charged, given its already-computed result. Under the legacy
// engine skipped states charge nothing (their failed attempts were rolled
// back); the incremental engine advances its arithmetic walk for every
// charged visit — including quarantined ones, whose reconstruction was
// attempted — so resumed and parallel runs replay identical charge
// sequences.
func (s *session) chargeOutcome(cs CrashState, r checkResult) {
	if s.incremental() {
		s.recon.chargeState(cs)
		if r.skipped {
			s.ctrSkipped.Inc()
			return
		}
		s.chargeLegal(r)
		return
	}
	if r.skipped {
		s.ctrSkipped.Inc()
		return
	}
	s.chargeRestores(len(s.fs.Procs()))
	s.chargeReplayed(s.keptUniverse(cs))
	s.chargeLegal(r)
}

// journal records a freshly computed verdict in the checkpoint (primary
// session only; no-op otherwise). Journal write errors are counted, never
// fatal — losing checkpoint durability must not take the run down.
func (s *session) journal(key string, r checkResult) {
	if s.ckpt == nil {
		return
	}
	if err := s.ckpt.record(key, r); err != nil {
		s.obs.Counter("checkpoint/flush-errors").Inc()
	}
}

// checkWithRetry runs reconstruct+verdict attempts under the retry policy.
// Each failed attempt is charge-neutral (attemptCheck rolls back), so a
// state that eventually succeeds charges exactly what an unfaulted run
// would have — the basis of the fault-transparency guarantee.
func (s *session) checkWithRetry(cs CrashState) checkResult {
	att := s.opts.Retry.attempts()
	var lastErr error
	for a := 0; a < att; a++ {
		if a > 0 {
			s.ctrRetries.Inc()
			time.Sleep(s.opts.Retry.backoffAt(a))
		}
		r, err := s.attemptCheck(cs)
		if err == nil {
			return r
		}
		if faultinject.Is(err) {
			s.ctrFaults.Inc()
		}
		lastErr = err
	}
	s.ctrSkipped.Inc()
	return checkResult{
		skipped:     true,
		consequence: fmt.Sprintf("quarantined after %d attempts: %v", att, lastErr),
	}
}

// attemptCheck performs one reconstruct+verdict attempt. Panics anywhere in
// the backend are quarantined into errors, and a failed attempt rolls its
// restore/replay charges back (stats and counters in lockstep), leaving the
// accounting as if the attempt never ran.
func (s *session) attemptCheck(cs CrashState) (res checkResult, err error) {
	if s.incremental() {
		// Incremental attempts charge nothing (check already paid the
		// arithmetic delta), so no rollback needs arranging: bring quarantines
		// its own panics and leaves faulted servers marked dirty for the next
		// attempt to re-restore, and scratchVerdict restores the applied
		// state around the (possibly panicking) verdict.
		if err := s.recon.bring(cs); err != nil {
			return checkResult{}, err
		}
		return s.scratchVerdict(cs)
	}
	restores, replayed := s.stats.ServerRestores, s.stats.OpsReplayed
	defer func() {
		if p := recover(); p != nil {
			res = checkResult{}
			if fe, ok := faultinject.FromPanic(p); ok {
				err = fe
			} else {
				err = fmt.Errorf("panic during check: %v", p)
			}
		}
		if err != nil {
			s.ctrRestores.Add(int64(restores - s.stats.ServerRestores))
			s.ctrReplayed.Add(int64(replayed - s.stats.OpsReplayed))
			s.stats.ServerRestores, s.stats.OpsReplayed = restores, replayed
		}
	}()
	if err = s.reconstruct(cs); err != nil {
		return checkResult{}, err
	}
	return s.verdict(cs)
}

// withRetry runs fn under the retry policy, quarantining panics; used for
// faultable work outside the per-state path (the golden replay).
func (s *session) withRetry(fn func() error) error {
	att := s.opts.Retry.attempts()
	var lastErr error
	for a := 0; a < att; a++ {
		if a > 0 {
			s.ctrRetries.Inc()
			time.Sleep(s.opts.Retry.backoffAt(a))
		}
		err := func() (err error) {
			defer func() {
				if p := recover(); p != nil {
					if fe, ok := faultinject.FromPanic(p); ok {
						err = fe
					} else {
						err = fmt.Errorf("panic: %v", p)
					}
				}
			}()
			return fn()
		}()
		if err == nil {
			return nil
		}
		if faultinject.Is(err) {
			s.ctrFaults.Inc()
		}
		lastErr = err
	}
	return lastErr
}

// keptUniverse counts the kept replayable ops of a crash state — the number
// of ops reconstruct would replay.
func (s *session) keptUniverse(cs CrashState) int {
	n := 0
	for _, i := range s.emu.Universe {
		if cs.Keep.Get(i) {
			n++
		}
	}
	return n
}

// chargeLegal folds a verdict's recorded legal-set sizes into the stats
// (idempotent: the maxima only grow).
func (s *session) chargeLegal(r checkResult) {
	s.stats.LegalPFSStates = max(s.stats.LegalPFSStates, r.pfsLegalN)
	s.stats.LegalLibStates = max(s.stats.LegalLibStates, r.libLegalN)
	s.gaugeLegalPFS.Max(int64(r.pfsLegalN))
	s.gaugeLegalLib.Max(int64(r.libLegalN))
}

// verdict checks the current (already reconstructed) cluster state against
// the legal states for the crash front. It runs recovery first, like the
// real workflow (fsck before the consistency test). Injected faults (which
// say nothing about the state under test) surface as errors for the retry
// loop; genuine recovery/mount failures remain verdicts — they are what the
// checker exists to find.
func (s *session) verdict(cs CrashState) (checkResult, error) {
	var tree *pfs.Tree
	var treeStr string
	if s.incremental() {
		// Recovery is a pure function of the kept set, so states sharing a
		// Keep (and the digest shadow pipeline that already classified this
		// one) share one memoised fsck+mount outcome.
		o, err := s.recon.recoveredOutcome(cs)
		if err != nil {
			return checkResult{}, err
		}
		if o.recoverErr != "" {
			return checkResult{layer: "pfs", consequence: "unrecoverable file system: " + o.recoverErr, state: "UNRECOVERABLE"}, nil
		}
		if o.mountErr != "" {
			return checkResult{layer: "pfs", consequence: "mount failed after fsck: " + o.mountErr, state: "UNMOUNTABLE"}, nil
		}
		tree, treeStr = o.tree, o.treeStr
	} else {
		if err := s.fs.Recover(); err != nil {
			if faultinject.Is(err) {
				return checkResult{}, err
			}
			return checkResult{layer: "pfs", consequence: fmt.Sprintf("unrecoverable file system: %v", err), state: "UNRECOVERABLE"}, nil
		}
		var err error
		tree, err = s.fs.Mount()
		if err != nil {
			if faultinject.Is(err) {
				return checkResult{}, err
			}
			return checkResult{layer: "pfs", consequence: fmt.Sprintf("mount failed after fsck: %v", err), state: "UNMOUNTABLE"}, nil
		}
		treeStr = tree.Serialize()
	}

	pfsStatus := s.pfsOps.StatusAgainst(cs.Front)

	if s.lib == nil {
		legal, err := s.legalPFS(cs, pfsStatus)
		if err != nil {
			return checkResult{}, err
		}
		if legal[treeStr] {
			return checkResult{consistent: true, pfsLegalN: len(legal)}, nil
		}
		return checkResult{layer: "pfs", consequence: s.describePFS(treeStr), state: treeStr, pfsLegalN: len(legal)}, nil
	}

	// Top-down: library first.
	libStatus := s.libOps.StatusAgainst(cs.Front)
	legalLib := s.legalLib(cs, libStatus)
	libN := len(legalLib)

	libState, lerr := s.lib.StateFromTree(tree)
	if lerr == nil && legalLib[libState] {
		return checkResult{consistent: true, libLegalN: libN}, nil
	}
	// Run the library's recovery tools before declaring inconsistency.
	if fixed, changed := s.lib.RecoverTree(tree); changed {
		if st, err2 := s.lib.StateFromTree(fixed); err2 == nil && legalLib[st] {
			return checkResult{consistent: true, libLegalN: libN}, nil
		}
	}

	// The library state is inconsistent: attribute by checking the PFS.
	consequence := ""
	libKey := libState
	if lerr != nil {
		consequence = fmt.Sprintf("library state unreadable: %v", lerr)
		libKey = "CORRUPT: " + lerr.Error()
	} else {
		consequence = s.describeLib(libState)
	}
	legalPFS, err := s.legalPFS(cs, pfsStatus)
	if err != nil {
		return checkResult{}, err
	}
	if legalPFS[treeStr] {
		return checkResult{layer: s.lib.Name(), consequence: consequence, state: libKey, pfsLegalN: len(legalPFS), libLegalN: libN}, nil
	}
	return checkResult{layer: "pfs", consequence: consequence + " (PFS state also illegal)", state: treeStr, pfsLegalN: len(legalPFS), libLegalN: libN}, nil
}

// describePFS summarises how the recovered tree differs from the golden
// (full-execution) tree.
func (s *session) describePFS(treeStr string) string {
	if treeStr == s.goldenPFS {
		return "state equals the no-crash state but violates the model"
	}
	return "recovered PFS state matches no legal state (" + firstLineDiff(treeStr, s.goldenPFS) + ")"
}

func (s *session) describeLib(state string) string {
	return "library state matches no legal state (" + firstLineDiff(state, s.goldenLib) + ")"
}

// firstLineDiff reports the first differing line between two canonical
// serialisations, a compact consequence hint.
func firstLineDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			return fmt.Sprintf("got %q want %q", x, y)
		}
	}
	return "no textual diff"
}

// legalPFS returns the set of legal PFS tree serialisations for the front.
// An injected fault mid-enumeration aborts without caching: a partial legal
// set would make a healed retry judge against too few states.
func (s *session) legalPFS(cs CrashState, status []Status) (map[string]bool, error) {
	key := statusKey(status)
	if set, ok := s.legalPFSCache[key]; ok {
		return set, nil
	}
	if set, ok := s.memoLookup("pfs", s.opts.PFSModel, key); ok {
		s.legalPFSCache[key] = set
		s.stats.LegalPFSStates = max(s.stats.LegalPFSStates, len(set))
		s.gaugeLegalPFS.Max(int64(len(set)))
		return set, nil
	}
	set := map[string]bool{}
	var rerr error
	s.pfsOps.PreservedSets(s.opts.PFSModel, status, s.opts.MaxLegalStates, func(sel []int) bool {
		st, err := s.replayPFS(sel)
		if err != nil {
			rerr = err
			return false
		}
		set[st] = true
		return true
	})
	if rerr != nil {
		return nil, rerr
	}
	s.legalPFSCache[key] = set
	s.memoStore("pfs", s.opts.PFSModel, key, set)
	s.stats.LegalPFSStates = max(s.stats.LegalPFSStates, len(set))
	s.gaugeLegalPFS.Max(int64(len(set)))
	return set, nil
}

// legalLib returns the set of legal library logical states for the front.
func (s *session) legalLib(cs CrashState, status []Status) map[string]bool {
	key := statusKey(status)
	if set, ok := s.legalLibCache[key]; ok {
		return set
	}
	if set, ok := s.memoLookup("lib/"+s.lib.Name(), s.opts.LibModel, key); ok {
		s.legalLibCache[key] = set
		s.stats.LegalLibStates = max(s.stats.LegalLibStates, len(set))
		s.gaugeLegalLib.Max(int64(len(set)))
		return set
	}
	set := map[string]bool{}
	s.libOps.PreservedSets(s.opts.LibModel, status, s.opts.MaxLegalStates, func(sel []int) bool {
		if st, err := s.replayLib(sel); err == nil {
			set[st] = true
		}
		return true
	})
	s.legalLibCache[key] = set
	s.memoStore("lib/"+s.lib.Name(), s.opts.LibModel, key, set)
	s.stats.LegalLibStates = max(s.stats.LegalLibStates, len(set))
	s.gaugeLegalLib.Max(int64(len(set)))
	return set
}

func statusKey(status []Status) string {
	b := make([]byte, len(status))
	for i, st := range status {
		b[i] = byte('0' + int(st))
	}
	return string(b)
}

// replayPFS re-executes the selected PFS-layer client ops on the initial
// snapshot and returns the resulting tree serialisation. Only injected
// mount faults surface as errors (and are never cached); a genuinely
// unmountable replay is a legitimate legal state.
func (s *session) replayPFS(sel []int) (string, error) {
	key := intsKey(sel)
	if st, ok := s.pfsReplayCache[key]; ok {
		return st, nil
	}
	rec := s.fs.Recorder()
	rec.SetEnabled(false)
	s.fs.Restore(s.initial)
	if s.recon != nil {
		// The replay mutates the whole cluster; the incremental walk's
		// physical tracking must not trust any server afterwards.
		s.recon.markAllDirty()
	}
	for _, pos := range sel {
		op := s.pfsOps.Ops[pos]
		c, err := s.client(op.Proc)
		if err != nil {
			// Every PFS-layer proc was validated when the session was
			// built; reaching this means the trace mutated mid-run.
			panic(err)
		}
		// Failed replays (missing prerequisites under weak models) lose
		// the op, matching crash semantics.
		_ = pfs.ReplayClientOp(c, op)
	}
	st := "UNMOUNTABLE"
	if tree, err := s.fs.Mount(); err == nil {
		st = tree.Serialize()
	} else if faultinject.Is(err) {
		return "", err
	}
	s.pfsReplayCache[key] = st
	return st, nil
}

// replayLib re-executes the selected library ops via the library's replayer.
func (s *session) replayLib(sel []int) (string, error) {
	key := intsKey(sel)
	if st, ok := s.libReplayCache[key]; ok {
		return st, nil
	}
	ops := make([]*trace.Op, len(sel))
	for i, pos := range sel {
		ops[i] = s.libOps.Ops[pos]
	}
	st, err := s.lib.Replay(ops)
	if err != nil {
		return "", err
	}
	s.libReplayCache[key] = st
	return st, nil
}

func intsKey(sel []int) string {
	var b strings.Builder
	for _, v := range sel {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// runOptimized visits states in TSP order with incremental reconstruction:
// only servers whose kept-op subsequence changed are restored and
// re-applied; recovery and checking run on a scratch snapshot.
//
// Fault tolerance splits the walk in two: the arithmetic walk (cur) charges
// exactly what an unfaulted incremental visit would pay, per visited state,
// while the physical walk (phys) tracks what is actually on the cluster. A
// faulted attempt re-restores the touched servers without extra charges, so
// a run whose faults heal — and a resumed run replaying journaled verdicts —
// reports stats byte-identical to an uninterrupted unfaulted run.
func (s *session) runOptimized(states []CrashState, skip func(CrashState) bool, handle func(CrashState)) {
	if s.incremental() {
		s.visitOrdered(states, skip, handle)
		return
	}
	if len(states) == 0 {
		return
	}
	procs, serverOps := s.emu.serverProcs()
	sigs := stateSigs(states, procs, serverOps)
	order := exploreOrder(len(states), len(procs), sigs, s.opts.DisableTSP)

	cur := make([]string, len(procs))
	phys := make([]string, len(procs))
	for i := range cur {
		cur[i] = "\x00unset"
		phys[i] = "\x00unset"
	}

	for _, idx := range order {
		if s.ctx.Err() != nil {
			return
		}
		cs := states[idx]
		if skip(cs) {
			continue
		}
		key := cs.Front.Key() + "|" + cs.Keep.Key()
		ckey := ""
		if s.representative() {
			ckey = s.classKey(cs)
		}
		if ckey != "" {
			if _, ok := s.checkCache[key]; !ok {
				if r, hit := s.classes[ckey]; hit {
					// Class member: attribute the representative's verdict.
					// Neither the arithmetic walk nor the physical cluster
					// advances — the incremental tour simply steps over the
					// state, which is exactly the effort the report shows.
					s.attributeClass(key, r)
					applied := s.fs.Snapshot()
					handle(cs)
					s.fs.Restore(applied)
					continue
				}
			}
		}
		// Arithmetic charging: the incremental restore/replay cost this
		// state adds to the walk, independent of faults and resume.
		for pi, p := range procs {
			if cur[pi] == sigs[idx][pi] {
				continue
			}
			s.chargeRestores(1)
			for _, n := range serverOps[p] {
				if cs.Keep.Get(n) {
					s.chargeReplayed(1)
				}
			}
			cur[pi] = sigs[idx][pi]
		}
		if _, ok := s.checkCache[key]; !ok {
			if r, ok := s.resumed[key]; ok {
				// Journaled verdict: seed the cache before handle's check so
				// the serial resumed path (which charges full reconstruction)
				// is bypassed — the arithmetic walk above already paid.
				if r.skipped {
					s.ctrSkipped.Inc()
				} else {
					s.chargeLegal(r)
				}
				s.checkCache[key] = r
				s.recordClass(ckey, r)
			} else {
				r := s.optimizedCheck(cs, sigs[idx], procs, serverOps, phys)
				s.checkCache[key] = r
				s.recordClass(ckey, r)
				s.journal(key, r)
			}
		}
		// handle's classifier probes may reconstruct other states on the
		// live cluster; restore the applied state afterwards so the physical
		// walk tracking stays truthful.
		applied := s.fs.Snapshot()
		handle(cs)
		s.fs.Restore(applied)
	}
}

// optimizedCheck brings the physical cluster to the state's per-server
// signature and judges it, retrying faulted attempts under the policy. No
// stats are charged here — the arithmetic walk in runOptimized carries the
// accounting — so retries are invisible in the report.
func (s *session) optimizedCheck(cs CrashState, sig []string, procs []string, serverOps map[string][]int, phys []string) checkResult {
	att := s.opts.Retry.attempts()
	var lastErr error
	for a := 0; a < att; a++ {
		if a > 0 {
			s.ctrRetries.Inc()
			time.Sleep(s.opts.Retry.backoffAt(a))
		}
		r, err := s.optimizedAttempt(cs, sig, procs, serverOps, phys)
		if err == nil {
			return r
		}
		if faultinject.Is(err) {
			s.ctrFaults.Inc()
		}
		lastErr = err
	}
	s.ctrSkipped.Inc()
	return checkResult{
		skipped:     true,
		consequence: fmt.Sprintf("quarantined after %d attempts: %v", att, lastErr),
	}
}

// optimizedAttempt is one physical sync + scratch verdict. A server whose
// apply faults mid-way is marked dirty so the next attempt (or the next
// state) restores it from the snapshot instead of trusting partial state.
func (s *session) optimizedAttempt(cs CrashState, sig []string, procs []string, serverOps map[string][]int, phys []string) (checkResult, error) {
	for pi, p := range procs {
		if phys[pi] == sig[pi] {
			continue
		}
		phys[pi] = "\x00dirty"
		if err := s.syncServer(cs, p, serverOps[p]); err != nil {
			return checkResult{}, err
		}
		phys[pi] = sig[pi]
	}
	return s.scratchVerdict(cs)
}

// syncServer restores one server to the initial snapshot and applies the
// crash state's kept ops on it, quarantining panics into errors.
func (s *session) syncServer(cs CrashState, p string, ops []int) (err error) {
	defer func() {
		if pv := recover(); pv != nil {
			if fe, ok := faultinject.FromPanic(pv); ok {
				err = fe
			} else {
				err = fmt.Errorf("panic applying ops on %s: %v", p, pv)
			}
		}
	}()
	s.fs.RestoreServer(s.initial, p)
	for _, n := range ops {
		if !cs.Keep.Get(n) {
			continue
		}
		if aerr := s.fs.ApplyLowermost(s.g.Ops[n]); aerr != nil && faultinject.Is(aerr) {
			return aerr
		}
	}
	return nil
}

// scratchVerdict judges the applied state without losing the walk's
// physical tracking — including when the verdict panics. The incremental
// engine needs no snapshot here: the only cluster mutation the verdict can
// make is recovery, and recoveredOutcome marks the mutated servers dirty so
// the next bring restores them from prefix roots. The legacy optimized
// engine snapshots and restores the applied state around the verdict.
func (s *session) scratchVerdict(cs CrashState) (res checkResult, err error) {
	var applied *pfs.State
	if !s.incremental() {
		applied = s.fs.Snapshot()
	}
	defer func() {
		if pv := recover(); pv != nil {
			res = checkResult{}
			if fe, ok := faultinject.FromPanic(pv); ok {
				err = fe
			} else {
				err = fmt.Errorf("panic during verdict: %v", pv)
			}
		}
		if applied != nil {
			s.fs.Restore(applied)
		}
	}()
	return s.verdict(cs)
}

// visitOrdered is the incremental engine's ordered walk, shared by the
// serial optimized mode and the optimized parallel merge: states are visited
// along the greedy TSP tour (recording order under DisableTSP) and every one
// goes through the uniform check path. No per-loop accounting or snapshot
// juggling remains here — the reconstructor carries both the physical delta
// reconstruction and the arithmetic charging, and classifier probes inside
// handle reconstruct through the same path, keeping the physical tracking
// truthful without save/restore wrappers.
func (s *session) visitOrdered(states []CrashState, skip func(CrashState) bool, handle func(CrashState)) {
	if len(states) == 0 {
		return
	}
	procs, serverOps := s.emu.serverProcs()
	sigs := stateSigs(states, procs, serverOps)
	order := exploreOrder(len(states), len(procs), sigs, s.opts.DisableTSP)
	for _, idx := range order {
		if s.ctx.Err() != nil {
			return
		}
		cs := states[idx]
		if !skip(cs) {
			handle(cs)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
