package paracrash

import (
	"strings"
	"testing"

	"paracrash/internal/causality"
	"paracrash/internal/pfs"
	"paracrash/internal/pfs/beegfs"
	"paracrash/internal/trace"
)

// digestSession builds the minimal white-box session crashDigest and
// classKey need: a recorded run of the in-package rename workload on
// BeeGFS with its causality graph and emulator.
func digestSession(t *testing.T) (*session, []CrashState) {
	t.Helper()
	rec := trace.NewRecorder()
	fs := beegfs.New(pfs.DefaultConfig(), rec)
	w := renameWorkload{}
	rec.SetEnabled(false)
	if err := w.Preamble(fs); err != nil {
		t.Fatal(err)
	}
	initial := fs.Snapshot()
	rec.Reset()
	rec.SetEnabled(true)
	if err := w.Run(fs); err != nil {
		t.Fatal(err)
	}
	rec.SetEnabled(false)
	g := causality.Build(rec.Ops())
	emu := NewEmulator(g, fs.PersistConfig())
	s := &session{
		fs: fs, g: g, emu: emu, initial: initial,
		opts:           DefaultOptions(),
		pfsOps:         NewLayerOps(g, trace.LayerPFS, nil),
		checkCache:     map[string]checkResult{},
		classes:        map[string]checkResult{},
		dedupKeys:      map[string]bool{},
		imageDigests:   map[string]string{},
		frontPFSStatus: map[string]string{},
		frontLibStatus: map[string]string{},
	}
	var states []CrashState
	emu.Generate(s.opts.Emulator, func(cs CrashState) bool {
		states = append(states, cs)
		return true
	})
	if len(states) < 4 {
		t.Fatalf("workload generated only %d crash states", len(states))
	}
	return s, states
}

// recoveredContent reconstructs a crash state the slow honest way and
// returns what the shadow pipeline is supposed to digest: the serialized
// mount tree, or the recovery/mount failure text.
func recoveredContent(t *testing.T, s *session, cs CrashState) string {
	t.Helper()
	s.fs.Restore(s.initial)
	for _, i := range s.emu.Universe {
		if !cs.Keep.Get(i) {
			continue
		}
		_ = s.fs.ApplyLowermost(s.g.Ops[i])
	}
	if err := s.fs.Recover(); err != nil {
		return "UNRECOVERABLE: " + err.Error()
	}
	tree, err := s.fs.Mount()
	if err != nil {
		return "UNMOUNTABLE: " + err.Error()
	}
	return tree.Serialize()
}

// TestClassKeyNeverCollidesAcrossRecoveredContent is the collision proof
// behind representative attribution: the class key embeds the StateDigest
// of the state's recovered content, so two crash states whose recovered
// content differs can never land in the same equivalence class, and states
// sharing a class digest provably recovered to identical content.
func TestClassKeyNeverCollidesAcrossRecoveredContent(t *testing.T) {
	s, states := digestSession(t)
	saved := s.fs.Snapshot()
	contentByClass := map[string]string{}
	distinct := map[string]bool{}
	for _, cs := range states {
		ckey := s.classKey(cs)
		if ckey == "" {
			t.Fatalf("classKey empty without fault injection for state %s", cs.Keep.Key())
		}
		want := recoveredContent(t, s, cs)
		s.fs.Restore(saved)
		distinct[want] = true
		if got, ok := contentByClass[ckey]; ok {
			if got != want {
				t.Fatalf("class %q holds two different recovered states:\n%q\nvs\n%q", ckey, got, want)
			}
			continue
		}
		contentByClass[ckey] = want
		// The digest component must be exactly the StateDigest of the
		// recovered content — that is what "promoting StateDigest to the
		// bucketing key" means, and what keeps the key collision-free.
		if wantPrefix := StateDigest("crash", want) + "|"; !strings.HasPrefix(ckey, wantPrefix) {
			t.Fatalf("class key %q does not embed StateDigest of the recovered content (%q)", ckey, wantPrefix)
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("workload produced %d distinct recovered states; collision test needs variety", len(distinct))
	}
	if len(contentByClass) < len(distinct) {
		t.Fatalf("%d classes cover %d distinct recovered states", len(contentByClass), len(distinct))
	}
	// Digest memoisation must not leak across kept sets: every memo entry
	// keys a single kept set's digest.
	if len(s.imageDigests) == 0 {
		t.Fatal("shadow pipeline memoised nothing")
	}
}

// TestCrashDigestDeterministicAndStatePreserving pins two contracts the
// call sites rely on: repeated digests of one state are identical (memo or
// not), and the shadow pipeline restores the live cluster exactly as it
// found it — the optimized walk's physical-state tracking depends on that.
func TestCrashDigestDeterministicAndStatePreserving(t *testing.T) {
	s, states := digestSession(t)
	cs := states[len(states)/2]
	before := s.fs.Snapshot()
	beforeTree, err := s.fs.Mount()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := s.crashDigest(cs)
	if err != nil {
		t.Fatal(err)
	}
	s.imageDigests = map[string]string{} // force a recompute past the memo
	d2, err := s.crashDigest(cs)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("crashDigest not deterministic: %q vs %q", d1, d2)
	}
	afterTree, err := s.fs.Mount()
	if err != nil {
		t.Fatal(err)
	}
	if beforeTree.Serialize() != afterTree.Serialize() {
		t.Fatal("shadow pipeline left the live cluster in a different state")
	}
	s.fs.Restore(before)
}
