package paracrash_test

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/faultinject"
	"paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// runWithOpts runs one beegfs/ARVR cell through exps and fingerprints the
// report, so faulted and checkpointed runs compare against the plain ones.
func runWithOpts(t *testing.T, ctx context.Context, opts paracrash.Options) (string, error) {
	t.Helper()
	prog, err := exps.ProgramByName("ARVR")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := exps.RunOneContext(ctx, "beegfs", prog, opts, workloads.DefaultH5Params(), exps.ConfigFor("beegfs"))
	if err != nil {
		return "", err
	}
	return exps.ReportFingerprint(rep), nil
}

// TestFaultTransparency is the harness's headline property: with bounded
// per-point fault quotas (the default MaxPerPoint=1) and the default retry
// policy, injected faults are fully transparent — every mode and worker
// count reproduces the unfaulted report byte-for-byte, serial or parallel,
// because fault decisions are schedule-independent and retries heal them.
func TestFaultTransparency(t *testing.T) {
	type cell struct {
		mode    paracrash.Mode
		workers int
	}
	cells := []cell{
		{paracrash.ModeBrute, 1},
		{paracrash.ModePruning, 1},
		{paracrash.ModePruning, 4},
		{paracrash.ModeOptimized, 1},
		{paracrash.ModeOptimized, 4},
	}
	var totalInjected int64
	for _, c := range cells {
		t.Run(c.mode.String()+"/workers="+itoa(c.workers), func(t *testing.T) {
			base := paracrash.DefaultOptions()
			base.Mode = c.mode
			base.Workers = c.workers
			baseFP, err := runWithOpts(t, nil, base)
			if err != nil {
				t.Fatal(err)
			}

			faulted := base
			// A fresh plan per run: quotas are per-plan state, and reusing a
			// plan across runs would change the second run's fault weather.
			plan := faultinject.New(faultinject.Config{Seed: 99, Rate: 0.3})
			faulted.Faults = plan
			faultedFP, err := runWithOpts(t, nil, faulted)
			if err != nil {
				t.Fatalf("faulted run errored instead of healing: %v", err)
			}
			totalInjected += plan.Injected()
			if faultedFP != baseFP {
				t.Errorf("faulted report differs from unfaulted baseline:\n--- base ---\n%s--- faulted ---\n%s", baseFP, faultedFP)
			}
		})
	}
	if totalInjected == 0 {
		t.Fatal("no faults were injected across any cell; the transparency test is vacuous")
	}
	t.Logf("healed %d injected faults across %d cells", totalInjected, len(cells))
}

// TestHardFaultsQuarantine models a fault that never heals: an unbounded
// quota on the reconstruction site. The run must complete without error,
// quarantining the poisoned states as Skipped instead of aborting.
func TestHardFaultsQuarantine(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run("workers="+itoa(workers), func(t *testing.T) {
			prog, err := exps.ProgramByName("ARVR")
			if err != nil {
				t.Fatal(err)
			}
			opts := paracrash.DefaultOptions()
			opts.Workers = workers
			opts.Retry = paracrash.RetryPolicy{MaxAttempts: 2, Backoff: time.Microsecond}
			opts.Faults = faultinject.New(faultinject.Config{
				Seed: 1, Rate: 1, Kinds: []faultinject.Kind{faultinject.KindErr},
				Sites: []string{"pfs/apply"}, MaxPerPoint: 1 << 30,
			})
			rep, err := exps.RunOne("beegfs", prog, opts, workloads.DefaultH5Params(), exps.ConfigFor("beegfs"))
			if err != nil {
				t.Fatalf("hard faults aborted the run: %v", err)
			}
			if len(rep.Skipped) == 0 {
				t.Fatal("hard faults on pfs/apply produced no quarantined states")
			}
			for _, sk := range rep.Skipped {
				if sk.Reason == "" {
					t.Fatalf("quarantined state %v has no reason", sk.Victims)
				}
			}
			t.Logf("run completed with %d quarantined states", len(rep.Skipped))
		})
	}
}

// TestHardFaultsDeterministic: even a fully poisoned run is deterministic —
// serial and parallel explorations quarantine the same states and produce
// identical reports.
func TestHardFaultsDeterministic(t *testing.T) {
	run := func(workers int) string {
		opts := paracrash.DefaultOptions()
		opts.Workers = workers
		opts.Retry = paracrash.RetryPolicy{MaxAttempts: 2, Backoff: time.Microsecond}
		opts.Faults = faultinject.New(faultinject.Config{
			Seed: 5, Rate: 1, Kinds: []faultinject.Kind{faultinject.KindErr},
			Sites: []string{"pfs/apply"}, MaxPerPoint: 1 << 30,
		})
		fp, err := runWithOpts(t, nil, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fp
	}
	serial, parallel := run(1), run(4)
	if serial != parallel {
		t.Errorf("poisoned runs diverge:\n--- serial ---\n%s--- workers=4 ---\n%s", serial, parallel)
	}
}

// TestCheckpointResumeIdentical: a second run over a completed journal must
// resume every verdict and still produce the identical report.
func TestCheckpointResumeIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	opts := paracrash.DefaultOptions()
	opts.Checkpoint = paracrash.OpenCheckpoint(path)
	first, err := runWithOpts(t, nil, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts2 := paracrash.DefaultOptions()
	ckpt := paracrash.OpenCheckpoint(path)
	opts2.Checkpoint = ckpt
	second, err := runWithOpts(t, nil, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Errorf("resumed report differs:\n--- first ---\n%s--- resumed ---\n%s", first, second)
	}
	if ckpt.Resumed() == 0 {
		t.Fatal("second run resumed no verdicts from a complete journal")
	}
	if w := ckpt.Warnings(); len(w) != 0 {
		t.Fatalf("unexpected resume warnings: %v", w)
	}
	t.Logf("resumed %d verdicts", ckpt.Resumed())
}

// TestChaosResumeDeterminism is the `make chaos` gate: a run under random
// injected faults is repeatedly killed mid-flight (context deadline) and
// resumed from its checkpoint journal; the eventual report must be
// byte-identical to an uninterrupted, unfaulted run. Covers serial and
// parallel exploration.
func TestChaosResumeDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run("workers="+itoa(workers), func(t *testing.T) {
			base := paracrash.DefaultOptions()
			base.Workers = workers
			baseFP, err := runWithOpts(t, nil, base)
			if err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(t.TempDir(), "ckpt.jsonl")
			deadline := 2 * time.Millisecond
			kills := 0
			var finalFP string
			var resumedTotal int
			for attempt := 0; ; attempt++ {
				if attempt > 60 {
					t.Fatal("chaos run did not converge in 60 kill/resume rounds")
				}
				opts := paracrash.DefaultOptions()
				opts.Workers = workers
				opts.Checkpoint = paracrash.OpenCheckpoint(path)
				opts.Checkpoint.Every = 1 // journal every verdict so each round makes progress
				// Same seed every round: each fresh plan replays the same
				// fault weather, which retries then heal.
				opts.Faults = faultinject.New(faultinject.Config{Seed: 7, Rate: 0.25})

				ctx, cancel := context.WithTimeout(context.Background(), deadline)
				fp, err := runWithOpts(t, ctx, opts)
				cancel()
				if err == nil {
					finalFP = fp
					resumedTotal = opts.Checkpoint.Resumed()
					break
				}
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("chaos round %d died with a non-deadline error: %v", attempt, err)
				}
				kills++
				deadline += deadline / 2 // back off so the run eventually finishes
			}
			if finalFP != baseFP {
				t.Errorf("chaos-resumed report differs from clean baseline after %d kills:\n--- base ---\n%s--- chaos ---\n%s",
					kills, baseFP, finalFP)
			}
			t.Logf("survived %d mid-run kills; final run resumed %d journaled verdicts", kills, resumedTotal)
		})
	}
}

// TestCancelMidMergeNoLeak cancels a latency-faulted parallel optimized run
// — the faults stretch the merge window — and asserts all goroutines drain.
func TestCancelMidMergeNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	opts := paracrash.DefaultOptions()
	opts.Mode = paracrash.ModeOptimized
	opts.Workers = 4
	opts.Faults = faultinject.New(faultinject.Config{
		Seed: 3, Rate: 1, Kinds: []faultinject.Kind{faultinject.KindLatency},
		MaxPerPoint: 1 << 30, Latency: time.Millisecond,
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := runWithOpts(t, ctx, opts)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let workers start publishing to the merge
	cancel()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
