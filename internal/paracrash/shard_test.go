package paracrash_test

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"paracrash/internal/exps"
	"paracrash/internal/faultinject"
	"paracrash/internal/paracrash"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// runShards judges every shard of a count-way partition on fresh clusters
// (each shard in its own process in production; fresh FileSystem instances
// here give the same isolation) and returns the reports.
func runShards(t *testing.T, backend string, prog *workloads.Program, opts paracrash.Options, count int) []*paracrash.ShardReport {
	t.Helper()
	reports := make([]*paracrash.ShardReport, count)
	for i := 0; i < count; i++ {
		fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
		if err != nil {
			t.Fatal(err)
		}
		sr, err := paracrash.RunShard(context.Background(), fs, nil, prog, opts, paracrash.ShardSpec{Index: i, Count: count})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, count, err)
		}
		reports[i] = sr
	}
	return reports
}

// mergeShards merges shard reports on a fresh cluster.
func mergeShards(t *testing.T, backend string, prog *workloads.Program, opts paracrash.Options, reports []*paracrash.ShardReport) *paracrash.Report {
	t.Helper()
	fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := paracrash.MergeShards(context.Background(), fs, nil, prog, opts, reports)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return rep
}

// TestShardMergeEquivalence is the fleet's byte-identity oracle: on every
// backend, judging the crash-state space as a 3-way shard partition on
// separate clusters and merging the reports must reproduce the standalone
// serial report exactly — ReportFingerprint covers verdicts, stat charges,
// class counts and the bug set.
func TestShardMergeEquivalence(t *testing.T) {
	progs := incrementalPrograms(t)
	for _, backend := range exps.FSNames() {
		for _, prog := range progs[:2] {
			for _, mode := range []paracrash.Mode{paracrash.ModeBrute, paracrash.ModeOptimized} {
				t.Run(backend+"/"+prog.Name()+"/"+mode.String(), func(t *testing.T) {
					opts := paracrash.DefaultOptions()
					opts.Mode = mode
					opts.Workers = 1
					standalone := runEngine(t, backend, prog, mode, 1, false)
					merged := mergeShards(t, backend, prog, opts, runShards(t, backend, prog, opts, 3))
					if sf, mf := exps.ReportFingerprint(standalone), exps.ReportFingerprint(merged); sf != mf {
						t.Errorf("3-shard fleet report differs from standalone:\n--- standalone ---\n%s--- fleet ---\n%s", sf, mf)
					}
				})
			}
		}
	}
}

// TestShardMergeEquivalenceKnobs re-runs the byte-identity oracle on one
// backend with the engine ablation knobs flipped: the legacy full-restore
// engine, representative exploration off, and a single-shard partition
// (the degenerate fleet) must all merge to their standalone fingerprints.
func TestShardMergeEquivalenceKnobs(t *testing.T) {
	prog := workloads.Generate(workloads.GenConfig{Seed: 11, Ops: 5, Files: 2, Dirs: 1, WithFsync: true})
	backend := "beegfs"
	cases := []struct {
		name   string
		mut    func(*paracrash.Options)
		shards int
	}{
		{"legacy-engine", func(o *paracrash.Options) { o.DisableIncremental = true }, 3},
		{"legacy-optimized", func(o *paracrash.Options) { o.DisableIncremental = true; o.Mode = paracrash.ModeOptimized }, 3},
		{"no-representative", func(o *paracrash.Options) { o.DisableRepresentative = true }, 3},
		{"single-shard", func(o *paracrash.Options) {}, 1},
		{"many-shards", func(o *paracrash.Options) {}, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := paracrash.DefaultOptions()
			opts.Workers = 1
			tc.mut(&opts)
			fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
			if err != nil {
				t.Fatal(err)
			}
			standalone, err := paracrash.Run(fs, nil, prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			merged := mergeShards(t, backend, prog, opts, runShards(t, backend, prog, opts, tc.shards))
			if sf, mf := exps.ReportFingerprint(standalone), exps.ReportFingerprint(merged); sf != mf {
				t.Errorf("fleet report differs from standalone:\n--- standalone ---\n%s--- fleet ---\n%s", sf, mf)
			}
		})
	}
}

// TestShardMergeValidation: MergeShards must refuse partitions that are not
// complete, consistent and configuration-compatible instead of delivering a
// silently partial report.
func TestShardMergeValidation(t *testing.T) {
	prog := workloads.Generate(workloads.GenConfig{Seed: 11, Ops: 4, Files: 2, Dirs: 1, WithFsync: true})
	backend := "lustre"
	opts := paracrash.DefaultOptions()
	reports := runShards(t, backend, prog, opts, 2)

	merge := func(opts paracrash.Options, reports []*paracrash.ShardReport) error {
		fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
		if err != nil {
			t.Fatal(err)
		}
		_, err = paracrash.MergeShards(context.Background(), fs, nil, prog, opts, reports)
		return err
	}

	if err := merge(opts, nil); err == nil || !strings.Contains(err.Error(), "no shard reports") {
		t.Errorf("empty merge: got %v", err)
	}
	if err := merge(opts, reports[:1]); err == nil || !strings.Contains(err.Error(), "missing report") {
		t.Errorf("incomplete partition: got %v", err)
	}
	if err := merge(opts, []*paracrash.ShardReport{reports[0], reports[0]}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate shard: got %v", err)
	}

	other := opts
	other.Mode = paracrash.ModeOptimized
	if err := merge(other, reports); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("config mismatch: got %v", err)
	}

	mixed := runShards(t, backend, prog, opts, 3)
	if err := merge(opts, []*paracrash.ShardReport{reports[0], mixed[1]}); err == nil || !strings.Contains(err.Error(), "partition") {
		t.Errorf("count mismatch: got %v", err)
	}

	bad := *reports[1]
	bad.StatesGenerated++
	if err := merge(opts, []*paracrash.ShardReport{reports[0], &bad}); err == nil || !strings.Contains(err.Error(), "generated") {
		t.Errorf("generated-space mismatch: got %v", err)
	}

	if err := (paracrash.ShardSpec{Index: 2, Count: 2}).Validate(); err == nil {
		t.Error("out-of-range shard index validated")
	}
	if err := (paracrash.ShardSpec{Index: 0, Count: 0}).Validate(); err == nil {
		t.Error("zero shard count validated")
	}

	fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := paracrash.RunShard(context.Background(), fs, nil, prog, opts, paracrash.ShardSpec{Index: 3, Count: 3}); err == nil {
		t.Error("RunShard accepted an out-of-range shard spec")
	}
}

// TestShardChaosResume: a shard worker killed mid-shard and restarted from
// its shard-scoped checkpoint journal (the fleet's lease-reclaim path) must
// converge to a report whose merge is byte-identical to a standalone run —
// under injected faults, with every round resuming the previous round's
// journal.
func TestShardChaosResume(t *testing.T) {
	prog := workloads.Generate(workloads.GenConfig{Seed: 11, Ops: 5, Files: 2, Dirs: 1, WithFsync: true})
	backend := "lustre"
	opts := paracrash.DefaultOptions()
	opts.Mode = paracrash.ModeOptimized
	opts.Workers = 1
	base := runEngine(t, backend, prog, paracrash.ModeOptimized, 1, false)
	baseFP := exps.ReportFingerprint(base)

	const count = 3
	victim := 1 // the shard that gets chaos-killed
	reports := make([]*paracrash.ShardReport, count)
	for i := 0; i < count; i++ {
		if i == victim {
			continue
		}
		fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
		if err != nil {
			t.Fatal(err)
		}
		sr, err := paracrash.RunShard(context.Background(), fs, nil, prog, opts, paracrash.ShardSpec{Index: i, Count: count})
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = sr
	}

	path := filepath.Join(t.TempDir(), "ckpt-shard.jsonl")
	deadline := 2 * time.Millisecond
	kills := 0
	for attempt := 0; ; attempt++ {
		if attempt > 60 {
			t.Fatal("shard chaos run did not converge in 60 kill/resume rounds")
		}
		fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
		if err != nil {
			t.Fatal(err)
		}
		ropts := opts
		ropts.Checkpoint = paracrash.OpenCheckpoint(path)
		ropts.Checkpoint.Every = 1
		ropts.Faults = faultinject.New(faultinject.Config{Seed: 7, Rate: 0.25})

		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		sr, err := paracrash.RunShard(ctx, fs, nil, prog, ropts, paracrash.ShardSpec{Index: victim, Count: count})
		cancel()
		if err == nil {
			reports[victim] = sr
			break
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("chaos round %d died with a non-deadline error: %v", attempt, err)
		}
		kills++
		deadline += deadline / 2
	}

	merged := mergeShards(t, backend, prog, opts, reports)
	if mf := exps.ReportFingerprint(merged); mf != baseFP {
		t.Errorf("chaos-resumed shard merge differs after %d kills:\n--- standalone ---\n%s--- fleet ---\n%s", kills, baseFP, mf)
	} else {
		t.Logf("survived %d mid-shard kills", kills)
	}
}

// TestShardCheckpointScoping: a shard journal must not resume into a
// different shard of the partition (the fingerprint carries the shard spec),
// so a reclaiming worker can never poison its shard with a neighbour's
// frontier.
func TestShardCheckpointScoping(t *testing.T) {
	prog := workloads.Generate(workloads.GenConfig{Seed: 11, Ops: 4, Files: 2, Dirs: 1, WithFsync: true})
	backend := "lustre"
	opts := paracrash.DefaultOptions()
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")

	run := func(index int) *paracrash.Checkpoint {
		t.Helper()
		fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
		if err != nil {
			t.Fatal(err)
		}
		ropts := opts
		ropts.Checkpoint = paracrash.OpenCheckpoint(path)
		ropts.Checkpoint.Every = 1
		if _, err := paracrash.RunShard(context.Background(), fs, nil, prog, ropts, paracrash.ShardSpec{Index: index, Count: 2}); err != nil {
			t.Fatal(err)
		}
		return ropts.Checkpoint
	}

	first := run(0)
	if first.Resumed() != 0 {
		t.Fatalf("fresh shard run resumed %d verdicts", first.Resumed())
	}
	cross := run(1)
	if cross.Resumed() != 0 {
		t.Errorf("shard 1 resumed %d verdicts from shard 0's journal", cross.Resumed())
	}
	again := run(1)
	if again.Resumed() == 0 {
		t.Error("shard 1 did not resume its own journal")
	}
}
