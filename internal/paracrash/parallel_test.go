package paracrash_test

import (
	"regexp"
	"testing"

	"paracrash/internal/exps"
	"paracrash/internal/paracrash"
	"paracrash/internal/workloads"
)

// durRE matches the wall-clock field of Report.Format, the only part of a
// report that legitimately differs between runs.
var durRE = regexp.MustCompile(`\| [0-9.]+s`)

// runFingerprinted runs one (program, file system) cell and returns both the
// structural fingerprint and the rendered report with timings masked.
func runFingerprinted(t *testing.T, fsName, progName string, mode paracrash.Mode, workers int) (string, string) {
	t.Helper()
	prog, err := exps.ProgramByName(progName)
	if err != nil {
		t.Fatal(err)
	}
	opts := paracrash.DefaultOptions()
	opts.Mode = mode
	opts.Workers = workers
	rep, err := exps.RunOne(fsName, prog, opts, workloads.DefaultH5Params(), exps.ConfigFor(fsName))
	if err != nil {
		t.Fatalf("RunOne(%s on %s, workers=%d): %v", progName, fsName, workers, err)
	}
	return exps.ReportFingerprint(rep), durRE.ReplaceAllString(rep.Format(), "| <dur>")
}

// TestParallelMatchesSerial is the parallel engine's contract: for every
// backend and a representative workload mix, a 4-worker exploration must
// produce a report identical to the serial engine's — same crash states, same
// bugs with the same dedup keys, same statistics, same rendered text modulo
// wall-clock time.
func TestParallelMatchesSerial(t *testing.T) {
	type cell struct {
		prog string
		mode paracrash.Mode
	}
	cells := []cell{
		{"ARVR", paracrash.ModeBrute},
		{"ARVR", paracrash.ModePruning},
		{"ARVR", paracrash.ModeOptimized},
		{"WAL", paracrash.ModePruning},
		{"H5-create", paracrash.ModePruning},
	}
	for _, fsName := range exps.FSNames() {
		for _, c := range cells {
			name := fsName + "/" + c.prog + "/" + c.mode.String()
			t.Run(name, func(t *testing.T) {
				serialFP, serialTxt := runFingerprinted(t, fsName, c.prog, c.mode, 1)
				parFP, parTxt := runFingerprinted(t, fsName, c.prog, c.mode, 4)
				if serialFP != parFP {
					t.Errorf("fingerprint mismatch:\n--- serial ---\n%s--- workers=4 ---\n%s", serialFP, parFP)
				}
				if serialTxt != parTxt {
					t.Errorf("Format mismatch:\n--- serial ---\n%s--- workers=4 ---\n%s", serialTxt, parTxt)
				}
			})
		}
	}
}

// TestParallelWorkerCounts varies the worker count on one cell: any N must
// reproduce the serial report, including N far above the state count.
func TestParallelWorkerCounts(t *testing.T) {
	serialFP, _ := runFingerprinted(t, "beegfs", "ARVR", paracrash.ModeBrute, 1)
	for _, w := range []int{2, 3, 8, 64} {
		fp, _ := runFingerprinted(t, "beegfs", "ARVR", paracrash.ModeBrute, w)
		if fp != serialFP {
			t.Errorf("workers=%d: fingerprint differs from serial", w)
		}
	}
}
