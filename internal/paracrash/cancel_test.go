package paracrash_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"paracrash/internal/paracrash"
	"paracrash/internal/pfs"
	"paracrash/internal/pfs/beegfs"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// newCancelFS builds the ARVR/BeeGFS cell used by the cancellation tests.
func newCancelFS(t *testing.T) pfs.FileSystem {
	t.Helper()
	return beegfs.New(pfs.DefaultConfig(), trace.NewRecorder())
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := paracrash.RunContext(ctx, newCancelFS(t), nil, workloads.ARVR(), paracrash.DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextNilMatchesRun(t *testing.T) {
	opts := paracrash.DefaultOptions()
	opts.Workers = 1
	want, err := paracrash.Run(newCancelFS(t), nil, workloads.ARVR(), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := paracrash.RunContext(nil, newCancelFS(t), nil, workloads.ARVR(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Bugs) != len(want.Bugs) || got.Inconsistent != want.Inconsistent {
		t.Fatalf("paracrash.RunContext(nil) report (bugs=%d, inconsistent=%d) differs from Run (bugs=%d, inconsistent=%d)",
			len(got.Bugs), got.Inconsistent, len(want.Bugs), want.Inconsistent)
	}
}

// TestRunContextCancelParallelNoLeak cancels a parallel brute run mid-flight
// and asserts the worker goroutines all exit.
func TestRunContextCancelParallelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	opts := paracrash.DefaultOptions()
	opts.Mode = paracrash.ModeBrute
	opts.Workers = 4
	opts.Emulator.K = 2 // widen the state space so cancellation lands mid-run

	done := make(chan error, 1)
	go func() {
		_, err := paracrash.RunContext(ctx, newCancelFS(t), nil, workloads.ARVR(), opts)
		done <- err
	}()
	// Let the run start, then pull the plug.
	time.Sleep(5 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		// nil is possible when the run finished before the cancel landed;
		// anything else must wrap the context error.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return")
	}

	// Workers must drain; allow the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestRunContextDeadline bounds a run by deadline: the run must return
// promptly with the deadline error (or nil when it beat the clock).
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	opts := paracrash.DefaultOptions()
	opts.Mode = paracrash.ModeBrute
	opts.Workers = 1
	opts.Emulator.K = 2
	start := time.Now()
	if _, err := paracrash.RunContext(ctx, newCancelFS(t), nil, workloads.ARVR(), opts); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want nil or context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline-bounded run took %v", elapsed)
	}
}
