package paracrash

import (
	"fmt"
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/pfs/beegfs"
	"paracrash/internal/trace"
)

// TestShardStatesPartition checks the sharding invariants the merge relies
// on: every crash-state index appears in exactly one shard, and shard sizes
// differ by at most one.
func TestShardStatesPartition(t *testing.T) {
	for n := 0; n <= 17; n++ {
		for w := 1; w <= 6; w++ {
			shards := shardStates(n, w)
			seen := make(map[int]bool)
			minSz, maxSz := n+1, 0
			for _, ids := range shards {
				if len(ids) == 0 && n > 0 {
					t.Errorf("n=%d w=%d: empty shard", n, w)
				}
				if len(ids) < minSz {
					minSz = len(ids)
				}
				if len(ids) > maxSz {
					maxSz = len(ids)
				}
				for _, id := range ids {
					if seen[id] {
						t.Fatalf("n=%d w=%d: index %d in two shards", n, w, id)
					}
					seen[id] = true
				}
			}
			if len(seen) != n {
				t.Errorf("n=%d w=%d: union has %d indices, want %d", n, w, len(seen), n)
			}
			for id := 0; id < n; id++ {
				if !seen[id] {
					t.Errorf("n=%d w=%d: index %d missing", n, w, id)
				}
			}
			if n > 0 && maxSz-minSz > 1 {
				t.Errorf("n=%d w=%d: shard sizes unbalanced (%d..%d)", n, w, minSz, maxSz)
			}
		}
	}
}

// renameWorkload is a minimal in-package workload (the workloads package
// imports paracrash, so it cannot be used here): the classic
// write-then-rename pattern that trips BeeGFS reordering.
type renameWorkload struct{}

func (renameWorkload) Name() string { return "unit-rename" }

func (renameWorkload) Preamble(fs pfs.FileSystem) error {
	return fs.Client(0).Mkdir("/d")
}

func (renameWorkload) Run(fs pfs.FileSystem) error {
	c := fs.Client(0)
	if err := c.Create("/d/tmp"); err != nil {
		return err
	}
	if err := c.Append("/d/tmp", []byte("payload-0123456789")); err != nil {
		return err
	}
	if err := c.Close("/d/tmp"); err != nil {
		return err
	}
	return c.Rename("/d/tmp", "/d/final")
}

// TestCloneDetachedIsIndependent checks the Cloner contract the workers
// depend on: mutating a clone's stores never leaks into the original.
func TestCloneDetachedIsIndependent(t *testing.T) {
	var fs pfs.FileSystem = beegfs.New(pfs.DefaultConfig(), trace.NewRecorder())
	if err := (renameWorkload{}).Preamble(fs); err != nil {
		t.Fatal(err)
	}
	before := fs.Snapshot()

	clone := fs.(pfs.Cloner).CloneDetached()
	if clone.Recorder() == fs.Recorder() {
		t.Fatal("clone shares the original's recorder")
	}
	clone.Restore(before)
	c := clone.Client(0)
	if err := c.Create("/d/extra"); err != nil {
		t.Fatalf("clone create: %v", err)
	}
	if err := c.Close("/d/extra"); err != nil {
		t.Fatal(err)
	}

	tree, err := fs.Mount()
	if err != nil {
		t.Fatalf("original mount after clone mutation: %v", err)
	}
	if _, ok := tree.Entries["/d/extra"]; ok {
		t.Error("clone mutation leaked into the original deployment")
	}
	ctree, err := clone.Mount()
	if err != nil {
		t.Fatalf("clone mount: %v", err)
	}
	if _, ok := ctree.Entries["/d/extra"]; !ok {
		t.Error("clone lost its own mutation")
	}
}

// TestRunParallelMatchesSerialWhiteBox drives Run directly (no exps helper)
// on a local workload and asserts the parallel engine visits the same state
// space: identical generated/checked counts, bugs, and per-state records.
func TestRunParallelMatchesSerialWhiteBox(t *testing.T) {
	for _, mode := range []Mode{ModeBrute, ModePruning, ModeOptimized} {
		run := func(workers int) *Report {
			opts := DefaultOptions()
			opts.Mode = mode
			opts.Workers = workers
			fs := beegfs.New(pfs.DefaultConfig(), trace.NewRecorder())
			rep, err := Run(fs, nil, renameWorkload{}, opts)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", mode, workers, err)
			}
			return rep
		}
		serial, par := run(1), run(4)
		stats1, statsN := serial.Stats, par.Stats
		stats1.Duration, statsN.Duration = 0, 0
		if stats1 != statsN {
			t.Errorf("%v: stats differ\nserial:   %+v\nworkers4: %+v", mode, stats1, statsN)
		}
		if len(serial.Bugs) != len(par.Bugs) {
			t.Fatalf("%v: %d bugs serial vs %d parallel", mode, len(serial.Bugs), len(par.Bugs))
		}
		for i := range serial.Bugs {
			if *serial.Bugs[i] != *par.Bugs[i] {
				t.Errorf("%v: bug %d differs:\n%+v\n%+v", mode, i, *serial.Bugs[i], *par.Bugs[i])
			}
		}
		if len(serial.States) != len(par.States) {
			t.Fatalf("%v: %d state records serial vs %d parallel", mode, len(serial.States), len(par.States))
		}
		for i := range serial.States {
			a, b := serial.States[i], par.States[i]
			if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
				t.Errorf("%v: state %d differs:\n%+v\n%+v", mode, i, a, b)
			}
		}
	}
}
