// Checkpoint/resume: the explorer journals every completed crash-state
// verdict to a versioned JSONL file so an interrupted run (crash, kill,
// power loss — the very failures this tool studies) can be resumed without
// redoing finished work.
//
// The journal's first line is a header carrying the format version and a
// fingerprint of every option that influences verdicts (workload, file
// system, mode, models, emulator bounds — but not Workers, Retry, Faults or
// Obs, which are verdict-transparent). On resume a mismatched header
// discards the journal with a warning instead of poisoning the run with
// verdicts computed under different rules. A truncated tail record — the
// expected artifact of dying mid-write — is likewise dropped with a
// warning; everything before it is kept.
//
// Durability goes through internal/statefs, the audited persistence layer
// crash-tested by `make selfcheck`: the first flush (or any flush after a
// resume discarded incompatible or damaged content) rewrites the whole
// journal atomically (temp + fsync + rename + directory fsync), and every
// later flush appends only the new records with an fsync before they are
// acknowledged — O(new) instead of O(all), and a record is never treated
// as checkpointed before it is durable. A crash mid-append leaves a torn
// tail record, which resume drops (with everything before it kept) and the
// next flush rewrites away. Quarantined (skipped) verdicts are never
// journaled: a resumed run re-attempts them, since the fault that poisoned
// them may be gone.
package paracrash

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"paracrash/internal/statefs"
)

// The journal's statefs sites: the atomic full rewrite (journal creation
// and post-damage cleanup) and the incremental fsynced append.
var (
	siteCkptRewrite = statefs.Register("core/ckpt-rewrite", statefs.OpAtomic)
	siteCkptAppend  = statefs.Register("core/ckpt-append", statefs.OpJournal)
)

// checkpointVersion is the journal format version; bump on any change to
// ckptHeader or ckptRecord.
const checkpointVersion = 1

// defaultCheckpointEvery is the record-batch size between automatic
// flushes; the journal is also flushed on every run exit path.
const defaultCheckpointEvery = 32

// ckptHeader is the journal's first line.
type ckptHeader struct {
	Version int    `json:"version"`
	Config  string `json:"config"`
}

// ckptRecord is one journaled crash-state verdict.
type ckptRecord struct {
	// Key is the crash state's front|keep identity (stateKey).
	Key         string `json:"key"`
	Consistent  bool   `json:"consistent,omitempty"`
	Layer       string `json:"layer,omitempty"`
	Consequence string `json:"consequence,omitempty"`
	State       string `json:"state,omitempty"`
	PFSLegalN   int    `json:"pfs_legal_n,omitempty"`
	LibLegalN   int    `json:"lib_legal_n,omitempty"`
}

// toResult converts a journaled record back into the engine's verdict form.
func (r ckptRecord) toResult() checkResult {
	return checkResult{
		consistent:  r.Consistent,
		layer:       r.Layer,
		consequence: r.Consequence,
		state:       r.State,
		pfsLegalN:   r.PFSLegalN,
		libLegalN:   r.LibLegalN,
	}
}

// Checkpoint is a crash-state verdict journal bound to one file. Create it
// with OpenCheckpoint, hand it to Options.Checkpoint, and the run loads any
// compatible previous journal, continues from the frontier and keeps
// journaling. Safe for concurrent use (the engine records from the merge
// goroutine while callers may Flush).
type Checkpoint struct {
	path string

	// Every is the number of new records between automatic flushes
	// (defaultCheckpointEvery when 0). The run always flushes on exit, so
	// Every only bounds how much work an unclean death can lose.
	Every int

	mu       sync.Mutex
	header   ckptHeader
	records  map[string]ckptRecord
	order    []string // insertion order, for stable journal files
	resumed  int
	warnings []string
	dirty    int
	// persisted counts the records already durable in the file; a flush
	// appends order[persisted:] only. 0 means the next flush must rewrite
	// the whole journal (fresh file, or resume discarded its content).
	persisted int
}

// OpenCheckpoint binds a checkpoint journal to path. The file is not read
// until a run resumes from it, and not created until the first flush.
func OpenCheckpoint(path string) *Checkpoint {
	return &Checkpoint{path: path, records: map[string]ckptRecord{}}
}

// Path returns the journal file path.
func (c *Checkpoint) Path() string { return c.path }

// Resumed returns the number of verdicts loaded from the journal by the
// last resume.
func (c *Checkpoint) Resumed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumed
}

// Warnings returns the non-fatal anomalies of the last resume (truncated
// tail record, configuration mismatch, duplicate keys).
func (c *Checkpoint) Warnings() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.warnings...)
}

// resume loads the journal for a run whose verdict-relevant configuration
// fingerprints to config. A missing file is a fresh start; an incompatible
// or damaged one is discarded with warnings. Only I/O errors other than
// non-existence are fatal.
func (c *Checkpoint) resume(config string) (map[string]checkResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.header = ckptHeader{Version: checkpointVersion, Config: config}
	c.records = map[string]ckptRecord{}
	c.order = nil
	c.resumed = 0
	c.warnings = nil
	c.dirty = 0
	c.persisted = 0

	f, err := os.Open(c.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("reading checkpoint %s: %w", c.path, err)
		}
		c.warnings = append(c.warnings, "checkpoint file is empty; starting fresh")
		return nil, nil
	}
	var hdr ckptHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		c.warnings = append(c.warnings, fmt.Sprintf("unreadable checkpoint header (%v); starting fresh", err))
		return nil, nil
	}
	if hdr.Version != checkpointVersion {
		c.warnings = append(c.warnings, fmt.Sprintf("checkpoint version %d != %d; starting fresh", hdr.Version, checkpointVersion))
		return nil, nil
	}
	if hdr.Config != config {
		c.warnings = append(c.warnings, "checkpoint was written by a run with a different configuration; starting fresh")
		return nil, nil
	}

	out := map[string]checkResult{}
	line := 1
	for sc.Scan() {
		line++
		var rec ckptRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Key == "" {
			// A torn tail write is the normal way an interrupted run dies;
			// anything after it is untrustworthy.
			c.warnings = append(c.warnings, fmt.Sprintf("checkpoint record at line %d is damaged; dropping it and the rest of the journal", line))
			break
		}
		if _, dup := c.records[rec.Key]; dup {
			c.warnings = append(c.warnings, fmt.Sprintf("duplicate checkpoint record at line %d ignored", line))
			continue
		}
		c.records[rec.Key] = rec
		c.order = append(c.order, rec.Key)
		out[rec.Key] = rec.toResult()
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading checkpoint %s: %w", c.path, err)
	}
	c.resumed = len(out)
	// A clean load means the file is exactly header + records and appends
	// may continue it; any warning (torn tail, duplicates, incompatible
	// header) leaves persisted at 0 so the next flush rewrites it clean.
	if len(c.warnings) == 0 {
		c.persisted = len(c.order)
	}
	return out, nil
}

// record journals one freshly computed verdict, flushing every Every new
// records. Skipped (quarantined) verdicts are not journaled so a resumed
// run re-attempts them.
func (c *Checkpoint) record(key string, r checkResult) error {
	if r.skipped {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.records[key]; ok {
		return nil
	}
	rec := ckptRecord{
		Key:         key,
		Consistent:  r.consistent,
		Layer:       r.layer,
		Consequence: r.consequence,
		State:       r.state,
		PFSLegalN:   r.pfsLegalN,
		LibLegalN:   r.libLegalN,
	}
	c.records[key] = rec
	c.order = append(c.order, key)
	c.dirty++
	every := c.Every
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	if c.dirty >= every {
		return c.flushLocked()
	}
	return nil
}

// Flush writes the journal to disk if any records were added since the last
// flush. The run calls it on every exit path; callers may call it at any
// time.
func (c *Checkpoint) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirty == 0 {
		return nil
	}
	return c.flushLocked()
}

// flushLocked makes the journal durable: a full atomic rewrite (header +
// every record) when the file does not yet reflect a clean prefix of the
// run, an fsynced append of just the new records otherwise. Either way no
// record counts as flushed until it is on disk.
func (c *Checkpoint) flushLocked() error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if c.persisted == 0 {
		if err := enc.Encode(c.header); err != nil {
			return err
		}
		for _, key := range c.order {
			if err := enc.Encode(c.records[key]); err != nil {
				return err
			}
		}
		if err := statefs.WriteBytes(siteCkptRewrite, c.path, buf.Bytes()); err != nil {
			return err
		}
	} else if len(c.order) > c.persisted {
		for _, key := range c.order[c.persisted:] {
			if err := enc.Encode(c.records[key]); err != nil {
				return err
			}
		}
		if err := statefs.Append(siteCkptAppend, c.path, buf.Bytes()); err != nil {
			return err
		}
	}
	c.persisted = len(c.order)
	c.dirty = 0
	return nil
}

// checkpointConfig fingerprints every option that influences crash-state
// verdicts. Workers, Retry, Faults and Obs are deliberately excluded: they
// change scheduling, effort and fault weather, never a verdict, so a
// journal written under one of each is valid under any other.
func checkpointConfig(workload, fsName string, opts Options) string {
	// norep is part of the fingerprint although it never changes a verdict:
	// representative runs journal one record per class (members are
	// attributed, never journaled), so resuming a brute journal into a
	// representative run — or vice versa — would change which states are
	// charged as resumed and break the byte-identical-resume guarantee.
	// noinc is fingerprinted for the same reason effort-only knobs like
	// norep are: the two engines journal the same verdicts, but resuming a
	// journal written by one engine into the other would change the charge
	// replay (full-cost vs arithmetic delta) and break byte-identical resume.
	return fmt.Sprintf("v%d|%s|%s|%s|pfs=%d|lib=%d|k=%d|fm=%d|mf=%d|ms=%d|mlo=%d|mls=%d|nosem=%t|notsp=%t|norep=%t|noinc=%t",
		checkpointVersion, workload, fsName, opts.Mode,
		opts.PFSModel, opts.LibModel,
		opts.Emulator.K, opts.Emulator.FrontMode, opts.Emulator.MaxFronts, opts.Emulator.MaxStates,
		opts.MaxLayerOps, opts.MaxLegalStates,
		opts.DisableSemanticPruning, opts.DisableTSP, opts.DisableRepresentative, opts.DisableIncremental)
}
