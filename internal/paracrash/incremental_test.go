package paracrash_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"paracrash/internal/causality"
	"paracrash/internal/exps"
	"paracrash/internal/faultinject"
	"paracrash/internal/paracrash"
	"paracrash/internal/trace"
	"paracrash/internal/workloads"
)

// incrementalPrograms is the differential suite's workload matrix: one
// program per family (CrashMonkey-style random generation, B3-style bounded
// enumeration), both small enough that every backend explores them in
// milliseconds yet with enough renames/unlinks to exercise delta replay.
func incrementalPrograms(t *testing.T) []*workloads.Program {
	t.Helper()
	progs := []*workloads.Program{
		workloads.Generate(workloads.GenConfig{Seed: 11, Ops: 5, Files: 2, Dirs: 1, WithFsync: true}),
	}
	n := 0
	workloads.Enumerate(workloads.EnumConfig{MaxOps: 2, Files: 2, WithFsync: true}, func(p *workloads.Program) bool {
		// Take a spread of enumerated bodies rather than the first few
		// (early programs are single-op and reconstruct trivially).
		if n%7 == 3 {
			progs = append(progs, p)
		}
		n++
		return len(progs) < 4
	})
	if len(progs) < 2 {
		t.Fatal("workload matrix is degenerate")
	}
	return progs
}

// runEngine runs one (backend, program) cell with the given engine selection
// and returns the report.
func runEngine(t *testing.T, backend string, prog *workloads.Program, mode paracrash.Mode, workers int, legacy bool) *paracrash.Report {
	t.Helper()
	fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	opts := paracrash.DefaultOptions()
	opts.Mode = mode
	opts.Workers = workers
	opts.DisableIncremental = legacy
	rep, err := paracrash.Run(fs, nil, prog, opts)
	if err != nil {
		t.Fatalf("%s/%s: %v", backend, prog.Name(), err)
	}
	return rep
}

// TestIncrementalEngineEquivalence is the engine-differential oracle: on
// every backend and both workload families, the O(delta) incremental engine
// must reach the exact verdicts of the legacy full-restore engine — same
// inconsistent states, consequences, legal-state counts, bugs and skip list
// (the ReportKernel) — while paying no more restores or op replays, and the
// incremental engine itself must be schedule-independent (serial and
// parallel runs byte-identical including effort stats).
func TestIncrementalEngineEquivalence(t *testing.T) {
	progs := incrementalPrograms(t)
	for _, backend := range exps.FSNames() {
		for _, prog := range progs {
			for _, mode := range []paracrash.Mode{paracrash.ModeBrute, paracrash.ModeOptimized} {
				t.Run(backend+"/"+prog.Name()+"/"+mode.String(), func(t *testing.T) {
					legacy := runEngine(t, backend, prog, mode, 1, true)
					inc := runEngine(t, backend, prog, mode, 1, false)
					if lk, ik := exps.ReportKernel(legacy), exps.ReportKernel(inc); lk != ik {
						t.Errorf("verdicts diverge between engines:\n--- legacy ---\n%s--- incremental ---\n%s", lk, ik)
					}
					if inc.Stats.ServerRestores > legacy.Stats.ServerRestores {
						t.Errorf("incremental charged more restores than legacy: %d > %d",
							inc.Stats.ServerRestores, legacy.Stats.ServerRestores)
					}
					if inc.Stats.OpsReplayed > legacy.Stats.OpsReplayed {
						t.Errorf("incremental charged more op replays than legacy: %d > %d",
							inc.Stats.OpsReplayed, legacy.Stats.OpsReplayed)
					}

					par := runEngine(t, backend, prog, mode, 4, false)
					if sf, pf := exps.ReportFingerprint(inc), exps.ReportFingerprint(par); sf != pf {
						t.Errorf("incremental serial and parallel runs diverge:\n--- serial ---\n%s--- workers=4 ---\n%s", sf, pf)
					}
				})
			}
		}
	}
}

// TestIncrementalReconstructionContent is the state-level differential: on
// every backend, reconstructing each crash state the incremental way (only
// the crashed servers restored, each replaying only its own kept ops, in
// per-server order) must leave the cluster byte-identical — Serialize of
// every store — to the legacy way (every server restored, kept ops replayed
// in universe order). This is the physical-commutativity invariant the
// O(delta) engine rests on, checked directly against the stores rather than
// through verdicts.
func TestIncrementalReconstructionContent(t *testing.T) {
	prog := workloads.Generate(workloads.GenConfig{Seed: 23, Ops: 5, Files: 2, Dirs: 1, WithFsync: true})
	for _, backend := range exps.FSNames() {
		t.Run(backend, func(t *testing.T) {
			fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
			if err != nil {
				t.Fatal(err)
			}
			rec := fs.Recorder()
			rec.SetEnabled(false)
			if err := prog.Preamble(fs); err != nil {
				t.Fatal(err)
			}
			initial := fs.Snapshot()
			rec.Reset()
			rec.SetEnabled(true)
			if err := prog.Run(fs); err != nil {
				t.Fatal(err)
			}
			rec.SetEnabled(false)

			g := causality.Build(rec.Ops())
			emu := paracrash.NewEmulator(g, fs.PersistConfig())
			serverOps := emu.ServerOps()

			serialize := func() (content, hash string) {
				st := fs.Snapshot()
				for _, p := range fs.Procs() {
					content += "== " + p + " ==\n"
					if f, ok := st.FS[p]; ok {
						content += f.Serialize()
						hash += f.Hash() + "|"
					}
					if d, ok := st.Dev[p]; ok {
						content += d.Serialize()
						hash += d.Hash() + "|"
					}
				}
				return content, hash
			}

			checked := 0
			emu.Generate(paracrash.DefaultOptions().Emulator, func(cs paracrash.CrashState) bool {
				fs.Restore(initial)
				for _, i := range emu.Universe {
					if cs.Keep.Get(i) {
						_ = fs.ApplyLowermost(g.Ops[i])
					}
				}
				wantContent, wantHash := serialize()

				fs.Restore(initial)
				for p, ops := range serverOps {
					fs.RestoreServer(initial, p)
					for _, i := range ops {
						if cs.Keep.Get(i) {
							_ = fs.ApplyLowermost(g.Ops[i])
						}
					}
				}
				gotContent, gotHash := serialize()
				if gotContent != wantContent {
					t.Errorf("state %d: per-server reconstruction diverges\n--- universe order ---\n%s--- per-server ---\n%s",
						checked, wantContent, gotContent)
					return false
				}
				if gotHash != wantHash {
					t.Errorf("state %d: content identical but Hash diverges: %q vs %q", checked, wantHash, gotHash)
					return false
				}
				checked++
				return true
			})
			if checked == 0 {
				t.Fatal("no crash states generated; the differential is vacuous")
			}
			t.Logf("%d crash states byte-identical under both reconstructions", checked)
		})
	}
}

// TestIncrementalFaultTransparency: injected faults during incremental
// reconstruction must stay invisible — the faulted run heals through retries
// (a fault mid-delta marks the server dirty, so the retry re-restores from a
// cached prefix) and reproduces the unfaulted report byte-for-byte,
// including the arithmetic effort charges. lustre exercises the kernel-level
// shared-disk path whose cross-server WAL recovery is the hardest case.
func TestIncrementalFaultTransparency(t *testing.T) {
	prog := workloads.Generate(workloads.GenConfig{Seed: 11, Ops: 5, Files: 2, Dirs: 1, WithFsync: true})
	for _, backend := range []string{"beegfs", "lustre"} {
		for _, workers := range []int{1, 4} {
			t.Run(backend+"/workers="+itoa(workers), func(t *testing.T) {
				base := runEngine(t, backend, prog, paracrash.ModeOptimized, workers, false)

				fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
				if err != nil {
					t.Fatal(err)
				}
				opts := paracrash.DefaultOptions()
				opts.Mode = paracrash.ModeOptimized
				opts.Workers = workers
				plan := faultinject.New(faultinject.Config{Seed: 42, Rate: 0.3})
				opts.Faults = plan
				faulted, err := paracrash.Run(fs, nil, prog, opts)
				if err != nil {
					t.Fatalf("faulted incremental run errored instead of healing: %v", err)
				}
				if plan.Injected() == 0 {
					t.Skip("no faults hit this cell; transparency is vacuous here")
				}
				if bf, ff := exps.ReportFingerprint(base), exps.ReportFingerprint(faulted); bf != ff {
					t.Errorf("faulted incremental report differs from clean baseline:\n--- clean ---\n%s--- faulted ---\n%s", bf, ff)
				}
			})
		}
	}
}

// TestIncrementalChaosResume: the incremental engine under kill/resume chaos
// — random injected faults plus repeated mid-run deadline kills, resuming
// from the checkpoint journal each round — must converge to the byte-exact
// report of a clean uninterrupted incremental run. The arithmetic charge
// simulation makes resumed verdicts charge what a fresh serial walk would,
// so even ServerRestores/OpsReplayed survive the chaos unchanged.
func TestIncrementalChaosResume(t *testing.T) {
	prog := workloads.Generate(workloads.GenConfig{Seed: 11, Ops: 5, Files: 2, Dirs: 1, WithFsync: true})
	backend := "lustre"
	base := runEngine(t, backend, prog, paracrash.ModeOptimized, 1, false)
	baseFP := exps.ReportFingerprint(base)

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	deadline := 2 * time.Millisecond
	kills := 0
	for attempt := 0; ; attempt++ {
		if attempt > 60 {
			t.Fatal("chaos run did not converge in 60 kill/resume rounds")
		}
		fs, err := exps.NewFS(backend, exps.ConfigFor(backend), trace.NewRecorder())
		if err != nil {
			t.Fatal(err)
		}
		opts := paracrash.DefaultOptions()
		opts.Mode = paracrash.ModeOptimized
		opts.Checkpoint = paracrash.OpenCheckpoint(path)
		opts.Checkpoint.Every = 1
		opts.Faults = faultinject.New(faultinject.Config{Seed: 7, Rate: 0.25})

		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		rep, err := paracrash.RunContext(ctx, fs, nil, prog, opts)
		cancel()
		if err == nil {
			if fp := exps.ReportFingerprint(rep); fp != baseFP {
				t.Errorf("chaos-resumed incremental report differs after %d kills:\n--- clean ---\n%s--- chaos ---\n%s",
					kills, baseFP, fp)
			}
			t.Logf("survived %d mid-run kills; final round resumed %d verdicts", kills, opts.Checkpoint.Resumed())
			return
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("chaos round %d died with a non-deadline error: %v", attempt, err)
		}
		kills++
		deadline += deadline / 2
	}
}
