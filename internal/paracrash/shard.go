// Shard-scoped exploration: the cross-process half of the fleet design.
// A coordinator partitions one run's crash-state space into Count shards by
// dealing the deterministic generation order round-robin (the same dealing
// shardStates uses in-process), hands each shard to a worker process, and
// merges the shard reports back into the byte-identical serial report.
//
// RunShard is the worker side: it rebuilds the full analysis state (trace,
// causality graph, emulator universe, golden states — prepare is pure per
// configuration, so every process derives the identical generation order),
// judges only the states whose generation index falls in its shard, and
// returns their verdicts in a serializable ShardReport. Workers never prune
// speculatively — a worker process has no view of the merge's BugSet, so it
// judges every state it owns; the merge prunes, exactly as the in-process
// parallel engine's merge pass does for speculatively skipped states.
//
// MergeShards is the coordinator side: it validates that the shard reports
// cover the partition and were produced under the same verdict-relevant
// configuration, then replays the full serial pipeline resolving checks
// through the collected verdicts (the outcomeFor seam the in-process merge
// already uses), computing locally only what no shard judged (classifier
// probes outside the generated set). The resulting report is byte-identical
// to RunContext — same Stats, same state keys, same bug set — which is what
// lets a fleet run stand in for a standalone one.
package paracrash

import (
	"context"
	"fmt"

	"paracrash/internal/obs"
	"paracrash/internal/pfs"
)

// ShardSpec selects one shard of a partitioned crash-state space: the
// states whose generation index i satisfies i % Count == Index.
type ShardSpec struct {
	// Index is this shard's position, 0 <= Index < Count.
	Index int `json:"index"`
	// Count is the total number of shards in the partition.
	Count int `json:"count"`
}

// String renders the spec as "index/count".
func (sp ShardSpec) String() string { return fmt.Sprintf("%d/%d", sp.Index, sp.Count) }

// Validate reports whether the spec denotes a real shard.
func (sp ShardSpec) Validate() error {
	if sp.Count < 1 {
		return fmt.Errorf("paracrash: shard count %d < 1", sp.Count)
	}
	if sp.Index < 0 || sp.Index >= sp.Count {
		return fmt.Errorf("paracrash: shard index %d outside [0,%d)", sp.Index, sp.Count)
	}
	return nil
}

// suffix is the shard's checkpoint-fingerprint extension: a shard journal
// resumes only into the same shard of the same partition.
func (sp ShardSpec) suffix() string { return fmt.Sprintf("|shard=%d/%d", sp.Index, sp.Count) }

// indices returns the generation indices this shard owns out of n states —
// the round-robin dealing shardStates uses, expressed per shard.
func (sp ShardSpec) indices(n int) []int {
	var ids []int
	for i := sp.Index; i < n; i += sp.Count {
		ids = append(ids, i)
	}
	return ids
}

// Verdict is one crash-state verdict in wire form: checkResult plus the
// state's front|keep key, serializable so worker processes can ship their
// judgements to the coordinator through the store.
type Verdict struct {
	// Key is the crash state's front|keep identity (the check-cache key).
	Key         string `json:"key"`
	Consistent  bool   `json:"consistent,omitempty"`
	Layer       string `json:"layer,omitempty"`
	Consequence string `json:"consequence,omitempty"`
	State       string `json:"state,omitempty"`
	PFSLegalN   int    `json:"pfs_legal_n,omitempty"`
	LibLegalN   int    `json:"lib_legal_n,omitempty"`
	// Skipped marks a quarantined state (every attempt faulted); Consequence
	// then holds the quarantine reason. Skipped verdicts ride along so the
	// merge reports the state under Report.Skipped instead of re-attempting
	// a reconstruction the worker already proved poisoned.
	Skipped bool `json:"skipped,omitempty"`
}

// newVerdict converts an engine verdict to wire form.
func newVerdict(key string, r checkResult) Verdict {
	return Verdict{
		Key:         key,
		Consistent:  r.consistent,
		Layer:       r.layer,
		Consequence: r.consequence,
		State:       r.state,
		PFSLegalN:   r.pfsLegalN,
		LibLegalN:   r.libLegalN,
		Skipped:     r.skipped,
	}
}

// result converts a wire verdict back to the engine's form.
func (v Verdict) result() checkResult {
	return checkResult{
		consistent:  v.Consistent,
		layer:       v.Layer,
		consequence: v.Consequence,
		state:       v.State,
		pfsLegalN:   v.PFSLegalN,
		libLegalN:   v.LibLegalN,
		skipped:     v.Skipped,
	}
}

// ShardReport is RunShard's output: every verdict of one shard, plus the
// provenance MergeShards validates before trusting it.
type ShardReport struct {
	// Shard identifies the partition slice these verdicts cover.
	Shard ShardSpec `json:"shard"`
	// Config is the verdict-relevant configuration fingerprint of the run
	// that produced the verdicts (the checkpoint fingerprint). MergeShards
	// refuses reports whose fingerprint differs from its own options.
	Config string `json:"config"`
	// StatesGenerated is the size of the full generated crash-state space
	// the shard was dealt from; every shard of a partition must agree.
	StatesGenerated int `json:"states_generated"`
	// StatesChecked counts the states this shard actually reconstructed and
	// judged (representative-mode members attribute without reconstruction).
	// Informational — the merge recomputes all Stats itself.
	StatesChecked int `json:"states_checked"`
	// Verdicts holds one entry per owned state, in generation order.
	Verdicts []Verdict `json:"verdicts"`
}

// RunShard executes the pipeline for exactly one shard of the crash-state
// space and returns the shard's verdicts. The preparation phases (preamble,
// traced run, causality analysis, golden replay) run in full — they are
// what make the generation order, and with it the shard partition, stable
// across processes. Options.Workers is ignored: a shard explores serially
// (fleet parallelism is between processes, not within a shard).
//
// With Options.Checkpoint set, the shard journals verdicts under a
// shard-scoped fingerprint and resumes from a compatible journal, so a
// worker that reclaims a dead worker's shard continues from the dead
// worker's frontier instead of starting over.
func RunShard(ctx context.Context, fs pfs.FileSystem, lib Library, w Workload, opts Options, shard ShardSpec) (*ShardReport, error) {
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s, err := prepare(ctx, fs, lib, w, opts)
	if err != nil {
		return nil, err
	}
	config := checkpointConfig(w.Name(), fs.Name(), opts)
	if opts.Checkpoint != nil {
		if err := s.resumeCheckpoint(config + shard.suffix()); err != nil {
			return nil, err
		}
		defer func() {
			if err := opts.Checkpoint.Flush(); err != nil {
				opts.Obs.Counter("checkpoint/flush-errors").Inc()
			}
		}()
	}

	// Generate the full state space — the dealing is positional, so a shard
	// must see the same list every process sees — then keep our slice.
	stopGen := opts.Obs.Phase(obs.PhaseGenerate)
	var states []CrashState
	generated := s.emu.Generate(opts.emulatorConfig(), func(cs CrashState) bool {
		states = append(states, cs)
		return ctx.Err() == nil
	})
	stopGen()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("paracrash: shard cancelled: %w", err)
	}
	ids := shard.indices(len(states))
	opts.Obs.Counter("states/generated").Add(int64(generated))
	opts.Obs.Gauge("shard/states").Set(int64(len(ids)))

	// Judge the shard with the in-process worker loops: an empty BugSet (no
	// speculative pruning cross-process) and a board to collect verdicts.
	// The loops publish a verdict for every owned id unless cancelled.
	board := newResultBoard(len(states))
	bugs := NewBugSet()
	pending := opts.Obs.Gauge("shard/pending")
	stopExplore := opts.Obs.Phase(obs.PhaseExplore)
	switch {
	case s.incremental():
		s.exploreShardIncremental(states, ids, bugs, board, pending)
	case opts.Mode == ModeOptimized:
		s.exploreShardOptimized(states, ids, bugs, board, pending)
	default:
		s.exploreShard(states, ids, bugs, board, pending)
	}
	stopExplore()

	// Leave the cluster at the untouched post-run state, like RunContext.
	fs.Restore(s.initial)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("paracrash: shard cancelled: %w", err)
	}

	rep := &ShardReport{Shard: shard, Config: config, StatesGenerated: generated}
	for _, id := range ids {
		res, ok := board.await(id) // published: the loops covered every id
		if !ok {
			return nil, fmt.Errorf("paracrash: shard %s: no verdict for state %d", shard, id)
		}
		rep.Verdicts = append(rep.Verdicts, newVerdict(stateKey(states[id]), res))
	}
	rep.StatesChecked = len(s.checkCache)
	return rep, nil
}

// MergeShards merges shard reports into the full report by replaying the
// serial pipeline with checks resolved through the collected verdicts. The
// result is byte-identical (ReportFingerprint) to RunContext with the same
// arguments: visiting order, pruning, representative attribution and stat
// charging all replay exactly; only verdicts the shards never produced
// (classifier probes outside the generated space) are computed locally.
//
// The reports must form a complete partition — one report per shard index
// of a single Count, all fingerprinting to this run's configuration and
// agreeing on the generated-space size — otherwise MergeShards refuses
// rather than deliver a silently partial report.
func MergeShards(ctx context.Context, fs pfs.FileSystem, lib Library, w Workload, opts Options, shards []*ShardReport) (*Report, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("paracrash: merge: no shard reports")
	}
	config := checkpointConfig(w.Name(), fs.Name(), opts)
	count := shards[0].Shard.Count
	generated := shards[0].StatesGenerated
	seen := make(map[int]bool, len(shards))
	verdicts := make(map[string]checkResult)
	for _, sr := range shards {
		if err := sr.Shard.Validate(); err != nil {
			return nil, fmt.Errorf("paracrash: merge: %w", err)
		}
		if sr.Shard.Count != count {
			return nil, fmt.Errorf("paracrash: merge: shard %s is from a %d-way partition, expected %d-way", sr.Shard, sr.Shard.Count, count)
		}
		if sr.Config != config {
			return nil, fmt.Errorf("paracrash: merge: shard %s was judged under a different configuration", sr.Shard)
		}
		if sr.StatesGenerated != generated {
			return nil, fmt.Errorf("paracrash: merge: shard %s saw %d generated states, shard %s saw %d", sr.Shard, sr.StatesGenerated, shards[0].Shard, generated)
		}
		if seen[sr.Shard.Index] {
			return nil, fmt.Errorf("paracrash: merge: duplicate report for shard %s", sr.Shard)
		}
		seen[sr.Shard.Index] = true
		for _, v := range sr.Verdicts {
			// Verdicts are deterministic per configuration, so a key judged
			// by two shards (it cannot happen in a clean partition, but a
			// reclaimed shard re-run is harmless) resolves identically.
			verdicts[v.Key] = v.result()
		}
	}
	for i := 0; i < count; i++ {
		if !seen[i] {
			return nil, fmt.Errorf("paracrash: merge: missing report for shard %d/%d", i, count)
		}
	}
	lookup := func(key string) (checkResult, bool) {
		r, ok := verdicts[key]
		return r, ok
	}
	return runPipeline(ctx, fs, lib, w, opts, lookup)
}
