package paracrash

import (
	"paracrash/internal/causality"
	"paracrash/internal/faultinject"
	"paracrash/internal/obs"
	"paracrash/internal/trace"
)

// FrontMode selects how crash fronts (consistent cuts) are enumerated.
type FrontMode int

const (
	// FrontEnd emulates a crash after the whole program executed; only
	// persistence reordering is explored.
	FrontEnd FrontMode = iota
	// FrontAllCuts enumerates every consistent cut of the lowermost
	// causality graph as a potential crash front (the paper's normal
	// states), bounded by MaxFronts.
	FrontAllCuts
)

// CrashState is one emulated post-crash storage state: the lowermost ops
// that executed before the crash (Front) and the subset of those that
// persisted (Keep). Applying Keep in recording order to the initial
// snapshot reconstructs the state.
type CrashState struct {
	// Front and Keep are bitsets over causality-graph node indices.
	Front causality.Bitset
	Keep  causality.Bitset
	// Victims are the graph nodes chosen as unpersisted seeds (Algorithm
	// 1's victim set); Keep = Front minus the persistence closure of the
	// victims.
	Victims []int
}

// EmulatorConfig bounds crash-state generation.
type EmulatorConfig struct {
	// K is the maximum number of victims per front (Algorithm 1's k).
	K int
	// FrontMode selects the crash-front enumeration.
	FrontMode FrontMode
	// MaxFronts caps consistent-cut enumeration (0 = unlimited).
	MaxFronts int
	// MaxStates caps the total number of generated crash states (0 =
	// unlimited).
	MaxStates int
	// VictimFilter, when non-nil, rejects victim candidates (used by the
	// semantic pruning: data-chunk writes are not reordered).
	VictimFilter func(*trace.Op) bool
}

// Emulator generates crash states from a traced execution (Algorithm 1).
type Emulator struct {
	G        *causality.Graph
	Universe []int // replayable lowermost node indices, in recording order
	PO       *causality.PersistOrder
	// Obs, when set, receives generation counters (emulate/fronts,
	// emulate/states). Nil disables collection at zero cost.
	Obs *obs.Run
	// Faults, when set, perturbs enumeration timing at the per-front fault
	// point. Generation must stay deterministic, so any fault drawn here
	// degrades to a latency spike (Plan.Sleep) — the hook exists to shake
	// out scheduling assumptions, not to corrupt the state list.
	Faults *faultinject.Plan
}

// NewEmulator prepares crash emulation over the trace graph. The universe
// is every lowermost op carrying a replayable payload (communication events
// participate in causality but are not replayed).
func NewEmulator(g *causality.Graph, pc causality.PersistConfig) *Emulator {
	var universe []int
	for i, o := range g.Ops {
		if o.IsLowermost() && o.Payload != nil {
			universe = append(universe, i)
		}
	}
	return &Emulator{
		G:        g,
		Universe: universe,
		PO:       causality.NewPersistOrder(g, universe, pc),
	}
}

// Generate enumerates crash states, invoking visit for each; enumeration
// stops when visit returns false. Duplicate (Front, Keep) pairs are
// suppressed. Returns the number of states visited.
func (e *Emulator) Generate(cfg EmulatorConfig, visit func(CrashState) bool) int {
	seen := map[string]bool{}
	count := 0
	stopped := false
	ctrFronts := e.Obs.Counter("emulate/fronts")
	ctrStates := e.Obs.Counter("emulate/states")

	emit := func(cs CrashState) bool {
		// Skip physically impossible states: an op covered by a completed
		// sync cannot be lost.
		if !e.PO.SyncFeasible(cs.Front, cs.Keep) {
			return true
		}
		key := cs.Front.Key() + "|" + cs.Keep.Key()
		if seen[key] {
			return true
		}
		seen[key] = true
		count++
		ctrStates.Inc()
		if !visit(cs) {
			stopped = true
			return false
		}
		if cfg.MaxStates > 0 && count >= cfg.MaxStates {
			stopped = true
			return false
		}
		return true
	}

	perFront := func(front causality.Bitset) bool {
		ctrFronts.Inc()
		e.Faults.Sleep("emulate/front", front.Key())
		// Victim candidates: lowermost ops inside the front.
		var cands []int
		for _, i := range e.Universe {
			if !front.Get(i) {
				continue
			}
			if cfg.VictimFilter != nil && !cfg.VictimFilter(e.G.Ops[i]) {
				continue
			}
			cands = append(cands, i)
		}
		// n = 0: the normal state (everything persisted).
		if !emit(CrashState{Front: front, Keep: front.Clone()}) {
			return false
		}
		// n = 1..K victims.
		var choose func(start int, chosen []int) bool
		choose = func(start int, chosen []int) bool {
			if len(chosen) > 0 {
				keep := front.Clone()
				for _, v := range chosen {
					keep.Subtract(e.PO.DependsOn(v, front))
				}
				cs := CrashState{Front: front, Keep: keep, Victims: append([]int(nil), chosen...)}
				if !emit(cs) {
					return false
				}
			}
			if len(chosen) == cfg.K {
				return true
			}
			for i := start; i < len(cands); i++ {
				if !choose(i+1, append(chosen, cands[i])) {
					return false
				}
			}
			return true
		}
		return choose(0, nil)
	}

	switch cfg.FrontMode {
	case FrontEnd:
		full := causality.NewBitset(e.G.Len())
		for _, i := range e.Universe {
			full.Set(i)
		}
		perFront(full)
	case FrontAllCuts:
		e.G.Ideals(e.Universe, cfg.MaxFronts, func(front causality.Bitset) bool {
			if stopped {
				return false
			}
			return perFront(front)
		})
	}
	return count
}

// ServerOps returns, for each proc, the universe nodes on that proc in
// order. Used by the incremental reconstruction to diff states per server.
func (e *Emulator) ServerOps() map[string][]int {
	out := map[string][]int{}
	for _, i := range e.Universe {
		p := e.G.Ops[i].Proc
		out[p] = append(out[p], i)
	}
	return out
}
