// Package gpfs simulates IBM GPFS / Spectrum Scale on the shared-disk
// substrate: a kernel-level PFS operating directly on block devices, with
// write-ahead metadata logging but lazy cache flushing (no SCSI barriers
// between transaction writes). See package shareddisk for the mechanics
// and the paper's Figure 9d for the traced ARVR transaction.
package gpfs

import (
	"paracrash/internal/pfs"
	"paracrash/internal/pfs/shareddisk"
	"paracrash/internal/trace"
)

// New creates a GPFS deployment.
func New(conf pfs.Config, rec *trace.Recorder) *shareddisk.FS {
	return shareddisk.New(conf, shareddisk.Policy{FSName: "gpfs", Barriers: false}, rec)
}
