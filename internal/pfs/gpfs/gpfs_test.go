package gpfs

import (
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

func TestNewGPFS(t *testing.T) {
	conf := pfs.DefaultConfig()
	conf.MetaServers = 0
	conf.StorageServers = 2
	f := New(conf, trace.NewRecorder())
	if f.Name() != "gpfs" {
		t.Fatalf("Name = %q", f.Name())
	}
	// GPFS issues no barriers: a create emits only writes.
	if err := f.Client(0).Create("/x"); err != nil {
		t.Fatal(err)
	}
	for _, o := range f.Recorder().Ops() {
		if o.Name == "scsi_sync" {
			t.Fatal("GPFS must not emit barriers")
		}
	}
	pc := f.PersistConfig()
	for _, p := range f.Procs() {
		if !pc.IsBlock(p) {
			t.Fatalf("proc %s should be a block device", p)
		}
	}
}
