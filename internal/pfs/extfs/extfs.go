// Package extfs is the paper's "ext4" baseline: the test program runs
// against a single local file system with data journaling, no distribution.
// Every client op maps 1:1 onto a local op on one server, so the persist
// order under data journaling equals the causality order and no POSIX test
// program can reach an inconsistent state — the control experiment of
// Figure 8.
package extfs

import (
	"fmt"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// FS is a single-node local file system exposed through the pfs interface.
type FS struct {
	*pfs.Cluster
	conf pfs.Config
}

// New creates the baseline deployment (exactly one server, "local/0").
func New(conf pfs.Config, rec *trace.Recorder) *FS {
	return &FS{Cluster: pfs.NewCluster(conf, rec, []string{"local/0"}), conf: conf}
}

// CloneDetached implements pfs.Cloner: a fresh single-server deployment
// with an untraced recorder (extfs keeps no allocator state to copy).
func (f *FS) CloneDetached() pfs.FileSystem {
	rec := trace.NewRecorder()
	rec.SetEnabled(false)
	return New(f.conf, rec)
}

// Name implements pfs.FileSystem.
func (f *FS) Name() string { return "ext4" }

// Config implements pfs.FileSystem.
func (f *FS) Config() pfs.Config { return f.conf }

// Recorder implements pfs.FileSystem.
func (f *FS) Recorder() *trace.Recorder { return f.Rec }

func (f *FS) local() *pfs.ServerFS { return f.FSServers[0] }

// Client implements pfs.FileSystem.
func (f *FS) Client(id int) pfs.Client {
	return &client{fs: f, proc: fmt.Sprintf("client/%d", id)}
}

type client struct {
	fs   *FS
	proc string
}

func (c *client) Proc() string { return c.proc }

// do records the client-layer op and performs the matching local op.
func (c *client) do(name, path, path2 string, off int64, data []byte, op vfs.Op, tag string) error {
	f := c.fs
	f.RecordClientOp(c.proc, name, path, path2, off, data)
	defer f.PopClient(c.proc)
	var err error
	f.RPC(c.proc, "local/0", func() {
		err = f.local().Do(f.Rec, op, vfs.Clean(path), tag)
	})
	return err
}

func (c *client) Create(path string) error {
	return c.do("creat", path, "", 0, nil, vfs.Op{Kind: vfs.OpCreate, Path: path}, "file")
}

func (c *client) Mkdir(path string) error {
	return c.do("mkdir", path, "", 0, nil, vfs.Op{Kind: vfs.OpMkdir, Path: path}, "dir")
}

func (c *client) WriteAt(path string, off int64, data []byte) error {
	return c.do("pwrite", path, "", off, data, vfs.Op{Kind: vfs.OpWrite, Path: path, Offset: off, Data: data}, c.fs.DataTag("data"))
}

func (c *client) Append(path string, data []byte) error {
	return c.do("append", path, "", 0, data, vfs.Op{Kind: vfs.OpAppend, Path: path, Data: data}, c.fs.DataTag("data"))
}

func (c *client) Read(path string) ([]byte, error) {
	return c.fs.local().FS.Read(path)
}

func (c *client) Rename(from, to string) error {
	return c.do("rename", from, to, 0, nil, vfs.Op{Kind: vfs.OpRename, Path: from, Path2: to}, "dentry")
}

func (c *client) Unlink(path string) error {
	return c.do("unlink", path, "", 0, nil, vfs.Op{Kind: vfs.OpUnlink, Path: path}, "dentry")
}

func (c *client) Fsync(path string) error {
	f := c.fs
	op := f.RecordClientOp(c.proc, "fsync", vfs.Clean(path), "", 0, nil)
	op.Sync = true
	defer f.PopClient(c.proc)
	var err error
	f.RPC(c.proc, "local/0", func() {
		err = f.local().DoSync(f.Rec, vfs.Clean(path), vfs.Clean(path), false)
	})
	return err
}

func (c *client) Close(path string) error {
	f := c.fs
	f.RecordClientOp(c.proc, "close", vfs.Clean(path), "", 0, nil)
	f.PopClient(c.proc)
	return nil
}

// Recover implements pfs.FileSystem; ext4's journal recovery is modelled by
// the persist-order semantics themselves, so there is nothing to do beyond
// the fault point.
func (f *FS) Recover() error {
	return f.FaultPoint("pfs/recover", f.Name())
}

// Mount returns the logical namespace, which is simply the local FS view.
func (f *FS) Mount() (*pfs.Tree, error) {
	defer f.TimeOp("pfs/mount")()
	if err := f.FaultPoint("pfs/mount", f.Name()); err != nil {
		return nil, err
	}
	t := pfs.NewTree()
	fs := f.local().FS
	for _, p := range fs.Walk() {
		if p == "/" {
			continue
		}
		if fs.IsDir(p) {
			t.AddDir(p)
		} else {
			b, err := fs.Read(p)
			if err != nil {
				return nil, err
			}
			t.AddFile(p, b)
		}
	}
	return t, nil
}
