package extfs

import (
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

func TestExtfsOneToOneOps(t *testing.T) {
	conf := pfs.DefaultConfig()
	conf.MetaServers = 0
	conf.StorageServers = 1
	f := New(conf, trace.NewRecorder())
	c := f.Client(0)
	if err := c.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt("/a", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Exactly one replayable local op per client call.
	replayable := 0
	for _, o := range f.Recorder().Ops() {
		if o.Payload != nil {
			replayable++
		}
	}
	if replayable != 2 {
		t.Fatalf("replayable ops = %d, want 2", replayable)
	}
	tree, err := f.Mount()
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := tree.Entries["/a"]; !ok || string(e.Data) != "x" {
		t.Fatalf("mount wrong: %s", tree.Serialize())
	}
	if f.PersistConfig().ModeOf("local/0") != vfs.JournalData {
		t.Fatal("default journaling should be data mode")
	}
}
