package beegfs

import (
	"strings"
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(pfs.DefaultConfig(), trace.NewRecorder())
}

func TestMetadataLayout(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	if err := c.Create("/foo"); err != nil {
		t.Fatal(err)
	}
	// The dentry is a hard link to the idfile on the owning meta server
	// (Figure 2's link(idfile, dentries/...)).
	m := f.meta(0).FS
	dentry := "/dentries/root/foo"
	if !m.Exists(dentry) {
		t.Fatal("dentry missing on meta/0")
	}
	tv, _ := m.GetXattr(dentry, "t")
	if string(tv) != "f" {
		t.Fatalf("dentry type = %q", tv)
	}
	fid, _ := m.GetXattr(dentry, "id")
	if !m.Exists("/inodes/" + string(fid)) {
		t.Fatal("idfile missing")
	}
	// Writing through either name is visible through the other (hard link).
	if err := m.SetXattr(dentry, "probe", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.GetXattr("/inodes/"+string(fid), "probe"); !ok || string(v) != "x" {
		t.Fatal("dentry is not a hard link to the idfile")
	}
}

func TestStripingAcrossStorageServers(t *testing.T) {
	conf := pfs.DefaultConfig()
	conf.FilePlacement = map[string]int{"/big": 0}
	f := New(conf, trace.NewRecorder())
	c := f.Client(0)
	if err := c.Create("/big"); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300) // 3 stripes of 128
	for i := range data {
		data[i] = byte(i)
	}
	if err := c.WriteAt("/big", 0, data); err != nil {
		t.Fatal(err)
	}
	// Chunks exist on both storage servers.
	fr, err := f.resolveFile("/big")
	if err != nil {
		t.Fatal(err)
	}
	// Stripes 0 (128B) and 2 (44B) land on server 0; stripe 1 on server 1.
	s0, _ := f.storage(0).FS.Size("/chunks/" + fr.fid)
	s1, _ := f.storage(1).FS.Size("/chunks/" + fr.fid)
	if s0 != 172 || s1 != 128 {
		t.Fatalf("chunk sizes = %d, %d; want 172, 128", s0, s1)
	}
	got, err := c.Read("/big")
	if err != nil || string(got) != string(data) {
		t.Fatalf("striped read back mismatch (%d bytes)", len(got))
	}
}

func TestFsckDropsCorruptDentries(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	if err := c.Create("/ok"); err != nil {
		t.Fatal(err)
	}
	// Inject a dentry with no parseable metadata (as a crash state could
	// leave behind).
	m := f.meta(0).FS
	if err := m.Create("/dentries/root/corrupt"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Mount(); err == nil {
		t.Fatal("mount should fail on a corrupt dentry")
	}
	if err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	tree, err := f.Mount()
	if err != nil {
		t.Fatalf("mount after fsck: %v", err)
	}
	if _, ok := tree.Entries["/corrupt"]; ok {
		t.Fatal("fsck kept the corrupt dentry")
	}
	if _, ok := tree.Entries["/ok"]; !ok {
		t.Fatal("fsck dropped a healthy file")
	}
}

func TestFsckMaterialisesMissingDirContainers(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that persisted the dentry but not the container.
	dr, err := f.resolveDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	ofs := f.meta(dr.owner).FS
	if err := ofs.Rmdir("/dentries/" + dr.id); err != nil {
		t.Fatal(err)
	}
	if err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	if !ofs.IsDir("/dentries/" + dr.id) {
		t.Fatal("fsck did not re-create the dentries container")
	}
	if _, err := f.Mount(); err != nil {
		t.Fatalf("mount after fsck: %v", err)
	}
}

func TestRenameReplaceRemovesOldChunks(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	for _, p := range []string{"/a", "/b"} {
		if err := c.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteAt(p, 0, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	oldB, _ := f.resolveFile("/b")
	if err := c.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.conf.StorageServers; i++ {
		if f.storage(i).FS.Exists("/chunks/" + oldB.fid) {
			t.Fatal("replaced file's chunk not removed")
		}
	}
	got, _ := c.Read("/b")
	if string(got) != "/a" {
		t.Fatalf("rename content: %q", got)
	}
}

func TestTraceMatchesFigure2Shape(t *testing.T) {
	// The ARVR rename path must issue the Figure 2 operations: a dentry
	// rename and idfile update on the metadata server, then the chunk
	// unlink on storage.
	f := newFS(t)
	rec := f.Recorder()
	c := f.Client(0)
	rec.SetEnabled(false)
	if err := c.Create("/foo"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt("/foo", 0, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/tmp"); err != nil {
		t.Fatal(err)
	}
	rec.SetEnabled(true)
	if err := c.Rename("/tmp", "/foo"); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, o := range rec.Ops() {
		if o.Payload != nil {
			names = append(names, o.Name+"("+o.Tag+")@"+o.Proc)
		}
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"rename(dentry)@meta", "unlink(idfile)@meta", "unlink(chunk)@storage"} {
		if !strings.Contains(joined, want) {
			t.Errorf("rename trace missing %q: %v", want, names)
		}
	}
}

func TestDirPlacementOverride(t *testing.T) {
	conf := pfs.DefaultConfig()
	conf.DirPlacement = map[string]int{"/pinned": 1}
	f := New(conf, trace.NewRecorder())
	c := f.Client(0)
	if err := c.Mkdir("/pinned"); err != nil {
		t.Fatal(err)
	}
	dr, err := f.resolveDir("/pinned")
	if err != nil {
		t.Fatal(err)
	}
	if dr.owner != 1 {
		t.Fatalf("pinned dir owner = %d, want 1", dr.owner)
	}
}

// TestCorruptBaseSurfacesAsInconsistency pins the parse-error fix: a base
// xattr that does not parse to a valid storage index must surface through
// resolveFile and Mount instead of silently reading as server 0, and fsck
// must drop the unrepairable dentry.
func TestCorruptBaseSurfacesAsInconsistency(t *testing.T) {
	for _, corrupt := range []string{"garbage", "-1", "7", ""} {
		t.Run("base="+corrupt, func(t *testing.T) {
			f := newFS(t)
			c := f.Client(0)
			if err := c.Create("/ok"); err != nil {
				t.Fatal(err)
			}
			if err := c.Create("/victim"); err != nil {
				t.Fatal(err)
			}
			m := f.meta(0).FS
			if err := m.SetXattr("/dentries/root/victim", "base", []byte(corrupt)); err != nil {
				t.Fatal(err)
			}
			if _, err := f.resolveFile("/victim"); err == nil {
				t.Fatal("resolveFile must reject a corrupt base target")
			}
			if _, err := f.Mount(); err == nil {
				t.Fatal("mount must fail on a corrupt base target")
			}
			if err := f.Recover(); err != nil {
				t.Fatal(err)
			}
			tree, err := f.Mount()
			if err != nil {
				t.Fatalf("mount after fsck: %v", err)
			}
			if _, ok := tree.Entries["/victim"]; ok {
				t.Fatal("fsck kept the dentry with the corrupt base")
			}
			if _, ok := tree.Entries["/ok"]; !ok {
				t.Fatal("fsck dropped a healthy file")
			}
		})
	}
}

// TestFsckDropsNegativeOwner extends the owner-range check: a negative
// owner index must be treated as corruption, not an index into the servers.
func TestFsckDropsNegativeOwner(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	m := f.meta(0).FS
	if err := m.SetXattr("/dentries/root/d", "owner", []byte("-2")); err != nil {
		t.Fatal(err)
	}
	if err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	tree, err := f.Mount()
	if err != nil {
		t.Fatalf("mount after fsck: %v", err)
	}
	if _, ok := tree.Entries["/d"]; ok {
		t.Fatal("fsck kept the dentry with the negative owner")
	}
}

func TestCrossOwnerRenameReplacesExistingTarget(t *testing.T) {
	// POSIX rename overwrites an existing destination; the cross-owner path
	// used to fail with "link: exists" because it linked the new dentry in
	// without removing the replaced file (found by the fuzz campaign's
	// generator conformance matrix).
	f := newFS(t)
	c := f.Client(0)
	for _, d := range []string{"/d0", "/d1"} {
		if err := c.Mkdir(d); err != nil {
			t.Fatal(err)
		}
	}
	src, err := f.resolveDir("/d0")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := f.resolveDir("/d1")
	if err != nil {
		t.Fatal(err)
	}
	if src.owner == dst.owner {
		t.Fatalf("fixture: both directories owned by meta %d, need a cross-owner pair", src.owner)
	}
	for p, data := range map[string]string{"/d0/src": "source-bytes", "/d1/dst": "old-target"} {
		if err := c.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteAt(p, 0, []byte(data)); err != nil {
			t.Fatal(err)
		}
	}
	oldDst, err := f.resolveFile("/d1/dst")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/d0/src", "/d1/dst"); err != nil {
		t.Fatalf("cross-owner rename over existing target: %v", err)
	}
	got, err := c.Read("/d1/dst")
	if err != nil || string(got) != "source-bytes" {
		t.Fatalf("destination after rename: %q, %v", got, err)
	}
	if _, err := f.resolveFile("/d0/src"); err == nil {
		t.Fatal("source still resolvable after rename")
	}
	for i := 0; i < f.conf.StorageServers; i++ {
		if f.storage(i).FS.Exists("/chunks/" + oldDst.fid) {
			t.Fatal("replaced file's chunks not removed")
		}
	}
}
