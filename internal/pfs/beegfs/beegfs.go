// Package beegfs simulates BeeGFS (paper §2.3, Figure 2): a user-level PFS
// with dedicated metadata servers and storage servers on local ext4.
//
// Metadata layout (on each metadata server's local FS, as in BeeGFS):
//
//	/inodes/<id>            inode file ("idfile") — files and directories
//	/dentries/<dirID>/<nm>  directory-entry file; for files it is a hard
//	                        link to the idfile (BeeGFS's dentry-as-link)
//
// Directory entries carry xattrs: t=f|d, id, owner (dirs), base (files:
// first stripe target). File data lives in per-server chunk files
// /chunks/<fileID> on the storage servers, striped round-robin.
//
// Crucially — and this is the source of the paper's BeeGFS bugs — the
// servers issue NO fsync between dependent updates on different servers,
// so the persist order across servers is unconstrained.
package beegfs

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// FS is a simulated BeeGFS deployment.
type FS struct {
	*pfs.Cluster
	conf pfs.Config

	nextDirID  int
	nextFileID int
}

// New creates a BeeGFS deployment with the configured server counts and
// initialises the root directory structures (owned by meta/0).
func New(conf pfs.Config, rec *trace.Recorder) *FS {
	var procs []string
	for i := 0; i < conf.MetaServers; i++ {
		procs = append(procs, fmt.Sprintf("meta/%d", i))
	}
	for i := 0; i < conf.StorageServers; i++ {
		procs = append(procs, fmt.Sprintf("storage/%d", i))
	}
	f := &FS{
		Cluster:    pfs.NewCluster(conf, rec, procs),
		conf:       conf,
		nextDirID:  1,
		nextFileID: 1,
	}
	// Initial structures are created directly (pre-mount mkfs, untraced).
	for i := 0; i < conf.MetaServers; i++ {
		fs := f.meta(i).FS
		must(fs.Mkdir("/inodes"))
		must(fs.Mkdir("/dentries"))
	}
	must(f.meta(0).FS.Mkdir("/dentries/root"))
	must(f.meta(0).FS.Create("/inodes/root"))
	must(f.meta(0).FS.SetXattr("/inodes/root", "t", []byte("d")))
	for i := 0; i < conf.StorageServers; i++ {
		must(f.storage(i).FS.Mkdir("/chunks"))
	}
	return f
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("beegfs: setup: %v", err))
	}
}

// CloneDetached implements pfs.Cloner: a fresh deployment with an untraced
// recorder, carrying over the ID allocators so objects created by replayed
// client operations never collide with IDs present in restored snapshots.
func (f *FS) CloneDetached() pfs.FileSystem {
	rec := trace.NewRecorder()
	rec.SetEnabled(false)
	c := New(f.conf, rec)
	c.nextDirID, c.nextFileID = f.nextDirID, f.nextFileID
	return c
}

// Name implements pfs.FileSystem.
func (f *FS) Name() string { return "beegfs" }

// Config implements pfs.FileSystem.
func (f *FS) Config() pfs.Config { return f.conf }

// Recorder implements pfs.FileSystem.
func (f *FS) Recorder() *trace.Recorder { return f.Rec }

func (f *FS) meta(i int) *pfs.ServerFS    { return f.FSServers[i] }
func (f *FS) storage(i int) *pfs.ServerFS { return f.FSServers[f.conf.MetaServers+i] }

func (f *FS) metaProc(i int) string    { return fmt.Sprintf("meta/%d", i) }
func (f *FS) storageProc(i int) string { return fmt.Sprintf("storage/%d", i) }

// Client implements pfs.FileSystem.
func (f *FS) Client(id int) pfs.Client {
	return &client{fs: f, proc: fmt.Sprintf("client/%d", id)}
}

// dirRef locates a directory's metadata: the owning meta server and its ID.
type dirRef struct {
	owner int
	id    string
}

// fileRef locates a file's metadata.
type fileRef struct {
	dir  dirRef
	name string
	fid  string
	base int // first stripe target
}

// resolveDir walks the metadata structures from the root to find dir path.
func (f *FS) resolveDir(path string) (dirRef, error) {
	cur := dirRef{owner: 0, id: "root"}
	path = vfs.Clean(path)
	if path == "/" {
		return cur, nil
	}
	for _, comp := range strings.Split(strings.TrimPrefix(path, "/"), "/") {
		dentry := fmt.Sprintf("/dentries/%s/%s", cur.id, comp)
		mfs := f.meta(cur.owner).FS
		t, ok := mfs.GetXattr(dentry, "t")
		if !ok {
			return dirRef{}, fmt.Errorf("beegfs: %q: no such directory", path)
		}
		if string(t) != "d" {
			return dirRef{}, fmt.Errorf("beegfs: %q: not a directory", path)
		}
		id, _ := mfs.GetXattr(dentry, "id")
		owner, _ := mfs.GetXattr(dentry, "owner")
		oi, err := strconv.Atoi(string(owner))
		if err != nil {
			return dirRef{}, fmt.Errorf("beegfs: %q: corrupt dentry: %v", path, err)
		}
		cur = dirRef{owner: oi, id: string(id)}
	}
	return cur, nil
}

// resolveFile locates the file at path.
func (f *FS) resolveFile(path string) (fileRef, error) {
	path = vfs.Clean(path)
	dir, name := splitPath(path)
	dr, err := f.resolveDir(dir)
	if err != nil {
		return fileRef{}, err
	}
	dentry := fmt.Sprintf("/dentries/%s/%s", dr.id, name)
	mfs := f.meta(dr.owner).FS
	t, ok := mfs.GetXattr(dentry, "t")
	if !ok {
		return fileRef{}, fmt.Errorf("beegfs: %q: no such file", path)
	}
	if string(t) != "f" {
		return fileRef{}, fmt.Errorf("beegfs: %q: not a regular file", path)
	}
	fid, _ := mfs.GetXattr(dentry, "id")
	base, _ := mfs.GetXattr(dentry, "base")
	bi, err := strconv.Atoi(string(base))
	if err != nil || bi < 0 || bi >= f.conf.StorageServers {
		return fileRef{}, fmt.Errorf("beegfs: %q: corrupt base target %q", path, base)
	}
	return fileRef{dir: dr, name: name, fid: string(fid), base: bi}, nil
}

func splitPath(p string) (dir, name string) {
	p = vfs.Clean(p)
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/", p[1:]
	}
	return p[:i], p[i+1:]
}

// pickBase chooses the first stripe target for a new file.
func (f *FS) pickBase(path string) int {
	if f.conf.FilePlacement != nil {
		if b, ok := f.conf.FilePlacement[vfs.Clean(path)]; ok {
			return b % f.conf.StorageServers
		}
	}
	h := fnv.New32a()
	h.Write([]byte(vfs.Clean(path)))
	return int(h.Sum32()) % f.conf.StorageServers
}

// pickDirOwner chooses the owning metadata server for a new directory.
func (f *FS) pickDirOwner(path string) int {
	if f.conf.DirPlacement != nil {
		if o, ok := f.conf.DirPlacement[vfs.Clean(path)]; ok {
			return o % f.conf.MetaServers
		}
	}
	o := f.nextDirID % f.conf.MetaServers
	return o
}

// client is the BeeGFS client endpoint.
type client struct {
	fs   *FS
	proc string
}

func (c *client) Proc() string { return c.proc }

// Create implements the Figure 2 creation path: the metadata server creates
// the idfile, links the dentry, updates the directory inode, then instructs
// the base storage target to create the chunk file.
func (c *client) Create(path string) error {
	f := c.fs
	dir, name := splitPath(path)
	dr, err := f.resolveDir(dir)
	if err != nil {
		return err
	}
	fid := fmt.Sprintf("f%d", f.nextFileID)
	f.nextFileID++
	base := f.pickBase(path)

	f.RecordClientOp(c.proc, "creat", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	var err2 error
	f.RPC(c.proc, f.metaProc(dr.owner), func() {
		m := f.meta(dr.owner)
		idfile := "/inodes/" + fid
		dentry := fmt.Sprintf("/dentries/%s/%s", dr.id, name)
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpCreate, Path: idfile}, fid, "idfile"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: idfile, Name: "t", Value: []byte("f")}, fid, "idfile"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: idfile, Name: "id", Value: []byte(fid)}, fid, "idfile"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: idfile, Name: "base", Value: []byte(strconv.Itoa(base))}, fid, "idfile"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpLink, Path: idfile, Path2: dentry}, fid, "dentry"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: "/inodes/" + dr.id, Name: "mtime", Value: []byte(fid)}, dr.id, "dir_inode"))
		// The metadata server instructs the base storage target to create
		// the chunk file (Figure 2: sendto(storage); creat(chunk)).
		f.ServerRPC(f.metaProc(dr.owner), f.storageProc(base), func() {
			s := f.storage(base)
			err2 = firstErr(err2, s.Do(f.Rec, vfs.Op{Kind: vfs.OpCreate, Path: "/chunks/" + fid}, fid, "chunk"))
		})
	})
	return err2
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// Mkdir creates a directory: a dentry on the parent's owner and the
// dentries container + dir inode on the new directory's owner.
func (c *client) Mkdir(path string) error {
	f := c.fs
	dir, name := splitPath(path)
	dr, err := f.resolveDir(dir)
	if err != nil {
		return err
	}
	owner := f.pickDirOwner(path)
	id := fmt.Sprintf("d%d", f.nextDirID)
	f.nextDirID++

	f.RecordClientOp(c.proc, "mkdir", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	var err2 error
	f.RPC(c.proc, f.metaProc(dr.owner), func() {
		m := f.meta(dr.owner)
		dentry := fmt.Sprintf("/dentries/%s/%s", dr.id, name)
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpCreate, Path: dentry}, id, "dentry"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: dentry, Name: "t", Value: []byte("d")}, id, "dentry"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: dentry, Name: "id", Value: []byte(id)}, id, "dentry"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: dentry, Name: "owner", Value: []byte(strconv.Itoa(owner))}, id, "dentry"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: "/inodes/" + dr.id, Name: "mtime", Value: []byte(id)}, dr.id, "dir_inode"))
		// The parent's meta server instructs the new owner to materialise
		// the directory.
		if owner != dr.owner {
			f.ServerRPC(f.metaProc(dr.owner), f.metaProc(owner), func() {
				o := f.meta(owner)
				err2 = firstErr(err2, o.Do(f.Rec, vfs.Op{Kind: vfs.OpMkdir, Path: "/dentries/" + id}, id, "dentries_dir"))
				err2 = firstErr(err2, o.Do(f.Rec, vfs.Op{Kind: vfs.OpCreate, Path: "/inodes/" + id}, id, "dir_inode"))
				err2 = firstErr(err2, o.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: "/inodes/" + id, Name: "t", Value: []byte("d")}, id, "dir_inode"))
			})
		} else {
			o := f.meta(owner)
			err2 = firstErr(err2, o.Do(f.Rec, vfs.Op{Kind: vfs.OpMkdir, Path: "/dentries/" + id}, id, "dentries_dir"))
			err2 = firstErr(err2, o.Do(f.Rec, vfs.Op{Kind: vfs.OpCreate, Path: "/inodes/" + id}, id, "dir_inode"))
			err2 = firstErr(err2, o.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: "/inodes/" + id, Name: "t", Value: []byte("d")}, id, "dir_inode"))
		}
	})
	return err2
}

// WriteAt stripes data across the storage servers; each stripe is an RPC to
// its target, which writes (or appends to) the chunk file.
func (c *client) WriteAt(path string, off int64, data []byte) error {
	f := c.fs
	fr, err := f.resolveFile(path)
	if err != nil {
		return err
	}
	f.RecordClientOp(c.proc, "pwrite", vfs.Clean(path), "", off, data)
	defer f.PopClient(c.proc)

	var err2 error
	for _, st := range pfs.StripeRange(off, data, f.conf.StorageServers, f.conf.StripeSize, fr.base) {
		st := st
		f.RPC(c.proc, f.storageProc(st.Server), func() {
			s := f.storage(st.Server)
			chunk := "/chunks/" + fr.fid
			if !s.FS.Exists(chunk) {
				err2 = firstErr(err2, s.Do(f.Rec, vfs.Op{Kind: vfs.OpCreate, Path: chunk}, fr.fid, "chunk"))
			}
			// Name the op "append" when extending at EOF (the common case
			// in the paper's traces), "pwrite" otherwise.
			sz, _ := s.FS.Size(chunk)
			op := vfs.Op{Kind: vfs.OpWrite, Path: chunk, Offset: st.LocalOffset, Data: st.Data}
			if st.LocalOffset == sz {
				op = vfs.Op{Kind: vfs.OpAppend, Path: chunk, Data: st.Data}
			}
			err2 = firstErr(err2, s.Do(f.Rec, op, fr.fid, f.DataTag("chunk")))
		})
	}
	return err2
}

// Append appends at the current end of file.
func (c *client) Append(path string, data []byte) error {
	sz, err := c.size(path)
	if err != nil {
		return err
	}
	return c.WriteAt(path, sz, data)
}

func (c *client) size(path string) (int64, error) {
	f := c.fs
	fr, err := f.resolveFile(path)
	if err != nil {
		return 0, err
	}
	lens := make([]int64, f.conf.StorageServers)
	for i := 0; i < f.conf.StorageServers; i++ {
		if sz, err := f.storage(i).FS.Size("/chunks/" + fr.fid); err == nil {
			lens[i] = sz
		}
	}
	return pfs.UnstripeSize(lens, f.conf.StorageServers, f.conf.StripeSize, fr.base), nil
}

// Read reassembles the file from its chunks (untraced; reads do not affect
// crash consistency).
func (c *client) Read(path string) ([]byte, error) {
	f := c.fs
	fr, err := f.resolveFile(path)
	if err != nil {
		return nil, err
	}
	return f.readFile(fr), nil
}

func (f *FS) readFile(fr fileRef) []byte {
	return pfs.ReassembleFile(f.conf.StorageServers, f.conf.StripeSize, fr.base, func(srv int) []byte {
		b, err := f.storage(srv).FS.Read("/chunks/" + fr.fid)
		if err != nil {
			return nil
		}
		return b
	})
}

// Rename implements the Figure 2 rename path. Same-owner renames rename the
// dentry in place; cross-owner renames create the destination dentry before
// removing the source (BeeGFS's ordering, the root of bug #5). Directory
// renames update the dentry on the parent's owner.
func (c *client) Rename(from, to string) error {
	f := c.fs
	fr, err := f.resolveFile(from)
	if err != nil {
		// Directory rename path.
		if _, derr := f.resolveDir(from); derr == nil {
			return c.renameDir(from, to)
		}
		return err
	}
	toDir, toName := splitPath(to)
	dst, err := f.resolveDir(toDir)
	if err != nil {
		return err
	}
	// Capture replaced target, if any.
	var oldFid string
	var oldBase int
	if old, err := f.resolveFile(to); err == nil {
		oldFid, oldBase = old.fid, old.base
	}

	f.RecordClientOp(c.proc, "rename", vfs.Clean(from), vfs.Clean(to), 0, nil)
	defer f.PopClient(c.proc)

	var err2 error
	if dst.owner == fr.dir.owner {
		// Single metadata server: Figure 2's sequence.
		f.RPC(c.proc, f.metaProc(dst.owner), func() {
			m := f.meta(dst.owner)
			srcDentry := fmt.Sprintf("/dentries/%s/%s", fr.dir.id, fr.name)
			dstDentry := fmt.Sprintf("/dentries/%s/%s", dst.id, toName)
			err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpRename, Path: srcDentry, Path2: dstDentry}, fr.fid, "dentry"))
			err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: "/inodes/" + dst.id, Name: "mtime", Value: []byte(fr.fid)}, dst.id, "dir_inode"))
			if oldFid != "" {
				err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: "/inodes/" + oldFid}, oldFid, "idfile"))
			}
			err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: "/inodes/" + fr.fid, Name: "mtime", Value: []byte("renamed")}, fr.fid, "idfile"))
			if oldFid != "" {
				// Instruct storage to remove the replaced file's chunks.
				for i := 0; i < f.conf.StorageServers; i++ {
					srv := i
					if !f.storage(srv).FS.Exists("/chunks/" + oldFid) {
						continue
					}
					f.ServerRPC(f.metaProc(dst.owner), f.storageProc(srv), func() {
						s := f.storage(srv)
						err2 = firstErr(err2, s.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: "/chunks/" + oldFid}, oldFid, "chunk"))
					})
				}
			}
			_ = oldBase
		})
		return err2
	}

	// Cross-owner rename: destination first, then source removal.
	f.RPC(c.proc, f.metaProc(dst.owner), func() {
		m := f.meta(dst.owner)
		idfile := "/inodes/" + fr.fid
		dstDentry := fmt.Sprintf("/dentries/%s/%s", dst.id, toName)
		if oldFid != "" {
			// POSIX overwrite: the replaced file's dentry and idfile go
			// first (the link below cannot take over an existing dentry),
			// then its chunks after the new dentry is in place — so the
			// destination name, like the same-owner path, is never resolvable
			// to a third file but can transiently disappear.
			err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: dstDentry}, oldFid, "dentry"))
			err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: "/inodes/" + oldFid}, oldFid, "idfile"))
		}
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpCreate, Path: idfile}, fr.fid, "idfile"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: idfile, Name: "t", Value: []byte("f")}, fr.fid, "idfile"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: idfile, Name: "id", Value: []byte(fr.fid)}, fr.fid, "idfile"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: idfile, Name: "base", Value: []byte(strconv.Itoa(fr.base))}, fr.fid, "idfile"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpLink, Path: idfile, Path2: dstDentry}, fr.fid, "dentry"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: "/inodes/" + dst.id, Name: "mtime", Value: []byte(fr.fid)}, dst.id, "dir_inode"))
		if oldFid != "" {
			for i := 0; i < f.conf.StorageServers; i++ {
				srv := i
				if !f.storage(srv).FS.Exists("/chunks/" + oldFid) {
					continue
				}
				f.ServerRPC(f.metaProc(dst.owner), f.storageProc(srv), func() {
					s := f.storage(srv)
					err2 = firstErr(err2, s.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: "/chunks/" + oldFid}, oldFid, "chunk"))
				})
			}
		}
	})
	f.RPC(c.proc, f.metaProc(fr.dir.owner), func() {
		m := f.meta(fr.dir.owner)
		srcDentry := fmt.Sprintf("/dentries/%s/%s", fr.dir.id, fr.name)
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: srcDentry}, fr.fid, "dentry"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: "/inodes/" + fr.fid}, fr.fid, "idfile"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: "/inodes/" + fr.dir.id, Name: "mtime", Value: []byte(fr.fid)}, fr.dir.id, "dir_inode"))
	})
	return err2
}

// renameDir renames a directory's entry in its parent (both names must
// share the parent directory, as in the paper's RC program). The directory
// ID — and therefore its dentries container — is unchanged, so only the
// parent's owner is involved.
func (c *client) renameDir(from, to string) error {
	f := c.fs
	fromParent, fromName := splitPath(from)
	toParent, toName := splitPath(to)
	if vfs.Clean(fromParent) != vfs.Clean(toParent) {
		return fmt.Errorf("beegfs: cross-directory dir rename not supported: %s -> %s", from, to)
	}
	pr, err := f.resolveDir(fromParent)
	if err != nil {
		return err
	}
	dr, err := f.resolveDir(from)
	if err != nil {
		return err
	}
	f.RecordClientOp(c.proc, "rename", vfs.Clean(from), vfs.Clean(to), 0, nil)
	defer f.PopClient(c.proc)

	var err2 error
	f.RPC(c.proc, f.metaProc(pr.owner), func() {
		m := f.meta(pr.owner)
		srcDentry := fmt.Sprintf("/dentries/%s/%s", pr.id, fromName)
		dstDentry := fmt.Sprintf("/dentries/%s/%s", pr.id, toName)
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpRename, Path: srcDentry, Path2: dstDentry}, dr.id, "dentry"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: "/inodes/" + pr.id, Name: "mtime", Value: []byte(dr.id)}, pr.id, "dir_inode"))
	})
	return err2
}

// Unlink removes the dentry and idfile on the metadata server, then the
// chunks on storage.
func (c *client) Unlink(path string) error {
	f := c.fs
	fr, err := f.resolveFile(path)
	if err != nil {
		return err
	}
	f.RecordClientOp(c.proc, "unlink", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	var err2 error
	f.RPC(c.proc, f.metaProc(fr.dir.owner), func() {
		m := f.meta(fr.dir.owner)
		dentry := fmt.Sprintf("/dentries/%s/%s", fr.dir.id, fr.name)
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: dentry}, fr.fid, "dentry"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: "/inodes/" + fr.fid}, fr.fid, "idfile"))
		err2 = firstErr(err2, m.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: "/inodes/" + fr.dir.id, Name: "mtime", Value: []byte(fr.fid)}, fr.dir.id, "dir_inode"))
		for i := 0; i < f.conf.StorageServers; i++ {
			srv := i
			if !f.storage(srv).FS.Exists("/chunks/" + fr.fid) {
				continue
			}
			f.ServerRPC(f.metaProc(fr.dir.owner), f.storageProc(srv), func() {
				s := f.storage(srv)
				err2 = firstErr(err2, s.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: "/chunks/" + fr.fid}, fr.fid, "chunk"))
			})
		}
	})
	return err2
}

// Fsync forwards to the storage servers holding the file's chunks
// (BeeGFS's tuneRemoteFSync).
func (c *client) Fsync(path string) error {
	f := c.fs
	fr, err := f.resolveFile(path)
	if err != nil {
		return err
	}
	op := f.RecordClientOp(c.proc, "fsync", vfs.Clean(path), "", 0, nil)
	op.Sync = true
	defer f.PopClient(c.proc)

	for i := 0; i < f.conf.StorageServers; i++ {
		srv := i
		if !f.storage(srv).FS.Exists("/chunks/" + fr.fid) {
			continue
		}
		f.RPC(c.proc, f.storageProc(srv), func() {
			s := f.storage(srv)
			_ = s.DoSync(f.Rec, "/chunks/"+fr.fid, fr.fid, false)
		})
	}
	return nil
}

// Close records the client-level close (the baseline consistency model
// keys on it); BeeGFS performs no server work on close.
func (c *client) Close(path string) error {
	f := c.fs
	f.RecordClientOp(c.proc, "close", vfs.Clean(path), "", 0, nil)
	f.PopClient(c.proc)
	return nil
}

// Recover implements beegfs-fsck: it removes unparseable directory
// entries and re-creates missing dentries containers. Like the real tool it
// restores structural invariants but cannot resurrect lost updates.
func (f *FS) Recover() error {
	defer f.TimeOp("pfs/recover")()
	if err := f.FaultPoint("pfs/recover", f.Name()); err != nil {
		return err
	}
	for mi := 0; mi < f.conf.MetaServers; mi++ {
		m := f.meta(mi).FS
		if !m.IsDir("/dentries") {
			if err := m.MkdirAll("/dentries"); err != nil {
				return fmt.Errorf("beegfs-fsck: %v", err)
			}
		}
		dirs, err := m.List("/dentries")
		if err != nil {
			return fmt.Errorf("beegfs-fsck: %v", err)
		}
		for _, d := range dirs {
			entries, err := m.List(d)
			if err != nil {
				continue
			}
			for _, e := range entries {
				if _, ok := m.GetXattr(e, "t"); !ok {
					// Corrupt dentry: drop it.
					_ = m.Unlink(e)
					continue
				}
				switch t, _ := m.GetXattr(e, "t"); string(t) {
				case "f":
					// A file dentry whose base target does not parse to a
					// valid storage index is unrepairable: drop it, as
					// beegfs-fsck drops entries it cannot resolve.
					base, _ := m.GetXattr(e, "base")
					if bi, err := strconv.Atoi(string(base)); err != nil || bi < 0 || bi >= f.conf.StorageServers {
						_ = m.Unlink(e)
					}
				case "d":
					id, _ := m.GetXattr(e, "id")
					owner, _ := m.GetXattr(e, "owner")
					oi, err := strconv.Atoi(string(owner))
					if err != nil || oi < 0 || oi >= f.conf.MetaServers {
						_ = m.Unlink(e)
						continue
					}
					ofs := f.meta(oi).FS
					if !ofs.IsDir("/dentries/" + string(id)) {
						_ = ofs.MkdirAll("/dentries/" + string(id))
					}
					if !ofs.Exists("/inodes/" + string(id)) {
						_ = ofs.Create("/inodes/" + string(id))
						_ = ofs.SetXattr("/inodes/"+string(id), "t", []byte("d"))
					}
				}
			}
		}
	}
	// Root must exist.
	if !f.meta(0).FS.IsDir("/dentries/root") {
		if err := f.meta(0).FS.MkdirAll("/dentries/root"); err != nil {
			return fmt.Errorf("beegfs-fsck: root: %v", err)
		}
	}
	return nil
}

// Mount materialises the logical namespace by walking the metadata
// structures from the root.
func (f *FS) Mount() (*pfs.Tree, error) {
	defer f.TimeOp("pfs/mount")()
	if err := f.FaultPoint("pfs/mount", f.Name()); err != nil {
		return nil, err
	}
	t := pfs.NewTree()
	var walk func(path string, dr dirRef) error
	walk = func(path string, dr dirRef) error {
		if dr.owner >= f.conf.MetaServers {
			return fmt.Errorf("beegfs: mount: bad owner %d", dr.owner)
		}
		m := f.meta(dr.owner).FS
		container := "/dentries/" + dr.id
		if !m.IsDir(container) {
			return nil // unmaterialised directory: empty
		}
		entries, err := m.List(container)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e[strings.LastIndexByte(e, '/')+1:]
			child := vfs.Clean(path + "/" + name)
			t0, ok := m.GetXattr(e, "t")
			if !ok {
				return fmt.Errorf("beegfs: mount: corrupt dentry %s on %s", e, f.metaProc(dr.owner))
			}
			switch string(t0) {
			case "d":
				id, _ := m.GetXattr(e, "id")
				owner, _ := m.GetXattr(e, "owner")
				oi, err := strconv.Atoi(string(owner))
				if err != nil {
					return fmt.Errorf("beegfs: mount: corrupt dir dentry %s: %v", e, err)
				}
				t.AddDir(child)
				if err := walk(child, dirRef{owner: oi, id: string(id)}); err != nil {
					return err
				}
			case "f":
				fid, _ := m.GetXattr(e, "id")
				base, _ := m.GetXattr(e, "base")
				bi, err := strconv.Atoi(string(base))
				if err != nil || bi < 0 || bi >= f.conf.StorageServers {
					return fmt.Errorf("beegfs: mount: corrupt base target %q on dentry %s", base, e)
				}
				t.AddFile(child, f.readFile(fileRef{fid: string(fid), base: bi}))
			default:
				return fmt.Errorf("beegfs: mount: unknown dentry type %q at %s", t0, e)
			}
		}
		return nil
	}
	if err := walk("/", dirRef{owner: 0, id: "root"}); err != nil {
		return nil, err
	}
	return t, nil
}
