package pfs

import (
	"testing"

	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	c := NewCluster(DefaultConfig(), trace.NewRecorder(), []string{"mds/0", "oss/0"})
	for _, s := range c.FSServers {
		if err := s.FS.Create("/seed"); err != nil {
			t.Fatal(err)
		}
		if err := s.FS.WriteAt("/seed", 0, []byte("seed-"+s.Proc)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func stateSerial(st *State, proc string) string { return st.FS[proc].Serialize() }

// TestStateRestoreAliasing proves whole-cluster and per-server restores
// adopt a State without aliasing: writes through the restored cluster must
// never reach the snapshot or a sibling cluster restored from it.
func TestStateRestoreAliasing(t *testing.T) {
	c := testCluster(t)
	st := c.Snapshot()
	want := stateSerial(st, "mds/0")

	sibling := NewCluster(DefaultConfig(), trace.NewRecorder(), []string{"mds/0", "oss/0"})
	sibling.Restore(st)

	c.Restore(st)
	if err := c.FSServer("mds/0").FS.WriteAt("/seed", 0, []byte("CLOBB")); err != nil {
		t.Fatal(err)
	}
	if got := stateSerial(st, "mds/0"); got != want {
		t.Fatalf("snapshot state mutated through restored cluster:\n%s", got)
	}
	if got := sibling.FSServer("mds/0").FS.Serialize(); got != want {
		t.Fatalf("sibling cluster mutated:\n%s", got)
	}

	// Per-server restore path.
	c.RestoreServer(st, "mds/0")
	if err := c.FSServer("mds/0").FS.Append("/seed", []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if got := stateSerial(st, "mds/0"); got != want {
		t.Fatalf("snapshot state mutated through RestoreServer:\n%s", got)
	}
}

// TestCaptureServerSnapAliasing proves the incremental-reconstruction snaps
// are frozen: a captured prefix root must survive arbitrary later writes to
// the live store, and restoring it must not let new writes leak back in.
func TestCaptureServerSnapAliasing(t *testing.T) {
	c := testCluster(t)
	var inc IncrementalStater = c // Cluster provides the capability

	snap, ok := inc.CaptureServer("oss/0")
	if !ok {
		t.Fatal("CaptureServer failed for oss/0")
	}
	want := c.FSServer("oss/0").FS.Serialize()

	if err := c.FSServer("oss/0").FS.WriteAt("/seed", 0, []byte("XXXXX")); err != nil {
		t.Fatal(err)
	}
	if !inc.RestoreServerSnap("oss/0", snap) {
		t.Fatal("RestoreServerSnap failed for oss/0")
	}
	if got := c.FSServer("oss/0").FS.Serialize(); got != want {
		t.Fatalf("restore from captured snap diverged:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if err := c.FSServer("oss/0").FS.Append("/seed", []byte("after")); err != nil {
		t.Fatal(err)
	}
	// Re-restoring the same snap must still give the captured content.
	if !inc.RestoreServerSnap("oss/0", snap) {
		t.Fatal("second RestoreServerSnap failed")
	}
	if got := c.FSServer("oss/0").FS.Serialize(); got != want {
		t.Fatalf("captured snap mutated by post-restore write:\nwant:\n%s\ngot:\n%s", want, got)
	}

	if _, ok := inc.CaptureServer("nope"); ok {
		t.Fatal("CaptureServer accepted unknown proc")
	}
	if inc.RestoreServerSnap("nope", snap) {
		t.Fatal("RestoreServerSnap accepted unknown proc")
	}
	var zero ServerSnap
	if zero.Valid() {
		t.Fatal("zero ServerSnap claims validity")
	}
}

// TestStateServerSnap checks State.ServerSnap hands out the stored snapshot
// for both store kinds and rejects unknown procs.
func TestStateServerSnap(t *testing.T) {
	c := testCluster(t)
	st := c.Snapshot()
	snap, ok := st.ServerSnap("mds/0")
	if !ok || !snap.Valid() {
		t.Fatal("ServerSnap failed for fs store")
	}
	if snap.fs != st.FS["mds/0"] {
		t.Fatal("ServerSnap returned a different fs snapshot")
	}
	if _, ok := st.ServerSnap("absent"); ok {
		t.Fatal("ServerSnap accepted unknown proc")
	}

	bc := NewBlockCluster(DefaultConfig(), trace.NewRecorder(), []string{"nsd/0"})
	bc.Block("nsd/0").Dev.Write(7, []byte("blk"))
	bst := bc.Snapshot()
	bsnap, ok := bst.ServerSnap("nsd/0")
	if !ok || bsnap.dev == nil {
		t.Fatal("ServerSnap failed for block store")
	}
	if _, ok := bc.CaptureServer("nsd/0"); !ok {
		t.Fatal("CaptureServer failed for block store")
	}
	var fsOnly ServerSnap
	fsOnly.fs = vfs.New()
	if bc.RestoreServerSnap("nsd/0", fsOnly) {
		t.Fatal("RestoreServerSnap accepted fs snap for block server")
	}
}
