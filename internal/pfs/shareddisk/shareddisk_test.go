package shareddisk

import (
	"bytes"
	"strings"
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

func newGPFS(t *testing.T) *FS {
	t.Helper()
	conf := pfs.DefaultConfig()
	conf.MetaServers = 0
	conf.StorageServers = 2
	return New(conf, Policy{FSName: "gpfs"}, trace.NewRecorder())
}

func newLustre(t *testing.T) *FS {
	t.Helper()
	conf := pfs.DefaultConfig()
	return New(conf, Policy{FSName: "lustre", Barriers: true, ReplayLog: true}, trace.NewRecorder())
}

func TestTransactionWritesLogFirst(t *testing.T) {
	f := newGPFS(t)
	c := f.Client(0)
	if err := c.Create("/foo"); err != nil {
		t.Fatal(err)
	}
	var tags []string
	for _, o := range f.Recorder().Ops() {
		if o.Name == "scsi_write" {
			tags = append(tags, o.Tag)
		}
	}
	if len(tags) == 0 || tags[0] != "log" {
		t.Fatalf("first block write should be the log record, got %v", tags)
	}
	joined := strings.Join(tags, " ")
	for _, want := range []string{"inode", "dir_entries", "alloc_map"} {
		if !strings.Contains(joined, want) {
			t.Errorf("create transaction missing a %s write: %v", want, tags)
		}
	}
}

func TestLustreEmitsBarriers(t *testing.T) {
	f := newLustre(t)
	c := f.Client(0)
	if err := c.Create("/foo"); err != nil {
		t.Fatal(err)
	}
	syncs := 0
	for _, o := range f.Recorder().Ops() {
		if o.Name == "scsi_sync" {
			syncs++
		}
	}
	if syncs == 0 {
		t.Fatal("Lustre must issue SCSI barriers")
	}
	// GPFS must not.
	g := newGPFS(t)
	if err := g.Client(0).Create("/foo"); err != nil {
		t.Fatal(err)
	}
	for _, o := range g.Recorder().Ops() {
		if o.Name == "scsi_sync" {
			t.Fatal("GPFS must not issue barriers")
		}
	}
}

func TestJournalReplayRestoresLostInPlaceWrites(t *testing.T) {
	// Drop an in-place metadata write, keep the log: Lustre's journal
	// replay reconstructs it.
	f := newLustre(t)
	c := f.Client(0)
	if err := c.Create("/foo"); err != nil {
		t.Fatal(err)
	}
	// Erase the parent's entries block (as if the in-place write was lost).
	root := f.owner(1)
	f.server(root).Dev.Erase(entriesLBA(1))
	if err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	tree, err := f.Mount()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tree.Entries["/foo"]; !ok {
		t.Fatalf("journal replay lost /foo:\n%s", tree.Serialize())
	}
}

func TestMmfsckDropsDanglingEntries(t *testing.T) {
	// GPFS's salvager removes entries whose inode block is gone — the
	// metadata-loss consequence of bug #3.
	f := newGPFS(t)
	c := f.Client(0)
	if err := c.Create("/foo"); err != nil {
		t.Fatal(err)
	}
	ino, err := f.resolve("/foo")
	if err != nil {
		t.Fatal(err)
	}
	f.server(f.owner(ino)).Dev.Erase(inodeLBA(ino))
	if _, err := f.Mount(); err == nil {
		t.Fatal("mount should fail on a dangling entry")
	}
	if err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	tree, err := f.Mount()
	if err != nil {
		t.Fatalf("mount after mmfsck: %v", err)
	}
	if _, ok := tree.Entries["/foo"]; ok {
		t.Fatal("mmfsck kept the dangling entry")
	}
}

func TestMmfsckDropsUnallocatedInodes(t *testing.T) {
	// An entry whose inode is not in the allocation map is removed (the
	// "accept all fixes" policy).
	f := newGPFS(t)
	c := f.Client(0)
	if err := c.Create("/foo"); err != nil {
		t.Fatal(err)
	}
	ino, _ := f.resolve("/foo")
	owner := f.owner(ino)
	f.server(owner).Dev.Write(lbaAlloc, mustJSON(allocBlock{Used: []int{}}))
	if err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	tree, _ := f.Mount()
	if _, ok := tree.Entries["/foo"]; ok {
		t.Fatal("unallocated inode's entry survived mmfsck")
	}
}

func TestDataStripingAndReadback(t *testing.T) {
	for _, mk := range []func(*testing.T) *FS{newGPFS, newLustre} {
		f := mk(t)
		c := f.Client(0)
		if err := c.Create("/big"); err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte("0123456789abcdef"), 20) // 320 bytes
		if err := c.WriteAt("/big", 0, data); err != nil {
			t.Fatal(err)
		}
		got, err := c.Read("/big")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s: striped read mismatch (%d bytes, err %v)", f.Name(), len(got), err)
		}
		// Data blocks must exist on both devices (striping).
		for i := 0; i < f.servers(); i++ {
			found := false
			for _, lba := range f.server(i).Dev.LBAs() {
				if lba >= lbaData && lba < lbaLog {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: no data blocks on server %d", f.Name(), i)
			}
		}
	}
}

func TestRenameReplaceFreesInode(t *testing.T) {
	f := newGPFS(t)
	c := f.Client(0)
	for _, p := range []string{"/a", "/b"} {
		if err := c.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	oldIno, _ := f.resolve("/b")
	if err := c.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	ab, ok := readBlock[allocBlock](f, f.owner(oldIno), lbaAlloc)
	if !ok {
		t.Fatal("alloc block unreadable")
	}
	for _, ino := range ab.Used {
		if ino == oldIno {
			t.Fatal("replaced inode still allocated")
		}
	}
	if fs := len(mustTree(t, f).Entries); fs != 1 {
		t.Fatalf("tree has %d entries, want 1", fs)
	}
}

func mustTree(t *testing.T, f *FS) *pfs.Tree {
	t.Helper()
	tree, err := f.Mount()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}
