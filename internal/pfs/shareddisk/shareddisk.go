// Package shareddisk implements the kernel-level, block-based parallel file
// system substrate shared by the GPFS and Lustre simulations (paper §2.1:
// "Other PFSs such as GPFS directly operate atop the block I/O interface",
// traced as SCSI commands through iSCSI, Figure 7).
//
// Each server owns a block device holding
//
//	LBA 0                superblock {root ino}
//	LBA 1                allocation map {used inos owned by this server}
//	LBA 100+2*ino        inode block {ino, dir, size, base}
//	LBA 101+2*ino        directory entries block {name -> ino}
//	LBA 100000+256*ino+k data block k of file ino (on its stripe server)
//	LBA 1000000+seq      metadata redo log record
//
// Metadata operations are transactions: a log record (the redo for every
// metadata block write of the op) followed by the in-place writes — the
// write-ahead pattern of the paper's Figure 9d, where the ARVR rename
// produces the atomic group {log, parent dir, file inode, parent dir
// inode}. File data is NOT logged (metadata-only journaling), which is why
// a lost data write survives recovery as data loss.
//
// The Policy separates GPFS from Lustre:
//
//   - GPFS (Barriers=false) issues no SCSI barriers, so block writes may
//     persist in any order; partially persisted atomic groups survive
//     recovery as data or metadata loss (paper bug #3) and writes of
//     different transactions reorder (bugs #4, #5).
//   - Lustre (Barriers=true) ends every per-server write group with
//     scsi_synchronize_cache ("properly aggregates intermediate changes
//     and invokes accurate disk barriers"), making persistence causal: no
//     POSIX-level bugs, exactly as the paper found.
package shareddisk

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// Policy configures the concrete file system built on the shared-disk
// substrate.
type Policy struct {
	// FSName is the reported file system name ("gpfs", "lustre").
	FSName string
	// Barriers controls whether every per-server write group ends with a
	// SCSI barrier (Lustre) or not (GPFS).
	Barriers bool
	// ReplayLog controls recovery: Lustre's ldiskfs replays its journal
	// (committed transactions are redone from the log), while GPFS's
	// mmfsck is a structural salvager that scans and fixes the on-disk
	// structures without redoing logged transactions — which is why a
	// partially persisted atomic group survives it as data or metadata
	// loss (paper bug #3, "accept all mmfsck fixes").
	ReplayLog bool
}

// Block layout constants.
const (
	lbaSuper   = 0
	lbaAlloc   = 1
	lbaInodes  = 100
	lbaData    = 100000
	lbaLog     = 1000000
	dataBlocks = 256 // max data blocks per file per server
)

func inodeLBA(ino int) int64   { return lbaInodes + 2*int64(ino) }
func entriesLBA(ino int) int64 { return lbaInodes + 2*int64(ino) + 1 }
func dataLBA(ino, k int) int64 { return lbaData + int64(ino)*dataBlocks + int64(k) }

// superBlock is the LBA 0 content.
type superBlock struct {
	Root int `json:"root"`
}

// allocBlock is the LBA 1 content: the inos this server has allocated.
type allocBlock struct {
	Used []int `json:"used"`
}

// inodeBlock describes a file or directory.
type inodeBlock struct {
	Ino  int   `json:"ino"`
	Dir  bool  `json:"dir"`
	Size int64 `json:"size"`
	Base int   `json:"base"` // first stripe target for file data
}

// entriesBlock is a directory's content.
type entriesBlock struct {
	Entries map[string]int `json:"entries"`
}

// logWrite is one redo entry: a metadata block image on a server.
type logWrite struct {
	Srv  int             `json:"srv"`
	LBA  int64           `json:"lba"`
	Data json.RawMessage `json:"data"`
}

// logRecord is a transaction's redo log block.
type logRecord struct {
	Seq    int        `json:"seq"`
	Writes []logWrite `json:"writes"`
}

// FS is a simulated shared-disk parallel file system.
type FS struct {
	*pfs.Cluster
	conf   pfs.Config
	policy Policy

	nextIno int
	nextSeq int
}

// New creates a deployment with conf.StorageServers block servers (the
// paper runs GPFS and Lustre with two servers that each manage data and
// metadata) and formats the root directory.
func New(conf pfs.Config, policy Policy, rec *trace.Recorder) *FS {
	n := conf.StorageServers
	if n <= 0 {
		n = 2
	}
	var procs []string
	for i := 0; i < n; i++ {
		procs = append(procs, fmt.Sprintf("server/%d", i))
	}
	f := &FS{
		Cluster: pfs.NewBlockCluster(conf, rec, procs),
		conf:    conf,
		policy:  policy,
		nextIno: 2, // root is ino 1
		nextSeq: 1,
	}
	// mkfs (untraced, direct device writes).
	rootOwner := f.owner(1)
	for i := 0; i < n; i++ {
		used := []int{}
		if i == rootOwner {
			used = []int{1}
		}
		f.server(i).Dev.Write(lbaSuper, mustJSON(superBlock{Root: 1}))
		f.server(i).Dev.Write(lbaAlloc, mustJSON(allocBlock{Used: used}))
	}
	f.server(rootOwner).Dev.Write(inodeLBA(1), mustJSON(inodeBlock{Ino: 1, Dir: true}))
	f.server(rootOwner).Dev.Write(entriesLBA(1), mustJSON(entriesBlock{Entries: map[string]int{}}))
	return f
}

// CloneDetached implements pfs.Cloner: a fresh deployment (same policy)
// with an untraced recorder, carrying over the inode and log-sequence
// allocators so replayed client operations never collide with inos or log
// records present in restored snapshots.
func (f *FS) CloneDetached() pfs.FileSystem {
	rec := trace.NewRecorder()
	rec.SetEnabled(false)
	c := New(f.conf, f.policy, rec)
	c.nextIno, c.nextSeq = f.nextIno, f.nextSeq
	return c
}

// allocWith returns server srv's allocation map content with ino added or
// removed, reading the current map from disk (the FS keeps no state outside
// its stores).
func (f *FS) allocWith(srv, ino int, add bool) allocBlock {
	used := map[int]bool{}
	if ab, ok := readBlock[allocBlock](f, srv, lbaAlloc); ok {
		for _, i := range ab.Used {
			used[i] = true
		}
	}
	if add {
		used[ino] = true
	} else {
		delete(used, ino)
	}
	return allocBlock{Used: sortedInos(used)}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("shareddisk: marshal: %v", err))
	}
	return b
}

func sortedInos(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Name implements pfs.FileSystem.
func (f *FS) Name() string { return f.policy.FSName }

// Config implements pfs.FileSystem.
func (f *FS) Config() pfs.Config { return f.conf }

// Recorder implements pfs.FileSystem.
func (f *FS) Recorder() *trace.Recorder { return f.Rec }

func (f *FS) servers() int { return len(f.BlockServers) }
func (f *FS) server(i int) *pfs.BlockServer {
	return f.BlockServers[i]
}
func (f *FS) serverProc(i int) string { return fmt.Sprintf("server/%d", i) }

// owner returns the metadata owner server of an ino.
func (f *FS) owner(ino int) int { return ino % f.servers() }

// readBlock unmarshals the current content of a block.
func readBlock[T any](f *FS, srv int, lba int64) (T, bool) {
	var out T
	b, ok := f.server(srv).Dev.Read(lba)
	if !ok {
		return out, false
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return out, false
	}
	return out, true
}

// txn is a metadata transaction under construction.
type txn struct {
	fs     *FS
	writes []logWrite
}

func (f *FS) newTxn() *txn { return &txn{fs: f} }

// add queues a metadata block write.
func (t *txn) add(srv int, lba int64, v any) {
	t.writes = append(t.writes, logWrite{Srv: srv, LBA: lba, Data: mustJSON(v)})
}

// commit emits the transaction: the redo log record on the home server,
// the policy barrier, then the in-place writes (each server's group ending
// with a barrier under the Lustre policy). Must run inside RPC handlers so
// ops pick up caller edges; commit issues its own per-server RPCs.
func (t *txn) commit(clientProc string, home int, tag string) {
	f := t.fs
	rec := logRecord{Seq: f.nextSeq, Writes: t.writes}
	f.nextSeq++

	f.RPC(clientProc, f.serverProc(home), func() {
		s := f.server(home)
		s.Write(f.Rec, lbaLog+int64(rec.Seq), mustJSON(rec), "log")
		if f.policy.Barriers {
			s.Sync(f.Rec)
		}
	})
	// In-place writes, grouped by server.
	byServer := map[int][]logWrite{}
	var order []int
	for _, w := range t.writes {
		if _, ok := byServer[w.Srv]; !ok {
			order = append(order, w.Srv)
		}
		byServer[w.Srv] = append(byServer[w.Srv], w)
	}
	for _, srv := range order {
		srv := srv
		f.RPC(clientProc, f.serverProc(srv), func() {
			s := f.server(srv)
			for _, w := range byServer[srv] {
				s.Write(f.Rec, w.LBA, w.Data, tagOf(w.LBA, tag))
			}
			if f.policy.Barriers {
				s.Sync(f.Rec)
			}
		})
	}
}

// tagOf labels an in-place write by its block type for the reports
// (matching Figure 9d's "log file", "parent dir", "inode" vocabulary).
func tagOf(lba int64, fallback string) string {
	switch {
	case lba == lbaSuper:
		return "superblock"
	case lba == lbaAlloc:
		return "alloc_map"
	case lba >= lbaLog:
		return "log"
	case lba >= lbaData:
		return "data"
	case (lba-lbaInodes)%2 == 0:
		return "inode"
	default:
		return "dir_entries"
	}
}

// Client implements pfs.FileSystem.
func (f *FS) Client(id int) pfs.Client {
	return &client{fs: f, proc: fmt.Sprintf("client/%d", id)}
}

// resolve walks the directory structures to find the ino of a path.
func (f *FS) resolve(path string) (int, error) {
	sb, ok := readBlock[superBlock](f, f.owner(1), lbaSuper)
	if !ok {
		return 0, fmt.Errorf("%s: superblock unreadable", f.policy.FSName)
	}
	cur := sb.Root
	path = vfs.Clean(path)
	if path == "/" {
		return cur, nil
	}
	for _, comp := range strings.Split(strings.TrimPrefix(path, "/"), "/") {
		ent, ok := readBlock[entriesBlock](f, f.owner(cur), entriesLBA(cur))
		if !ok {
			return 0, fmt.Errorf("%s: %q: directory entries unreadable", f.policy.FSName, path)
		}
		next, ok := ent.Entries[comp]
		if !ok {
			return 0, fmt.Errorf("%s: %q: no such entry", f.policy.FSName, path)
		}
		cur = next
	}
	return cur, nil
}

func (f *FS) inode(ino int) (inodeBlock, bool) {
	return readBlock[inodeBlock](f, f.owner(ino), inodeLBA(ino))
}

func splitPath(p string) (dir, name string) {
	p = vfs.Clean(p)
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/", p[1:]
	}
	return p[:i], p[i+1:]
}

func (f *FS) pickBase(path string) int {
	if f.conf.FilePlacement != nil {
		if b, ok := f.conf.FilePlacement[vfs.Clean(path)]; ok {
			return b % f.servers()
		}
	}
	return 0
}

// entriesOf reads a directory's entry map (copy).
func (f *FS) entriesOf(ino int) (map[string]int, error) {
	ent, ok := readBlock[entriesBlock](f, f.owner(ino), entriesLBA(ino))
	if !ok {
		return nil, fmt.Errorf("%s: entries of ino %d unreadable", f.policy.FSName, ino)
	}
	out := map[string]int{}
	for k, v := range ent.Entries {
		out[k] = v
	}
	return out, nil
}

type client struct {
	fs   *FS
	proc string
}

func (c *client) Proc() string { return c.proc }

// Create allocates an inode and runs the creation transaction: log, new
// inode, parent entries, parent inode (mtime), allocation map — the
// Figure 9d atomic group.
func (c *client) Create(path string) error {
	f := c.fs
	dir, name := splitPath(path)
	pino, err := f.resolve(dir)
	if err != nil {
		return err
	}
	pin, ok := f.inode(pino)
	if !ok || !pin.Dir {
		return fmt.Errorf("%s: %q: parent is not a directory", f.policy.FSName, dir)
	}
	entries, err := f.entriesOf(pino)
	if err != nil {
		return err
	}
	ino := f.nextIno
	f.nextIno++
	base := f.pickBase(path)
	owner := f.owner(ino)
	entries[name] = ino

	f.RecordClientOp(c.proc, "creat", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	t := f.newTxn()
	t.add(owner, inodeLBA(ino), inodeBlock{Ino: ino, Base: base})
	t.add(f.owner(pino), entriesLBA(pino), entriesBlock{Entries: entries})
	t.add(f.owner(pino), inodeLBA(pino), pin) // mtime touch
	t.add(owner, lbaAlloc, f.allocWith(owner, ino, true))
	t.commit(c.proc, owner, "meta")
	return nil
}

// Mkdir creates a directory inode with an empty entries block.
func (c *client) Mkdir(path string) error {
	f := c.fs
	dir, name := splitPath(path)
	pino, err := f.resolve(dir)
	if err != nil {
		return err
	}
	pin, ok := f.inode(pino)
	if !ok || !pin.Dir {
		return fmt.Errorf("%s: %q: parent is not a directory", f.policy.FSName, dir)
	}
	entries, err := f.entriesOf(pino)
	if err != nil {
		return err
	}
	ino := f.nextIno
	f.nextIno++
	owner := f.owner(ino)
	entries[name] = ino

	f.RecordClientOp(c.proc, "mkdir", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	t := f.newTxn()
	t.add(owner, inodeLBA(ino), inodeBlock{Ino: ino, Dir: true})
	t.add(owner, entriesLBA(ino), entriesBlock{Entries: map[string]int{}})
	t.add(f.owner(pino), entriesLBA(pino), entriesBlock{Entries: entries})
	t.add(f.owner(pino), inodeLBA(pino), pin)
	t.add(owner, lbaAlloc, f.allocWith(owner, ino, true))
	t.commit(c.proc, owner, "meta")
	return nil
}

// WriteAt writes file data block-by-block (data is not journaled), then
// commits a size-update transaction. Under the Lustre policy each data
// server's group ends with a barrier before the metadata commit, modelling
// ordered-mode journaling.
func (c *client) WriteAt(path string, off int64, data []byte) error {
	f := c.fs
	ino, err := f.resolve(path)
	if err != nil {
		return err
	}
	in, ok := f.inode(ino)
	if !ok || in.Dir {
		return fmt.Errorf("%s: %q: not a regular file", f.policy.FSName, path)
	}

	f.RecordClientOp(c.proc, "pwrite", vfs.Clean(path), "", off, data)
	defer f.PopClient(c.proc)

	stripes := pfs.StripeRange(off, data, f.servers(), f.conf.StripeSize, in.Base)
	byServer := map[int][]pfs.Stripe{}
	var order []int
	for _, st := range stripes {
		if _, ok := byServer[st.Server]; !ok {
			order = append(order, st.Server)
		}
		byServer[st.Server] = append(byServer[st.Server], st)
	}
	for _, srv := range order {
		srv := srv
		f.RPC(c.proc, f.serverProc(srv), func() {
			s := f.server(srv)
			for _, st := range byServer[srv] {
				k := int(st.LocalOffset / f.conf.StripeSize)
				// Read-modify-write the whole stripe block.
				block, _ := s.Dev.Read(dataLBA(ino, k))
				inBlock := st.LocalOffset % f.conf.StripeSize
				need := inBlock + int64(len(st.Data))
				if int64(len(block)) < need {
					grown := make([]byte, need)
					copy(grown, block)
					block = grown
				}
				copy(block[inBlock:], st.Data)
				s.Write(f.Rec, dataLBA(ino, k), block, f.DataTag("data"))
			}
			if f.policy.Barriers {
				s.Sync(f.Rec)
			}
		})
	}
	if end := off + int64(len(data)); end > in.Size {
		in.Size = end
	}
	t := f.newTxn()
	t.add(f.owner(ino), inodeLBA(ino), in)
	t.commit(c.proc, f.owner(ino), "meta")
	return nil
}

// Append appends at end of file.
func (c *client) Append(path string, data []byte) error {
	f := c.fs
	ino, err := f.resolve(path)
	if err != nil {
		return err
	}
	in, _ := f.inode(ino)
	return c.WriteAt(path, in.Size, data)
}

// Read reassembles file content from the data blocks.
func (c *client) Read(path string) ([]byte, error) {
	f := c.fs
	ino, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	in, ok := f.inode(ino)
	if !ok {
		return nil, fmt.Errorf("%s: %q: inode unreadable", f.policy.FSName, path)
	}
	return f.readData(in), nil
}

func (f *FS) readData(in inodeBlock) []byte {
	out := make([]byte, in.Size)
	ss := f.conf.StripeSize
	for g := int64(0); g < in.Size; g += ss {
		stripe := g / ss
		srv := (in.Base + int(stripe)) % f.servers()
		k := int(stripe) / f.servers()
		block, ok := f.server(srv).Dev.Read(dataLBA(in.Ino, k))
		if !ok {
			continue
		}
		n := ss
		if g+n > in.Size {
			n = in.Size - g
		}
		if int64(len(block)) < n {
			copy(out[g:g+int64(len(block))], block)
		} else {
			copy(out[g:g+n], block[:n])
		}
	}
	return out
}

// Rename updates the parent directory entries (and frees a replaced file's
// inode) in one transaction — the Figure 9d group.
func (c *client) Rename(from, to string) error {
	f := c.fs
	srcDir, srcName := splitPath(from)
	dstDir, dstName := splitPath(to)
	spino, err := f.resolve(srcDir)
	if err != nil {
		return err
	}
	dpino, err := f.resolve(dstDir)
	if err != nil {
		return err
	}
	srcEntries, err := f.entriesOf(spino)
	if err != nil {
		return err
	}
	ino, ok := srcEntries[srcName]
	if !ok {
		return fmt.Errorf("%s: %q: no such entry", f.policy.FSName, from)
	}
	in, _ := f.inode(ino)

	f.RecordClientOp(c.proc, "rename", vfs.Clean(from), vfs.Clean(to), 0, nil)
	defer f.PopClient(c.proc)

	t := f.newTxn()
	var oldIno int
	if spino == dpino {
		if old, ok := srcEntries[dstName]; ok {
			oldIno = old
		}
		delete(srcEntries, srcName)
		srcEntries[dstName] = ino
		t.add(f.owner(spino), entriesLBA(spino), entriesBlock{Entries: srcEntries})
	} else {
		dstEntries, err := f.entriesOf(dpino)
		if err != nil {
			return err
		}
		if old, ok := dstEntries[dstName]; ok {
			oldIno = old
		}
		delete(srcEntries, srcName)
		dstEntries[dstName] = ino
		t.add(f.owner(dpino), entriesLBA(dpino), entriesBlock{Entries: dstEntries})
		t.add(f.owner(spino), entriesLBA(spino), entriesBlock{Entries: srcEntries})
	}
	t.add(f.owner(ino), inodeLBA(ino), in) // mtime touch of the moved inode
	pin, _ := f.inode(dpino)
	t.add(f.owner(dpino), inodeLBA(dpino), pin)
	if oldIno != 0 {
		owner := f.owner(oldIno)
		t.add(owner, lbaAlloc, f.allocWith(owner, oldIno, false))
	}
	t.commit(c.proc, f.owner(dpino), "meta")
	return nil
}

// Unlink removes the entry and frees the inode.
func (c *client) Unlink(path string) error {
	f := c.fs
	dir, name := splitPath(path)
	pino, err := f.resolve(dir)
	if err != nil {
		return err
	}
	entries, err := f.entriesOf(pino)
	if err != nil {
		return err
	}
	ino, ok := entries[name]
	if !ok {
		return fmt.Errorf("%s: %q: no such entry", f.policy.FSName, path)
	}
	delete(entries, name)
	owner := f.owner(ino)

	f.RecordClientOp(c.proc, "unlink", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	t := f.newTxn()
	t.add(f.owner(pino), entriesLBA(pino), entriesBlock{Entries: entries})
	t.add(owner, lbaAlloc, f.allocWith(owner, ino, false))
	t.commit(c.proc, f.owner(pino), "meta")
	return nil
}

// Fsync issues barriers on the servers holding the file's data.
func (c *client) Fsync(path string) error {
	f := c.fs
	ino, err := f.resolve(path)
	if err != nil {
		return err
	}
	op := f.RecordClientOp(c.proc, "fsync", vfs.Clean(path), "", 0, nil)
	op.Sync = true
	defer f.PopClient(c.proc)
	_ = ino
	for i := 0; i < f.servers(); i++ {
		srv := i
		f.RPC(c.proc, f.serverProc(srv), func() {
			f.server(srv).Sync(f.Rec)
		})
	}
	return nil
}

// Close records the client-level close.
func (c *client) Close(path string) error {
	f := c.fs
	f.RecordClientOp(c.proc, "close", vfs.Clean(path), "", 0, nil)
	f.PopClient(c.proc)
	return nil
}

// Recover implements the file system's crash recovery:
//
//  1. journal replay (Lustre policy only): every readable log record is
//     re-applied in sequence order, restoring committed transactions;
//  2. structural pass "accepting all fixes" (mmfsck-style): directory
//     entries referencing unreadable or unallocated inodes are removed
//     (the paper's data loss and metadata loss consequences of bug #3).
func (f *FS) Recover() error {
	defer f.TimeOp("pfs/recover")()
	if err := f.FaultPoint("pfs/recover", f.Name()); err != nil {
		return err
	}
	if f.policy.ReplayLog {
		type seqRec struct {
			rec logRecord
		}
		var logs []seqRec
		for i := 0; i < f.servers(); i++ {
			for _, lba := range f.server(i).Dev.LBAs() {
				if lba < lbaLog {
					continue
				}
				if rec, ok := readBlock[logRecord](f, i, lba); ok {
					logs = append(logs, seqRec{rec})
				}
			}
		}
		sort.Slice(logs, func(a, b int) bool { return logs[a].rec.Seq < logs[b].rec.Seq })
		for _, l := range logs {
			for _, w := range l.rec.Writes {
				if w.Srv >= 0 && w.Srv < f.servers() {
					f.server(w.Srv).Dev.Write(w.LBA, w.Data)
				}
			}
		}
	}

	// Phase 2: structural fixes from the root down.
	sb, ok := readBlock[superBlock](f, f.owner(1), lbaSuper)
	if !ok {
		return fmt.Errorf("%s: fsck: superblock unreadable", f.policy.FSName)
	}
	allocated := map[int]bool{}
	for i := 0; i < f.servers(); i++ {
		if ab, ok := readBlock[allocBlock](f, i, lbaAlloc); ok {
			for _, ino := range ab.Used {
				allocated[ino] = true
			}
		}
	}
	var fix func(ino int) error
	fix = func(ino int) error {
		ent, ok := readBlock[entriesBlock](f, f.owner(ino), entriesLBA(ino))
		if !ok {
			// A directory with no entries block yet: materialise empty.
			f.server(f.owner(ino)).Dev.Write(entriesLBA(ino), mustJSON(entriesBlock{Entries: map[string]int{}}))
			return nil
		}
		changed := false
		for name, child := range ent.Entries {
			cin, ok := f.inode(child)
			if !ok || !allocated[child] || cin.Ino != child {
				delete(ent.Entries, name) // accept the fix: drop the entry
				changed = true
				continue
			}
			if cin.Dir {
				if err := fix(child); err != nil {
					return err
				}
			}
		}
		if changed {
			f.server(f.owner(ino)).Dev.Write(entriesLBA(ino), mustJSON(entriesBlock{Entries: ent.Entries}))
		}
		return nil
	}
	return fix(sb.Root)
}

// Mount materialises the logical namespace by walking from the root.
func (f *FS) Mount() (*pfs.Tree, error) {
	defer f.TimeOp("pfs/mount")()
	if err := f.FaultPoint("pfs/mount", f.Name()); err != nil {
		return nil, err
	}
	sb, ok := readBlock[superBlock](f, f.owner(1), lbaSuper)
	if !ok {
		return nil, fmt.Errorf("%s: mount: superblock unreadable", f.policy.FSName)
	}
	t := pfs.NewTree()
	var walk func(path string, ino int) error
	walk = func(path string, ino int) error {
		ent, ok := readBlock[entriesBlock](f, f.owner(ino), entriesLBA(ino))
		if !ok {
			return nil // empty, unmaterialised directory
		}
		names := make([]string, 0, len(ent.Entries))
		for n := range ent.Entries {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			child := ent.Entries[name]
			cin, ok := f.inode(child)
			if !ok {
				return fmt.Errorf("%s: mount: entry %q references unreadable inode %d", f.policy.FSName, name, child)
			}
			cpath := vfs.Clean(path + "/" + name)
			if cin.Dir {
				t.AddDir(cpath)
				if err := walk(cpath, child); err != nil {
					return err
				}
			} else {
				t.AddFile(cpath, f.readData(cin))
			}
		}
		return nil
	}
	if err := walk("/", sb.Root); err != nil {
		return nil, err
	}
	return t, nil
}
