// Package pfs defines the parallel-file-system abstraction that ParaCrash
// tests, plus the cluster harness (simulated servers, RPC, striping) shared
// by the concrete PFS implementations in the subpackages.
//
// A FileSystem owns a set of simulated servers whose entire persistent
// state lives in vfs.FS / blockdev.Dev stores. Client operations execute
// live against those stores while recording trace ops at every layer; crash
// emulation later restores store snapshots and re-applies recorded
// lowermost ops. Because implementations keep no logical state outside
// their stores, Restore+replay is always faithful.
package pfs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"paracrash/internal/blockdev"
	"paracrash/internal/causality"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// Config describes a PFS deployment (the paper's Table 2 settings).
type Config struct {
	// MetaServers and StorageServers set the server counts. PFSs without
	// dedicated metadata servers (GlusterFS, GPFS) ignore MetaServers.
	MetaServers    int
	StorageServers int

	// StripeSize is the striping unit in bytes (paper default 128 KB; the
	// tests use smaller stripes to keep traces small — the stripe size is a
	// parameter of every experiment).
	StripeSize int64

	// Journal is the journaling mode of the servers' local file systems
	// (user-level PFSs only). The paper evaluates data journaling, its
	// safest mode.
	Journal vfs.JournalMode

	// DirPlacement optionally pins a directory path to a metadata server
	// index, overriding round-robin placement (used by the sensitivity
	// studies on file distribution).
	DirPlacement map[string]int
	// FilePlacement optionally pins a file path to a storage server index
	// for its first stripe.
	FilePlacement map[string]int
}

// DefaultConfig returns the paper's default small-cluster configuration.
func DefaultConfig() Config {
	return Config{
		MetaServers:    2,
		StorageServers: 2,
		StripeSize:     128, // scaled-down stripe; paper uses 128KB
		Journal:        vfs.JournalData,
	}
}

// Client is the POSIX-like interface test programs use against a mounted
// PFS. Operations are path-based; open-for-write state is tracked per path
// (Create/OpenWrite open a file, Close closes it) for the baseline
// consistency model.
type Client interface {
	// Proc returns the client process name (e.g. "client/0").
	Proc() string

	Create(path string) error
	Mkdir(path string) error
	WriteAt(path string, off int64, data []byte) error
	Append(path string, data []byte) error
	Read(path string) ([]byte, error)
	Rename(from, to string) error
	Unlink(path string) error
	Fsync(path string) error
	Close(path string) error
}

// FileSystem is a testable parallel file system.
type FileSystem interface {
	// Name returns the PFS name ("beegfs", "orangefs", ...).
	Name() string
	// Config returns the deployment configuration.
	Config() Config
	// Recorder returns the trace recorder shared by every layer.
	Recorder() *trace.Recorder
	// Client returns the client endpoint for client process id.
	Client(id int) Client

	// PersistConfig describes the persistence semantics of every
	// lowermost-layer process for Algorithm 2.
	PersistConfig() causality.PersistConfig
	// Procs returns the lowermost-layer process names (server stores).
	Procs() []string

	// Snapshot captures the complete persistent state of all servers.
	Snapshot() *State
	// Restore resets all servers to the snapshot.
	Restore(*State)
	// RestoreServer resets a single server store to its snapshot state,
	// enabling incremental crash-state reconstruction.
	RestoreServer(s *State, proc string)

	// ApplyLowermost applies a recorded lowermost op's payload to the live
	// server store it was traced on. Errors mean the op's effect is lost
	// (its target never persisted), which the emulator tolerates.
	ApplyLowermost(op *trace.Op) error

	// Recover runs the PFS's crash-recovery / fsck procedure on the current
	// server state, mutating it. A non-nil error means the file system is
	// unrecoverable (mount would fail).
	Recover() error

	// Mount materialises the logical namespace from the current server
	// state. An error means the state cannot be interpreted.
	Mount() (*Tree, error)
}

// Cloner is implemented by file systems whose deployment can be cloned
// into a detached replica: a new FileSystem with the same configuration and
// freshly formatted server stores that shares no mutable state with the
// original. The parallel exploration engine gives each worker a clone and
// rebuilds every crash state in it via Restore/ApplyLowermost from a shared
// read-only snapshot, so the clone never needs the original's store
// content — only its allocator positions. Implementations must copy any
// in-memory ID counters from the source so that client operations replayed
// in the clone allocate identifiers that cannot collide with objects
// already present in restored snapshots. The clone's Recorder must start
// disabled (clones are never traced).
//
// A *State produced by Snapshot is immutable once taken and safe to share
// across goroutines: Restore/RestoreServer adopt its structurally-shared
// store snapshots copy-on-write and nothing writes into it.
type Cloner interface {
	CloneDetached() FileSystem
}

// Tree is a PFS's logical namespace: the golden-master comparison unit for
// PFS-level consistency checking.
type Tree struct {
	// Entries maps absolute paths to entries. The root "/" is implicit.
	Entries map[string]*Entry
}

// Entry is a single logical file or directory.
type Entry struct {
	Dir  bool
	Data []byte
}

// NewTree returns an empty tree.
func NewTree() *Tree {
	return &Tree{Entries: make(map[string]*Entry)}
}

// AddDir inserts a directory at path.
func (t *Tree) AddDir(path string) {
	t.Entries[vfs.Clean(path)] = &Entry{Dir: true}
}

// AddFile inserts a file at path with the given contents.
func (t *Tree) AddFile(path string, data []byte) {
	t.Entries[vfs.Clean(path)] = &Entry{Data: append([]byte(nil), data...)}
}

// Paths returns the sorted paths in the tree.
func (t *Tree) Paths() []string {
	out := make([]string, 0, len(t.Entries))
	for p := range t.Entries {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Serialize renders the tree canonically for comparison and hashing.
func (t *Tree) Serialize() string {
	var b strings.Builder
	for _, p := range t.Paths() {
		e := t.Entries[p]
		if e.Dir {
			b.WriteString("d ")
			b.WriteString(p)
			b.WriteByte('\n')
		} else {
			sum := sha256.Sum256(e.Data)
			b.WriteString("f ")
			b.WriteString(p)
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(len(e.Data)))
			b.WriteByte(' ')
			b.WriteString(hex.EncodeToString(sum[:8]))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Hash returns a short digest of the canonical form.
func (t *Tree) Hash() string {
	sum := sha256.Sum256([]byte(t.Serialize()))
	return hex.EncodeToString(sum[:12])
}

// Diff returns a human-readable description of how t differs from o, used
// in bug reports. Empty means identical.
func (t *Tree) Diff(o *Tree) string {
	var b strings.Builder
	for _, p := range t.Paths() {
		te := t.Entries[p]
		oe, ok := o.Entries[p]
		switch {
		case !ok:
			fmt.Fprintf(&b, "- %s missing\n", p)
		case te.Dir != oe.Dir:
			fmt.Fprintf(&b, "~ %s type mismatch\n", p)
		case !te.Dir && string(te.Data) != string(oe.Data):
			fmt.Fprintf(&b, "~ %s content differs (%d vs %d bytes)\n", p, len(te.Data), len(oe.Data))
		}
	}
	for _, p := range o.Paths() {
		if _, ok := t.Entries[p]; !ok {
			fmt.Fprintf(&b, "+ %s unexpected\n", p)
		}
	}
	return b.String()
}

// State is a snapshot of every server store in a cluster. A State is
// immutable once taken: Restore/RestoreServer adopt its stores
// copy-on-write and never write into it, so one State (e.g. the initial
// snapshot) can back concurrent reconstructions in many cluster clones at
// once, each restore costing O(1) per server.
type State struct {
	FS  map[string]*vfs.FS
	Dev map[string]*blockdev.Dev
}

// ReplayClientOp re-executes a recorded PFS-layer client op through c.
// Unknown names are an error; failed operations are returned as errors and
// typically skipped by legal-state replay (the preserved set may lack the
// op's prerequisites).
func ReplayClientOp(c Client, op *trace.Op) error {
	switch op.Name {
	case "creat":
		return c.Create(op.Path)
	case "mkdir":
		return c.Mkdir(op.Path)
	case "pwrite":
		return c.WriteAt(op.Path, op.Offset, op.Data)
	case "append":
		return c.Append(op.Path, op.Data)
	case "rename":
		return c.Rename(op.Path, op.Path2)
	case "unlink":
		return c.Unlink(op.Path)
	case "fsync":
		return c.Fsync(op.Path)
	case "close":
		return c.Close(op.Path)
	default:
		return fmt.Errorf("pfs: replay: unknown client op %q", op.Name)
	}
}
