package glusterfs

import (
	"bytes"
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	conf := pfs.DefaultConfig()
	conf.MetaServers = 0
	conf.StorageServers = 2
	return New(conf, trace.NewRecorder())
}

func TestSmallFileStaysOnFirstBrick(t *testing.T) {
	// Striped volume: a small file's metadata and data live on brick 0,
	// the property behind GlusterFS's ARVR safety (paper §6.3.1).
	f := newFS(t)
	c := f.Client(0)
	if err := c.Create("/small"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt("/small", 0, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if !f.brick(0).FS.Exists("/vol/small") {
		t.Fatal("file missing on brick 0")
	}
	if f.brick(1).FS.Exists("/vol/small") {
		t.Fatal("small file leaked onto brick 1")
	}
}

func TestLargeFileStripesAcrossBricks(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	if err := c.Create("/large"); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("z"), 300)
	if err := c.WriteAt("/large", 0, data); err != nil {
		t.Fatal(err)
	}
	if !f.brick(1).FS.Exists("/vol/large") {
		t.Fatal("stripe missing on brick 1")
	}
	got, err := c.Read("/large")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("striped read mismatch: %d bytes, %v", len(got), err)
	}
	// Only the base copy carries the gfid.
	if _, ok := f.brick(1).FS.GetXattr("/vol/large", "gfid"); ok {
		t.Fatal("stripe copy must not carry the gfid")
	}
}

func TestDirectoriesMirroredToAllBricks(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if !f.brick(i).FS.IsDir("/vol/d") {
			t.Fatalf("directory missing on brick %d", i)
		}
	}
}

func TestHealMirrorsDirsAndRemovesOrphans(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	// Crash-like damage: the dir vanished from brick 1; an orphan stripe
	// (no base copy anywhere) appeared on brick 1.
	if err := f.brick(1).FS.Rmdir("/vol/d"); err != nil {
		t.Fatal(err)
	}
	if err := f.brick(1).FS.Create("/vol/orphan"); err != nil {
		t.Fatal(err)
	}
	if err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	if !f.brick(1).FS.IsDir("/vol/d") {
		t.Fatal("heal did not mirror the directory")
	}
	if f.brick(1).FS.Exists("/vol/orphan") {
		t.Fatal("heal kept the orphan stripe")
	}
}

func TestMountNamespaceIsBrick0Authoritative(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	// A directory existing only on brick 1 (half-renamed state) is not
	// part of the namespace.
	if err := f.brick(1).FS.Mkdir("/vol/ghost"); err != nil {
		t.Fatal(err)
	}
	tree, err := f.Mount()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tree.Entries["/ghost"]; ok {
		t.Fatal("non-authoritative directory leaked into the namespace")
	}
	if _, ok := tree.Entries["/d"]; !ok {
		t.Fatal("authoritative directory missing")
	}
}

func TestRenameMovesAllStripes(t *testing.T) {
	f := newFS(t)
	c := f.Client(0)
	if err := c.Create("/big"); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("y"), 300)
	if err := c.WriteAt("/big", 0, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/big", "/moved"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read("/moved")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after rename: %d bytes, %v", len(got), err)
	}
	for i := 0; i < 2; i++ {
		if f.brick(i).FS.Exists("/vol/big") {
			t.Fatalf("stale source stripe on brick %d", i)
		}
	}
}

// TestCorruptBaseSurfacesAsInconsistency pins the parse-error fix: a base
// xattr that does not parse to a valid brick index must error out of
// gfidOf (client paths) and Mount instead of silently reading as brick 0.
func TestCorruptBaseSurfacesAsInconsistency(t *testing.T) {
	for _, corrupt := range []string{"junk", "-1", "9", ""} {
		t.Run("base="+corrupt, func(t *testing.T) {
			f := newFS(t)
			c := f.Client(0)
			if err := c.Create("/victim"); err != nil {
				t.Fatal(err)
			}
			if err := f.brick(0).FS.SetXattr("/vol/victim", "base", []byte(corrupt)); err != nil {
				t.Fatal(err)
			}
			if _, _, err := f.gfidOf("/victim"); err == nil {
				t.Fatal("gfidOf must reject a corrupt base xattr")
			}
			if _, err := c.Read("/victim"); err == nil {
				t.Fatal("read must fail on a corrupt base xattr")
			}
			if _, err := f.Mount(); err == nil {
				t.Fatal("mount must fail on a corrupt base xattr")
			}
		})
	}
}
