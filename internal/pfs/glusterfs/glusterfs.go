// Package glusterfs simulates GlusterFS with a striped volume (paper
// Table 2, Figure 9c): no dedicated metadata servers — every brick carries
// the directory tree, file metadata lives in xattrs next to the data, and
// file contents are striped across the bricks starting at brick 0.
//
// Because a small file's metadata and data land on one brick (one local
// file system, ordered by data journaling), the ARVR reorderings of BeeGFS
// cannot happen (paper §6.3.1). Updates that span bricks — two different
// files placed apart, or stripes of a file larger than the stripe size —
// can still be persisted out of order, which exposes the WAL bug (#6, #8)
// and the HDF5 bugs on large files.
package glusterfs

import (
	"fmt"
	"strconv"
	"strings"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

// FS is a simulated GlusterFS striped volume.
type FS struct {
	*pfs.Cluster
	conf pfs.Config

	nextGfid int
}

// New creates a GlusterFS deployment with conf.StorageServers bricks.
func New(conf pfs.Config, rec *trace.Recorder) *FS {
	var procs []string
	for i := 0; i < conf.StorageServers; i++ {
		procs = append(procs, fmt.Sprintf("brick/%d", i))
	}
	f := &FS{Cluster: pfs.NewCluster(conf, rec, procs), conf: conf, nextGfid: 1}
	for i := 0; i < conf.StorageServers; i++ {
		must(f.brick(i).FS.Mkdir("/vol"))
	}
	return f
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("glusterfs: setup: %v", err))
	}
}

// CloneDetached implements pfs.Cloner: a fresh volume with an untraced
// recorder, carrying over the gfid allocator so files created by replayed
// client operations never collide with gfids present in restored snapshots.
func (f *FS) CloneDetached() pfs.FileSystem {
	rec := trace.NewRecorder()
	rec.SetEnabled(false)
	c := New(f.conf, rec)
	c.nextGfid = f.nextGfid
	return c
}

// Name implements pfs.FileSystem.
func (f *FS) Name() string { return "glusterfs" }

// Config implements pfs.FileSystem.
func (f *FS) Config() pfs.Config { return f.conf }

// Recorder implements pfs.FileSystem.
func (f *FS) Recorder() *trace.Recorder { return f.Rec }

func (f *FS) brick(i int) *pfs.ServerFS { return f.FSServers[i] }
func (f *FS) brickProc(i int) string    { return fmt.Sprintf("brick/%d", i) }

// Client implements pfs.FileSystem.
func (f *FS) Client(id int) pfs.Client {
	return &client{fs: f, proc: fmt.Sprintf("client/%d", id)}
}

// base returns the first stripe target for a path: brick 0 for a pure
// striped volume, unless pinned by FilePlacement (the distribution
// sensitivity studies).
func (f *FS) base(path string) int {
	if f.conf.FilePlacement != nil {
		if b, ok := f.conf.FilePlacement[vfs.Clean(path)]; ok {
			return b % f.conf.StorageServers
		}
	}
	return 0
}

// local returns the brick-local path of a volume path.
func local(path string) string { return "/vol" + vfs.Clean(path) }

type client struct {
	fs   *FS
	proc string
}

func (c *client) Proc() string { return c.proc }

// Create creates the file on its base brick with the volume xattrs.
func (c *client) Create(path string) error {
	f := c.fs
	base := f.base(path)
	gfid := fmt.Sprintf("g%d", f.nextGfid)
	f.nextGfid++

	f.RecordClientOp(c.proc, "creat", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	var err error
	f.RPC(c.proc, f.brickProc(base), func() {
		b := f.brick(base)
		err = b.Do(f.Rec, vfs.Op{Kind: vfs.OpCreate, Path: local(path)}, gfid, "file")
		if err == nil {
			err = b.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: local(path), Name: "gfid", Value: []byte(gfid)}, gfid, "xattr")
		}
		if err == nil {
			err = b.Do(f.Rec, vfs.Op{Kind: vfs.OpSetXattr, Path: local(path), Name: "base", Value: []byte(fmt.Sprint(base))}, gfid, "xattr")
		}
	})
	return err
}

// Mkdir mirrors the directory onto every brick (GlusterFS keeps the
// directory tree on all bricks).
func (c *client) Mkdir(path string) error {
	f := c.fs
	f.RecordClientOp(c.proc, "mkdir", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	var err error
	for i := 0; i < f.conf.StorageServers; i++ {
		srv := i
		f.RPC(c.proc, f.brickProc(srv), func() {
			b := f.brick(srv)
			if e := b.Do(f.Rec, vfs.Op{Kind: vfs.OpMkdir, Path: local(path)}, vfs.Clean(path), "dir"); e != nil && err == nil {
				err = e
			}
		})
	}
	return err
}

// gfidOf reads the file's gfid from its base brick copy. A missing base
// xattr defaults to brick 0 (the gfid persists before the base under data
// journaling, so a crash can legitimately drop just the base xattr on a
// brick-0 file); a base that is present but does not parse to a valid
// brick index is corruption and surfaces as an error.
func (f *FS) gfidOf(path string) (string, int, error) {
	for i := 0; i < f.conf.StorageServers; i++ {
		if g, ok := f.brick(i).FS.GetXattr(local(path), "gfid"); ok {
			base := 0
			if b, ok := f.brick(i).FS.GetXattr(local(path), "base"); ok {
				bi, err := strconv.Atoi(string(b))
				if err != nil || bi < 0 || bi >= f.conf.StorageServers {
					return "", 0, fmt.Errorf("glusterfs: %q: corrupt base xattr %q", path, b)
				}
				base = bi
			}
			return string(g), base, nil
		}
	}
	return "", 0, fmt.Errorf("glusterfs: %q: no such file", path)
}

// WriteAt stripes data across the bricks; stripe k of a file based at b
// lands on brick (b+k) mod N, in the brick-local file at the same path.
func (c *client) WriteAt(path string, off int64, data []byte) error {
	f := c.fs
	gfid, base, err := f.gfidOf(path)
	if err != nil {
		return err
	}
	f.RecordClientOp(c.proc, "pwrite", vfs.Clean(path), "", off, data)
	defer f.PopClient(c.proc)

	var err2 error
	for _, st := range pfs.StripeRange(off, data, f.conf.StorageServers, f.conf.StripeSize, base) {
		st := st
		f.RPC(c.proc, f.brickProc(st.Server), func() {
			b := f.brick(st.Server)
			lp := local(path)
			if !b.FS.Exists(lp) {
				if e := b.Do(f.Rec, vfs.Op{Kind: vfs.OpCreate, Path: lp}, gfid, "stripe"); e != nil && err2 == nil {
					err2 = e
				}
			}
			sz, _ := b.FS.Size(lp)
			op := vfs.Op{Kind: vfs.OpWrite, Path: lp, Offset: st.LocalOffset, Data: st.Data}
			if st.LocalOffset == sz {
				op = vfs.Op{Kind: vfs.OpAppend, Path: lp, Data: st.Data}
			}
			if e := b.Do(f.Rec, op, gfid, f.DataTag("stripe")); e != nil && err2 == nil {
				err2 = e
			}
		})
	}
	return err2
}

// Append appends at end of file.
func (c *client) Append(path string, data []byte) error {
	f := c.fs
	_, base, err := f.gfidOf(path)
	if err != nil {
		return err
	}
	lens := make([]int64, f.conf.StorageServers)
	for i := range lens {
		if sz, err := f.brick(i).FS.Size(local(path)); err == nil {
			lens[i] = sz
		}
	}
	return c.WriteAt(path, pfs.UnstripeSize(lens, f.conf.StorageServers, f.conf.StripeSize, base), data)
}

// Read reassembles the file from its stripes.
func (c *client) Read(path string) ([]byte, error) {
	f := c.fs
	_, base, err := f.gfidOf(path)
	if err != nil {
		return nil, err
	}
	return f.readFile(path, base), nil
}

func (f *FS) readFile(path string, base int) []byte {
	return pfs.ReassembleFile(f.conf.StorageServers, f.conf.StripeSize, base, func(srv int) []byte {
		b, err := f.brick(srv).FS.Read(local(path))
		if err != nil {
			return nil
		}
		return b
	})
}

// exists reports whether any brick holds the path.
func (f *FS) exists(path string) bool {
	for i := 0; i < f.conf.StorageServers; i++ {
		if f.brick(i).FS.Exists(local(path)) {
			return true
		}
	}
	return false
}

// Rename renames the path on every brick holding it (base brick first) and
// removes any replaced target copies.
func (c *client) Rename(from, to string) error {
	f := c.fs
	if !f.exists(from) {
		return fmt.Errorf("glusterfs: rename %q: no such file", from)
	}
	f.RecordClientOp(c.proc, "rename", vfs.Clean(from), vfs.Clean(to), 0, nil)
	defer f.PopClient(c.proc)

	var err error
	for i := 0; i < f.conf.StorageServers; i++ {
		srv := i
		bfs := f.brick(srv).FS
		hasSrc := bfs.Exists(local(from))
		hasDst := bfs.Exists(local(to))
		if !hasSrc && !hasDst {
			continue
		}
		f.RPC(c.proc, f.brickProc(srv), func() {
			b := f.brick(srv)
			if hasSrc {
				if e := b.Do(f.Rec, vfs.Op{Kind: vfs.OpRename, Path: local(from), Path2: local(to)}, vfs.Clean(from), "dentry"); e != nil && err == nil {
					err = e
				}
			} else {
				// Replaced target stripe with no source counterpart.
				if e := b.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: local(to)}, vfs.Clean(to), "stripe"); e != nil && err == nil {
					err = e
				}
			}
		})
	}
	return err
}

// Unlink removes the path from every brick holding it.
func (c *client) Unlink(path string) error {
	f := c.fs
	if !f.exists(path) {
		return fmt.Errorf("glusterfs: unlink %q: no such file", path)
	}
	f.RecordClientOp(c.proc, "unlink", vfs.Clean(path), "", 0, nil)
	defer f.PopClient(c.proc)

	var err error
	for i := 0; i < f.conf.StorageServers; i++ {
		srv := i
		if !f.brick(srv).FS.Exists(local(path)) {
			continue
		}
		f.RPC(c.proc, f.brickProc(srv), func() {
			b := f.brick(srv)
			if e := b.Do(f.Rec, vfs.Op{Kind: vfs.OpUnlink, Path: local(path)}, vfs.Clean(path), "dentry"); e != nil && err == nil {
				err = e
			}
		})
	}
	return err
}

// Fsync flushes the file on every brick holding a stripe.
func (c *client) Fsync(path string) error {
	f := c.fs
	op := f.RecordClientOp(c.proc, "fsync", vfs.Clean(path), "", 0, nil)
	op.Sync = true
	defer f.PopClient(c.proc)

	for i := 0; i < f.conf.StorageServers; i++ {
		srv := i
		if !f.brick(srv).FS.Exists(local(path)) {
			continue
		}
		f.RPC(c.proc, f.brickProc(srv), func() {
			_ = f.brick(srv).DoSync(f.Rec, local(path), vfs.Clean(path), false)
		})
	}
	return nil
}

// Close records the client-level close.
func (c *client) Close(path string) error {
	f := c.fs
	f.RecordClientOp(c.proc, "close", vfs.Clean(path), "", 0, nil)
	f.PopClient(c.proc)
	return nil
}

// Recover implements GlusterFS self-heal: directories are mirrored back
// onto every brick and stripe files whose base copy (the one carrying the
// gfid xattr) is gone are removed as orphans.
func (f *FS) Recover() error {
	defer f.TimeOp("pfs/recover")()
	if err := f.FaultPoint("pfs/recover", f.Name()); err != nil {
		return err
	}
	// Heal directories: the first brick is authoritative; mirror its tree
	// onto the other bricks.
	dirs := map[string]bool{}
	for _, p := range f.brick(0).FS.Walk() {
		if strings.HasPrefix(p, "/vol") && f.brick(0).FS.IsDir(p) {
			dirs[p] = true
		}
	}
	for i := 1; i < f.conf.StorageServers; i++ {
		bfs := f.brick(i).FS
		for p := range dirs {
			if !bfs.IsDir(p) && !bfs.Exists(p) {
				_ = bfs.MkdirAll(p)
			}
		}
	}
	// Remove orphaned stripe files (no base copy anywhere).
	for i := 0; i < f.conf.StorageServers; i++ {
		bfs := f.brick(i).FS
		for _, p := range bfs.Walk() {
			if !strings.HasPrefix(p, "/vol") || bfs.IsDir(p) {
				continue
			}
			if _, ok := bfs.GetXattr(p, "gfid"); ok {
				continue
			}
			orphan := true
			for j := 0; j < f.conf.StorageServers; j++ {
				if _, ok := f.brick(j).FS.GetXattr(p, "gfid"); ok {
					orphan = false
					break
				}
			}
			if orphan {
				_ = bfs.Unlink(p)
			}
		}
	}
	return nil
}

// Mount materialises the logical namespace: the first brick is
// authoritative for the directory tree (as the first subvolume of a
// striped volume is in GlusterFS); a file exists if some brick holds its
// base copy (the gfid xattr), with contents reassembled from all bricks.
func (f *FS) Mount() (*pfs.Tree, error) {
	defer f.TimeOp("pfs/mount")()
	if err := f.FaultPoint("pfs/mount", f.Name()); err != nil {
		return nil, err
	}
	t := pfs.NewTree()
	seen := map[string]bool{}
	for i := 0; i < f.conf.StorageServers; i++ {
		bfs := f.brick(i).FS
		for _, p := range bfs.Walk() {
			if !strings.HasPrefix(p, "/vol") || p == "/vol" || seen[p] {
				continue
			}
			vpath := strings.TrimPrefix(p, "/vol")
			if bfs.IsDir(p) {
				if i == 0 {
					seen[p] = true
					t.AddDir(vpath)
				}
				continue
			}
			if _, ok := bfs.GetXattr(p, "gfid"); !ok {
				continue // stripe copy; the base copy decides existence
			}
			base := 0
			if b, ok := bfs.GetXattr(p, "base"); ok {
				bi, err := strconv.Atoi(string(b))
				if err != nil || bi < 0 || bi >= f.conf.StorageServers {
					return nil, fmt.Errorf("glusterfs: mount: corrupt base xattr %q on %s", b, p)
				}
				base = bi
			}
			seen[p] = true
			t.AddFile(vpath, f.readFile(vpath, base))
		}
	}
	return t, nil
}
