package pfs

import (
	"paracrash/internal/blockdev"
	"paracrash/internal/vfs"
)

// ServerSnap is an O(1) immutable capture of a single server store — the
// unit of the explorer's incremental crash-state reconstruction. Because
// vfs.FS and blockdev.Dev snapshots are structurally shared tries, holding
// thousands of ServerSnaps (one per reconstruction prefix) costs a few
// pointers each plus the paths their histories diverged on.
type ServerSnap struct {
	fs  *vfs.FS
	dev *blockdev.Dev
}

// Valid reports whether the snap holds a store.
func (s ServerSnap) Valid() bool { return s.fs != nil || s.dev != nil }

// IncrementalStater is an optional capability of FileSystems whose server
// stores support O(1) per-server capture and restore. Every Cluster-based
// FileSystem implements it for free; external implementations that keep
// persistent state outside vfs/blockdev stores simply lack it, and the
// explorer falls back to whole-cluster Restore + full replay for them.
type IncrementalStater interface {
	// CaptureServer snapshots proc's store in O(1). ok is false when proc
	// names no server.
	CaptureServer(proc string) (snap ServerSnap, ok bool)
	// RestoreServerSnap resets proc's store to a previously captured snap
	// in O(1). ok is false when proc names no server.
	RestoreServerSnap(proc string, snap ServerSnap) (ok bool)
}

// CaptureServer snapshots a single server store in O(1).
func (c *Cluster) CaptureServer(proc string) (ServerSnap, bool) {
	if s := c.FSServer(proc); s != nil {
		return ServerSnap{fs: s.FS.Snapshot()}, true
	}
	if s := c.Block(proc); s != nil {
		return ServerSnap{dev: s.Dev.Snapshot()}, true
	}
	return ServerSnap{}, false
}

// RestoreServerSnap adopts a captured store snapshot in O(1). The snap is
// only read, so one snap can seed any number of restores.
func (c *Cluster) RestoreServerSnap(proc string, snap ServerSnap) bool {
	if s := c.FSServer(proc); s != nil {
		if snap.fs == nil {
			return false
		}
		s.FS.Restore(snap.fs)
		return true
	}
	if s := c.Block(proc); s != nil {
		if snap.dev == nil {
			return false
		}
		s.Dev.Restore(snap.dev)
		return true
	}
	return false
}

// ServerSnap extracts proc's store from a whole-cluster snapshot as an
// O(1) per-server snap (the reconstruction base for servers with no kept
// ops to apply). ok is false when the state holds no store for proc.
func (st *State) ServerSnap(proc string) (ServerSnap, bool) {
	if fs, ok := st.FS[proc]; ok {
		return ServerSnap{fs: fs}, true
	}
	if dev, ok := st.Dev[proc]; ok {
		return ServerSnap{dev: dev}, true
	}
	return ServerSnap{}, false
}
