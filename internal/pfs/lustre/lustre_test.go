package lustre

import (
	"testing"

	"paracrash/internal/pfs"
	"paracrash/internal/trace"
)

func TestNewLustre(t *testing.T) {
	f := New(pfs.DefaultConfig(), trace.NewRecorder())
	if f.Name() != "lustre" {
		t.Fatalf("Name = %q", f.Name())
	}
	// Lustre barriers every write group.
	if err := f.Client(0).Create("/x"); err != nil {
		t.Fatal(err)
	}
	syncs := 0
	for _, o := range f.Recorder().Ops() {
		if o.Name == "scsi_sync" {
			syncs++
		}
	}
	if syncs == 0 {
		t.Fatal("Lustre must emit barriers")
	}
}
