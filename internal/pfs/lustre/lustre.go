// Package lustre simulates Lustre on the shared-disk substrate: a
// kernel-level PFS whose ldiskfs targets journal metadata and end every
// per-server write group with an accurate disk barrier, so persistence
// follows causality and no POSIX-level crash-consistency bug is reachable
// (the paper's finding in §6.3.1). HDF5-level bugs remain visible through
// Lustre, as in the paper's Table 3 rows 10, 13 and 15.
package lustre

import (
	"paracrash/internal/pfs"
	"paracrash/internal/pfs/shareddisk"
	"paracrash/internal/trace"
)

// New creates a Lustre deployment.
func New(conf pfs.Config, rec *trace.Recorder) *shareddisk.FS {
	return shareddisk.New(conf, shareddisk.Policy{FSName: "lustre", Barriers: true, ReplayLog: true}, rec)
}
