package pfs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"paracrash/internal/trace"
	"paracrash/internal/vfs"
)

func TestStripeRangeSingleStripe(t *testing.T) {
	st := StripeRange(0, []byte("abc"), 2, 128, 0)
	if len(st) != 1 || st[0].Server != 0 || st[0].LocalOffset != 0 {
		t.Fatalf("single stripe: %+v", st)
	}
}

func TestStripeRangeRoundRobin(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 300)
	st := StripeRange(0, data, 2, 128, 0)
	if len(st) != 3 {
		t.Fatalf("stripes = %d, want 3", len(st))
	}
	// Stripe 0 -> server 0 local 0; stripe 1 -> server 1 local 0;
	// stripe 2 -> server 0 local 128.
	want := []struct {
		srv   int
		local int64
	}{{0, 0}, {1, 0}, {0, 128}}
	for i, w := range want {
		if st[i].Server != w.srv || st[i].LocalOffset != w.local {
			t.Errorf("stripe %d = server %d local %d, want %d/%d",
				i, st[i].Server, st[i].LocalOffset, w.srv, w.local)
		}
	}
}

func TestStripeRangeWithBaseAndOffset(t *testing.T) {
	// A write at offset 128 with base 1 lands on server (1+1)%3 = 2.
	st := StripeRange(128, []byte("yz"), 3, 128, 1)
	if len(st) != 1 || st[0].Server != 2 || st[0].LocalOffset != 0 {
		t.Fatalf("offset stripe: %+v", st)
	}
	// Mid-stripe offsets keep the in-stripe position.
	st = StripeRange(130, []byte("q"), 3, 128, 1)
	if st[0].Server != 2 || st[0].LocalOffset != 2 {
		t.Fatalf("mid-stripe: %+v", st)
	}
}

// TestQuickStripeRoundTrip: striping a random byte string across random
// server counts and reassembling yields the original content.
func TestQuickStripeRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, ssRaw, baseRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%5) + 1
		stripeSize := int64(ssRaw%60) + 4
		base := int(baseRaw) % n
		data := make([]byte, r.Intn(400)+1)
		r.Read(data)

		chunks := make([][]byte, n)
		for _, st := range StripeRange(0, data, n, stripeSize, base) {
			end := st.LocalOffset + int64(len(st.Data))
			if int64(len(chunks[st.Server])) < end {
				grown := make([]byte, end)
				copy(grown, chunks[st.Server])
				chunks[st.Server] = grown
			}
			copy(chunks[st.Server][st.LocalOffset:], st.Data)
		}
		out := ReassembleFile(n, stripeSize, base, func(srv int) []byte { return chunks[srv] })
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnstripeSizeMatches: the size derived from chunk lengths equals
// the written extent.
func TestQuickUnstripeSizeMatches(t *testing.T) {
	f := func(seed int64, nRaw, ssRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%5) + 1
		stripeSize := int64(ssRaw%60) + 4
		size := r.Intn(500) + 1
		data := make([]byte, size)
		lens := make([]int64, n)
		for _, st := range StripeRange(0, data, n, stripeSize, 0) {
			if end := st.LocalOffset + int64(len(st.Data)); end > lens[st.Server] {
				lens[st.Server] = end
			}
		}
		return UnstripeSize(lens, n, stripeSize, 0) == int64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSerializeAndDiff(t *testing.T) {
	a, b := NewTree(), NewTree()
	a.AddDir("/d")
	a.AddFile("/d/f", []byte("x"))
	b.AddDir("/d")
	b.AddFile("/d/f", []byte("x"))
	if a.Serialize() != b.Serialize() || a.Hash() != b.Hash() {
		t.Fatal("identical trees serialize differently")
	}
	if d := a.Diff(b); d != "" {
		t.Fatalf("diff of identical trees: %q", d)
	}
	b.AddFile("/d/g", []byte("y"))
	if a.Serialize() == b.Serialize() {
		t.Fatal("different trees serialize identically")
	}
	if d := b.Diff(a); !strings.Contains(d, "/d/g missing") {
		t.Fatalf("diff = %q", d)
	}
	if d := a.Diff(b); !strings.Contains(d, "/d/g unexpected") {
		t.Fatalf("reverse diff = %q", d)
	}
}

func TestClusterSnapshotRestore(t *testing.T) {
	rec := trace.NewRecorder()
	c := NewCluster(DefaultConfig(), rec, []string{"s/0", "s/1"})
	must(t, c.FSServer("s/0").FS.Create("/a"))
	snap := c.Snapshot()
	must(t, c.FSServer("s/0").FS.WriteAt("/a", 0, []byte("x")))
	must(t, c.FSServer("s/1").FS.Create("/b"))
	c.Restore(snap)
	if sz, _ := c.FSServer("s/0").FS.Size("/a"); sz != 0 {
		t.Fatal("restore did not reset server 0")
	}
	if c.FSServer("s/1").FS.Exists("/b") {
		t.Fatal("restore did not reset server 1")
	}
	// Partial restore touches only the named server.
	must(t, c.FSServer("s/0").FS.WriteAt("/a", 0, []byte("x")))
	must(t, c.FSServer("s/1").FS.Create("/b"))
	c.RestoreServer(snap, "s/1")
	if sz, _ := c.FSServer("s/0").FS.Size("/a"); sz != 1 {
		t.Fatal("RestoreServer touched the wrong server")
	}
	if c.FSServer("s/1").FS.Exists("/b") {
		t.Fatal("RestoreServer did not reset the named server")
	}
}

func TestRPCRecordsCausality(t *testing.T) {
	rec := trace.NewRecorder()
	c := NewCluster(DefaultConfig(), rec, []string{"srv/0"})
	clientOp := c.RecordClientOp("client/0", "creat", "/f", "", 0, nil)
	var serverOp *trace.Op
	c.RPC("client/0", "srv/0", func() {
		serverOp = rec.Record(trace.Op{Layer: trace.LayerLocalFS, Proc: "srv/0", Name: "creat", Path: "/f"})
	})
	c.PopClient("client/0")

	ops := rec.Ops()
	if len(ops) != 6 { // client op, send, recv, server op, reply send, reply recv
		t.Fatalf("op count = %d: %v", len(ops), ops)
	}
	// The server op's ancestor chain reaches the client op.
	cur := serverOp
	found := false
	for cur != nil && cur.Parent > 0 {
		if cur.Parent == clientOp.ID {
			found = true
			break
		}
		var next *trace.Op
		for _, o := range ops {
			if o.ID == cur.Parent {
				next = o
				break
			}
		}
		cur = next
	}
	if !found {
		t.Fatal("server op does not chain to the client op")
	}
}

func TestApplyLowermost(t *testing.T) {
	rec := trace.NewRecorder()
	c := NewCluster(DefaultConfig(), rec, []string{"s/0"})
	op := &trace.Op{Proc: "s/0", Layer: trace.LayerLocalFS,
		Payload: vfs.Op{Kind: vfs.OpCreate, Path: "/f"}}
	if err := c.ApplyLowermost(op); err != nil {
		t.Fatal(err)
	}
	if !c.FSServer("s/0").FS.Exists("/f") {
		t.Fatal("payload not applied")
	}
	bad := &trace.Op{Proc: "nope", Layer: trace.LayerLocalFS, Payload: vfs.Op{Kind: vfs.OpCreate, Path: "/f"}}
	if err := c.ApplyLowermost(bad); err == nil {
		t.Fatal("unknown proc must error")
	}
	noPayload := &trace.Op{Proc: "s/0", Layer: trace.LayerLocalFS}
	if err := c.ApplyLowermost(noPayload); err == nil {
		t.Fatal("missing payload must error")
	}
}

func TestTagHint(t *testing.T) {
	rec := trace.NewRecorder()
	c := NewCluster(DefaultConfig(), rec, []string{"s/0"})
	if got := c.DataTag("chunk"); got != "chunk" {
		t.Fatalf("default tag = %q", got)
	}
	c.SetTagHint("h5:data:/d")
	if got := c.DataTag("chunk"); got != "h5:data:/d" {
		t.Fatalf("hinted tag = %q", got)
	}
	c.SetTagHint("")
	if got := c.DataTag("chunk"); got != "chunk" {
		t.Fatalf("cleared tag = %q", got)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
